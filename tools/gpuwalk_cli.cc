/**
 * @file
 * The gpuwalk command-line simulator driver.
 *
 * One binary to run any (workload, scheduler, configuration)
 * combination, dump component statistics (text or JSON), save/replay
 * workload traces, and compare schedulers — the front door a
 * downstream user scripts experiments through.
 *
 * Run `gpuwalk --help` for the full flag reference.
 */

#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/runner.hh"
#include "exp/table.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "trace/chrome_export.hh"
#include "trace/digest.hh"
#include "workload/registry.hh"
#include "workload/tenant_mix.hh"
#include "workload/trace_io.hh"

using namespace gpuwalk;

namespace {

/** Minimal --key=value / --flag parser. */
class Flags
{
  public:
    Flags(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0)
                sim::fatal("unexpected argument '", arg,
                           "' (flags start with --; see --help)");
            arg = arg.substr(2);
            const auto eq = arg.find('=');
            if (eq == std::string::npos)
                values_[arg] = "true";
            else
                values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }

    bool
    has(const std::string &key)
    {
        consumed_.insert(key);
        return values_.count(key) > 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getUint(const std::string &key, std::uint64_t fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 0);
    }

    double
    getDouble(const std::string &key, double fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtod(it->second.c_str(), nullptr);
    }

    /** fatal() on any flag that no code path consumed. */
    void
    rejectUnknown() const
    {
        for (const auto &[key, value] : values_) {
            (void)value;
            if (!consumed_.count(key))
                sim::fatal("unknown flag --", key, " (see --help)");
        }
    }

  private:
    std::map<std::string, std::string> values_;
    std::set<std::string> consumed_;
};

void
printHelp()
{
    std::cout <<
        R"(gpuwalk — GPU page-table-walk scheduling simulator

Usage: gpuwalk [flags]

Workload selection (one of):
  --workload=NAME         Table II benchmark (XSB MVT ATX NW BIC GEV
                          SSP MIS CLR BCK KMN HOT)
  --load-trace=FILE       replay a gpuwalk-trace v1 file
  --list-workloads        print the benchmark table and exit

Scheduler:
  --scheduler=NAME        fcfs | random | sjf-only | batch-only |
                          simt-aware | oldest-job | srpt |
                          fair-share | token-bucket | weighted-share
                          (default: fcfs)
  --compare               run fcfs AND simt-aware, report speedup
  --jobs=N                worker threads for --compare
                          (default: all cores; results are identical
                          at any N)
  --sim-threads=N         simulation threads inside the run: 1 =
                          classic serial engine (default), N > 1 =
                          one latency-decoupled domain group per
                          thread, 0 = auto; results are bit-identical
                          at any value
  --seed=N                RNG seed (random scheduler + workloads)

Workload shape:
  --wavefronts=N          total wavefronts          (default: 256)
  --instructions=N        per wavefront             (default: 48)
  --footprint-scale=X     fraction of Table II size (default: 1.0)
  --compute-cycles=N      base ALU gap, cycles      (default: 200)
  --large-pages           back buffers with 2 MB pages

Multi-tenant (replaces --workload with a generated mix):
  --tenants=N             run an N-tenant mix: each tenant gets its
                          own address space (ASID) and a benchmark
                          from the tenant-mix generator; --wavefronts
                          / --instructions / --seed shape every tenant
  --churn-fraction=X      fraction of tenants arriving mid-run
  --alternate-weights     odd tenants get QoS weight 2
  --token-window=N        token-bucket window, scheduler dispatches
                          (default: 64)
  --token-quota=N         per-tenant dispatch quota per window
                          (default: 8)

Hardware overrides (baseline = the paper's Table I):
  --cus=N                 compute units             (default: 8)
  --wavefronts-per-cu=N   resident wavefront slots  (default: 2)
  --l2tlb-entries=N       shared L2 TLB             (default: 512)
  --walkers=N             IOMMU page table walkers  (default: 8)
  --buffer-entries=N      IOMMU walk buffer         (default: 256)
  --pwc-entries=N         PWC entries per level     (default: 16)
  --no-pwc-pinning        disable counter-pinned PWC replacement
  --no-walk-cache         walker PTEs go straight to DRAM
  --aging-threshold=N     SIMT-aware starvation bound
  --prefetch=P            translation prefetch policy: off | next |
                          spp (signature-path lookahead); a bare
                          --prefetch means next (idle bandwidth only)
  --prefetch-degree=N     max speculative walks per trigger
                                              (default: 4)
  --wavefront-sched=P     rr | gto | wasp  (CU issue arbitration;
                          wasp de-staggers leader slots whose walks
                          are classed speculative at the IOMMU)
  --wasp-leaders=N        wasp: leader slots per CU   (default: 1)
  --wasp-distance=N       wasp: followers' first-issue delay, cycles
                                              (default: 2048)
  --spec-admission=P      speculative-walk admission: idle (default)
                          | reserved (dedicated walkers) | budget
                          (tokens per demand-dispatch window)
  --virtual-l1            virtually-addressed L1 data caches
                          (translate on L1 miss, Yoon et al.)

Demand paging (any flag enables the GMMU; excludes --large-pages):
  --oversubscription=R    pages fault in on first touch; resident
                          frames capped at R x the workload footprint
                          (R in (0,1]; R < 1 forces eviction)
  --fault-latency=N       host interrupt + runtime cost per fault
                          batch, ticks        (default: 2000000)
  --migration-latency=N   per-page CPU-GPU transfer cost, ticks
                                              (default: 400000)
  --fault-policy=P        fcfs | sjf fault service order
  --gmmu-batch=N          max faults serviced per host round trip
                                              (default: 8)
  --gmmu-evict=P          lru | random victim policy at the cap
  --no-contiguity         disable 2 MB contiguity reservation and
                          promotion

Output:
  --stats                 dump all component statistics (text)
  --json=FILE             write component statistics as JSON
  --save-trace=FILE       write the generated workload trace
  --trace-out=FILE        record the walk lifecycle and write a Chrome
                          trace_event JSON (chrome://tracing /
                          ui.perfetto.dev); --compare writes one file
                          per scheduler
  --trace-ring=N          trace ring-buffer capacity in events
                          (default 1Mi; oldest events drop first)
  --audit                 check conservation invariants at teardown;
                          any violation is reported and makes the
                          exit status non-zero
  --audit-interval=N      additionally check every N ticks during the
                          run (implies --audit)
  --quiet                 suppress the run summary
)";
}

void
listWorkloads()
{
    std::cout << "benchmark  class      footprint(MB)  description\n";
    for (const auto &name : workload::allWorkloadNames()) {
        const auto info = workload::makeWorkload(name)->info();
        std::cout.width(11);
        std::cout << std::left << info.abbrev;
        std::cout.width(11);
        std::cout << (info.irregular ? "irregular" : "regular");
        std::cout.width(15);
        std::cout << info.footprintMB;
        std::cout << info.description << "\n";
    }
}

system::SystemConfig
configFromFlags(Flags &flags)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler =
        core::schedulerKindFromString(flags.get("scheduler", "fcfs"));
    cfg.schedulerSeed = flags.getUint("seed", 1);
    cfg.simThreads =
        static_cast<unsigned>(flags.getUint("sim-threads", 1));
    cfg.gpu.numCus = static_cast<unsigned>(flags.getUint("cus", 8));
    cfg.gpuTlb.numCus = cfg.gpu.numCus;
    cfg.gpu.wavefrontsPerCu = static_cast<unsigned>(
        flags.getUint("wavefronts-per-cu", cfg.gpu.wavefrontsPerCu));
    cfg.gpuTlb.l2Entries = static_cast<unsigned>(
        flags.getUint("l2tlb-entries", cfg.gpuTlb.l2Entries));
    cfg.iommu.numWalkers = static_cast<unsigned>(
        flags.getUint("walkers", cfg.iommu.numWalkers));
    cfg.iommu.bufferEntries = static_cast<unsigned>(
        flags.getUint("buffer-entries", cfg.iommu.bufferEntries));
    cfg.iommu.pwc.entriesPerLevel = static_cast<unsigned>(
        flags.getUint("pwc-entries", cfg.iommu.pwc.entriesPerLevel));
    if (flags.has("no-pwc-pinning"))
        cfg.iommu.pwc.pinScoredEntries = false;
    if (flags.has("no-walk-cache"))
        cfg.iommu.useWalkCache = false;
    cfg.simt.agingThreshold =
        flags.getUint("aging-threshold", cfg.simt.agingThreshold);
    cfg.qos.tokenWindow = static_cast<unsigned>(
        flags.getUint("token-window", cfg.qos.tokenWindow));
    cfg.qos.tokenQuota = static_cast<unsigned>(
        flags.getUint("token-quota", cfg.qos.tokenQuota));
    if (flags.has("prefetch")) {
        const std::string p = flags.get("prefetch", "off");
        // A bare --prefetch predates the policy knob and meant the
        // next-page prefetcher; keep that spelling working.
        cfg.iommu.prefetch.kind =
            p == "true" ? iommu::PrefetchKind::NextPage
                        : iommu::prefetchKindFromString(p);
    }
    cfg.iommu.prefetch.degree = static_cast<unsigned>(
        flags.getUint("prefetch-degree", cfg.iommu.prefetch.degree));
    if (flags.has("virtual-l1"))
        cfg.gpu.virtualL1Cache = true;
    const std::string wf_sched = flags.get("wavefront-sched", "rr");
    if (wf_sched == "gto")
        cfg.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::OldestFirst;
    else if (wf_sched == "wasp")
        cfg.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::Wasp;
    else if (wf_sched != "rr")
        sim::fatal("unknown --wavefront-sched '", wf_sched,
                   "' (rr|gto|wasp)");
    cfg.gpu.waspLeaders = static_cast<unsigned>(
        flags.getUint("wasp-leaders", cfg.gpu.waspLeaders));
    cfg.gpu.waspDistanceCycles = static_cast<sim::Cycles>(
        flags.getUint("wasp-distance", cfg.gpu.waspDistanceCycles));
    cfg.iommu.specAdmission = iommu::specAdmissionFromString(
        flags.get("spec-admission", "idle"));
    if (flags.has("trace-out")) {
        cfg.trace.outPath = flags.get("trace-out", "");
        if (cfg.trace.outPath.empty())
            sim::fatal("--trace-out needs a file path");
        cfg.trace.enabled = true;
    }
    if (flags.has("trace-ring")) {
        const std::uint64_t n = flags.getUint("trace-ring", 0);
        if (n == 0)
            sim::fatal("--trace-ring needs a positive integer");
        cfg.trace.ringCapacity = static_cast<std::size_t>(n);
        cfg.trace.enabled = true;
    }
    if (flags.has("oversubscription")) {
        const double r = flags.getDouble("oversubscription", 1.0);
        if (r <= 0.0 || r > 1.0)
            sim::fatal("--oversubscription needs a ratio in (0, 1]");
        cfg.gmmu.oversubscription = r;
        cfg.gmmu.enabled = true;
    }
    if (flags.has("fault-latency")) {
        cfg.gmmu.faultLatency =
            static_cast<sim::Tick>(flags.getUint("fault-latency", 0));
        cfg.gmmu.enabled = true;
    }
    if (flags.has("migration-latency")) {
        cfg.gmmu.migrationLatency = static_cast<sim::Tick>(
            flags.getUint("migration-latency", 0));
        cfg.gmmu.enabled = true;
    }
    if (flags.has("fault-policy")) {
        const std::string p = flags.get("fault-policy", "fcfs");
        if (p == "fcfs")
            cfg.gmmu.order = vm::FaultOrder::Fcfs;
        else if (p == "sjf")
            cfg.gmmu.order = vm::FaultOrder::Sjf;
        else
            sim::fatal("unknown --fault-policy '", p, "' (fcfs|sjf)");
        cfg.gmmu.enabled = true;
    }
    if (flags.has("gmmu-batch")) {
        const std::uint64_t n = flags.getUint("gmmu-batch", 0);
        if (n == 0)
            sim::fatal("--gmmu-batch needs a positive integer");
        cfg.gmmu.batchSize = static_cast<unsigned>(n);
        cfg.gmmu.enabled = true;
    }
    if (flags.has("gmmu-evict")) {
        const std::string p = flags.get("gmmu-evict", "lru");
        if (p == "lru")
            cfg.gmmu.evict = vm::EvictPolicy::Lru;
        else if (p == "random")
            cfg.gmmu.evict = vm::EvictPolicy::Random;
        else
            sim::fatal("unknown --gmmu-evict '", p, "' (lru|random)");
        cfg.gmmu.enabled = true;
    }
    if (flags.has("no-contiguity")) {
        cfg.gmmu.contiguity = false;
        cfg.gmmu.enabled = true;
    }
    if (flags.has("audit"))
        cfg.audit.enabled = true;
    if (flags.has("audit-interval")) {
        const std::uint64_t n = flags.getUint("audit-interval", 0);
        if (n == 0)
            sim::fatal("--audit-interval needs a positive tick count");
        cfg.audit.interval = static_cast<sim::Tick>(n);
        cfg.audit.enabled = true;
    }
    return cfg;
}

/** "out.json" + "-fcfs" -> "out-fcfs.json" (for --compare traces). */
std::string
insertPathSuffix(const std::string &path, const std::string &suffix)
{
    const auto slash = path.find_last_of('/');
    auto dot = path.find_last_of('.');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash)) {
        dot = path.size();
    }
    return path.substr(0, dot) + suffix + path.substr(dot);
}

workload::WorkloadParams
paramsFromFlags(Flags &flags)
{
    auto params = exp::experimentParams();
    params.wavefronts = static_cast<unsigned>(
        flags.getUint("wavefronts", params.wavefronts));
    params.instructionsPerWavefront = static_cast<unsigned>(
        flags.getUint("instructions", params.instructionsPerWavefront));
    params.footprintScale =
        flags.getDouble("footprint-scale", params.footprintScale);
    params.computeCycles =
        flags.getUint("compute-cycles", params.computeCycles);
    params.seed = flags.getUint("seed", params.seed);
    params.useLargePages = flags.has("large-pages");
    return params;
}

/**
 * Everything one simulation needs, resolved from the flags up front.
 * The Flags accessors mutate their consumed-set, so flag reading must
 * finish before any job body can run on a worker thread.
 */
struct CliOptions
{
    std::string traceFile;   ///< "" = generate from the registry
    std::string workload;
    workload::WorkloadParams params;
    std::string saveTrace;   ///< "" = don't save
    bool dumpStats = false;
    std::string jsonPath;    ///< component-stats JSON ("" = off)
    unsigned tenants = 1;    ///< > 1 = multi-tenant mix
    double churnFraction = 0.0;
    bool alternateWeights = false;
};

CliOptions
optionsFromFlags(Flags &flags)
{
    CliOptions opt;
    if (flags.has("load-trace"))
        opt.traceFile = flags.get("load-trace", "");
    opt.workload = flags.get("workload", "MVT");
    opt.params = paramsFromFlags(flags);
    if (flags.has("save-trace"))
        opt.saveTrace = flags.get("save-trace", "");
    opt.dumpStats = flags.has("stats");
    if (flags.has("json"))
        opt.jsonPath = flags.get("json", "");
    opt.tenants = static_cast<unsigned>(flags.getUint("tenants", 1));
    opt.churnFraction = flags.getDouble("churn-fraction", 0.0);
    opt.alternateWeights = flags.has("alternate-weights");
    if (opt.tenants > 1 && !opt.traceFile.empty())
        sim::fatal("--tenants and --load-trace are exclusive "
                   "(the mix generator picks each tenant's workload)");
    return opt;
}

/** Mix shape for --tenants=N, derived from the workload flags. */
workload::TenantMixConfig
mixFromOptions(const CliOptions &opt)
{
    workload::TenantMixConfig mix;
    mix.numTenants = opt.tenants;
    mix.seed = opt.params.seed;
    mix.wavefrontsPerTenant = opt.params.wavefronts;
    mix.instructionsPerWavefront = opt.params.instructionsPerWavefront;
    mix.churnFraction = opt.churnFraction;
    mix.alternateWeights = opt.alternateWeights;
    return mix;
}

/** One simulation's outcome plus its deferred text/JSON dumps
 *  (captured into strings so --compare can run on worker threads and
 *  still print in order). */
struct CliRun
{
    system::RunStats stats;
    std::string statsDump;
    std::string componentJson;
};

CliRun
simulate(const system::SystemConfig &base_cfg, const CliOptions &opt,
         bool save_trace)
{
    auto cfg = base_cfg;
    std::vector<workload::TenantSpec> specs;
    if (opt.tenants > 1) {
        specs = workload::generateTenantMix(mixFromOptions(opt));
        // Tenant i gets ContextId i, so spec weights map directly
        // onto the per-ContextId weight table; set before the System
        // copies its config.
        for (unsigned i = 0; i < specs.size(); ++i) {
            if (specs[i].weight > 1) {
                cfg.qos.shareWeights.resize(specs.size(), 1);
                cfg.qos.shareWeights[i] = specs[i].weight;
            }
        }
    }
    system::System sys(cfg);

    if (!specs.empty()) {
        for (unsigned i = 0; i < specs.size(); ++i) {
            const auto ctx =
                i == 0 ? tlb::defaultContext : sys.createContext();
            sys.loadBenchmarkInContext(specs[i].workload,
                                       specs[i].params, /*app_id=*/i,
                                       ctx, specs[i].arrivalTick);
        }
    } else if (!opt.traceFile.empty()) {
        auto wl = workload::loadTraceFile(opt.traceFile);
        // External traces reference raw virtual addresses: map them.
        workload::mapTraceAddresses(sys.addressSpace(), wl);
        sys.loadWorkload(std::move(wl));
    } else {
        auto gen = workload::makeWorkload(opt.workload);
        sys.addressSpace().useLargePages(opt.params.useLargePages);
        auto wl = gen->generate(sys.addressSpace(), opt.params);
        if (save_trace && !opt.saveTrace.empty())
            workload::saveTraceFile(opt.saveTrace, wl);
        sys.loadWorkload(std::move(wl));
    }

    CliRun run;
    run.stats = sys.run();

    if (sys.tracer() && !cfg.trace.outPath.empty())
        trace::writeChromeTraceFile(cfg.trace.outPath, *sys.tracer());

    if (opt.dumpStats) {
        std::ostringstream os;
        sys.dumpStats(os);
        run.statsDump = os.str();
    }
    if (!opt.jsonPath.empty()) {
        std::ostringstream os;
        os << "{\"gpu\": ";
        sys.gpu().stats().dumpJson(os);
        os << ", \"gpu_tlb\": ";
        sys.tlbs().stats().dumpJson(os);
        os << ", \"iommu\": ";
        sys.iommu().stats().dumpJson(os);
        os << ", \"dram\": ";
        sys.dram().stats().dumpJson(os);
        os << "}\n";
        run.componentJson = os.str();
    }
    return run;
}

/** Prints the run summary and any dumps, in the classic order. */
void
reportRun(const system::SystemConfig &cfg, const CliOptions &opt,
          const CliRun &run, bool quiet)
{
    if (!quiet) {
        const auto &stats = run.stats;
        std::cout << "scheduler          "
                  << core::toString(cfg.scheduler) << "\n"
                  << "runtime            " << stats.runtimeTicks / 500
                  << " GPU cycles\n"
                  << "instructions       " << stats.instructions << "\n"
                  << "page walks         " << stats.walkRequests << "\n"
                  << "CU stall cycles    " << stats.stallTicks / 500
                  << "\n"
                  << "walk interleaving  "
                  << exp::TablePrinter::fmt(
                         stats.walks.interleavedFraction * 100, 1)
                  << "% of multi-walk instructions\n";
        if (stats.traced) {
            std::cout << "trace digest       "
                      << trace::digestHex(stats.traceDigest) << " ("
                      << stats.traceEvents << " events, "
                      << stats.traceDropped << " dropped)\n";
        }
        if (stats.audited) {
            std::cout << "audit              " << stats.auditChecks
                      << " checks, " << stats.auditViolations
                      << " violations\n";
        }
        if (stats.gmmu.enabled) {
            std::cout << "far faults         " << stats.gmmu.faultsRaised
                      << " raised (" << stats.gmmu.faultsCoalesced
                      << " walks coalesced), " << stats.gmmu.batches
                      << " batches\n"
                      << "residency          peak "
                      << stats.gmmu.residentPeak << " / cap "
                      << stats.gmmu.frameCap << " pages, "
                      << stats.gmmu.pagesEvicted << " evicted, "
                      << stats.gmmu.promotions << " promoted\n";
        }
        if (cfg.gpu.wavefrontSched == gpu::WavefrontSchedPolicy::Wasp) {
            std::cout << "wasp               " << stats.leaderIssues
                      << " leader issues, " << stats.spec.leaderWalks
                      << " leader walks\n"
                      << "spec class         " << stats.spec.admitted
                      << " admitted, " << stats.spec.dispatched
                      << " dispatched, " << stats.spec.promoted
                      << " promoted, " << stats.spec.droppedStale
                      << " dropped\n";
        }
        for (const auto &t : stats.tenants) {
            std::cout << "tenant " << t.ctx << "           walks "
                      << t.walkRequests << ", finish "
                      << t.finishTick / 500 << " GPU cycles\n";
        }
    }
    if (opt.dumpStats)
        std::cout << run.statsDump;
    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os)
            sim::fatal("cannot open '", opt.jsonPath, "'");
        os << run.componentJson;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);

    if (flags.has("help")) {
        printHelp();
        return 0;
    }
    if (flags.has("list-workloads")) {
        listWorkloads();
        flags.rejectUnknown();
        return 0;
    }

    const bool quiet = flags.has("quiet");
    exp::RunnerOptions runner;
    runner.jobs =
        static_cast<unsigned>(flags.getUint("jobs", 0));

    if (flags.has("compare")) {
        const auto cfg = configFromFlags(flags);
        const auto opt = optionsFromFlags(flags);
        flags.rejectUnknown();
        // Lets runJobs keep jobs x sim-threads within the machine.
        runner.simThreads = cfg.simThreads;

        // Both schedulers as one job pool; dumps are captured into
        // per-run slots so output order is independent of execution
        // order.
        const std::array<core::SchedulerKind, 2> kinds{
            core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware};
        std::array<CliRun, 2> runs;
        std::vector<exp::Job> jobs;
        for (std::size_t i = 0; i < kinds.size(); ++i) {
            exp::Job job;
            job.workload =
                opt.traceFile.empty() ? opt.workload : opt.traceFile;
            job.scheduler = core::toString(kinds[i]);
            auto run_cfg = exp::withScheduler(cfg, kinds[i]);
            // One trace file per scheduler: both runs would otherwise
            // race on (and overwrite) the same --trace-out path.
            if (!run_cfg.trace.outPath.empty()) {
                run_cfg.trace.outPath = insertPathSuffix(
                    run_cfg.trace.outPath,
                    "-" + core::toString(kinds[i]));
            }
            job.body = [&runs, i, run_cfg, &opt] {
                // Only the first job writes --save-trace (both would
                // produce identical bytes; avoid the file race).
                runs[i] = simulate(run_cfg, opt, i == 0);
                exp::RunResult res;
                res.stats = runs[i].stats;
                return res;
            };
            jobs.push_back(std::move(job));
        }
        exp::runJobs(jobs, runner);

        std::cout << "=== fcfs ===\n";
        reportRun(exp::withScheduler(cfg, kinds[0]), opt, runs[0],
                  quiet);
        std::cout << "=== simt-aware ===\n";
        reportRun(exp::withScheduler(cfg, kinds[1]), opt, runs[1],
                  quiet);
        std::cout << "\nspeedup (simt-aware over fcfs): "
                  << exp::TablePrinter::fmt(
                         exp::speedup(runs[1].stats, runs[0].stats))
                  << "\n";
        // Audit violations (already warn()ed as they were recorded)
        // make the whole invocation fail, for scripting.
        return runs[0].stats.auditViolations
                       || runs[1].stats.auditViolations
                   ? 1
                   : 0;
    }

    const auto cfg = configFromFlags(flags);
    const auto opt = optionsFromFlags(flags);
    flags.rejectUnknown();
    const auto run = simulate(cfg, opt, true);
    reportRun(cfg, opt, run, quiet);
    return run.stats.auditViolations ? 1 : 0;
}
