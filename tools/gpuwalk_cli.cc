/**
 * @file
 * The gpuwalk command-line simulator driver.
 *
 * One binary to run any (workload, scheduler, configuration)
 * combination, dump component statistics (text or JSON), save/replay
 * workload traces, and compare schedulers — the front door a
 * downstream user scripts experiments through.
 *
 * Run `gpuwalk --help` for the full flag reference.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "system/experiment.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

using namespace gpuwalk;

namespace {

/** Minimal --key=value / --flag parser. */
class Flags
{
  public:
    Flags(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0)
                sim::fatal("unexpected argument '", arg,
                           "' (flags start with --; see --help)");
            arg = arg.substr(2);
            const auto eq = arg.find('=');
            if (eq == std::string::npos)
                values_[arg] = "true";
            else
                values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }

    bool
    has(const std::string &key)
    {
        consumed_.insert(key);
        return values_.count(key) > 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getUint(const std::string &key, std::uint64_t fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 0);
    }

    double
    getDouble(const std::string &key, double fallback)
    {
        consumed_.insert(key);
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtod(it->second.c_str(), nullptr);
    }

    /** fatal() on any flag that no code path consumed. */
    void
    rejectUnknown() const
    {
        for (const auto &[key, value] : values_) {
            (void)value;
            if (!consumed_.count(key))
                sim::fatal("unknown flag --", key, " (see --help)");
        }
    }

  private:
    std::map<std::string, std::string> values_;
    std::set<std::string> consumed_;
};

void
printHelp()
{
    std::cout <<
        R"(gpuwalk — GPU page-table-walk scheduling simulator

Usage: gpuwalk [flags]

Workload selection (one of):
  --workload=NAME         Table II benchmark (XSB MVT ATX NW BIC GEV
                          SSP MIS CLR BCK KMN HOT)
  --load-trace=FILE       replay a gpuwalk-trace v1 file
  --list-workloads        print the benchmark table and exit

Scheduler:
  --scheduler=NAME        fcfs | random | sjf-only | batch-only |
                          simt-aware | oldest-job | srpt |
                          fair-share            (default: fcfs)
  --compare               run fcfs AND simt-aware, report speedup
  --seed=N                RNG seed (random scheduler + workloads)

Workload shape:
  --wavefronts=N          total wavefronts          (default: 256)
  --instructions=N        per wavefront             (default: 48)
  --footprint-scale=X     fraction of Table II size (default: 1.0)
  --compute-cycles=N      base ALU gap, cycles      (default: 200)
  --large-pages           back buffers with 2 MB pages

Hardware overrides (baseline = the paper's Table I):
  --cus=N                 compute units             (default: 8)
  --wavefronts-per-cu=N   resident wavefront slots  (default: 2)
  --l2tlb-entries=N       shared L2 TLB             (default: 512)
  --walkers=N             IOMMU page table walkers  (default: 8)
  --buffer-entries=N      IOMMU walk buffer         (default: 256)
  --pwc-entries=N         PWC entries per level     (default: 16)
  --no-pwc-pinning        disable counter-pinned PWC replacement
  --no-walk-cache         walker PTEs go straight to DRAM
  --aging-threshold=N     SIMT-aware starvation bound
  --prefetch              IOMMU next-page prefetch (idle bandwidth)
  --wavefront-sched=P     rr | gto  (CU issue arbitration)
  --virtual-l1            virtually-addressed L1 data caches
                          (translate on L1 miss, Yoon et al.)

Output:
  --stats                 dump all component statistics (text)
  --json=FILE             write component statistics as JSON
  --save-trace=FILE       write the generated workload trace
  --quiet                 suppress the run summary
)";
}

void
listWorkloads()
{
    std::cout << "benchmark  class      footprint(MB)  description\n";
    for (const auto &name : workload::allWorkloadNames()) {
        const auto info = workload::makeWorkload(name)->info();
        std::cout.width(11);
        std::cout << std::left << info.abbrev;
        std::cout.width(11);
        std::cout << (info.irregular ? "irregular" : "regular");
        std::cout.width(15);
        std::cout << info.footprintMB;
        std::cout << info.description << "\n";
    }
}

system::SystemConfig
configFromFlags(Flags &flags)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler =
        core::schedulerKindFromString(flags.get("scheduler", "fcfs"));
    cfg.schedulerSeed = flags.getUint("seed", 1);
    cfg.gpu.numCus = static_cast<unsigned>(flags.getUint("cus", 8));
    cfg.gpuTlb.numCus = cfg.gpu.numCus;
    cfg.gpu.wavefrontsPerCu = static_cast<unsigned>(
        flags.getUint("wavefronts-per-cu", cfg.gpu.wavefrontsPerCu));
    cfg.gpuTlb.l2Entries = static_cast<unsigned>(
        flags.getUint("l2tlb-entries", cfg.gpuTlb.l2Entries));
    cfg.iommu.numWalkers = static_cast<unsigned>(
        flags.getUint("walkers", cfg.iommu.numWalkers));
    cfg.iommu.bufferEntries = static_cast<unsigned>(
        flags.getUint("buffer-entries", cfg.iommu.bufferEntries));
    cfg.iommu.pwc.entriesPerLevel = static_cast<unsigned>(
        flags.getUint("pwc-entries", cfg.iommu.pwc.entriesPerLevel));
    if (flags.has("no-pwc-pinning"))
        cfg.iommu.pwc.pinScoredEntries = false;
    if (flags.has("no-walk-cache"))
        cfg.iommu.useWalkCache = false;
    cfg.simt.agingThreshold =
        flags.getUint("aging-threshold", cfg.simt.agingThreshold);
    if (flags.has("prefetch"))
        cfg.iommu.prefetchNextPage = true;
    if (flags.has("virtual-l1"))
        cfg.gpu.virtualL1Cache = true;
    const std::string wf_sched = flags.get("wavefront-sched", "rr");
    if (wf_sched == "gto")
        cfg.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::OldestFirst;
    else if (wf_sched != "rr")
        sim::fatal("unknown --wavefront-sched '", wf_sched,
                   "' (rr|gto)");
    return cfg;
}

workload::WorkloadParams
paramsFromFlags(Flags &flags)
{
    auto params = system::experimentParams();
    params.wavefronts = static_cast<unsigned>(
        flags.getUint("wavefronts", params.wavefronts));
    params.instructionsPerWavefront = static_cast<unsigned>(
        flags.getUint("instructions", params.instructionsPerWavefront));
    params.footprintScale =
        flags.getDouble("footprint-scale", params.footprintScale);
    params.computeCycles =
        flags.getUint("compute-cycles", params.computeCycles);
    params.seed = flags.getUint("seed", params.seed);
    params.useLargePages = flags.has("large-pages");
    return params;
}

/** Runs one simulation; prints a summary unless quiet. */
system::RunStats
runConfigured(const system::SystemConfig &cfg, Flags &flags,
              bool quiet)
{
    system::System sys(cfg);

    if (flags.has("load-trace")) {
        auto wl = workload::loadTraceFile(flags.get("load-trace", ""));
        // External traces reference raw virtual addresses: map them.
        workload::mapTraceAddresses(sys.addressSpace(), wl);
        sys.loadWorkload(std::move(wl));
    } else {
        const std::string name = flags.get("workload", "MVT");
        const auto params = paramsFromFlags(flags);
        auto gen = workload::makeWorkload(name);
        sys.addressSpace().useLargePages(params.useLargePages);
        auto wl = gen->generate(sys.addressSpace(), params);
        if (flags.has("save-trace"))
            workload::saveTraceFile(flags.get("save-trace", ""), wl);
        sys.loadWorkload(std::move(wl));
    }

    const auto stats = sys.run();

    if (!quiet) {
        std::cout << "scheduler          "
                  << core::toString(cfg.scheduler) << "\n"
                  << "runtime            " << stats.runtimeTicks / 500
                  << " GPU cycles\n"
                  << "instructions       " << stats.instructions << "\n"
                  << "page walks         " << stats.walkRequests << "\n"
                  << "CU stall cycles    " << stats.stallTicks / 500
                  << "\n"
                  << "walk interleaving  "
                  << system::TablePrinter::fmt(
                         stats.walks.interleavedFraction * 100, 1)
                  << "% of multi-walk instructions\n";
    }
    if (flags.has("stats"))
        sys.dumpStats(std::cout);
    if (flags.has("json")) {
        const std::string path = flags.get("json", "");
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot open '", path, "'");
        os << "{\"gpu\": ";
        sys.gpu().stats().dumpJson(os);
        os << ", \"gpu_tlb\": ";
        sys.tlbs().stats().dumpJson(os);
        os << ", \"iommu\": ";
        sys.iommu().stats().dumpJson(os);
        os << ", \"dram\": ";
        sys.dram().stats().dumpJson(os);
        os << "}\n";
    }
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);

    if (flags.has("help")) {
        printHelp();
        return 0;
    }
    if (flags.has("list-workloads")) {
        listWorkloads();
        flags.rejectUnknown();
        return 0;
    }

    const bool quiet = flags.has("quiet");

    if (flags.has("compare")) {
        auto cfg = configFromFlags(flags);
        std::cout << "=== fcfs ===\n";
        const auto fcfs = runConfigured(
            system::withScheduler(cfg, core::SchedulerKind::Fcfs),
            flags, quiet);
        std::cout << "=== simt-aware ===\n";
        const auto simt = runConfigured(
            system::withScheduler(cfg, core::SchedulerKind::SimtAware),
            flags, quiet);
        std::cout << "\nspeedup (simt-aware over fcfs): "
                  << system::TablePrinter::fmt(
                         system::speedup(simt, fcfs))
                  << "\n";
        flags.rejectUnknown();
        return 0;
    }

    const auto cfg = configFromFlags(flags);
    runConfigured(cfg, flags, quiet);
    flags.rejectUnknown();
    return 0;
}
