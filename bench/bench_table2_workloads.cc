/**
 * @file
 * Table II: the twelve GPU benchmarks and their memory footprints.
 *
 * Regenerates the table from the workload registry and verifies, by
 * actually allocating each benchmark's address space, that the mapped
 * footprint matches the Table II value.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;

    std::cout << "Table II: GPU benchmarks\n"
              << "========================\n\n"
              << std::left << std::setw(10) << "Benchmark"
              << std::setw(12) << "Class" << std::setw(52)
              << "Description" << std::right << std::setw(14)
              << "Table II (MB)" << std::setw(14) << "mapped (MB)"
              << "\n"
              << std::string(102, '-') << "\n";

    for (const auto &name : workload::allWorkloadNames()) {
        auto gen = workload::makeWorkload(name);
        const auto &info = gen->info();

        // Actually build the address space to verify the footprint.
        mem::BackingStore store;
        vm::FrameAllocator frames(mem::Addr(16) << 30);
        vm::AddressSpace as(store, frames);
        auto params = system::experimentParams();
        gen->generate(as, params);
        const double mapped_mb =
            static_cast<double>(as.footprintBytes()) / (1024.0 * 1024.0);

        std::cout << std::left << std::setw(10) << info.abbrev
                  << std::setw(12)
                  << (info.irregular ? "irregular" : "regular")
                  << std::setw(52) << info.description << std::right
                  << std::setw(14) << fmt(info.footprintMB, 2)
                  << std::setw(14) << fmt(mapped_mb, 2) << "\n";
    }

    std::cout << "\n(mapped footprint = eagerly page-mapped buffers at "
                 "footprintScale=1; small\n"
                 "deltas come from page rounding and vector operands)\n";
    return 0;
}
