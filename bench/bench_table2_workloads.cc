/**
 * @file
 * Table II: the twelve GPU benchmarks and their memory footprints.
 *
 * Regenerates the table from the workload registry and verifies, by
 * actually allocating each benchmark's address space, that the mapped
 * footprint matches the Table II value.
 */

#include "bench_common.hh"

#include "mem/backing_store.hh"
#include "vm/address_space.hh"
#include "vm/frame_allocator.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Table II";
    const char *desc = "GPU benchmarks and their memory footprints";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::allWorkloadNames();
    // No simulation: each job only builds the benchmark's address
    // space and measures the eagerly mapped footprint.
    spec.body = [](const exp::JobSpec &job) {
        mem::BackingStore store;
        vm::FrameAllocator frames(mem::Addr(16) << 30);
        vm::AddressSpace as(store, frames);
        auto gen = workload::makeWorkload(job.workload);
        gen->generate(as, job.params);

        exp::RunResult res;
        res.extra["mapped_mb"] =
            static_cast<double>(as.footprintBytes())
            / (1024.0 * 1024.0);
        return res;
    };
    const auto result = exp::runJobs(spec.expand(), opts.runner);

    exp::Report report(id, desc);
    auto &table = report.addTable({"Benchmark", "Class",
                                   "Table II (MB)", "mapped (MB)",
                                   "  Description"});

    for (const auto &name : spec.workloads) {
        const auto &info = workload::makeWorkload(name)->info();
        const double mapped_mb =
            result.at(name).extra.at("mapped_mb");
        table.addRow({name, info.irregular ? "irregular" : "regular",
                      fmt(info.footprintMB, 2), fmt(mapped_mb, 2),
                      "  " + std::string(info.description)});
    }

    report.addNote(
        "(mapped footprint = eagerly page-mapped buffers at "
        "footprintScale=1; small\ndeltas come from page rounding and "
        "vector operands)");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
