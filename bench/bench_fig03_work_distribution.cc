/**
 * @file
 * Figure 3: distribution of the number of memory accesses ("work")
 * needed to service the address translation needs of SIMD
 * instructions, under the baseline FCFS scheduler.
 *
 * Buckets follow the paper exactly: 1-16, 17-32, 33-48, 49-64, 65-80,
 * 81-256 memory accesses per instruction (instructions with no walks
 * are excluded).
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 3",
                        "Per-instruction page-walk memory-access "
                        "distribution (FCFS)",
                        cfg);

    std::cout << std::left << std::setw(8) << "app";
    const std::vector<std::string> labels{"1-16",  "17-32", "33-48",
                                          "49-64", "65-80", "81-256",
                                          "257+"};
    for (const auto &l : labels)
        std::cout << std::right << std::setw(9) << l;
    std::cout << "\n" << std::string(8 + 9 * labels.size(), '-') << "\n";

    for (const auto &app : workload::motivationWorkloadNames()) {
        const auto stats =
            run(system::withScheduler(cfg, core::SchedulerKind::Fcfs),
                app);
        std::cout << std::left << std::setw(8) << app;
        for (std::size_t i = 0; i < stats.walks.workBucketFractions.size();
             ++i) {
            std::cout << std::right << std::setw(9)
                      << fmt(stats.walks.workBucketFractions[i], 3);
        }
        std::cout << "\n";
    }

    std::cout
        << "\npaper (Fig. 3): 27-61% of instructions fall in 1-16 and "
           "33-70% need 49+ accesses;\nGEV has ~31% of instructions at "
           "65+ accesses. The same bimodal shape — coalesced\nvector "
           "ops in the first bucket, 64-lane divergent loads around "
           "49-64+ — should appear above.\n";
    return 0;
}
