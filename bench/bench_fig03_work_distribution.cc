/**
 * @file
 * Figure 3: distribution of the number of memory accesses ("work")
 * needed to service the address translation needs of SIMD
 * instructions, under the baseline FCFS scheduler.
 *
 * Buckets follow the paper exactly: 1-16, 17-32, 33-48, 49-64, 65-80,
 * 81-256 memory accesses per instruction (instructions with no walks
 * are excluded).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 3";
    const char *desc = "Per-instruction page-walk memory-access "
                       "distribution (FCFS)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::motivationWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs};
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable({"app", "1-16", "17-32", "33-48",
                                   "49-64", "65-80", "81-256", "257+"},
                                  "", /*width=*/9);

    for (const auto &app : spec.workloads) {
        const auto &stats =
            result.stats(app, core::SchedulerKind::Fcfs);
        std::vector<std::string> row{app};
        for (const double fraction : stats.walks.workBucketFractions)
            row.push_back(fmt(fraction, 3));
        table.addRow(std::move(row));
    }

    report.addNote(
        "paper (Fig. 3): 27-61% of instructions fall in 1-16 and "
        "33-70% need 49+ accesses;\nGEV has ~31% of instructions at "
        "65+ accesses. The same bimodal shape — coalesced\nvector "
        "ops in the first bucket, 64-lane divergent loads around "
        "49-64+ — should appear above.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
