/**
 * @file
 * "Why not large pages?" — the paper's §VI discussion as an
 * experiment.
 *
 * Runs the six irregular benchmarks with 4 KB base pages and with
 * 2 MB large pages, under FCFS and SIMT-aware scheduling. The paper
 * argues (a) large pages help only to the extent the access pattern
 * has 2 MB-granular locality, (b) footprint growth erodes the benefit
 * ("today's large page is tomorrow's small page"), and (c) techniques
 * that help base pages stay relevant. Column 'residual' shows how
 * much translation overhead remains with large pages: the fraction of
 * instructions still generating page walks.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (paper SVI)";
    const char *desc = "4 KB base pages vs 2 MB large pages";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    spec.variants = {
        {"4K", nullptr},
        {"2M",
         [](system::SystemConfig &,
            workload::WorkloadParams &params) {
             params.useLargePages = true;
         }},
    };
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "walks:4K", "walks:2M", "simt:4K", "simt:2M"});

    for (const auto &app : spec.workloads) {
        const auto &f4 =
            result.stats(app, core::SchedulerKind::Fcfs, "4K");
        const auto &s4 =
            result.stats(app, core::SchedulerKind::SimtAware, "4K");
        const auto &f2 =
            result.stats(app, core::SchedulerKind::Fcfs, "2M");
        const auto &s2 =
            result.stats(app, core::SchedulerKind::SimtAware, "2M");

        table.addRow({app, std::to_string(f4.walkRequests),
                      std::to_string(f2.walkRequests),
                      fmt(exp::speedup(s4, f4)),
                      fmt(exp::speedup(s2, f2))});
    }

    report.addNote(
        "Reading: at Table II footprints (tens to hundreds of MB "
        "= 30-270 large pages), 2 MB entries fit\nentirely in the "
        "512-entry shared TLB: walks nearly vanish and scheduling "
        "headroom with them. This\nis exactly the caveat the "
        "paper's SVI concedes — the benefit hinges on footprint vs "
        "TLB reach\n(\"today's large page effectively becomes "
        "tomorrow's small page\"): footprints a few hundred times\n"
        "larger (or multi-tenant TLB sharing) restore base-page-"
        "style thrashing at 2 MB granularity, which\nis why "
        "base-page techniques like walk scheduling stay relevant. "
        "The paper could not simulate such\nfootprints either "
        "(\"exorbitant simulation time\").");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
