/**
 * @file
 * "Why not large pages?" — the paper's §VI discussion as an
 * experiment.
 *
 * Runs the six irregular benchmarks with 4 KB base pages and with
 * 2 MB large pages, under FCFS and SIMT-aware scheduling. The paper
 * argues (a) large pages help only to the extent the access pattern
 * has 2 MB-granular locality, (b) footprint growth erodes the benefit
 * ("today's large page is tomorrow's small page"), and (c) techniques
 * that help base pages stay relevant. Column 'residual' shows how
 * much translation overhead remains with large pages: the fraction of
 * instructions still generating page walks.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Ablation (paper SVI)",
                        "4 KB base pages vs 2 MB large pages",
                        base);

    system::TablePrinter table({"app", "walks:4K", "walks:2M",
                                "simt:4K", "simt:2M"});
    table.printHeader(std::cout);

    auto params4k = system::experimentParams();
    auto params2m = params4k;
    params2m.useLargePages = true;

    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto f4 = system::runOne(
            system::withScheduler(base, core::SchedulerKind::Fcfs),
            app, params4k).stats;
        const auto s4 = system::runOne(
            system::withScheduler(base,
                                  core::SchedulerKind::SimtAware),
            app, params4k).stats;
        const auto f2 = system::runOne(
            system::withScheduler(base, core::SchedulerKind::Fcfs),
            app, params2m).stats;
        const auto s2 = system::runOne(
            system::withScheduler(base,
                                  core::SchedulerKind::SimtAware),
            app, params2m).stats;

        table.printRow(std::cout,
                       {app, std::to_string(f4.walkRequests),
                        std::to_string(f2.walkRequests),
                        fmt(system::speedup(s4, f4)),
                        fmt(system::speedup(s2, f2))});
    }

    std::cout
        << "\nReading: at Table II footprints (tens to hundreds of MB "
           "= 30-270 large pages), 2 MB entries fit\nentirely in the "
           "512-entry shared TLB: walks nearly vanish and scheduling "
           "headroom with them. This\nis exactly the caveat the "
           "paper's SVI concedes — the benefit hinges on footprint vs "
           "TLB reach\n(\"today's large page effectively becomes "
           "tomorrow's small page\"): footprints a few hundred times\n"
           "larger (or multi-tenant TLB sharing) restore base-page-"
           "style thrashing at 2 MB granularity, which\nis why "
           "base-page techniques like walk scheduling stay relevant. "
           "The paper could not simulate such\nfootprints either "
           "(\"exorbitant simulation time\").\n";
    return 0;
}
