/**
 * @file
 * Multi-program translation contention (beyond the paper's figures;
 * its §III and §VII point to QoS-aware walk scheduling as follow-on
 * work, citing the memory-controller literature and MASK).
 *
 * Co-runs an irregular, translation-heavy application with a regular,
 * translation-light one on the same GPU. Under FCFS the regular app's
 * rare walks queue behind the irregular app's floods; the SIMT-aware
 * scheduler's SJF scoring naturally prioritizes them (its "jobs" are
 * tiny), shielding the victim — a QoS effect the paper predicts but
 * does not evaluate.
 */

#include "bench_common.hh"

#include "system/system.hh"

namespace {

using namespace bench;

/** A co-run job: two apps share one System; the per-app finish times
 *  land in RunResult::extra. */
exp::Job
corunJob(const system::SystemConfig &base, core::SchedulerKind kind,
         const std::string &aggressor, const std::string &victim)
{
    exp::Job job;
    job.workload = aggressor + "+" + victim;
    job.scheduler = core::toString(kind);
    const auto cfg = exp::withScheduler(base, kind);
    job.body = [cfg, aggressor, victim] {
        system::System sys(cfg);
        auto params = exp::experimentParams();
        params.wavefronts = 128; // per app; 256 total
        sys.loadBenchmark(aggressor, params, /*app_id=*/0);
        sys.loadBenchmark(victim, params, /*app_id=*/1);
        exp::RunResult res;
        res.stats = sys.run();
        res.extra["aggressor_finish"] = static_cast<double>(
            res.stats.appFinishTicks.at(0));
        res.extra["victim_finish"] = static_cast<double>(
            res.stats.appFinishTicks.at(1));
        return res;
    };
    return job;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (multi-program)";
    const char *desc = "Irregular aggressor + regular victim sharing "
                       "the translation hardware";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    const std::vector<std::pair<std::string, std::string>> pairs{
        {"MVT", "HOT"}, {"GEV", "KMN"}, {"XSB", "BCK"}};

    // Solo FCFS reference runs at the co-run wavefront count.
    exp::SweepSpec solo;
    solo.params.wavefronts = 128;
    solo.workloads = {"MVT", "HOT", "GEV", "KMN", "XSB", "BCK"};
    solo.schedulers = {core::SchedulerKind::Fcfs};

    auto jobs = solo.expand();
    for (const auto &[aggressor, victim] : pairs)
        for (const auto kind :
             {core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware,
              core::SchedulerKind::FairShare})
            jobs.push_back(corunJob(solo.base, kind, aggressor,
                                    victim));
    const auto result = exp::runJobs(jobs, opts.runner);

    exp::Report report(id, desc, solo.base);
    auto &table = report.addTable({"pair", "victim:fcfs",
                                   "victim:simt", "victim:fair",
                                   "aggr:fcfs", "aggr:simt",
                                   "aggr:fair"});

    for (const auto &[aggressor, victim] : pairs) {
        const double victim_solo = static_cast<double>(
            result.stats(victim, core::SchedulerKind::Fcfs)
                .runtimeTicks);
        const double aggr_solo = static_cast<double>(
            result.stats(aggressor, core::SchedulerKind::Fcfs)
                .runtimeTicks);
        const std::string pair = aggressor + "+" + victim;
        const auto &fcfs =
            result.at(pair, core::SchedulerKind::Fcfs);
        const auto &simt =
            result.at(pair, core::SchedulerKind::SimtAware);
        const auto &fair =
            result.at(pair, core::SchedulerKind::FairShare);

        // Slowdown of each app relative to running alone under FCFS.
        auto slowdown = [](double corun_t, double solo_t) {
            return corun_t / solo_t;
        };
        table.addRow(
            {pair,
             fmt(slowdown(fcfs.extra.at("victim_finish"),
                          victim_solo), 2) + "x",
             fmt(slowdown(simt.extra.at("victim_finish"),
                          victim_solo), 2) + "x",
             fmt(slowdown(fair.extra.at("victim_finish"),
                          victim_solo), 2) + "x",
             fmt(slowdown(fcfs.extra.at("aggressor_finish"),
                          aggr_solo), 2) + "x",
             fmt(slowdown(simt.extra.at("aggressor_finish"),
                          aggr_solo), 2) + "x",
             fmt(slowdown(fair.extra.at("aggressor_finish"),
                          aggr_solo), 2) + "x"});
    }

    report.addNote(
        "Reading: columns are each app's co-run completion time "
        "over its solo FCFS runtime (lower is\nbetter). SIMT-aware "
        "scheduling shields the translation-light victim (its walks "
        "are always the\nshortest jobs) without starving the "
        "aggressor; fair-share adds an explicit per-app round-robin"
        "\ngrant on top — the QoS direction the paper's conclusion "
        "proposes for follow-on work.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
