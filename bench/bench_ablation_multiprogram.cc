/**
 * @file
 * Multi-program translation contention (beyond the paper's figures;
 * its §III and §VII point to QoS-aware walk scheduling as follow-on
 * work, citing the memory-controller literature and MASK).
 *
 * Co-runs an irregular, translation-heavy application with a regular,
 * translation-light one on the same GPU. Under FCFS the regular app's
 * rare walks queue behind the irregular app's floods; the SIMT-aware
 * scheduler's SJF scoring naturally prioritizes them (its "jobs" are
 * tiny), shielding the victim — a QoS effect the paper predicts but
 * does not evaluate.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace bench;

struct CoRun
{
    sim::Tick aggressorFinish = 0;
    sim::Tick victimFinish = 0;
};

CoRun
corun(const system::SystemConfig &cfg, const std::string &aggressor,
      const std::string &victim)
{
    system::System sys(cfg);
    auto params = system::experimentParams();
    params.wavefronts = 128; // per app; 256 total
    sys.loadBenchmark(aggressor, params, /*app_id=*/0);
    sys.loadBenchmark(victim, params, /*app_id=*/1);
    const auto stats = sys.run();
    return CoRun{stats.appFinishTicks.at(0), stats.appFinishTicks.at(1)};
}

sim::Tick
solo(const system::SystemConfig &cfg, const std::string &app)
{
    system::System sys(cfg);
    auto params = system::experimentParams();
    params.wavefronts = 128;
    sys.loadBenchmark(app, params);
    return sys.run().runtimeTicks;
}

} // namespace

int
main()
{
    const auto base = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Ablation (multi-program)",
                        "Irregular aggressor + regular victim sharing "
                        "the translation hardware",
                        base);

    const std::vector<std::pair<std::string, std::string>> pairs{
        {"MVT", "HOT"}, {"GEV", "KMN"}, {"XSB", "BCK"}};

    system::TablePrinter table({"pair", "victim:fcfs", "victim:simt",
                                "victim:fair", "aggr:fcfs",
                                "aggr:simt", "aggr:fair"});
    table.printHeader(std::cout);

    for (const auto &[aggressor, victim] : pairs) {
        const auto fcfs_cfg =
            system::withScheduler(base, core::SchedulerKind::Fcfs);
        const auto simt_cfg = system::withScheduler(
            base, core::SchedulerKind::SimtAware);
        const auto fair_cfg = system::withScheduler(
            base, core::SchedulerKind::FairShare);

        const sim::Tick victim_solo = solo(fcfs_cfg, victim);
        const sim::Tick aggr_solo = solo(fcfs_cfg, aggressor);
        const auto fcfs = corun(fcfs_cfg, aggressor, victim);
        const auto simt = corun(simt_cfg, aggressor, victim);
        const auto fair = corun(fair_cfg, aggressor, victim);

        // Slowdown of each app relative to running alone under FCFS.
        auto slowdown = [](sim::Tick corun_t, sim::Tick solo_t) {
            return static_cast<double>(corun_t)
                   / static_cast<double>(solo_t);
        };
        table.printRow(
            std::cout,
            {aggressor + "+" + victim,
             fmt(slowdown(fcfs.victimFinish, victim_solo), 2) + "x",
             fmt(slowdown(simt.victimFinish, victim_solo), 2) + "x",
             fmt(slowdown(fair.victimFinish, victim_solo), 2) + "x",
             fmt(slowdown(fcfs.aggressorFinish, aggr_solo), 2) + "x",
             fmt(slowdown(simt.aggressorFinish, aggr_solo), 2) + "x",
             fmt(slowdown(fair.aggressorFinish, aggr_solo), 2) + "x"});
    }

    std::cout
        << "\nReading: columns are each app's co-run completion time "
           "over its solo FCFS runtime (lower is\nbetter). SIMT-aware "
           "scheduling shields the translation-light victim (its walks "
           "are always the\nshortest jobs) without starving the "
           "aggressor; fair-share adds an explicit per-app round-robin"
           "\ngrant on top — the QoS direction the paper's conclusion "
           "proposes for follow-on work.\n";
    return 0;
}
