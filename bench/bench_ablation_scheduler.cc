/**
 * @file
 * Ablation study (beyond the paper's figures): how much of the
 * SIMT-aware speedup comes from each of the two key ideas?
 *   - sjf-only:   key idea 1 (shortest-job-first scoring) alone
 *   - batch-only: key idea 2 (same-instruction batching) alone
 *   - simt-aware: both (the paper's scheduler)
 * plus two design-subtlety ablations on MVT: the anti-starvation
 * aging override and the PWC counter-pinned replacement.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation";
    const char *desc = "Decomposing the SIMT-aware speedup "
                       "(all values vs FCFS)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    // Main grid: every irregular app under the decomposed schedulers.
    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {
        core::SchedulerKind::Fcfs, core::SchedulerKind::SjfOnly,
        core::SchedulerKind::BatchOnly, core::SchedulerKind::SimtAware};

    // Design-subtlety ablations on MVT, run in the same pool.
    exp::SweepSpec subtle;
    subtle.workloads = {"MVT"};
    subtle.schedulers = {core::SchedulerKind::SimtAware};
    subtle.variants = {
        {"no-pwc-pinning",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.iommu.pwc.pinScoredEntries = false;
         }},
        {"aggressive-aging",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.simt.agingThreshold = 64;
         }},
    };

    const auto result = exp::runJobs(
        exp::concat(spec.expand(), subtle.expand()), opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "sjf-only", "batch-only", "simt-aware"});

    MeanTracker mean_sjf, mean_batch, mean_simt;
    for (const auto &app : spec.workloads) {
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        const double s_sjf = exp::speedup(
            result.stats(app, core::SchedulerKind::SjfOnly), fcfs);
        const double s_batch = exp::speedup(
            result.stats(app, core::SchedulerKind::BatchOnly), fcfs);
        const double s_simt = exp::speedup(
            result.stats(app, core::SchedulerKind::SimtAware), fcfs);
        mean_sjf.add(s_sjf);
        mean_batch.add(s_batch);
        mean_simt.add(s_simt);
        table.addRow({app, fmt(s_sjf), fmt(s_batch), fmt(s_simt)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", fmt(mean_sjf.mean()),
                  fmt(mean_batch.mean()), fmt(mean_simt.mean())});
    report.addSummary("geomean_speedup_sjf_only", mean_sjf.mean());
    report.addSummary("geomean_speedup_batch_only", mean_batch.mean());
    report.addSummary("geomean_speedup_simt_aware", mean_simt.mean());

    const auto &mvt_fcfs =
        result.stats("MVT", core::SchedulerKind::Fcfs);
    const double s_full = exp::speedup(
        result.stats("MVT", core::SchedulerKind::SimtAware), mvt_fcfs);
    const double s_no_pin = exp::speedup(
        result.stats("MVT", core::SchedulerKind::SimtAware,
                     "no-pwc-pinning"),
        mvt_fcfs);
    const double s_eager = exp::speedup(
        result.stats("MVT", core::SchedulerKind::SimtAware,
                     "aggressive-aging"),
        mvt_fcfs);

    report.addNote("Design subtleties (MVT, speedup vs FCFS):\n"
                   "  full SIMT-aware              " + fmt(s_full)
                   + "\n  without PWC pinning          "
                   + fmt(s_no_pin)
                   + "\n  aggressive aging (thr=64)    "
                   + fmt(s_eager));
    report.addSummary("mvt_speedup_full", s_full);
    report.addSummary("mvt_speedup_no_pwc_pinning", s_no_pin);
    report.addSummary("mvt_speedup_aggressive_aging", s_eager);

    report.addNote(
        "(The paper evaluates only the full scheduler; this ablation "
        "quantifies each mechanism's share,\nwhich DESIGN.md calls out "
        "as an open question the paper leaves to follow-on work.)");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
