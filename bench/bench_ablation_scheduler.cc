/**
 * @file
 * Ablation study (beyond the paper's figures): how much of the
 * SIMT-aware speedup comes from each of the two key ideas?
 *   - sjf-only:   key idea 1 (shortest-job-first scoring) alone
 *   - batch-only: key idea 2 (same-instruction batching) alone
 *   - simt-aware: both (the paper's scheduler)
 * plus two design-subtlety ablations on MVT: the anti-starvation
 * aging override and the PWC counter-pinned replacement.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();

    system::printBanner(std::cout, "Ablation",
                        "Decomposing the SIMT-aware speedup "
                        "(all values vs FCFS)",
                        base);

    system::TablePrinter table(
        {"app", "sjf-only", "batch-only", "simt-aware"});
    table.printHeader(std::cout);

    MeanTracker mean_sjf, mean_batch, mean_simt;
    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto fcfs = run(
            system::withScheduler(base, core::SchedulerKind::Fcfs),
            app);
        const auto sjf = run(
            system::withScheduler(base, core::SchedulerKind::SjfOnly),
            app);
        const auto batch = run(
            system::withScheduler(base, core::SchedulerKind::BatchOnly),
            app);
        const auto simt = run(
            system::withScheduler(base, core::SchedulerKind::SimtAware),
            app);

        const double s_sjf = system::speedup(sjf, fcfs);
        const double s_batch = system::speedup(batch, fcfs);
        const double s_simt = system::speedup(simt, fcfs);
        mean_sjf.add(s_sjf);
        mean_batch.add(s_batch);
        mean_simt.add(s_simt);
        table.printRow(std::cout, {app, fmt(s_sjf), fmt(s_batch),
                                   fmt(s_simt)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout,
                   {"GEOMEAN", fmt(mean_sjf.mean()),
                    fmt(mean_batch.mean()), fmt(mean_simt.mean())});

    // Design-subtlety ablations on MVT.
    std::cout << "\nDesign subtleties (MVT, speedup vs FCFS):\n";
    const auto fcfs = run(
        system::withScheduler(base, core::SchedulerKind::Fcfs), "MVT");

    auto no_pin = system::withScheduler(
        base, core::SchedulerKind::SimtAware);
    no_pin.iommu.pwc.pinScoredEntries = false;
    const auto no_pin_stats = run(no_pin, "MVT");

    auto eager_aging = system::withScheduler(
        base, core::SchedulerKind::SimtAware);
    eager_aging.simt.agingThreshold = 64;
    const auto eager_stats = run(eager_aging, "MVT");

    const auto full = run(
        system::withScheduler(base, core::SchedulerKind::SimtAware),
        "MVT");

    std::cout << "  full SIMT-aware              "
              << fmt(system::speedup(full, fcfs)) << "\n"
              << "  without PWC pinning          "
              << fmt(system::speedup(no_pin_stats, fcfs)) << "\n"
              << "  aggressive aging (thr=64)    "
              << fmt(system::speedup(eager_stats, fcfs)) << "\n";

    std::cout << "\n(The paper evaluates only the full scheduler; this "
                 "ablation quantifies each mechanism's share,\nwhich "
                 "DESIGN.md calls out as an open question the paper "
                 "leaves to follow-on work.)\n";
    return 0;
}
