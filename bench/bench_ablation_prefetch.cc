/**
 * @file
 * IOMMU next-page prefetching ablation (extension; the paper's
 * related work cites TLB prefetchers [44] as a complementary
 * direction).
 *
 * The prefetcher is strictly idle-bandwidth: after a demand walk
 * completes and no other walk is waiting, the freed walker
 * speculatively walks the next virtual page. Streaming (regular)
 * workloads should see demand-walk reductions; random-access
 * workloads should see none; and because it never delays demand
 * walks, nothing should slow down.
 */

#include "bench_common.hh"

#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (prefetch)";
    const char *desc = "Idle-bandwidth next-page walk prefetching "
                       "(SIMT-aware scheduler)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.base = exp::withScheduler(system::SystemConfig::baseline(),
                                   core::SchedulerKind::SimtAware);
    spec.workloads = workload::allWorkloadNames();
    spec.schedulers = {core::SchedulerKind::SimtAware};
    spec.variants = {
        {"prefetch-off",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.iommu.prefetchNextPage = false;
         }},
        {"prefetch-on",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.iommu.prefetchNextPage = true;
         }},
    };
    // Custom body: also capture the prefetch-issue counter.
    spec.body = [](const exp::JobSpec &job) {
        system::System sys(job.cfg);
        sys.loadBenchmark(job.workload, job.params);
        exp::RunResult res;
        res.stats = sys.run();
        res.extra["prefetches"] =
            static_cast<double>(sys.iommu().prefetches());
        return res;
    };
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "walks:off", "walks:on", "prefetches", "speedup"});

    for (const auto &app : spec.workloads) {
        const auto &off = result.at(
            app, core::SchedulerKind::SimtAware, "prefetch-off");
        const auto &on = result.at(
            app, core::SchedulerKind::SimtAware, "prefetch-on");
        table.addRow(
            {app, std::to_string(off.stats.walkRequests),
             std::to_string(on.stats.walkRequests),
             std::to_string(static_cast<std::uint64_t>(
                 on.extra.at("prefetches"))),
             fmt(exp::speedup(on.stats, off.stats))});
    }

    report.addNote(
        "Reading: sequential streams (regular apps, NW's diagonal "
        "bands) convert demand walks into\nprefetch hits; random "
        "access (XSB) gains nothing. Speedups hover near 1.0 because "
        "the irregular\napps' walkers are rarely idle — the "
        "conservative policy's cost guarantee.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
