/**
 * @file
 * Translation-prefetcher factorial ablation (extension; the paper's
 * related work cites TLB prefetchers [44] as a complementary
 * direction).
 *
 * Full factorial: prefetch policy {off, next-page, spp} x walk
 * scheduler {fcfs, simt-aware} x SIMT-aware aging {on, off}, over all
 * Table II workloads, plus a speculative-admission axis {idle,
 * reserved, budget} for the aging-on cells of each live prefetcher.
 * Under idle admission every speculative walk is idle-bandwidth only,
 * so no cell may slow demand traffic down; the interesting questions
 * are (a) whether SPP's signature-path lookahead finds the strided
 * sub-streams inside the irregular apps that next-page misses, (b)
 * whether the benefit survives scheduler and aging interaction, and
 * (c) whether routing predictions through the speculative walk class
 * (reserved walkers / token budget) buys coverage without taxing
 * demand latency. Per-cell accuracy/coverage/pollution land in the
 * JSON via each run's stats.prefetch block.
 */

#include "bench_common.hh"

#include "system/system.hh"

namespace {

using namespace bench;

const char *
pfName(iommu::PrefetchKind kind)
{
    return iommu::toString(kind);
}

/** Walk latency the GPU actually waits on: the mean tick count until
 *  an instruction's last outstanding walk completes (demand only). */
double
walkLatency(const system::RunStats &stats)
{
    return stats.walks.avgLastCompletedLatency;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *id = "Ablation (prefetch factorial)";
    const char *desc = "Translation prefetch {off, next, spp} x "
                       "scheduler {fcfs, simt-aware} x aging {on, off}";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    constexpr iommu::PrefetchKind kinds[] = {
        iommu::PrefetchKind::Off, iommu::PrefetchKind::NextPage,
        iommu::PrefetchKind::Spp};
    constexpr bool agings[] = {true, false};
    // Aging off = an unreachable starvation bound: the SIMT-aware
    // scheduler never overrides its batch/SJF pick.
    constexpr std::uint64_t noAgingThreshold = ~std::uint64_t(0);

    exp::SweepSpec spec;
    spec.base = system::SystemConfig::baseline();
    spec.workloads = workload::allWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    for (const auto kind : kinds) {
        for (const bool aging : agings) {
            std::string name = std::string("pf-") + pfName(kind)
                               + (aging ? "/aging-on" : "/aging-off");
            spec.variants.push_back(
                {std::move(name),
                 [kind, aging](system::SystemConfig &cfg,
                               workload::WorkloadParams &) {
                     cfg.iommu.prefetch.kind = kind;
                     if (!aging)
                         cfg.simt.agingThreshold = noAgingThreshold;
                 }});
        }
    }
    // Admission axis: route predictions through the speculative walk
    // class instead of the legacy idle-walker direct start. Only the
    // aging-on cells of the live prefetchers — idle admission is the
    // "pf-*/aging-on" variants above.
    constexpr iommu::SpecAdmission admissions[] = {
        iommu::SpecAdmission::Reserved, iommu::SpecAdmission::Budget};
    for (const auto kind :
         {iommu::PrefetchKind::NextPage, iommu::PrefetchKind::Spp}) {
        for (const auto adm : admissions) {
            std::string name = std::string("pf-") + pfName(kind)
                               + "/adm-" + iommu::toString(adm);
            spec.variants.push_back(
                {std::move(name),
                 [kind, adm](system::SystemConfig &cfg,
                             workload::WorkloadParams &) {
                     cfg.iommu.prefetch.kind = kind;
                     cfg.iommu.specAdmission = adm;
                 }});
        }
    }
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);

    // Headline table: the paper's scheduler (SIMT-aware, aging on),
    // per-app demand-walk latency across the three policies plus the
    // SPP pollution-policing counters.
    auto &table = report.addTable(
        {"app", "walklat:off", "walklat:next", "walklat:spp",
         "spp:issued", "spp:accuracy", "spp:coverage", "spp:pollution"},
        "SIMT-aware, aging on", 13);
    for (const auto &app : spec.workloads) {
        const auto &off = result.stats(
            app, core::SchedulerKind::SimtAware, "pf-off/aging-on");
        const auto &next = result.stats(
            app, core::SchedulerKind::SimtAware, "pf-next/aging-on");
        const auto &spp = result.stats(
            app, core::SchedulerKind::SimtAware, "pf-spp/aging-on");
        table.addRow({app, fmt(walkLatency(off)), fmt(walkLatency(next)),
                      fmt(walkLatency(spp)),
                      std::to_string(spp.prefetch.issued),
                      fmt(spp.prefetch.accuracy),
                      fmt(spp.prefetch.coverage),
                      fmt(spp.prefetch.pollution)});
    }

    // Factorial geomeans over the irregular apps (the paper's focus):
    // walk-latency improvement = latency(off) / latency(policy) in the
    // same scheduler/aging cell, > 1 is better.
    auto &cells = report.addTable(
        {"scheduler", "aging", "next:improvement", "spp:improvement",
         "next:pollution", "spp:pollution"},
        "Irregular-app geomeans per factorial cell", 17);
    for (const auto sched : spec.schedulers) {
        for (const bool aging : agings) {
            const std::string suffix =
                aging ? "/aging-on" : "/aging-off";
            std::vector<double> nextImp, sppImp;
            double nextPol = 0.0, sppPol = 0.0;
            unsigned apps = 0;
            for (const auto &app : spec.workloads) {
                if (!isIrregular(app))
                    continue;
                const auto &off =
                    result.stats(app, sched, "pf-off" + suffix);
                const auto &next =
                    result.stats(app, sched, "pf-next" + suffix);
                const auto &spp =
                    result.stats(app, sched, "pf-spp" + suffix);
                nextImp.push_back(walkLatency(off)
                                  / walkLatency(next));
                sppImp.push_back(walkLatency(off) / walkLatency(spp));
                nextPol += next.prefetch.pollution;
                sppPol += spp.prefetch.pollution;
                ++apps;
            }
            const double nextG = exp::geomean(nextImp);
            const double sppG = exp::geomean(sppImp);
            cells.addRow({core::toString(sched),
                          aging ? "on" : "off", fmt(nextG), fmt(sppG),
                          fmt(nextPol / apps), fmt(sppPol / apps)});
            const std::string key = std::string(core::toString(sched))
                                    + (aging ? "_aging_on"
                                             : "_aging_off");
            report.addSummary("next_irregular_improvement_" + key,
                              nextG);
            report.addSummary("spp_irregular_improvement_" + key,
                              sppG);
        }
    }

    // Admission axis: same improvement metric, SIMT-aware scheduler,
    // idle (direct start on an idle walker) vs the two buffered
    // speculative-class policies.
    auto &adm_cells = report.addTable(
        {"prefetch", "admission", "improvement", "coverage",
         "pollution"},
        "Irregular-app geomeans per admission cell (SIMT-aware)", 13);
    for (const auto kind :
         {iommu::PrefetchKind::NextPage, iommu::PrefetchKind::Spp}) {
        const std::string pf = std::string("pf-") + pfName(kind);
        for (const char *adm : {"idle", "reserved", "budget"}) {
            const std::string variant =
                std::string(adm) == "idle" ? pf + "/aging-on"
                                           : pf + "/adm-" + adm;
            std::vector<double> imp;
            double cov = 0.0, pol = 0.0;
            unsigned apps = 0;
            for (const auto &app : spec.workloads) {
                if (!isIrregular(app))
                    continue;
                const auto &off = result.stats(
                    app, core::SchedulerKind::SimtAware,
                    "pf-off/aging-on");
                const auto &run = result.stats(
                    app, core::SchedulerKind::SimtAware, variant);
                imp.push_back(walkLatency(off) / walkLatency(run));
                cov += run.prefetch.coverage;
                pol += run.prefetch.pollution;
                ++apps;
            }
            const double impG = exp::geomean(imp);
            adm_cells.addRow({pf, adm, fmt(impG), fmt(cov / apps),
                              fmt(pol / apps)});
            report.addSummary(std::string(pfName(kind))
                                  + "_irregular_improvement_admission_"
                                  + adm,
                              impG);
        }
    }

    report.addNote(
        "Reading: improvement = walklat(off) / walklat(policy) within "
        "the same scheduler/aging cell,\ngeomean over the irregular "
        "apps. Next-page only helps streams; SPP's per-wavefront "
        "delta\nsignatures also cover the strided sub-streams inside "
        "the irregular apps, so its column should\ndominate. Pollution "
        "(prefetched translations evicted before first use) polices "
        "the cost side:\nunder idle admission speculative walks burn "
        "only idle walkers, so pollution is the one way a\npolicy can "
        "hurt. The admission table swaps that gate for the speculative "
        "walk class: reserved\ndedicates walkers to predictions, "
        "budget meters them per demand-dispatch window, and aged\n"
        "entries are cancelled before dispatch instead of occupying a "
        "walker.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
