/**
 * @file
 * IOMMU next-page prefetching ablation (extension; the paper's
 * related work cites TLB prefetchers [44] as a complementary
 * direction).
 *
 * The prefetcher is strictly idle-bandwidth: after a demand walk
 * completes and no other walk is waiting, the freed walker
 * speculatively walks the next virtual page. Streaming (regular)
 * workloads should see demand-walk reductions; random-access
 * workloads should see none; and because it never delays demand
 * walks, nothing should slow down.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base =
        system::withScheduler(system::SystemConfig::baseline(),
                              core::SchedulerKind::SimtAware);
    system::printBanner(std::cout, "Ablation (prefetch)",
                        "Idle-bandwidth next-page walk prefetching "
                        "(SIMT-aware scheduler)",
                        base);

    system::TablePrinter table({"app", "walks:off", "walks:on",
                                "prefetches", "speedup"});
    table.printHeader(std::cout);

    auto params = system::experimentParams();

    auto run_with = [&](const std::string &app, bool prefetch,
                        std::uint64_t *prefetches) {
        auto cfg = base;
        cfg.iommu.prefetchNextPage = prefetch;
        system::System sys(cfg);
        sys.loadBenchmark(app, params);
        const auto stats = sys.run();
        if (prefetches)
            *prefetches = sys.iommu().prefetches();
        return stats;
    };

    for (const auto &app : workload::allWorkloadNames()) {
        std::uint64_t prefetches = 0;
        const auto off = run_with(app, false, nullptr);
        const auto on = run_with(app, true, &prefetches);
        table.printRow(std::cout,
                       {app, std::to_string(off.walkRequests),
                        std::to_string(on.walkRequests),
                        std::to_string(prefetches),
                        fmt(system::speedup(on, off))});
    }

    std::cout << "\nReading: sequential streams (regular apps, NW's "
                 "diagonal bands) convert demand walks into\nprefetch "
                 "hits; random access (XSB) gains nothing. Speedups "
                 "hover near 1.0 because the irregular\napps' walkers "
                 "are rarely idle — the conservative policy's cost "
                 "guarantee.\n";
    return 0;
}
