/**
 * @file
 * Table I: the baseline system configuration.
 *
 * Prints our baseline next to the paper's Table I values; every entry
 * that Table I specifies is reproduced verbatim, plus the parameters
 * the paper leaves implicit (and this model therefore had to choose).
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto cfg = system::SystemConfig::baseline();

    std::cout << "Table I: baseline system configuration\n"
              << "=======================================\n\n"
              << "Parameters specified by the paper (reproduced "
                 "verbatim):\n\n";
    cfg.print(std::cout);

    std::cout
        << "\nParameters the paper leaves implicit (this model's "
           "calibrated choices):\n"
        << "  resident wavefronts per CU   "
        << cfg.gpu.wavefrontsPerCu
        << " (dispatch queue refills freed slots)\n"
        << "  GPU->IOMMU hop latency       "
        << cfg.iommu.hopLatency / cfg.gpu.clockPeriod
        << " GPU cycles\n"
        << "  TLB/IOMMU port rate          1 lookup per GPU cycle\n"
        << "  walker PTE path              "
        << (cfg.iommu.useWalkCache
                ? "via a CPU-complex cache (as gem5's walker)"
                : "straight to DRAM")
        << "\n"
        << "  walk cache                   "
        << cfg.iommu.walkCache.sizeBytes / 1024 << " KB, "
        << cfg.iommu.walkCache.associativity << "-way, "
        << cfg.iommu.walkCache.hitLatency / cfg.gpu.clockPeriod
        << "-cycle hits\n"
        << "  physical frame allocation    "
        << (cfg.scrambleFrames ? "scrambled (OS-like)" : "linear")
        << "\n";
    return 0;
}
