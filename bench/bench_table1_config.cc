/**
 * @file
 * Table I: the baseline system configuration.
 *
 * Prints our baseline next to the paper's Table I values; every entry
 * that Table I specifies is reproduced verbatim, plus the parameters
 * the paper leaves implicit (and this model therefore had to choose).
 */

#include <sstream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Table I";
    const char *desc = "baseline system configuration (parameters "
                       "the paper specifies, reproduced verbatim)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    const auto cfg = system::SystemConfig::baseline();
    exp::Report report(id, desc, cfg);

    std::ostringstream implicit;
    implicit
        << "Parameters the paper leaves implicit (this model's "
           "calibrated choices):\n"
        << "  resident wavefronts per CU   "
        << cfg.gpu.wavefrontsPerCu
        << " (dispatch queue refills freed slots)\n"
        << "  GPU->IOMMU hop latency       "
        << cfg.iommu.hopLatency / cfg.gpu.clockPeriod
        << " GPU cycles\n"
        << "  TLB/IOMMU port rate          1 lookup per GPU cycle\n"
        << "  walker PTE path              "
        << (cfg.iommu.useWalkCache
                ? "via a CPU-complex cache (as gem5's walker)"
                : "straight to DRAM")
        << "\n"
        << "  walk cache                   "
        << cfg.iommu.walkCache.sizeBytes / 1024 << " KB, "
        << cfg.iommu.walkCache.associativity << "-way, "
        << cfg.iommu.walkCache.hitLatency / cfg.gpu.clockPeriod
        << "-cycle hits\n"
        << "  physical frame allocation    "
        << (cfg.scrambleFrames ? "scrambled (OS-like)" : "linear");
    report.addNote(implicit.str());

    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, nullptr);
    return 0;
}
