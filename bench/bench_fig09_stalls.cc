/**
 * @file
 * Figure 9: GPU execution-stage stall cycles with the SIMT-aware
 * scheduler, normalized to FCFS. Stall cycles are ticks during which
 * a CU has resident wavefronts but none can execute.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 9",
                        "CU stall cycles under SIMT-aware scheduling "
                        "(normalized to FCFS)",
                        cfg);

    system::TablePrinter table(
        {"app", "class", "norm.stalls", "paper(approx)"});
    table.printHeader(std::cout);

    const std::map<std::string, double> paper{
        {"XSB", 0.80}, {"MVT", 0.74}, {"ATX", 0.75}, {"NW", 0.85},
        {"BIC", 0.74}, {"GEV", 0.71}, {"SSP", 1.00}, {"MIS", 1.00},
        {"CLR", 1.00}, {"BCK", 1.00}, {"KMN", 1.00}, {"HOT", 1.00}};

    MeanTracker irregular_mean;
    for (const auto &app : workload::allWorkloadNames()) {
        const bool irregular =
            workload::makeWorkload(app)->info().irregular;
        const auto cmp = compareSchedulers(cfg, app);
        const double norm =
            cmp.fcfs.stallTicks > 0
                ? static_cast<double>(cmp.simt.stallTicks)
                      / static_cast<double>(cmp.fcfs.stallTicks)
                : 1.0;
        if (irregular)
            irregular_mean.add(norm);
        table.printRow(std::cout,
                       {app, irregular ? "irregular" : "regular",
                        fmt(norm), fmt(paper.at(app), 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout,
                   {"GEOMEAN", "irregular", fmt(irregular_mean.mean()),
                    "0.77"});

    std::cout << "\npaper (Fig. 9): 23% average stall reduction (up to "
                 "29%) on irregular apps; regular apps unchanged.\n";
    return 0;
}
