/**
 * @file
 * Figure 9: GPU execution-stage stall cycles with the SIMT-aware
 * scheduler, normalized to FCFS. Stall cycles are ticks during which
 * a CU has resident wavefronts but none can execute.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 9";
    const char *desc = "CU stall cycles under SIMT-aware scheduling "
                       "(normalized to FCFS)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::allWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    const std::map<std::string, double> paper{
        {"XSB", 0.80}, {"MVT", 0.74}, {"ATX", 0.75}, {"NW", 0.85},
        {"BIC", 0.74}, {"GEV", 0.71}, {"SSP", 1.00}, {"MIS", 1.00},
        {"CLR", 1.00}, {"BCK", 1.00}, {"KMN", 1.00}, {"HOT", 1.00}};

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "class", "norm.stalls", "paper(approx)"});

    MeanTracker irregular_mean;
    for (const auto &app : spec.workloads) {
        const bool irregular = isIrregular(app);
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        const auto &simt =
            result.stats(app, core::SchedulerKind::SimtAware);
        const double norm =
            fcfs.stallTicks > 0
                ? static_cast<double>(simt.stallTicks)
                      / static_cast<double>(fcfs.stallTicks)
                : 1.0;
        if (irregular)
            irregular_mean.add(norm);
        table.addRow({app, irregular ? "irregular" : "regular",
                      fmt(norm), fmt(paper.at(app), 2)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", "irregular", fmt(irregular_mean.mean()),
                  "0.77"});
    report.addSummary("geomean_norm_stalls_irregular",
                      irregular_mean.mean());

    report.addNote("paper (Fig. 9): 23% average stall reduction (up "
                   "to 29%) on irregular apps; regular apps "
                   "unchanged.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
