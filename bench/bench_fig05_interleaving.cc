/**
 * @file
 * Figure 5: fraction of SIMD instructions whose page walk requests
 * are service-interleaved with requests from other instructions,
 * under the baseline FCFS scheduler. Instructions with fewer than two
 * walks are excluded (they cannot interleave).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 5";
    const char *desc = "Fraction of multi-walk instructions with "
                       "interleaved walk service (FCFS)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::motivationWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs};
    const auto result = exp::runSweep(spec, opts.runner);

    // Approximate bar heights from the paper's Figure 5.
    const std::map<std::string, double> paper{
        {"MVT", 0.45}, {"ATX", 0.77}, {"BIC", 0.55}, {"GEV", 0.70}};

    exp::Report report(id, desc, spec.base);
    auto &table =
        report.addTable({"app", "interleaved", "paper(approx)"});

    for (const auto &app : spec.workloads) {
        const auto &stats =
            result.stats(app, core::SchedulerKind::Fcfs);
        table.addRow({app, fmt(stats.walks.interleavedFraction),
                      fmt(paper.at(app), 2)});
    }

    report.addNote("paper (Fig. 5): 45-77% of multi-walk instructions "
                   "interleave under FCFS because the\nshared L2 TLB "
                   "multiplexes the per-CU miss streams.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
