/**
 * @file
 * Figure 5: fraction of SIMD instructions whose page walk requests
 * are service-interleaved with requests from other instructions,
 * under the baseline FCFS scheduler. Instructions with fewer than two
 * walks are excluded (they cannot interleave).
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 5",
                        "Fraction of multi-walk instructions with "
                        "interleaved walk service (FCFS)",
                        cfg);

    system::TablePrinter table(
        {"app", "interleaved", "paper(approx)"});
    table.printHeader(std::cout);

    // Approximate bar heights from the paper's Figure 5.
    const std::map<std::string, double> paper{
        {"MVT", 0.45}, {"ATX", 0.77}, {"BIC", 0.55}, {"GEV", 0.70}};

    for (const auto &app : workload::motivationWorkloadNames()) {
        const auto stats =
            run(system::withScheduler(cfg, core::SchedulerKind::Fcfs),
                app);
        table.printRow(std::cout,
                       {app, fmt(stats.walks.interleavedFraction),
                        fmt(paper.at(app), 2)});
    }

    std::cout << "\npaper (Fig. 5): 45-77% of multi-walk instructions "
                 "interleave under FCFS because the\nshared L2 TLB "
                 "multiplexes the per-CU miss streams.\n";
    return 0;
}
