/**
 * @file
 * Figure 14: sensitivity of the SIMT-aware speedup to the IOMMU
 * buffer size — the scheduler's lookahead window:
 *   (a) 128 entries (half the baseline)
 *   (b) 512 entries (double the baseline)
 * A smaller window limits reordering opportunity; a larger one
 * increases it. Speedups must grow monotonically with buffer size.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 14";
    const char *desc = "SIMT-aware speedup vs FCFS with varying "
                       "IOMMU buffer size (scheduler lookahead)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    struct Variant
    {
        std::string name;
        unsigned buffer;
        double paperMean;
    };
    const std::vector<Variant> variants{
        {"(a) 128-entry IOMMU buffer", 128, 1.13},
        {"(baseline) 256-entry IOMMU buffer", 256, 1.30},
        {"(b) 512-entry IOMMU buffer", 512, 1.50},
    };

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    for (const auto &v : variants) {
        const unsigned buffer = v.buffer;
        spec.variants.push_back(
            {v.name, [buffer](system::SystemConfig &cfg,
                              workload::WorkloadParams &) {
                 cfg.iommu.bufferEntries = buffer;
             }});
    }
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    for (const auto &v : variants) {
        auto &table = report.addTable({"app", "speedup"});
        table.title = v.name;

        MeanTracker mean;
        for (const auto &app : spec.workloads) {
            const auto &fcfs = result.stats(
                app, core::SchedulerKind::Fcfs, v.name);
            const auto &simt = result.stats(
                app, core::SchedulerKind::SimtAware, v.name);
            const double s = exp::speedup(simt, fcfs);
            mean.add(s);
            table.addRow({app, fmt(s)});
        }
        table.addRule();
        table.addRow({"GEOMEAN", fmt(mean.mean())});
        report.addNote("paper: mean speedup ~" + fmt(v.paperMean, 2));
        report.addSummary(
            "geomean_speedup_" + std::to_string(v.buffer),
            mean.mean());
    }

    report.addNote(
        "paper (Fig. 14): 13% at 128 entries, 30% at 256, 50% at 512 "
        "— lookahead is the scheduler's\nraw material.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
