/**
 * @file
 * Figure 14: sensitivity of the SIMT-aware speedup to the IOMMU
 * buffer size — the scheduler's lookahead window:
 *   (a) 128 entries (half the baseline)
 *   (b) 512 entries (double the baseline)
 * A smaller window limits reordering opportunity; a larger one
 * increases it. Speedups must grow monotonically with buffer size.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();

    system::printBanner(std::cout, "Figure 14",
                        "SIMT-aware speedup vs FCFS with varying "
                        "IOMMU buffer size (scheduler lookahead)",
                        base);

    struct Variant
    {
        std::string name;
        unsigned buffer;
        double paperMean;
    };
    const std::vector<Variant> variants{
        {"(a) 128-entry IOMMU buffer", 128, 1.13},
        {"(baseline) 256-entry IOMMU buffer", 256, 1.30},
        {"(b) 512-entry IOMMU buffer", 512, 1.50},
    };

    for (const auto &v : variants) {
        auto cfg = base;
        cfg.iommu.bufferEntries = v.buffer;

        std::cout << "\n" << v.name << "\n";
        system::TablePrinter table({"app", "speedup"});
        table.printHeader(std::cout);

        MeanTracker mean;
        for (const auto &app : workload::irregularWorkloadNames()) {
            const auto cmp = compareSchedulers(cfg, app);
            const double s = system::speedup(cmp.simt, cmp.fcfs);
            mean.add(s);
            table.printRow(std::cout, {app, fmt(s)});
        }
        table.printRule(std::cout);
        table.printRow(std::cout, {"GEOMEAN", fmt(mean.mean())});
        std::cout << "paper: mean speedup ~" << fmt(v.paperMean, 2)
                  << "\n";
    }

    std::cout << "\npaper (Fig. 14): 13% at 128 entries, 30% at 256, "
                 "50% at 512 — lookahead is the scheduler's\nraw "
                 "material.\n";
    return 0;
}
