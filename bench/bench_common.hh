/**
 * @file
 * Shared helpers for the per-figure experiment binaries.
 *
 * Every bench declares a SweepSpec (workloads x schedulers x config
 * variants), executes it on the ParallelRunner (--jobs), and maps the
 * results into a Report: the paper-figure console table plus optional
 * structured JSON (--json). The paper's (approximate,
 * eyeballed-from-figure) values are printed next to ours for easy
 * comparison; EXPERIMENTS.md records the full paper-vs-measured
 * discussion.
 */

#ifndef GPUWALK_BENCH_BENCH_COMMON_HH
#define GPUWALK_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "exp/bench_cli.hh"
#include "exp/metrics.hh"
#include "exp/report.hh"
#include "workload/registry.hh"

namespace bench {

using namespace gpuwalk;

using exp::fmt;
using exp::MeanTracker;

/** True if Table II classifies @p app as irregular. */
inline bool
isIrregular(const std::string &app)
{
    return workload::makeWorkload(app)->info().irregular;
}

} // namespace bench

#endif // GPUWALK_BENCH_BENCH_COMMON_HH
