/**
 * @file
 * Shared helpers for the per-figure experiment binaries.
 *
 * Every bench prints: a banner with the experiment id and the exact
 * configuration, one row per benchmark in the same layout as the
 * paper's figure, and the paper's (approximate, eyeballed-from-figure)
 * value next to ours for easy comparison. EXPERIMENTS.md records the
 * full paper-vs-measured discussion.
 */

#ifndef GPUWALK_BENCH_BENCH_COMMON_HH
#define GPUWALK_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "system/experiment.hh"
#include "workload/registry.hh"

namespace bench {

using namespace gpuwalk;

/** Runs one (config, workload) simulation with experiment params. */
inline system::RunStats
run(const system::SystemConfig &cfg, const std::string &workload)
{
    return system::runOne(cfg, workload, system::experimentParams())
        .stats;
}

/** Caches per-scheduler runs of one workload under one config. */
struct SchedulerComparison
{
    system::RunStats fcfs;
    system::RunStats simt;
};

inline SchedulerComparison
compareSchedulers(const system::SystemConfig &base,
                  const std::string &workload)
{
    SchedulerComparison out;
    out.fcfs = run(system::withScheduler(base, core::SchedulerKind::Fcfs),
                   workload);
    out.simt = run(
        system::withScheduler(base, core::SchedulerKind::SimtAware),
        workload);
    return out;
}

/** "MEAN" row helper: geometric mean over collected per-app values. */
class MeanTracker
{
  public:
    void add(double v) { values_.push_back(v); }
    double mean() const { return system::geomean(values_); }
    bool empty() const { return values_.empty(); }

  private:
    std::vector<double> values_;
};

inline std::string
fmt(double v, int precision = 3)
{
    return system::TablePrinter::fmt(v, precision);
}

} // namespace bench

#endif // GPUWALK_BENCH_BENCH_COMMON_HH
