/**
 * @file
 * google-benchmark micro-benchmarks of the building blocks on the
 * simulator's hot paths: event queue throughput, TLB lookups, PWC
 * probes, coalescing, and — most relevantly to the paper's "design
 * subtleties" discussion — the cost of the SIMT-aware scheduler's
 * buffer scans at various occupancies (§IV argues the scan is off the
 * critical path; these numbers quantify it).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fcfs_scheduler.hh"
#include "core/simt_aware_scheduler.hh"
#include "core/srpt_scheduler.hh"
#include "iommu/page_walk_cache.hh"
#include "mem/dram.hh"
#include "vm/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "tlb/coalescer.hh"
#include "tlb/set_assoc_tlb.hh"

namespace {

using namespace gpuwalk;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<sim::Tick>(i), [] {});
        eq.run();
        benchmark::DoNotOptimize(eq.executed());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TlbLookupHit(benchmark::State &state)
{
    tlb::SetAssocTlb tlb({"bench", 512, 16});
    for (std::uint64_t i = 0; i < 512; ++i)
        tlb.insert(i << 12, i << 12);
    std::uint64_t vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup((vpn++ % 512) << 12));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupHit);

void
BM_TlbLookupMiss(benchmark::State &state)
{
    tlb::SetAssocTlb tlb({"bench", 512, 16});
    std::uint64_t vpn = 1 << 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup((vpn++) << 12));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupMiss);

void
BM_PwcProbe(benchmark::State &state)
{
    iommu::PageWalkCache pwc({}, 0x1000);
    for (mem::Addr r = 0; r < 8; ++r)
        pwc.fill(r << 21, vm::PtLevel::Pd, 0x4000);
    mem::Addr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pwc.probeEstimate((va++ % 16) << 21));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PwcProbe);

void
BM_Coalesce64Divergent(benchmark::State &state)
{
    std::vector<mem::Addr> lanes;
    for (mem::Addr i = 0; i < 64; ++i)
        lanes.push_back(i * 32768);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb::coalesce(lanes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalesce64Divergent);

void
BM_Coalesce64Coalesced(benchmark::State &state)
{
    std::vector<mem::Addr> lanes;
    for (mem::Addr i = 0; i < 64; ++i)
        lanes.push_back(0x1000 + i * 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb::coalesce(lanes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalesce64Coalesced);

core::WalkBuffer
filledBuffer(std::size_t n)
{
    core::WalkBuffer buf(n);
    for (std::size_t i = 0; i < n; ++i) {
        core::PendingWalk w;
        w.seq = i;
        w.request.instruction = i / 8;
        w.score = (i * 7) % 97 + 1;
        buf.insert(std::move(w));
    }
    return buf;
}

void
BM_FcfsSelect(benchmark::State &state)
{
    auto buf = filledBuffer(static_cast<std::size_t>(state.range(0)));
    core::FcfsScheduler sched;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.selectNext(buf));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcfsSelect)->Arg(64)->Arg(256)->Arg(512);

void
BM_SimtAwareSelect(benchmark::State &state)
{
    auto buf = filledBuffer(static_cast<std::size_t>(state.range(0)));
    core::SimtAwareScheduler sched;
    // Prime the batching register.
    core::PendingWalk primer;
    primer.request.instruction = 1;
    sched.onDispatch(buf, primer);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.selectNext(buf));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimtAwareSelect)->Arg(64)->Arg(256)->Arg(512);

void
BM_SimtAwareDispatchAging(benchmark::State &state)
{
    auto buf = filledBuffer(static_cast<std::size_t>(state.range(0)));
    core::SimtAwareScheduler sched;
    core::PendingWalk w;
    w.seq = 1u << 30; // younger than everything: ages all entries
    for (auto _ : state) {
        sched.onDispatch(buf, w);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimtAwareDispatchAging)->Arg(64)->Arg(256)->Arg(512);

void
BM_DramDecode(benchmark::State &state)
{
    mem::DramConfig cfg;
    mem::DramAddressMapper mapper(cfg);
    mem::Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.decode(addr));
        addr += 4096 + 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramDecode);

void
BM_PageTableMap(benchmark::State &state)
{
    mem::BackingStore store;
    vm::FrameAllocator frames(mem::Addr(32) << 30);
    vm::PageTable table(store, frames);
    mem::Addr va = mem::Addr(1) << 32;
    for (auto _ : state) {
        table.map(va, frames.allocateFrame());
        va += mem::pageSize;
    }
    state.SetItemsProcessed(state.iterations());
}
// Each iteration consumes a frame; cap iterations so adaptive timing
// can't exhaust the 32 GB allocator on fast hosts.
BENCHMARK(BM_PageTableMap)->Iterations(1 << 20);

void
BM_PageTableTranslate(benchmark::State &state)
{
    mem::BackingStore store;
    vm::FrameAllocator frames(mem::Addr(4) << 30);
    vm::PageTable table(store, frames);
    for (mem::Addr i = 0; i < 4096; ++i)
        table.map((mem::Addr(1) << 32) + i * mem::pageSize,
                  frames.allocateFrame());
    mem::Addr va = mem::Addr(1) << 32;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.translate(va));
        va = (mem::Addr(1) << 32)
             + (va + mem::pageSize) % (4096 * mem::pageSize);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableTranslate);

void
BM_BackingStoreRead64(benchmark::State &state)
{
    mem::BackingStore store;
    for (mem::Addr a = 0; a < (1 << 22); a += mem::pageSize)
        store.write64(a, a);
    mem::Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.read64(addr));
        addr = (addr + mem::pageSize) % (1 << 22);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackingStoreRead64);

void
BM_TlbInsertEvict(benchmark::State &state)
{
    tlb::SetAssocTlb tlb({"bench", 512, 16});
    std::uint64_t vpn = 0;
    for (auto _ : state) {
        tlb.insert((vpn++) << 12, vpn << 12);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbInsertEvict);

/**
 * The paper-policy pick cost at a given buffer occupancy, for each of
 * the schedulers whose selection the pick indexes accelerate. The
 * batching register is primed so the Batch rule (the most common pick
 * in steady state) is on the measured path; Fcfs measures the
 * oldest-entry query. BENCH_hotpath.json and the CI perf-smoke gate
 * read the sched:4 (simt-aware) occ:256 row.
 */
void
BM_SchedulerSelectNext(benchmark::State &state)
{
    const auto kind = static_cast<core::SchedulerKind>(state.range(0));
    auto buf = filledBuffer(static_cast<std::size_t>(state.range(1)));
    auto sched = core::makeScheduler(kind);
    core::PendingWalk primer;
    primer.request.instruction = 1;
    sched->onDispatch(buf, primer);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched->selectNext(buf));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerSelectNext)
    ->ArgNames({"sched", "occ"})
    ->ArgsProduct({{static_cast<long>(core::SchedulerKind::Fcfs),
                    static_cast<long>(core::SchedulerKind::SjfOnly),
                    static_cast<long>(core::SchedulerKind::BatchOnly),
                    static_cast<long>(core::SchedulerKind::SimtAware)},
                   {8, 64, 256}});

/** Shared driver for the hash-map lookup benches: n pseudo-random
 *  keys inserted once, then round-robin point lookups (all hits). */
template <typename Map>
void
mapLookupBench(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Map map;
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        keys.push_back(x);
        map[x] = i;
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(keys[i]));
        i = (i + 1 == n) ? 0 : i + 1;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_UnorderedMapLookup(benchmark::State &state)
{
    mapLookupBench<std::unordered_map<std::uint64_t, std::uint64_t>>(
        state);
}
BENCHMARK(BM_UnorderedMapLookup)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_FlatMapLookup(benchmark::State &state)
{
    mapLookupBench<sim::FlatMap<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookup)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_SrptSelect(benchmark::State &state)
{
    auto buf = filledBuffer(static_cast<std::size_t>(state.range(0)));
    core::SrptScheduler sched(false);
    sched.setEstimator([](mem::Addr va, tlb::ContextId) -> unsigned {
        return 1 + (va >> 12) % 4;
    });
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.selectNext(buf));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SrptSelect)->Arg(64)->Arg(256)->Arg(512);

} // namespace

/**
 * Custom main so this binary speaks the same CLI dialect as the other
 * benches: --json maps onto google-benchmark's JSON reporter, --jobs
 * is accepted and ignored (micro-benchmarks are single-threaded by
 * design). Everything else passes through to the library.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
            (void)value("--jobs");
        } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
            passthrough.push_back("--benchmark_out="
                                  + value("--json"));
            passthrough.push_back("--benchmark_out_format=json");
        } else {
            passthrough.push_back(arg);
        }
    }

    std::vector<char *> args;
    for (auto &s : passthrough)
        args.push_back(s.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
