/**
 * @file
 * Figure 2: performance impact of page walk scheduling.
 *
 * Four representative irregular applications (MVT, ATX, BIC, GEV)
 * under Random, FCFS, and SIMT-aware scheduling, each normalized to
 * the Random scheduler — the paper's "schedule matters by >2.1x"
 * motivation figure.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 2",
                        "Performance impact of page walk scheduling "
                        "(speedup over the random scheduler)",
                        cfg);

    // Approximate values eyeballed from the paper's Figure 2 bars.
    const std::map<std::string, std::pair<double, double>> paper{
        {"MVT", {1.35, 1.75}},
        {"ATX", {1.30, 1.70}},
        {"BIC", {1.35, 1.80}},
        {"GEV", {1.40, 2.10}},
    };

    system::TablePrinter table({"app", "random", "fcfs", "simt-aware",
                                "paper:fcfs", "paper:simt"});
    table.printHeader(std::cout);

    MeanTracker mean_fcfs, mean_simt;
    for (const auto &app : workload::motivationWorkloadNames()) {
        const auto random = run(
            system::withScheduler(cfg, core::SchedulerKind::Random),
            app);
        const auto fcfs = run(
            system::withScheduler(cfg, core::SchedulerKind::Fcfs), app);
        const auto simt = run(
            system::withScheduler(cfg, core::SchedulerKind::SimtAware),
            app);

        const double f = system::speedup(fcfs, random);
        const double s = system::speedup(simt, random);
        mean_fcfs.add(f);
        mean_simt.add(s);
        table.printRow(std::cout,
                       {app, "1.000", fmt(f), fmt(s),
                        fmt(paper.at(app).first, 2),
                        fmt(paper.at(app).second, 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout, {"GEOMEAN", "1.000", fmt(mean_fcfs.mean()),
                               fmt(mean_simt.mean()), "-", "-"});

    std::cout << "\n(paper columns are approximate bar heights from "
                 "Fig. 2; the paper's headline is a >2.1x spread\n"
                 "between the best and worst schedule on GEV)\n";
    return 0;
}
