/**
 * @file
 * Figure 2: performance impact of page walk scheduling.
 *
 * Four representative irregular applications (MVT, ATX, BIC, GEV)
 * under Random, FCFS, and SIMT-aware scheduling, each normalized to
 * the Random scheduler — the paper's "schedule matters by >2.1x"
 * motivation figure.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 2";
    const char *desc =
        "Performance impact of page walk scheduling (speedup over the "
        "random scheduler)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::motivationWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Random,
                       core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    // Approximate values eyeballed from the paper's Figure 2 bars.
    const std::map<std::string, std::pair<double, double>> paper{
        {"MVT", {1.35, 1.75}},
        {"ATX", {1.30, 1.70}},
        {"BIC", {1.35, 1.80}},
        {"GEV", {1.40, 2.10}},
    };

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable({"app", "random", "fcfs",
                                   "simt-aware", "paper:fcfs",
                                   "paper:simt"});

    MeanTracker mean_fcfs, mean_simt;
    for (const auto &app : spec.workloads) {
        const auto &random =
            result.stats(app, core::SchedulerKind::Random);
        const double f = exp::speedup(
            result.stats(app, core::SchedulerKind::Fcfs), random);
        const double s = exp::speedup(
            result.stats(app, core::SchedulerKind::SimtAware), random);
        mean_fcfs.add(f);
        mean_simt.add(s);
        table.addRow({app, "1.000", fmt(f), fmt(s),
                      fmt(paper.at(app).first, 2),
                      fmt(paper.at(app).second, 2)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", "1.000", fmt(mean_fcfs.mean()),
                  fmt(mean_simt.mean()), "-", "-"});
    report.addSummary("geomean_fcfs_over_random", mean_fcfs.mean());
    report.addSummary("geomean_simt_over_random", mean_simt.mean());

    report.addNote("(paper columns are approximate bar heights from "
                   "Fig. 2; the paper's headline is a >2.1x spread\n"
                   "between the best and worst schedule on GEV)");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
