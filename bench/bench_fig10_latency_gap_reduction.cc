/**
 * @file
 * Figure 10: the latency gap between the first- and last-completed
 * page walk per instruction with the SIMT-aware scheduler, normalized
 * to the gap under FCFS. Multi-walk instructions only.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 10",
                        "First-to-last walk latency gap, SIMT-aware "
                        "normalized to FCFS",
                        cfg);

    system::TablePrinter table({"app", "norm.gap", "paper(approx)"});
    table.printHeader(std::cout);

    const std::map<std::string, double> paper{
        {"XSB", 0.66}, {"MVT", 0.60}, {"ATX", 0.55},
        {"NW", 0.75},  {"BIC", 0.60}, {"GEV", 0.62}};

    MeanTracker mean;
    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto cmp = compareSchedulers(cfg, app);
        const double norm = cmp.fcfs.walks.avgLatencyGap > 0
                                ? cmp.simt.walks.avgLatencyGap
                                      / cmp.fcfs.walks.avgLatencyGap
                                : 1.0;
        mean.add(norm);
        table.printRow(std::cout,
                       {app, fmt(norm), fmt(paper.at(app), 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout, {"GEOMEAN", fmt(mean.mean()), "0.63"});

    std::cout << "\npaper (Fig. 10): batching shrinks the gap by 37% "
                 "on average. See EXPERIMENTS.md for where this\n"
                 "model's gap behaviour deviates (saturated workloads "
                 "trade gap for walk-count reduction).\n";
    return 0;
}
