/**
 * @file
 * Figure 10: the latency gap between the first- and last-completed
 * page walk per instruction with the SIMT-aware scheduler, normalized
 * to the gap under FCFS. Multi-walk instructions only.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 10";
    const char *desc = "First-to-last walk latency gap, SIMT-aware "
                       "normalized to FCFS";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    const std::map<std::string, double> paper{
        {"XSB", 0.66}, {"MVT", 0.60}, {"ATX", 0.55},
        {"NW", 0.75},  {"BIC", 0.60}, {"GEV", 0.62}};

    exp::Report report(id, desc, spec.base);
    auto &table =
        report.addTable({"app", "norm.gap", "paper(approx)"});

    MeanTracker mean;
    for (const auto &app : spec.workloads) {
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        const auto &simt =
            result.stats(app, core::SchedulerKind::SimtAware);
        const double norm =
            fcfs.walks.avgLatencyGap > 0
                ? simt.walks.avgLatencyGap / fcfs.walks.avgLatencyGap
                : 1.0;
        mean.add(norm);
        table.addRow({app, fmt(norm), fmt(paper.at(app), 2)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", fmt(mean.mean()), "0.63"});
    report.addSummary("geomean_norm_latency_gap", mean.mean());

    report.addNote(
        "paper (Fig. 10): batching shrinks the gap by 37% on average. "
        "See EXPERIMENTS.md for where this\nmodel's gap behaviour "
        "deviates (saturated workloads trade gap for walk-count "
        "reduction).");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
