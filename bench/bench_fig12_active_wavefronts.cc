/**
 * @file
 * Figure 12: number of distinct wavefronts accessing the GPU's shared
 * L2 TLB per fixed-size epoch (1024 L2 accesses), SIMT-aware
 * normalized to FCFS. Fewer distinct wavefronts per epoch = less TLB
 * contention = the mechanism behind Figure 11's walk reduction.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 12";
    const char *desc = "Distinct wavefronts per L2 TLB epoch, "
                       "SIMT-aware normalized to FCFS";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    const std::map<std::string, double> paper{
        {"XSB", 0.60}, {"MVT", 0.55}, {"ATX", 0.55},
        {"NW", 0.70},  {"BIC", 0.55}, {"GEV", 0.52}};

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "fcfs", "simt", "normalized", "paper(approx)"});

    MeanTracker mean;
    for (const auto &app : spec.workloads) {
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        const auto &simt =
            result.stats(app, core::SchedulerKind::SimtAware);
        const double norm =
            fcfs.avgWavefrontsPerEpoch > 0
                ? simt.avgWavefrontsPerEpoch
                      / fcfs.avgWavefrontsPerEpoch
                : 1.0;
        mean.add(norm);
        table.addRow({app, fmt(fcfs.avgWavefrontsPerEpoch, 1),
                      fmt(simt.avgWavefrontsPerEpoch, 1), fmt(norm),
                      fmt(paper.at(app), 2)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", "-", "-", fmt(mean.mean()), "0.58"});
    report.addSummary("geomean_norm_wavefronts_per_epoch",
                      mean.mean());

    report.addNote(
        "paper (Fig. 12): 42% average reduction in distinct "
        "wavefronts per epoch — the scheduler\nimplicitly throttles "
        "translation-heavy wavefronts, protecting TLB locality.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
