/**
 * @file
 * Figure 12: number of distinct wavefronts accessing the GPU's shared
 * L2 TLB per fixed-size epoch (1024 L2 accesses), SIMT-aware
 * normalized to FCFS. Fewer distinct wavefronts per epoch = less TLB
 * contention = the mechanism behind Figure 11's walk reduction.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 12",
                        "Distinct wavefronts per L2 TLB epoch, "
                        "SIMT-aware normalized to FCFS",
                        cfg);

    system::TablePrinter table({"app", "fcfs", "simt", "normalized",
                                "paper(approx)"});
    table.printHeader(std::cout);

    const std::map<std::string, double> paper{
        {"XSB", 0.60}, {"MVT", 0.55}, {"ATX", 0.55},
        {"NW", 0.70},  {"BIC", 0.55}, {"GEV", 0.52}};

    MeanTracker mean;
    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto cmp = compareSchedulers(cfg, app);
        const double norm = cmp.fcfs.avgWavefrontsPerEpoch > 0
                                ? cmp.simt.avgWavefrontsPerEpoch
                                      / cmp.fcfs.avgWavefrontsPerEpoch
                                : 1.0;
        mean.add(norm);
        table.printRow(std::cout,
                       {app, fmt(cmp.fcfs.avgWavefrontsPerEpoch, 1),
                        fmt(cmp.simt.avgWavefrontsPerEpoch, 1),
                        fmt(norm), fmt(paper.at(app), 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout, {"GEOMEAN", "-", "-", fmt(mean.mean()),
                               "0.58"});

    std::cout << "\npaper (Fig. 12): 42% average reduction in distinct "
                 "wavefronts per epoch — the scheduler\nimplicitly "
                 "throttles translation-heavy wavefronts, protecting "
                 "TLB locality.\n";
    return 0;
}
