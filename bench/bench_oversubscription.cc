/**
 * @file
 * Memory oversubscription sweep: demand paging under shrinking
 * resident-frame budgets, across walk schedulers.
 *
 * For each workload x scheduler the sweep runs a fully resident
 * baseline (GMMU off, eager mapping — the configuration of every
 * paper figure) and three demand-paged variants whose resident-frame
 * cap is 1.0x, 0.75x and 0.5x of the workload footprint. Reported:
 * per-run slowdown vs the resident baseline, per-scheduler geometric
 * means, and the raise-to-service fault latency distribution summed
 * over the workloads of each (scheduler, ratio) cell.
 *
 * Not a paper figure: the source paper assumes fully resident
 * workloads. This is the scheduling-under-faults extension the GMMU
 * subsystem exists for — far-fault batching and migration stretch
 * walk latencies by orders of magnitude, which stresses exactly the
 * queue the walk schedulers arbitrate.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Oversubscription";
    const char *desc =
        "Demand paging under shrinking frame budgets, per scheduler";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    // Two irregular apps plus one regular control: faulting runs cost
    // simulated-tick volume, not host time, but the full Table II set
    // adds nothing the ratio axis doesn't already show.
    const std::vector<std::string> apps{"MVT", "GEV", "KMN"};
    const std::vector<core::SchedulerKind> scheds{
        core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware};
    // 1.0 isolates cold-start fault-in (the cap never binds); the
    // tighter points sit below the apps' touched working sets (under
    // half the footprint for every Table II app), so capacity
    // eviction and re-faulting genuinely engage.
    const std::vector<double> ratios{1.0, 0.25, 0.10};

    exp::SweepSpec spec;
    spec.workloads = apps;
    spec.schedulers = scheds;
    // Variant-applied GMMU settings override the base wholesale for
    // the enable bit and the ratio; latency/policy knobs passed on
    // the command line flow through untouched.
    spec.variants.push_back(
        {"resident", [](system::SystemConfig &cfg,
                        workload::WorkloadParams &) {
             cfg.gmmu.enabled = false;
         }});
    for (const double r : ratios) {
        spec.variants.push_back(
            {"oversub-" + fmt(r, 2),
             [r](system::SystemConfig &cfg,
                 workload::WorkloadParams &) {
                 cfg.gmmu.enabled = true;
                 cfg.gmmu.oversubscription = r;
             }});
    }
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable({"app", "scheduler", "ratio",
                                   "slowdown", "faults", "evicted",
                                   "avg fault lat (Mt)"});

    for (const auto &sched : scheds) {
        for (const double r : ratios) {
            const std::string variant = "oversub-" + fmt(r, 2);
            MeanTracker slow_mean;
            std::vector<std::uint64_t> hist(
                vm::faultLatencyBucketBounds().size() + 1, 0);
            std::uint64_t hist_samples = 0;
            for (const auto &app : apps) {
                const auto &base = result.stats(app, sched, "resident");
                const auto &over = result.stats(app, sched, variant);
                // Slowdown: inverse of speedup, > 1 = paging hurts.
                const double s = exp::speedup(base, over);
                slow_mean.add(s);
                const auto &g = over.gmmu;
                for (std::size_t b = 0;
                     b < g.latencyBucketCounts.size()
                     && b < hist.size();
                     ++b) {
                    hist[b] += g.latencyBucketCounts[b];
                }
                hist_samples += g.latencySamples;
                table.addRow(
                    {app, core::toString(sched), fmt(r, 2), fmt(s),
                     std::to_string(g.faultsRaised),
                     std::to_string(g.pagesEvicted),
                     fmt(g.latencyAvg / 1e6, 2)});
            }
            table.addRow({"GEOMEAN", core::toString(sched), fmt(r, 2),
                          fmt(slow_mean.mean()), "", "", ""});
            table.addRule();
            report.addSummary("geomean_slowdown_"
                                  + core::toString(sched) + "_"
                                  + fmt(r, 2),
                              slow_mean.mean());
            report.addSummary("fault_latency_samples_"
                                  + core::toString(sched) + "_"
                                  + fmt(r, 2),
                              static_cast<double>(hist_samples));
        }
    }

    // The fault-latency distribution per (scheduler, ratio) cell,
    // summed over the apps: the scheduler's fingerprint on fault
    // servicing (batch formation changes raise-to-service waits).
    auto &hist_table = report.addTable(
        {"scheduler", "ratio", "bucket (Mt)", "faults"},
        "fault service latency histogram");
    const auto &bounds = vm::faultLatencyBucketBounds();
    for (const auto &sched : scheds) {
        for (const double r : ratios) {
            const std::string variant = "oversub-" + fmt(r, 2);
            std::vector<std::uint64_t> hist(bounds.size() + 1, 0);
            for (const auto &app : apps) {
                const auto &g = result.stats(app, sched, variant).gmmu;
                for (std::size_t b = 0;
                     b < g.latencyBucketCounts.size()
                     && b < hist.size();
                     ++b) {
                    hist[b] += g.latencyBucketCounts[b];
                }
            }
            for (std::size_t b = 0; b < hist.size(); ++b) {
                if (hist[b] == 0)
                    continue; // all-zero buckets add only noise
                const std::string label =
                    b < bounds.size()
                        ? "<= " + fmt(bounds[b] / 1e6, 1)
                        : "> " + fmt(bounds.back() / 1e6, 1);
                hist_table.addRow({core::toString(sched), fmt(r, 2),
                                   label, std::to_string(hist[b])});
            }
            hist_table.addRule();
        }
    }

    report.addNote(
        "slowdown = resident runtime baseline's runtime divided into "
        "the demand-paged runtime (> 1: paging costs time). ratio "
        "1.0 isolates cold-start fault-in; < 1.0 adds capacity "
        "eviction and re-faulting.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
