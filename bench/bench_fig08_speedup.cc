/**
 * @file
 * Figure 8: speedup of the SIMT-aware page walk scheduler over the
 * FCFS baseline, for all twelve benchmarks (six irregular + six
 * regular). The paper's headline result: +30% geomean (up to +41%)
 * on irregular applications, no change on regular ones.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 8",
                        "Speedup of SIMT-aware walk scheduling over "
                        "FCFS",
                        cfg);

    // Approximate bar heights from the paper's Figure 8.
    const std::map<std::string, double> paper{
        {"XSB", 1.25}, {"MVT", 1.35}, {"ATX", 1.30}, {"NW", 1.15},
        {"BIC", 1.35}, {"GEV", 1.41}, {"SSP", 1.00}, {"MIS", 1.00},
        {"CLR", 1.00}, {"BCK", 1.00}, {"KMN", 1.00}, {"HOT", 1.00}};

    system::TablePrinter table(
        {"app", "class", "speedup", "paper(approx)"});
    table.printHeader(std::cout);

    MeanTracker irregular_mean, regular_mean;
    for (const auto &app : workload::allWorkloadNames()) {
        const bool irregular =
            workload::makeWorkload(app)->info().irregular;
        const auto cmp = compareSchedulers(cfg, app);
        const double s = system::speedup(cmp.simt, cmp.fcfs);
        (irregular ? irregular_mean : regular_mean).add(s);
        table.printRow(std::cout,
                       {app, irregular ? "irregular" : "regular",
                        fmt(s), fmt(paper.at(app), 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout, {"GEOMEAN", "irregular",
                               fmt(irregular_mean.mean()), "1.30"});
    table.printRow(std::cout, {"GEOMEAN", "regular",
                               fmt(regular_mean.mean()), "1.00"});

    std::cout << "\npaper (Fig. 8): +30% geomean, up to +41%, on the "
                 "six irregular apps; regular apps unchanged.\n";
    return 0;
}
