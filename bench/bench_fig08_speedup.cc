/**
 * @file
 * Figure 8: speedup of the SIMT-aware page walk scheduler over the
 * FCFS baseline, for all twelve benchmarks (six irregular + six
 * regular). The paper's headline result: +30% geomean (up to +41%)
 * on irregular applications, no change on regular ones.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 8";
    const char *desc =
        "Speedup of SIMT-aware walk scheduling over FCFS";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::allWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    // Approximate bar heights from the paper's Figure 8.
    const std::map<std::string, double> paper{
        {"XSB", 1.25}, {"MVT", 1.35}, {"ATX", 1.30}, {"NW", 1.15},
        {"BIC", 1.35}, {"GEV", 1.41}, {"SSP", 1.00}, {"MIS", 1.00},
        {"CLR", 1.00}, {"BCK", 1.00}, {"KMN", 1.00}, {"HOT", 1.00}};

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "class", "speedup", "paper(approx)"});

    MeanTracker irregular_mean, regular_mean;
    for (const auto &app : spec.workloads) {
        const bool irregular = isIrregular(app);
        const double s = exp::speedup(
            result.stats(app, core::SchedulerKind::SimtAware),
            result.stats(app, core::SchedulerKind::Fcfs));
        (irregular ? irregular_mean : regular_mean).add(s);
        table.addRow({app, irregular ? "irregular" : "regular", fmt(s),
                      fmt(paper.at(app), 2)});
    }
    table.addRule();
    table.addRow(
        {"GEOMEAN", "irregular", fmt(irregular_mean.mean()), "1.30"});
    table.addRow(
        {"GEOMEAN", "regular", fmt(regular_mean.mean()), "1.00"});
    report.addSummary("geomean_speedup_irregular",
                      irregular_mean.mean());
    report.addSummary("geomean_speedup_regular", regular_mean.mean());

    report.addNote("paper (Fig. 8): +30% geomean, up to +41%, on the "
                   "six irregular apps; regular apps unchanged.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
