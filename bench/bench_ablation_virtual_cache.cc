/**
 * @file
 * Virtual GPU caches vs walk scheduling (paper §VII / Yoon et al.
 * [43], "Filtering Translation Bandwidth with Virtual Caching").
 *
 * Virtually-addressed L1 data caches defer translation to the L1 miss
 * path, filtering most translation traffic before it exists; the
 * paper positions its scheduler as orthogonal. This bench quantifies
 * both: how much translation traffic the virtual L1 removes per
 * benchmark, and how much scheduling headroom remains in each design.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (virtual caches)";
    const char *desc = "Physical L1s (translate-before-access) vs "
                       "virtual L1s (translate-on-miss)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    spec.variants = {
        {"phys", nullptr},
        {"virt",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.gpu.virtualL1Cache = true;
         }},
    };
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "walks:phys", "walks:virt", "simt:phys", "simt:virt"});

    for (const auto &app : spec.workloads) {
        const auto &pf =
            result.stats(app, core::SchedulerKind::Fcfs, "phys");
        const auto &ps =
            result.stats(app, core::SchedulerKind::SimtAware, "phys");
        const auto &vf =
            result.stats(app, core::SchedulerKind::Fcfs, "virt");
        const auto &vs =
            result.stats(app, core::SchedulerKind::SimtAware, "virt");

        table.addRow({app, std::to_string(pf.walkRequests),
                      std::to_string(vf.walkRequests),
                      fmt(exp::speedup(ps, pf)),
                      fmt(exp::speedup(vs, vf))});
    }

    report.addNote(
        "Reading: virtual L1s filter translations behind L1 data "
        "reuse. Divergent column sweeps reuse\ncache lines across "
        "consecutive column steps, so their translation traffic "
        "drops and the walk\nscheduler's headroom shrinks with it; "
        "access patterns without L1 reuse keep their walk "
        "traffic\nand their scheduling benefit. The two techniques "
        "attack the same bottleneck at different points\n— "
        "consistent with the paper calling them orthogonal (SVII).");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
