/**
 * @file
 * Virtual GPU caches vs walk scheduling (paper §VII / Yoon et al.
 * [43], "Filtering Translation Bandwidth with Virtual Caching").
 *
 * Virtually-addressed L1 data caches defer translation to the L1 miss
 * path, filtering most translation traffic before it exists; the
 * paper positions its scheduler as orthogonal. This bench quantifies
 * both: how much translation traffic the virtual L1 removes per
 * benchmark, and how much scheduling headroom remains in each design.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Ablation (virtual caches)",
                        "Physical L1s (translate-before-access) vs "
                        "virtual L1s (translate-on-miss)",
                        base);

    system::TablePrinter table({"app", "walks:phys", "walks:virt",
                                "simt:phys", "simt:virt"});
    table.printHeader(std::cout);

    for (const auto &app : workload::irregularWorkloadNames()) {
        auto virt = base;
        virt.gpu.virtualL1Cache = true;

        const auto phys = compareSchedulers(base, app);
        const auto vres = compareSchedulers(virt, app);

        table.printRow(
            std::cout,
            {app, std::to_string(phys.fcfs.walkRequests),
             std::to_string(vres.fcfs.walkRequests),
             fmt(system::speedup(phys.simt, phys.fcfs)),
             fmt(system::speedup(vres.simt, vres.fcfs))});
    }

    std::cout
        << "\nReading: virtual L1s filter translations behind L1 data "
           "reuse. Divergent column sweeps reuse\ncache lines across "
           "consecutive column steps, so their translation traffic "
           "drops and the walk\nscheduler's headroom shrinks with it; "
           "access patterns without L1 reuse keep their walk "
           "traffic\nand their scheduling benefit. The two techniques "
           "attack the same bottleneck at different points\n— "
           "consistent with the paper calling them orthogonal (SVII)."
           "\n";
    return 0;
}
