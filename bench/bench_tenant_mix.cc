/**
 * @file
 * Multi-tenant fairness experiment (beyond the paper's figures; its
 * conclusion points at QoS-aware translation scheduling, citing the
 * MASK line of work).
 *
 * An 8-tenant reference mix — heterogeneous footprints, alternating
 * irregular/regular divergence, alternating weights — shares one GPU
 * and one IOMMU under four walk schedulers: FCFS, the paper's
 * SIMT-aware policy, and the two QoS policies composing it with
 * cross-tenant fairness (token bucket, weighted share). Each tenant
 * also runs solo under SIMT-aware scheduling as the slowdown
 * reference. The report gives per-tenant slowdowns, min/max slowdown,
 * and Jain's fairness index per policy; the same scalars land in the
 * summary JSON for the CI fairness gate.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cstdint>

#include "exp/run.hh"
#include "system/system.hh"
#include "workload/tenant_mix.hh"

namespace {

using namespace bench;

/** The committed reference mix: 8 tenants, alternating weights. */
workload::TenantMixConfig
referenceMix()
{
    workload::TenantMixConfig mix;
    mix.numTenants = 8;
    mix.seed = 23;
    mix.wavefrontsPerTenant = 16;
    mix.instructionsPerWavefront = 8;
    mix.footprintScaleMin = 0.02;
    mix.footprintScaleMax = 0.08;
    mix.alternateWeights = true; // odd tenants are weight 2
    return mix;
}

/** Solo reference label: one tenant's private grid point. */
std::string
soloLabel(unsigned tenant)
{
    return "solo-t" + std::to_string(tenant);
}

/** Runs the whole mix in one System under @p kind; per-tenant finish
 *  ticks land in RunResult::extra. */
exp::Job
mixJob(const system::SystemConfig &base,
       const std::vector<workload::TenantSpec> &specs,
       core::SchedulerKind kind)
{
    exp::Job job;
    job.workload = "mix8";
    job.scheduler = core::toString(kind);
    auto cfg = exp::withScheduler(base, kind);
    // Tenant i receives ContextId i, so spec weights map directly
    // onto the per-ContextId weight table.
    for (unsigned i = 0; i < specs.size(); ++i) {
        if (specs[i].weight > 1) {
            cfg.qos.shareWeights.resize(specs.size(), 1);
            cfg.qos.shareWeights[i] = specs[i].weight;
        }
    }
    job.body = [cfg, specs] {
        system::System sys(cfg);
        for (unsigned i = 0; i < specs.size(); ++i) {
            const auto ctx =
                i == 0 ? tlb::defaultContext : sys.createContext();
            sys.loadBenchmarkInContext(specs[i].workload,
                                       specs[i].params, /*app_id=*/i,
                                       ctx, specs[i].arrivalTick);
        }
        exp::RunResult res;
        res.stats = sys.run();
        for (const auto &t : res.stats.tenants) {
            res.extra["tenant" + std::to_string(t.ctx) + "_finish"] =
                static_cast<double>(t.finishTick);
        }
        return res;
    };
    return job;
}

/** Runs one tenant alone (same params, whole machine to itself). */
exp::Job
soloJob(const system::SystemConfig &base,
        const workload::TenantSpec &spec, unsigned tenant)
{
    exp::Job job;
    job.workload = soloLabel(tenant);
    job.scheduler = core::toString(core::SchedulerKind::SimtAware);
    const auto cfg =
        exp::withScheduler(base, core::SchedulerKind::SimtAware);
    job.body = [cfg, spec] {
        return exp::runOne(cfg, spec.workload, spec.params);
    };
    return job;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Tenant mix (QoS fairness)";
    const char *desc = "8-tenant reference mix: per-tenant slowdown "
                       "and Jain index per walk scheduler";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    const std::vector<core::SchedulerKind> policies{
        core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware,
        core::SchedulerKind::TokenBucket,
        core::SchedulerKind::WeightedShare};

    auto base = system::SystemConfig::baseline();
    // Hand-built job bodies capture their config, so the common
    // --audit / --trace-out instrumentation flags are applied here
    // rather than by runSweep.
    base.trace = opts.runner.trace;
    base.audit = opts.runner.audit;
    base.simThreads = opts.runner.simThreads;

    const auto specs = workload::generateTenantMix(referenceMix());

    std::vector<exp::Job> jobs;
    for (unsigned i = 0; i < specs.size(); ++i)
        jobs.push_back(soloJob(base, specs[i], i));
    for (const auto kind : policies)
        jobs.push_back(mixJob(base, specs, kind));
    const auto result = exp::runJobs(jobs, opts.runner);

    exp::Report report(id, desc, base);
    auto &table = report.addTable(
        {"tenant", "workload", "weight", "slow:fcfs", "slow:simt",
         "slow:token", "slow:wfq"},
        "Per-tenant slowdown vs solo (lower is better)");

    std::uint64_t auditViolations = 0;
    std::map<core::SchedulerKind, std::vector<double>> slowdowns;
    for (const auto kind : policies) {
        const auto &mix = result.at("mix8", kind);
        auditViolations += mix.stats.auditViolations;
        for (unsigned i = 0; i < specs.size(); ++i) {
            const double solo = static_cast<double>(
                result.stats(soloLabel(i),
                             core::SchedulerKind::SimtAware)
                    .runtimeTicks);
            const double finish = mix.extra.at(
                "tenant" + std::to_string(i) + "_finish");
            slowdowns[kind].push_back(finish / solo);
        }
    }

    for (unsigned i = 0; i < specs.size(); ++i) {
        std::vector<std::string> row{
            "T" + std::to_string(i), specs[i].workload,
            std::to_string(specs[i].weight)};
        for (const auto kind : policies)
            row.push_back(fmt(slowdowns[kind][i], 2) + "x");
        table.addRow(row);
    }

    auto &fairness = report.addTable(
        {"policy", "min slow", "max slow", "max/min", "jain"},
        "Fairness (Jain over per-tenant slowdowns; 1 = fair)");
    for (const auto kind : policies) {
        const auto &s = slowdowns[kind];
        const double lo = *std::min_element(s.begin(), s.end());
        const double hi = *std::max_element(s.begin(), s.end());
        const double jain = exp::jainIndex(s);
        fairness.addRow({core::toString(kind), fmt(lo, 2), fmt(hi, 2),
                         fmt(hi / lo, 2), fmt(jain, 3)});

        const std::string p = core::toString(kind);
        report.addSummary("jain_" + p, jain);
        report.addSummary("min_slowdown_" + p, lo);
        report.addSummary("max_slowdown_" + p, hi);
        for (unsigned i = 0; i < s.size(); ++i)
            report.addSummary(
                "slowdown_" + p + "_t" + std::to_string(i), s[i]);
    }
    report.addSummary("audit_violations_total",
                      static_cast<double>(auditViolations));

    report.addNote(
        "Reading: each tenant's completion tick in the shared mix "
        "over its solo SIMT-aware runtime.\nFCFS lets the "
        "translation-heavy tenants starve the light ones (low Jain); "
        "the QoS policies\ntrade a little aggregate throughput for a "
        "much tighter slowdown spread. Odd tenants carry\nweight 2, "
        "so under weighted-share they are *expected* to see lower "
        "slowdowns than their\neven neighbours — Jain is computed on "
        "raw slowdowns and therefore understates that\npolicy's "
        "weighted fairness.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
