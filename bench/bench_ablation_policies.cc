/**
 * @file
 * Grand policy comparison (extension): every scheduling policy in the
 * library side by side on the six irregular benchmarks — the design
 * space the paper's conclusion invites follow-on work to explore.
 *
 *   fcfs        arrival order (the paper's baseline)
 *   random      uniform pick (the paper's strawman)
 *   oldest-job  complete instructions in age order (PAR-BS-flavoured)
 *   sjf-only    paper key idea 1 alone
 *   batch-only  paper key idea 2 alone
 *   simt-aware  the paper's scheduler (1 + 2 + aging)
 *   srpt        selection-time re-scoring "oracle" (quantifies what
 *               the paper's cheap arrival-time estimates give up)
 *   fair-share  per-app round-robin + SIMT-aware within each app
 *               (degenerates to SJF+batching for single-app runs)
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Ablation (policy space)",
                        "All walk-scheduling policies, speedup vs "
                        "FCFS",
                        base);

    const std::vector<core::SchedulerKind> kinds{
        core::SchedulerKind::Random,    core::SchedulerKind::OldestJob,
        core::SchedulerKind::SjfOnly,   core::SchedulerKind::BatchOnly,
        core::SchedulerKind::SimtAware, core::SchedulerKind::Srpt,
        core::SchedulerKind::FairShare,
    };

    std::vector<std::string> header{"app"};
    for (auto k : kinds)
        header.push_back(core::toString(k));
    system::TablePrinter table(header);
    table.printHeader(std::cout);

    std::vector<MeanTracker> means(kinds.size());
    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto fcfs = run(
            system::withScheduler(base, core::SchedulerKind::Fcfs),
            app);
        std::vector<std::string> row{app};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const auto stats =
                run(system::withScheduler(base, kinds[k]), app);
            const double s = system::speedup(stats, fcfs);
            means[k].add(s);
            row.push_back(fmt(s));
        }
        table.printRow(std::cout, row);
    }
    table.printRule(std::cout);
    std::vector<std::string> mean_row{"GEOMEAN"};
    for (auto &m : means)
        mean_row.push_back(fmt(m.mean()));
    table.printRow(std::cout, mean_row);

    std::cout
        << "\nReading: simt-aware vs srpt measures the cost of "
           "arrival-time scoring (the paper argues\nselection-time "
           "re-scoring is infeasible in hardware; srpt does it anyway "
           "as an analysis bound).\noldest-job isolates 'complete "
           "whole instructions' without any length information.\n";
    return 0;
}
