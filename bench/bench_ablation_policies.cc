/**
 * @file
 * Grand policy comparison (extension): every scheduling policy in the
 * library side by side on the six irregular benchmarks — the design
 * space the paper's conclusion invites follow-on work to explore.
 *
 *   fcfs        arrival order (the paper's baseline)
 *   random      uniform pick (the paper's strawman)
 *   oldest-job  complete instructions in age order (PAR-BS-flavoured)
 *   sjf-only    paper key idea 1 alone
 *   batch-only  paper key idea 2 alone
 *   simt-aware  the paper's scheduler (1 + 2 + aging)
 *   srpt        selection-time re-scoring "oracle" (quantifies what
 *               the paper's cheap arrival-time estimates give up)
 *   fair-share  per-app round-robin + SIMT-aware within each app
 *               (degenerates to SJF+batching for single-app runs)
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (policy space)";
    const char *desc =
        "All walk-scheduling policies, speedup vs FCFS";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    const std::vector<core::SchedulerKind> kinds{
        core::SchedulerKind::Random,    core::SchedulerKind::OldestJob,
        core::SchedulerKind::SjfOnly,   core::SchedulerKind::BatchOnly,
        core::SchedulerKind::SimtAware, core::SchedulerKind::Srpt,
        core::SchedulerKind::FairShare,
    };

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs};
    spec.schedulers.insert(spec.schedulers.end(), kinds.begin(),
                           kinds.end());
    const auto result = exp::runSweep(spec, opts.runner);

    std::vector<std::string> header{"app"};
    for (auto k : kinds)
        header.push_back(core::toString(k));

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(header);

    std::vector<MeanTracker> means(kinds.size());
    for (const auto &app : spec.workloads) {
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        std::vector<std::string> row{app};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const double s =
                exp::speedup(result.stats(app, kinds[k]), fcfs);
            means[k].add(s);
            row.push_back(fmt(s));
        }
        table.addRow(row);
    }
    table.addRule();
    std::vector<std::string> mean_row{"GEOMEAN"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        mean_row.push_back(fmt(means[k].mean()));
        report.addSummary(
            "geomean_speedup_"
                + std::string(core::toString(kinds[k])),
            means[k].mean());
    }
    table.addRow(mean_row);

    report.addNote(
        "Reading: simt-aware vs srpt measures the cost of "
        "arrival-time scoring (the paper argues\nselection-time "
        "re-scoring is infeasible in hardware; srpt does it anyway "
        "as an analysis bound).\noldest-job isolates 'complete "
        "whole instructions' without any length information.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
