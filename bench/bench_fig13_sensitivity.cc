/**
 * @file
 * Figure 13: sensitivity of the SIMT-aware speedup to the shared L2
 * TLB size and the number of page table walkers:
 *   (a) 1024-entry L2 TLB, 8 walkers
 *   (b) 512-entry L2 TLB, 16 walkers
 *   (c) 1024-entry L2 TLB, 16 walkers
 * More translation resources shrink the bottleneck and hence the
 * scheduling headroom — the speedups must shrink monotonically from
 * the baseline through (a)/(b) to (c).
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();

    struct Variant
    {
        std::string name;
        unsigned l2Entries;
        unsigned walkers;
        double paperMean;
    };
    const std::vector<Variant> variants{
        {"(a) 1024 L2 TLB, 8 walkers", 1024, 8, 1.25},
        {"(b) 512 L2 TLB, 16 walkers", 512, 16, 1.084},
        {"(c) 1024 L2 TLB, 16 walkers", 1024, 16, 1.053},
    };

    system::printBanner(std::cout, "Figure 13",
                        "SIMT-aware speedup vs FCFS with more "
                        "translation resources",
                        base);

    for (const auto &v : variants) {
        auto cfg = base;
        cfg.gpuTlb.l2Entries = v.l2Entries;
        cfg.iommu.numWalkers = v.walkers;

        std::cout << "\n" << v.name << "\n";
        system::TablePrinter table({"app", "speedup"});
        table.printHeader(std::cout);

        MeanTracker mean;
        for (const auto &app : workload::irregularWorkloadNames()) {
            const auto cmp = compareSchedulers(cfg, app);
            const double s = system::speedup(cmp.simt, cmp.fcfs);
            mean.add(s);
            table.printRow(std::cout, {app, fmt(s)});
        }
        table.printRule(std::cout);
        table.printRow(std::cout, {"GEOMEAN", fmt(mean.mean())});
        std::cout << "paper (Fig. 13" << v.name.substr(1, 1)
                  << "): mean speedup ~" << fmt(v.paperMean, 3) << "\n";
    }

    std::cout << "\npaper: benefits shrink as TLB capacity or walker "
                 "bandwidth grow, but SIMT-aware never loses.\n";
    return 0;
}
