/**
 * @file
 * Figure 13: sensitivity of the SIMT-aware speedup to the shared L2
 * TLB size and the number of page table walkers:
 *   (a) 1024-entry L2 TLB, 8 walkers
 *   (b) 512-entry L2 TLB, 16 walkers
 *   (c) 1024-entry L2 TLB, 16 walkers
 * More translation resources shrink the bottleneck and hence the
 * scheduling headroom — the speedups must shrink monotonically from
 * the baseline through (a)/(b) to (c).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 13";
    const char *desc = "SIMT-aware speedup vs FCFS with more "
                       "translation resources";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    struct Variant
    {
        std::string name;
        unsigned l2Entries;
        unsigned walkers;
        double paperMean;
    };
    const std::vector<Variant> variants{
        {"(a) 1024 L2 TLB, 8 walkers", 1024, 8, 1.25},
        {"(b) 512 L2 TLB, 16 walkers", 512, 16, 1.084},
        {"(c) 1024 L2 TLB, 16 walkers", 1024, 16, 1.053},
    };

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    for (const auto &v : variants) {
        const unsigned l2 = v.l2Entries;
        const unsigned walkers = v.walkers;
        spec.variants.push_back(
            {v.name, [l2, walkers](system::SystemConfig &cfg,
                                   workload::WorkloadParams &) {
                 cfg.gpuTlb.l2Entries = l2;
                 cfg.iommu.numWalkers = walkers;
             }});
    }
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    for (const auto &v : variants) {
        auto &table = report.addTable({"app", "speedup"});
        table.title = v.name;

        MeanTracker mean;
        for (const auto &app : spec.workloads) {
            const auto &fcfs = result.stats(
                app, core::SchedulerKind::Fcfs, v.name);
            const auto &simt = result.stats(
                app, core::SchedulerKind::SimtAware, v.name);
            const double s = exp::speedup(simt, fcfs);
            mean.add(s);
            table.addRow({app, fmt(s)});
        }
        table.addRule();
        table.addRow({"GEOMEAN", fmt(mean.mean())});
        report.addNote("paper (Fig. 13" + v.name.substr(1, 1)
                       + "): mean speedup ~" + fmt(v.paperMean, 3));
        report.addSummary("geomean_speedup_" + v.name.substr(1, 1),
                          mean.mean());
    }

    report.addNote("paper: benefits shrink as TLB capacity or walker "
                   "bandwidth grow, but SIMT-aware never loses.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
