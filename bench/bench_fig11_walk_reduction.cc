/**
 * @file
 * Figure 11: number of page walk requests (i.e. TLB misses) with the
 * SIMT-aware scheduler, normalized to FCFS. The reduction comes from
 * better intra-wavefront TLB locality: delaying translation-heavy
 * instructions keeps them from thrashing the shared L2 TLB.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 11";
    const char *desc = "Page walk count under SIMT-aware scheduling "
                       "(normalized to FCFS)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    const auto result = exp::runSweep(spec, opts.runner);

    const std::map<std::string, double> paper{
        {"XSB", 0.85}, {"MVT", 0.75}, {"ATX", 0.78},
        {"NW", 0.85},  {"BIC", 0.76}, {"GEV", 0.70}};

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "fcfs", "simt", "normalized", "paper(approx)"});

    MeanTracker mean;
    for (const auto &app : spec.workloads) {
        const auto &fcfs =
            result.stats(app, core::SchedulerKind::Fcfs);
        const auto &simt =
            result.stats(app, core::SchedulerKind::SimtAware);
        const double norm = static_cast<double>(simt.walkRequests)
                            / static_cast<double>(fcfs.walkRequests);
        mean.add(norm);
        table.addRow({app, std::to_string(fcfs.walkRequests),
                      std::to_string(simt.walkRequests), fmt(norm),
                      fmt(paper.at(app), 2)});
    }
    table.addRule();
    table.addRow({"GEOMEAN", "-", "-", fmt(mean.mean()), "0.79"});
    report.addSummary("geomean_norm_walks", mean.mean());

    report.addNote("paper (Fig. 11): 21% average reduction (up to "
                   "30%) in page walks.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
