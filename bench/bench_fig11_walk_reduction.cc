/**
 * @file
 * Figure 11: number of page walk requests (i.e. TLB misses) with the
 * SIMT-aware scheduler, normalized to FCFS. The reduction comes from
 * better intra-wavefront TLB locality: delaying translation-heavy
 * instructions keeps them from thrashing the shared L2 TLB.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 11",
                        "Page walk count under SIMT-aware scheduling "
                        "(normalized to FCFS)",
                        cfg);

    system::TablePrinter table({"app", "fcfs", "simt", "normalized",
                                "paper(approx)"});
    table.printHeader(std::cout);

    const std::map<std::string, double> paper{
        {"XSB", 0.85}, {"MVT", 0.75}, {"ATX", 0.78},
        {"NW", 0.85},  {"BIC", 0.76}, {"GEV", 0.70}};

    MeanTracker mean;
    for (const auto &app : workload::irregularWorkloadNames()) {
        const auto cmp = compareSchedulers(cfg, app);
        const double norm =
            static_cast<double>(cmp.simt.walkRequests)
            / static_cast<double>(cmp.fcfs.walkRequests);
        mean.add(norm);
        table.printRow(std::cout,
                       {app, std::to_string(cmp.fcfs.walkRequests),
                        std::to_string(cmp.simt.walkRequests),
                        fmt(norm), fmt(paper.at(app), 2)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout, {"GEOMEAN", "-", "-", fmt(mean.mean()),
                               "0.79"});

    std::cout << "\npaper (Fig. 11): 21% average reduction (up to 30%) "
                 "in page walks.\n";
    return 0;
}
