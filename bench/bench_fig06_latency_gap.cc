/**
 * @file
 * Figure 6: average latency of the first- vs last-completed page walk
 * per SIMD instruction (FCFS baseline), normalized to the first-
 * completed latency. Multi-walk instructions only.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Figure 6";
    const char *desc = "First- vs last-completed walk latency per "
                       "instruction (FCFS, normalized to first)";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::motivationWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs};
    const auto result = exp::runSweep(spec, opts.runner);

    // Approximate last/first ratios from the paper's Figure 6.
    const std::map<std::string, double> paper{
        {"MVT", 2.2}, {"ATX", 3.0}, {"BIC", 2.4}, {"GEV", 2.8}};

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable(
        {"app", "first", "last", "last/first", "paper(approx)"});

    for (const auto &app : spec.workloads) {
        const auto &stats =
            result.stats(app, core::SchedulerKind::Fcfs);
        const double first = stats.walks.avgFirstCompletedLatency;
        const double last = stats.walks.avgLastCompletedLatency;
        const double ratio = first > 0 ? last / first : 0.0;
        table.addRow(
            {app, "1.000", fmt(ratio), fmt(ratio),
             fmt(paper.at(app), 1)});
    }

    report.addNote(
        "paper (Fig. 6): the last-completed walk's latency is 2-3x "
        "the first's, i.e. an\ninstruction keeps stalling long after "
        "its first translation returned — the headroom\nthe "
        "SIMT-aware scheduler's batching recovers.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
