/**
 * @file
 * Figure 6: average latency of the first- vs last-completed page walk
 * per SIMD instruction (FCFS baseline), normalized to the first-
 * completed latency. Multi-walk instructions only.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    auto cfg = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Figure 6",
                        "First- vs last-completed walk latency per "
                        "instruction (FCFS, normalized to first)",
                        cfg);

    system::TablePrinter table({"app", "first", "last", "last/first",
                                "paper(approx)"});
    table.printHeader(std::cout);

    // Approximate last/first ratios from the paper's Figure 6.
    const std::map<std::string, double> paper{
        {"MVT", 2.2}, {"ATX", 3.0}, {"BIC", 2.4}, {"GEV", 2.8}};

    for (const auto &app : workload::motivationWorkloadNames()) {
        const auto stats =
            run(system::withScheduler(cfg, core::SchedulerKind::Fcfs),
                app);
        const double first = stats.walks.avgFirstCompletedLatency;
        const double last = stats.walks.avgLastCompletedLatency;
        table.printRow(std::cout,
                       {app, "1.000",
                        fmt(first > 0 ? last / first : 0.0),
                        fmt(first > 0 ? last / first : 0.0),
                        fmt(paper.at(app), 1)});
    }

    std::cout
        << "\npaper (Fig. 6): the last-completed walk's latency is "
           "2-3x the first's, i.e. an\ninstruction keeps stalling long "
           "after its first translation returned — the headroom\nthe "
           "SIMT-aware scheduler's batching recovers.\n";
    return 0;
}
