/**
 * @file
 * Interaction between the wavefront scheduler and the page-walk
 * scheduler (paper §VI: "there still could be opportunities for
 * better coordination among the different schedulers, but we leave
 * such explorations for future work").
 *
 * Runs the irregular benchmarks under both CU issue-arbitration
 * policies (round-robin vs oldest-first/GTO) and both walk schedulers
 * (FCFS vs SIMT-aware). The paper's expectation: walk scheduling
 * keeps its benefit regardless of the wavefront scheduler, because no
 * wavefront scheduler addresses translation overheads.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace bench;
    const auto base = system::SystemConfig::baseline();
    system::printBanner(std::cout, "Ablation (wavefront scheduling)",
                        "CU issue policy x walk scheduler",
                        base);

    system::TablePrinter table({"app", "rr:fcfs", "rr:simt",
                                "gto:fcfs", "gto:simt", "simt@gto"});
    table.printHeader(std::cout);

    MeanTracker rr_gain, gto_gain;
    for (const auto &app : workload::irregularWorkloadNames()) {
        auto rr = base;
        rr.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::RoundRobin;
        auto gto = base;
        gto.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::OldestFirst;

        const auto rr_cmp = compareSchedulers(rr, app);
        const auto gto_cmp = compareSchedulers(gto, app);

        // Normalize everything to RR+FCFS (the baseline of baselines).
        const double base_t =
            static_cast<double>(rr_cmp.fcfs.runtimeTicks);
        auto rel = [&](const system::RunStats &s) {
            return base_t / static_cast<double>(s.runtimeTicks);
        };
        const double simt_at_gto =
            system::speedup(gto_cmp.simt, gto_cmp.fcfs);
        rr_gain.add(system::speedup(rr_cmp.simt, rr_cmp.fcfs));
        gto_gain.add(simt_at_gto);

        table.printRow(std::cout,
                       {app, "1.000", fmt(rel(rr_cmp.simt)),
                        fmt(rel(gto_cmp.fcfs)), fmt(rel(gto_cmp.simt)),
                        fmt(simt_at_gto)});
    }
    table.printRule(std::cout);
    table.printRow(std::cout,
                   {"GEOMEAN gain", "-", fmt(rr_gain.mean()), "-", "-",
                    fmt(gto_gain.mean())});

    std::cout
        << "\nReading: columns 2-5 are speedups over RR+FCFS; the "
           "last column is SIMT-aware's gain within\nthe GTO "
           "configuration. If it stays near the RR-configuration gain "
           "(GEOMEAN row), the paper's\nclaim holds: wavefront "
           "scheduling does not substitute for page-walk scheduling."
           "\n";
    return 0;
}
