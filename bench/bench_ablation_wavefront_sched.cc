/**
 * @file
 * Wasp co-design factorial: de-staggered wavefront scheduling x
 * translation prefetch x page-walk scheduler.
 *
 * The paper (§VI) leaves scheduler coordination as future work; this
 * bench measures one concrete co-design. Wavefront side: Wasp splits
 * each CU's resident slots into leaders (issue first, win arbitration)
 * and followers (first issues pushed out by the issue-distance lead).
 * Walk side: leader-originated walks are classed speculative, so the
 * lookahead they create never delays follower demand walks, and
 * leader streams train the translation prefetcher ahead of the pack.
 *
 * Full factorial over the irregular apps: wavefront policy {rr, wasp}
 * x prefetch {off, next, spp} x walk scheduler {fcfs, simt-aware}.
 * The questions: (a) does Wasp's translation lookahead speed up the
 * follower pack, (b) does it compose with (rather than substitute
 * for) SIMT-aware walk scheduling, and (c) does leader-trained SPP
 * beat SPP alone. Committed as BENCH_wasp.json.
 */

#include "bench_common.hh"

#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (wasp co-design factorial)";
    const char *desc = "wavefront {rr, wasp} x prefetch {off, next, "
                       "spp} x walk scheduler {fcfs, simt-aware}";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    constexpr iommu::PrefetchKind kinds[] = {
        iommu::PrefetchKind::Off, iommu::PrefetchKind::NextPage,
        iommu::PrefetchKind::Spp};
    constexpr const char *wfNames[] = {"rr", "wasp"};

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    for (const char *wf : wfNames) {
        for (const auto kind : kinds) {
            const bool wasp = std::string(wf) == "wasp";
            std::string name = std::string(wf) + "/pf-"
                               + iommu::toString(kind);
            spec.variants.push_back(
                {std::move(name),
                 [wasp, kind](system::SystemConfig &cfg,
                              workload::WorkloadParams &) {
                     cfg.gpu.wavefrontSched =
                         wasp ? gpu::WavefrontSchedPolicy::Wasp
                              : gpu::WavefrontSchedPolicy::RoundRobin;
                     cfg.iommu.prefetch.kind = kind;
                     // Wasp runs at the config default (idle
                     // admission): leader walks ride the speculative
                     // class on idle walk bandwidth and age-promote
                     // into the demand class. Reserved admission was
                     // measured and rejected for this headline —
                     // setting walkers aside starves demand at 8
                     // walkers (irregular geomean 0.95 vs 1.02; see
                     // EXPERIMENTS.md). The admission axis itself is
                     // swept in bench_ablation_prefetch.
                 }});
        }
    }
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);

    // Headline per-app table: every cell normalized to RR + no
    // prefetch + FCFS (the baseline of baselines), SIMT-aware walk
    // scheduling in the right half.
    auto &table = report.addTable(
        {"app", "rr:off", "wasp:off", "wasp:spp", "rr:off:simt",
         "wasp:off:simt", "wasp:spp:simt", "leader-walks"},
        "Speedup over rr/pf-off/fcfs", 14);
    for (const auto &app : spec.workloads) {
        const auto &base = result.stats(
            app, core::SchedulerKind::Fcfs, "rr/pf-off");
        const double base_t = static_cast<double>(base.runtimeTicks);
        auto rel = [&](core::SchedulerKind s, const std::string &v) {
            return base_t
                   / static_cast<double>(
                       result.stats(app, s, v).runtimeTicks);
        };
        const auto &waspSpp = result.stats(
            app, core::SchedulerKind::SimtAware, "wasp/pf-spp");
        table.addRow(
            {app, "1.000",
             fmt(rel(core::SchedulerKind::Fcfs, "wasp/pf-off")),
             fmt(rel(core::SchedulerKind::Fcfs, "wasp/pf-spp")),
             fmt(rel(core::SchedulerKind::SimtAware, "rr/pf-off")),
             fmt(rel(core::SchedulerKind::SimtAware, "wasp/pf-off")),
             fmt(rel(core::SchedulerKind::SimtAware, "wasp/pf-spp")),
             std::to_string(waspSpp.spec.leaderWalks)});
    }

    // Factorial geomeans: Wasp's gain within each prefetch/scheduler
    // cell (runtime(rr) / runtime(wasp), same pf + walk scheduler),
    // and SIMT-aware's gain within each wavefront/prefetch cell — if
    // the latter stays near its RR value, co-design composes instead
    // of substituting (ROADMAP item 1).
    auto &cells = report.addTable(
        {"prefetch", "wasp@fcfs", "wasp@simt", "simt@rr", "simt@wasp"},
        "Irregular-app geomeans per factorial cell", 12);
    for (const auto kind : kinds) {
        const std::string pf = iommu::toString(kind);
        std::vector<double> waspFcfs, waspSimt, simtRr, simtWasp;
        for (const auto &app : spec.workloads) {
            const auto &rrF = result.stats(
                app, core::SchedulerKind::Fcfs, "rr/pf-" + pf);
            const auto &rrS = result.stats(
                app, core::SchedulerKind::SimtAware, "rr/pf-" + pf);
            const auto &waF = result.stats(
                app, core::SchedulerKind::Fcfs, "wasp/pf-" + pf);
            const auto &waS = result.stats(
                app, core::SchedulerKind::SimtAware, "wasp/pf-" + pf);
            waspFcfs.push_back(exp::speedup(waF, rrF));
            waspSimt.push_back(exp::speedup(waS, rrS));
            simtRr.push_back(exp::speedup(rrS, rrF));
            simtWasp.push_back(exp::speedup(waS, waF));
        }
        const double wf = exp::geomean(waspFcfs);
        const double ws = exp::geomean(waspSimt);
        const double sr = exp::geomean(simtRr);
        const double sw = exp::geomean(simtWasp);
        cells.addRow({pf, fmt(wf), fmt(ws), fmt(sr), fmt(sw)});
        report.addSummary("wasp_irregular_speedup_" + pf + "_fcfs", wf);
        report.addSummary("wasp_irregular_speedup_" + pf + "_simt", ws);
        report.addSummary("simt_gain_rr_" + pf, sr);
        report.addSummary("simt_gain_wasp_" + pf, sw);
    }

    report.addNote(
        "Reading: wasp@X = geomean runtime(rr)/runtime(wasp) with walk "
        "scheduler X and the row's\nprefetcher; simt@Y = SIMT-aware's "
        "gain over FCFS within wavefront policy Y. If simt@wasp "
        "stays\nnear simt@rr, the co-design composes with page-walk "
        "scheduling rather than substituting for\nit — leaders only "
        "add lookahead, their walks ride the speculative class, and "
        "demand walks still\nbenefit from SJF + batching.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
