/**
 * @file
 * Interaction between the wavefront scheduler and the page-walk
 * scheduler (paper §VI: "there still could be opportunities for
 * better coordination among the different schedulers, but we leave
 * such explorations for future work").
 *
 * Runs the irregular benchmarks under both CU issue-arbitration
 * policies (round-robin vs oldest-first/GTO) and both walk schedulers
 * (FCFS vs SIMT-aware). The paper's expectation: walk scheduling
 * keeps its benefit regardless of the wavefront scheduler, because no
 * wavefront scheduler addresses translation overheads.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bench;
    const char *id = "Ablation (wavefront scheduling)";
    const char *desc = "CU issue policy x walk scheduler";
    const auto opts = exp::parseBenchArgs(argc, argv, id, desc);

    exp::SweepSpec spec;
    spec.workloads = workload::irregularWorkloadNames();
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    spec.variants = {
        {"rr",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.gpu.wavefrontSched =
                 gpu::WavefrontSchedPolicy::RoundRobin;
         }},
        {"gto",
         [](system::SystemConfig &cfg, workload::WorkloadParams &) {
             cfg.gpu.wavefrontSched =
                 gpu::WavefrontSchedPolicy::OldestFirst;
         }},
    };
    const auto result = exp::runSweep(spec, opts.runner);

    exp::Report report(id, desc, spec.base);
    auto &table = report.addTable({"app", "rr:fcfs", "rr:simt",
                                   "gto:fcfs", "gto:simt",
                                   "simt@gto"});

    MeanTracker rr_gain, gto_gain;
    for (const auto &app : spec.workloads) {
        const auto &rr_fcfs =
            result.stats(app, core::SchedulerKind::Fcfs, "rr");
        const auto &rr_simt =
            result.stats(app, core::SchedulerKind::SimtAware, "rr");
        const auto &gto_fcfs =
            result.stats(app, core::SchedulerKind::Fcfs, "gto");
        const auto &gto_simt =
            result.stats(app, core::SchedulerKind::SimtAware, "gto");

        // Normalize everything to RR+FCFS (the baseline of baselines).
        const double base_t =
            static_cast<double>(rr_fcfs.runtimeTicks);
        auto rel = [&](const system::RunStats &s) {
            return base_t / static_cast<double>(s.runtimeTicks);
        };
        const double simt_at_gto = exp::speedup(gto_simt, gto_fcfs);
        rr_gain.add(exp::speedup(rr_simt, rr_fcfs));
        gto_gain.add(simt_at_gto);

        table.addRow({app, "1.000", fmt(rel(rr_simt)),
                      fmt(rel(gto_fcfs)), fmt(rel(gto_simt)),
                      fmt(simt_at_gto)});
    }
    table.addRule();
    table.addRow({"GEOMEAN gain", "-", fmt(rr_gain.mean()), "-", "-",
                  fmt(gto_gain.mean())});
    report.addSummary("geomean_gain_rr", rr_gain.mean());
    report.addSummary("geomean_gain_gto", gto_gain.mean());

    report.addNote(
        "Reading: columns 2-5 are speedups over RR+FCFS; the "
        "last column is SIMT-aware's gain within\nthe GTO "
        "configuration. If it stays near the RR-configuration gain "
        "(GEOMEAN row), the paper's\nclaim holds: wavefront "
        "scheduling does not substitute for page-walk scheduling.");
    report.render(std::cout);
    if (!opts.jsonPath.empty())
        report.writeJsonFile(opts.jsonPath, &result);
    return 0;
}
