/**
 * @file
 * Tests for 2 MB large-page support: PS-bit page-table mappings,
 * 3-access walks, dual-granularity TLBs, and the end-to-end system
 * (the paper's §VI "why not large pages?" discussion).
 */

#include <gtest/gtest.h>

#include "iommu/page_table_walker.hh"
#include "system/system.hh"
#include "tlb/set_assoc_tlb.hh"
#include "vm/address_space.hh"
#include "workload/registry.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;

TEST(LargePagePageTable, MapLargeTranslatesWholeRegion)
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::PageTable table(store, frames);

    table.mapLarge(0x40000000, 0x200000);
    // Every 4 KB page inside the 2 MB region translates.
    for (Addr off : {Addr(0), Addr(0x1000), Addr(0x1ff000),
                     Addr(0x12345) & ~Addr(0xfff)}) {
        auto pa = table.translate(0x40000000 + off + 0xabc);
        ASSERT_TRUE(pa.has_value()) << off;
        EXPECT_EQ(*pa, 0x200000 + off + 0xabc);
    }
    // Only PML4 + PDPT + PD pages were created (no PT level).
    EXPECT_EQ(table.tablePages(), 3u);
}

TEST(LargePagePageTable, EntryAddressStopsAtLeaf)
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::PageTable table(store, frames);
    table.mapLarge(0x40000000, 0x200000);
    // There is no PT level under a large mapping.
    EXPECT_FALSE(
        table.entryAddress(0x40000000, vm::PtLevel::Pt).has_value());
    EXPECT_TRUE(
        table.entryAddress(0x40000000, vm::PtLevel::Pd).has_value());
}

TEST(LargePagePageTableDeathTest, AlignmentEnforced)
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::PageTable table(store, frames);
    EXPECT_DEATH(table.mapLarge(0x40001000, 0x200000), "unaligned");
    EXPECT_DEATH(table.mapLarge(0x40000000, 0x201000), "unaligned");
}

TEST(LargePageFrameAllocator, LargeFramesAreAlignedAndDisjoint)
{
    vm::FrameAllocator frames{Addr(1) << 30};
    const Addr a = frames.allocateLargeFrame();
    const Addr b = frames.allocateLargeFrame();
    EXPECT_EQ(a % vm::largePageSize, 0u);
    EXPECT_EQ(b % vm::largePageSize, 0u);
    EXPECT_NE(a, b);
    // Small frames come from the bottom; no overlap with the top.
    const Addr small = frames.allocateFrame();
    EXPECT_LT(small, std::min(a, b));
}

TEST(LargePageTlb, LargeEntryCoversAllBasePages)
{
    tlb::SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(0x40000000, 0x200000, /*large_page=*/true);
    // A hit anywhere in the 2 MB region, with the right PA offset.
    auto hit = tlb.lookupEntry(0x40000000 + 0x5000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->largePage);
    EXPECT_EQ(hit->paPage, 0x200000u + 0x5000u);
    EXPECT_EQ(tlb.population(), 1u);
}

TEST(LargePageTlb, SmallEntryWinsOverLarge)
{
    tlb::SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(0x40000000, 0x200000, /*large_page=*/true);
    tlb.insert(0x40005000, 0x999000, /*large_page=*/false);
    auto hit = tlb.lookupEntry(0x40005000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->largePage);
    EXPECT_EQ(hit->paPage, 0x999000u);
}

TEST(LargePageTlb, MixedEntriesCoexist)
{
    tlb::SetAssocTlb tlb({"t", 64, 16});
    for (Addr r = 0; r < 8; ++r)
        tlb.insert(r << 21, (r + 100) << 21, /*large_page=*/true);
    for (Addr p = 0; p < 8; ++p)
        tlb.insert((Addr(64) << 21) + (p << 12), p << 12, false);
    EXPECT_EQ(tlb.population(), 16u);
    for (Addr r = 0; r < 8; ++r)
        EXPECT_TRUE(tlb.probe((r << 21) + 0x3000).has_value());
}

TEST(LargePageAddressSpace, AllocatesAlignedRegions)
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::AddressSpace as(store, frames);
    as.useLargePages(true);
    const auto region = as.allocate("big", 3 * 1024 * 1024);
    EXPECT_EQ(region.base % vm::largePageSize, 0u);
    EXPECT_EQ(region.bytes, 4u * 1024u * 1024u); // rounded to 2 MB
    // Everything inside translates.
    for (Addr va = region.base; va < region.end(); va += 0x100000)
        EXPECT_TRUE(as.pageTable().translate(va).has_value());
}

struct LargeWalkFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::PageTable table{store, frames};
    std::optional<iommu::PageWalkCache> pwc;

    class InstantMemory : public mem::MemoryDevice
    {
      public:
        explicit InstantMemory(sim::EventQueue &eq) : eq_(eq) {}
        void
        access(mem::MemoryRequest req) override
        {
            ++count;
            eq_.scheduleIn(500, [r = std::move(req)]() mutable {
                r.complete();
            });
        }
        unsigned count = 0;

      private:
        sim::EventQueue &eq_;
    };
};

TEST_F(LargeWalkFixture, LargeWalkTakesThreeAccesses)
{
    table.mapLarge(0x40000000, 0x200000);
    pwc.emplace(iommu::PwcConfig{}, table.root());
    InstantMemory memory(eq);
    iommu::PageTableWalker walker(eq, memory, store, *pwc);

    core::PendingWalk w;
    w.request.vaPage = 0x40000000 + 0x7000;
    std::optional<iommu::WalkResult> result;
    walker.start(std::move(w),
                 [&](iommu::WalkResult r) { result = std::move(r); });
    eq.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->largePage);
    EXPECT_EQ(result->memAccesses, 3u);
    EXPECT_EQ(result->paPage, 0x200000u + 0x7000u);
    EXPECT_EQ(memory.count, 3u);
    // The PS leaf itself must not pollute the PD-level walk cache.
    EXPECT_GT(pwc->peekEstimate(0x40000000), 1u);
}

TEST(LargePageSystem, EndToEndWithLargePages)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    system::System sys(cfg);
    workload::WorkloadParams params;
    params.wavefronts = 24;
    params.instructionsPerWavefront = 10;
    params.footprintScale = 0.05;
    params.useLargePages = true;
    sys.loadBenchmark("MVT", params);
    const auto stats = sys.run();
    EXPECT_EQ(stats.instructions, 24u * 10u);
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

TEST(LargePageSystem, LargePagesSlashWalkCountOnStridedApps)
{
    // MVT's 64-row blocks span ~2 MB: large pages collapse the
    // per-instruction translation footprint to one or two entries.
    auto base = system::SystemConfig::baseline();
    base.scheduler = core::SchedulerKind::Fcfs;
    workload::WorkloadParams params;
    params.wavefronts = 32;
    params.instructionsPerWavefront = 12;
    params.footprintScale = 0.25;

    system::System small_sys(base);
    small_sys.loadBenchmark("MVT", params);
    const auto small = small_sys.run();

    params.useLargePages = true;
    system::System large_sys(base);
    large_sys.loadBenchmark("MVT", params);
    const auto large = large_sys.run();

    EXPECT_LT(large.walkRequests, small.walkRequests / 4);
    EXPECT_LT(large.runtimeTicks, small.runtimeTicks);
}

} // namespace
