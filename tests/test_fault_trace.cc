/**
 * @file
 * Far-fault lifecycle invariants asserted over traced runs, in the
 * style of test_trace_invariants.cc: full-system demand-paged runs
 * with tracing on, replayed event by event.
 *
 * The fault protocol the trace must witness, for every scheduler:
 *
 *  - raise before service: every FaultServiced closes exactly one
 *    open FaultRaised for the same (ctx, page), and its arg1 equals
 *    the raise-to-service span;
 *  - service before completion: while a fault for a page is open, no
 *    walk for that page completes — WalkDone strictly follows the
 *    FaultServiced that released it;
 *  - faults only where faults exist: a resident (GMMU-off) run traces
 *    zero fault events, and at oversubscription 1.0 a page faults at
 *    most once (nothing is ever evicted, so nothing re-faults);
 *  - the trace agrees with the counters: event counts match the GMMU
 *    summary, and the released-walk totals conserve raised+coalesced.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "system/system.hh"
#include "trace/trace.hh"

namespace {

using namespace gpuwalk;
using trace::Event;
using trace::EventKind;

/** (ctx, vaPage): the identity a fault is keyed on. */
using PageKey = std::pair<std::uint16_t, mem::Addr>;

struct TracedRun
{
    std::vector<Event> events;
    system::RunStats stats;
    std::uint64_t dropped = 0;
};

TracedRun
runTraced(core::SchedulerKind kind, double ratio, bool gmmu_on = true)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    if (gmmu_on) {
        cfg.gmmu.enabled = true;
        cfg.gmmu.oversubscription = ratio;
        // Shrunk latencies (cf. the determinism tests): the protocol
        // is ordering, not magnitude.
        cfg.gmmu.faultLatency = 20'000;
        cfg.gmmu.migrationLatency = 1'000;
        cfg.gmmu.batchSize = 8;
    }
    system::System sys(cfg);

    workload::WorkloadParams params;
    params.wavefronts = 8;
    params.instructionsPerWavefront = 6;
    params.footprintScale = 0.02;
    params.seed = 29;
    sys.loadBenchmark("GEV", params);

    TracedRun out;
    out.stats = sys.run();
    out.dropped = sys.tracer()->dropped();
    out.events = sys.tracer()->snapshot();
    return out;
}

std::uint64_t
countKind(const std::vector<Event> &events, EventKind kind)
{
    std::uint64_t n = 0;
    for (const auto &ev : events)
        n += ev.kind == kind;
    return n;
}

/** Replays @p events asserting the fault protocol; returns the set of
 *  pages that faulted at least once. */
std::set<PageKey>
replayFaultProtocol(const std::vector<Event> &events)
{
    struct OpenFault
    {
        sim::Tick raised;
    };
    std::map<PageKey, OpenFault> open;
    std::set<PageKey> everFaulted;

    for (const auto &ev : events) {
        const PageKey page{ev.ctx, ev.vaPage};
        switch (ev.kind) {
        case EventKind::FaultRaised: {
            // One open fault per page: a second raise while the first
            // is in flight must coalesce, not re-raise.
            const auto [it, fresh] = open.emplace(page, OpenFault{ev.tick});
            EXPECT_TRUE(fresh)
                << "double raise for page " << std::hex << ev.vaPage
                << std::dec << " at tick " << ev.tick;
            everFaulted.insert(page);
            EXPECT_GE(ev.arg0, 1u); // parked walks
            // A real walker hit the fault at a real PT level.
            EXPECT_NE(ev.walker, trace::noWalker);
            EXPECT_GE(ev.level, 1u);
            EXPECT_LE(ev.level, std::uint64_t(vm::numPtLevels));
            break;
        }
        case EventKind::FaultServiced: {
            const auto it = open.find(page);
            if (it == open.end()) {
                ADD_FAILURE() << "service with no open fault for page "
                              << std::hex << ev.vaPage << std::dec
                              << " at tick " << ev.tick;
                break;
            }
            EXPECT_GE(ev.arg0, 1u) << "service released no walks";
            EXPECT_EQ(ev.arg1, ev.tick - it->second.raised)
                << "latency payload disagrees with the raise tick";
            open.erase(it);
            break;
        }
        case EventKind::WalkDone:
            // Service-before-completion: an open fault means the page
            // is non-present; no walk for it may complete.
            EXPECT_FALSE(open.count(page))
                << "WalkDone for faulted page " << std::hex
                << ev.vaPage << std::dec << " before service at tick "
                << ev.tick;
            break;
        default:
            break;
        }
    }
    EXPECT_TRUE(open.empty()) << open.size()
                              << " faults raised, never serviced";
    return everFaulted;
}

TEST(FaultTrace, ProtocolHoldsAcrossSchedulers)
{
    // Tight cap: every scheduler sees raise/coalesce/evict/re-fault.
    for (const auto kind :
         {core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware,
          core::SchedulerKind::SjfOnly, core::SchedulerKind::BatchOnly,
          core::SchedulerKind::OldestJob}) {
        const auto run = runTraced(kind, 0.04);
        ASSERT_EQ(run.dropped, 0u);
        ASSERT_TRUE(run.stats.gmmu.enabled);
        ASSERT_GT(run.stats.gmmu.faultsRaised, 0u)
            << core::toString(kind) << " never faulted";
        EXPECT_EQ(run.stats.auditViolations, 0u) << core::toString(kind);

        const auto faulted = replayFaultProtocol(run.events);
        EXPECT_FALSE(faulted.empty()) << core::toString(kind);

        // Trace and counters agree.
        EXPECT_EQ(countKind(run.events, EventKind::FaultRaised),
                  run.stats.gmmu.faultsRaised)
            << core::toString(kind);
        EXPECT_EQ(countKind(run.events, EventKind::FaultServiced),
                  run.stats.gmmu.faultsServiced)
            << core::toString(kind);

        // Released-walk conservation: every parked walk — the raiser
        // plus each coalesced joiner — is released exactly once.
        std::uint64_t released = 0;
        for (const auto &ev : run.events) {
            if (ev.kind == EventKind::FaultServiced)
                released += ev.arg0;
        }
        EXPECT_EQ(released, run.stats.gmmu.faultsRaised
                                + run.stats.gmmu.faultsCoalesced)
            << core::toString(kind);
    }
}

TEST(FaultTrace, ResidentRunTracesNoFaultEvents)
{
    const auto run =
        runTraced(core::SchedulerKind::SimtAware, 1.0, false);
    ASSERT_EQ(run.dropped, 0u);
    EXPECT_FALSE(run.stats.gmmu.enabled);
    EXPECT_EQ(countKind(run.events, EventKind::FaultRaised), 0u);
    EXPECT_EQ(countKind(run.events, EventKind::FaultServiced), 0u);
}

TEST(FaultTrace, NoRefaultsAtFullResidency)
{
    // ratio 1.0: the cap covers the footprint, nothing is evicted, so
    // each page raises at most one fault for the whole run.
    const auto run = runTraced(core::SchedulerKind::SimtAware, 1.0);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_GT(run.stats.gmmu.faultsRaised, 0u);
    ASSERT_EQ(run.stats.gmmu.pagesEvicted, 0u);

    std::set<PageKey> raisedOnce;
    for (const auto &ev : run.events) {
        if (ev.kind != EventKind::FaultRaised)
            continue;
        EXPECT_TRUE(raisedOnce.insert({ev.ctx, ev.vaPage}).second)
            << "page " << std::hex << ev.vaPage << std::dec
            << " re-faulted without ever being evicted";
    }
    EXPECT_EQ(raisedOnce.size(), run.stats.gmmu.faultsRaised);

    replayFaultProtocol(run.events);
}

TEST(FaultTrace, EvictionCausesRefaultsUnderTightCap)
{
    // The inverse control: with the cap far below the touched set,
    // at least one page must fault, get evicted, and fault again —
    // i.e. strictly more raises than distinct pages.
    const auto run = runTraced(core::SchedulerKind::Fcfs, 0.04);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_GT(run.stats.gmmu.pagesEvicted, 0u);

    const auto faulted = replayFaultProtocol(run.events);
    EXPECT_GT(run.stats.gmmu.faultsRaised, faulted.size())
        << "no page ever re-faulted despite evictions";
}

} // namespace
