/**
 * @file
 * Unit tests for the single-ported RateLimiter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rate_limiter.hh"

namespace {

using namespace gpuwalk::sim;

TEST(RateLimiter, FirstSubmissionRunsImmediately)
{
    EventQueue eq;
    RateLimiter port(eq, 500);
    Tick ran_at = maxTick;
    port.submit([&] { ran_at = eq.now(); });
    eq.run();
    EXPECT_EQ(ran_at, 0u);
}

TEST(RateLimiter, BurstSerializesAtOnePerPeriod)
{
    EventQueue eq;
    RateLimiter port(eq, 500);
    std::vector<Tick> times;
    for (int i = 0; i < 5; ++i)
        port.submit([&] { times.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(times.size(), 5u);
    for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_EQ(times[i], i * 500);
}

TEST(RateLimiter, IdlePortDoesNotAccumulateCredit)
{
    EventQueue eq;
    RateLimiter port(eq, 500);
    port.submit([] {});
    eq.run();
    // Long idle gap; the next burst still paces from "now".
    eq.schedule(10'000, [] {});
    eq.run();
    std::vector<Tick> times;
    port.submit([&] { times.push_back(eq.now()); });
    port.submit([&] { times.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 10'000u);
    EXPECT_EQ(times[1], 10'500u);
}

TEST(RateLimiter, PreservesFifoOrder)
{
    EventQueue eq;
    RateLimiter port(eq, 100);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        port.submit([&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(RateLimiter, NextSlotReflectsBacklog)
{
    EventQueue eq;
    RateLimiter port(eq, 500);
    EXPECT_EQ(port.nextSlot(), 0u);
    port.submit([] {});
    EXPECT_EQ(port.nextSlot(), 500u);
    port.submit([] {});
    EXPECT_EQ(port.nextSlot(), 1000u);
}

TEST(RateLimiter, SubmissionsFromInsideActionsPace)
{
    EventQueue eq;
    RateLimiter port(eq, 250);
    std::vector<Tick> times;
    port.submit([&] {
        times.push_back(eq.now());
        port.submit([&] { times.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1], times[0] + 250);
}

} // namespace
