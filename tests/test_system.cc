/**
 * @file
 * End-to-end integration tests: the full system running benchmark
 * workloads under every scheduler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"
#include "workload/registry.hh"

namespace {

using namespace gpuwalk;

workload::WorkloadParams
smallParams()
{
    workload::WorkloadParams p;
    p.wavefronts = 32;
    p.instructionsPerWavefront = 12;
    p.footprintScale = 0.05;
    p.seed = 7;
    return p;
}

system::SystemConfig
smallConfig(core::SchedulerKind kind)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    return cfg;
}

TEST(SystemIntegration, MvtRunsToCompletionUnderFcfs)
{
    system::System sys(smallConfig(core::SchedulerKind::Fcfs));
    sys.loadBenchmark("MVT", smallParams());
    const auto stats = sys.run();

    EXPECT_GT(stats.runtimeTicks, 0u);
    EXPECT_EQ(stats.instructions, 32u * 12u);
    EXPECT_GT(stats.walkRequests, 0u);
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

TEST(SystemIntegration, AllWalksDrainAtCompletion)
{
    system::System sys(smallConfig(core::SchedulerKind::SimtAware));
    sys.loadBenchmark("GEV", smallParams());
    sys.run();
    EXPECT_EQ(sys.iommu().inflightWalks(), 0u);
}

TEST(SystemIntegration, EverySchedulerCompletesEveryInstruction)
{
    for (auto kind :
         {core::SchedulerKind::Fcfs, core::SchedulerKind::Random,
          core::SchedulerKind::SjfOnly, core::SchedulerKind::BatchOnly,
          core::SchedulerKind::SimtAware}) {
        system::System sys(smallConfig(kind));
        sys.loadBenchmark("ATX", smallParams());
        const auto stats = sys.run();
        EXPECT_EQ(stats.instructions, 32u * 12u)
            << "scheduler " << core::toString(kind);
    }
}

TEST(SystemIntegration, RunsAreDeterministic)
{
    auto run = [] {
        system::System sys(smallConfig(core::SchedulerKind::SimtAware));
        sys.loadBenchmark("BIC", smallParams());
        return sys.run();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.walkRequests, b.walkRequests);
    EXPECT_EQ(a.stallTicks, b.stallTicks);
}

TEST(SystemIntegration, RandomSchedulerSeedChangesSchedule)
{
    auto run = [](std::uint64_t seed) {
        auto cfg = smallConfig(core::SchedulerKind::Random);
        cfg.schedulerSeed = seed;
        system::System sys(cfg);
        sys.loadBenchmark("MVT", smallParams());
        return sys.run();
    };
    // Different seeds must still complete correctly; runtimes may (and
    // almost surely do) differ.
    const auto a = run(1);
    const auto b = run(99);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(SystemIntegration, StatsDumpContainsAllComponents)
{
    system::System sys(smallConfig(core::SchedulerKind::Fcfs));
    sys.loadBenchmark("KMN", smallParams());
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("gpu."), std::string::npos);
    EXPECT_NE(text.find("iommu."), std::string::npos);
    EXPECT_NE(text.find("dram."), std::string::npos);
    EXPECT_NE(text.find("l2d."), std::string::npos);
}

TEST(SystemIntegration, TranslationsAreFunctionallyCorrect)
{
    // Every page the workload touches must translate to the same
    // physical page the OS page table records.
    system::System sys(smallConfig(core::SchedulerKind::SimtAware));
    auto gen = workload::makeWorkload("MVT");
    auto params = smallParams();
    auto wl = gen->generate(sys.addressSpace(), params);

    const auto &table = sys.addressSpace().pageTable();
    for (const auto &trace : wl.traces) {
        for (const auto &instr : trace) {
            for (auto va : instr.laneAddrs) {
                auto pa = table.translate(va);
                ASSERT_TRUE(pa.has_value())
                    << "unmapped workload address " << va;
            }
        }
    }
    sys.loadWorkload(std::move(wl));
    const auto stats = sys.run();
    EXPECT_GT(stats.walkRequests, 0u);
}

TEST(SystemIntegration, RegularWorkloadsWalkLittle)
{
    // Regular benchmarks coalesce to one page per instruction and
    // stream: walks per instruction must be far below the irregular
    // apps'.
    const auto params = smallParams();
    system::System irr(smallConfig(core::SchedulerKind::Fcfs));
    irr.loadBenchmark("GEV", params);
    const auto irregular = irr.run();

    system::System reg(smallConfig(core::SchedulerKind::Fcfs));
    reg.loadBenchmark("BCK", params);
    const auto regular = reg.run();

    const double irr_rate =
        static_cast<double>(irregular.walkRequests)
        / static_cast<double>(irregular.instructions);
    const double reg_rate =
        static_cast<double>(regular.walkRequests)
        / static_cast<double>(regular.instructions);
    EXPECT_GT(irr_rate, 5.0 * reg_rate);
}

TEST(SystemIntegration, BaselineConfigMatchesTable1)
{
    const auto cfg = system::SystemConfig::baseline();
    EXPECT_EQ(cfg.gpu.numCus, 8u);
    EXPECT_EQ(cfg.gpu.clockPeriod, 500u);
    EXPECT_EQ(cfg.l1d.sizeBytes, 32u * 1024u);
    EXPECT_EQ(cfg.l2d.sizeBytes, 4u * 1024u * 1024u);
    EXPECT_EQ(cfg.gpuTlb.l1Entries, 32u);
    EXPECT_EQ(cfg.gpuTlb.l2Entries, 512u);
    EXPECT_EQ(cfg.gpuTlb.l2Associativity, 16u);
    EXPECT_EQ(cfg.iommu.bufferEntries, 256u);
    EXPECT_EQ(cfg.iommu.numWalkers, 8u);
    EXPECT_EQ(cfg.iommu.l1TlbEntries, 32u);
    EXPECT_EQ(cfg.iommu.l2TlbEntries, 256u);
    EXPECT_EQ(cfg.dram.channels, 2u);
    EXPECT_EQ(cfg.dram.ranksPerChannel, 2u);
    EXPECT_EQ(cfg.dram.banksPerRank, 16u);
    EXPECT_EQ(cfg.scheduler, core::SchedulerKind::Fcfs);
}

} // namespace
