/**
 * @file
 * Unit tests for the workload pattern building blocks.
 */

#include <gtest/gtest.h>

#include "tlb/coalescer.hh"
#include "workload/patterns.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::workload;
using gpuwalk::mem::Addr;

TEST(Patterns, StridedLanesArithmetic)
{
    const auto lanes = stridedLanes(0x1000, 32768, 4);
    ASSERT_EQ(lanes.size(), 4u);
    EXPECT_EQ(lanes[0], 0x1000u);
    EXPECT_EQ(lanes[3], 0x1000u + 3u * 32768u);
}

TEST(Patterns, SequentialLanesAreUnitStride)
{
    const auto lanes = sequentialLanes(0x2000, 4);
    ASSERT_EQ(lanes.size(), gpu::wavefrontSize);
    EXPECT_EQ(lanes[1] - lanes[0], 4u);
    // Coalesces to a single page.
    EXPECT_EQ(tlb::coalesce(lanes).pages.size(), 1u);
}

TEST(Patterns, BroadcastIsOneAddress)
{
    const auto lanes = broadcastLanes(0xabc0);
    EXPECT_EQ(lanes.size(), gpu::wavefrontSize);
    for (auto a : lanes)
        EXPECT_EQ(a, 0xabc0u);
}

TEST(Patterns, RandomLanesStayInRegion)
{
    sim::Rng rng(3);
    vm::VaRegion region{"r", 0x100000, 0x40000};
    for (int i = 0; i < 50; ++i) {
        for (auto a : randomLanes(rng, region, 8)) {
            EXPECT_GE(a, region.base);
            EXPECT_LT(a, region.end());
            EXPECT_EQ(a % 8, 0u);
        }
    }
}

TEST(Patterns, WindowedRandomRespectsWindow)
{
    sim::Rng rng(5);
    vm::VaRegion region{"r", 0, 1 << 20}; // 128K x 8B elements
    const std::uint64_t focus = 5000, window = 200;
    for (int i = 0; i < 50; ++i) {
        for (auto a : windowedRandomLanes(rng, region, 8, focus,
                                          window)) {
            const std::uint64_t elem = a / 8;
            EXPECT_GE(elem, focus - window / 2);
            EXPECT_LE(elem, focus + window / 2);
        }
    }
}

TEST(Patterns, WindowedRandomClampsAtRegionEdges)
{
    sim::Rng rng(7);
    vm::VaRegion region{"r", 0, 4096};
    // Focus beyond the region: must clamp, not overflow.
    for (auto a : windowedRandomLanes(rng, region, 8, 1 << 20, 100))
        EXPECT_LT(a, region.end());
    // Focus at zero: no underflow.
    for (auto a : windowedRandomLanes(rng, region, 8, 0, 100))
        EXPECT_GE(a, region.base);
}

TEST(Patterns, JitteredComputeStaysInBand)
{
    sim::Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const auto c = jitteredCompute(rng, 200);
        EXPECT_GE(c, 100u);
        EXPECT_LT(c, 300u);
    }
    // Degenerate base passes through.
    EXPECT_EQ(jitteredCompute(rng, 0), 0u);
    EXPECT_EQ(jitteredCompute(rng, 1), 1u);
}

TEST(Patterns, ActiveLaneCountDistribution)
{
    sim::Rng rng(13);
    unsigned full = 0, partial = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto lanes = activeLaneCount(rng, 0.2);
        EXPECT_GE(lanes, gpu::wavefrontSize / 8);
        EXPECT_LE(lanes, gpu::wavefrontSize);
        if (lanes == gpu::wavefrontSize)
            ++full;
        else
            ++partial;
    }
    EXPECT_NEAR(partial / 10000.0, 0.2, 0.02);
    EXPECT_GT(full, 0u);
}

TEST(Patterns, ActiveLaneCountZeroProbabilityAlwaysFull)
{
    sim::Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(activeLaneCount(rng, 0.0), gpu::wavefrontSize);
}

TEST(Patterns, MakeInstrWiresFields)
{
    auto instr = makeInstr({0x10, 0x20}, false, 99);
    EXPECT_EQ(instr.laneAddrs.size(), 2u);
    EXPECT_FALSE(instr.isLoad);
    EXPECT_EQ(instr.computeCycles, 99u);
}

TEST(Patterns, SquareDimMatchesFootprint)
{
    // 128 MB of doubles -> n = 4096.
    EXPECT_EQ(squareDim(Addr(128) << 20, 8), 4096u);
    // Floors at wavefront size for tiny footprints.
    EXPECT_EQ(squareDim(1024, 8), gpu::wavefrontSize);
}

} // namespace
