/**
 * @file
 * Unit tests for the address space and frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/address_space.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::vm;
using gpuwalk::mem::Addr;

TEST(FrameAllocator, SequentialAllocation)
{
    FrameAllocator alloc(Addr(1) << 20, /*scramble=*/false);
    EXPECT_EQ(alloc.framesTotal(), 256u);
    EXPECT_EQ(alloc.allocateFrame(), 0u);
    EXPECT_EQ(alloc.allocateFrame(), 4096u);
    EXPECT_EQ(alloc.framesAllocated(), 2u);
}

TEST(FrameAllocator, ScrambleIsBijective)
{
    FrameAllocator alloc(Addr(1) << 22, /*scramble=*/true);
    std::set<Addr> seen;
    for (std::uint64_t i = 0; i < alloc.framesTotal(); ++i) {
        const Addr f = alloc.allocateFrame();
        EXPECT_EQ(f % mem::pageSize, 0u);
        EXPECT_LT(f, Addr(1) << 22);
        EXPECT_TRUE(seen.insert(f).second) << "duplicate frame " << f;
    }
}

TEST(FrameAllocator, ScrambleScattersNeighbours)
{
    FrameAllocator alloc(Addr(1) << 26, /*scramble=*/true);
    const Addr a = alloc.allocateFrame();
    const Addr b = alloc.allocateFrame();
    EXPECT_NE(b, a + mem::pageSize);
}

TEST(FrameAllocatorDeathTest, ExhaustionPanics)
{
    FrameAllocator alloc(2 * mem::pageSize);
    alloc.allocateFrame();
    alloc.allocateFrame();
    EXPECT_DEATH(alloc.allocateFrame(), "out of physical memory");
}

struct AddressSpaceFixture : public ::testing::Test
{
    mem::BackingStore store;
    FrameAllocator frames{Addr(1) << 30};
    AddressSpace as{store, frames};
};

TEST_F(AddressSpaceFixture, AllocateMapsEveryPage)
{
    const auto region = as.allocate("buf", 64 * 1024);
    EXPECT_EQ(region.bytes, 64u * 1024u);
    for (Addr va = region.base; va < region.end(); va += mem::pageSize)
        EXPECT_TRUE(as.pageTable().translate(va).has_value());
}

TEST_F(AddressSpaceFixture, RoundsUpToWholePages)
{
    const auto region = as.allocate("odd", 100);
    EXPECT_EQ(region.bytes, mem::pageSize);
}

TEST_F(AddressSpaceFixture, GuardPagesBetweenRegions)
{
    const auto a = as.allocate("a", mem::pageSize);
    const auto b = as.allocate("b", mem::pageSize);
    EXPECT_GE(b.base, a.end() + mem::pageSize);
    // The guard page is unmapped.
    EXPECT_FALSE(as.pageTable().translate(a.end()).has_value());
}

TEST_F(AddressSpaceFixture, DistinctRegionsDistinctFrames)
{
    const auto a = as.allocate("a", 16 * mem::pageSize);
    const auto b = as.allocate("b", 16 * mem::pageSize);
    std::set<Addr> frames_seen;
    for (const auto &r : {a, b}) {
        for (Addr va = r.base; va < r.end(); va += mem::pageSize) {
            auto pa = as.pageTable().translate(va);
            ASSERT_TRUE(pa.has_value());
            EXPECT_TRUE(frames_seen.insert(*pa).second);
        }
    }
}

TEST_F(AddressSpaceFixture, FootprintSumsRegions)
{
    as.allocate("a", 3 * mem::pageSize);
    as.allocate("b", 5 * mem::pageSize);
    EXPECT_EQ(as.footprintBytes(), 8u * mem::pageSize);
    EXPECT_EQ(as.regions().size(), 2u);
}

TEST_F(AddressSpaceFixture, RegionsCarryNames)
{
    as.allocate("matrix_A", mem::pageSize);
    EXPECT_EQ(as.regions().front().name, "matrix_A");
}

} // namespace
