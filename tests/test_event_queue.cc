/**
 * @file
 * Unit tests for the deterministic discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using gpuwalk::sim::EventPriority;
using gpuwalk::sim::EventQueue;
using gpuwalk::sim::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTickEventsRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Late);
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(3); }, EventPriority::Early);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, EventsCanScheduleAtCurrentTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(10, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunAdvancesToLimitWhenQueueDrainsEarly)
{
    // Regression: run(limit) used to leave now() at the last executed
    // event when the queue drained before the limit, so time-bounded
    // callers observed end times that depended on event population.
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_EQ(eq.run(100), 100u);
    EXPECT_EQ(eq.now(), 100u);

    // An empty queue also advances straight to the bound...
    EXPECT_EQ(eq.run(250), 250u);
    EXPECT_EQ(eq.now(), 250u);

    // ...and scheduling at the observed end time is legal.
    int fired = 0;
    eq.schedule(250, [&] { ++fired; });
    eq.run(250);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, UnboundedRunKeepsNowAtLastEvent)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, RunEventsBoundsExecution)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] { ++fired; });
    EXPECT_EQ(eq.runEvents(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, ExecutedCountsAllEvents)
{
    EventQueue eq;
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, CascadedEventsKeepDeterministicOrder)
{
    // Two event chains interleaving at the same ticks must execute in
    // a reproducible order: run twice, compare histories.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> history;
        for (int chain = 0; chain < 2; ++chain) {
            eq.schedule(1, [&eq, &history, chain] {
                history.push_back(chain);
                eq.scheduleIn(2, [&history, chain] {
                    history.push_back(10 + chain);
                });
            });
        }
        eq.run();
        return history;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
