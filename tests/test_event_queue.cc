/**
 * @file
 * Unit tests for the deterministic discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using gpuwalk::sim::EventPriority;
using gpuwalk::sim::EventQueue;
using gpuwalk::sim::Tick;

/** Intrusive test event that bumps a counter (if any) when fired. */
struct CountingEvent final : gpuwalk::sim::Event
{
    int *fired = nullptr;
    void
    process() override
    {
        if (fired)
            ++*fired;
    }
};

/** Intrusive test event appending a tag to a shared history. */
struct RecordingEvent final : gpuwalk::sim::Event
{
    RecordingEvent(std::vector<int> *order_out, int tag_value)
        : order(order_out), tag(tag_value)
    {}
    std::vector<int> *order;
    int tag;
    void process() override { order->push_back(tag); }
};

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTickEventsRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Late);
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(3); }, EventPriority::Early);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, EventsCanScheduleAtCurrentTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(10, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunAdvancesToLimitWhenQueueDrainsEarly)
{
    // Regression: run(limit) used to leave now() at the last executed
    // event when the queue drained before the limit, so time-bounded
    // callers observed end times that depended on event population.
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_EQ(eq.run(100), 100u);
    EXPECT_EQ(eq.now(), 100u);

    // An empty queue also advances straight to the bound...
    EXPECT_EQ(eq.run(250), 250u);
    EXPECT_EQ(eq.now(), 250u);

    // ...and scheduling at the observed end time is legal.
    int fired = 0;
    eq.schedule(250, [&] { ++fired; });
    eq.run(250);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, UnboundedRunKeepsNowAtLastEvent)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, RunEventsBoundsExecution)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] { ++fired; });
    EXPECT_EQ(eq.runEvents(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, ExecutedCountsAllEvents)
{
    EventQueue eq;
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

// Regression battery for the documented `when >= now()` precondition:
// both the pooled-callable and the intrusive schedule paths must refuse
// to enqueue into the past, at any displacement — a pooled node placed
// behind now() would otherwise sit in a bucket the dispatch scan never
// revisits and leak silently.

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueueDeathTest, SchedulingIntrusiveEventInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    CountingEvent ev;
    EXPECT_DEATH(eq.schedule(99, ev), "past");
}

TEST(EventQueueDeathTest, SchedulingInThePastPanicsBeyondTheWindow)
{
    // A displacement larger than the bucket window must not wrap into
    // a plausible-looking future bucket.
    EventQueue eq;
    eq.schedule(EventQueue::windowTicks * 3, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(EventQueue::windowTicks, [] {}), "past");
}

TEST(EventQueueDeathTest, DoubleSchedulingAnEventPanics)
{
    EventQueue eq;
    CountingEvent ev;
    eq.schedule(10, ev);
    EXPECT_DEATH(eq.schedule(20, ev), "already scheduled");
}

// --- Intrusive event API -------------------------------------------------

TEST(EventQueue, IntrusiveEventsInterleaveWithCallbacks)
{
    EventQueue eq;
    std::vector<int> order;
    RecordingEvent a{&order, 1};
    RecordingEvent b{&order, 3};
    eq.schedule(5, a);
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, b);
    EXPECT_TRUE(a.scheduled());
    eq.run();
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, IntrusiveEventCanRescheduleItself)
{
    EventQueue eq;
    struct Ticker final : gpuwalk::sim::Event
    {
        EventQueue *eq = nullptr;
        int fires = 0;
        void
        process() override
        {
            if (++fires < 4)
                eq->scheduleIn(10, *this);
        }
    } ticker;
    ticker.eq = &eq;
    eq.schedule(1, ticker);
    eq.run();
    EXPECT_EQ(ticker.fires, 4);
    EXPECT_EQ(eq.now(), 31u);
}

TEST(EventQueue, DescheduleRemovesPendingEvent)
{
    EventQueue eq;
    std::vector<int> order;
    RecordingEvent a{&order, 1};
    RecordingEvent b{&order, 2};
    eq.schedule(10, a);
    eq.schedule(10, b);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, DestroyedEventLeavesTheQueue)
{
    EventQueue eq;
    int fired = 0;
    {
        CountingEvent ev;
        ev.fired = &fired;
        eq.schedule(10, ev);
        EXPECT_EQ(eq.pending(), 1u);
    } // ev destructs while scheduled: must self-deschedule
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, FarFutureEventsTierThroughOverflow)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick far = EventQueue::windowTicks * 5 + 3;
    eq.schedule(far, [&] { order.push_back(2); });
    EXPECT_EQ(eq.overflowPending(), 1u);
    eq.schedule(7, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), far);
    EXPECT_EQ(eq.overflowPending(), 0u);
}

TEST(EventQueue, CascadedEventsKeepDeterministicOrder)
{
    // Two event chains interleaving at the same ticks must execute in
    // a reproducible order: run twice, compare histories.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> history;
        for (int chain = 0; chain < 2; ++chain) {
            eq.schedule(1, [&eq, &history, chain] {
                history.push_back(chain);
                eq.scheduleIn(2, [&history, chain] {
                    history.push_back(10 + chain);
                });
            });
        }
        eq.run();
        return history;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
