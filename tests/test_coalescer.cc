/**
 * @file
 * Unit tests for the access coalescer.
 */

#include <gtest/gtest.h>

#include "tlb/coalescer.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::tlb;
using gpuwalk::mem::Addr;

TEST(Coalescer, EmptyInput)
{
    const auto out = coalesce({});
    EXPECT_TRUE(out.pages.empty());
    EXPECT_TRUE(out.lines.empty());
    EXPECT_EQ(out.activeLanes, 0u);
    EXPECT_DOUBLE_EQ(out.pageDivergence(), 0.0);
}

TEST(Coalescer, PerfectlyCoalescedBroadcast)
{
    std::vector<Addr> lanes(64, 0x1234);
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.pages.size(), 1u);
    EXPECT_EQ(out.lines.size(), 1u);
    EXPECT_EQ(out.pages[0], 0x1000u);
    EXPECT_EQ(out.lines[0], 0x1200u);
}

TEST(Coalescer, UnitStrideTouchesFewLines)
{
    // 64 lanes x 4-byte elements = 256 bytes = 4 lines, 1 page.
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 64; ++i)
        lanes.push_back(0x10000 + i * 4);
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.pages.size(), 1u);
    EXPECT_EQ(out.lines.size(), 4u);
}

TEST(Coalescer, PageStrideFullyDiverges)
{
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 64; ++i)
        lanes.push_back(0x100000 + i * 32768); // 32 KB row stride
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.pages.size(), 64u);
    EXPECT_EQ(out.lines.size(), 64u);
    EXPECT_DOUBLE_EQ(out.pageDivergence(), 1.0);
}

TEST(Coalescer, SubPageStridePartiallyCoalesces)
{
    // 1 KB stride: 4 lanes per page.
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 64; ++i)
        lanes.push_back(0x100000 + i * 1024);
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.pages.size(), 16u);
    EXPECT_EQ(out.lines.size(), 64u);
}

TEST(Coalescer, PreservesFirstOccurrenceOrder)
{
    std::vector<Addr> lanes{0x3000, 0x1000, 0x3040, 0x2000};
    const auto out = coalesce(lanes);
    ASSERT_EQ(out.pages.size(), 3u);
    EXPECT_EQ(out.pages[0], 0x3000u);
    EXPECT_EQ(out.pages[1], 0x1000u);
    EXPECT_EQ(out.pages[2], 0x2000u);
}

TEST(Coalescer, LinesAndPagesIndependent)
{
    // Two lines on the same page.
    std::vector<Addr> lanes{0x5000, 0x5040};
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.pages.size(), 1u);
    EXPECT_EQ(out.lines.size(), 2u);
}

TEST(Coalescer, DivergenceMetricPartial)
{
    std::vector<Addr> lanes;
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back(i * mem::pageSize);
    for (Addr i = 0; i < 32; ++i)
        lanes.push_back(i * mem::pageSize); // duplicates
    const auto out = coalesce(lanes);
    EXPECT_EQ(out.activeLanes, 64u);
    EXPECT_EQ(out.pages.size(), 32u);
    EXPECT_DOUBLE_EQ(out.pageDivergence(), 0.5);
}

} // namespace
