/**
 * @file
 * Unit tests for the experiment subsystem (src/exp/): table
 * formatting, run helpers, sweep expansion, the parallel runner's
 * determinism, and the JSON report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "exp/bench_cli.hh"
#include "exp/metrics.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::exp;
using gpuwalk::system::SystemConfig;

TEST(TablePrinterTest, HeaderRowAndRule)
{
    TablePrinter t({"app", "value"}, 8);
    std::ostringstream os;
    t.printHeader(os);
    t.printRow(os, {"MVT", "1.35"});
    const std::string text = os.str();
    EXPECT_NE(text.find("app"), std::string::npos);
    EXPECT_NE(text.find("value"), std::string::npos);
    EXPECT_NE(text.find("MVT"), std::string::npos);
    EXPECT_NE(text.find("--------"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmt(1.0, 3), "1.000");
    EXPECT_EQ(TablePrinter::fmt(0.5, 0), "0");
}

TEST(ExperimentHelpers, WithSchedulerOnlyChangesScheduler)
{
    auto base = SystemConfig::baseline();
    auto changed = withScheduler(base, core::SchedulerKind::Random);
    EXPECT_EQ(changed.scheduler, core::SchedulerKind::Random);
    EXPECT_EQ(changed.iommu.numWalkers, base.iommu.numWalkers);
    EXPECT_EQ(changed.gpuTlb.l2Entries, base.gpuTlb.l2Entries);
}

TEST(ExperimentHelpers, ExperimentParamsAreFullFootprint)
{
    const auto p = experimentParams();
    EXPECT_DOUBLE_EQ(p.footprintScale, 1.0);
    EXPECT_GT(p.wavefronts, 0u);
    EXPECT_GT(p.instructionsPerWavefront, 0u);
}

workload::WorkloadParams
tinyParams()
{
    auto params = experimentParams();
    params.wavefronts = 16;
    params.instructionsPerWavefront = 6;
    params.footprintScale = 0.02;
    return params;
}

TEST(ExperimentHelpers, RunOneProducesConsistentResult)
{
    const auto result =
        runOne(SystemConfig::baseline(), "KMN", tinyParams());
    EXPECT_EQ(result.workload, "KMN");
    EXPECT_EQ(result.scheduler, "fcfs");
    EXPECT_EQ(result.schedulerKind, core::SchedulerKind::Fcfs);
    EXPECT_EQ(result.stats.instructions, 16u * 6u);
}

TEST(ExperimentHelpers, PrintBannerEchoesConfig)
{
    std::ostringstream os;
    printBanner(os, "Figure X", "description here",
                SystemConfig::baseline());
    const auto text = os.str();
    EXPECT_NE(text.find("Figure X"), std::string::npos);
    EXPECT_NE(text.find("description here"), std::string::npos);
    EXPECT_NE(text.find("8 CUs"), std::string::npos);
    EXPECT_NE(text.find("DDR3-1600"), std::string::npos);
}

/** Geomean/speedup edge cases: single element, the identity value. */
TEST(ExperimentMath, GeomeanEdgeCases)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
}

TEST(ExperimentMath, SpeedupEdgeCases)
{
    system::RunStats fast, slow;
    fast.runtimeTicks = 100;
    slow.runtimeTicks = 150;
    EXPECT_DOUBLE_EQ(speedup(fast, slow), 1.5);
    EXPECT_DOUBLE_EQ(speedup(slow, fast), 100.0 / 150.0);
    EXPECT_DOUBLE_EQ(speedup(fast, fast), 1.0);
}

TEST(ExperimentMath, MeanTrackerIsGeometric)
{
    MeanTracker m;
    m.add(2.0);
    m.add(8.0);
    EXPECT_DOUBLE_EQ(m.mean(), 4.0);
}

TEST(ExperimentMath, DegenerateInputsReportNaNInsteadOfDying)
{
    // A degenerate metric must not kill a whole sweep: the helpers
    // warn and return NaN, which the JSON writer renders as null.
    EXPECT_TRUE(std::isnan(geomean({})));
    EXPECT_TRUE(std::isnan(geomean({1.0, 0.0})));
    EXPECT_TRUE(std::isnan(geomean({2.0, -4.0})));
    // NaN inputs poison the result explicitly, not via pow/log UB.
    EXPECT_TRUE(std::isnan(
        geomean({1.0, std::numeric_limits<double>::quiet_NaN()})));

    system::RunStats ok, stuck;
    ok.runtimeTicks = 100;
    stuck.runtimeTicks = 0;
    EXPECT_TRUE(std::isnan(speedup(ok, stuck)));
    EXPECT_TRUE(std::isnan(speedup(stuck, ok)));
}

TEST(ExperimentMath, MeanTrackerEmptyIsNaN)
{
    MeanTracker m;
    EXPECT_TRUE(std::isnan(m.mean()));
}

TEST(ReportTest, NonFiniteNumbersSerializeAsNull)
{
    system::RunStats stats;
    stats.avgWavefrontsPerEpoch =
        std::numeric_limits<double>::quiet_NaN();
    stats.walks.interleavedFraction =
        std::numeric_limits<double>::infinity();
    const auto json = statsJsonString(stats);
    EXPECT_NE(json.find("\"avg_wavefronts_per_epoch\": null"),
              std::string::npos);
    EXPECT_NE(json.find("\"interleaved_fraction\": null"),
              std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

// --- SweepSpec expansion -------------------------------------------

TEST(SweepSpecTest, ExpandsFullCrossProductInDeterministicOrder)
{
    SweepSpec spec;
    spec.workloads = {"MVT", "HOT"};
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};
    spec.variants = {{"small", nullptr}, {"large", nullptr}};

    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
    // Variant-major, then workload, then scheduler.
    EXPECT_EQ(jobs[0].variant, "small");
    EXPECT_EQ(jobs[0].workload, "MVT");
    EXPECT_EQ(jobs[0].scheduler, "fcfs");
    EXPECT_EQ(jobs[1].scheduler, "simt-aware");
    EXPECT_EQ(jobs[2].workload, "HOT");
    EXPECT_EQ(jobs[4].variant, "large");
    EXPECT_EQ(jobs[7].workload, "HOT");
    EXPECT_EQ(jobs[7].scheduler, "simt-aware");
}

TEST(SweepSpecTest, ImplicitSeedKeepsBaselinePairing)
{
    // Without an explicit seeds axis the baseline pairing (workload
    // seed from params, scheduler seed from the config) must survive
    // expansion untouched.
    SweepSpec spec;
    spec.params = tinyParams();
    spec.params.seed = 42;
    spec.base.schedulerSeed = 1;
    spec.workloads = {"KMN"};
    bool checked = false;
    spec.body = [&checked](const JobSpec &job) {
        EXPECT_EQ(job.params.seed, 42u);
        EXPECT_EQ(job.cfg.schedulerSeed, 1u);
        checked = true;
        return RunResult{};
    };
    runSweep(spec, {1});
    EXPECT_TRUE(checked);
}

TEST(SweepSpecTest, ExplicitSeedsOverrideBothStreams)
{
    SweepSpec spec;
    spec.params = tinyParams();
    spec.workloads = {"KMN"};
    spec.seeds = {7, 9};
    std::vector<std::uint64_t> seen;
    spec.body = [&seen](const JobSpec &job) {
        EXPECT_EQ(job.params.seed, job.seed);
        EXPECT_EQ(job.cfg.schedulerSeed, job.seed);
        seen.push_back(job.seed);
        return RunResult{};
    };
    const auto result = runSweep(spec, {1});
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{7, 9}));
    EXPECT_EQ(result.runs()[0].seed, 7u);
    EXPECT_EQ(result.runs()[1].seed, 9u);
}

TEST(SweepSpecTest, VariantApplyMutatesConfigAndParams)
{
    SweepSpec spec;
    spec.params = tinyParams();
    spec.workloads = {"KMN"};
    spec.variants = {
        {"tweaked",
         [](system::SystemConfig &cfg,
            workload::WorkloadParams &params) {
             cfg.iommu.numWalkers = 3;
             params.useLargePages = true;
         }},
    };
    bool checked = false;
    spec.body = [&checked](const JobSpec &job) {
        EXPECT_EQ(job.cfg.iommu.numWalkers, 3u);
        EXPECT_TRUE(job.params.useLargePages);
        EXPECT_EQ(job.variant, "tweaked");
        checked = true;
        return RunResult{};
    };
    runSweep(spec, {1});
    EXPECT_TRUE(checked);
}

// --- ParallelRunner ------------------------------------------------

SweepSpec
smallRealSweep()
{
    SweepSpec spec;
    spec.params = tinyParams();
    spec.workloads = {"KMN", "MVT"};
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::Random};
    return spec;
}

TEST(ParallelRunnerTest, SerialAndParallelRunsAreByteIdentical)
{
    // The acceptance property: the same SweepSpec with --jobs 1 and
    // --jobs 8 yields byte-identical per-run statistics (compared via
    // the JSON rendition, which prints doubles at max precision).
    const auto serial = runSweep(smallRealSweep(), {1});
    const auto parallel = runSweep(smallRealSweep(), {8});

    ASSERT_EQ(serial.runs().size(), parallel.runs().size());
    EXPECT_EQ(serial.jobsUsed(), 1u);
    for (std::size_t i = 0; i < serial.runs().size(); ++i) {
        EXPECT_EQ(serial.runs()[i].workload,
                  parallel.runs()[i].workload);
        EXPECT_EQ(serial.runs()[i].scheduler,
                  parallel.runs()[i].scheduler);
        EXPECT_EQ(statsJsonString(serial.runs()[i].stats),
                  statsJsonString(parallel.runs()[i].stats))
            << "run " << i << " diverged between --jobs 1 and "
            << "--jobs 8";
    }
}

TEST(ParallelRunnerTest, ResultsKeepExpansionOrderAndLabels)
{
    const auto result = runSweep(smallRealSweep(), {4});
    ASSERT_EQ(result.runs().size(), 4u);
    EXPECT_EQ(result.runs()[0].workload, "KMN");
    EXPECT_EQ(result.runs()[0].scheduler, "fcfs");
    EXPECT_EQ(result.runs()[1].scheduler, "random");
    EXPECT_EQ(result.runs()[2].workload, "MVT");
    // Lookup helpers resolve by label.
    EXPECT_EQ(&result.at("MVT", core::SchedulerKind::Random),
              &result.runs()[3]);
    EXPECT_GT(result.stats("KMN", core::SchedulerKind::Fcfs)
                  .instructions,
              0u);
}

TEST(ParallelRunnerTest, RecordsWallTimes)
{
    const auto result = runSweep(smallRealSweep(), {2});
    EXPECT_GT(result.wallSeconds(), 0.0);
    EXPECT_EQ(result.jobsUsed(), 2u);
    for (const auto &run : result.runs())
        EXPECT_GT(run.wallSeconds, 0.0);
}

TEST(ParallelRunnerTest, FirstExceptionPropagatesToCaller)
{
    std::vector<Job> jobs;
    for (int i = 0; i < 8; ++i) {
        Job job;
        job.workload = "job" + std::to_string(i);
        job.body = [i]() -> RunResult {
            if (i == 3)
                throw std::runtime_error("boom");
            return RunResult{};
        };
        jobs.push_back(std::move(job));
    }
    EXPECT_THROW(runJobs(jobs, {4}), std::runtime_error);
    EXPECT_THROW(runJobs(jobs, {1}), std::runtime_error);
}

TEST(ParallelRunnerDeathTest, MissingLabelPanics)
{
    SweepSpec spec;
    spec.params = tinyParams();
    spec.workloads = {"KMN"};
    const auto result = runSweep(spec, {1});
    EXPECT_DEATH(result.at("NOPE"), "no sweep result");
}

// --- Report / JSON -------------------------------------------------

TEST(ReportTest, RendersBannerTablesAndNotes)
{
    Report report("Figure T", "test report",
                  SystemConfig::baseline());
    auto &table = report.addTable({"app", "speedup"});
    table.addRow({"MVT", "1.350"});
    table.addRule();
    table.addRow({"GEOMEAN", "1.350"});
    report.addNote("a note about the figure");

    std::ostringstream os;
    report.render(os);
    const auto text = os.str();
    EXPECT_NE(text.find("Figure T"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);
    EXPECT_NE(text.find("GEOMEAN"), std::string::npos);
    EXPECT_NE(text.find("a note about the figure"),
              std::string::npos);
}

TEST(ReportTest, JsonCarriesRunsSummaryAndFingerprint)
{
    auto spec = smallRealSweep();
    const auto result = runSweep(spec, {2});

    Report report("Figure T", "test report", spec.base);
    auto &table = report.addTable({"app", "speedup"});
    table.addRow({"MVT", "1.350"});
    report.addSummary("geomean_speedup", 1.35);

    std::ostringstream os;
    report.writeJson(os, &result);
    const auto json = os.str();
    EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(json.find("\"config_fingerprint\""), std::string::npos);
    EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(json.find("\"runs\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"KMN\""), std::string::npos);
    EXPECT_NE(json.find("\"geomean_speedup\""), std::string::npos);
    EXPECT_NE(json.find("\"runtime_ticks\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
}

TEST(ReportTest, ConfigFingerprintTracksConfig)
{
    const auto base = SystemConfig::baseline();
    auto changed = base;
    changed.iommu.numWalkers = 16;
    EXPECT_EQ(configFingerprint(base), configFingerprint(base));
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));
}

TEST(ReportTest, StatsJsonIsByteStableForEqualStats)
{
    system::RunStats a;
    a.runtimeTicks = 12345;
    a.walks.interleavedFraction = 1.0 / 3.0;
    auto b = a;
    EXPECT_EQ(statsJsonString(a), statsJsonString(b));
}

// --- bench CLI parsing ---------------------------------------------

TEST(BenchCliTest, ParsesJobsAndJsonBothSpellings)
{
    {
        const char *argv[] = {"bench", "--jobs=4", "--json=/tmp/x"};
        const auto opts = parseBenchArgs(3, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_EQ(opts.runner.jobs, 4u);
        EXPECT_EQ(opts.jsonPath, "/tmp/x");
    }
    {
        const char *argv[] = {"bench", "--jobs", "2", "--json",
                              "/tmp/y"};
        const auto opts = parseBenchArgs(5, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_EQ(opts.runner.jobs, 2u);
        EXPECT_EQ(opts.jsonPath, "/tmp/y");
    }
    {
        const char *argv[] = {"bench"};
        const auto opts = parseBenchArgs(1, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_EQ(opts.runner.jobs, 0u);
        EXPECT_TRUE(opts.jsonPath.empty());
        EXPECT_FALSE(opts.runner.audit.enabled);
    }
}

TEST(BenchCliTest, ParsesAuditFlags)
{
    {
        const char *argv[] = {"bench", "--audit"};
        const auto opts = parseBenchArgs(2, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_TRUE(opts.runner.audit.enabled);
        EXPECT_EQ(opts.runner.audit.interval, 0u);
    }
    {
        // --audit-interval implies --audit; both spellings work.
        const char *argv[] = {"bench", "--audit-interval=500000"};
        const auto opts = parseBenchArgs(2, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_TRUE(opts.runner.audit.enabled);
        EXPECT_EQ(opts.runner.audit.interval, 500000u);
    }
    {
        const char *argv[] = {"bench", "--audit-interval", "250"};
        const auto opts = parseBenchArgs(3, const_cast<char **>(argv),
                                         "id", "desc");
        EXPECT_TRUE(opts.runner.audit.enabled);
        EXPECT_EQ(opts.runner.audit.interval, 250u);
    }
}

TEST(ParallelRunnerTest, AuditedSweepIsCleanAndCarriesAuditStats)
{
    SweepSpec spec;
    spec.params = tinyParams();
    spec.workloads = {"KMN"};
    spec.schedulers = {core::SchedulerKind::Fcfs,
                       core::SchedulerKind::SimtAware};

    RunnerOptions opts;
    opts.jobs = 2;
    opts.audit.enabled = true;
    opts.audit.interval = 100000;
    const auto result = runSweep(spec, opts);

    ASSERT_EQ(result.runs().size(), 2u);
    for (const auto &run : result.runs()) {
        EXPECT_TRUE(run.stats.audited);
        EXPECT_GT(run.stats.auditChecks, 0u);
        EXPECT_EQ(run.stats.auditViolations, 0u)
            << run.workload << "/" << run.scheduler
            << " violated an invariant";
        const auto json = statsJsonString(run.stats);
        EXPECT_NE(json.find("\"audited\": true"), std::string::npos);
        EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
    }
}

TEST(ParallelRunnerTest, AuditDoesNotChangeSimulatedResults)
{
    // Auditing is observation-only: the same sweep with and without
    // --audit must produce identical simulated statistics. (The
    // events-executed count differs — the audit drains post-kernel
    // tail work — so compare the simulated-time fields directly.)
    const auto plain = runSweep(smallRealSweep(), {2});
    RunnerOptions audited;
    audited.jobs = 2;
    audited.audit.enabled = true;
    audited.audit.interval = 250000;
    const auto checked = runSweep(smallRealSweep(), audited);

    ASSERT_EQ(plain.runs().size(), checked.runs().size());
    for (std::size_t i = 0; i < plain.runs().size(); ++i) {
        const auto &a = plain.runs()[i].stats;
        const auto &b = checked.runs()[i].stats;
        EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
        EXPECT_EQ(a.stallTicks, b.stallTicks);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.walkRequests, b.walkRequests);
        EXPECT_EQ(a.walksCompleted, b.walksCompleted);
        EXPECT_EQ(b.auditViolations, 0u);
    }
}

} // namespace
