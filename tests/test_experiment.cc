/**
 * @file
 * Unit tests for the experiment harness helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/experiment.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::system;

TEST(TablePrinterTest, HeaderRowAndRule)
{
    TablePrinter t({"app", "value"}, 8);
    std::ostringstream os;
    t.printHeader(os);
    t.printRow(os, {"MVT", "1.35"});
    const std::string text = os.str();
    EXPECT_NE(text.find("app"), std::string::npos);
    EXPECT_NE(text.find("value"), std::string::npos);
    EXPECT_NE(text.find("MVT"), std::string::npos);
    EXPECT_NE(text.find("--------"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmt(1.0, 3), "1.000");
    EXPECT_EQ(TablePrinter::fmt(0.5, 0), "0");
}

TEST(ExperimentHelpers, WithSchedulerOnlyChangesScheduler)
{
    auto base = SystemConfig::baseline();
    auto changed = withScheduler(base, core::SchedulerKind::Random);
    EXPECT_EQ(changed.scheduler, core::SchedulerKind::Random);
    EXPECT_EQ(changed.iommu.numWalkers, base.iommu.numWalkers);
    EXPECT_EQ(changed.gpuTlb.l2Entries, base.gpuTlb.l2Entries);
}

TEST(ExperimentHelpers, ExperimentParamsAreFullFootprint)
{
    const auto p = experimentParams();
    EXPECT_DOUBLE_EQ(p.footprintScale, 1.0);
    EXPECT_GT(p.wavefronts, 0u);
    EXPECT_GT(p.instructionsPerWavefront, 0u);
}

TEST(ExperimentHelpers, RunOneProducesConsistentResult)
{
    auto params = experimentParams();
    params.wavefronts = 16;
    params.instructionsPerWavefront = 6;
    params.footprintScale = 0.02;
    const auto result = runOne(SystemConfig::baseline(), "KMN", params);
    EXPECT_EQ(result.workload, "KMN");
    EXPECT_EQ(result.scheduler, core::SchedulerKind::Fcfs);
    EXPECT_EQ(result.stats.instructions, 16u * 6u);
}

TEST(ExperimentHelpers, PrintBannerEchoesConfig)
{
    std::ostringstream os;
    printBanner(os, "Figure X", "description here",
                SystemConfig::baseline());
    const auto text = os.str();
    EXPECT_NE(text.find("Figure X"), std::string::npos);
    EXPECT_NE(text.find("description here"), std::string::npos);
    EXPECT_NE(text.find("8 CUs"), std::string::npos);
    EXPECT_NE(text.find("DDR3-1600"), std::string::npos);
}

TEST(ExperimentMathDeathTest, GeomeanRejectsBadInput)
{
    EXPECT_DEATH(geomean({}), "geomean");
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

} // namespace
