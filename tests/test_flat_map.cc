/**
 * @file
 * sim::FlatMap differential tests against std::unordered_map.
 *
 * The flat map backs every hot in-flight table in the simulator, so
 * any divergence from standard map semantics (lost elements across
 * rehash, probe chains broken by backward-shift erase, stale
 * membership) would corrupt simulation state silently. A randomized
 * mixed workload mirrors every operation into a std::unordered_map
 * reference and compares the full contents at checkpoints.
 */

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/flat_map.hh"

namespace {

using gpuwalk::sim::FlatMap;

/** xorshift64* — deterministic, seedable, no <random> overhead. */
struct Rng
{
    std::uint64_t s;

    explicit Rng(std::uint64_t seed) : s(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/** Full-content equality, checked through iteration both ways. */
void
expectSameContents(const FlatMap<std::uint64_t, std::uint64_t> &fm,
                   const std::unordered_map<std::uint64_t, std::uint64_t>
                       &ref)
{
    ASSERT_EQ(fm.size(), ref.size());
    std::size_t seen = 0;
    for (const auto &[k, v] : fm) {
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "flat map holds spurious key " << k;
        EXPECT_EQ(v, it->second) << "value mismatch at key " << k;
        ++seen;
    }
    EXPECT_EQ(seen, ref.size());
    for (const auto &[k, v] : ref) {
        const auto it = fm.find(k);
        ASSERT_NE(it, fm.end()) << "flat map lost key " << k;
        EXPECT_EQ(it->second, v);
    }
}

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_FALSE(m.contains(7));
    EXPECT_EQ(m.begin(), m.end());
    EXPECT_EQ(m.erase(7), 0u);
}

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatMap<std::uint64_t, int> m;
    auto [it, inserted] = m.try_emplace(42, 7);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->first, 42u);
    EXPECT_EQ(it->second, 7);

    // Second emplace on the same key is a no-op.
    auto [it2, inserted2] = m.try_emplace(42, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(it2->second, 7);

    m[42] = 11;
    EXPECT_EQ(m.at(42), 11);
    m[43] += 5; // default-constructed then mutated
    EXPECT_EQ(m.at(43), 5);
    EXPECT_EQ(m.size(), 2u);

    EXPECT_EQ(m.erase(42), 1u);
    EXPECT_FALSE(m.contains(42));
    EXPECT_EQ(m.size(), 1u);
    m.erase(m.find(43));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GrowsThroughManyRehashes)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    // Sequential keys are the adversarial case for linear probing.
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        m[k] = k * 3;
        ref[k] = k * 3;
    }
    expectSameContents(m, ref);
}

TEST(FlatMap, ReserveAvoidsRehashButNotCorrectness)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    m.reserve(1000);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t k = 0; k < 2000; ++k) { // past the reserve
        m[k * 977] = k;
        ref[k * 977] = k;
    }
    expectSameContents(m, ref);
}

TEST(FlatMap, BackwardShiftEraseKeepsProbeChainsIntact)
{
    // Erase-heavy churn over a small key universe maximizes probe
    // chain overlap, the case backward-shift deletion must get right.
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(0xfeed);
    for (int step = 0; step < 50'000; ++step) {
        const std::uint64_t k = rng.below(64);
        if (rng.below(2) == 0) {
            const std::uint64_t v = rng.next();
            m[k] = v;
            ref[k] = v;
        } else {
            EXPECT_EQ(m.erase(k), ref.erase(k));
        }
    }
    expectSameContents(m, ref);
}

TEST(FlatMap, RandomizedMixedWorkloadMatchesUnorderedMap)
{
    for (const std::uint64_t seed : {1ull, 2ull, 0xabcdefull}) {
        FlatMap<std::uint64_t, std::uint64_t> m;
        std::unordered_map<std::uint64_t, std::uint64_t> ref;
        Rng rng(seed);
        for (int step = 0; step < 30'000; ++step) {
            const std::uint64_t k = rng.below(4096) * 0x1000; // page-ish
            switch (rng.below(4)) {
            case 0: { // insert/overwrite
                const std::uint64_t v = rng.next();
                m[k] = v;
                ref[k] = v;
                break;
            }
            case 1: { // try_emplace (keeps existing)
                const auto [it, ins] = m.try_emplace(k, step);
                const auto [rit, rins] = ref.try_emplace(k, step);
                EXPECT_EQ(ins, rins);
                EXPECT_EQ(it->second, rit->second);
                break;
            }
            case 2: // erase by key
                EXPECT_EQ(m.erase(k), ref.erase(k));
                break;
            default: { // find + compare
                const auto it = m.find(k);
                const auto rit = ref.find(k);
                EXPECT_EQ(it == m.end(), rit == ref.end());
                if (it != m.end() && rit != ref.end())
                    EXPECT_EQ(it->second, rit->second);
                break;
            }
            }
            if (step % 10'000 == 9'999)
                expectSameContents(m, ref);
        }
        expectSameContents(m, ref);

        m.clear();
        ref.clear();
        expectSameContents(m, ref);
        // A cleared map must still be usable.
        m[7] = 8;
        ref[7] = 8;
        expectSameContents(m, ref);
    }
}

TEST(FlatMap, IterationOrderIsDeterministicForSameHistory)
{
    auto build = [] {
        FlatMap<std::uint64_t, std::uint64_t> m;
        for (std::uint64_t k = 0; k < 500; ++k)
            m[k * 7919] = k;
        for (std::uint64_t k = 0; k < 500; k += 3)
            m.erase(k * 7919);
        return m;
    };
    const auto a = build();
    const auto b = build();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> va, vb;
    for (const auto &kv : a)
        va.push_back(kv);
    for (const auto &kv : b)
        vb.push_back(kv);
    EXPECT_EQ(va, vb);
}

TEST(FlatMap, MoveTransfersContents)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = k + 1;
    FlatMap<std::uint64_t, std::uint64_t> n = std::move(m);
    ASSERT_EQ(n.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(n.at(k), k + 1);
}

TEST(FlatMapDeath, AtOnMissingKeyPanics)
{
    FlatMap<std::uint64_t, int> m;
    m[1] = 2;
    EXPECT_DEATH(m.at(99), "missing key");
}

} // namespace
