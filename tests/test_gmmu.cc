/**
 * @file
 * Property and fuzz tests for the demand-paging GMMU (vm/gmmu.hh),
 * driven directly — no IOMMU, no GPU — so every property is checked
 * against a hand-controlled fault/pin/evict schedule:
 *
 *  - residency never exceeds the frame cap, under randomized fault
 *    storms across eviction and service-order policies;
 *  - a page pinned by an in-flight walk is never evicted (and an
 *    all-pinned resident set stalls servicing instead of corrupting
 *    it);
 *  - fault counters conserve at teardown (raised == serviced once
 *    drained);
 *  - an evict -> re-fault round trip preserves owner-encoded page
 *    contents, across ASIDs whose virtual addresses collide;
 *  - a fully resident 2 MB range is promoted to a PS-bit mapping and
 *    demoted again before any of its pages is evicted, with the
 *    VA->PA function unchanged throughout.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/audit.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "vm/address_space.hh"
#include "vm/frame_allocator.hh"
#include "vm/gmmu.hh"

namespace {

using namespace gpuwalk;
using Ctx = vm::Gmmu::ContextId;

vm::GmmuConfig
fastCfg()
{
    // Orders of magnitude below the defaults: these tests measure
    // bookkeeping, not latency modeling.
    vm::GmmuConfig cfg;
    cfg.enabled = true;
    cfg.faultLatency = 1'000;
    cfg.migrationLatency = 100;
    cfg.batchSize = 4;
    return cfg;
}

/** Gmmu over real page tables and a shared frame pool; @p num_spaces
 *  address spaces with deliberately colliding VA layouts. */
struct GmmuHarness
{
    explicit GmmuHarness(const vm::GmmuConfig &cfg = fastCfg(),
                         unsigned num_spaces = 1)
        : frames(mem::Addr(1) << 30, false), gmmu(eq, cfg, frames, store)
    {
        for (unsigned i = 0; i < num_spaces; ++i) {
            spaces.push_back(
                std::make_unique<vm::AddressSpace>(store, frames));
            spaces.back()->setDemandPaging(true);
            gmmu.registerSpace(static_cast<Ctx>(i), *spaces.back());
            regions.push_back(
                spaces.back()->allocate("buf", 2048 * mem::pageSize));
        }
        gmmu.setServiceCallback([this](Ctx ctx, mem::Addr page) {
            serviced.emplace_back(ctx, page);
        });
    }

    mem::Addr
    pageAt(unsigned ctx, unsigned i) const
    {
        return regions[ctx].base + mem::Addr(i) * mem::pageSize;
    }

    void
    drain()
    {
        while (eq.runOne()) {
        }
    }

    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames;
    std::vector<std::unique_ptr<vm::AddressSpace>> spaces;
    std::vector<vm::VaRegion> regions;
    vm::Gmmu gmmu;
    std::vector<std::pair<Ctx, mem::Addr>> serviced;
};

TEST(GmmuTest, FaultServiceMapsThePageAndReportsIt)
{
    GmmuHarness h;
    const mem::Addr page = h.pageAt(0, 3);
    EXPECT_FALSE(h.gmmu.isResident(0, page));
    EXPECT_FALSE(h.spaces[0]->pageTable().translate(page).has_value());

    h.gmmu.raiseFault(0, page);
    EXPECT_EQ(h.gmmu.pendingFaults(), 1u);
    h.drain();

    EXPECT_TRUE(h.gmmu.isResident(0, page));
    EXPECT_TRUE(h.spaces[0]->pageTable().translate(page).has_value());
    EXPECT_EQ(h.gmmu.pendingFaults(), 0u);
    EXPECT_EQ(h.gmmu.faultsRaised(), 1u);
    EXPECT_EQ(h.gmmu.faultsServiced(), 1u);
    ASSERT_EQ(h.serviced.size(), 1u);
    EXPECT_EQ(h.serviced[0], std::make_pair(Ctx{0}, page));
    // One batch: interrupt cost + one migration.
    EXPECT_GE(h.eq.now(), sim::Tick{1'100});
}

TEST(GmmuTest, ResidencyNeverExceedsCapUnderFuzzedFaultStorms)
{
    // The cap property, across every (evict, order) policy pair, under
    // a randomized schedule of raises interleaved with partial event
    // execution (so eviction pressure hits mid-batch too).
    for (const auto evict : {vm::EvictPolicy::Lru,
                             vm::EvictPolicy::Random}) {
        for (const auto order : {vm::FaultOrder::Fcfs,
                                 vm::FaultOrder::Sjf}) {
            auto cfg = fastCfg();
            cfg.evict = evict;
            cfg.order = order;
            GmmuHarness h(cfg);
            constexpr std::uint64_t cap = 8;
            h.gmmu.setFrameCap(cap);

            sim::Auditor auditor;
            h.gmmu.registerInvariants(auditor);

            sim::Rng rng(7 + static_cast<std::uint64_t>(evict) * 2
                         + static_cast<std::uint64_t>(order));
            std::set<mem::Addr> outstanding; // raised, not yet serviced
            h.gmmu.setServiceCallback(
                [&outstanding](Ctx, mem::Addr page) {
                    outstanding.erase(page);
                });

            for (int step = 0; step < 400; ++step) {
                const mem::Addr page =
                    h.pageAt(0, static_cast<unsigned>(rng.below(64)));
                if (!h.gmmu.isResident(0, page)
                    && outstanding.insert(page).second) {
                    h.gmmu.raiseFault(0, page);
                }
                // Partial progress: a few events, then re-check.
                const auto burst = rng.below(4);
                for (std::uint64_t e = 0; e < burst; ++e)
                    h.eq.runOne();
                ASSERT_LE(h.gmmu.residentPages(), cap)
                    << "at step " << step;
                if (step % 50 == 0) {
                    auditor.check(sim::AuditPhase::Periodic,
                                  h.eq.now());
                }
            }
            h.drain();
            EXPECT_TRUE(outstanding.empty());
            EXPECT_GT(h.gmmu.pagesEvicted(), 0u);
            auditor.check(sim::AuditPhase::Final, h.eq.now());
            EXPECT_TRUE(auditor.clean())
                << vm::toString(evict) << "/" << vm::toString(order)
                << ": " << auditor.violations().front().invariant
                << ": " << auditor.violations().front().message;
        }
    }
}

TEST(GmmuTest, PinnedPageIsNeverEvicted)
{
    GmmuHarness h;
    h.gmmu.setFrameCap(2);
    const mem::Addr a = h.pageAt(0, 0);
    const mem::Addr b = h.pageAt(0, 1);
    const mem::Addr c = h.pageAt(0, 2);

    h.gmmu.raiseFault(0, a);
    h.drain();
    h.gmmu.raiseFault(0, b);
    h.drain();
    ASSERT_TRUE(h.gmmu.isResident(0, a));
    ASSERT_TRUE(h.gmmu.isResident(0, b));

    // a is the LRU victim-to-be; pinning it must divert the eviction
    // to b even under LRU order.
    h.gmmu.pin(0, a);
    h.gmmu.raiseFault(0, c);
    h.drain();

    EXPECT_TRUE(h.gmmu.isResident(0, a));
    EXPECT_FALSE(h.gmmu.isResident(0, b));
    EXPECT_TRUE(h.gmmu.isResident(0, c));
    EXPECT_EQ(h.gmmu.pagesEvicted(), 1u);
    h.gmmu.unpin(0, a);

    sim::Auditor auditor;
    h.gmmu.registerInvariants(auditor);
    auditor.check(sim::AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

TEST(GmmuTest, AllPinnedResidencyStallsServicingUntilPinsDrain)
{
    GmmuHarness h;
    h.gmmu.setFrameCap(2);
    const mem::Addr a = h.pageAt(0, 0);
    const mem::Addr b = h.pageAt(0, 1);
    const mem::Addr c = h.pageAt(0, 2);

    h.gmmu.raiseFault(0, a);
    h.drain();
    h.gmmu.raiseFault(0, b);
    h.drain();
    h.gmmu.pin(0, a);
    h.gmmu.pin(0, b);

    // Every resident page is pinned: the fault for c must retry, not
    // evict a pinned page and not deadlock.
    h.gmmu.raiseFault(0, c);
    for (int i = 0; i < 64 && h.eq.runOne(); ++i) {
    }
    EXPECT_FALSE(h.gmmu.isResident(0, c));
    EXPECT_EQ(h.gmmu.pendingFaults(), 1u);
    EXPECT_GT(h.gmmu.summarize().serviceRetries, 0u);

    h.gmmu.unpin(0, a);
    h.gmmu.unpin(0, b);
    h.drain();
    EXPECT_TRUE(h.gmmu.isResident(0, c));
    EXPECT_FALSE(h.gmmu.isResident(0, a)); // LRU victim once unpinned
    EXPECT_EQ(h.gmmu.summarize().pinnedEvictions, 0u);
}

TEST(GmmuTest, FaultCountersConserveAtTeardown)
{
    GmmuHarness h;
    h.gmmu.setFrameCap(4);
    for (unsigned i = 0; i < 16; ++i)
        h.gmmu.raiseFault(0, h.pageAt(0, i));
    // Two coalesced walks join a pending fault mid-flight.
    h.gmmu.noteWaiter(0, h.pageAt(0, 15));
    h.gmmu.noteWaiter(0, h.pageAt(0, 15));
    h.drain();

    const auto s = h.gmmu.summarize();
    EXPECT_EQ(s.faultsRaised, 16u);
    EXPECT_EQ(s.faultsServiced, 16u);
    EXPECT_EQ(s.faultsCoalesced, 2u);
    EXPECT_EQ(h.gmmu.pendingFaults(), 0u);
    EXPECT_EQ(s.pagesMigrated, 16u);
    EXPECT_EQ(s.pagesEvicted, 12u); // 16 placed into 4 frames
    EXPECT_EQ(s.latencySamples, 16u);
    EXPECT_GT(s.latencyAvg, 0.0);

    sim::Auditor auditor;
    h.gmmu.registerInvariants(auditor);
    auditor.check(sim::AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

TEST(GmmuTest, EvictionRoundTripPreservesContentAcrossAsids)
{
    // Two ASIDs with byte-identical VA layouts (genuine collision).
    // Each writes owner-encoded words into its pages; capacity churn
    // then evicts and re-faults everything repeatedly. Content must
    // follow the (ctx, va) identity, never the colliding VA alone.
    GmmuHarness h(fastCfg(), 2);
    ASSERT_EQ(h.regions[0].base, h.regions[1].base)
        << "the ASID collision premise broke";
    h.gmmu.setFrameCap(3);
    constexpr unsigned numPages = 4;

    const auto encode = [](unsigned ctx, unsigned page,
                           std::size_t word) {
        return (std::uint64_t(ctx + 1) << 48)
               | (std::uint64_t(page) << 32) | word;
    };

    // Fault in and stamp every (ctx, page); churn evicts along the way.
    for (unsigned ctx = 0; ctx < 2; ++ctx) {
        for (unsigned page = 0; page < numPages; ++page) {
            const mem::Addr va = h.pageAt(ctx, page);
            if (!h.gmmu.isResident(ctx, va)) {
                h.gmmu.raiseFault(static_cast<Ctx>(ctx), va);
                h.drain();
            }
            const auto pa = h.spaces[ctx]->pageTable().translate(va);
            ASSERT_TRUE(pa.has_value());
            for (std::size_t w = 0; w < 8; ++w)
                h.store.write64(*pa + 8 * w, encode(ctx, page, w));
        }
    }

    // Churn: re-fault everything twice over, forcing each stamped page
    // through at least one evict/save/restore cycle.
    for (int round = 0; round < 2; ++round) {
        for (unsigned ctx = 0; ctx < 2; ++ctx) {
            for (unsigned page = 0; page < numPages; ++page) {
                const mem::Addr va = h.pageAt(ctx, page);
                if (!h.gmmu.isResident(ctx, va)) {
                    h.gmmu.raiseFault(static_cast<Ctx>(ctx), va);
                    h.drain();
                }
                const auto pa =
                    h.spaces[ctx]->pageTable().translate(va);
                ASSERT_TRUE(pa.has_value());
                for (std::size_t w = 0; w < 8; ++w) {
                    EXPECT_EQ(h.store.read64(*pa + 8 * w),
                              encode(ctx, page, w))
                        << "ctx " << ctx << " page " << page
                        << " word " << w << " round " << round;
                }
            }
        }
    }
    EXPECT_GT(h.gmmu.pagesEvicted(), 0u);

    sim::Auditor auditor;
    h.gmmu.registerInvariants(auditor);
    auditor.check(sim::AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

TEST(GmmuTest, FullyResidentRangeIsPromotedAndDemotedBeforeEviction)
{
    constexpr std::uint64_t pagesPer2M =
        vm::largePageSize / mem::pageSize;
    GmmuHarness h;
    ASSERT_EQ(h.regions[0].base & vm::largePageMask, 0u)
        << "the region must start 2MB-aligned for a full range";

    // Fault in one full 2 MB range; record the VA->PA function as the
    // pages land in the contiguity block.
    std::vector<mem::Addr> pa(pagesPer2M);
    for (unsigned i = 0; i < pagesPer2M; ++i)
        h.gmmu.raiseFault(0, h.pageAt(0, i));
    h.drain();
    for (unsigned i = 0; i < pagesPer2M; ++i) {
        const auto t =
            h.spaces[0]->pageTable().translate(h.pageAt(0, i));
        ASSERT_TRUE(t.has_value()) << "page " << i;
        pa[i] = *t;
    }
    // Natural offsets inside one physically contiguous block.
    for (unsigned i = 1; i < pagesPer2M; ++i)
        EXPECT_EQ(pa[i], pa[0] + mem::Addr(i) * mem::pageSize);

    auto s = h.gmmu.summarize();
    EXPECT_EQ(s.promotions, 1u);
    EXPECT_EQ(s.demotions, 0u);

    // Promotion changed the tree shape, not the translation function.
    for (unsigned i = 0; i < pagesPer2M; i += 37) {
        const auto t =
            h.spaces[0]->pageTable().translate(h.pageAt(0, i));
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(*t, pa[i]);
    }

    // Capacity pressure on the promoted range: the range demotes back
    // to 4 KB leaves before its LRU page goes non-present.
    h.gmmu.setFrameCap(pagesPer2M);
    h.gmmu.raiseFault(0, h.pageAt(0, pagesPer2M)); // next range
    h.drain();

    s = h.gmmu.summarize();
    EXPECT_EQ(s.demotions, 1u);
    EXPECT_EQ(s.pagesEvicted, 1u);
    EXPECT_FALSE(h.spaces[0]->pageTable()
                     .translate(h.pageAt(0, 0))
                     .has_value());
    // Survivors keep their block placement.
    const auto t1 = h.spaces[0]->pageTable().translate(h.pageAt(0, 1));
    ASSERT_TRUE(t1.has_value());
    EXPECT_EQ(*t1, pa[1]);

    sim::Auditor auditor;
    h.gmmu.registerInvariants(auditor);
    auditor.check(sim::AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

TEST(GmmuTest, ContiguityOffFallsBackToScatteredFrames)
{
    auto cfg = fastCfg();
    cfg.contiguity = false;
    GmmuHarness h(cfg);
    for (unsigned i = 0; i < 8; ++i)
        h.gmmu.raiseFault(0, h.pageAt(0, i));
    h.drain();
    EXPECT_EQ(h.gmmu.summarize().promotions, 0u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(h.gmmu.isResident(0, h.pageAt(0, i)));

    sim::Auditor auditor;
    h.gmmu.registerInvariants(auditor);
    auditor.check(sim::AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

TEST(GmmuTest, SjfServicesTheMostWaitedOnFaultFirst)
{
    auto cfg = fastCfg();
    cfg.order = vm::FaultOrder::Sjf;
    cfg.batchSize = 1; // one service per batch: order fully visible
    GmmuHarness h(cfg);

    const mem::Addr first = h.pageAt(0, 0);
    const mem::Addr popular = h.pageAt(0, 1);
    h.gmmu.raiseFault(0, first);
    h.gmmu.raiseFault(0, popular);
    h.gmmu.noteWaiter(0, popular);
    h.gmmu.noteWaiter(0, popular);
    h.drain();

    ASSERT_EQ(h.serviced.size(), 2u);
    EXPECT_EQ(h.serviced[0].second, popular)
        << "3 parked walks must beat 1 despite the later raise";
    EXPECT_EQ(h.serviced[1].second, first);
}

TEST(GmmuTest, FcfsServicesInRaiseOrder)
{
    auto cfg = fastCfg();
    cfg.batchSize = 1;
    GmmuHarness h(cfg);

    const mem::Addr first = h.pageAt(0, 0);
    const mem::Addr popular = h.pageAt(0, 1);
    h.gmmu.raiseFault(0, first);
    h.gmmu.raiseFault(0, popular);
    h.gmmu.noteWaiter(0, popular);
    h.gmmu.noteWaiter(0, popular);
    h.drain();

    ASSERT_EQ(h.serviced.size(), 2u);
    EXPECT_EQ(h.serviced[0].second, first);
    EXPECT_EQ(h.serviced[1].second, popular);
}

} // namespace
