/**
 * @file
 * Unit tests for the IOMMU walk-request buffer.
 */

#include <gtest/gtest.h>

#include "core/pending_walk.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

PendingWalk
walk(std::uint64_t seq, tlb::InstructionId instr,
     mem::Addr va = 0x1000)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.request.vaPage = va;
    return w;
}

TEST(WalkBuffer, StartsEmpty)
{
    WalkBuffer buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.capacity(), 4u);
}

TEST(WalkBuffer, InsertUntilFull)
{
    WalkBuffer buf(2);
    buf.insert(walk(0, 1));
    EXPECT_FALSE(buf.full());
    buf.insert(walk(1, 2));
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 2u);
}

TEST(WalkBuffer, ExtractReturnsRequestedEntry)
{
    WalkBuffer buf(4);
    buf.insert(walk(10, 1));
    buf.insert(walk(11, 2));
    buf.insert(walk(12, 3));
    const auto w = buf.extract(1);
    EXPECT_EQ(w.seq, 11u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(WalkBuffer, OldestIndexFindsLowestSeq)
{
    WalkBuffer buf(4);
    buf.insert(walk(30, 1));
    buf.insert(walk(10, 2));
    buf.insert(walk(20, 3));
    EXPECT_EQ(buf.at(buf.oldestIndex()).seq, 10u);
    // Extraction reshuffles (swap-erase); oldest remains correct.
    buf.extract(buf.oldestIndex());
    EXPECT_EQ(buf.at(buf.oldestIndex()).seq, 20u);
}

TEST(WalkBuffer, ForEachOfInstructionTouchesOnlySiblings)
{
    WalkBuffer buf(8);
    buf.insert(walk(0, 7));
    buf.insert(walk(1, 8));
    buf.insert(walk(2, 7));
    unsigned touched = 0;
    buf.forEachOfInstruction(7, [&](PendingWalk &w) {
        w.score = 42;
        ++touched;
    });
    EXPECT_EQ(touched, 2u);
    EXPECT_EQ(buf.at(0).score, 42u);
    EXPECT_EQ(buf.at(1).score, 0u);
    EXPECT_EQ(buf.at(2).score, 42u);
}

TEST(WalkBufferDeathTest, OverflowPanics)
{
    WalkBuffer buf(1);
    buf.insert(walk(0, 1));
    EXPECT_DEATH(buf.insert(walk(1, 2)), "overflow");
}

TEST(WalkBufferDeathTest, BadIndexPanics)
{
    WalkBuffer buf(2);
    buf.insert(walk(0, 1));
    EXPECT_DEATH(buf.extract(5), "bad buffer index");
}

TEST(WalkBufferDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(WalkBuffer(0), "capacity");
}

} // namespace
