/**
 * @file
 * Unit tests for the IOMMU walk-request buffer.
 */

#include <gtest/gtest.h>

#include "core/pending_walk.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

PendingWalk
walk(std::uint64_t seq, tlb::InstructionId instr,
     mem::Addr va = 0x1000)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.request.vaPage = va;
    return w;
}

TEST(WalkBuffer, StartsEmpty)
{
    WalkBuffer buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.capacity(), 4u);
}

TEST(WalkBuffer, InsertUntilFull)
{
    WalkBuffer buf(2);
    buf.insert(walk(0, 1));
    EXPECT_FALSE(buf.full());
    buf.insert(walk(1, 2));
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 2u);
}

TEST(WalkBuffer, ExtractReturnsRequestedEntry)
{
    WalkBuffer buf(4);
    buf.insert(walk(10, 1));
    buf.insert(walk(11, 2));
    buf.insert(walk(12, 3));
    const auto w = buf.extract(1);
    EXPECT_EQ(w.seq, 11u);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(WalkBuffer, OldestIndexFindsLowestSeq)
{
    WalkBuffer buf(4);
    buf.insert(walk(30, 1));
    buf.insert(walk(10, 2));
    buf.insert(walk(20, 3));
    EXPECT_EQ(buf.at(buf.oldestIndex()).seq, 10u);
    // Extraction reshuffles (swap-erase); oldest remains correct.
    buf.extract(buf.oldestIndex());
    EXPECT_EQ(buf.at(buf.oldestIndex()).seq, 20u);
}

TEST(WalkBuffer, ForEachOfInstructionTouchesOnlySiblings)
{
    WalkBuffer buf(8);
    buf.insert(walk(0, 7));
    buf.insert(walk(1, 8));
    buf.insert(walk(2, 7));
    unsigned touched = 0;
    buf.forEachOfInstruction(7, [&](PendingWalk &w) {
        w.score = 42;
        ++touched;
    });
    EXPECT_EQ(touched, 2u);
    EXPECT_EQ(buf.at(0).score, 42u);
    EXPECT_EQ(buf.at(1).score, 0u);
    EXPECT_EQ(buf.at(2).score, 42u);
}

// --- Pick-index consistency ----------------------------------------
//
// The buffer maintains arrival, per-instruction, and score indexes
// incrementally; these tests pin their answers against brute-force
// scans through churn, swap-erase reshuffles, and rescoring.

/** Brute-force (score, seq) minimum over the dense entries. */
std::size_t
scanSjfBest(const WalkBuffer &buf)
{
    const auto &entries = buf.entries();
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].score < entries[best].score
            || (entries[i].score == entries[best].score
                && entries[i].seq < entries[best].seq)) {
            best = i;
        }
    }
    return best;
}

TEST(WalkBufferIndex, InstructionHeadIsOldestSibling)
{
    WalkBuffer buf(8);
    EXPECT_EQ(buf.instructionHead(7), WalkBuffer::npos);
    buf.insert(walk(5, 7));
    buf.insert(walk(1, 8));
    buf.insert(walk(3, 7));
    buf.insert(walk(2, 7));
    EXPECT_EQ(buf.at(buf.instructionHead(7)).seq, 2u);
    EXPECT_EQ(buf.at(buf.instructionHead(8)).seq, 1u);
    EXPECT_EQ(buf.instructionHead(9), WalkBuffer::npos);

    buf.extract(buf.instructionHead(7));
    EXPECT_EQ(buf.at(buf.instructionHead(7)).seq, 3u);
    buf.extract(buf.instructionHead(7));
    buf.extract(buf.instructionHead(7));
    // All walks of instruction 7 drained; its bucket must be gone.
    EXPECT_EQ(buf.instructionHead(7), WalkBuffer::npos);
    EXPECT_EQ(buf.at(buf.instructionHead(8)).seq, 1u);
}

TEST(WalkBufferIndex, SjfBestTracksScoreAndSeqTieBreak)
{
    WalkBuffer buf(8);
    auto w0 = walk(10, 1);
    w0.score = 5;
    auto w1 = walk(11, 2);
    w1.score = 3;
    auto w2 = walk(12, 3);
    w2.score = 3;
    buf.insert(std::move(w0));
    buf.insert(std::move(w1));
    buf.insert(std::move(w2));
    // Min score 3; tie broken by lower seq.
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 11u);
    buf.extract(buf.sjfBestIndex());
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 12u);
    buf.extract(buf.sjfBestIndex());
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 10u);
}

TEST(WalkBufferIndex, RescoreInstructionMovesSiblingsInSjfOrder)
{
    WalkBuffer buf(8);
    auto a = walk(0, 1);
    a.score = 10;
    auto b = walk(1, 2);
    b.score = 20;
    buf.insert(std::move(a));
    buf.insert(std::move(b));
    EXPECT_EQ(buf.instructionScore(1), 10u);
    EXPECT_EQ(buf.instructionScore(2), 20u);
    EXPECT_EQ(buf.instructionScore(3), 0u);
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 0u);

    buf.rescoreInstruction(1, 30);
    EXPECT_EQ(buf.instructionScore(1), 30u);
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 1u);
    buf.rescoreInstruction(3, 99); // absent: no-op
    EXPECT_EQ(buf.instructionScore(3), 0u);
}

TEST(WalkBufferIndex, HugeScoresFallBackToOverflowExactly)
{
    WalkBuffer buf(8);
    auto a = walk(0, 1);
    a.score = ~std::uint64_t{0}; // far past the direct-bucket cap
    auto b = walk(1, 2);
    b.score = (std::uint64_t{1} << 60) + 1;
    buf.insert(std::move(a));
    buf.insert(std::move(b));
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 1u);
    auto c = walk(2, 3);
    c.score = 7; // any in-range score beats every overflow score
    buf.insert(std::move(c));
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 2u);
}

TEST(WalkBufferIndex, AgingCandidateIsOldestQualifier)
{
    WalkBuffer buf(8);
    EXPECT_EQ(buf.agingCandidate(4), WalkBuffer::npos);
    auto a = walk(10, 1);
    a.bypassed = 3;
    auto b = walk(5, 2);
    b.bypassed = 9;
    auto c = walk(7, 3);
    c.bypassed = 100;
    buf.insert(std::move(a));
    buf.insert(std::move(b));
    buf.insert(std::move(c));
    // Oldest entry meeting the threshold, not the most-bypassed one.
    EXPECT_EQ(buf.at(buf.agingCandidate(4)).seq, 5u);
    EXPECT_EQ(buf.at(buf.agingCandidate(50)).seq, 7u);
    EXPECT_EQ(buf.agingCandidate(1000), WalkBuffer::npos);

    // After extracting the qualifiers the (stale-high) watermark must
    // tighten rather than keep reporting candidates.
    buf.extract(buf.agingCandidate(4));
    buf.extract(buf.agingCandidate(4));
    EXPECT_EQ(buf.agingCandidate(4), WalkBuffer::npos);
    EXPECT_EQ(buf.at(buf.agingCandidate(3)).seq, 10u);
}

TEST(WalkBufferIndex, RecordBypassIncrementsOnlyOlderEntries)
{
    WalkBuffer buf(8);
    buf.insert(walk(10, 1));
    buf.insert(walk(20, 2));
    buf.insert(walk(30, 3));
    buf.recordBypass(25);
    EXPECT_EQ(buf.at(0).bypassed, 1u);
    EXPECT_EQ(buf.at(1).bypassed, 1u);
    EXPECT_EQ(buf.at(2).bypassed, 0u);
    buf.recordBypass(15);
    EXPECT_EQ(buf.at(0).bypassed, 2u);
    EXPECT_EQ(buf.at(1).bypassed, 1u);

    // Saturated counters stay saturated.
    auto s = walk(1, 4);
    s.bypassed = ~std::uint64_t{0};
    buf.insert(std::move(s));
    buf.recordBypass(40);
    EXPECT_EQ(buf.at(buf.oldestIndex()).bypassed, ~std::uint64_t{0});
}

TEST(WalkBufferIndex, DeferredBypassSettlesExactlyAtEveryObserver)
{
    // recordBypass() batches its increments; counters must still read
    // exactly as if each dispatch had swept immediately — across the
    // internal batch-full flush, an extract mid-batch, and an
    // out-of-order insert below a pending dispatch seq.
    WalkBuffer buf(64);
    for (std::uint64_t s = 0; s < 10; ++s)
        buf.insert(walk(s, s % 4));

    // Well past any internal batch size, with no reads in between.
    for (int i = 0; i < 40; ++i)
        buf.recordBypass(10);

    // Extract without touching at()/entries() first: the oldest entry
    // must carry all 40 increments out with it.
    const PendingWalk oldest = buf.extract(buf.oldestIndex());
    EXPECT_EQ(oldest.seq, 0u);
    EXPECT_EQ(oldest.bypassed, 40u);

    // Three more dispatches bypassing only seqs 1-4, then an insert
    // that reuses the freed seq 0 — below the pending dispatch seqs,
    // so it must not inherit their increments.
    for (int i = 0; i < 3; ++i)
        buf.recordBypass(5);
    buf.insert(walk(0, 7));

    auto bypassedOfSeq = [&](std::uint64_t seq) -> std::uint64_t {
        for (std::size_t i = 0; i < buf.size(); ++i)
            if (buf.at(i).seq == seq)
                return buf.at(i).bypassed;
        ADD_FAILURE() << "seq " << seq << " not found";
        return 0;
    };
    EXPECT_EQ(bypassedOfSeq(0), 0u);
    EXPECT_EQ(bypassedOfSeq(1), 43u);
    EXPECT_EQ(bypassedOfSeq(4), 43u);
    EXPECT_EQ(bypassedOfSeq(5), 40u);
    EXPECT_EQ(bypassedOfSeq(9), 40u);

    // A batched settle saturates exactly where stepwise increments
    // would have.
    WalkBuffer sat(8);
    auto nearSat = walk(0, 1);
    nearSat.bypassed = ~std::uint64_t{0} - 2;
    sat.insert(std::move(nearSat));
    sat.insert(walk(1, 2));
    for (int i = 0; i < 5; ++i)
        sat.recordBypass(3);
    EXPECT_EQ(sat.at(sat.oldestIndex()).bypassed, ~std::uint64_t{0});
    EXPECT_EQ(sat.agingCandidate(5), sat.oldestIndex());
}

TEST(WalkBufferIndex, IndexesSurviveRandomChurn)
{
    // Deterministic pseudo-random churn; every query cross-checked
    // against a dense scan after each operation.
    WalkBuffer buf(32);
    std::uint64_t state = 0x12345678, next_seq = 0;
    auto rnd = [&state](std::uint64_t n) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return (state * 0x2545f4914f6cdd1dull) % n;
    };
    for (int step = 0; step < 5000; ++step) {
        if (!buf.full() && (buf.empty() || rnd(100) < 55)) {
            auto w = walk(next_seq++, rnd(8), rnd(64) << 12);
            w.score = rnd(40);
            w.bypassed = rnd(6);
            buf.insert(std::move(w));
        } else {
            buf.extract(rnd(buf.size()));
        }
        if (buf.empty())
            continue;
        // Oldest == min seq by scan.
        std::size_t oldest = 0;
        for (std::size_t i = 1; i < buf.size(); ++i) {
            if (buf.at(i).seq < buf.at(oldest).seq)
                oldest = i;
        }
        ASSERT_EQ(buf.oldestIndex(), oldest);
        ASSERT_EQ(buf.sjfBestIndex(), scanSjfBest(buf));
        // Instruction heads == oldest sibling by scan.
        for (tlb::InstructionId instr = 0; instr < 8; ++instr) {
            std::size_t want = WalkBuffer::npos;
            for (std::size_t i = 0; i < buf.size(); ++i) {
                if (buf.at(i).request.instruction != instr)
                    continue;
                if (want == WalkBuffer::npos
                    || buf.at(i).seq < buf.at(want).seq) {
                    want = i;
                }
            }
            ASSERT_EQ(buf.instructionHead(instr), want);
        }
        // Aging candidate == oldest qualifier by scan.
        const std::uint64_t threshold = 3;
        std::size_t aged = WalkBuffer::npos;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (buf.at(i).bypassed < threshold)
                continue;
            if (aged == WalkBuffer::npos
                || buf.at(i).seq < buf.at(aged).seq) {
                aged = i;
            }
        }
        ASSERT_EQ(buf.agingCandidate(threshold), aged);
    }
}

TEST(WalkBufferIndex, ForEachScoreMutationResyncsSjfIndex)
{
    WalkBuffer buf(8);
    auto a = walk(0, 1);
    a.score = 50;
    auto b = walk(1, 2);
    b.score = 10;
    buf.insert(std::move(a));
    buf.insert(std::move(b));
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 1u);
    buf.forEachOfInstruction(1, [](PendingWalk &w) { w.score = 5; });
    EXPECT_EQ(buf.at(buf.sjfBestIndex()).seq, 0u);
    EXPECT_EQ(buf.instructionScore(1), 5u);
}

TEST(WalkBufferDeathTest, OverflowPanics)
{
    WalkBuffer buf(1);
    buf.insert(walk(0, 1));
    EXPECT_DEATH(buf.insert(walk(1, 2)), "overflow");
}

TEST(WalkBufferDeathTest, BadIndexPanics)
{
    WalkBuffer buf(2);
    buf.insert(walk(0, 1));
    EXPECT_DEATH(buf.extract(5), "bad buffer index");
}

TEST(WalkBufferDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(WalkBuffer(0), "capacity");
}

} // namespace
