/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace {

using namespace gpuwalk::mem;

TEST(BackingStore, UnwrittenMemoryReadsZero)
{
    BackingStore store;
    EXPECT_EQ(store.read64(0x1000), 0u);
    EXPECT_EQ(store.read(0xdeadb000, 4), 0u);
    // Reads do not materialize frames.
    EXPECT_EQ(store.framesAllocated(), 0u);
}

TEST(BackingStore, Read64RoundTrips)
{
    BackingStore store;
    store.write64(0x2000, 0x0123456789abcdefull);
    EXPECT_EQ(store.read64(0x2000), 0x0123456789abcdefull);
    EXPECT_EQ(store.framesAllocated(), 1u);
}

TEST(BackingStore, SubWordAccesses)
{
    BackingStore store;
    store.write(0x3000, 0xaabbccdd, 4);
    EXPECT_EQ(store.read(0x3000, 4), 0xaabbccddu);
    EXPECT_EQ(store.read(0x3000, 2), 0xccddu);   // little endian
    EXPECT_EQ(store.read(0x3002, 2), 0xaabbu);
    EXPECT_EQ(store.read(0x3003, 1), 0xaau);
}

TEST(BackingStore, FramesAreIndependent)
{
    BackingStore store;
    store.write64(0x0000, 1);
    store.write64(0x1000, 2);
    store.write64(0x2000, 3);
    EXPECT_EQ(store.read64(0x0000), 1u);
    EXPECT_EQ(store.read64(0x1000), 2u);
    EXPECT_EQ(store.read64(0x2000), 3u);
    EXPECT_EQ(store.framesAllocated(), 3u);
}

TEST(BackingStore, OverwriteWithinFrame)
{
    BackingStore store;
    store.write64(0x5000, ~0ull);
    store.write(0x5004, 0, 4);
    EXPECT_EQ(store.read64(0x5000), 0x00000000ffffffffull);
}

TEST(BackingStore, HighAddressesWork)
{
    BackingStore store;
    const Addr high = Addr(1) << 45;
    store.write64(high + 8, 77);
    EXPECT_EQ(store.read64(high + 8), 77u);
}

TEST(BackingStoreDeathTest, CrossFrameAccessPanics)
{
    BackingStore store;
    EXPECT_DEATH(store.read(0x1ffc, 8), "crosses frame");
    EXPECT_DEATH(store.write(0x1fff, 1, 2), "crosses frame");
}

TEST(BackingStoreDeathTest, BadSizePanics)
{
    BackingStore store;
    EXPECT_DEATH(store.read(0x1000, 16), "bad read size");
    EXPECT_DEATH(store.write(0x1000, 0, 0), "bad write size");
}

} // namespace
