/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace {

using namespace gpuwalk::sim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c("events", "test counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, AssignsAndResets)
{
    Scalar s("ipc", "test scalar");
    s = 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 1.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    Average a("lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(30.0);
    a.sample(20.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 10.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 30.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsMatchPaperFig3Layout)
{
    // The Fig. 3 buckets: 1-16, 17-32, 33-48, 49-64, 65-80, 81-256, +.
    Histogram h("work", "walk work", {16, 32, 48, 64, 80, 256});
    EXPECT_EQ(h.buckets(), 7u);
    h.sample(1);
    h.sample(16);
    h.sample(17);
    h.sample(64);
    h.sample(65);
    h.sample(256);
    h.sample(257);
    EXPECT_EQ(h.bucketCount(0), 2u); // 1, 16
    EXPECT_EQ(h.bucketCount(1), 1u); // 17
    EXPECT_EQ(h.bucketCount(3), 1u); // 64
    EXPECT_EQ(h.bucketCount(4), 1u); // 65
    EXPECT_EQ(h.bucketCount(5), 1u); // 256
    EXPECT_EQ(h.bucketCount(6), 1u); // 257 overflow
    EXPECT_EQ(h.total(), 7u);
    EXPECT_NEAR(h.fraction(0), 2.0 / 7.0, 1e-12);
}

TEST(Histogram, LabelsDescribeRanges)
{
    Histogram h("h", "d", {16, 32});
    EXPECT_EQ(h.bucketLabel(0), "0-16");
    EXPECT_EQ(h.bucketLabel(1), "17-32");
    EXPECT_EQ(h.bucketLabel(2), "33+");
}

TEST(Histogram, LinearFactoryCoversRange)
{
    auto h = Histogram::linear("h", "d", 100, 4);
    EXPECT_EQ(h.buckets(), 5u);
    h.sample(25);
    h.sample(26);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h("h", "d", {10});
    h.sample(5, 7);
    EXPECT_EQ(h.bucketCount(0), 7u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(StatGroup, DumpsHierarchicalNames)
{
    StatGroup root("sys");
    StatGroup child("dram");
    Counter c("reads", "read count");
    c += 3;
    child.add(c);
    root.addChild(child);

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sys.dram.reads 3"), std::string::npos);
}

TEST(StatGroup, ResetPropagatesToChildren)
{
    StatGroup root("sys");
    StatGroup child("c");
    Counter c("n", "d");
    c += 9;
    child.add(c);
    root.addChild(child);
    root.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
