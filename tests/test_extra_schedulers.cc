/**
 * @file
 * Unit tests for the extension schedulers: oldest-job-first and the
 * SRPT selection-time re-scoring "oracle".
 */

#include <gtest/gtest.h>

#include "core/oldest_job_scheduler.hh"
#include "core/srpt_scheduler.hh"
#include "core/walk_scheduler.hh"
#include "system/system.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

PendingWalk
walk(std::uint64_t seq, tlb::InstructionId instr, mem::Addr va = 0)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.request.vaPage = va;
    return w;
}

TEST(OldestJob, ServicesOldestInstructionToCompletion)
{
    OldestJobScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1));
    buf.insert(walk(1, 2));
    buf.insert(walk(2, 1));
    buf.insert(walk(3, 2));

    // Instruction 1 owns the oldest request: its walks go first.
    auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).seq, 0u);
    buf.extract(idx);
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 1u);
    EXPECT_EQ(buf.at(idx).seq, 2u);
    buf.extract(idx);
    // Then instruction 2, oldest first.
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).seq, 1u);
}

TEST(OldestJob, NoScoringRequired)
{
    OldestJobScheduler sched;
    EXPECT_FALSE(sched.needsScores());
    EXPECT_EQ(sched.name(), "oldest-job");
}

TEST(Srpt, RanksByFreshEstimates)
{
    SrptScheduler sched(/*enable_batching=*/false);
    // Pages below 0x10000 cost 1 access; others cost 4.
    sched.setEstimator([](mem::Addr va, tlb::ContextId) -> unsigned {
        return va < 0x10000 ? 1u : 4u;
    });

    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 0x100000)); // instr 1: 4+4 = 8
    buf.insert(walk(1, 1, 0x200000));
    buf.insert(walk(2, 2, 0x1000));  // instr 2: 1+1 = 2
    buf.insert(walk(3, 2, 0x2000));

    const auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 2u);
    EXPECT_EQ(buf.at(idx).seq, 2u); // oldest within the winner
}

TEST(Srpt, EstimateChangesFlipTheChoice)
{
    // The same buffer under a changed estimator picks differently —
    // the freshness the paper's arrival-time scores lack.
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 0xA000));
    buf.insert(walk(1, 2, 0xB000));

    SrptScheduler cheap_a(false);
    cheap_a.setEstimator([](mem::Addr va, tlb::ContextId) -> unsigned {
        return va == 0xA000 ? 1u : 4u;
    });
    EXPECT_EQ(buf.at(cheap_a.selectNext(buf)).request.instruction, 1u);

    SrptScheduler cheap_b(false);
    cheap_b.setEstimator([](mem::Addr va, tlb::ContextId) -> unsigned {
        return va == 0xB000 ? 1u : 4u;
    });
    EXPECT_EQ(buf.at(cheap_b.selectNext(buf)).request.instruction, 2u);
}

TEST(Srpt, BatchesWithLastDispatched)
{
    SrptScheduler sched(/*enable_batching=*/true);
    sched.setEstimator([](mem::Addr, tlb::ContextId) -> unsigned { return 1u; });
    WalkBuffer buf(8);
    buf.insert(walk(0, 1));
    buf.insert(walk(1, 2));
    buf.insert(walk(2, 1));

    auto idx = sched.selectNext(buf); // ties -> oldest: instr 1
    auto w = buf.extract(idx);
    sched.onDispatch(buf, w);
    // Batching keeps picking instruction 1 despite equal estimates.
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 1u);
}

TEST(SrptDeathTest, MissingEstimatorPanics)
{
    SrptScheduler sched(false);
    WalkBuffer buf(2);
    buf.insert(walk(0, 1));
    EXPECT_DEATH(sched.selectNext(buf), "estimator");
}

TEST(ExtraSchedulerFactory, CreatesAndNamesNewKinds)
{
    EXPECT_EQ(toString(SchedulerKind::OldestJob), "oldest-job");
    EXPECT_EQ(toString(SchedulerKind::Srpt), "srpt");
    EXPECT_EQ(schedulerKindFromString("ojf"), SchedulerKind::OldestJob);
    EXPECT_EQ(schedulerKindFromString("srpt"), SchedulerKind::Srpt);
    EXPECT_NE(makeScheduler(SchedulerKind::OldestJob), nullptr);
    EXPECT_NE(makeScheduler(SchedulerKind::Srpt), nullptr);
}

TEST(ExtraSchedulerSystem, BothCompleteEndToEnd)
{
    for (auto kind : {SchedulerKind::OldestJob, SchedulerKind::Srpt}) {
        auto cfg = system::SystemConfig::baseline();
        cfg.scheduler = kind;
        system::System sys(cfg);
        workload::WorkloadParams params;
        params.wavefronts = 16;
        params.instructionsPerWavefront = 8;
        params.footprintScale = 0.03;
        sys.loadBenchmark("MVT", params);
        const auto stats = sys.run();
        EXPECT_EQ(stats.instructions, 16u * 8u)
            << core::toString(kind);
        EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
    }
}

} // namespace
