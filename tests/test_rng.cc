/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "sim/rng.hh"

namespace {

using gpuwalk::sim::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values appear
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(19);
    std::array<int, 8> counts{};
    for (int i = 0; i < 80000; ++i)
        ++counts[rng.below(8)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BurstBoundedByCap)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        const auto b = rng.burst(0.9, 5);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 5u);
    }
}

TEST(RngDeathTest, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "Rng::below");
}

} // namespace
