/**
 * @file
 * Differential fuzz: indexed schedulers vs. the reference scans.
 *
 * The production schedulers now answer their pick rules from
 * WalkBuffer's incremental indexes; core/reference_scan.hh retains the
 * original scan-at-dispatch loops as executable specifications. This
 * suite drives both over identical randomized request streams — one
 * shared buffer, both implementations consulted before each extract —
 * and asserts the *same index* and the *same PickReason* at every
 * decision, for all five golden-traced policies (fcfs, sjf-only,
 * batch-only, simt-aware, fair-share). Streams include out-of-order
 * sequence numbers, pre-aged and saturated bypass counters, and
 * low-threshold configs that make the aging override fire, so the
 * index fast paths and their fallback walks are all exercised.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/fair_share_scheduler.hh"
#include "core/fcfs_scheduler.hh"
#include "core/reference_scan.hh"
#include "core/simt_aware_scheduler.hh"
#include "sim/rng.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

/** Draws unique seqs, mildly shuffled within blocks of four. */
class SeqSource
{
  public:
    explicit SeqSource(sim::Rng &rng) : rng_(rng) {}

    std::uint64_t
    next()
    {
        if (window_.empty()) {
            for (int i = 0; i < 4; ++i)
                window_.push_back(nextSeq_++);
            for (std::size_t i = window_.size(); i > 1; --i)
                std::swap(window_[i - 1], window_[rng_.below(i)]);
        }
        const std::uint64_t s = window_.back();
        window_.pop_back();
        return s;
    }

  private:
    sim::Rng &rng_;
    std::uint64_t nextSeq_ = 0;
    std::vector<std::uint64_t> window_;
};

/** Options shaping one differential stream. */
struct StreamOptions
{
    std::uint64_t seed = 1;
    int iterations = 20000;
    bool withScores = false;
    /** Probability (percent) an insert carries a pre-aged bypass
     *  counter, including the saturated sentinel. */
    unsigned preAgedPercent = 0;
    std::uint64_t agingThreshold = 2'000'000;
};

PendingWalk
randomWalk(sim::Rng &rng, SeqSource &seqs, const StreamOptions &opt)
{
    PendingWalk w;
    w.seq = seqs.next();
    w.request.instruction = rng.below(16);
    w.request.app = static_cast<std::uint32_t>(rng.below(3));
    w.request.vaPage = rng.below(1024) << 12;
    if (opt.preAgedPercent && rng.below(100) < opt.preAgedPercent) {
        w.bypassed = rng.below(2) == 0
                         ? ~std::uint64_t{0}
                         : opt.agingThreshold + rng.below(4);
    }
    return w;
}

/** Mirrors Iommu::admitToBuffer's arrival-time scoring. */
void
applyScoring(WalkBuffer &buf, PendingWalk &w, sim::Rng &rng)
{
    const unsigned estimate = 1 + static_cast<unsigned>(rng.below(4));
    w.estimatedAccesses = estimate;
    const std::uint64_t new_score =
        buf.instructionScore(w.request.instruction) + estimate;
    buf.rescoreInstruction(w.request.instruction, new_score);
    w.score = new_score;
}

/**
 * Runs one stream through a shared buffer, consulting @p indexed and
 * @p ref before every extract. The callables see the same buffer and
 * must agree on the pick; @p onDispatch relays the extracted walk to
 * both sides' state.
 */
template <typename IndexedPick, typename RefPick, typename OnDispatch>
void
runStream(const StreamOptions &opt, IndexedPick &&indexedPick,
          RefPick &&refPick, OnDispatch &&onDispatch)
{
    sim::Rng rng(opt.seed);
    SeqSource seqs(rng);
    WalkBuffer buf(64);
    std::uint64_t decisions = 0;

    for (int i = 0; i < opt.iterations; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            PendingWalk w = randomWalk(rng, seqs, opt);
            if (opt.withScores)
                applyScoring(buf, w, rng);
            buf.insert(std::move(w));
        } else {
            const std::size_t got = indexedPick(buf);
            const std::size_t want = refPick(buf);
            ASSERT_EQ(got, want)
                << "divergence at decision " << decisions << ": indexed"
                << " picked seq " << buf.at(got).seq << ", reference"
                << " picked seq " << buf.at(want).seq;
            PendingWalk w = buf.extract(got);
            onDispatch(buf, w);
            ++decisions;
        }
    }
    EXPECT_GT(decisions, 1000u);
}

TEST(SchedulerDiff, FcfsMatchesReferenceScan)
{
    FcfsScheduler sched;
    runStream(
        StreamOptions{.seed = 101},
        [&](const WalkBuffer &buf) { return sched.selectNext(buf); },
        [](const WalkBuffer &buf) { return reference::fcfsSelect(buf); },
        [&](WalkBuffer &buf, const PendingWalk &w) {
            sched.onDispatch(buf, w);
        });
}

/** Simt family: production scheduler vs. SimtScan under one config. */
void
runSimtDiff(const SimtSchedulerConfig &cfg, const StreamOptions &opt)
{
    SimtAwareScheduler sched(cfg);
    reference::SimtScan ref(cfg);
    runStream(
        opt,
        [&](const WalkBuffer &buf) { return sched.selectNext(buf); },
        [&](const WalkBuffer &buf) {
            const std::size_t want = ref.selectNext(buf);
            // Decisions must agree on the *rule* too, not just the
            // index — a batch pick mislabelled SJF would corrupt the
            // traced PickReason stream.
            EXPECT_EQ(static_cast<int>(sched.lastPickReason()),
                      static_cast<int>(ref.lastPickReason()));
            return want;
        },
        [&](WalkBuffer &buf, const PendingWalk &w) {
            sched.onDispatch(buf, w);
            ref.onDispatch(w);
        });
}

TEST(SchedulerDiff, SjfOnlyMatchesReferenceScan)
{
    SimtSchedulerConfig cfg;
    cfg.enableBatching = false;
    runSimtDiff(cfg, {.seed = 103, .withScores = true});
}

TEST(SchedulerDiff, BatchOnlyMatchesReferenceScan)
{
    SimtSchedulerConfig cfg;
    cfg.enableSjf = false;
    runSimtDiff(cfg, {.seed = 105});
}

TEST(SchedulerDiff, SimtAwareMatchesReferenceScan)
{
    runSimtDiff({}, {.seed = 107, .withScores = true});
}

TEST(SchedulerDiff, SimtAwareWithAgingPressureMatchesReferenceScan)
{
    // Tiny threshold: the aging override fires constantly, exercising
    // the watermark fast path, the confirming arrival walk, and its
    // tightening miss path.
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 4;
    runSimtDiff(cfg, {.seed = 109,
                      .withScores = true,
                      .preAgedPercent = 10,
                      .agingThreshold = cfg.agingThreshold});
}

TEST(SchedulerDiff, SimtAwareWithSaturatedCountersMatchesReferenceScan)
{
    // Saturated (all-ones) bypass counters must neither wrap nor stop
    // qualifying for the aging override.
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 64;
    runSimtDiff(cfg, {.seed = 111,
                      .withScores = true,
                      .preAgedPercent = 25,
                      .agingThreshold = cfg.agingThreshold});
}

TEST(SchedulerDiff, FairShareMatchesReferenceScan)
{
    FairShareScheduler sched;
    reference::FairShareScan ref;
    runStream(
        StreamOptions{.seed = 113, .withScores = true},
        [&](const WalkBuffer &buf) { return sched.selectNext(buf); },
        [&](const WalkBuffer &buf) { return ref.selectNext(buf); },
        [&](WalkBuffer &buf, const PendingWalk &w) {
            sched.onDispatch(buf, w);
            ref.onDispatch(w);
        });
}

} // namespace
