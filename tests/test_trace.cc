/**
 * @file
 * Unit tests for the walk-lifecycle tracing subsystem (src/trace/):
 * the bounded ring buffer, the FNV-1a golden digest, the Chrome
 * trace_event exporter, and the sweep runner's per-run file naming.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/run.hh"
#include "trace/chrome_export.hh"
#include "trace/digest.hh"
#include "trace/trace.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::trace;

Event
makeEvent(sim::Tick tick, EventKind kind, std::uint64_t instruction,
          mem::Addr va_page)
{
    Event ev;
    ev.tick = tick;
    ev.kind = kind;
    ev.instruction = instruction;
    ev.vaPage = va_page;
    return ev;
}

// --- Ring buffer ---------------------------------------------------

TEST(TracerRing, RetainsEverythingBelowCapacity)
{
    TraceConfig cfg;
    cfg.ringCapacity = 8;
    Tracer t(cfg);
    for (sim::Tick i = 0; i < 5; ++i)
        t.record(makeEvent(i, EventKind::Enqueued, i, i << 12));

    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.recorded(), 5u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 8u);

    const auto events = t.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (sim::Tick i = 0; i < 5; ++i)
        EXPECT_EQ(events[i].tick, i);
}

TEST(TracerRing, DropsOldestWhenFull)
{
    TraceConfig cfg;
    cfg.ringCapacity = 4;
    Tracer t(cfg);
    for (sim::Tick i = 0; i < 10; ++i)
        t.record(makeEvent(i, EventKind::Enqueued, i, i << 12));

    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // The retained window is the newest four, oldest first.
    const auto events = t.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().tick, 6u);
    EXPECT_EQ(events.back().tick, 9u);
}

TEST(TracerRing, ClearResetsCountersAndWindow)
{
    TraceConfig cfg;
    cfg.ringCapacity = 4;
    Tracer t(cfg);
    for (sim::Tick i = 0; i < 9; ++i)
        t.record(makeEvent(i, EventKind::Enqueued, 0, 0));
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    t.record(makeEvent(42, EventKind::WalkDone, 0, 0));
    ASSERT_EQ(t.snapshot().size(), 1u);
    EXPECT_EQ(t.snapshot()[0].tick, 42u);
}

TEST(TracerRing, EventKindNamesAreStable)
{
    EXPECT_STREQ(toString(EventKind::Coalesced), "coalesced");
    EXPECT_STREQ(toString(EventKind::Enqueued), "enqueued");
    EXPECT_STREQ(toString(EventKind::Scored), "scored");
    EXPECT_STREQ(toString(EventKind::Scheduled), "scheduled");
    EXPECT_STREQ(toString(EventKind::MemIssued), "mem_issued");
    EXPECT_STREQ(toString(EventKind::MemCompleted), "mem_completed");
    EXPECT_STREQ(toString(EventKind::WalkDone), "walk_done");
}

// --- Digest --------------------------------------------------------

TEST(TraceDigest, IdenticalStreamsDigestEqually)
{
    Tracer a, b;
    for (sim::Tick i = 0; i < 100; ++i) {
        const auto ev = makeEvent(i, EventKind::Enqueued, i % 7,
                                  (i % 13) << 12);
        a.record(ev);
        b.record(ev);
    }
    EXPECT_EQ(digest(a), digest(b));
    EXPECT_NE(digest(a), 0u);
}

TEST(TraceDigest, EveryFieldPerturbsTheDigest)
{
    auto base = makeEvent(10, EventKind::Scheduled, 3, 0x4000);
    base.level = 2;
    base.walker = 5;
    base.wavefront = 7;
    base.arg0 = 11;
    base.arg1 = 13;

    const auto digestOf = [](const Event &ev) {
        Tracer t;
        t.record(ev);
        return digest(t);
    };

    const auto reference = digestOf(base);
    for (int field = 0; field < 9; ++field) {
        Event ev = base;
        switch (field) {
          case 0: ev.tick += 1; break;
          case 1: ev.kind = EventKind::WalkDone; break;
          case 2: ev.level += 1; break;
          case 3: ev.walker += 1; break;
          case 4: ev.wavefront += 1; break;
          case 5: ev.instruction += 1; break;
          case 6: ev.vaPage += mem::pageSize; break;
          case 7: ev.arg0 += 1; break;
          case 8: ev.arg1 += 1; break;
        }
        EXPECT_NE(digestOf(ev), reference)
            << "field " << field << " not folded into the digest";
    }
}

TEST(TraceDigest, DroppedEventsChangeTheDigest)
{
    // Two tracers retaining the same window must still differ if one
    // of them overflowed: the totals are folded in.
    TraceConfig small;
    small.ringCapacity = 4;
    Tracer overflowed(small), exact(small);
    for (sim::Tick i = 0; i < 8; ++i)
        overflowed.record(makeEvent(i, EventKind::Enqueued, 0, 0));
    for (sim::Tick i = 4; i < 8; ++i)
        exact.record(makeEvent(i, EventKind::Enqueued, 0, 0));

    ASSERT_EQ(overflowed.snapshot().size(), exact.snapshot().size());
    EXPECT_NE(digest(overflowed), digest(exact));
}

TEST(TraceDigest, HexIsSixteenZeroFilledDigits)
{
    EXPECT_EQ(digestHex(0x1), "0000000000000001");
    EXPECT_EQ(digestHex(0xcbf29ce484222325ull), "cbf29ce484222325");
    EXPECT_EQ(digestHex(0), "0000000000000000");
    EXPECT_EQ(digestHex(~0ull), "ffffffffffffffff");
}

TEST(TraceDigest, EmptyTracerHasFnvOffsetBasisSeedBehaviour)
{
    // An empty trace still digests its (zero) totals — the value is
    // fixed by the FNV-1a construction, so pin it as a golden value.
    Tracer t;
    EXPECT_EQ(digest(t), digest(t));
    Tracer u;
    EXPECT_EQ(digest(t), digest(u));
}

// --- Chrome exporter -----------------------------------------------

/** Counts non-overlapping occurrences of @p needle. */
std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (auto pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(ChromeExport, RendersBalancedSpansForOneWalkLifecycle)
{
    Tracer t;
    const std::uint64_t instr = 42;
    const mem::Addr page = 0x7000;

    t.record(makeEvent(100, EventKind::Coalesced, instr, page));
    t.record(makeEvent(200, EventKind::Enqueued, instr, page));
    t.record(makeEvent(200, EventKind::Scored, instr, page));
    {
        auto ev = makeEvent(900, EventKind::Scheduled, instr, page);
        ev.walker = 2;
        ev.arg1 = 700; // queue wait
        t.record(ev);
    }
    for (unsigned level = 4; level >= 3; --level) {
        auto issued = makeEvent(1000, EventKind::MemIssued, instr, page);
        issued.level = static_cast<std::uint8_t>(level);
        issued.walker = 2;
        t.record(issued);
        auto done = makeEvent(1500, EventKind::MemCompleted, instr, page);
        done.level = static_cast<std::uint8_t>(level);
        done.walker = 2;
        done.arg0 = 500; // latency
        t.record(done);
    }
    {
        auto ev = makeEvent(2000, EventKind::WalkDone, instr, page);
        ev.walker = 2;
        ev.arg0 = 2;    // accesses
        ev.arg1 = 1100; // service time
        t.record(ev);
    }

    std::ostringstream os;
    writeChromeTrace(os, t);
    const std::string json = os.str();

    // Well-formed envelope with the metadata the CLI test greps for.
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"events_recorded\""), std::string::npos);

    // The queue span opens and closes exactly once...
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"b\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"e\""), 1u);
    // ...and the walker renders one X span per PTE fetch plus one for
    // the whole walk service window.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 3u);
    // Per-walker rows use tid = 100 + walker index.
    EXPECT_NE(json.find("\"tid\":102"), std::string::npos);
    // The walker row is named for humans.
    EXPECT_NE(json.find("walker 2"), std::string::npos);
}

TEST(ChromeExport, ByteStableAcrossIdenticalTracers)
{
    const auto render = [] {
        Tracer t;
        for (sim::Tick i = 0; i < 50; ++i) {
            t.record(makeEvent(i * 10, EventKind::Enqueued, i % 3,
                               (i % 5) << 12));
            auto ev = makeEvent(i * 10 + 5, EventKind::Scheduled,
                                i % 3, (i % 5) << 12);
            ev.walker = i % 8;
            t.record(ev);
        }
        std::ostringstream os;
        writeChromeTrace(os, t);
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

// --- Sweep-runner trace file naming --------------------------------

TEST(TraceFilePathTest, UniquifiesPerRunAndKeepsExtension)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.trace.enabled = true;
    cfg.trace.outPath = "out/trace.json";

    const auto path = exp::traceFilePath(cfg, "MVT", 7);
    EXPECT_EQ(path.rfind("out/trace-MVT-fcfs-", 0), 0u) << path;
    EXPECT_NE(path.find("-s7.json"), std::string::npos) << path;

    // Different schedulers and seeds land in different files.
    auto other = cfg;
    other.scheduler = core::SchedulerKind::SimtAware;
    EXPECT_NE(exp::traceFilePath(other, "MVT", 7), path);
    EXPECT_NE(exp::traceFilePath(cfg, "MVT", 8), path);

    // A config change (new fingerprint) also changes the name, so
    // sweep variants cannot collide.
    auto variant = cfg;
    variant.iommu.numWalkers = 16;
    EXPECT_NE(exp::traceFilePath(variant, "MVT", 7), path);
}

TEST(TraceFilePathTest, HandlesExtensionlessPaths)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.trace.enabled = true;
    cfg.trace.outPath = "trace_dump";
    const auto path = exp::traceFilePath(cfg, "KMN", 1);
    EXPECT_EQ(path.rfind("trace_dump-KMN-fcfs-", 0), 0u) << path;
    EXPECT_NE(path.find("-s1"), std::string::npos) << path;
}

} // namespace
