/**
 * @file
 * Multi-tenant determinism differential tests and tenant golden
 * digests.
 *
 * Tenant churn (mid-run arrivals) plus ASID-tagged shared caches is
 * exactly the state the parallel domain executor must keep bit-exact:
 * late workload loads are GPU-domain-local events, and per-tenant
 * accounting rides the same cross-domain channels as everything else.
 * These tests run reference tenant mixes under both QoS schedulers
 * across --sim-threads {1, 2, 4} and concurrent same-process runs
 * (the --jobs axis), demanding byte-identical trace digests and stats
 * JSON, with the conservation auditor on throughout. The 2- and
 * 8-tenant reference points are pinned as committed goldens in
 * tests/golden/digests.json next to the scheduler-grid entries.
 *
 * Regenerating the tenant goldens (after an intentional behaviour
 * change; the merge-write preserves the scheduler-grid keys):
 *
 *     GPUWALK_UPDATE_GOLDEN=1 build/tests/gpuwalk_tests \
 *         --gtest_filter='TenantGolden.*'
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "golden_store.hh"
#include "system/system.hh"
#include "trace/digest.hh"
#include "workload/tenant_mix.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::testing::GoldenEntry;

/** A reference multi-tenant point: tenant count, churn, policy. */
struct MixPoint
{
    std::string key; ///< golden-store key, e.g. "tenant8/weighted-share"
    unsigned tenants;
    core::SchedulerKind scheduler;
    double churnFraction;
    bool alternateWeights;
};

/** The two committed reference points. Churn is active in both: the
 *  2-tenant point has one late arrival, the 8-tenant point two. */
const std::vector<MixPoint> referencePoints{
    {"tenant2/token-bucket", 2, core::SchedulerKind::TokenBucket, 0.5,
     false},
    {"tenant8/weighted-share", 8, core::SchedulerKind::WeightedShare,
     0.25, true},
};

struct MixRun
{
    system::RunStats stats;
    std::string statsJson;
};

MixRun
runMix(const MixPoint &point, unsigned sim_threads)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = point.scheduler;
    cfg.simThreads = sim_threads;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;

    workload::TenantMixConfig mix;
    mix.numTenants = point.tenants;
    mix.seed = 17;
    mix.wavefrontsPerTenant = 8;
    mix.instructionsPerWavefront = 6;
    mix.footprintScaleMin = 0.02;
    mix.footprintScaleMax = 0.06;
    mix.churnFraction = point.churnFraction;
    mix.churnWindowTicks = 200'000;
    mix.alternateWeights = point.alternateWeights;
    const auto specs = workload::generateTenantMix(mix);

    // Tenant i receives ContextId i below, so spec weights map
    // directly onto the per-ContextId weight table.
    for (unsigned i = 0; i < specs.size(); ++i) {
        if (specs[i].weight > 1) {
            cfg.qos.shareWeights.resize(specs.size(), 1);
            cfg.qos.shareWeights[i] = specs[i].weight;
        }
    }

    system::System sys(cfg);
    for (unsigned i = 0; i < specs.size(); ++i) {
        const auto ctx =
            i == 0 ? tlb::defaultContext : sys.createContext();
        GPUWALK_ASSERT(ctx == i, "context ids must be dense");
        sys.loadBenchmarkInContext(specs[i].workload, specs[i].params,
                                   /*app_id=*/i, ctx,
                                   specs[i].arrivalTick);
    }

    MixRun out;
    out.stats = sys.run();
    out.statsJson = exp::statsJsonString(out.stats);
    return out;
}

/**
 * Blanks the two counters that measure the engine rather than the
 * simulation: the parallel executor runs its own bookkeeping events
 * (events_executed) and the auditor checks once per domain quiescence
 * rather than per serial interval (audit checks). Everything else in
 * the stats JSON — every latency, every tenant counter — must be
 * byte-identical across thread counts.
 */
std::string
scrubEngineCounters(std::string s)
{
    for (const std::string key :
         {"\"events_executed\": ", "\"checks\": "}) {
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            const std::size_t begin = pos + key.size();
            std::size_t end = begin;
            while (end < s.size() && s[end] >= '0' && s[end] <= '9')
                ++end;
            s.replace(begin, end - begin, "_");
            pos = begin;
        }
    }
    return s;
}

GoldenEntry
toEntry(const system::RunStats &stats)
{
    GoldenEntry e;
    e.digest = trace::digestHex(stats.traceDigest);
    e.runtimeTicks = stats.runtimeTicks;
    e.instructions = stats.instructions;
    e.translationRequests = stats.translationRequests;
    e.walkRequests = stats.walkRequests;
    e.walksCompleted = stats.walksCompleted;
    e.traceEvents = stats.traceEvents;
    return e;
}

TEST(TenantDeterminism, BitIdenticalAcrossSimThreads)
{
    for (const auto &point : referencePoints) {
        const auto serial = runMix(point, 1);
        ASSERT_TRUE(serial.stats.traced);
        ASSERT_NE(serial.stats.traceDigest, 0u);
        ASSERT_EQ(serial.stats.traceDropped, 0u);
        ASSERT_TRUE(serial.stats.audited);
        EXPECT_EQ(serial.stats.auditViolations, 0u) << point.key;
        ASSERT_EQ(serial.stats.tenants.size(), point.tenants)
            << point.key;

        for (const unsigned threads : {2u, 4u}) {
            const auto parallel = runMix(point, threads);
            EXPECT_EQ(parallel.stats.traceDigest,
                      serial.stats.traceDigest)
                << point.key << " diverged at --sim-threads "
                << threads;
            EXPECT_EQ(parallel.stats.auditViolations, 0u);
            // The whole stats JSON — tenant accounting included — is
            // byte-identical, not just the digest (modulo the two
            // engine-infrastructure counters).
            EXPECT_EQ(scrubEngineCounters(parallel.statsJson),
                      scrubEngineCounters(serial.statsJson))
                << point.key << " at --sim-threads " << threads;
        }
    }
}

TEST(TenantDeterminism, BitIdenticalAcrossConcurrentRuns)
{
    // The --jobs axis: two Systems simulating the same point in the
    // same process at once (each itself parallel) must not interfere.
    const auto &point = referencePoints.front();
    const auto reference = runMix(point, 1);

    std::vector<MixRun> concurrent(2);
    {
        std::thread a([&] { concurrent[0] = runMix(point, 2); });
        std::thread b([&] { concurrent[1] = runMix(point, 2); });
        a.join();
        b.join();
    }
    for (const auto &run : concurrent) {
        EXPECT_EQ(run.stats.traceDigest, reference.stats.traceDigest);
        EXPECT_EQ(scrubEngineCounters(run.statsJson),
                  scrubEngineCounters(reference.statsJson));
        EXPECT_EQ(run.stats.auditViolations, 0u);
    }
}

TEST(TenantGolden, ReferenceMixesMatchCommittedDigests)
{
    std::map<std::string, GoldenEntry> computed;
    for (const auto &point : referencePoints)
        computed[point.key] = toEntry(runMix(point, 1).stats);

    if (gpuwalk::testing::updateRequested()) {
        ASSERT_TRUE(gpuwalk::testing::writeGoldensMerged(computed))
            << "cannot write " << gpuwalk::testing::goldenPath();
        GTEST_SKIP() << "tenant goldens rewritten at "
                     << gpuwalk::testing::goldenPath();
    }

    GPUWALK_EXPECT_GOLDENS_MATCH(computed);
}

} // namespace
