/**
 * @file
 * Unit tests for the slab-backed object pool.
 *
 * Covers growth on exhaustion, LIFO recycle identity, capacity
 * retention across acquire/release cycles (the property the simulator's
 * hot paths rely on to stay allocation-free), the in-use accounting,
 * and the always-on release validation: double release and foreign
 * pointers must panic, not corrupt the free list.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/object_pool.hh"

namespace {

using gpuwalk::sim::ObjectPool;

struct Payload
{
    int value = 0;
    std::vector<int> scratch;
};

TEST(ObjectPool, StartsEmptyAndGrowsOnFirstAcquire)
{
    ObjectPool<Payload> pool(4);
    EXPECT_EQ(pool.capacity(), 0u);
    EXPECT_EQ(pool.slabCount(), 0u);

    Payload *p = pool.acquire();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_EQ(pool.slabCount(), 1u);
    EXPECT_EQ(pool.inUse(), 1u);
    pool.release(p);
}

TEST(ObjectPool, ExhaustionAddsSlabsAndPointersStayDistinct)
{
    ObjectPool<Payload> pool(4);
    std::set<Payload *> seen;
    std::vector<Payload *> held;
    for (int i = 0; i < 11; ++i) {
        Payload *p = pool.acquire();
        EXPECT_TRUE(seen.insert(p).second) << "duplicate live pointer";
        held.push_back(p);
    }
    EXPECT_EQ(pool.slabCount(), 3u); // ceil(11 / 4)
    EXPECT_EQ(pool.capacity(), 12u);
    EXPECT_EQ(pool.inUse(), 11u);
    EXPECT_EQ(pool.peakInUse(), 11u);

    for (Payload *p : held)
        pool.release(p);
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.peakInUse(), 11u); // high-water mark sticks
    EXPECT_EQ(pool.capacity(), 12u);  // slabs are never returned
}

TEST(ObjectPool, RecycleIsLifo)
{
    ObjectPool<Payload> pool(8);
    Payload *a = pool.acquire();
    Payload *b = pool.acquire();
    pool.release(b);
    pool.release(a);
    // Most recently released comes back first.
    EXPECT_EQ(pool.acquire(), a);
    EXPECT_EQ(pool.acquire(), b);
    pool.release(a);
    pool.release(b);
}

TEST(ObjectPool, RecycledObjectsKeepStateAndCapacity)
{
    // The pool's contract: objects are constructed once and reused
    // as-is, so container capacity grown by one user is still there
    // for the next — that is what makes steady state allocation-free.
    ObjectPool<Payload> pool(2);
    Payload *p = pool.acquire();
    p->value = 42;
    p->scratch.reserve(1024);
    const std::size_t cap = p->scratch.capacity();
    pool.release(p);

    Payload *q = pool.acquire();
    ASSERT_EQ(q, p);
    EXPECT_EQ(q->value, 42);
    EXPECT_GE(q->scratch.capacity(), cap);
    pool.release(q);
}

TEST(ObjectPool, InUseTracksAcquireReleaseCycles)
{
    ObjectPool<Payload> pool(4);
    std::vector<Payload *> held;
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 3; ++i)
            held.push_back(pool.acquire());
        EXPECT_EQ(pool.inUse(), 3u);
        for (Payload *p : held)
            pool.release(p);
        held.clear();
        EXPECT_EQ(pool.inUse(), 0u);
    }
    EXPECT_EQ(pool.peakInUse(), 3u);
    EXPECT_EQ(pool.slabCount(), 1u); // recycling never grew the pool
}

TEST(ObjectPool, LiveCountStaysExactUnderRecycleWhileIterating)
{
    // The merge-pool usage pattern the auditor's live-count invariant
    // depends on: while walking a set of live objects, each step may
    // release the current one and acquire a replacement (a completing
    // merge entry spawning a follow-up). The count must track every
    // interleaved acquire/release exactly — no drift, no double count
    // when LIFO hands the just-released slot straight back.
    ObjectPool<Payload> pool(4);
    std::vector<Payload *> held;
    for (int i = 0; i < 8; ++i) {
        held.push_back(pool.acquire());
        held.back()->value = i;
    }
    ASSERT_EQ(pool.inUse(), 8u);

    for (std::size_t i = 0; i < held.size(); ++i) {
        pool.release(held[i]);
        EXPECT_EQ(pool.inUse(), 7u);
        Payload *fresh = pool.acquire();
        EXPECT_EQ(fresh, held[i]); // LIFO returns the same slot
        EXPECT_EQ(pool.inUse(), 8u);
        held[i] = fresh;
    }
    EXPECT_EQ(pool.peakInUse(), 8u); // churn never inflated the peak
    EXPECT_EQ(pool.slabCount(), 2u); // ...nor grew the pool

    // Tear down half from the middle (arbitrary order): the count
    // must step down one per release, ending exactly at zero.
    std::size_t expect = 8;
    for (std::size_t i = 1; i < held.size(); i += 2) {
        pool.release(held[i]);
        EXPECT_EQ(pool.inUse(), --expect);
    }
    for (std::size_t i = 0; i < held.size(); i += 2) {
        pool.release(held[i]);
        EXPECT_EQ(pool.inUse(), --expect);
    }
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(ObjectPoolDeathTest, DoubleReleasePanics)
{
    ObjectPool<Payload> pool(4);
    Payload *p = pool.acquire();
    pool.release(p);
    EXPECT_DEATH(pool.release(p), "double release");
}

TEST(ObjectPoolDeathTest, ReleaseAfterRecycleByAnotherOwnerPanics)
{
    // The stale-owner variant of double release: the slot has been
    // re-acquired, so the stale release would free it out from under
    // the live owner. Re-acquiring sets the live flag again, so this
    // must trip the same validation only when genuinely stale.
    ObjectPool<Payload> pool(4);
    Payload *p = pool.acquire();
    pool.release(p);
    Payload *q = pool.acquire();
    ASSERT_EQ(q, p); // LIFO: same slot, new owner
    pool.release(q);
    EXPECT_DEATH(pool.release(p), "double release");
}

TEST(ObjectPoolDeathTest, ReleasingForeignPointerPanics)
{
    ObjectPool<Payload> pool(4);
    Payload *p = pool.acquire();
    Payload stack_object;
    EXPECT_DEATH(pool.release(&stack_object), "non-pooled");
    pool.release(p);
}

TEST(ObjectPoolDeathTest, ReleasingAnotherPoolsObjectPanics)
{
    ObjectPool<Payload> pool_a(4);
    ObjectPool<Payload> pool_b(4);
    Payload *p = pool_a.acquire();
    EXPECT_DEATH(pool_b.release(p), "non-pooled");
    pool_a.release(p);
}

} // namespace
