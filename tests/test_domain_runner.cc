/**
 * @file
 * Tests for the conservative parallel executor (sim/domain_runner.hh):
 * horizon/boundary math, thread resolution, a two-domain ping-pong
 * micro-benchmark of the runner itself, and — the heart of the suite —
 * differential runs of the full System at --sim-threads 1/2/4
 * asserting bit-identical simulated results.
 *
 * The differential runs enable walk tracing (digests pin the global
 * event order, not just the aggregate counters) and final-only
 * auditing (so the serial run drains to quiescence exactly like a
 * partitioned run always does, and conservation violations fail the
 * comparison loudly).
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "exp/run.hh"
#include "sim/domain_runner.hh"
#include "sim/event_queue.hh"
#include "sim/port.hh"
#include "trace/digest.hh"

namespace {

using namespace gpuwalk;
using sim::Channel;
using sim::DomainRunner;
using sim::EventQueue;
using sim::Tick;

// ---------------------------------------------------------------------
// Boundary math
// ---------------------------------------------------------------------

TEST(DomainRunner, EdgeHorizonAddsTheLookahead)
{
    EXPECT_EQ(DomainRunner::edgeHorizon(100, 25), 125u);
    EXPECT_EQ(DomainRunner::edgeHorizon(0, 0), 0u);
    EXPECT_EQ(DomainRunner::edgeHorizon(0, 25'000), 25'000u);
}

TEST(DomainRunner, EdgeHorizonSaturatesInsteadOfWrapping)
{
    EXPECT_EQ(DomainRunner::edgeHorizon(sim::maxTick, 25'000),
              sim::maxTick);
    EXPECT_EQ(DomainRunner::edgeHorizon(sim::maxTick - 5, 10),
              sim::maxTick);
    EXPECT_EQ(DomainRunner::edgeHorizon(sim::maxTick - 10, 10),
              sim::maxTick);
}

/** The horizon is exclusive: an event exactly on the epoch edge must
 *  wait — a message from the neighbour could still arrive *at* the
 *  horizon tick (lookahead is a lower bound on latency). */
TEST(DomainRunner, EventExactlyOnTheHorizonEdgeWaits)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(125, [&] { ++ran; });

    EXPECT_EQ(eq.runUntil(125), 0u) << "tick 125 is not strictly < 125";
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eq.now(), 0u) << "runUntil must not advance past work";

    EXPECT_EQ(eq.runUntil(126), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 125u);
}

TEST(DomainRunner, ResolveThreadsClampsToDomainsAndFloorsAtOne)
{
    EXPECT_EQ(DomainRunner::resolveThreads(1, 3), 1u);
    EXPECT_EQ(DomainRunner::resolveThreads(2, 3), 2u);
    EXPECT_EQ(DomainRunner::resolveThreads(3, 3), 3u);
    EXPECT_EQ(DomainRunner::resolveThreads(4, 3), 3u)
        << "more threads than domains is clamped";
    EXPECT_EQ(DomainRunner::resolveThreads(5, 2), 2u);
    const unsigned auto_threads = DomainRunner::resolveThreads(0, 3);
    EXPECT_GE(auto_threads, 1u);
    EXPECT_LE(auto_threads, 3u);
}

// ---------------------------------------------------------------------
// The runner itself, on a synthetic two-domain graph
// ---------------------------------------------------------------------

/** Two domains bounce a decrementing token across two latency-10
 *  channels. Exercises horizon leapfrogging (each clock advance
 *  unblocks the peer), inbox draining, and quiescence detection. */
TEST(DomainRunner, PingPongRunsToQuiescenceOnTwoThreads)
{
    EventQueue qa;
    EventQueue qb;
    qa.enableDomainKeys(0);
    qb.enableDomainKeys(1);

    Channel<int> ab("a_to_b", 10);
    Channel<int> ba("b_to_a", 10);
    ab.bind(qa, qb);
    ba.bind(qb, qa);
    ab.setParallel(true);
    ba.setParallel(true);

    // Each vector is touched only by its owning domain's worker.
    std::vector<Tick> a_ticks;
    std::vector<Tick> b_ticks;
    ab.onDeliver([&](int &&n) {
        b_ticks.push_back(qb.now());
        if (n > 0)
            ba.send(n - 1);
    });
    ba.onDeliver([&](int &&n) {
        a_ticks.push_back(qa.now());
        if (n > 0)
            ab.send(n - 1);
    });

    qa.schedule(0, [&] { ab.send(20); });

    std::vector<sim::Domain> domains{{0, "a", &qa}, {1, "b", &qb}};
    std::vector<sim::DomainEdge> edges{{0, 1, &ab}, {1, 0, &ba}};
    DomainRunner runner(std::move(domains), std::move(edges), 2);
    ASSERT_EQ(runner.threads(), 2u);

    const DomainRunner::Result r = runner.run(1'000'000);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.maxEventsExceeded);

    // Token values 20..0 cross alternately: 11 deliveries into b
    // (n = 20, 18, ..., 0), 10 into a (n = 19, 17, ..., 1), each one
    // hop (10 ticks) after the previous.
    ASSERT_EQ(b_ticks.size(), 11u);
    ASSERT_EQ(a_ticks.size(), 10u);
    EXPECT_EQ(b_ticks.front(), 10u);
    EXPECT_EQ(b_ticks.back(), 210u);
    EXPECT_EQ(a_ticks.front(), 20u);
    EXPECT_EQ(a_ticks.back(), 200u);

    EXPECT_EQ(ab.sent(), 11u);
    EXPECT_EQ(ab.delivered(), 11u);
    EXPECT_EQ(ba.sent(), 10u);
    EXPECT_EQ(ba.delivered(), 10u);
    EXPECT_TRUE(ab.inboxEmpty());
    EXPECT_TRUE(ba.inboxEmpty());

    // 1 seed event + 21 injected deliveries.
    EXPECT_EQ(r.eventsExecuted, 22u);
}

// ---------------------------------------------------------------------
// Differential: the full System, serial vs partitioned
// ---------------------------------------------------------------------

system::RunStats
runAt(unsigned threads, core::SchedulerKind sched,
      const std::string &workload,
      const workload::WorkloadParams &params)
{
    system::SystemConfig cfg = system::SystemConfig::baseline();
    cfg.scheduler = sched;
    cfg.simThreads = threads;
    cfg.trace.enabled = true;
    // Final-only audit: drains the serial run to quiescence (the
    // partitioned run always drains) and fails the run on any
    // conservation violation. interval = 0 keeps the periodic audit
    // event out of the serial event count.
    cfg.audit.enabled = true;
    cfg.audit.interval = 0;
    return exp::runOne(cfg, workload, params).stats;
}

void
expectIdentical(const system::RunStats &serial,
                const system::RunStats &parallel, const std::string &what)
{
    EXPECT_EQ(parallel.runtimeTicks, serial.runtimeTicks) << what;
    EXPECT_EQ(parallel.stallTicks, serial.stallTicks) << what;
    EXPECT_EQ(parallel.instructions, serial.instructions) << what;
    EXPECT_EQ(parallel.translationRequests, serial.translationRequests)
        << what;
    EXPECT_EQ(parallel.walkRequests, serial.walkRequests) << what;
    EXPECT_EQ(parallel.walksCompleted, serial.walksCompleted) << what;
    EXPECT_EQ(parallel.eventsExecuted, serial.eventsExecuted)
        << what << ": domain queues summed minus same-tick messages "
        << "must equal the serial event count";
    EXPECT_EQ(parallel.traceEvents, serial.traceEvents) << what;
    EXPECT_EQ(parallel.traceDropped, 0u) << what;
    EXPECT_EQ(trace::digestHex(parallel.traceDigest),
              trace::digestHex(serial.traceDigest))
        << what << ": merged per-domain trace must replay the serial "
        << "global order bit-exactly";
    EXPECT_EQ(parallel.auditViolations, 0u) << what;
    EXPECT_EQ(serial.auditViolations, 0u) << what;
}

workload::WorkloadParams
differentialParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 32;
    params.instructionsPerWavefront = 8;
    params.seed = 7;
    params.footprintScale = 0.05;
    params.computeCycles = 20;
    return params;
}

TEST(DomainRunnerDifferential, GoldenPointMatchesAtTwoAndFourThreads)
{
    const auto params = differentialParams();
    const system::RunStats serial =
        runAt(1, core::SchedulerKind::SimtAware, "MVT", params);
    ASSERT_EQ(serial.auditViolations, 0u);

    for (unsigned threads : {2u, 4u}) {
        const system::RunStats par =
            runAt(threads, core::SchedulerKind::SimtAware, "MVT", params);
        expectIdentical(serial, par,
                        "MVT/simt_aware @" + std::to_string(threads)
                            + " threads");
    }
}

/** Thread-timing independence at a fixed thread count: two identical
 *  partitioned runs digest identically even though the interleaving of
 *  the host threads differs between them. */
TEST(DomainRunnerDifferential, PartitionedRunIsRunToRunDeterministic)
{
    const auto params = differentialParams();
    const system::RunStats a =
        runAt(2, core::SchedulerKind::Fcfs, "BIC", params);
    const system::RunStats b =
        runAt(2, core::SchedulerKind::Fcfs, "BIC", params);
    EXPECT_EQ(trace::digestHex(a.traceDigest),
              trace::digestHex(b.traceDigest));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

/** Randomized workload x scheduler x shape configurations, each run at
 *  1/2/4 threads and required bit-identical. Fixed RNG seed: the cases
 *  are random-looking but reproducible. */
TEST(DomainRunnerDifferential, FuzzConfigsMatchAcrossThreadCounts)
{
    const std::vector<core::SchedulerKind> schedulers{
        core::SchedulerKind::Fcfs,      core::SchedulerKind::Random,
        core::SchedulerKind::SjfOnly,   core::SchedulerKind::BatchOnly,
        core::SchedulerKind::SimtAware};
    const std::vector<std::string> workloads{"MVT", "BIC", "KMN"};

    std::mt19937 rng(0xd0a11u);
    constexpr int cases = 6;
    for (int c = 0; c < cases; ++c) {
        const auto sched =
            schedulers[rng() % schedulers.size()];
        const auto &workload = workloads[rng() % workloads.size()];

        workload::WorkloadParams params;
        params.wavefronts = 8 + 8 * (rng() % 3);       // 8 / 16 / 24
        params.instructionsPerWavefront = 4 + rng() % 5; // 4..8
        params.seed = 1 + rng() % 1000;
        params.footprintScale = (rng() % 2) ? 0.03 : 0.05;
        params.computeCycles = 10 + 10 * (rng() % 2);  // 10 / 20

        const std::string what =
            "case " + std::to_string(c) + ": " + workload + "/"
            + core::toString(sched) + " wf="
            + std::to_string(params.wavefronts) + " ipw="
            + std::to_string(params.instructionsPerWavefront) + " seed="
            + std::to_string(params.seed);

        const system::RunStats serial =
            runAt(1, sched, workload, params);
        for (unsigned threads : {2u, 4u}) {
            const system::RunStats par =
                runAt(threads, sched, workload, params);
            expectIdentical(serial, par,
                            what + " @" + std::to_string(threads));
        }
    }
}

} // namespace
