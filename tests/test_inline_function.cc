/**
 * @file
 * Unit tests for sim::InlineFunction, the move-only small-buffer
 * callable on the simulator's completion paths.
 *
 * Exercises both storage strategies: inline placement for captures
 * within the byte budget, and the heap-box fallback for oversized,
 * over-aligned, or potentially-throwing-move captures. The fallback is
 * what the auditor's callback wrapping relies on — wrapping a
 * TranslationRequest's completion adds capture bytes, and a silent
 * truncation or slice there would corrupt the walk path.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"

namespace {

using gpuwalk::sim::InlineFunction;

/** Counts constructions/destructions to prove destroy-once. */
struct Counted
{
    static int live;
    static int moves;

    Counted() { ++live; }
    Counted(const Counted &) { ++live; }
    Counted(Counted &&) noexcept
    {
        ++live;
        ++moves;
    }
    ~Counted() { --live; }
};

int Counted::live = 0;
int Counted::moves = 0;

TEST(InlineFunction, EmptyByDefaultAndAfterReset)
{
    InlineFunction<int()> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    fn = [] { return 7; };
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_EQ(fn(), 7);
    fn.reset();
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, SmallCaptureStoresInline)
{
    // A capture within the default 48-byte budget must not allocate;
    // observable proxy: the callable works after a move even when the
    // source object's storage is reused.
    std::uint64_t a = 3, b = 4;
    InlineFunction<std::uint64_t()> fn = [a, b] { return a * b; };
    EXPECT_EQ(fn(), 12u);

    InlineFunction<std::uint64_t()> moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(moved(), 12u);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapBox)
{
    // 128 bytes of capture blows the 48-byte budget: the callable must
    // still work, via the boxed path.
    std::array<std::uint64_t, 16> big{};
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i + 1;
    InlineFunction<std::uint64_t()> fn = [big] {
        std::uint64_t sum = 0;
        for (const auto v : big)
            sum += v;
        return sum;
    };
    EXPECT_EQ(fn(), 136u); // 1 + 2 + ... + 16

    // Boxed relocate is a pointer handoff: moving must preserve the
    // capture bytes exactly and empty the source.
    auto moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(moved(), 136u);
}

TEST(InlineFunction, ThrowingMoveCaptureFallsBackToHeapBox)
{
    // A capture whose move may throw cannot live inline (the
    // InlineFunction move constructor is noexcept), so it must box
    // even though it fits the byte budget.
    struct ThrowingMove
    {
        int v = 21;
        ThrowingMove() = default;
        ThrowingMove(const ThrowingMove &) = default;
        ThrowingMove(ThrowingMove &&other) : v(other.v) {} // not noexcept
    };
    static_assert(!std::is_nothrow_move_constructible_v<ThrowingMove>);

    ThrowingMove t;
    InlineFunction<int()> fn = [t] { return t.v * 2; };
    EXPECT_EQ(fn(), 42);
    auto moved = std::move(fn);
    EXPECT_EQ(moved(), 42);
}

TEST(InlineFunction, MoveOnlyCaptureWorks)
{
    // The reason InlineFunction exists: std::function rejects this.
    auto p = std::make_unique<int>(99);
    InlineFunction<int()> fn = [p = std::move(p)] { return *p; };
    EXPECT_EQ(fn(), 99);
    auto moved = std::move(fn);
    EXPECT_EQ(moved(), 99);
}

TEST(InlineFunction, DestroysCaptureExactlyOnceInline)
{
    Counted::live = 0;
    {
        Counted c;
        InlineFunction<void()> fn = [c] {};
        static_assert(sizeof(Counted) <= 48);
        EXPECT_GE(Counted::live, 2); // original + capture
        InlineFunction<void()> moved = std::move(fn);
        moved();
    }
    EXPECT_EQ(Counted::live, 0) << "capture leaked or double-destroyed";
}

TEST(InlineFunction, DestroysCaptureExactlyOnceBoxed)
{
    Counted::live = 0;
    {
        // Pad past the inline budget so the capture is heap-boxed.
        struct BigCapture
        {
            Counted c;
            std::array<std::uint64_t, 16> pad{};
        };
        BigCapture big;
        InlineFunction<void()> fn = [big] {};
        InlineFunction<void()> moved = std::move(fn);
        InlineFunction<void()> assigned;
        assigned = std::move(moved);
        assigned();
        assigned.reset();
        EXPECT_EQ(Counted::live, 1); // only `big` itself remains
    }
    EXPECT_EQ(Counted::live, 0) << "boxed capture leaked";
}

TEST(InlineFunction, AssignmentReplacesPreviousTarget)
{
    Counted::live = 0;
    Counted c;
    InlineFunction<int()> fn = [c] { return 1; };
    const int live_with_one = Counted::live;
    fn = [c] { return 2; }; // must destroy the first capture
    EXPECT_EQ(Counted::live, live_with_one);
    EXPECT_EQ(fn(), 2);
}

TEST(InlineFunction, ForwardsArgumentsAndReturnsValues)
{
    InlineFunction<std::uint64_t(std::uint64_t, bool)> fn =
        [](std::uint64_t page, bool large) {
            return large ? page << 9 : page;
        };
    EXPECT_EQ(fn(5, false), 5u);
    EXPECT_EQ(fn(5, true), 5u << 9);

    // Move-only arguments pass through by forwarding.
    InlineFunction<int(std::unique_ptr<int>)> takes =
        [](std::unique_ptr<int> p) { return *p; };
    EXPECT_EQ(takes(std::make_unique<int>(31)), 31);
}

} // namespace
