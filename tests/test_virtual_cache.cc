/**
 * @file
 * Tests for the virtual-L1-cache mode (translate on L1 miss).
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "tlb/translating_port.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;

workload::WorkloadParams
smallParams()
{
    workload::WorkloadParams p;
    p.wavefronts = 24;
    p.instructionsPerWavefront = 10;
    p.footprintScale = 0.05;
    return p;
}

TEST(TranslatingPort, TranslatesThenForwards)
{
    sim::EventQueue eq;

    class InstantIommu : public tlb::TranslationService
    {
      public:
        explicit InstantIommu(sim::EventQueue &eq) : eq_(eq) {}
        void
        translate(tlb::TranslationRequest req) override
        {
            ++count;
            eq_.scheduleIn(500, [r = std::move(req)]() mutable {
                r.complete(r.vaPage + 0x1000000);
            });
        }
        unsigned count = 0;

      private:
        sim::EventQueue &eq_;
    } iommu(eq);

    class Sink : public mem::MemoryDevice
    {
      public:
        void
        access(mem::MemoryRequest req) override
        {
            addrs.push_back(req.addr);
            instructions.push_back(req.instruction);
            req.complete();
        }
        std::vector<Addr> addrs;
        std::vector<std::uint64_t> instructions;
    } sink;

    tlb::TlbHierarchyConfig cfg;
    cfg.numCus = 1;
    tlb::TlbHierarchy tlbs(eq, cfg, iommu);
    tlb::TranslatingPort port(tlbs, sink);

    bool done = false;
    mem::MemoryRequest req;
    req.addr = 0x40001040; // page 0x40001000, offset 0x40
    req.instruction = 77;
    req.onComplete = [&] { done = true; };
    port.access(std::move(req));
    eq.run();

    EXPECT_TRUE(done);
    ASSERT_EQ(sink.addrs.size(), 1u);
    EXPECT_EQ(sink.addrs[0], 0x40001000u + 0x1000000u + 0x40u);
    EXPECT_EQ(sink.instructions[0], 77u);
    EXPECT_EQ(port.requests(), 1u);
}

TEST(VirtualCache, SystemCompletesWithVirtualL1)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.gpu.virtualL1Cache = true;
    cfg.scheduler = core::SchedulerKind::SimtAware;
    system::System sys(cfg);
    sys.loadBenchmark("MVT", smallParams());
    const auto stats = sys.run();
    EXPECT_EQ(stats.instructions, 24u * 10u);
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

TEST(VirtualCache, FiltersTranslationTraffic)
{
    // With the same workload, the virtual-L1 system must send fewer
    // translation requests to the TLB hierarchy than the physical-L1
    // system: L1 hits never translate (Yoon et al.'s claim).
    auto params = smallParams();
    params.wavefronts = 32;

    auto physical = system::SystemConfig::baseline();
    system::System phys_sys(physical);
    phys_sys.loadBenchmark("BCK", params); // streaming: high L1 reuse
    phys_sys.run();
    const auto phys_xlate = phys_sys.tlbs().stats();
    const auto phys_requests = phys_sys.iommu().walkRequests();

    auto virt = system::SystemConfig::baseline();
    virt.gpu.virtualL1Cache = true;
    system::System virt_sys(virt);
    virt_sys.loadBenchmark("BCK", params);
    virt_sys.run();

    (void)phys_xlate;
    EXPECT_LE(virt_sys.iommu().walkRequests(), phys_requests);
}

TEST(VirtualCache, TranslationsStillFunctionallyCorrect)
{
    // The data path must reach the same physical lines: compare DRAM
    // read counts loosely and, more strictly, run to completion with
    // the walker asserting present mappings throughout.
    auto cfg = system::SystemConfig::baseline();
    cfg.gpu.virtualL1Cache = true;
    system::System sys(cfg);
    sys.loadBenchmark("GEV", smallParams());
    const auto stats = sys.run();
    EXPECT_GT(stats.walkRequests, 0u);
    EXPECT_EQ(sys.iommu().inflightWalks(), 0u);
}

TEST(VirtualCache, DeterministicToo)
{
    auto run = [] {
        auto cfg = system::SystemConfig::baseline();
        cfg.gpu.virtualL1Cache = true;
        system::System sys(cfg);
        sys.loadBenchmark("ATX", smallParams());
        return sys.run();
    };
    EXPECT_EQ(run().runtimeTicks, run().runtimeTicks);
}

} // namespace
