/**
 * @file
 * Tests for multi-program co-execution: per-app accounting, shared
 * translation hardware, and completion invariants.
 */

#include <gtest/gtest.h>

#include "system/system.hh"

namespace {

using namespace gpuwalk;

workload::WorkloadParams
tinyParams()
{
    workload::WorkloadParams p;
    p.wavefronts = 12;
    p.instructionsPerWavefront = 8;
    p.footprintScale = 0.03;
    return p;
}

TEST(MultiProgram, TwoAppsBothComplete)
{
    system::System sys(system::SystemConfig::baseline());
    sys.loadBenchmark("MVT", tinyParams(), 0);
    sys.loadBenchmark("HOT", tinyParams(), 1);
    const auto stats = sys.run();

    EXPECT_EQ(stats.instructions, 2u * 12u * 8u);
    ASSERT_EQ(stats.appFinishTicks.size(), 2u);
    EXPECT_GT(stats.appFinishTicks[0], 0u);
    EXPECT_GT(stats.appFinishTicks[1], 0u);
    EXPECT_EQ(std::max(stats.appFinishTicks[0],
                       stats.appFinishTicks[1]),
              stats.runtimeTicks);
}

TEST(MultiProgram, PerAppWavefrontCountsAreTracked)
{
    system::System sys(system::SystemConfig::baseline());
    sys.loadBenchmark("ATX", tinyParams(), 0);
    sys.loadBenchmark("KMN", tinyParams(), 1);
    sys.run();
    EXPECT_EQ(sys.gpu().numApps(), 2u);
    EXPECT_EQ(sys.gpu().appWavefrontsDone(0), 12u);
    EXPECT_EQ(sys.gpu().appWavefrontsDone(1), 12u);
}

TEST(MultiProgram, SingleAppStillWorksAsAppZero)
{
    system::System sys(system::SystemConfig::baseline());
    sys.loadBenchmark("BIC", tinyParams());
    const auto stats = sys.run();
    ASSERT_EQ(stats.appFinishTicks.size(), 1u);
    EXPECT_EQ(stats.appFinishTicks[0], stats.runtimeTicks);
}

TEST(MultiProgram, SameAppIdAccumulates)
{
    // Loading twice under one app id extends that app.
    system::System sys(system::SystemConfig::baseline());
    sys.loadBenchmark("CLR", tinyParams(), 0);
    sys.loadBenchmark("CLR", tinyParams(), 0);
    sys.run();
    EXPECT_EQ(sys.gpu().numApps(), 1u);
    EXPECT_EQ(sys.gpu().appWavefrontsDone(0), 24u);
}

TEST(MultiProgram, ContentionSlowsTheVictim)
{
    // A translation-light app co-running with a translation-heavy one
    // must finish no sooner than when running alone.
    auto cfg = system::SystemConfig::baseline();

    system::System solo(cfg);
    solo.loadBenchmark("HOT", tinyParams());
    const auto solo_t = solo.run().runtimeTicks;

    system::System shared(cfg);
    shared.loadBenchmark("MVT", tinyParams(), 0);
    shared.loadBenchmark("HOT", tinyParams(), 1);
    const auto stats = shared.run();
    EXPECT_GE(stats.appFinishTicks[1], solo_t);
}

TEST(MultiProgram, DeterministicAcrossRuns)
{
    auto run = [] {
        system::System sys(system::SystemConfig::baseline());
        sys.loadBenchmark("MVT", tinyParams(), 0);
        sys.loadBenchmark("SSP", tinyParams(), 1);
        return sys.run();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.appFinishTicks, b.appFinishTicks);
    EXPECT_EQ(a.walkRequests, b.walkRequests);
}

} // namespace
