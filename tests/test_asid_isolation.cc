/**
 * @file
 * ASID isolation fuzz tests for the shared translation caches.
 *
 * Multiple tenants deliberately share one SetAssocTlb / PageWalkCache
 * and one VA layout, so their tags collide maximally; the physical
 * side of every mapping encodes the owning ContextId in its top bits.
 * Randomized interleaved fills, lookups, and invalidations then assert
 * the core multi-tenant invariant: a lookup under context C either
 * misses or returns a physical address owned by C — never another
 * tenant's. A death test pins the unregistered-context backstop in
 * PageWalkCache::rootOf().
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "iommu/page_walk_cache.hh"
#include "mem/types.hh"
#include "sim/rng.hh"
#include "tlb/set_assoc_tlb.hh"
#include "vm/page_table.hh"

namespace {

using namespace gpuwalk;
using tlb::ContextId;

constexpr unsigned numTenants = 4;
constexpr mem::Addr pageSize = 0x1000;

/** Owner tag lives in PA bits 44+: ctx C owns tag C + 1 (tag 0 would
 *  be ambiguous with "low address"). */
constexpr mem::Addr
ownedPa(ContextId ctx, mem::Addr va_page)
{
    return (mem::Addr(ctx + 1) << 44) | va_page;
}

constexpr ContextId
ownerOf(mem::Addr pa)
{
    return static_cast<ContextId>((pa >> 44) - 1);
}

/**
 * 20k randomized ops against one shared TLB: every tenant maps the
 * same small VA pool (maximal tag collisions), small and large pages
 * mixed, with interleaved invalidations. Any hit whose PA is owned by
 * a different context is a cross-ASID leak.
 */
TEST(AsidIsolation, TlbFuzzNeverHitsAcrossContexts)
{
    // 64-entry 4-way: small enough that tenants constantly evict each
    // other, which is exactly where a tag-match bug would surface.
    tlb::SetAssocTlb tlb(tlb::TlbConfig{"fuzz", 64, 4});
    sim::Rng rng(20260807);

    // Small shared pool spanning several 2 MB regions so large-page
    // entries from different tenants overlap too.
    const unsigned poolPages = 4096;
    std::uint64_t hitsChecked = 0;

    for (unsigned iter = 0; iter < 20000; ++iter) {
        const auto ctx =
            static_cast<ContextId>(rng.below(numTenants));
        const mem::Addr va = rng.below(poolPages) * pageSize;
        const mem::Addr region = va & ~vm::largePageMask;

        switch (rng.below(6)) {
        case 0: // small-page fill
            tlb.insert(va, ownedPa(ctx, va), false, ctx);
            break;
        case 1: // large-page fill covering the whole 2 MB region
            tlb.insert(region, ownedPa(ctx, region), true, ctx);
            break;
        case 2: // invalidate own mapping (may or may not exist)
            tlb.invalidate(va, ctx);
            break;
        case 3: { // LRU-updating lookup
            const auto hit = tlb.lookup(va, ctx);
            if (hit) {
                ++hitsChecked;
                ASSERT_EQ(ownerOf(*hit), ctx)
                    << "cross-ASID TLB hit: ctx " << ctx
                    << " got pa of ctx " << ownerOf(*hit);
                // Both entry sizes resolve va to the same encoded PA
                // (large hits add the in-region offset back).
                ASSERT_EQ(*hit, ownedPa(ctx, va));
            }
            break;
        }
        case 4: { // size-reporting lookup
            const auto hit = tlb.lookupEntry(va, ctx);
            if (hit) {
                ++hitsChecked;
                ASSERT_EQ(ownerOf(hit->paPage), ctx);
                ASSERT_EQ(hit->paPage, ownedPa(ctx, va));
            }
            break;
        }
        default: { // side-effect-free probe
            const auto hit = tlb.probe(va, ctx);
            if (hit) {
                ++hitsChecked;
                ASSERT_EQ(ownerOf(*hit), ctx);
            }
            break;
        }
        }
    }
    // The fuzz only proves isolation if lookups actually hit.
    EXPECT_GT(hitsChecked, 1000u);
}

/** Same VA resident for every tenant at once: each lookup returns its
 *  own translation, and invalidating one tenant's entry leaves the
 *  others resident. Fully associative so nothing is evicted. */
TEST(AsidIsolation, TlbSameVaCoexistsAcrossContexts)
{
    tlb::SetAssocTlb tlb(tlb::TlbConfig{"coexist", 32, 32});
    const mem::Addr va = 0x40000000;

    for (ContextId c = 0; c < numTenants; ++c)
        tlb.insert(va, ownedPa(c, va), false, c);

    for (ContextId c = 0; c < numTenants; ++c) {
        const auto hit = tlb.lookup(va, c);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, ownedPa(c, va));
    }

    // Shootdown in context 1 only.
    EXPECT_TRUE(tlb.invalidate(va, 1));
    EXPECT_FALSE(tlb.lookup(va, 1).has_value());
    for (ContextId c : {ContextId(0), ContextId(2), ContextId(3)}) {
        const auto hit = tlb.lookup(va, c);
        ASSERT_TRUE(hit.has_value()) << "shootdown leaked to ctx " << c;
        EXPECT_EQ(*hit, ownedPa(c, va));
    }
}

/**
 * PWC fuzz: per-tenant roots and per-tenant upper-level fills into the
 * shared three-level walk cache, all over one VA pool. Every lookup
 * must start the walk from a table owned by the looking context —
 * either a hit entry it filled itself or its own registered root.
 */
TEST(AsidIsolation, PwcFuzzNeverStartsWalkFromForeignTable)
{
    iommu::PwcConfig cfg;
    cfg.entriesPerLevel = 8; // tiny: constant cross-tenant eviction
    cfg.associativity = 4;
    iommu::PageWalkCache pwc(cfg, ownedPa(0, 0));
    for (ContextId c = 1; c < numTenants; ++c)
        pwc.registerContext(c, ownedPa(c, 0));

    const std::vector<vm::PtLevel> levels{
        vm::PtLevel::Pd, vm::PtLevel::Pdpt, vm::PtLevel::Pml4};

    sim::Rng rng(777);
    const unsigned poolPages = 1u << 14; // spans many PD regions
    std::uint64_t partialStarts = 0;

    for (unsigned iter = 0; iter < 20000; ++iter) {
        const auto ctx =
            static_cast<ContextId>(rng.below(numTenants));
        const mem::Addr va = rng.below(poolPages) * pageSize;

        switch (rng.below(4)) {
        case 0: { // fill one upper level with a ctx-owned table base
            const auto level = levels[rng.below(levels.size())];
            pwc.fill(va, level, ownedPa(ctx, va), ctx);
            break;
        }
        case 1: { // walk-time lookup: start table must be ctx-owned
            const auto start = pwc.lookup(va, ctx);
            ASSERT_EQ(ownerOf(start.tableBase), ctx)
                << "walk for ctx " << ctx
                << " would start from a table of ctx "
                << ownerOf(start.tableBase);
            if (start.level < vm::numPtLevels)
                ++partialStarts;
            break;
        }
        case 2: { // scoring probe: estimate stays in [1, 4]
            const unsigned est = pwc.probeEstimate(va, ctx);
            ASSERT_GE(est, 1u);
            ASSERT_LE(est, vm::numPtLevels);
            break;
        }
        default: { // non-mutating estimate agrees with the caches
            const unsigned est = pwc.peekEstimate(va, ctx);
            ASSERT_GE(est, 1u);
            ASSERT_LE(est, vm::numPtLevels);
            break;
        }
        }
    }
    // PWC hits must actually have occurred for the check to mean
    // anything.
    EXPECT_GT(partialStarts, 100u);
    EXPECT_GT(pwc.hits(), 0u);
}

/** A context nobody registered must die at the rootOf() backstop, not
 *  silently walk another tenant's page table. */
TEST(AsidIsolationDeathTest, UnregisteredContextIsFatal)
{
    iommu::PwcConfig cfg;
    iommu::PageWalkCache pwc(cfg, 0x1000);
    pwc.registerContext(1, 0x2000);

    EXPECT_DEATH(pwc.rootOf(7), "unregistered context");
    EXPECT_DEATH(pwc.lookup(0x40000000, 7), "unregistered context");
    EXPECT_DEATH(pwc.probeEstimate(0x40000000, 7),
                 "unregistered context");
    EXPECT_DEATH(pwc.fill(0x40000000, vm::PtLevel::Pd, 0x3000, 7),
                 "unregistered context");
}

} // namespace
