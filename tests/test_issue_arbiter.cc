/**
 * @file
 * IssueArbiter tests: directed behaviour per policy plus a
 * differential fuzz against referenceArbitrate(), the retired
 * ComputeUnit linear scan kept as an executable spec.
 *
 * The O(1) structure under test maintains an age-rank permutation at
 * refill time and picks with a word scan over a rank-indexed ready
 * bitmap; the reference recomputes the winner from first principles
 * (scan all ready slots, compare global IDs, apply the Wasp leader
 * filter) on every pick. Both see the same random schedule of
 * markReady / pick / refill operations and must agree on every pick.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "gpu/issue_arbiter.hh"
#include "sim/rng.hh"

namespace {

using namespace gpuwalk;
using gpu::IssueArbiter;
using gpu::WavefrontSchedPolicy;

// ---------------------------------------------------------------------
// Directed behaviour.
// ---------------------------------------------------------------------

TEST(IssueArbiter, RoundRobinIsReadyOrderFifo)
{
    IssueArbiter arb(WavefrontSchedPolicy::RoundRobin);
    for (std::uint32_t id = 1; id <= 4; ++id)
        arb.addSlot(id);

    arb.markReady(2);
    arb.markReady(0);
    arb.markReady(3);
    EXPECT_EQ(arb.readyCount(), 3u);
    EXPECT_EQ(arb.pick(), 2u);
    EXPECT_EQ(arb.pick(), 0u);
    EXPECT_EQ(arb.pick(), 3u);
    EXPECT_TRUE(arb.empty());
}

TEST(IssueArbiter, OldestFirstPicksLowestGlobalId)
{
    IssueArbiter arb(WavefrontSchedPolicy::OldestFirst);
    for (std::uint32_t id = 1; id <= 4; ++id)
        arb.addSlot(id);

    // Ready order is irrelevant; age order decides.
    arb.markReady(3);
    arb.markReady(1);
    arb.markReady(2);
    EXPECT_EQ(arb.pick(), 1u);
    EXPECT_EQ(arb.pick(), 2u);
    EXPECT_EQ(arb.pick(), 3u);
}

TEST(IssueArbiter, RefillMakesSlotYoungest)
{
    IssueArbiter arb(WavefrontSchedPolicy::OldestFirst);
    for (std::uint32_t id = 1; id <= 3; ++id)
        arb.addSlot(id);

    // Slot 0 retires its trace and refills with a fresh global ID: it
    // is now the youngest and must lose to both surviving slots.
    arb.onRefill(0, 10);
    arb.markReady(0);
    arb.markReady(1);
    arb.markReady(2);
    EXPECT_EQ(arb.pick(), 1u);
    EXPECT_EQ(arb.pick(), 2u);
    EXPECT_EQ(arb.pick(), 0u);
}

TEST(IssueArbiter, WaspPrefersLeadersOverOlderFollowers)
{
    // Slots [0, 2) are leaders. Follower slot 2 is *older* than leader
    // slot 1 (lower global ID), but any ready leader wins first.
    IssueArbiter arb(WavefrontSchedPolicy::Wasp, /*leader_slots=*/2);
    for (std::uint32_t id = 1; id <= 4; ++id)
        arb.addSlot(id);

    arb.markReady(2);
    arb.markReady(1);
    arb.markReady(3);
    EXPECT_TRUE(arb.isLeader(1));
    EXPECT_FALSE(arb.isLeader(2));
    EXPECT_EQ(arb.pick(), 1u); // the only ready leader
    EXPECT_EQ(arb.pick(), 2u); // then oldest follower
    EXPECT_EQ(arb.pick(), 3u);
}

TEST(IssueArbiter, WaspFallsBackToOldestFollower)
{
    IssueArbiter arb(WavefrontSchedPolicy::Wasp, /*leader_slots=*/1);
    for (std::uint32_t id = 1; id <= 4; ++id)
        arb.addSlot(id);

    // No leader ready: plain oldest-first among followers.
    arb.markReady(3);
    arb.markReady(2);
    EXPECT_EQ(arb.pick(), 2u);
    EXPECT_EQ(arb.pick(), 3u);
}

// ---------------------------------------------------------------------
// Differential fuzz: random schedules, arbiter vs reference scan.
// ---------------------------------------------------------------------

/** Shadow model shared with referenceArbitrate: ready slots in ready
 *  order plus slot -> current global ID. */
struct Shadow
{
    std::deque<std::size_t> ready;
    std::vector<std::uint32_t> ids;
    std::vector<bool> isReady;
};

void
fuzzPolicy(WavefrontSchedPolicy policy, unsigned leader_slots,
           std::size_t slots, std::uint64_t seed, int steps)
{
    IssueArbiter arb(policy, leader_slots);
    Shadow shadow;
    shadow.ids.resize(slots);
    shadow.isReady.assign(slots, false);
    std::uint32_t next_id = 1;
    for (std::size_t s = 0; s < slots; ++s) {
        shadow.ids[s] = next_id;
        arb.addSlot(next_id++);
    }
    sim::Rng rng(seed);

    auto pickBoth = [&] {
        const std::size_t ref_idx = gpu::referenceArbitrate(
            policy, shadow.ready, shadow.ids, leader_slots);
        const std::size_t expected = shadow.ready[ref_idx];
        const std::size_t got = arb.pick();
        ASSERT_EQ(got, expected)
            << "policy " << static_cast<int>(policy) << " slots "
            << slots << " seed " << seed;
        shadow.ready.erase(shadow.ready.begin()
                           + static_cast<std::ptrdiff_t>(ref_idx));
        shadow.isReady[expected] = false;
    };

    for (int step = 0; step < steps; ++step) {
        const unsigned op = static_cast<unsigned>(rng.below(10));
        if (op < 5) {
            // markReady on a random non-ready slot, if any.
            const std::size_t start = rng.below(slots);
            for (std::size_t d = 0; d < slots; ++d) {
                const std::size_t s = (start + d) % slots;
                if (!shadow.isReady[s]) {
                    arb.markReady(s);
                    shadow.ready.push_back(s);
                    shadow.isReady[s] = true;
                    break;
                }
            }
        } else if (op < 8) {
            if (!shadow.ready.empty())
                pickBoth();
        } else {
            // Refill a random non-ready slot with a fresh global ID.
            const std::size_t start = rng.below(slots);
            for (std::size_t d = 0; d < slots; ++d) {
                const std::size_t s = (start + d) % slots;
                if (!shadow.isReady[s]) {
                    shadow.ids[s] = next_id;
                    arb.onRefill(s, next_id++);
                    break;
                }
            }
        }
        ASSERT_EQ(arb.readyCount(), shadow.ready.size());
    }
    // Drain: every remaining pick must agree too.
    while (!shadow.ready.empty())
        pickBoth();
    EXPECT_TRUE(arb.empty());
}

TEST(IssueArbiterDiff, RandomSchedulesMatchReferenceScan)
{
    const std::vector<WavefrontSchedPolicy> policies{
        WavefrontSchedPolicy::RoundRobin,
        WavefrontSchedPolicy::OldestFirst,
        WavefrontSchedPolicy::Wasp};
    // 70 slots spans two ready-bitmap words, so the word-scan seam is
    // exercised; 1 slot pins the degenerate permutation.
    const std::vector<std::size_t> slot_counts{1, 3, 8, 70};

    std::uint64_t seed = 20260807;
    for (const auto policy : policies) {
        for (const std::size_t slots : slot_counts) {
            for (const unsigned leaders : {0u, 1u, 2u}) {
                if (policy != WavefrontSchedPolicy::Wasp && leaders > 0)
                    continue;
                fuzzPolicy(policy, leaders, slots, ++seed,
                           /*steps=*/2000);
            }
        }
    }
}

} // namespace
