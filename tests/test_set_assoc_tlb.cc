/**
 * @file
 * Unit tests for the set-associative TLB.
 */

#include <gtest/gtest.h>

#include "tlb/set_assoc_tlb.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::tlb;
using gpuwalk::mem::Addr;

constexpr Addr page(std::uint64_t n) { return n << 12; }

TEST(SetAssocTlb, MissOnEmpty)
{
    SetAssocTlb tlb({"t", 32, 32});
    EXPECT_FALSE(tlb.lookup(page(5)).has_value());
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(SetAssocTlb, InsertThenHit)
{
    SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(page(5), page(99));
    auto pa = tlb.lookup(page(5));
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, page(99));
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(SetAssocTlb, ProbeDoesNotTouchStats)
{
    SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(page(5), page(99));
    EXPECT_TRUE(tlb.probe(page(5)).has_value());
    EXPECT_FALSE(tlb.probe(page(6)).has_value());
    EXPECT_EQ(tlb.hits(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(SetAssocTlb, FullyAssociativeLruEviction)
{
    SetAssocTlb tlb({"t", 4, 4});
    for (std::uint64_t i = 0; i < 4; ++i)
        tlb.insert(page(i), page(100 + i));
    tlb.lookup(page(0)); // refresh 0
    tlb.insert(page(9), page(200)); // evicts page 1 (LRU)
    EXPECT_TRUE(tlb.probe(page(0)).has_value());
    EXPECT_FALSE(tlb.probe(page(1)).has_value());
    EXPECT_TRUE(tlb.probe(page(9)).has_value());
}

TEST(SetAssocTlb, ReinsertRefreshesExistingEntry)
{
    SetAssocTlb tlb({"t", 4, 4});
    tlb.insert(page(1), page(10));
    tlb.insert(page(1), page(20));
    EXPECT_EQ(tlb.population(), 1u);
    EXPECT_EQ(*tlb.probe(page(1)), page(20));
}

TEST(SetAssocTlb, SetAssociativityLimitsConflicts)
{
    // 8 entries, 2-way: 4 sets.
    SetAssocTlb tlb({"t", 8, 2});
    // With the hashed index we can't predict set membership directly,
    // but total population can never exceed capacity.
    for (std::uint64_t i = 0; i < 100; ++i)
        tlb.insert(page(i), page(1000 + i));
    EXPECT_LE(tlb.population(), 8u);
}

TEST(SetAssocTlb, HashedIndexSpreadsStridedPages)
{
    // Pages strided by 8 (matrix-row stride) must not all collide in
    // a few sets: with 512 entries / 16-way = 32 sets, 64 strided
    // pages fit comfortably when hashing works.
    SetAssocTlb tlb({"t", 512, 16});
    for (std::uint64_t i = 0; i < 64; ++i)
        tlb.insert(page(i * 8), page(i));
    unsigned resident = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        resident += tlb.probe(page(i * 8)).has_value() ? 1 : 0;
    EXPECT_EQ(resident, 64u);
}

TEST(SetAssocTlb, InvalidateSingleEntry)
{
    SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(page(3), page(30));
    EXPECT_TRUE(tlb.invalidate(page(3)));
    EXPECT_FALSE(tlb.invalidate(page(3)));
    EXPECT_FALSE(tlb.probe(page(3)).has_value());
}

TEST(SetAssocTlb, InvalidateAllEmptiesTlb)
{
    SetAssocTlb tlb({"t", 32, 32});
    for (std::uint64_t i = 0; i < 20; ++i)
        tlb.insert(page(i), page(i));
    EXPECT_EQ(tlb.population(), 20u);
    tlb.invalidateAll();
    EXPECT_EQ(tlb.population(), 0u);
}

TEST(SetAssocTlb, HitRate)
{
    SetAssocTlb tlb({"t", 32, 32});
    tlb.insert(page(1), page(1));
    tlb.lookup(page(1));
    tlb.lookup(page(2));
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(SetAssocTlbDeathTest, BadGeometry)
{
    EXPECT_DEATH(SetAssocTlb(TlbConfig{"t", 10, 4}),
                 "not divisible");
}

TEST(SetAssocTlbDeathTest, NonPowerOfTwoSetCount)
{
    // 12 entries / 4 ways = 3 sets: divisible, but set indexing is a
    // mask, so the set count must be a power of two.
    EXPECT_DEATH(SetAssocTlb(TlbConfig{"t", 12, 4}),
                 "power of two");
}

} // namespace
