/**
 * @file
 * Unit tests for the JSON statistics export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace {

using namespace gpuwalk::sim;

TEST(StatsJson, CounterAndScalarValues)
{
    StatGroup g("top");
    Counter c("reads", "d");
    c += 42;
    Scalar s("ipc", "d");
    s = 1.5;
    g.add(c);
    g.add(s);
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"reads\": 42, \"ipc\": 1.5}");
}

TEST(StatsJson, AverageObject)
{
    StatGroup g("top");
    Average a("lat", "d");
    a.sample(10);
    a.sample(20);
    g.add(a);
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"lat\": {\"mean\": 15, \"count\": 2, "
                        "\"min\": 10, \"max\": 20}}");
}

TEST(StatsJson, EmptyAverageOmitsMinMax)
{
    StatGroup g("top");
    Average a("lat", "d");
    g.add(a);
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"lat\": {\"mean\": 0, \"count\": 0}}");
}

TEST(StatsJson, HistogramBuckets)
{
    StatGroup g("top");
    Histogram h("work", "d", {16, 32});
    h.sample(5);
    h.sample(40);
    g.add(h);
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\"work\": {\"total\": 2, \"buckets\": "
              "{\"0-16\": 1, \"17-32\": 0, \"33+\": 1}}}");
}

TEST(StatsJson, NestedGroups)
{
    StatGroup root("sys");
    StatGroup child("dram");
    Counter c("reads", "d");
    c += 7;
    child.add(c);
    root.addChild(child);
    std::ostringstream os;
    root.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"dram\": {\"reads\": 7}}");
}

TEST(StatsJson, EmptyGroup)
{
    StatGroup g("empty");
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{}");
}

} // namespace
