/**
 * @file
 * Unit tests for the page table walker state machine.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "iommu/page_table_walker.hh"
#include "mem/backing_store.hh"
#include "sim/event_queue.hh"
#include "vm/frame_allocator.hh"
#include "vm/page_table.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::iommu;
using gpuwalk::mem::Addr;

/** Fixed-latency memory recording accessed addresses. */
class RecordingMemory : public mem::MemoryDevice
{
  public:
    RecordingMemory(sim::EventQueue &eq, sim::Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    access(mem::MemoryRequest req) override
    {
        accesses.push_back(req.addr);
        EXPECT_EQ(req.requester, mem::Requester::PageWalk);
        eq_.scheduleIn(latency_,
                       [r = std::move(req)]() mutable { r.complete(); });
    }

    std::vector<Addr> accesses;

  private:
    sim::EventQueue &eq_;
    sim::Tick latency_;
};

struct WalkerFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    vm::PageTable table{store, frames};
    RecordingMemory memory{eq, 100 * 500};
    std::optional<PageWalkCache> pwc;
    std::unique_ptr<PageTableWalker> walker;

    void
    SetUp() override
    {
        pwc.emplace(PwcConfig{}, table.root());
        walker = std::make_unique<PageTableWalker>(eq, memory, store,
                                                   *pwc);
    }

    core::PendingWalk
    makeWalk(Addr va_page, tlb::InstructionId instr = 1)
    {
        core::PendingWalk w;
        w.request.vaPage = va_page;
        w.request.instruction = instr;
        w.arrival = eq.now();
        return w;
    }
};

TEST_F(WalkerFixture, ColdWalkTakesFourAccesses)
{
    table.map(0x40000000, 0xabc000);
    std::optional<WalkResult> result;
    walker->start(makeWalk(0x40000000),
                  [&](WalkResult r) { result = std::move(r); });
    EXPECT_TRUE(walker->busy());
    eq.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->memAccesses, 4u);
    EXPECT_EQ(result->paPage, 0xabc000u);
    EXPECT_FALSE(walker->busy());
    EXPECT_EQ(memory.accesses.size(), 4u);
    // Four dependent accesses: latency is 4x the memory latency.
    EXPECT_EQ(result->finished - result->started, 4u * 100u * 500u);
}

TEST_F(WalkerFixture, AccessesFollowTheRealPteChain)
{
    table.map(0x40000000, 0xabc000);
    walker->start(makeWalk(0x40000000), [](WalkResult) {});
    eq.run();
    // The addresses the walker touched are exactly the entry
    // addresses the page table records for each level.
    using vm::PtLevel;
    ASSERT_EQ(memory.accesses.size(), 4u);
    EXPECT_EQ(memory.accesses[0],
              *table.entryAddress(0x40000000, PtLevel::Pml4));
    EXPECT_EQ(memory.accesses[1],
              *table.entryAddress(0x40000000, PtLevel::Pdpt));
    EXPECT_EQ(memory.accesses[2],
              *table.entryAddress(0x40000000, PtLevel::Pd));
    EXPECT_EQ(memory.accesses[3],
              *table.entryAddress(0x40000000, PtLevel::Pt));
}

TEST_F(WalkerFixture, WalkFillsPwcForUpperLevels)
{
    table.map(0x40000000, 0xabc000);
    walker->start(makeWalk(0x40000000), [](WalkResult) {});
    eq.run();
    // The next walk in the same 2 MB region needs only the leaf.
    EXPECT_EQ(pwc->peekEstimate(0x40000000 + mem::pageSize), 1u);
}

TEST_F(WalkerFixture, WarmWalkTakesOneAccess)
{
    table.map(0x40000000, 0xabc000);
    table.map(0x40001000, 0xdef000);
    walker->start(makeWalk(0x40000000), [](WalkResult) {});
    eq.run();
    memory.accesses.clear();

    std::optional<WalkResult> result;
    walker->start(makeWalk(0x40001000),
                  [&](WalkResult r) { result = std::move(r); });
    eq.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->memAccesses, 1u);
    EXPECT_EQ(result->paPage, 0xdef000u);
    EXPECT_EQ(memory.accesses.size(), 1u);
}

TEST_F(WalkerFixture, SequentialWalksReuseWalker)
{
    table.map(0x40000000, 0x111000);
    table.map(0x80000000, 0x222000);
    unsigned done = 0;
    walker->start(makeWalk(0x40000000), [&](WalkResult) { ++done; });
    eq.run();
    walker->start(makeWalk(0x80000000), [&](WalkResult) { ++done; });
    eq.run();
    EXPECT_EQ(done, 2u);
    EXPECT_EQ(walker->walksDone(), 2u);
}

TEST_F(WalkerFixture, ResultCarriesRequestMetadata)
{
    table.map(0x40000000, 0x111000);
    std::optional<WalkResult> result;
    auto w = makeWalk(0x40000000, /*instr=*/77);
    w.seq = 123;
    walker->start(std::move(w),
                  [&](WalkResult r) { result = std::move(r); });
    eq.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->walk.request.instruction, 77u);
    EXPECT_EQ(result->walk.seq, 123u);
}

TEST_F(WalkerFixture, DeathOnUnmappedAddress)
{
    EXPECT_DEATH(
        {
            walker->start(makeWalk(0x40000000), [](WalkResult) {});
            eq.run();
        },
        "non-present");
}

TEST_F(WalkerFixture, DeathOnDoubleStart)
{
    table.map(0x40000000, 0x111000);
    walker->start(makeWalk(0x40000000), [](WalkResult) {});
    EXPECT_DEATH(walker->start(makeWalk(0x40000000), [](WalkResult) {}),
                 "busy");
}

} // namespace
