/**
 * @file
 * Tests for the IOMMU's idle-bandwidth next-page prefetcher.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hh"
#include "mem/dram_controller.hh"
#include "system/system.hh"
#include "vm/address_space.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;

struct PrefetchFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    std::unique_ptr<vm::AddressSpace> as;
    std::unique_ptr<mem::DramController> dram;
    std::unique_ptr<iommu::Iommu> iommu;
    vm::VaRegion region;

    void
    build(bool prefetch)
    {
        as = std::make_unique<vm::AddressSpace>(store, frames);
        region = as->allocate("data", 1024 * 1024);
        dram = std::make_unique<mem::DramController>(
            eq, mem::DramConfig{});
        iommu::IommuConfig cfg;
        cfg.prefetch.kind = prefetch ? iommu::PrefetchKind::NextPage
                                     : iommu::PrefetchKind::Off;
        iommu = std::make_unique<iommu::Iommu>(
            eq, cfg, core::makeScheduler(core::SchedulerKind::Fcfs),
            *dram, store, as->pageTable().root());
    }

    Addr
    translate(Addr va_page)
    {
        Addr result = 0;
        tlb::TranslationRequest req;
        req.vaPage = va_page;
        req.instruction = 1;
        req.onComplete = [&](Addr pa, bool) { result = pa; };
        iommu->translate(std::move(req));
        eq.run();
        return result;
    }
};

TEST_F(PrefetchFixture, IdleWalkerPrefetchesNextPage)
{
    build(/*prefetch=*/true);
    translate(region.base);
    EXPECT_EQ(iommu->prefetches(), 1u);
    // The next page is now an IOMMU TLB hit: no new walk.
    const auto walks_before = iommu->walkRequests();
    translate(region.base + mem::pageSize);
    EXPECT_EQ(iommu->walkRequests(), walks_before);
}

TEST_F(PrefetchFixture, PrefetchedTranslationIsCorrect)
{
    build(/*prefetch=*/true);
    translate(region.base);
    const Addr pa = translate(region.base + mem::pageSize);
    EXPECT_EQ(pa,
              *as->pageTable().translate(region.base + mem::pageSize));
}

TEST_F(PrefetchFixture, DisabledByDefault)
{
    build(/*prefetch=*/false);
    translate(region.base);
    EXPECT_EQ(iommu->prefetches(), 0u);
    const auto walks_before = iommu->walkRequests();
    translate(region.base + mem::pageSize);
    EXPECT_EQ(iommu->walkRequests(), walks_before + 1);
}

TEST_F(PrefetchFixture, NeverWalksPastTheMappedRegion)
{
    build(/*prefetch=*/true);
    // The last page's successor is the unmapped guard page: the
    // prefetcher must skip it rather than panic in the walker.
    translate(region.end() - mem::pageSize);
    EXPECT_EQ(iommu->prefetches(), 0u);
}

TEST_F(PrefetchFixture, AlreadyCachedNextPageIsNotPrefetched)
{
    build(/*prefetch=*/true);
    translate(region.base);              // prefetches base+1
    const auto count = iommu->prefetches();
    // Walk base+2 directly; its successor base+3 gets prefetched, but
    // re-translating base gives no new prefetch (base+1 cached).
    translate(region.base + 2 * mem::pageSize);
    translate(region.base);
    EXPECT_EQ(iommu->prefetches(), count + 1);
}

TEST_F(PrefetchFixture, PrefetchWalksAreCountedSeparately)
{
    build(/*prefetch=*/true);
    translate(region.base);
    // walksCompleted includes the prefetch; demand metrics do not.
    EXPECT_EQ(iommu->walksCompleted(), 2u);
    EXPECT_EQ(iommu->metrics().summarize().totalWalks, 1u);
}

TEST(PrefetchSystem, EndToEndStreamingWorkloadBenefits)
{
    // A sequential-streaming workload (regular app) should see fewer
    // demand walks with prefetching on.
    workload::WorkloadParams params;
    params.wavefronts = 16;
    params.instructionsPerWavefront = 24;
    params.footprintScale = 0.2;

    auto cfg = system::SystemConfig::baseline();
    system::System off(cfg);
    off.loadBenchmark("BCK", params);
    const auto off_stats = off.run();

    cfg.iommu.prefetch.kind = iommu::PrefetchKind::NextPage;
    system::System on(cfg);
    on.loadBenchmark("BCK", params);
    const auto on_stats = on.run();

    EXPECT_GT(on.iommu().prefetches(), 0u);
    EXPECT_LE(on_stats.walkRequests, off_stats.walkRequests);
}

} // namespace
