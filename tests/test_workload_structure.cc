/**
 * @file
 * Structural tests for the benchmark generators' access-pattern
 * shapes (beyond the basic divergence partition of test_workloads):
 * the kernel-phase structure each model claims is actually present in
 * the traces it emits.
 */

#include <gtest/gtest.h>

#include "tlb/coalescer.hh"
#include <set>

#include "workload/registry.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::workload;
using gpuwalk::mem::Addr;

struct Harness
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(16) << 30};
    vm::AddressSpace as{store, frames};
};

WorkloadParams
structParams()
{
    WorkloadParams p;
    p.wavefronts = 4;
    p.instructionsPerWavefront = 40;
    p.footprintScale = 0.25; // strides must exceed a page
    p.seed = 9;
    return p;
}

double
divergenceOf(const gpu::SimdMemInstruction &instr)
{
    return static_cast<double>(
        tlb::coalesce(instr.laneAddrs).pages.size());
}

TEST(WorkloadStructure, AtaxIsTwoPhase)
{
    Harness h;
    auto wl = makeWorkload("ATX")->generate(h.as, structParams());
    for (const auto &trace : wl.traces) {
        // Phase 1 (first 3/4): dominated by divergent column loads.
        double head = 0, tail = 0;
        const std::size_t split = trace.size() * 3 / 4;
        for (std::size_t i = 0; i < split; ++i)
            head += divergenceOf(trace[i]);
        for (std::size_t i = split; i < trace.size(); ++i)
            tail += divergenceOf(trace[i]);
        head /= static_cast<double>(split);
        tail /= static_cast<double>(trace.size() - split);
        EXPECT_GT(head, 20.0);
        EXPECT_LT(tail, 3.0); // row-streaming kernel coalesces
    }
}

TEST(WorkloadStructure, BicgSharesTheTwoPhaseShape)
{
    Harness h;
    auto wl = makeWorkload("BIC")->generate(h.as, structParams());
    const auto &trace = wl.traces.front();
    const std::size_t split = trace.size() * 3 / 4;
    EXPECT_GT(divergenceOf(trace[0]), 20.0);
    double tail_max = 0;
    for (std::size_t i = split; i < trace.size(); ++i)
        tail_max = std::max(tail_max, divergenceOf(trace[i]));
    EXPECT_LE(tail_max, 3.0);
}

TEST(WorkloadStructure, GesummvInterleavesTwoMatrixStreams)
{
    Harness h;
    auto wl = makeWorkload("GEV")->generate(h.as, structParams());
    // Consecutive divergent loads must come from two disjoint address
    // regions (matrices A and B).
    const auto &trace = wl.traces.front();
    std::vector<Addr> bases;
    for (const auto &instr : trace) {
        if (divergenceOf(instr) > 20.0)
            bases.push_back(instr.laneAddrs.front());
        if (bases.size() == 2)
            break;
    }
    ASSERT_EQ(bases.size(), 2u);
    // The two streams are far apart (different regions).
    const Addr gap = bases[1] > bases[0] ? bases[1] - bases[0]
                                         : bases[0] - bases[1];
    EXPECT_GT(gap, Addr(8) << 20);
}

TEST(WorkloadStructure, NwRevisitsRowsAcrossDiagonalSteps)
{
    Harness h;
    auto wl = makeWorkload("NW")->generate(h.as, structParams());
    // Consecutive diagonal loads share most of their pages (the band
    // slides by one column), giving the TLB reuse the model claims.
    const auto &trace = wl.traces.front();
    const auto a = tlb::coalesce(trace[0].laneAddrs).pages;
    const auto b = tlb::coalesce(trace[3].laneAddrs).pages;
    unsigned shared = 0;
    for (auto p : a) {
        for (auto q : b)
            shared += p == q ? 1 : 0;
    }
    EXPECT_GT(shared, a.size() / 2);
}

TEST(WorkloadStructure, XsbenchEarlyProbesShareLatesDiverge)
{
    Harness h;
    auto params = structParams();
    params.footprintScale = 0.5;
    auto wl = makeWorkload("XSB")->generate(h.as, params);
    const auto &trace = wl.traces.front();
    // Probe step 0 of the first lookup is nearly fully shared.
    EXPECT_LE(divergenceOf(trace[0]), 3.0);
    // Later probe steps and the gather diverge strongly.
    double max_div = 0;
    for (std::size_t i = 1; i < 8 && i < trace.size(); ++i)
        max_div = std::max(max_div, divergenceOf(trace[i]));
    EXPECT_GT(max_div, 16.0);
}

TEST(WorkloadStructure, RegularAppsStreamMonotonically)
{
    Harness h;
    auto wl = makeWorkload("BCK")->generate(h.as, structParams());
    const auto &trace = wl.traces.front();
    // Streaming accesses advance through the buffer.
    unsigned forward = 0, total = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].laneAddrs.size() < 2
            || trace[i - 1].laneAddrs.size() < 2)
            continue;
        ++total;
        forward += trace[i].laneAddrs[0] > trace[i - 1].laneAddrs[0]
                       ? 1
                       : 0;
    }
    EXPECT_GT(forward, total / 2);
}

TEST(WorkloadStructure, PartialMasksAppearInIrregularTraces)
{
    Harness h;
    auto wl = makeWorkload("MVT")->generate(h.as, structParams());
    unsigned partial = 0, full = 0;
    for (const auto &trace : wl.traces) {
        for (const auto &instr : trace) {
            if (instr.laneAddrs.size() == gpu::wavefrontSize)
                ++full;
            else if (instr.laneAddrs.size() > 1)
                ++partial;
        }
    }
    EXPECT_GT(partial, 0u);
    EXPECT_GT(full, partial); // masks are the exception
}

TEST(WorkloadStructure, ComputeJitterVariesAcrossInstructions)
{
    Harness h;
    auto wl = makeWorkload("MVT")->generate(h.as, structParams());
    std::set<sim::Cycles> distinct;
    for (const auto &instr : wl.traces.front())
        distinct.insert(instr.computeCycles);
    EXPECT_GT(distinct.size(), 5u);
}

} // namespace
