/**
 * @file
 * Property/fuzz tests for the calendar-queue event core.
 *
 * A naive reference queue — a flat vector scanned for the
 * (when, priority, seq) minimum on every pop — defines the ordering
 * contract. Randomized schedule/run interleavings drive the real
 * EventQueue and the reference side by side and require identical
 * execution histories, covering the spots where a calendar queue can
 * betray the contract while a heap cannot:
 *
 *  - same-tick FIFO + priority ordering inside one bucket,
 *  - run(limit) draining semantics with the window part-full,
 *  - far-future events (overflow tier) and bucket wraparound, where a
 *    migrated event must still order by seq against later-scheduled
 *    bucket residents of the same tick,
 *  - rescheduling from within a running callback.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using gpuwalk::sim::EventPriority;
using gpuwalk::sim::EventQueue;
using gpuwalk::sim::Tick;

constexpr Tick kWindow = EventQueue::windowTicks;

/**
 * Ordering oracle: O(n) minimum scan over (when, priority, seq).
 * Too slow to simulate with, obviously correct — which is the point.
 */
class ReferenceQueue
{
  public:
    void
    schedule(Tick when, int tag,
             EventPriority prio = EventPriority::Default)
    {
        EXPECT_GE(when, now_) << "reference misuse: scheduling in past";
        pending_.push_back(
            {when, static_cast<int>(prio), nextSeq_++, tag});
    }

    /** Tick of the earliest pending event, or maxTick when empty. */
    Tick
    nextWhen() const
    {
        Tick best = gpuwalk::sim::maxTick;
        for (const auto &e : pending_)
            best = std::min(best, e.when);
        return best;
    }

    /** Pops and records the minimum; @return its tag, or -1 if empty. */
    int
    runOne(std::vector<std::pair<Tick, int>> &history)
    {
        if (pending_.empty())
            return -1;
        auto best = pending_.begin();
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (std::tie(it->when, it->prio, it->seq)
                < std::tie(best->when, best->prio, best->seq)) {
                best = it;
            }
        }
        now_ = best->when;
        history.emplace_back(best->when, best->tag);
        const int tag = best->tag;
        pending_.erase(best);
        return tag;
    }

    void
    clampTo(Tick limit)
    {
        if (now_ < limit)
            now_ = limit;
    }

    Tick now() const { return now_; }
    std::size_t pending() const { return pending_.size(); }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        int tag;
    };

    std::vector<Entry> pending_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** A rearm the real queue already performed, waiting to be replayed
 *  into the reference when the reference executes the parent. */
struct RearmPlan
{
    Tick delay;
    EventPriority prio;
    int childTag;
};

/**
 * Drives both queues through one random interleaving and compares
 * histories exactly. Delays are drawn to stress every tier: zero
 * (same-tick), near (in-window), the window boundary itself, and far
 * future (overflow + wraparound after migration).
 *
 * Rearm mirroring is causal: when the real queue executes a parent
 * whose callback reschedules, the child's parameters are recorded as a
 * plan, and the reference schedules its copy of the child only when it
 * pops its copy of the parent. Mirroring at real-queue execution time
 * instead would let the reference run a same-tick Early child *before*
 * the parent's same-tick successors — an order no causal queue can
 * produce. Because the reference pops in the same order the real queue
 * executed (that is the property under test), the schedule-call order
 * — and therefore relative sequence order — stays identical on both
 * sides.
 */
void
fuzzOnce(std::uint32_t seed, bool rescheduleFromCallback)
{
    std::mt19937 rng(seed);
    EventQueue eq;
    ReferenceQueue ref;
    std::vector<std::pair<Tick, int>> got;
    std::vector<std::pair<Tick, int>> want;
    std::map<int, RearmPlan> plans; // parent tag -> pending mirror

    auto draw_delay = [&rng]() -> Tick {
        switch (rng() % 8) {
          case 0: return 0;
          case 1: return rng() % 4;
          case 2: return rng() % 1000;
          case 3: return rng() % kWindow;
          case 4: return kWindow - 1 + rng() % 3; // straddle boundary
          case 5: return kWindow + rng() % kWindow;
          case 6: return kWindow * (2 + rng() % 6) + rng() % 97;
          default: return 25000 + rng() % 500; // an IOMMU-ish hop
        }
    };
    auto draw_prio = [&rng] {
        switch (rng() % 4) {
          case 0: return EventPriority::Early;
          case 1: return EventPriority::Late;
          default: return EventPriority::Default;
        }
    };

    int next_tag = 0;
    // Schedules tag on the real queue only; mirror_fresh pairs it on
    // the reference for top-level schedules, plans do it for rearms.
    auto schedule_eq = [&](auto &&self, Tick when,
                           EventPriority prio) -> int {
        const int tag = next_tag++;
        const bool rearm = rescheduleFromCallback && rng() % 4 == 0;
        const Tick rearm_delay = draw_delay();
        const EventPriority rearm_prio = draw_prio();
        eq.schedule(when, [&, tag, rearm, rearm_delay, rearm_prio] {
            got.emplace_back(eq.now(), tag);
            if (rearm) {
                const int child =
                    self(self, eq.now() + rearm_delay, rearm_prio);
                plans.emplace(tag,
                              RearmPlan{rearm_delay, rearm_prio, child});
            }
        }, prio);
        return tag;
    };

    // Pops one reference event and replays any rearm plan its parent
    // left behind. @return false when the reference is empty.
    auto ref_run_one = [&]() -> bool {
        const int tag = ref.runOne(want);
        if (tag < 0)
            return false;
        auto it = plans.find(tag);
        if (it != plans.end()) {
            ref.schedule(ref.now() + it->second.delay,
                         it->second.childTag, it->second.prio);
            plans.erase(it);
        }
        return true;
    };

    for (int round = 0; round < 40; ++round) {
        // Burst of fresh schedules, paired on both queues.
        const unsigned burst = 1 + rng() % 12;
        for (unsigned i = 0; i < burst; ++i) {
            const Tick when = eq.now() + draw_delay();
            const EventPriority prio = draw_prio();
            const int tag = schedule_eq(schedule_eq, when, prio);
            ref.schedule(when, tag, prio);
        }

        // Drain a random amount, in one of three modes.
        switch (rng() % 3) {
          case 0: {
            const std::uint64_t n = rng() % 8;
            for (std::uint64_t k = 0; k < n; ++k) {
                // Sequenced explicitly: the real queue must execute
                // (and record plans) before the reference follows.
                const bool ran_eq = eq.runOne();
                const bool ran_ref = ref_run_one();
                ASSERT_EQ(ran_eq, ran_ref);
            }
            break;
          }
          case 1: {
            // Time-bounded drain: the real queue runs to the limit
            // first, then the reference follows; every plan a
            // below-limit parent recorded is replayed before the
            // reference pops past it.
            const Tick limit = eq.now() + draw_delay();
            const Tick a = eq.run(limit);
            while (ref.nextWhen() <= limit)
                ASSERT_TRUE(ref_run_one());
            ref.clampTo(limit);
            ASSERT_EQ(a, ref.now());
            break;
          }
          default: {
            const bool ran_eq = eq.runOne();
            const bool ran_ref = ref_run_one();
            ASSERT_EQ(ran_eq, ran_ref);
            break;
          }
        }
        ASSERT_EQ(got, want) << "histories diverged in round " << round
                             << " (seed " << seed << ")";
        ASSERT_EQ(eq.pending(), ref.pending());
        ASSERT_EQ(eq.now(), ref.now());
    }

    // Full drain must finish in perfect agreement.
    while (eq.runOne())
        ASSERT_TRUE(ref_run_one());
    ASSERT_FALSE(ref_run_one());
    ASSERT_EQ(got, want) << "final histories diverged (seed " << seed
                         << ")";
    EXPECT_TRUE(plans.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.overflowPending(), 0u);
}

TEST(CalendarQueueFuzz, MatchesReferenceAcrossSeeds)
{
    for (std::uint32_t seed = 1; seed <= 12; ++seed)
        fuzzOnce(seed, /*rescheduleFromCallback=*/false);
}

TEST(CalendarQueueFuzz, MatchesReferenceWithCallbackReschedules)
{
    for (std::uint32_t seed = 100; seed <= 112; ++seed)
        fuzzOnce(seed, /*rescheduleFromCallback=*/true);
}

TEST(CalendarQueue, SameTickFifoAcrossTiers)
{
    // Seq ordering must survive migration: events scheduled *later*
    // but near-future share a tick with an earlier far-future event
    // once time advances — the migrated event still runs first (lower
    // seq), even though it reaches the bucket second.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = kWindow + 50;
    eq.schedule(target, [&] { order.push_back(1); }); // overflow tier
    EXPECT_EQ(eq.overflowPending(), 1u);

    // Advance into the window so `target` becomes bucket-resident.
    eq.schedule(100, [&] {
        eq.schedule(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CalendarQueue, PriorityBeatsSeqAfterMigration)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick target = kWindow + 50;
    eq.schedule(target, [&] { order.push_back(2); }); // low seq, Default
    eq.schedule(100, [&] {
        eq.schedule(target, [&] { order.push_back(1); },
                    EventPriority::Early);
        eq.schedule(target, [&] { order.push_back(3); },
                    EventPriority::Late);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CalendarQueue, BucketWraparoundKeepsTickOrder)
{
    // Ticks t and t + windowTicks map to the same bucket index; the
    // two-tier split must keep them apart and in time order.
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick base : {Tick(17), Tick(17) + kWindow, Tick(17) + 2 * kWindow})
        eq.schedule(base, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 17u);
    EXPECT_EQ(fired[1], 17u + kWindow);
    EXPECT_EQ(fired[2], 17u + 2 * kWindow);
}

TEST(CalendarQueue, RunLimitStopsInsideTheOverflowGap)
{
    // limit falls between the drained window and a far-future event:
    // run(limit) must not execute the far event, and now() must land
    // exactly on the limit.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(kWindow * 4, [&] { ++fired; });
    EXPECT_EQ(eq.run(kWindow * 2), kWindow * 2);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(CalendarQueue, DrainAfterLimitClampKeepsWindowConsistent)
{
    // Regression guard for the mixed-tick-bucket hazard: clamp now()
    // forward with run(limit), then schedule fresh events whose bucket
    // indices collide with pre-clamp residents modulo the window.
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(kWindow + 5, [&] { fired.push_back(eq.now()); });
    eq.run(10); // clamps now to 10; resident stays pending
    eq.schedule(15, [&] { fired.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{15, kWindow + 5}));
}

TEST(CalendarQueue, ManyEventsOneTickStaysFifoAtScale)
{
    EventQueue eq;
    std::vector<int> order;
    constexpr int n = 4096; // forces pool growth past several slabs
    for (int i = 0; i < n; ++i)
        eq.schedule(123, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    EXPECT_EQ(eq.executed(), static_cast<std::uint64_t>(n));
}

} // namespace
