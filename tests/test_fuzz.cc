/**
 * @file
 * Randomized reference-model tests: drive each stateful structure
 * with thousands of random operations and compare against a trivially
 * correct model (std::map / sorted vector). Seeds are fixed, so
 * failures reproduce.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/pending_walk.hh"
#include "mem/backing_store.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "tlb/set_assoc_tlb.hh"
#include "vm/address_space.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;

TEST(FuzzEventQueue, MatchesSortedReference)
{
    sim::Rng rng(101);
    sim::EventQueue eq;
    std::vector<std::pair<sim::Tick, int>> expected;
    std::vector<std::pair<sim::Tick, int>> observed;

    // Random schedule times; equal times must preserve insert order,
    // which a stable sort of the reference reproduces.
    for (int i = 0; i < 5000; ++i) {
        const sim::Tick when = rng.below(1000);
        expected.emplace_back(when, i);
        eq.schedule(when, [&observed, when, i] {
            observed.emplace_back(when, i);
        });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    eq.run();
    EXPECT_EQ(observed, expected);
}

TEST(FuzzBackingStore, MatchesByteMap)
{
    sim::Rng rng(202);
    mem::BackingStore store;
    std::map<Addr, std::uint8_t> reference;

    for (int i = 0; i < 20000; ++i) {
        // Random 1-8 byte op within a random frame, no straddling.
        const Addr frame = rng.below(64) * mem::pageSize;
        const unsigned size = 1u << rng.below(4);
        const Addr offset =
            rng.below(mem::pageSize / size) * size;
        const Addr addr = frame + offset;
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            store.write(addr, value, size);
            for (unsigned b = 0; b < size; ++b) {
                reference[addr + b] =
                    static_cast<std::uint8_t>(value >> (8 * b));
            }
        } else {
            const std::uint64_t got = store.read(addr, size);
            std::uint64_t want = 0;
            for (unsigned b = 0; b < size; ++b) {
                auto it = reference.find(addr + b);
                const std::uint64_t byte =
                    it == reference.end() ? 0 : it->second;
                want |= byte << (8 * b);
            }
            ASSERT_EQ(got, want) << "at " << addr << " size " << size;
        }
    }
}

TEST(FuzzTlb, NeverReturnsAWrongTranslation)
{
    // The TLB may evict (forget), but a hit must always return what
    // was last inserted for that page.
    sim::Rng rng(303);
    tlb::SetAssocTlb tlb({"fuzz", 64, 4});
    std::map<Addr, Addr> reference;

    for (int i = 0; i < 30000; ++i) {
        const Addr va = rng.below(512) << mem::pageShift;
        if (rng.chance(0.4)) {
            const Addr pa = rng.below(1u << 20) << mem::pageShift;
            tlb.insert(va, pa);
            reference[va] = pa;
        } else if (rng.chance(0.1)) {
            tlb.invalidate(va);
            reference.erase(va);
        } else {
            auto hit = tlb.lookup(va);
            if (hit) {
                auto it = reference.find(va);
                ASSERT_NE(it, reference.end())
                    << "hit for never-inserted page " << va;
                ASSERT_EQ(*hit, it->second) << "stale mapping for "
                                            << va;
            }
        }
    }
    EXPECT_LE(tlb.population(), 64u);
}

TEST(FuzzTlb, MixedPageSizesStayConsistent)
{
    sim::Rng rng(404);
    tlb::SetAssocTlb tlb({"fuzz2m", 64, 8});
    std::map<Addr, Addr> small_ref;   // va_page -> pa_page
    std::map<Addr, Addr> large_ref;   // 2MB region -> 2MB base

    for (int i = 0; i < 20000; ++i) {
        const Addr region = rng.below(32) << 21;
        const Addr va = region + (rng.below(512) << mem::pageShift);
        const double dice = rng.uniform();
        if (dice < 0.25) {
            const Addr pa = rng.below(1u << 16) << mem::pageShift;
            tlb.insert(va, pa, false);
            small_ref[va] = pa;
        } else if (dice < 0.4) {
            const Addr base = rng.below(1u << 8) << 21;
            tlb.insert(va, base, true);
            large_ref[region] = base;
        } else {
            auto hit = tlb.lookupEntry(va);
            if (!hit)
                continue;
            if (!hit->largePage) {
                auto it = small_ref.find(va);
                ASSERT_NE(it, small_ref.end());
                ASSERT_EQ(hit->paPage, it->second);
            } else {
                auto it = large_ref.find(region);
                ASSERT_NE(it, large_ref.end());
                ASSERT_EQ(hit->paPage,
                          it->second
                              | (va & vm::largePageMask
                                 & ~(mem::pageSize - 1)));
            }
        }
    }
}

TEST(FuzzPageTable, RandomMapTranslateAgree)
{
    sim::Rng rng(505);
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(8) << 30};
    vm::PageTable table(store, frames);
    std::map<Addr, Addr> reference;

    for (int i = 0; i < 5000; ++i) {
        // Spread VAs across several PML4/PDPT subtrees.
        const Addr va = (rng.below(4) << 39) | (rng.below(4) << 30)
                        | (rng.below(16) << 21)
                        | (rng.below(64) << mem::pageShift);
        if (rng.chance(0.6)) {
            const Addr pa = frames.allocateFrame();
            table.map(va, pa);
            reference[va] = pa;
        } else {
            const Addr probe = va | rng.below(mem::pageSize);
            auto got = table.translate(probe);
            auto it = reference.find(va);
            if (it == reference.end()) {
                ASSERT_FALSE(got.has_value())
                    << "phantom mapping at " << probe;
            } else {
                ASSERT_TRUE(got.has_value());
                ASSERT_EQ(*got,
                          it->second | (probe & (mem::pageSize - 1)));
            }
        }
    }
}

TEST(FuzzWalkBuffer, ExtractPreservesTheMultiset)
{
    sim::Rng rng(606);
    core::WalkBuffer buf(128);
    std::multiset<std::uint64_t> reference; // seqs
    std::uint64_t next_seq = 0;

    for (int i = 0; i < 30000; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            core::PendingWalk w;
            w.seq = next_seq++;
            w.request.instruction = rng.below(32);
            reference.insert(w.seq);
            buf.insert(std::move(w));
        } else {
            const std::size_t idx = rng.below(buf.size());
            const auto w = buf.extract(idx);
            auto it = reference.find(w.seq);
            ASSERT_NE(it, reference.end());
            reference.erase(it);
        }
        ASSERT_EQ(buf.size(), reference.size());
        if (!buf.empty()) {
            ASSERT_EQ(buf.at(buf.oldestIndex()).seq,
                      *reference.begin());
        }
    }
}

} // namespace
