/**
 * @file
 * Unit tests for DRAM address mapping and the FR-FCFS controller.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/dram.hh"
#include "mem/dram_controller.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::mem;

TEST(DramAddressMapper, InterleavesLinesAcrossChannels)
{
    DramConfig cfg;
    DramAddressMapper mapper(cfg);
    const auto a = mapper.decode(0);
    const auto b = mapper.decode(cacheLineSize);
    EXPECT_NE(a.channel, b.channel);
}

TEST(DramAddressMapper, DecodeIsWithinBounds)
{
    DramConfig cfg;
    DramAddressMapper mapper(cfg);
    for (Addr addr = 0; addr < Addr(1) << 24; addr += 4096 + 64) {
        const auto d = mapper.decode(addr);
        EXPECT_LT(d.channel, cfg.channels);
        EXPECT_LT(d.rank, cfg.ranksPerChannel);
        EXPECT_LT(d.bank, cfg.banksPerRank);
        EXPECT_LT(d.column, cfg.rowBytes / cacheLineSize);
    }
}

TEST(DramAddressMapper, DistinctAddressesDistinctCoordinates)
{
    DramConfig cfg;
    DramAddressMapper mapper(cfg);
    std::set<std::tuple<unsigned, unsigned, std::uint64_t,
                        std::uint64_t>>
        seen;
    for (Addr addr = 0; addr < Addr(1) << 20; addr += cacheLineSize) {
        const auto d = mapper.decode(addr);
        auto key = std::make_tuple(d.channel,
                                   mapper.flatBank(d), d.row, d.column);
        EXPECT_TRUE(seen.insert(key).second)
            << "aliased address " << addr;
    }
}

struct ControllerFixture : public ::testing::Test
{
    sim::EventQueue eq;
    DramConfig cfg;
    std::unique_ptr<DramController> ctrl;

    void
    SetUp() override
    {
        ctrl = std::make_unique<DramController>(eq, cfg);
    }

    /** Issues a read and returns its completion tick. */
    sim::Tick
    readAt(Addr addr)
    {
        sim::Tick done = 0;
        MemoryRequest req;
        req.addr = addr;
        req.onComplete = [&] { done = eq.now(); };
        ctrl->access(std::move(req));
        eq.run();
        return done;
    }
};

TEST_F(ControllerFixture, SingleReadCompletesWithClosedBankLatency)
{
    const sim::Tick done = readAt(0);
    // Closed bank: tRCD + tCL + tBURST.
    EXPECT_EQ(done, cfg.rcd() + cfg.cl() + cfg.burst());
    EXPECT_EQ(ctrl->reads(), 1u);
    EXPECT_EQ(ctrl->rowMisses(), 1u);
}

TEST_F(ControllerFixture, RowHitIsFasterThanConflict)
{
    // First access opens the row.
    readAt(0);
    // Same row, next column: row hit. The column stride covers all
    // channel/bank/rank bits below the column bits.
    const Addr col_stride = cacheLineSize * cfg.channels
                            * cfg.banksPerRank * cfg.ranksPerChannel;
    const sim::Tick t0 = eq.now();
    MemoryRequest hit;
    hit.addr = col_stride; // same bank, same row, next column
    sim::Tick hit_done = 0;
    hit.onComplete = [&] { hit_done = eq.now(); };
    ctrl->access(std::move(hit));
    eq.run();
    const sim::Tick hit_lat = hit_done - t0;

    // Different row, same bank: conflict.
    const sim::Tick t1 = eq.now();
    MemoryRequest conf;
    conf.addr = cfg.rowBytes * cfg.channels * cfg.banksPerRank
                * cfg.ranksPerChannel;
    sim::Tick conf_done = 0;
    conf.onComplete = [&] { conf_done = eq.now(); };
    ctrl->access(std::move(conf));
    eq.run();
    const sim::Tick conf_lat = conf_done - t1;

    EXPECT_LT(hit_lat, conf_lat);
    EXPECT_GE(ctrl->rowHits(), 1u);
    EXPECT_GE(ctrl->rowConflicts(), 1u);
}

TEST_F(ControllerFixture, BankParallelismOverlapsAccesses)
{
    // Two reads to different banks of one channel should overlap:
    // total time far less than 2x a serial access.
    std::vector<sim::Tick> done;
    for (int i = 0; i < 2; ++i) {
        MemoryRequest req;
        // Same channel (stride channels*lineSize), different banks.
        req.addr = Addr(i) * cfg.channels * cacheLineSize;
        req.onComplete = [&] { done.push_back(eq.now()); };
        ctrl->access(std::move(req));
    }
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    const sim::Tick serial =
        2 * (cfg.rcd() + cfg.cl() + cfg.burst());
    EXPECT_LT(done.back(), serial);
}

TEST_F(ControllerFixture, FrFcfsPrefersRowHits)
{
    // Occupy bank 0 and open row 0 (do not drain the queue yet), so
    // the two requests below are both pending when the bank frees.
    MemoryRequest opener;
    opener.addr = 0;
    ctrl->access(std::move(opener));
    // Enqueue a conflict (other row, bank 0) first, then a row hit.
    std::vector<int> order;
    MemoryRequest conflict;
    conflict.addr = cfg.rowBytes * cfg.channels * cfg.banksPerRank
                    * cfg.ranksPerChannel;
    conflict.onComplete = [&] { order.push_back(1); };
    MemoryRequest hit;
    hit.addr = cacheLineSize * cfg.channels * cfg.banksPerRank
               * cfg.ranksPerChannel; // row 0, bank 0, col 1
    hit.onComplete = [&] { order.push_back(2); };
    ctrl->access(std::move(conflict));
    ctrl->access(std::move(hit));
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    // The row hit (2) completes before the conflict (1).
    EXPECT_EQ(order.front(), 2);
}

TEST_F(ControllerFixture, WritesAreCountedSeparately)
{
    MemoryRequest w;
    w.addr = 128;
    w.write = true;
    ctrl->access(std::move(w));
    eq.run();
    EXPECT_EQ(ctrl->writes(), 1u);
    EXPECT_EQ(ctrl->reads(), 0u);
}

TEST_F(ControllerFixture, PageWalkRequesterIsAttributed)
{
    MemoryRequest r;
    r.addr = 64;
    r.requester = Requester::PageWalk;
    ctrl->access(std::move(r));
    eq.run();
    EXPECT_EQ(ctrl->pageWalkAccesses(), 1u);
}

TEST_F(ControllerFixture, ManyRequestsAllComplete)
{
    unsigned completed = 0;
    for (unsigned i = 0; i < 500; ++i) {
        MemoryRequest req;
        req.addr = Addr(i) * 4096 + (i % 7) * cacheLineSize;
        req.write = (i % 3) == 0;
        req.onComplete = [&] { ++completed; };
        ctrl->access(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 500u);
    EXPECT_EQ(ctrl->reads() + ctrl->writes(), 500u);
}



TEST_F(ControllerFixture, RefreshClosesRowsAndDelaysCommands)
{
    // Open a row early, then access the same row after a refresh
    // boundary: the row must read as closed (a miss, not a hit).
    readAt(0);
    EXPECT_EQ(ctrl->rowMisses(), 1u);

    // Jump time past the first refresh of rank 0.
    eq.schedule(cfg.tREFI + cfg.tRFC + 1000, [] {});
    eq.run();

    readAt(0);
    EXPECT_EQ(ctrl->rowHits(), 0u);
    EXPECT_EQ(ctrl->rowMisses(), 2u);
}

TEST_F(ControllerFixture, AccessInsideRefreshWindowIsDelayed)
{
    // Land a request exactly at a refresh boundary of rank 0: its
    // completion must be pushed past tRFC.
    sim::Tick done = 0;
    eq.schedule(cfg.tREFI, [&] {
        MemoryRequest req;
        req.addr = 0;
        req.onComplete = [&] { done = eq.now(); };
        ctrl->access(std::move(req));
    });
    eq.run();
    EXPECT_GE(done, cfg.tREFI + cfg.tRFC);
    EXPECT_GE(ctrl->stats().name().size(), 1u);
}

TEST_F(ControllerFixture, RefreshDisabledHasNoWindows)
{
    cfg.enableRefresh = false;
    ctrl = std::make_unique<DramController>(eq, cfg);
    sim::Tick done = 0;
    eq.schedule(cfg.tREFI, [&] {
        MemoryRequest req;
        req.addr = 0;
        req.onComplete = [&] { done = eq.now(); };
        ctrl->access(std::move(req));
    });
    eq.run();
    EXPECT_LT(done, cfg.tREFI + cfg.tRFC);
}

} // namespace
