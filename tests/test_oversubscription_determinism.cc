/**
 * @file
 * Demand-paging determinism differential tests and faulting-run golden
 * digests.
 *
 * Far faults are the hardest state the parallel domain executor has
 * seen: a walk parks in the IOMMU domain, the GMMU batches and
 * services it tens of thousands of ticks later, and the re-entered
 * walk re-arbitrates against fresh traffic — all of it on the IOMMU
 * timeline. These tests run reference oversubscribed points across
 * --sim-threads {1, 2, 4} and concurrent same-process runs (the
 * --jobs axis), demanding byte-identical trace digests and stats JSON
 * with the conservation auditor (GMMU invariants included) on
 * throughout. A randomized sweep then fuzzes the config cross-product
 * the fixed points cannot cover. Two faulting reference points are
 * pinned in tests/golden/digests.json next to the scheduler-grid and
 * tenant entries.
 *
 * Regenerating the faulting goldens (after an intentional behaviour
 * change; the merge-write preserves every other key):
 *
 *     GPUWALK_UPDATE_GOLDEN=1 build/tests/gpuwalk_tests \
 *         --gtest_filter='OversubGolden.*'
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "golden_store.hh"
#include "sim/rng.hh"
#include "system/system.hh"
#include "trace/digest.hh"
#include "workload/workload.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::testing::GoldenEntry;

/** A reference oversubscribed point: workload, scheduler, GMMU knobs. */
struct OversubPoint
{
    std::string key; ///< golden-store key, e.g. "oversub/mvt-fcfs-1.00"
    std::string workload;
    core::SchedulerKind scheduler;
    double ratio;
    vm::FaultOrder order;
    vm::EvictPolicy evict;
};

/**
 * The two committed reference points. The 1.0 point isolates
 * cold-start fault-in (no eviction is possible); the tight point runs
 * far below the touched working set, so pages churn through
 * evict/re-fault cycles for the whole run.
 */
const std::vector<OversubPoint> referencePoints{
    {"oversub/mvt-fcfs-1.00", "MVT", core::SchedulerKind::Fcfs, 1.0,
     vm::FaultOrder::Fcfs, vm::EvictPolicy::Lru},
    {"oversub/gev-simt-tight", "GEV", core::SchedulerKind::SimtAware,
     0.04, vm::FaultOrder::Sjf, vm::EvictPolicy::Random},
};

struct OversubRun
{
    system::RunStats stats;
    std::string statsJson;
};

OversubRun
runPoint(const OversubPoint &point, unsigned sim_threads)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = point.scheduler;
    cfg.simThreads = sim_threads;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;
    cfg.gmmu.enabled = true;
    cfg.gmmu.oversubscription = point.ratio;
    cfg.gmmu.order = point.order;
    cfg.gmmu.evict = point.evict;
    // Shrunk latencies: the determinism property is about event
    // ordering, not about simulating a realistic host round trip, and
    // smaller waits keep the differential runs quick.
    cfg.gmmu.faultLatency = 20'000;
    cfg.gmmu.migrationLatency = 1'000;
    cfg.gmmu.batchSize = 8;

    workload::WorkloadParams params;
    params.wavefronts = 8;
    params.instructionsPerWavefront = 6;
    params.footprintScale = 0.02;
    params.seed = 23;

    system::System sys(cfg);
    sys.loadBenchmark(point.workload, params);

    OversubRun out;
    out.stats = sys.run();
    out.statsJson = exp::statsJsonString(out.stats);
    return out;
}

/** Engine-infrastructure counters that legitimately vary with the
 *  thread count (see test_tenant_determinism.cc). */
std::string
scrubEngineCounters(std::string s)
{
    for (const std::string key :
         {"\"events_executed\": ", "\"checks\": "}) {
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            const std::size_t begin = pos + key.size();
            std::size_t end = begin;
            while (end < s.size() && s[end] >= '0' && s[end] <= '9')
                ++end;
            s.replace(begin, end - begin, "_");
            pos = begin;
        }
    }
    return s;
}

GoldenEntry
toEntry(const system::RunStats &stats)
{
    GoldenEntry e;
    e.digest = trace::digestHex(stats.traceDigest);
    e.runtimeTicks = stats.runtimeTicks;
    e.instructions = stats.instructions;
    e.translationRequests = stats.translationRequests;
    e.walkRequests = stats.walkRequests;
    e.walksCompleted = stats.walksCompleted;
    e.traceEvents = stats.traceEvents;
    return e;
}

TEST(OversubDeterminism, BitIdenticalAcrossSimThreads)
{
    for (const auto &point : referencePoints) {
        const auto serial = runPoint(point, 1);
        ASSERT_TRUE(serial.stats.traced);
        ASSERT_NE(serial.stats.traceDigest, 0u);
        ASSERT_EQ(serial.stats.traceDropped, 0u);
        ASSERT_TRUE(serial.stats.audited);
        EXPECT_EQ(serial.stats.auditViolations, 0u) << point.key;
        // The point must actually fault (and, when tight, evict) or
        // the differential proves nothing.
        ASSERT_TRUE(serial.stats.gmmu.enabled);
        ASSERT_GT(serial.stats.gmmu.faultsRaised, 0u) << point.key;
        if (point.ratio < 1.0) {
            ASSERT_GT(serial.stats.gmmu.pagesEvicted, 0u)
                << point.key << ": cap never bound; tighten the ratio";
        } else {
            EXPECT_EQ(serial.stats.gmmu.pagesEvicted, 0u) << point.key;
        }

        for (const unsigned threads : {2u, 4u}) {
            const auto parallel = runPoint(point, threads);
            EXPECT_EQ(parallel.stats.traceDigest,
                      serial.stats.traceDigest)
                << point.key << " diverged at --sim-threads "
                << threads;
            EXPECT_EQ(parallel.stats.auditViolations, 0u);
            EXPECT_EQ(scrubEngineCounters(parallel.statsJson),
                      scrubEngineCounters(serial.statsJson))
                << point.key << " at --sim-threads " << threads;
        }
    }
}

TEST(OversubDeterminism, BitIdenticalAcrossConcurrentRuns)
{
    // The --jobs axis: two faulting Systems in the same process at
    // once (each itself parallel) share nothing but the heap.
    const auto &point = referencePoints.back(); // the evicting point
    const auto reference = runPoint(point, 1);

    std::vector<OversubRun> concurrent(2);
    {
        std::thread a([&] { concurrent[0] = runPoint(point, 2); });
        std::thread b([&] { concurrent[1] = runPoint(point, 2); });
        a.join();
        b.join();
    }
    for (const auto &run : concurrent) {
        EXPECT_EQ(run.stats.traceDigest, reference.stats.traceDigest);
        EXPECT_EQ(scrubEngineCounters(run.statsJson),
                  scrubEngineCounters(reference.statsJson));
        EXPECT_EQ(run.stats.auditViolations, 0u);
    }
}

TEST(OversubDeterminism, RandomizedConfigsStayBitIdentical)
{
    // Fuzz the corner of the config cross-product the fixed points
    // miss: random workload/scheduler/ratio/order/evict/seed, serial
    // vs 4 threads, auditor on.
    const std::vector<std::string> apps{"MVT", "GEV", "KMN", "ATX"};
    const std::vector<core::SchedulerKind> scheds{
        core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware,
        core::SchedulerKind::OldestJob};
    sim::Rng rng(20260807);

    for (int trial = 0; trial < 3; ++trial) {
        OversubPoint point;
        point.key = "fuzz-trial-" + std::to_string(trial);
        point.workload = apps[rng.below(apps.size())];
        point.scheduler = scheds[rng.below(scheds.size())];
        point.ratio = rng.below(2) == 0
                          ? 1.0
                          : 0.03 + 0.01 * static_cast<double>(
                                rng.below(5));
        point.order = rng.below(2) == 0 ? vm::FaultOrder::Fcfs
                                        : vm::FaultOrder::Sjf;
        point.evict = rng.below(2) == 0 ? vm::EvictPolicy::Lru
                                        : vm::EvictPolicy::Random;

        const auto serial = runPoint(point, 1);
        ASSERT_GT(serial.stats.gmmu.faultsRaised, 0u);
        EXPECT_EQ(serial.stats.auditViolations, 0u)
            << point.key << " " << point.workload;

        const auto parallel = runPoint(point, 4);
        EXPECT_EQ(parallel.stats.traceDigest, serial.stats.traceDigest)
            << point.key << ": " << point.workload << "/"
            << core::toString(point.scheduler) << " ratio "
            << point.ratio;
        EXPECT_EQ(scrubEngineCounters(parallel.statsJson),
                  scrubEngineCounters(serial.statsJson))
            << point.key;
    }
}

TEST(OversubGolden, FaultingRunsMatchCommittedDigests)
{
    std::map<std::string, GoldenEntry> computed;
    for (const auto &point : referencePoints)
        computed[point.key] = toEntry(runPoint(point, 1).stats);

    if (gpuwalk::testing::updateRequested()) {
        ASSERT_TRUE(gpuwalk::testing::writeGoldensMerged(computed))
            << "cannot write " << gpuwalk::testing::goldenPath();
        GTEST_SKIP() << "oversubscription goldens rewritten at "
                     << gpuwalk::testing::goldenPath();
    }

    GPUWALK_EXPECT_GOLDENS_MATCH(computed);
}

} // namespace
