/**
 * @file
 * Unit tests for the per-instruction walk instrumentation that feeds
 * the paper's Figures 3, 5, 6, 10 and 11.
 */

#include <gtest/gtest.h>

#include "iommu/walk_metrics.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::iommu;

TEST(WalkMetrics, EmptySummary)
{
    WalkMetrics m;
    const auto s = m.summarize();
    EXPECT_EQ(s.instructionsWithWalks, 0u);
    EXPECT_EQ(s.totalWalks, 0u);
    EXPECT_DOUBLE_EQ(s.interleavedFraction, 0.0);
}

TEST(WalkMetrics, SingleWalkInstructionIsNotMultiWalk)
{
    WalkMetrics m;
    m.onArrival(1);
    m.onDispatch(1);
    m.onComplete(1, 100, 500, 2);
    const auto s = m.summarize();
    EXPECT_EQ(s.instructionsWithWalks, 1u);
    EXPECT_EQ(s.multiWalkInstructions, 0u);
    EXPECT_EQ(s.totalWalks, 1u);
    EXPECT_EQ(s.totalMemAccesses, 2u);
}

TEST(WalkMetrics, ContiguousDispatchIsNotInterleaved)
{
    WalkMetrics m;
    for (int i = 0; i < 3; ++i)
        m.onArrival(1);
    for (int i = 0; i < 3; ++i)
        m.onDispatch(1);
    for (int i = 0; i < 3; ++i)
        m.onComplete(1, 0, 100 + i, 1);
    const auto s = m.summarize();
    EXPECT_EQ(s.multiWalkInstructions, 1u);
    EXPECT_EQ(s.interleavedInstructions, 0u);
}

TEST(WalkMetrics, ForeignDispatchBetweenSiblingsIsInterleaved)
{
    WalkMetrics m;
    m.onArrival(1);
    m.onArrival(1);
    m.onArrival(2);
    m.onDispatch(1);
    m.onDispatch(2); // interleaves instruction 1
    m.onDispatch(1);
    m.onComplete(1, 0, 10, 1);
    m.onComplete(1, 0, 20, 1);
    m.onComplete(2, 0, 15, 1);
    const auto s = m.summarize();
    EXPECT_EQ(s.multiWalkInstructions, 1u);
    EXPECT_EQ(s.interleavedInstructions, 1u);
    EXPECT_DOUBLE_EQ(s.interleavedFraction, 1.0);
}

TEST(WalkMetrics, FirstAndLastCompletionLatencies)
{
    WalkMetrics m;
    m.onArrival(1);
    m.onArrival(1);
    m.onDispatch(1);
    m.onDispatch(1);
    // First completes at 150 (latency 50), last at 400 (latency 300).
    m.onComplete(1, 100, 150, 1);
    m.onComplete(1, 100, 400, 1);
    const auto s = m.summarize();
    EXPECT_DOUBLE_EQ(s.avgFirstCompletedLatency, 50.0);
    EXPECT_DOUBLE_EQ(s.avgLastCompletedLatency, 300.0);
    EXPECT_DOUBLE_EQ(s.avgLatencyGap, 250.0);
}

TEST(WalkMetrics, CompletionOrderIndependent)
{
    WalkMetrics m;
    m.onArrival(1);
    m.onArrival(1);
    m.onDispatch(1);
    m.onDispatch(1);
    // Report the later completion first.
    m.onComplete(1, 0, 400, 1);
    m.onComplete(1, 0, 150, 1);
    const auto s = m.summarize();
    EXPECT_DOUBLE_EQ(s.avgFirstCompletedLatency, 150.0);
    EXPECT_DOUBLE_EQ(s.avgLastCompletedLatency, 400.0);
}

TEST(WalkMetrics, WorkBucketsFollowFig3Bounds)
{
    WalkMetrics m;
    // Instruction 1: 10 accesses -> bucket 0 (1-16).
    m.onArrival(1);
    m.onDispatch(1);
    m.onComplete(1, 0, 1, 10);
    // Instruction 2: 2 walks x 32 accesses = 64 -> bucket 3 (49-64).
    m.onArrival(2);
    m.onArrival(2);
    m.onDispatch(2);
    m.onDispatch(2);
    m.onComplete(2, 0, 1, 4);
    m.onComplete(2, 0, 2, 60);
    // Instruction 3: 100 accesses -> bucket 5 (81-256).
    m.onArrival(3);
    m.onDispatch(3);
    m.onComplete(3, 0, 1, 100);

    const auto s = m.summarize();
    ASSERT_EQ(s.workBucketCounts.size(), 7u);
    EXPECT_EQ(s.workBucketCounts[0], 1u);
    EXPECT_EQ(s.workBucketCounts[3], 1u);
    EXPECT_EQ(s.workBucketCounts[5], 1u);
    EXPECT_NEAR(s.workBucketFractions[0], 1.0 / 3.0, 1e-12);
}

TEST(WalkMetrics, FractionsAverageOverMultiWalkOnly)
{
    WalkMetrics m;
    // One single-walk instruction and one multi-walk instruction.
    m.onArrival(1);
    m.onDispatch(1);
    m.onComplete(1, 0, 5, 1);
    m.onArrival(2);
    m.onArrival(2);
    m.onDispatch(2);
    m.onDispatch(2);
    m.onComplete(2, 0, 10, 1);
    m.onComplete(2, 0, 30, 1);
    const auto s = m.summarize();
    EXPECT_EQ(s.instructionsWithWalks, 2u);
    EXPECT_EQ(s.multiWalkInstructions, 1u);
    EXPECT_DOUBLE_EQ(s.avgLatencyGap, 20.0);
}

TEST(WalkMetrics, ResetDropsHistory)
{
    WalkMetrics m;
    m.onArrival(1);
    m.onDispatch(1);
    m.onComplete(1, 0, 1, 1);
    m.reset();
    EXPECT_EQ(m.trackedInstructions(), 0u);
    EXPECT_EQ(m.summarize().instructionsWithWalks, 0u);
}

} // namespace
