/**
 * @file
 * Unit tests for the set-associative timing cache.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::mem;

/** Memory stub with fixed latency that records accesses. */
class StubMemory : public MemoryDevice
{
  public:
    StubMemory(sim::EventQueue &eq, sim::Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    access(MemoryRequest req) override
    {
        if (req.write)
            writes.push_back(req.addr);
        else
            reads.push_back(req.addr);
        eq_.scheduleIn(latency_,
                       [r = std::move(req)]() mutable { r.complete(); });
    }

    std::vector<Addr> reads;
    std::vector<Addr> writes;

  private:
    sim::EventQueue &eq_;
    sim::Tick latency_;
};

struct CacheFixture : public ::testing::Test
{
    sim::EventQueue eq;
    StubMemory below{eq, 100 * 500};
    CacheConfig cfg{"test_cache", 4 * 1024, 4, 64, 500, 500, 8};
    std::unique_ptr<Cache> cache;

    void SetUp() override
    {
        cache = std::make_unique<Cache>(eq, cfg, below);
    }

    sim::Tick
    access(Addr addr, bool write = false)
    {
        sim::Tick done = 0;
        MemoryRequest req;
        req.addr = addr;
        req.write = write;
        req.onComplete = [&] { done = eq.now(); };
        cache->access(std::move(req));
        eq.run();
        return done;
    }
};

TEST_F(CacheFixture, ColdMissGoesBelow)
{
    access(0x1000);
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_EQ(cache->hits(), 0u);
    ASSERT_EQ(below.reads.size(), 1u);
    EXPECT_EQ(below.reads[0], 0x1000u);
}

TEST_F(CacheFixture, SecondAccessHits)
{
    access(0x1000);
    const sim::Tick t0 = eq.now();
    const sim::Tick done = access(0x1040); // different line
    (void)done;
    access(0x1000); // hit
    EXPECT_EQ(cache->hits(), 1u);
    // Hit latency is short.
    sim::Tick start = eq.now();
    const sim::Tick hit_done = access(0x1000);
    EXPECT_EQ(hit_done - start, cfg.hitLatency);
    (void)t0;
}

TEST_F(CacheFixture, SameLineDifferentOffsetHits)
{
    access(0x2000);
    access(0x2030); // same 64B line
    EXPECT_EQ(cache->hits(), 1u);
    EXPECT_EQ(cache->misses(), 1u);
}

TEST_F(CacheFixture, MshrMergesConcurrentMisses)
{
    unsigned completed = 0;
    for (int i = 0; i < 3; ++i) {
        MemoryRequest req;
        req.addr = 0x3000 + Addr(i) * 8; // same line
        req.onComplete = [&] { ++completed; };
        cache->access(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 3u);
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_EQ(cache->mshrMerges(), 2u);
    EXPECT_EQ(below.reads.size(), 1u); // one fill only
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    // Fill one set (4 ways) with writes, then evict.
    // Set index = (addr/64) % 16; keep the same set via 1 KB stride.
    const Addr stride = 64 * 16;
    for (int i = 0; i < 4; ++i)
        access(Addr(i) * stride, /*write=*/true);
    EXPECT_EQ(below.writes.size(), 0u);
    access(Addr(4) * stride, /*write=*/false); // evicts LRU dirty line
    EXPECT_EQ(cache->evictions(), 1u);
    EXPECT_EQ(cache->writebacks(), 1u);
    ASSERT_EQ(below.writes.size(), 1u);
    EXPECT_EQ(below.writes[0], 0u); // the first (LRU) line
}

TEST_F(CacheFixture, LruKeepsRecentlyUsedLines)
{
    const Addr stride = 64 * 16; // same set
    for (int i = 0; i < 4; ++i)
        access(Addr(i) * stride);
    access(0); // touch line 0 -> most recent
    access(Addr(4) * stride); // evicts line 1 (LRU), not 0
    access(0);
    EXPECT_EQ(cache->misses(), 5u); // line 0 still resident
}

TEST_F(CacheFixture, CleanEvictionDoesNotWriteBack)
{
    const Addr stride = 64 * 16;
    for (int i = 0; i < 5; ++i)
        access(Addr(i) * stride);
    EXPECT_EQ(cache->evictions(), 1u);
    EXPECT_EQ(cache->writebacks(), 0u);
}

TEST_F(CacheFixture, FlushAllInvalidates)
{
    access(0x1000);
    cache->flushAll();
    access(0x1000);
    EXPECT_EQ(cache->misses(), 2u);
    EXPECT_EQ(cache->hits(), 0u);
}

TEST_F(CacheFixture, HitRateComputation)
{
    access(0x1000);
    access(0x1000);
    access(0x1000);
    EXPECT_NEAR(cache->hitRate(), 2.0 / 3.0, 1e-12);
}

TEST_F(CacheFixture, WriteMissAllocatesAndMarksDirty)
{
    access(0x7000, /*write=*/true);
    EXPECT_EQ(cache->misses(), 1u);
    // Force its eviction: fill the rest of the set + 1.
    const Addr stride = 64 * 16;
    for (int i = 1; i <= 4; ++i)
        access(0x7000 + Addr(i) * stride);
    EXPECT_EQ(cache->writebacks(), 1u);
}

} // namespace
