/**
 * @file
 * Unit tests for the tick/clock arithmetic.
 */

#include <gtest/gtest.h>

#include "sim/ticks.hh"

namespace {

using namespace gpuwalk::sim;

TEST(Clock, GpuClockIs2GHz)
{
    EXPECT_EQ(gpuClock.period(), 500u);
    EXPECT_EQ(gpuClock.toTicks(1), 500u);
    EXPECT_EQ(gpuClock.toTicks(2'000'000), Tick(1'000'000'000));
}

TEST(Clock, DramClockIsDdr3_1600)
{
    EXPECT_EQ(dramClock.period(), 1250u);
}

TEST(Clock, FromMHz)
{
    EXPECT_EQ(Clock::fromMHz(1000).period(), 1000u);
    EXPECT_EQ(Clock::fromMHz(800).period(), 1250u);
    EXPECT_EQ(Clock::fromMHz(2000).period(), 500u);
}

TEST(Clock, CyclesRoundDown)
{
    Clock c(500);
    EXPECT_EQ(c.toCycles(999), 1u);
    EXPECT_EQ(c.toCycles(1000), 2u);
    EXPECT_EQ(c.toCycles(499), 0u);
}

TEST(Clock, NextEdgeAlignsUp)
{
    Clock c(500);
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 500u);
    EXPECT_EQ(c.nextEdge(500), 500u);
    EXPECT_EQ(c.nextEdge(501), 1000u);
}

TEST(Ticks, Constants)
{
    EXPECT_EQ(ticksPerNs, 1000u);
    EXPECT_EQ(maxTick, ~Tick(0));
}

} // namespace
