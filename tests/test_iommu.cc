/**
 * @file
 * Unit tests for the IOMMU: TLBs, walk buffer, walker pool, overflow
 * handling, and scheduler integration.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hh"
#include "mem/dram_controller.hh"
#include "vm/address_space.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::iommu;
using gpuwalk::mem::Addr;

struct IommuFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    std::unique_ptr<vm::AddressSpace> as;
    std::unique_ptr<mem::DramController> dram;
    std::unique_ptr<Iommu> iommu;
    vm::VaRegion region;

    void
    build(core::SchedulerKind kind, IommuConfig cfg = {})
    {
        as = std::make_unique<vm::AddressSpace>(store, frames);
        region = as->allocate("data", 4 * 1024 * 1024);
        dram = std::make_unique<mem::DramController>(
            eq, mem::DramConfig{});
        iommu = std::make_unique<Iommu>(
            eq, cfg, core::makeScheduler(kind, 1), *dram, store,
            as->pageTable().root());
    }

    /** Issues a translation; does not run the queue. */
    void
    issue(Addr va_page, tlb::InstructionId instr, Addr *out = nullptr)
    {
        tlb::TranslationRequest req;
        req.vaPage = va_page;
        req.instruction = instr;
        req.onComplete = [out](Addr pa, bool) {
            if (out)
                *out = pa;
        };
        iommu->translate(std::move(req));
    }
};

TEST_F(IommuFixture, WalkProducesCorrectTranslation)
{
    build(core::SchedulerKind::Fcfs);
    Addr pa = 0;
    issue(region.base, 1, &pa);
    eq.run();
    EXPECT_EQ(pa, *as->pageTable().translate(region.base));
    EXPECT_EQ(iommu->walkRequests(), 1u);
    EXPECT_EQ(iommu->walksCompleted(), 1u);
    EXPECT_EQ(iommu->inflightWalks(), 0u);
}

TEST_F(IommuFixture, SecondRequestHitsIommuTlb)
{
    build(core::SchedulerKind::Fcfs);
    issue(region.base, 1);
    eq.run();
    Addr pa = 0;
    issue(region.base, 2, &pa);
    eq.run();
    EXPECT_EQ(pa, *as->pageTable().translate(region.base));
    EXPECT_EQ(iommu->walkRequests(), 1u); // no second walk
}

TEST_F(IommuFixture, ManyRequestsAllTranslateCorrectly)
{
    build(core::SchedulerKind::SimtAware);
    std::vector<Addr> results(64, 0);
    for (Addr i = 0; i < 64; ++i)
        issue(region.base + i * mem::pageSize, i / 8, &results[i]);
    eq.run();
    for (Addr i = 0; i < 64; ++i) {
        EXPECT_EQ(results[i], *as->pageTable().translate(
                                  region.base + i * mem::pageSize));
    }
    EXPECT_EQ(iommu->walksCompleted(), 64u);
}

TEST_F(IommuFixture, WalkersRunConcurrently)
{
    IommuConfig cfg;
    cfg.numWalkers = 8;
    build(core::SchedulerKind::Fcfs, cfg);
    // 8 requests together should finish much faster than 8x one walk.
    sim::Tick single_done = 0;
    issue(region.base, 1);
    const sim::Tick t0 = eq.now();
    eq.run();
    single_done = eq.now() - t0;

    as = nullptr;
    build(core::SchedulerKind::Fcfs, cfg); // fresh state
    unsigned done = 0;
    for (Addr i = 0; i < 8; ++i)
        issue(region.base + i * mem::pageSize, i);
    const sim::Tick t1 = eq.now();
    eq.run();
    done = static_cast<unsigned>(eq.now() - t1);
    EXPECT_LT(done, 4 * single_done);
}

TEST_F(IommuFixture, BufferOverflowStillServicesEverything)
{
    IommuConfig cfg;
    cfg.bufferEntries = 4;
    cfg.numWalkers = 1;
    build(core::SchedulerKind::SimtAware, cfg);
    unsigned completed = 0;
    for (Addr i = 0; i < 64; ++i) {
        tlb::TranslationRequest req;
        req.vaPage = region.base + i * mem::pageSize;
        req.instruction = i / 4;
        req.onComplete = [&](Addr, bool) { ++completed; };
        iommu->translate(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 64u);
    EXPECT_EQ(iommu->inflightWalks(), 0u);
    // With 1 walker and a 4-entry buffer, most requests overflowed.
    EXPECT_GT(iommu->stats().name().size(), 0u); // smoke
}

TEST_F(IommuFixture, ScoresAccumulatePerInstruction)
{
    IommuConfig cfg;
    cfg.numWalkers = 1;
    build(core::SchedulerKind::SimtAware, cfg);
    // First request occupies the walker; the rest queue up and are
    // scored on arrival.
    for (Addr i = 0; i < 5; ++i)
        issue(region.base + i * mem::pageSize, /*instr=*/7);
    // Run just past the hop+TLB latency so requests are buffered.
    eq.run(eq.now() + cfg.hopLatency + cfg.tlbLatency
           + 10 * cfg.frontPortPeriod);
    // All buffered siblings share one accumulated score.
    // (The first request went straight to the walker.)
    // We can't inspect the buffer directly, but completion implies the
    // scoring path executed; the dedicated scheduler tests cover the
    // arithmetic. Here we only require it doesn't disturb correctness.
    eq.run();
    EXPECT_EQ(iommu->walksCompleted(), 5u);
}

TEST_F(IommuFixture, MetricsSeeArrivalsDispatchesCompletions)
{
    build(core::SchedulerKind::Fcfs);
    for (Addr i = 0; i < 6; ++i)
        issue(region.base + i * mem::pageSize, /*instr=*/3);
    eq.run();
    const auto s = iommu->metrics().summarize();
    EXPECT_EQ(s.instructionsWithWalks, 1u);
    EXPECT_EQ(s.totalWalks, 6u);
    EXPECT_EQ(s.multiWalkInstructions, 1u);
}

TEST_F(IommuFixture, WalkCacheAbsorbsPteTraffic)
{
    IommuConfig with_cache;
    with_cache.useWalkCache = true;
    build(core::SchedulerKind::Fcfs, with_cache);
    for (Addr i = 0; i < 32; ++i)
        issue(region.base + i * mem::pageSize, i);
    eq.run();
    const auto dram_reads_cached = dram->reads();

    IommuConfig no_cache;
    no_cache.useWalkCache = false;
    build(core::SchedulerKind::Fcfs, no_cache);
    for (Addr i = 0; i < 32; ++i)
        issue(region.base + i * mem::pageSize, i);
    eq.run();
    EXPECT_LT(dram_reads_cached, dram->reads());
    EXPECT_EQ(iommu->walkCache(), nullptr);
}

TEST_F(IommuFixture, PwcShortensLaterWalks)
{
    build(core::SchedulerKind::Fcfs);
    issue(region.base, 1);
    eq.run();
    // Second walk in the same 2MB region: leaf access only.
    issue(region.base + 8 * mem::pageSize, 2);
    eq.run();
    EXPECT_EQ(iommu->pwc().hits(), 1u);
}

} // namespace
