/**
 * @file
 * Tests for the app-fair walk scheduler (multi-program QoS).
 */

#include <gtest/gtest.h>

#include "core/fair_share_scheduler.hh"
#include "system/system.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

PendingWalk
walk(std::uint64_t seq, tlb::InstructionId instr, std::uint32_t app,
     std::uint64_t score = 1)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.request.app = app;
    w.score = score;
    return w;
}

TEST(FairShare, AlternatesBetweenApps)
{
    FairShareScheduler sched;
    WalkBuffer buf(8);
    // App 0 floods; app 1 has a single request.
    buf.insert(walk(0, 10, 0));
    buf.insert(walk(1, 11, 0));
    buf.insert(walk(2, 12, 0));
    buf.insert(walk(3, 20, 1));

    // First grant: app after lastApp_(0) in RR order => app 1.
    auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.app, 1u);
    auto w = buf.extract(idx);
    sched.onDispatch(buf, w);

    // App 1 drained: grant returns to app 0.
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.app, 0u);
}

TEST(FairShare, SjfWithinTheGrantedApp)
{
    FairShareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 10, 1, /*score=*/50));
    buf.insert(walk(1, 11, 1, /*score=*/5));
    const auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 11u);
}

TEST(FairShare, BatchingStaysWithinInstruction)
{
    FairShareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 10, 0));
    buf.insert(walk(1, 10, 0));
    buf.insert(walk(2, 20, 1));

    // Dispatch one walk of instruction 10 (app 0)...
    auto first = sched.selectNext(buf);
    auto w = buf.extract(first);
    const auto first_instr = w.request.instruction;
    sched.onDispatch(buf, w);
    // ...its sibling is batched next, regardless of app rotation.
    if (first_instr == 10) {
        const auto idx = sched.selectNext(buf);
        EXPECT_EQ(buf.at(idx).request.instruction, 10u);
    }
}

TEST(FairShare, SingleAppDegeneratesGracefully)
{
    FairShareScheduler sched;
    WalkBuffer buf(4);
    buf.insert(walk(0, 1, 0, 9));
    buf.insert(walk(1, 2, 0, 3));
    // No batching target yet: picks the cheaper instruction of the
    // only app.
    EXPECT_EQ(buf.at(sched.selectNext(buf)).request.instruction, 2u);
}

TEST(FairShare, EndToEndMultiProgramCompletes)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::FairShare;
    system::System sys(cfg);
    workload::WorkloadParams params;
    params.wavefronts = 12;
    params.instructionsPerWavefront = 8;
    params.footprintScale = 0.03;
    sys.loadBenchmark("MVT", params, 0);
    sys.loadBenchmark("HOT", params, 1);
    const auto stats = sys.run();
    EXPECT_EQ(stats.instructions, 2u * 12u * 8u);
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

TEST(FairShare, ShieldsTheVictimAtLeastAsWellAsFcfs)
{
    workload::WorkloadParams params;
    params.wavefronts = 24;
    params.instructionsPerWavefront = 10;
    params.footprintScale = 0.1;

    auto run_with = [&](core::SchedulerKind kind) {
        auto cfg = system::SystemConfig::baseline();
        cfg.scheduler = kind;
        system::System sys(cfg);
        sys.loadBenchmark("MVT", params, 0);
        sys.loadBenchmark("HOT", params, 1);
        return sys.run().appFinishTicks.at(1); // the victim
    };
    const auto fcfs = run_with(core::SchedulerKind::Fcfs);
    const auto fair = run_with(core::SchedulerKind::FairShare);
    EXPECT_LE(fair, fcfs + fcfs / 10); // no worse than ~10% of FCFS
}

TEST(FairShare, FactoryIntegration)
{
    EXPECT_EQ(toString(SchedulerKind::FairShare), "fair-share");
    EXPECT_EQ(schedulerKindFromString("fair"), SchedulerKind::FairShare);
    auto sched = makeScheduler(SchedulerKind::FairShare);
    ASSERT_NE(sched, nullptr);
    EXPECT_TRUE(sched->needsScores());
}

} // namespace
