/**
 * @file
 * Scheduler-invariant tests asserted over traced walk lifecycles.
 *
 * The paper's headline claims are ordering claims — batching keeps
 * walkers on one instruction, SJF serves cheap instructions first,
 * aging bounds starvation. These tests run the full system with
 * tracing enabled and check each claim per scheduling decision by
 * replaying the event stream, instead of inferring it from end-of-run
 * aggregates. Also home of the golden-trace determinism tests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "exp/report.hh"
#include "exp/runner.hh"
#include "system/system.hh"
#include "trace/digest.hh"

namespace {

using namespace gpuwalk;
using trace::Event;
using trace::EventKind;

/** (instruction, vaPage): unique per in-flight walk. */
using WalkKey = std::pair<std::uint64_t, mem::Addr>;

WalkKey
keyOf(const Event &ev)
{
    return {ev.instruction, ev.vaPage};
}

core::PickReason
reasonOf(const Event &ev)
{
    return static_cast<core::PickReason>(ev.arg0);
}

/** A contended-but-quick workload shape: enough parallel wavefronts
 *  that walks queue up behind the eight walkers. */
workload::WorkloadParams
contendedParams()
{
    workload::WorkloadParams p;
    p.wavefronts = 32;
    p.instructionsPerWavefront = 12;
    p.footprintScale = 0.05;
    p.seed = 7;
    return p;
}

struct TracedRun
{
    std::vector<Event> events;
    system::RunStats stats;
    std::uint64_t overflowed = 0;
    std::uint64_t dropped = 0;
};

TracedRun
runTraced(core::SchedulerKind kind, const std::string &workload = "GEV",
          std::uint64_t aging_threshold = 0)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    cfg.trace.enabled = true;
    // A buffer big enough that nothing lands in the overflow FIFO:
    // the replay below reconstructs the scheduler's candidate set from
    // Enqueued/Scheduled events, which only matches the walk buffer
    // when no walk is parked outside it.
    cfg.iommu.bufferEntries = 1u << 16;
    if (aging_threshold)
        cfg.simt.agingThreshold = aging_threshold;
    system::System sys(cfg);
    sys.loadBenchmark(workload, contendedParams());

    TracedRun out;
    out.stats = sys.run();
    out.overflowed = sys.iommu().overflowed();
    out.dropped = sys.tracer()->dropped();
    out.events = sys.tracer()->snapshot();
    return out;
}

std::uint64_t
countKind(const std::vector<Event> &events, EventKind kind)
{
    std::uint64_t n = 0;
    for (const auto &ev : events)
        n += ev.kind == kind;
    return n;
}

// --- Trace / RunStats agreement ------------------------------------

TEST(TraceInvariants, EventCountsMatchRunStats)
{
    const auto run = runTraced(core::SchedulerKind::SimtAware);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);
    EXPECT_TRUE(run.stats.traced);
    EXPECT_NE(run.stats.traceDigest, 0u);
    EXPECT_EQ(run.stats.traceEvents, run.events.size());

    // Every IOMMU walk request produced exactly one Enqueued event and
    // one WalkDone; every dispatch one Scheduled.
    EXPECT_EQ(countKind(run.events, EventKind::Enqueued),
              run.stats.walkRequests);
    EXPECT_EQ(countKind(run.events, EventKind::WalkDone),
              run.stats.walksCompleted);
    EXPECT_EQ(countKind(run.events, EventKind::Scheduled),
              run.stats.walkRequests);

    // The latency histograms sampled once per dispatch / completion.
    EXPECT_EQ(run.stats.latency.queueWait.samples,
              run.stats.walkRequests);
    EXPECT_EQ(run.stats.latency.walkerService.samples,
              run.stats.walksCompleted);
}

TEST(TraceInvariants, QueueWaitAndServiceSpansAreConsistent)
{
    const auto run = runTraced(core::SchedulerKind::SimtAware);
    ASSERT_EQ(run.dropped, 0u);

    std::map<WalkKey, sim::Tick> enqueuedAt, scheduledAt;
    std::map<WalkKey, std::uint64_t> memCompletions;
    for (const auto &ev : run.events) {
        switch (ev.kind) {
        case EventKind::Enqueued:
            enqueuedAt[keyOf(ev)] = ev.tick;
            break;
        case EventKind::Scheduled: {
            // arg1 is the queue wait: dispatch tick minus arrival.
            ASSERT_TRUE(enqueuedAt.count(keyOf(ev)));
            EXPECT_EQ(ev.arg1, ev.tick - enqueuedAt[keyOf(ev)]);
            scheduledAt[keyOf(ev)] = ev.tick;
            enqueuedAt.erase(keyOf(ev));
            break;
        }
        case EventKind::MemCompleted:
            ++memCompletions[keyOf(ev)];
            break;
        case EventKind::WalkDone: {
            // arg1 is the walker service time; the walker started at
            // the dispatch tick. arg0 is the PTE fetch count.
            ASSERT_TRUE(scheduledAt.count(keyOf(ev)));
            EXPECT_EQ(ev.arg1, ev.tick - scheduledAt[keyOf(ev)]);
            EXPECT_EQ(ev.arg0, memCompletions[keyOf(ev)]);
            EXPECT_GE(ev.arg0, 1u);
            EXPECT_LE(ev.arg0, std::uint64_t(vm::numPtLevels));
            scheduledAt.erase(keyOf(ev));
            memCompletions.erase(keyOf(ev));
            break;
        }
        default:
            break;
        }
    }
    EXPECT_TRUE(enqueuedAt.empty()) << "walks enqueued, never scheduled";
    EXPECT_TRUE(scheduledAt.empty()) << "walks scheduled, never done";
}

// --- Batching (paper key idea 2) -----------------------------------

/**
 * Replays the stream keeping the set of pending (enqueued, not yet
 * dispatched) walks per instruction and the last scheduler-driven
 * dispatch, asserting @p perDecision at every scheduler-driven pick.
 */
template <typename Fn>
void
replayDecisions(const std::vector<Event> &events, Fn &&perDecision)
{
    std::map<std::uint64_t, std::uint64_t> pendingPerInstr;
    std::optional<std::uint64_t> lastInstr;
    for (const auto &ev : events) {
        if (ev.kind == EventKind::Enqueued) {
            ++pendingPerInstr[ev.instruction];
        } else if (ev.kind == EventKind::Scheduled) {
            if (reasonOf(ev) != core::PickReason::Immediate) {
                perDecision(ev, pendingPerInstr, lastInstr);
                lastInstr = ev.instruction;
            }
            if (--pendingPerInstr[ev.instruction] == 0)
                pendingPerInstr.erase(ev.instruction);
        }
    }
}

TEST(TraceInvariants, BatchOnlySticksToLastInstructionWhilePending)
{
    const auto run = runTraced(core::SchedulerKind::BatchOnly);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);

    std::uint64_t batchPicks = 0;
    replayDecisions(
        run.events,
        [&](const Event &ev, const auto &pending,
            const std::optional<std::uint64_t> &lastInstr) {
            // Default aging threshold (2M) never fires in a run this
            // small, so every pick is Batch or the fall-through.
            ASSERT_NE(reasonOf(ev), core::PickReason::Aging);
            if (lastInstr && pending.count(*lastInstr)) {
                // A sibling of the last dispatched instruction was
                // pending: batching must pick it, and say so.
                ASSERT_EQ(ev.instruction, *lastInstr)
                    << "batching broke at tick " << ev.tick;
                ASSERT_EQ(reasonOf(ev), core::PickReason::Batch);
                ++batchPicks;
            } else {
                ASSERT_EQ(reasonOf(ev), core::PickReason::Policy);
            }
        });
    EXPECT_GT(batchPicks, 0u) << "workload never exercised batching";
}

TEST(TraceInvariants, BatchReasonOnlyWhenSiblingOfLastDispatchPending)
{
    // The stale-lastInstruction fix asserted per decision: with the
    // full scheduler, a pick may be labelled Batch exactly when the
    // most recently dispatched instruction still has a pending walk.
    // A scheduler that let a drained instruction's ID linger would
    // claim Batch for picks this replay proves cannot be batched.
    const auto run = runTraced(core::SchedulerKind::SimtAware);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);

    std::uint64_t batchPicks = 0;
    replayDecisions(
        run.events,
        [&](const Event &ev, const auto &pending,
            const std::optional<std::uint64_t> &lastInstr) {
            const bool siblingPending =
                lastInstr && pending.count(*lastInstr);
            if (reasonOf(ev) == core::PickReason::Batch) {
                ASSERT_TRUE(siblingPending)
                    << "Batch pick for a drained instruction at tick "
                    << ev.tick;
                ASSERT_EQ(ev.instruction, *lastInstr);
                ++batchPicks;
            }
            if (siblingPending) {
                // Default 2M aging threshold never fires here, so the
                // sibling must win via batching.
                ASSERT_EQ(reasonOf(ev), core::PickReason::Batch);
            }
        });
    EXPECT_GT(batchPicks, 0u) << "workload never exercised batching";
}

// --- SJF scoring (paper key idea 1) --------------------------------

TEST(TraceInvariants, SjfOnlyPicksMinimumAccumulatedScore)
{
    const auto run = runTraced(core::SchedulerKind::SjfOnly);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);

    // Scored events mirror the IOMMU's accumulation rule: arg1 is the
    // instruction's job-length score after folding the new walk in,
    // and every buffered sibling is updated to it.
    std::map<std::uint64_t, std::uint64_t> score;
    std::map<std::uint64_t, std::uint64_t> pendingPerInstr;
    std::uint64_t sjfPicks = 0;
    for (const auto &ev : run.events) {
        switch (ev.kind) {
        case EventKind::Enqueued:
            ++pendingPerInstr[ev.instruction];
            break;
        case EventKind::Scored:
            ASSERT_GE(ev.arg0, 1u); // PWC estimate in [1, 4]
            ASSERT_LE(ev.arg0, std::uint64_t(vm::numPtLevels));
            score[ev.instruction] = ev.arg1;
            break;
        case EventKind::Scheduled:
            if (reasonOf(ev) == core::PickReason::Sjf) {
                const auto picked = score.at(ev.instruction);
                for (const auto &[instr, count] : pendingPerInstr) {
                    ASSERT_GT(count, 0u);
                    ASSERT_LE(picked, score.at(instr))
                        << "instruction " << instr
                        << " had a lower score at tick " << ev.tick;
                }
                ++sjfPicks;
            }
            if (--pendingPerInstr[ev.instruction] == 0)
                pendingPerInstr.erase(ev.instruction);
            break;
        default:
            break;
        }
    }
    EXPECT_GT(sjfPicks, 0u) << "workload never exercised SJF";
}

// --- Aging (anti-starvation) ---------------------------------------

TEST(TraceInvariants, AgingBoundsHowOftenAWalkIsBypassed)
{
    constexpr std::uint64_t threshold = 8;
    const auto run = runTraced(core::SchedulerKind::SimtAware, "GEV",
                               threshold);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);

    // Enqueue order is seq order; a pending walk is bypassed whenever
    // a younger walk wins a scheduler-driven pick. The aging rule
    // promotes any walk bypassed `threshold` times, so no walk can be
    // bypassed much past it (+1 covers the decision in flight).
    std::map<WalkKey, std::uint64_t> enqSeq;
    std::map<WalkKey, std::uint64_t> bypassed;
    std::uint64_t nextSeq = 0, agingPicks = 0;
    for (const auto &ev : run.events) {
        if (ev.kind == EventKind::Enqueued) {
            enqSeq[keyOf(ev)] = nextSeq++;
            bypassed[keyOf(ev)] = 0;
        } else if (ev.kind == EventKind::Scheduled) {
            const auto picked = keyOf(ev);
            ASSERT_TRUE(enqSeq.count(picked));
            ASSERT_LE(bypassed.at(picked), threshold + 1)
                << "walk starved past the aging bound at tick "
                << ev.tick;
            agingPicks += reasonOf(ev) == core::PickReason::Aging;
            if (reasonOf(ev) != core::PickReason::Immediate) {
                for (auto &[key, count] : bypassed) {
                    if (enqSeq.at(key) < enqSeq.at(picked))
                        ++count;
                }
            }
            enqSeq.erase(picked);
            bypassed.erase(picked);
        }
    }
    EXPECT_GT(agingPicks, 0u)
        << "threshold " << threshold << " never triggered aging";
}

// --- Golden-trace determinism --------------------------------------

TEST(GoldenTrace, SameConfigAndSeedDigestsIdentically)
{
    const auto a = runTraced(core::SchedulerKind::SimtAware);
    const auto b = runTraced(core::SchedulerKind::SimtAware);
    ASSERT_NE(a.stats.traceDigest, 0u);
    EXPECT_EQ(a.stats.traceDigest, b.stats.traceDigest);
    EXPECT_EQ(a.stats.traceEvents, b.stats.traceEvents);
    EXPECT_EQ(a.events.size(), b.events.size());
}

TEST(GoldenTrace, SchedulerChangesTheDigest)
{
    const auto fcfs = runTraced(core::SchedulerKind::Fcfs);
    const auto simt = runTraced(core::SchedulerKind::SimtAware);
    EXPECT_NE(fcfs.stats.traceDigest, simt.stats.traceDigest);
}

TEST(GoldenTrace, SweepDigestsAreJobCountInvariant)
{
    // The acceptance property: --jobs 1 and --jobs N produce the same
    // trace digests run for run, because every run owns its System.
    const auto sweep = [](unsigned jobs) {
        exp::SweepSpec spec;
        spec.params = contendedParams();
        spec.params.wavefronts = 16;
        spec.params.instructionsPerWavefront = 6;
        spec.params.footprintScale = 0.02;
        spec.workloads = {"KMN", "MVT"};
        spec.schedulers = {core::SchedulerKind::Fcfs,
                           core::SchedulerKind::SimtAware};
        exp::RunnerOptions opts;
        opts.jobs = jobs;
        opts.trace.enabled = true; // no outPath: no files written
        return runSweep(spec, opts);
    };

    const auto serial = sweep(1);
    const auto parallel = sweep(8);
    ASSERT_EQ(serial.runs().size(), parallel.runs().size());
    for (std::size_t i = 0; i < serial.runs().size(); ++i) {
        const auto &s = serial.runs()[i].stats;
        const auto &p = parallel.runs()[i].stats;
        ASSERT_TRUE(s.traced);
        ASSERT_NE(s.traceDigest, 0u);
        EXPECT_EQ(s.traceDigest, p.traceDigest)
            << "run " << i << " diverged between --jobs 1 and 8";
        EXPECT_EQ(s.traceEvents, p.traceEvents);
        // Tracing is observation-only: the full stats JSON (which
        // embeds the digest) must also be byte-identical.
        EXPECT_EQ(exp::statsJsonString(s), exp::statsJsonString(p));
    }
}

TEST(GoldenTrace, TracingDoesNotPerturbSimulatedResults)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;

    auto run = [&](bool traced) {
        auto c = cfg;
        c.trace.enabled = traced;
        system::System sys(c);
        sys.loadBenchmark("GEV", contendedParams());
        return sys.run();
    };
    const auto off = run(false);
    const auto on = run(true);
    EXPECT_EQ(off.runtimeTicks, on.runtimeTicks);
    EXPECT_EQ(off.stallTicks, on.stallTicks);
    EXPECT_EQ(off.walkRequests, on.walkRequests);
    EXPECT_EQ(off.walksCompleted, on.walksCompleted);
    EXPECT_FALSE(off.traced);
    EXPECT_TRUE(on.traced);
}

TEST(GoldenTrace, AuditingDoesNotPerturbSimulatedResults)
{
    // Auditing must be as invisible as tracing: the same traced run
    // with and without periodic audit checks produces the identical
    // event-for-event trace digest. The periodic audit event consumes
    // event-queue sequence numbers, so this proves those are pure
    // tie-breakers with no behavioural leak.
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    cfg.trace.enabled = true;

    auto run = [&](bool audited) {
        auto c = cfg;
        c.audit.enabled = audited;
        c.audit.interval = 100'000; // many periodic checks
        system::System sys(c);
        sys.loadBenchmark("GEV", contendedParams());
        return sys.run();
    };
    const auto off = run(false);
    const auto on = run(true);
    ASSERT_NE(off.traceDigest, 0u);
    EXPECT_EQ(off.traceDigest, on.traceDigest);
    EXPECT_EQ(off.runtimeTicks, on.runtimeTicks);
    EXPECT_EQ(off.stallTicks, on.stallTicks);
    EXPECT_EQ(off.walkRequests, on.walkRequests);
    EXPECT_EQ(off.walksCompleted, on.walksCompleted);
    EXPECT_TRUE(on.audited);
    EXPECT_GT(on.auditChecks, 0u);
    EXPECT_EQ(on.auditViolations, 0u);
}

} // namespace
