/**
 * @file
 * Tests for the conservation auditor and the deterministic fault
 * injectors that prove it works.
 *
 * The auditor is only trustworthy if every invariant it registers has
 * been seen to fire. Each *AuditFault* suite below injects one precise
 * misbehaviour at a port boundary (sim/fault_injector.hh adapters) or
 * truncates a run mid-flight, then asserts the specific invariant
 * reports a violation — and that clean runs stay clean. CI runs the
 * *AuditFault* filter as its fault-injection smoke.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/walk_scheduler.hh"
#include "iommu/iommu.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/dram_controller.hh"
#include "mem/fault_injection.hh"
#include "sim/audit.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "system/system.hh"
#include "tlb/fault_injection.hh"
#include "tlb/tlb_hierarchy.hh"
#include "vm/address_space.hh"
#include "vm/frame_allocator.hh"
#include "vm/gmmu.hh"

namespace {

using namespace gpuwalk;
using sim::AuditContext;
using sim::Auditor;
using sim::AuditPhase;
using sim::FaultInjector;
using sim::FaultKind;

bool
hasViolation(const std::vector<sim::AuditViolation> &violations,
             const std::string &invariant)
{
    return std::any_of(violations.begin(), violations.end(),
                       [&](const sim::AuditViolation &v) {
                           return v.invariant == invariant;
                       });
}

// --- Auditor unit behaviour ----------------------------------------

TEST(AuditorTest, CleanUntilAFailureIsRecorded)
{
    Auditor a;
    int calls = 0;
    a.registerInvariant("always_ok", [&](AuditContext &ctx) {
        ++calls;
        ctx.require(true, "never shown");
    });
    EXPECT_EQ(a.invariantCount(), 1u);
    EXPECT_EQ(a.check(AuditPhase::Periodic, 100), 0u);
    EXPECT_TRUE(a.clean());
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(a.checksRun(), 1u);

    a.registerInvariant("broken", [](AuditContext &ctx) {
        ctx.fail("count is ", 3, " not ", 4);
    });
    EXPECT_EQ(a.check(AuditPhase::Final, 250), 1u);
    EXPECT_FALSE(a.clean());
    ASSERT_EQ(a.violations().size(), 1u);
    const auto &v = a.violations().front();
    EXPECT_EQ(v.invariant, "broken");
    EXPECT_EQ(v.message, "count is 3 not 4");
    EXPECT_EQ(v.tick, 250u);
    EXPECT_EQ(v.phase, AuditPhase::Final);
    EXPECT_EQ(a.checksRun(), 3u); // 1 + 2 invariants on the 2nd check
}

TEST(AuditorTest, RequireReturnsTheConditionForEarlyExit)
{
    Auditor a;
    a.registerInvariant("chained", [](AuditContext &ctx) {
        if (!ctx.require(false, "first identity broke"))
            return; // the pattern component checks use to avoid noise
        ctx.fail("must not reach the dependent check");
    });
    a.check(AuditPhase::Final, 0);
    ASSERT_EQ(a.violations().size(), 1u);
    EXPECT_EQ(a.violations().front().message, "first identity broke");
}

TEST(AuditorTest, ContextExposesPhaseAndTick)
{
    Auditor a;
    a.registerInvariant("probe", [](AuditContext &ctx) {
        if (ctx.final())
            ctx.fail("final at ", ctx.now());
        else
            EXPECT_EQ(ctx.phase(), AuditPhase::Periodic);
    });
    a.check(AuditPhase::Periodic, 10);
    EXPECT_TRUE(a.clean());
    a.check(AuditPhase::Final, 20);
    ASSERT_EQ(a.violations().size(), 1u);
    EXPECT_EQ(a.violations().front().message, "final at 20");
}

TEST(AuditorTest, PersistentViolationIsCappedButStillCounted)
{
    Auditor a;
    a.registerInvariant("leaky", [](AuditContext &ctx) {
        ctx.fail("still leaking");
        ctx.fail("and again");
    });
    for (int i = 0; i < 200; ++i)
        a.check(AuditPhase::Periodic, i);
    // 400 recorded, storage capped at 256, remainder only counted.
    EXPECT_EQ(a.violationCount(), 400u);
    EXPECT_EQ(a.violations().size(), 256u);
    EXPECT_EQ(a.violationsDropped(), 144u);
}

TEST(AuditorTest, EventsMonotoneClosureFiresOnBackwardsCounter)
{
    // The System registers exactly this closure shape over
    // EventQueue::executed(); a real queue cannot go backwards, so
    // the firing proof drives the closure with an injected counter.
    std::uint64_t executed = 5;
    Auditor a;
    a.registerInvariant(
        "system.events_monotone",
        [&executed, last = std::uint64_t{0}](AuditContext &ctx) mutable {
            ctx.require(executed >= last,
                        "events executed went backwards: ", last,
                        " -> ", executed);
            last = executed;
        });
    a.check(AuditPhase::Periodic, 0);
    EXPECT_TRUE(a.clean());
    executed = 3; // corrupt the counter
    a.check(AuditPhase::Periodic, 1);
    EXPECT_TRUE(hasViolation(a.violations(), "system.events_monotone"));
}

// --- FaultInjector determinism -------------------------------------

TEST(FaultInjectorTest, TargetModeHitsExactlyTheSelectedCrossing)
{
    FaultInjector inj({FaultKind::Drop, /*target=*/3});
    std::vector<FaultKind> decisions;
    for (int i = 0; i < 8; ++i)
        decisions.push_back(inj.decide());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(decisions[i],
                  i == 3 ? FaultKind::Drop : FaultKind::None);
    EXPECT_EQ(inj.crossings(), 8u);
    EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjectorTest, ProbabilisticModeIsBitReproduciblePerSeed)
{
    FaultInjector::Spec spec;
    spec.kind = FaultKind::Delay;
    spec.probability = 0.25;
    spec.seed = 42;
    FaultInjector a(spec), b(spec);
    spec.seed = 43;
    FaultInjector c(spec);

    std::vector<FaultKind> da, db, dc;
    for (int i = 0; i < 512; ++i) {
        da.push_back(a.decide());
        db.push_back(b.decide());
        dc.push_back(c.decide());
    }
    EXPECT_EQ(da, db);
    EXPECT_NE(da, dc);
    // Roughly a quarter of crossings hit; generous determinism bounds.
    EXPECT_GT(a.injected(), 64u);
    EXPECT_LT(a.injected(), 192u);
}

TEST(FaultInjectorTest, NoneKindNeverInjects)
{
    FaultInjector inj({});
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(inj.decide(), FaultKind::None);
    EXPECT_EQ(inj.injected(), 0u);
}

// --- Shared test fixtures ------------------------------------------

/** Completes every translation one cycle later at pa == va. */
struct ImmediateTranslation final : tlb::TranslationService
{
    explicit ImmediateTranslation(sim::EventQueue &eq) : eq(eq) {}

    void
    translate(tlb::TranslationRequest req) override
    {
        ++received;
        eq.scheduleIn(500, [r = std::move(req)]() mutable {
            r.complete(r.vaPage, false);
        });
    }

    sim::EventQueue &eq;
    std::uint64_t received = 0;
};

/** Completes every memory access one cycle later. */
struct ImmediateMemory final : mem::MemoryDevice
{
    explicit ImmediateMemory(sim::EventQueue &eq) : eq(eq) {}

    void
    access(mem::MemoryRequest req) override
    {
        ++received;
        eq.scheduleIn(500,
                      [r = std::move(req)]() mutable { r.complete(); });
    }

    sim::EventQueue &eq;
    std::uint64_t received = 0;
};

void
drain(sim::EventQueue &eq)
{
    while (eq.runOne()) {
    }
}

// --- TLB hierarchy invariants --------------------------------------

tlb::TranslationRequest
tlbRequest(mem::Addr va_page, std::uint32_t wavefront,
           std::uint64_t *completions)
{
    tlb::TranslationRequest req;
    req.vaPage = va_page;
    req.instruction = wavefront + 1;
    req.wavefront = wavefront;
    req.cu = 0;
    req.onComplete = [completions](mem::Addr, bool) { ++*completions; };
    return req;
}

TEST(TlbAuditFault, DroppedIommuResponseFiresMergeAndWavefrontChecks)
{
    sim::EventQueue eq;
    ImmediateTranslation below(eq);
    // Drop the first TLB->IOMMU crossing's response.
    tlb::FaultyTranslationService faulty(eq, below,
                                         {FaultKind::Drop, 0});
    tlb::TlbHierarchyConfig cfg;
    cfg.numCus = 1;
    tlb::TlbHierarchy tlbs(eq, cfg, faulty);

    Auditor auditor;
    tlbs.registerInvariants(auditor);

    std::uint64_t completions = 0;
    tlbs.translate(tlbRequest(0x1000, 0, &completions));
    tlbs.translate(tlbRequest(0x2000, 1, &completions));
    drain(eq);

    // The wavefront-0 response was swallowed: its merge entry leaks
    // and its coalesced-in/responses-out tally cannot balance.
    EXPECT_EQ(completions, 1u);
    auditor.check(AuditPhase::Final, eq.now());
    EXPECT_TRUE(hasViolation(auditor.violations(), "tlb.merge_pool"));
    EXPECT_TRUE(hasViolation(auditor.violations(),
                             "tlb.wavefront_conservation"));
}

TEST(TlbAuditFault, CleanRunPassesAllTlbInvariants)
{
    sim::EventQueue eq;
    ImmediateTranslation below(eq);
    tlb::TlbHierarchyConfig cfg;
    cfg.numCus = 1;
    tlb::TlbHierarchy tlbs(eq, cfg, below);

    Auditor auditor;
    tlbs.registerInvariants(auditor);

    std::uint64_t completions = 0;
    for (std::uint32_t i = 0; i < 4; ++i)
        tlbs.translate(
            tlbRequest(0x1000 * (i + 1), i, &completions));
    drain(eq);

    EXPECT_EQ(completions, 4u);
    auditor.check(AuditPhase::Final, eq.now());
    EXPECT_TRUE(auditor.clean()) << auditor.violations().front().message;
}

// --- IOMMU invariants ----------------------------------------------

/**
 * Stand-alone IOMMU over an injectable memory chain: backing store,
 * a mapped VA region, and a FaultyMemoryDevice in front of an
 * immediate-completion memory stub.
 */
struct FaultyIommuHarness
{
    explicit FaultyIommuHarness(FaultInjector::Spec spec,
                                std::unique_ptr<core::WalkScheduler>
                                    sched = core::makeScheduler(
                                        core::SchedulerKind::Fcfs))
        : memory(eq), faulty(eq, memory, spec),
          frames(mem::Addr(1) << 30, false), space(store, frames)
    {
        region = space.allocate("buf", 64 * mem::pageSize);
        iommu::IommuConfig cfg;
        cfg.numWalkers = 1;
        cfg.useWalkCache = false;
        dut = std::make_unique<iommu::Iommu>(
            eq, cfg, std::move(sched), faulty, store,
            space.pageTable().root());
    }

    tlb::TranslationRequest
    request(unsigned page)
    {
        tlb::TranslationRequest req;
        req.vaPage = region.base + mem::Addr(page) * mem::pageSize;
        req.instruction = page + 1;
        req.wavefront = page;
        req.onComplete = [this](mem::Addr, bool) { ++completions; };
        return req;
    }

    sim::EventQueue eq;
    ImmediateMemory memory;
    mem::FaultyMemoryDevice faulty;
    mem::BackingStore store;
    vm::FrameAllocator frames;
    vm::AddressSpace space;
    vm::VaRegion region;
    std::unique_ptr<iommu::Iommu> dut;
    std::uint64_t completions = 0;
};

TEST(IommuAuditFault, DroppedPteFetchFiresDrainAndOccupancyChecks)
{
    // Drop the very first PTE fetch at the IOMMU->memory boundary:
    // the lone walker hangs forever and a second walk stays buffered.
    FaultyIommuHarness h({FaultKind::Drop, 0});
    Auditor auditor;
    h.dut->registerInvariants(auditor);

    h.dut->translate(h.request(0));
    h.dut->translate(h.request(1));
    drain(h.eq);

    EXPECT_EQ(h.completions, 0u);
    EXPECT_EQ(h.dut->walkRequests(), 2u);
    EXPECT_EQ(h.dut->walksCompleted(), 0u);
    auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(
        hasViolation(auditor.violations(), "iommu.walk_conservation"));
    EXPECT_TRUE(
        hasViolation(auditor.violations(), "iommu.buffer_drained"));
    EXPECT_TRUE(
        hasViolation(auditor.violations(), "iommu.walkers_idle"));
}

TEST(IommuAuditFault, TruncatedRunFiresRequestConservation)
{
    // A request caught mid-hop has been counted as received but not
    // yet classified as hit or walk; a final check at that instant
    // must flag the imbalance (this is what catches runs that end
    // with work still in flight).
    FaultyIommuHarness h({}); // no faults
    Auditor auditor;
    h.dut->registerInvariants(auditor);

    h.dut->translate(h.request(0));
    // Deliberately run nothing: the request is inside the hop latency.
    auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(hasViolation(auditor.violations(),
                             "iommu.request_conservation"));
}

TEST(IommuAuditFault, CleanRunPassesAllIommuInvariants)
{
    FaultyIommuHarness h({}); // injector present but inert
    Auditor auditor;
    h.dut->registerInvariants(auditor);

    for (unsigned i = 0; i < 6; ++i)
        h.dut->translate(h.request(i));
    // Periodic checks during the run must tolerate in-flight work.
    while (h.eq.runOne())
        auditor.check(AuditPhase::Periodic, h.eq.now());
    auditor.check(AuditPhase::Final, h.eq.now());

    EXPECT_EQ(h.completions, 6u);
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().invariant << ": "
        << auditor.violations().front().message;
}

/**
 * A scheduler that lies to the auditor: it claims it does not track
 * aging (so buffered entries must show bypassed == 0) while its
 * newest-first selection still runs the base-class bypass bookkeeping.
 * This is the "two schedulers disagree about a shared buffer"
 * corruption iommu.buffer_counters exists to catch.
 */
struct LyingScheduler final : core::WalkScheduler
{
    std::string name() const override { return "lying"; }
    bool tracksAging() const override { return false; }

    std::size_t
    selectNext(const core::WalkBuffer &buffer) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < buffer.size(); ++i) {
            if (buffer.at(i).seq > buffer.at(best).seq)
                best = i;
        }
        return best;
    }
};

TEST(IommuAuditFault, InconsistentBypassCountersFireBufferCounters)
{
    FaultyIommuHarness h({}, std::make_unique<LyingScheduler>());
    Auditor auditor;
    h.dut->registerInvariants(auditor);

    for (unsigned i = 0; i < 4; ++i)
        h.dut->translate(h.request(i));
    bool fired = false;
    while (h.eq.runOne()) {
        auditor.check(AuditPhase::Periodic, h.eq.now());
        fired = fired || hasViolation(auditor.violations(),
                                      "iommu.buffer_counters");
    }
    EXPECT_TRUE(fired)
        << "newest-first dispatch never left a bypassed entry "
           "buffered under a tracksAging()==false scheduler";
}

// --- Cache MSHR invariants -----------------------------------------

TEST(CacheAuditFault, DroppedFillLeaksAnMshr)
{
    sim::EventQueue eq;
    ImmediateMemory memory(eq);
    mem::FaultyMemoryDevice faulty(eq, memory, {FaultKind::Drop, 0});
    mem::CacheConfig cfg;
    cfg.name = "testcache";
    mem::Cache cache(eq, cfg, faulty);

    Auditor auditor;
    cache.registerInvariants(auditor);

    mem::MemoryRequest req;
    req.addr = 0x4000;
    bool completed = false;
    req.onComplete = [&completed] { completed = true; };
    cache.access(std::move(req));
    drain(eq);

    EXPECT_FALSE(completed);
    auditor.check(AuditPhase::Final, eq.now());
    EXPECT_TRUE(hasViolation(auditor.violations(), "testcache.mshrs"));
}

TEST(CacheAuditFault, CleanRunPassesMshrAccounting)
{
    sim::EventQueue eq;
    ImmediateMemory memory(eq);
    mem::CacheConfig cfg;
    cfg.name = "testcache";
    mem::Cache cache(eq, cfg, memory);

    Auditor auditor;
    cache.registerInvariants(auditor);

    unsigned completed = 0;
    for (int i = 0; i < 8; ++i) {
        mem::MemoryRequest req;
        req.addr = mem::Addr(i) * 0x4000; // distinct lines
        req.onComplete = [&completed] { ++completed; };
        cache.access(std::move(req));
    }
    while (eq.runOne())
        auditor.check(AuditPhase::Periodic, eq.now());
    auditor.check(AuditPhase::Final, eq.now());

    EXPECT_EQ(completed, 8u);
    EXPECT_TRUE(auditor.clean())
        << auditor.violations().front().message;
}

// --- DRAM queue invariants -----------------------------------------

TEST(DramAuditFault, TruncatedRunFiresQueueDrainCheck)
{
    sim::EventQueue eq;
    mem::DramController dram(eq, mem::DramConfig{});
    Auditor auditor;
    dram.registerInvariants(auditor);

    // Same-address requests map to one bank: the first goes straight
    // into service, the rest must wait in the channel queue.
    for (int i = 0; i < 4; ++i) {
        mem::MemoryRequest req;
        req.addr = 0x10000;
        dram.access(std::move(req));
    }
    // Deliberately run nothing: requests are sitting in the queue.
    auditor.check(AuditPhase::Final, eq.now());
    EXPECT_TRUE(
        hasViolation(auditor.violations(), "dram.queues_drained"));

    // Draining the queue clears the violation source.
    drain(eq);
    Auditor fresh;
    dram.registerInvariants(fresh);
    fresh.check(AuditPhase::Final, eq.now());
    EXPECT_TRUE(fresh.clean());
}

// --- Full-system invariants ----------------------------------------

workload::WorkloadParams
tinySystemParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 16;
    params.instructionsPerWavefront = 6;
    params.footprintScale = 0.02;
    return params;
}

TEST(GpuAuditFault, TruncatedRunFiresWavefrontCompletion)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.audit.enabled = true;
    system::System sys(cfg);
    sys.loadBenchmark("KMN", tinySystemParams());

    // Drive the run by hand and stop long before the GPU is done —
    // the final audit must notice the unfinished wavefronts.
    sys.gpu().start();
    for (int i = 0; i < 200; ++i)
        sys.eventQueue().runOne();
    ASSERT_FALSE(sys.gpu().done());
    ASSERT_NE(sys.auditor(), nullptr);
    sys.auditor()->check(AuditPhase::Final, sys.eventQueue().now());
    EXPECT_TRUE(hasViolation(sys.auditor()->violations(),
                             "gpu.wavefront_completion"));
}

TEST(SystemAuditFault, DuplicatedRequestFiresTranslationConservation)
{
    // A phantom request injected between the TLB hierarchy and the
    // IOMMU desynchronises the forwarded/received counters — the
    // cross-component identity only the System-level invariant sees.
    auto cfg = system::SystemConfig::baseline();
    cfg.audit.enabled = true;
    std::unique_ptr<tlb::FaultyTranslationService> faulty;
    cfg.translationInterposer =
        [&faulty](sim::EventQueue &eq, tlb::TranslationService &below)
        -> tlb::TranslationService * {
        faulty = std::make_unique<tlb::FaultyTranslationService>(
            eq, below, FaultInjector::Spec{FaultKind::Duplicate, 0});
        return faulty.get();
    };
    system::System sys(cfg);
    sys.loadBenchmark("KMN", tinySystemParams());
    const auto stats = sys.run();

    ASSERT_NE(faulty, nullptr);
    EXPECT_EQ(faulty->injector().injected(), 1u);
    EXPECT_TRUE(stats.audited);
    EXPECT_GT(stats.auditViolations, 0u);
    EXPECT_TRUE(hasViolation(stats.auditFindings,
                             "system.translation_conservation"));
}

TEST(SystemAuditFault, DelayedResponseIsTheNegativeControl)
{
    // Conservation is timing-independent: delivering one response two
    // hundred cycles late perturbs the timing but must audit clean
    // once the run drains.
    auto cfg = system::SystemConfig::baseline();
    cfg.audit.enabled = true;
    cfg.audit.interval = 250'000;
    std::unique_ptr<tlb::FaultyTranslationService> faulty;
    cfg.translationInterposer =
        [&faulty](sim::EventQueue &eq, tlb::TranslationService &below)
        -> tlb::TranslationService * {
        FaultInjector::Spec spec;
        spec.kind = FaultKind::Delay;
        spec.target = 0;
        spec.delayTicks = 200 * 500;
        faulty = std::make_unique<tlb::FaultyTranslationService>(
            eq, below, spec);
        return faulty.get();
    };
    system::System sys(cfg);
    sys.loadBenchmark("KMN", tinySystemParams());
    const auto stats = sys.run();

    ASSERT_NE(faulty, nullptr);
    EXPECT_EQ(faulty->injector().injected(), 1u);
    EXPECT_TRUE(stats.audited);
    EXPECT_GT(stats.auditChecks, 0u);
    EXPECT_EQ(stats.auditViolations, 0u)
        << stats.auditFindings.front().invariant << ": "
        << stats.auditFindings.front().message;
}

// --- GMMU invariants under targeted faults -------------------------

/** Gmmu + real page tables, driven directly (no IOMMU in the way), so
 *  each Gmmu::TestFaults knob can break exactly one invariant. */
struct GmmuAuditHarness
{
    explicit GmmuAuditHarness(vm::Gmmu::TestFaults faults = {})
        : frames(mem::Addr(1) << 30, false), gmmu(eq, [&] {
              vm::GmmuConfig cfg;
              cfg.enabled = true;
              cfg.faultLatency = 1'000;
              cfg.migrationLatency = 100;
              return cfg;
          }(), frames, store)
    {
        space = std::make_unique<vm::AddressSpace>(store, frames);
        space->setDemandPaging(true);
        gmmu.registerSpace(0, *space);
        gmmu.setTestFaults(faults);
        gmmu.registerInvariants(auditor);
        region = space->allocate("buf", 64 * mem::pageSize);
    }

    mem::Addr
    pageAt(unsigned i) const
    {
        return region.base + mem::Addr(i) * mem::pageSize;
    }

    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames;
    std::unique_ptr<vm::AddressSpace> space;
    vm::VaRegion region;
    Auditor auditor;
    vm::Gmmu gmmu;
};

TEST(GmmuAuditFault, CleanFaultingRunsAuditClean)
{
    GmmuAuditHarness h;
    h.gmmu.setFrameCap(2); // churn through eviction too
    for (unsigned i = 0; i < 6; ++i) {
        h.gmmu.raiseFault(0, h.pageAt(i));
        drain(h.eq);
        h.auditor.check(AuditPhase::Periodic, h.eq.now());
    }
    h.auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_TRUE(h.auditor.clean())
        << h.auditor.violations().front().invariant << ": "
        << h.auditor.violations().front().message;
    EXPECT_GT(h.gmmu.pagesEvicted(), 0u);
}

TEST(GmmuAuditFault, DroppedServiceFiresFaultConservation)
{
    // The service completion is lost: the page lands in a frame but
    // the fault is never acknowledged. raised != serviced + pending.
    GmmuAuditHarness h({.dropFirstService = true});
    h.gmmu.raiseFault(0, h.pageAt(0));
    drain(h.eq);

    h.auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_FALSE(h.auditor.clean());
    EXPECT_TRUE(hasViolation(h.auditor.violations(),
                             "gmmu.fault_conservation"));
    EXPECT_EQ(h.gmmu.faultsRaised(), 1u);
    EXPECT_EQ(h.gmmu.faultsServiced(), 0u);
    EXPECT_EQ(h.gmmu.pendingFaults(), 0u);
}

TEST(GmmuAuditFault, LeakedFrameFiresFrameAccounting)
{
    // Eviction forgets the frame bookkeeping: the residency counter,
    // the LRU structures and the free list fall out of agreement.
    GmmuAuditHarness h({.leakFrameOnEvict = true});
    h.gmmu.setFrameCap(1);
    h.gmmu.raiseFault(0, h.pageAt(0));
    drain(h.eq);
    h.gmmu.raiseFault(0, h.pageAt(1)); // evicts page 0, leaks its frame
    drain(h.eq);

    h.auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_FALSE(h.auditor.clean());
    EXPECT_TRUE(hasViolation(h.auditor.violations(),
                             "gmmu.frame_accounting"));
}

TEST(GmmuAuditFault, PrematurePinnedEvictionFiresNoPinnedEviction)
{
    // The victim picker prefers a page a walk still holds pinned —
    // the exact corruption pin-at-enqueue exists to prevent.
    GmmuAuditHarness h({.evictPinned = true});
    h.gmmu.setFrameCap(1);
    h.gmmu.raiseFault(0, h.pageAt(0));
    drain(h.eq);
    h.gmmu.pin(0, h.pageAt(0));
    h.gmmu.raiseFault(0, h.pageAt(1)); // must evict, only victim pinned
    drain(h.eq);
    h.gmmu.unpin(0, h.pageAt(0));

    h.auditor.check(AuditPhase::Final, h.eq.now());
    EXPECT_FALSE(h.auditor.clean());
    EXPECT_TRUE(hasViolation(h.auditor.violations(),
                             "gmmu.no_pinned_eviction"));
}

TEST(SystemAuditFault, FullRunWithPeriodicChecksAuditsClean)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;
    system::System sys(cfg);
    sys.loadBenchmark("MVT", tinySystemParams());
    const auto stats = sys.run();

    EXPECT_TRUE(stats.audited);
    EXPECT_GT(stats.auditChecks,
              sys.auditor()->invariantCount()); // periodic checks ran
    EXPECT_EQ(stats.auditViolations, 0u)
        << stats.auditFindings.front().invariant << ": "
        << stats.auditFindings.front().message;
}

} // namespace
