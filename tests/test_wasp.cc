/**
 * @file
 * Wasp de-staggered wavefront scheduling tests: behaviour of the
 * leader class and the speculative walk class end to end, plus the
 * determinism differentials the feature must survive — bit-identical
 * trace digests and stats JSON across --sim-threads {1, 2, 4} and
 * concurrent same-process runs, with the conservation auditor (the
 * iommu.spec_class identity included) on throughout, across wasp x
 * {prefetch off, spp} x {resident, oversubscribed} x admission
 * {idle, reserved, budget}.
 *
 * The behavioural claims under test:
 *
 *  - leader wavefronts issue first and their walks arrive tagged, ride
 *    the speculative class, and never vanish: every admitted entry is
 *    dispatched, promoted, or (predictions only) cancelled;
 *  - with Wasp off the speculative machinery is structurally inert
 *    (zero admissions, zero leader issues) under every admission mode,
 *    so the committed golden digests cannot move;
 *  - reserved admission keeps dispatching speculatively under load,
 *    budget admission meters it, and faulted leader walks re-enter
 *    and complete (audit holds oversubscribed);
 *  - leader streams train the shared SPP pattern table (the
 *    leader-to-follower transfer satellite).
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "iommu/prefetch/spp_prefetcher.hh"
#include "system/system.hh"
#include "workload/workload.hh"

namespace {

using namespace gpuwalk;

/** One wasp configuration point for the differentials. */
struct WaspPoint
{
    std::string key;
    std::string workload;
    iommu::PrefetchKind prefetch;
    iommu::SpecAdmission admission;
    bool oversubscribed = false;
};

const std::vector<WaspPoint> waspPoints{
    {"wasp/xsb-off-idle", "XSB", iommu::PrefetchKind::Off,
     iommu::SpecAdmission::Idle},
    {"wasp/mvt-spp-reserved", "MVT", iommu::PrefetchKind::Spp,
     iommu::SpecAdmission::Reserved},
    {"wasp/atx-spp-budget", "ATX", iommu::PrefetchKind::Spp,
     iommu::SpecAdmission::Budget},
    {"wasp/gev-spp-reserved-oversub", "GEV", iommu::PrefetchKind::Spp,
     iommu::SpecAdmission::Reserved, /*oversubscribed=*/true},
};

struct WaspRun
{
    system::RunStats stats;
    std::string statsJson;
};

system::SystemConfig
waspConfig(const WaspPoint &point, unsigned sim_threads)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    cfg.simThreads = sim_threads;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;
    cfg.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::Wasp;
    cfg.iommu.prefetch.kind = point.prefetch;
    cfg.iommu.specAdmission = point.admission;
    if (point.oversubscribed) {
        cfg.gmmu.enabled = true;
        cfg.gmmu.oversubscription = 0.25;
        cfg.gmmu.faultLatency = 20'000;
        cfg.gmmu.migrationLatency = 1'000;
    }
    return cfg;
}

WaspRun
runPoint(const WaspPoint &point, unsigned sim_threads)
{
    workload::WorkloadParams params;
    params.wavefronts = 16;
    params.instructionsPerWavefront = 8;
    params.footprintScale = 0.02;
    params.seed = 31;

    system::System sys(waspConfig(point, sim_threads));
    sys.loadBenchmark(point.workload, params);

    WaspRun out;
    out.stats = sys.run();
    out.statsJson = exp::statsJsonString(out.stats);
    return out;
}

/** Engine-infrastructure counters that legitimately vary with the
 *  thread count (see test_tenant_determinism.cc). */
std::string
scrubEngineCounters(std::string s)
{
    for (const std::string key :
         {"\"events_executed\": ", "\"checks\": "}) {
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            const std::size_t begin = pos + key.size();
            std::size_t end = begin;
            while (end < s.size() && s[end] >= '0' && s[end] <= '9')
                ++end;
            s.replace(begin, end - begin, "_");
            pos = begin;
        }
    }
    return s;
}

/** The class-conservation identity the auditor enforces mid-run, now
 *  checked from the summary: nothing admitted is unaccounted for. */
void
expectSpecAccounted(const iommu::SpecSummary &spec,
                    const std::string &key)
{
    EXPECT_EQ(spec.admitted,
              spec.dispatched + spec.promoted + spec.droppedStale)
        << key;
}

// ---------------------------------------------------------------------
// Behaviour.
// ---------------------------------------------------------------------

TEST(WaspBehavior, LeadersIssueAndTheirWalksRideTheSpecClass)
{
    const auto run = runPoint(waspPoints[1], 1); // spp + reserved
    ASSERT_TRUE(run.stats.audited);
    EXPECT_EQ(run.stats.auditViolations, 0u);
    EXPECT_GT(run.stats.leaderIssues, 0u);
    EXPECT_GT(run.stats.spec.leaderWalks, 0u);
    EXPECT_GT(run.stats.spec.admitted, 0u);
    // Reserved walkers exist solely to drain the class: speculative
    // dispatches must actually happen under demand load.
    EXPECT_GT(run.stats.spec.dispatched, 0u);
    expectSpecAccounted(run.stats.spec, waspPoints[1].key);
}

TEST(WaspBehavior, FeatureOffLeavesSpecMachineryInert)
{
    // Round-robin (the default) + every admission mode: no leader
    // issues, no admissions — the speculative class cannot influence a
    // non-wasp run, which is what keeps the committed goldens valid.
    for (const auto admission :
         {iommu::SpecAdmission::Idle, iommu::SpecAdmission::Reserved,
          iommu::SpecAdmission::Budget}) {
        auto point = waspPoints[0];
        point.admission = admission;
        auto cfg = waspConfig(point, 1);
        cfg.gpu.wavefrontSched = gpu::WavefrontSchedPolicy::RoundRobin;

        workload::WorkloadParams params;
        params.wavefronts = 16;
        params.instructionsPerWavefront = 8;
        params.footprintScale = 0.02;
        params.seed = 31;
        system::System sys(cfg);
        sys.loadBenchmark(point.workload, params);
        const auto stats = sys.run();

        EXPECT_EQ(stats.auditViolations, 0u);
        EXPECT_EQ(stats.leaderIssues, 0u);
        EXPECT_EQ(stats.spec.leaderWalks, 0u);
        EXPECT_EQ(stats.spec.admitted, 0u);
        EXPECT_EQ(stats.spec.dispatched, 0u);
    }
}

TEST(WaspBehavior, BudgetAdmissionMetersPredictions)
{
    const auto budget = runPoint(waspPoints[2], 1); // spp + budget
    EXPECT_EQ(budget.stats.auditViolations, 0u);
    EXPECT_GT(budget.stats.spec.admitted, 0u);
    expectSpecAccounted(budget.stats.spec, waspPoints[2].key);

    // The meter's construction bound: predictions spend tokens, the
    // token pool refills (to specBudgetTokens, not by it) once per
    // specBudgetWindow demand dispatches, and leader walks bypass the
    // meter — they are real requests. totalWalks over-counts demand
    // dispatches, so it bounds the number of refills from above.
    const auto cfg = waspConfig(waspPoints[2], 1);
    const std::uint64_t refills =
        budget.stats.walks.totalWalks / cfg.iommu.specBudgetWindow;
    EXPECT_LE(budget.stats.spec.admitted,
              budget.stats.spec.leaderWalks
                  + cfg.iommu.specBudgetTokens * (refills + 1));

    // Zero tokens close the meter completely: only leader-originated
    // walks may enter the speculative class.
    auto starved_cfg = waspConfig(waspPoints[2], 1);
    starved_cfg.iommu.specBudgetTokens = 0;
    workload::WorkloadParams params;
    params.wavefronts = 16;
    params.instructionsPerWavefront = 8;
    params.footprintScale = 0.02;
    params.seed = 31;
    system::System sys(starved_cfg);
    sys.loadBenchmark(waspPoints[2].workload, params);
    const auto starved = sys.run();
    EXPECT_EQ(starved.auditViolations, 0u);
    EXPECT_LE(starved.spec.admitted, starved.spec.leaderWalks);
    expectSpecAccounted(starved.spec, "wasp/atx-spp-budget-0tok");
}

TEST(WaspBehavior, FaultedLeaderWalksCompleteOversubscribed)
{
    const auto run = runPoint(waspPoints[3], 1);
    ASSERT_TRUE(run.stats.gmmu.enabled);
    ASSERT_GT(run.stats.gmmu.faultsRaised, 0u);
    EXPECT_EQ(run.stats.auditViolations, 0u);
    EXPECT_GT(run.stats.spec.leaderWalks, 0u);
    expectSpecAccounted(run.stats.spec, waspPoints[3].key);
}

TEST(WaspBehavior, LeaderStreamsTrainTheSharedSppTable)
{
    // Unit-level transfer check: a leader stream strides ahead; the
    // follower with a *different* wavefront id starts over the same
    // pages later. The shared signature-indexed pattern table means
    // the follower's very first delta already has a trained entry —
    // its second touch predicts, where an untrained table needs the
    // signature to converge first.
    iommu::SppPrefetcher spp{iommu::PrefetchConfig{}};
    std::vector<iommu::PrefetchCandidate> out;
    const std::uint64_t base = 0x40000;

    for (std::uint64_t i = 0; i < 16; ++i) {
        out.clear();
        spp.onDemandTouch(/*ctx=*/0, /*wavefront=*/0,
                          (base + i) << mem::pageShift, out,
                          /*leader=*/true);
    }
    EXPECT_GT(spp.leaderTrainedDeltas(), 0u);
    EXPECT_EQ(spp.leaderTrainedDeltas(), spp.trainedDeltas());

    // Follower touches: trained-delta counters split by class.
    const std::uint64_t before = spp.leaderTrainedDeltas();
    out.clear();
    spp.onDemandTouch(0, /*wavefront=*/1, base << mem::pageShift, out);
    out.clear();
    spp.onDemandTouch(0, /*wavefront=*/1, (base + 1) << mem::pageShift,
                      out);
    EXPECT_EQ(spp.leaderTrainedDeltas(), before);
    EXPECT_GT(spp.trainedDeltas(), before);
    // The follower's stride-1 delta was leader-trained: predictions
    // flow on the second touch already.
    EXPECT_FALSE(out.empty());
}

TEST(WaspBehavior, SppLeaderTrainingStaysAsidIsolated)
{
    // Cross-ASID isolation under Wasp: a leader stream in ctx 1 and a
    // follower stream with the *same wavefront id* in ctx 2 are
    // distinct streams — interleaving them corrupts neither, and each
    // predicts its own next pages.
    iommu::SppPrefetcher spp{iommu::PrefetchConfig{}};
    const std::uint64_t a = 0x40000, b = 0x90000;
    std::vector<iommu::PrefetchCandidate> wa, wb;
    for (std::uint64_t i = 0; i < 16; ++i) {
        wa.clear();
        spp.onDemandTouch(/*ctx=*/1, /*wavefront=*/7,
                          (a + i) << mem::pageShift, wa,
                          /*leader=*/true);
        wb.clear();
        spp.onDemandTouch(/*ctx=*/2, /*wavefront=*/7,
                          (b + 2 * i) << mem::pageShift, wb);
    }
    ASSERT_FALSE(wa.empty());
    ASSERT_FALSE(wb.empty());
    EXPECT_EQ(wa[0].vaPage, (a + 15 + 1) << mem::pageShift);
    EXPECT_EQ(wb[0].vaPage, (b + 30 + 2) << mem::pageShift);
    EXPECT_EQ(spp.streamResets(), 0u);
}

// ---------------------------------------------------------------------
// Determinism differentials.
// ---------------------------------------------------------------------

TEST(WaspDeterminism, BitIdenticalAcrossSimThreads)
{
    for (const auto &point : waspPoints) {
        const auto serial = runPoint(point, 1);
        ASSERT_TRUE(serial.stats.traced);
        ASSERT_NE(serial.stats.traceDigest, 0u);
        ASSERT_EQ(serial.stats.traceDropped, 0u);
        ASSERT_TRUE(serial.stats.audited);
        EXPECT_EQ(serial.stats.auditViolations, 0u) << point.key;
        ASSERT_GT(serial.stats.leaderIssues, 0u) << point.key;
        expectSpecAccounted(serial.stats.spec, point.key);

        for (const unsigned threads : {2u, 4u}) {
            const auto parallel = runPoint(point, threads);
            EXPECT_EQ(parallel.stats.traceDigest,
                      serial.stats.traceDigest)
                << point.key << " diverged at --sim-threads "
                << threads;
            EXPECT_EQ(parallel.stats.auditViolations, 0u);
            EXPECT_EQ(scrubEngineCounters(parallel.statsJson),
                      scrubEngineCounters(serial.statsJson))
                << point.key << " at --sim-threads " << threads;
        }
    }
}

TEST(WaspDeterminism, BitIdenticalAcrossConcurrentRuns)
{
    // The --jobs axis: two wasp Systems in the same process at once
    // (each itself parallel) share nothing but the heap.
    const auto &point = waspPoints[1]; // spp + reserved
    const auto reference = runPoint(point, 1);

    std::vector<WaspRun> concurrent(2);
    {
        std::thread a([&] { concurrent[0] = runPoint(point, 2); });
        std::thread b([&] { concurrent[1] = runPoint(point, 2); });
        a.join();
        b.join();
    }
    for (const auto &run : concurrent) {
        EXPECT_EQ(run.stats.traceDigest, reference.stats.traceDigest);
        EXPECT_EQ(scrubEngineCounters(run.statsJson),
                  scrubEngineCounters(reference.statsJson));
        EXPECT_EQ(run.stats.auditViolations, 0u);
    }
}

} // namespace
