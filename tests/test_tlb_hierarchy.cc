/**
 * @file
 * Unit tests for the GPU TLB hierarchy (L1 per CU + shared L2 +
 * miss path to the IOMMU).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tlb/tlb_hierarchy.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::tlb;
using gpuwalk::mem::Addr;

/** IOMMU stub with fixed latency and an identity+offset mapping. */
class StubIommu : public TranslationService
{
  public:
    StubIommu(sim::EventQueue &eq, sim::Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    translate(TranslationRequest req) override
    {
        ++requests;
        byPage[req.vaPage]++;
        eq_.scheduleIn(latency_, [r = std::move(req)]() mutable {
            r.complete(r.vaPage + 0x10000000);
        });
    }

    unsigned requests = 0;
    std::map<Addr, unsigned> byPage;

  private:
    sim::EventQueue &eq_;
    sim::Tick latency_;
};

struct TlbHierarchyFixture : public ::testing::Test
{
    sim::EventQueue eq;
    TlbHierarchyConfig cfg;
    StubIommu iommu{eq, 500 * 500};
    std::unique_ptr<TlbHierarchy> tlbs;

    void
    SetUp() override
    {
        cfg.numCus = 4;
        tlbs = std::make_unique<TlbHierarchy>(eq, cfg, iommu);
    }

    /** Translates synchronously; returns the PA. */
    Addr
    translate(Addr va_page, std::uint32_t cu = 0,
              std::uint32_t wavefront = 0,
              tlb::InstructionId instr = 1)
    {
        Addr result = 0;
        TranslationRequest req;
        req.vaPage = va_page;
        req.cu = cu;
        req.wavefront = wavefront;
        req.instruction = instr;
        req.onComplete = [&](Addr pa, bool) { result = pa; };
        tlbs->translate(std::move(req));
        eq.run();
        return result;
    }
};

TEST_F(TlbHierarchyFixture, ColdMissReachesIommu)
{
    const Addr pa = translate(0x40000000);
    EXPECT_EQ(pa, 0x50000000u);
    EXPECT_EQ(iommu.requests, 1u);
    EXPECT_EQ(tlbs->iommuRequests(), 1u);
}

TEST_F(TlbHierarchyFixture, FillMakesSecondAccessAnL1Hit)
{
    translate(0x40000000);
    translate(0x40000000);
    EXPECT_EQ(iommu.requests, 1u);
    EXPECT_EQ(tlbs->l1(0).hits(), 1u);
}

TEST_F(TlbHierarchyFixture, CrossCuReuseHitsSharedL2)
{
    translate(0x40000000, /*cu=*/0);
    translate(0x40000000, /*cu=*/1);
    // The second CU misses its own L1 but hits the shared L2.
    EXPECT_EQ(iommu.requests, 1u);
    EXPECT_EQ(tlbs->l2().hits(), 1u);
    // And fills its own L1.
    EXPECT_TRUE(tlbs->l1(1).probe(0x40000000).has_value());
}

TEST_F(TlbHierarchyFixture, ConcurrentSamePageMissesMergeAtL1)
{
    unsigned done = 0;
    for (int i = 0; i < 4; ++i) {
        TranslationRequest req;
        req.vaPage = 0x40000000;
        req.cu = 0;
        req.instruction = 1;
        req.onComplete = [&](Addr, bool) { ++done; };
        tlbs->translate(std::move(req));
    }
    eq.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(iommu.requests, 1u);
}

TEST_F(TlbHierarchyFixture, ConcurrentCrossCuMissesMergeAtL2)
{
    unsigned done = 0;
    for (std::uint32_t cu = 0; cu < 4; ++cu) {
        TranslationRequest req;
        req.vaPage = 0x40000000;
        req.cu = cu;
        req.instruction = 1;
        req.onComplete = [&](Addr, bool) { ++done; };
        tlbs->translate(std::move(req));
    }
    eq.run();
    EXPECT_EQ(done, 4u);
    // One IOMMU request serves all four CUs.
    EXPECT_EQ(iommu.requests, 1u);
}

TEST_F(TlbHierarchyFixture, SinglePortSerializesBursts)
{
    // A 16-page burst from one CU cannot finish faster than 16 port
    // slots even with an instant IOMMU.
    std::vector<sim::Tick> completions;
    for (Addr i = 0; i < 16; ++i) {
        TranslationRequest req;
        req.vaPage = 0x40000000 + i * mem::pageSize;
        req.cu = 0;
        req.instruction = 1;
        req.onComplete = [&](Addr, bool) { completions.push_back(eq.now()); };
        tlbs->translate(std::move(req));
    }
    eq.run();
    ASSERT_EQ(completions.size(), 16u);
    EXPECT_GE(completions.back() - completions.front(),
              15u * cfg.l1PortPeriod);
}

TEST_F(TlbHierarchyFixture, EpochMetricCountsDistinctWavefronts)
{
    cfg.epochLength = 8;
    tlbs = std::make_unique<TlbHierarchy>(eq, cfg, iommu);
    // 8 L2 accesses from 2 distinct wavefronts -> one epoch of 2.
    for (unsigned i = 0; i < 8; ++i) {
        TranslationRequest req;
        req.vaPage = 0x40000000 + Addr(i) * mem::pageSize;
        req.cu = 0;
        req.wavefront = i % 2;
        req.instruction = 1;
        req.onComplete = [](Addr, bool) {};
        tlbs->translate(std::move(req));
        eq.run();
    }
    EXPECT_EQ(tlbs->epochs(), 1u);
    EXPECT_DOUBLE_EQ(tlbs->avgWavefrontsPerEpoch(), 2.0);
}

TEST_F(TlbHierarchyFixture, InvalidateAllForcesMissesAgain)
{
    translate(0x40000000);
    tlbs->invalidateAll();
    translate(0x40000000);
    EXPECT_EQ(iommu.requests, 2u);
}

TEST_F(TlbHierarchyFixture, L1CapacityEvictionFallsBackToL2)
{
    // Fill the 32-entry L1 beyond capacity; early pages must still be
    // L2 hits (512 entries hold them all).
    for (Addr i = 0; i < 40; ++i)
        translate(0x40000000 + i * mem::pageSize);
    const auto l2_hits_before = tlbs->l2().hits();
    translate(0x40000000); // evicted from L1, still in L2
    EXPECT_EQ(tlbs->l2().hits(), l2_hits_before + 1);
    EXPECT_EQ(iommu.requests, 40u);
}

TEST_F(TlbHierarchyFixture, DeathOnBadCu)
{
    TranslationRequest req;
    req.vaPage = 0x1000;
    req.cu = 99;
    EXPECT_DEATH(tlbs->translate(std::move(req)), "bad CU");
}

} // namespace
