/**
 * @file
 * Unit tests for the cross-domain channel primitive (sim/port.hh):
 * latency accounting, serial pass-through semantics, parallel inbox
 * posting/draining, conservation counters, and the composite order
 * keys that make the parallel delivery order thread-independent.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/port.hh"
#include "trace/trace.hh"

namespace {

using namespace gpuwalk;
using sim::Channel;
using sim::EventQueue;
using sim::Tick;

TEST(Port, SendAddsTheChannelLatency)
{
    EventQueue eq;
    Channel<int> ch("link", 40);
    ch.bind(eq, eq);

    Tick delivered_at = sim::maxTick;
    ch.onDeliver([&](int &&) { delivered_at = eq.now(); });

    // Advance time a little so the latency is added to "now", not 0.
    eq.schedule(eq.now() + 5, [] {});
    eq.runOne();
    ASSERT_EQ(eq.now(), 5u);

    ch.send(7);
    EXPECT_EQ(ch.sent(), 1u);
    EXPECT_EQ(ch.delivered(), 0u) << "positive latency defers delivery";

    while (eq.runOne()) {}
    EXPECT_EQ(delivered_at, 45u) << "delivery tick = send tick + latency";
    EXPECT_EQ(ch.delivered(), 1u);
    EXPECT_EQ(ch.sameTickSent(), 0u);
}

TEST(Port, MinLatencyDefaultsToTheLatency)
{
    Channel<int> ch("link", 25'000);
    EXPECT_EQ(ch.latency(), 25'000u);
    EXPECT_EQ(ch.minLatency(), 25'000u);
}

TEST(Port, ExplicitMinLatencyAllowsEarlierSendAt)
{
    EventQueue eq;
    Channel<int> ch("dram_reply", 100, 10);
    ch.bind(eq, eq);
    EXPECT_EQ(ch.minLatency(), 10u);

    std::vector<Tick> deliveries;
    ch.onDeliver([&](int &&) { deliveries.push_back(eq.now()); });

    ch.sendAt(eq.now() + 10, 1); // exactly the floor: legal
    ch.sendAt(eq.now() + 60, 2); // between floor and nominal: legal
    while (eq.runOne()) {}
    EXPECT_EQ(deliveries, (std::vector<Tick>{10, 60}));
}

TEST(Port, SameTickSendIsASynchronousCallInSerialMode)
{
    EventQueue eq;
    Channel<int> ch("zero_hop", 0);
    ch.bind(eq, eq);

    bool delivered = false;
    ch.onDeliver([&](int &&v) {
        delivered = true;
        EXPECT_EQ(v, 9);
    });

    const std::uint64_t events_before = eq.executed();
    ch.sendNow(9);
    EXPECT_TRUE(delivered) << "serial same-tick delivery is synchronous";
    EXPECT_EQ(eq.executed(), events_before) << "no event was scheduled";
    EXPECT_EQ(ch.sent(), 1u);
    EXPECT_EQ(ch.delivered(), 1u);
    EXPECT_EQ(ch.sameTickSent(), 1u);
}

TEST(Port, SerialPositiveLatencySendSchedulesExactlyOneEvent)
{
    EventQueue eq;
    Channel<int> ch("link", 8);
    ch.bind(eq, eq);
    ch.onDeliver([](int &&) {});

    ASSERT_TRUE(eq.empty());
    ch.send(1);
    EXPECT_EQ(eq.pending(), 1u)
        << "a serial send must cost the single event the direct "
           "scheduleIn it replaced cost — golden digests depend on it";
    while (eq.runOne()) {}
    EXPECT_EQ(ch.delivered(), 1u);
}

TEST(Port, ParallelSendPostsToInboxUntilDrained)
{
    EventQueue src;
    EventQueue dst;
    src.enableDomainKeys(0);
    dst.enableDomainKeys(1);

    Channel<int> ch("cross", 16);
    ch.bind(src, dst);
    ch.setParallel(true);

    std::vector<int> got;
    ch.onDeliver([&](int &&v) { got.push_back(v); });

    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.sent(), 2u);
    EXPECT_EQ(ch.delivered(), 0u);
    EXPECT_FALSE(ch.inboxEmpty());
    EXPECT_TRUE(dst.empty()) << "nothing lands in dst before drainTo";

    EXPECT_EQ(ch.drainTo(dst), 2u);
    EXPECT_TRUE(ch.inboxEmpty());
    EXPECT_EQ(dst.pending(), 2u);

    while (dst.runOne()) {}
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
    EXPECT_EQ(ch.delivered(), 2u);
    EXPECT_EQ(dst.now(), 16u);
}

/** Messages sent at the same delivery tick from the same source must
 *  deliver in send order: the composite order keys allocated by the
 *  sender carry a per-tick counter that the destination honours. */
TEST(Port, SameTickDeliveriesHonourSendOrderViaOrderKeys)
{
    EventQueue src;
    EventQueue dst;
    src.enableDomainKeys(0);
    dst.enableDomainKeys(1);

    Channel<int> ch("cross", 32);
    ch.bind(src, dst);
    ch.setParallel(true);

    std::vector<int> got;
    ch.onDeliver([&](int &&v) { got.push_back(v); });

    for (int i = 0; i < 5; ++i)
        ch.send(i); // all deliver at tick 32
    ch.drainTo(dst);
    while (dst.runOne()) {}
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

/** A same-tick parallel send inherits the executing event's key plus a
 *  call index (allocNestedKey): it sorts immediately after its parent
 *  and strictly before the parent's next sibling key. */
TEST(Port, NestedKeysExtendTheExecutingEventsKey)
{
    EventQueue eq;
    eq.enableDomainKeys(1);

    std::uint64_t parent_key = 0;
    std::uint64_t nested1 = 0;
    std::uint64_t nested2 = 0;
    eq.schedule(10, [&] {
        parent_key = eq.cursor().seq;
        nested1 = eq.allocNestedKey();
        nested2 = eq.allocNestedKey();
    });
    const std::uint64_t sibling = eq.allocOrderKey();
    while (eq.runOne()) {}

    EXPECT_EQ(nested1, parent_key + 1);
    EXPECT_EQ(nested2, parent_key + 2);
    EXPECT_LT(nested2, sibling)
        << "the sub field must stay below the next counter key";
}

/** An injected same-tick message takes its position at the destination
 *  from the *sender's* key — here the sender's event was allocated
 *  before (tick-major, then domain) anything the destination holds at
 *  that tick, so the message delivers first. */
TEST(Port, InjectedSameTickMessageSortsByItsSendersKey)
{
    EventQueue src;
    EventQueue dst;
    src.enableDomainKeys(0);
    dst.enableDomainKeys(1);

    Channel<int> ch("zero_hop", 0);
    ch.bind(src, dst);
    ch.setParallel(true);

    std::vector<std::string> order;
    ch.onDeliver([&](int &&) { order.push_back("message"); });

    src.schedule(10, [&] { ch.sendNow(1); });
    dst.schedule(10, [&] { order.push_back("dst_a"); });
    dst.schedule(10, [&] { order.push_back("dst_b"); });

    while (src.runOne()) {}
    ch.drainTo(dst);
    while (dst.runOne()) {}

    EXPECT_EQ(order,
              (std::vector<std::string>{"message", "dst_a", "dst_b"}));
}

TEST(Port, OrderKeysAreTickMajorThenDomainThenCounter)
{
    EventQueue d0;
    EventQueue d1;
    d0.enableDomainKeys(0);
    d1.enableDomainKeys(1);

    const std::uint64_t a0 = d0.allocOrderKey();
    const std::uint64_t a1 = d0.allocOrderKey();
    const std::uint64_t b0 = d1.allocOrderKey();
    EXPECT_LT(a0, a1) << "per-tick counter orders same-domain keys";
    EXPECT_LT(a1, b0) << "domain id breaks ties at equal tick";

    // Advance d0 past tick 0: its new keys beat everything above
    // because the allocation tick is the major field.
    d0.schedule(100, [] {});
    while (d0.runOne()) {}
    const std::uint64_t later = d0.allocOrderKey();
    EXPECT_GT(later, b0);
    EXPECT_EQ(later & EventQueue::orderSubMask, 0u)
        << "fresh keys carry an empty sub field";
}

/** Spawn lineage: a root event carries generation 0 and its own key;
 *  an event scheduled for the *current* tick during another event's
 *  dispatch carries the parent's key, a per-dispatch allocation
 *  index, and one generation more. A same-tick channel delivery
 *  inherits the sending event's lineage verbatim. */
TEST(Port, SpawnLineageTracksSameTickParentage)
{
    EventQueue src;
    EventQueue dst;
    src.enableDomainKeys(0);
    dst.enableDomainKeys(1);

    Channel<int> ch("zero_hop", 0);
    ch.bind(src, dst);
    ch.setParallel(true);

    EventQueue::Lineage delivered{};
    ch.onDeliver(
        [&](int &&) { delivered = dst.cursorLineage(); });

    std::uint64_t root_key = 0;
    EventQueue::Lineage root{};
    EventQueue::Lineage child_a{};
    EventQueue::Lineage child_b{};
    src.schedule(10, [&] {
        root_key = src.cursor().seq;
        root = src.cursorLineage();
        src.schedule(10, [&] {
            child_a = src.cursorLineage();
            ch.sendNow(1); // inherits child_a's lineage
        });
        src.schedule(10, [&] { child_b = src.cursorLineage(); });
    });
    while (src.runOne()) {}
    ch.drainTo(dst);
    while (dst.runOne()) {}

    EXPECT_EQ(root.gen, 0u);
    EXPECT_EQ(root.spawnKey, root_key) << "roots carry their own key";
    EXPECT_EQ(child_a.gen, 1u);
    EXPECT_EQ(child_a.spawnKey, root_key);
    EXPECT_EQ(child_a.spawnIdx, 0u);
    EXPECT_EQ(child_b.gen, 1u);
    EXPECT_EQ(child_b.spawnKey, root_key);
    EXPECT_EQ(child_b.spawnIdx, 1u);
    EXPECT_EQ(delivered.gen, child_a.gen);
    EXPECT_EQ(delivered.spawnKey, child_a.spawnKey);
    EXPECT_EQ(delivered.spawnIdx, child_a.spawnIdx);
}

/** The merge-order case the order key alone gets wrong: two domains
 *  each run a same-tick zero-delay continuation, and the parents'
 *  serial order (by allocation tick) is the *opposite* of the
 *  children's domain-id order. A serial tick runs breadth-first —
 *  both parents, then their children in parent order — which only
 *  the spawn lineage can reconstruct: the children's own keys are
 *  both fresh at the execution tick, so they tie down to the domain
 *  id, which would wrongly order d0's child first. */
TEST(Port, MergeRestoresSerialOrderForCrossDomainContinuations)
{
    EventQueue d0;
    EventQueue d1;
    d0.enableDomainKeys(0);
    d1.enableDomainKeys(1);

    trace::TraceConfig cfg;
    cfg.enabled = true;
    trace::Tracer t0(cfg);
    trace::Tracer t1(cfg);
    t0.setOrderSource(&d0);
    t1.setOrderSource(&d1);

    auto record = [](trace::Tracer &t, std::uint64_t id) {
        trace::Event ev;
        ev.kind = trace::EventKind::Coalesced;
        ev.arg0 = id;
        t.record(ev);
    };
    // d1's parent is allocated at tick 5, d0's at tick 8: in serial
    // execution order at tick 10, d1's parent runs first, so its
    // continuation must also run first — even though the children's
    // fresh tick-10 keys order d0's child ahead on the domain id.
    d1.schedule(5, [&] {
        d1.schedule(10, [&] {
            record(t1, 1);
            d1.schedule(10, [&] { record(t1, 11); });
        });
    });
    d0.schedule(8, [&] {
        d0.schedule(10, [&] {
            record(t0, 2);
            d0.schedule(10, [&] { record(t0, 12); });
        });
    });
    while (d0.runOne()) {}
    while (d1.runOne()) {}

    const trace::Tracer merged = trace::mergeTracers({&t0, &t1}, cfg);
    std::vector<std::uint64_t> order;
    merged.forEach(
        [&](const trace::Event &ev) { order.push_back(ev.arg0); });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 11, 12}))
        << "parents in key order, children in parent order";
}

TEST(Port, ConservationCountersBalanceAfterAFullDrain)
{
    EventQueue src;
    EventQueue dst;
    src.enableDomainKeys(0);
    dst.enableDomainKeys(2);

    Channel<int> ch("cross", 5);
    ch.bind(src, dst);
    ch.setParallel(true);
    ch.onDeliver([](int &&) {});

    for (int i = 0; i < 17; ++i)
        ch.send(i);
    EXPECT_EQ(ch.sent(), 17u);
    ch.drainTo(dst);
    while (dst.runOne()) {}
    EXPECT_EQ(ch.delivered(), ch.sent());
    EXPECT_TRUE(ch.inboxEmpty());
}

} // namespace
