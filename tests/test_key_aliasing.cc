/**
 * @file
 * Regression tests for (ctx, page) key aliasing.
 *
 * The fault-parking and GMMU bookkeeping maps used to pack their keys
 * as `va_page | ctx`. A page-aligned VA leaves only 12 free low bits,
 * but ContextId is 16 bits wide: ASIDs >= 4096 spilled into VA bit 12
 * and above, so (ctx 4096, page P) and (ctx 0, page P + 0x1000)
 * produced the SAME key — silently coalescing faults and sharing
 * residency/pin state across tenants. mem::pageCtxKey() packs the
 * page number above the full 16-bit ctx instead; these tests drive
 * exactly the colliding pair and fail on the old encoding.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "iommu/iommu.hh"
#include "mem/dram_controller.hh"
#include "mem/types.hh"
#include "vm/address_space.hh"
#include "vm/gmmu.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;
using Ctx = vm::Gmmu::ContextId;

/** The first ASID whose old-style key spilled into VA bits. */
constexpr Ctx highCtx = 4096;

/** The key helpers themselves must be injective on (ctx, page). */
TEST(PageCtxKey, HighAsidsDoNotAliasIntoVaBits)
{
    const Addr page = 0x40000000;
    // The historical collision: page | 4096 == (page + 0x1000) | 0.
    ASSERT_EQ(page | highCtx, (page + 0x1000) | 0u)
        << "test premise broken: pick a page with bit 12 clear";
    EXPECT_NE(mem::pageCtxKey(highCtx, page),
              mem::pageCtxKey(0, page + 0x1000));

    // Round trip through the packing.
    const std::uint64_t key = mem::pageCtxKey(highCtx, page);
    EXPECT_EQ(mem::ctxOfKey(key), highCtx);
    EXPECT_EQ(mem::pageOfKey(key), page);

    // Monotone in the page for a fixed ctx (ordered-map iteration
    // order of single-tenant runs is unchanged by the re-keying).
    EXPECT_LT(mem::pageCtxKey(0, page),
              mem::pageCtxKey(0, page + mem::pageSize));
}

/** Two spaces with colliding VA layouts, registered at ASIDs 0 and
 *  4096 — the exact pair the old packing merged. */
struct HighAsidGmmuHarness
{
    HighAsidGmmuHarness()
        : frames(Addr(1) << 30, false), gmmu(eq, cfg(), frames, store)
    {
        for (const Ctx ctx : {Ctx{0}, highCtx}) {
            spaces.push_back(
                std::make_unique<vm::AddressSpace>(store, frames));
            spaces.back()->setDemandPaging(true);
            gmmu.registerSpace(ctx, *spaces.back());
            regions.push_back(
                spaces.back()->allocate("buf", 64 * mem::pageSize));
        }
        gmmu.setServiceCallback([this](Ctx ctx, Addr page) {
            serviced.emplace_back(ctx, page);
        });
    }

    static vm::GmmuConfig
    cfg()
    {
        vm::GmmuConfig c;
        c.enabled = true;
        c.faultLatency = 1'000;
        c.migrationLatency = 100;
        return c;
    }

    /** A page of the high-ASID space with VA bit 12 clear, so its
     *  old-style key equals lowAliasPage()'s. */
    Addr
    highPage() const
    {
        Addr p = regions[1].base;
        if (p & 0x1000)
            p += mem::pageSize;
        return p;
    }

    /** The ctx-0 page one 4 KB step above: the old-key twin. */
    Addr lowAliasPage() const { return highPage() + 0x1000; }

    void
    drain()
    {
        while (eq.runOne()) {
        }
    }

    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames;
    std::vector<std::unique_ptr<vm::AddressSpace>> spaces;
    std::vector<vm::VaRegion> regions;
    vm::Gmmu gmmu;
    std::vector<std::pair<Ctx, Addr>> serviced;
};

TEST(HighAsidAliasing, ResidencyIsPerContext)
{
    HighAsidGmmuHarness h;
    const Addr hi = h.highPage(), lo = h.lowAliasPage();
    ASSERT_EQ(hi | highCtx, lo | 0u); // old keys collide

    h.gmmu.raiseFault(highCtx, hi);
    h.drain();

    EXPECT_TRUE(h.gmmu.isResident(highCtx, hi));
    // The old packing marked ctx 0's alias page resident too, so its
    // first touch never faulted and read an unmapped page.
    EXPECT_FALSE(h.gmmu.isResident(0, lo));
    EXPECT_FALSE(h.gmmu.isResident(0, hi));
}

TEST(HighAsidAliasing, FaultsAreNotCoalescedAcrossContexts)
{
    HighAsidGmmuHarness h;
    const Addr hi = h.highPage(), lo = h.lowAliasPage();

    h.gmmu.raiseFault(highCtx, hi);
    h.gmmu.raiseFault(0, lo);
    h.drain();

    EXPECT_EQ(h.gmmu.faultsRaised(), 2u);
    EXPECT_EQ(h.gmmu.faultsServiced(), 2u);
    EXPECT_EQ(h.gmmu.faultsCoalesced(), 0u);
    ASSERT_EQ(h.serviced.size(), 2u);
    EXPECT_TRUE(h.gmmu.isResident(highCtx, hi));
    EXPECT_TRUE(h.gmmu.isResident(0, lo));
}

TEST(HighAsidAliasing, PinCountsAreNotShared)
{
    HighAsidGmmuHarness h;
    const Addr hi = h.highPage(), lo = h.lowAliasPage();

    h.gmmu.pin(highCtx, hi);
    h.gmmu.pin(0, lo);
    // Old keys collapsed both pins onto one entry (count 2); the
    // first unpin then left the OTHER tenant's page unprotected.
    EXPECT_EQ(h.gmmu.pinnedPages(), 2u);
    h.gmmu.unpin(highCtx, hi);
    EXPECT_EQ(h.gmmu.pinnedPages(), 1u);
    h.gmmu.unpin(0, lo);
    EXPECT_EQ(h.gmmu.pinnedPages(), 0u);
}

/** IOMMU + GMMU end to end: the faulted_ parking map must not merge
 *  walks of old-key twins into one parking list. */
struct HighAsidIommuFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30, false};
    std::vector<std::unique_ptr<vm::AddressSpace>> spaces;
    std::vector<vm::VaRegion> regions;
    std::unique_ptr<mem::DramController> dram;
    std::unique_ptr<vm::Gmmu> gmmu;
    std::unique_ptr<iommu::Iommu> iommu;

    void
    SetUp() override
    {
        for (const Ctx ctx : {Ctx{0}, highCtx}) {
            (void)ctx;
            spaces.push_back(
                std::make_unique<vm::AddressSpace>(store, frames));
            spaces.back()->setDemandPaging(true);
            regions.push_back(
                spaces.back()->allocate("buf", 64 * mem::pageSize));
        }
        gmmu = std::make_unique<vm::Gmmu>(
            eq, HighAsidGmmuHarness::cfg(), frames, store);
        gmmu->registerSpace(0, *spaces[0]);
        gmmu->registerSpace(highCtx, *spaces[1]);

        dram = std::make_unique<mem::DramController>(
            eq, mem::DramConfig{});
        iommu = std::make_unique<iommu::Iommu>(
            eq, iommu::IommuConfig{},
            core::makeScheduler(core::SchedulerKind::Fcfs), *dram,
            store, spaces[0]->pageTable().root());
        iommu->registerContext(highCtx,
                               spaces[1]->pageTable().root());
        iommu->attachGmmu(gmmu.get());
    }

    Addr
    translate(tlb::ContextId ctx, Addr va_page)
    {
        Addr result = 0;
        tlb::TranslationRequest req;
        req.vaPage = va_page;
        req.instruction = 1;
        req.ctx = ctx;
        req.onComplete = [&](Addr pa, bool) { result = pa; };
        iommu->translate(std::move(req));
        eq.run();
        return result;
    }

    Addr
    highPage() const
    {
        Addr p = regions[1].base;
        if (p & 0x1000)
            p += mem::pageSize;
        return p;
    }
};

TEST_F(HighAsidIommuFixture, FaultParkingKeepsOldKeyTwinsSeparate)
{
    const Addr hi = highPage();
    const Addr lo = hi + 0x1000;
    ASSERT_EQ(hi | highCtx, lo | 0u); // old keys collide

    // Both walks fault and both must complete with the right tenant's
    // translation. Under the old key the second walk parked on the
    // FIRST fault's list and was re-walked with the wrong page
    // resident (or the assertion in onFaultServiced fired).
    const Addr paHi = translate(highCtx, hi);
    const Addr paLo = translate(0, lo);

    EXPECT_EQ(iommu->faultedWalks(), 0u);
    EXPECT_EQ(gmmu->faultsRaised(), 2u);
    EXPECT_EQ(paHi, *spaces[1]->pageTable().translate(hi));
    EXPECT_EQ(paLo, *spaces[0]->pageTable().translate(lo));
    EXPECT_TRUE(gmmu->isResident(highCtx, hi));
    EXPECT_TRUE(gmmu->isResident(0, lo));
    EXPECT_FALSE(gmmu->isResident(0, hi));
    EXPECT_FALSE(gmmu->isResident(highCtx, lo));
}

TEST_F(HighAsidIommuFixture, ConcurrentTwinFaultsParkOnSeparateEntries)
{
    const Addr hi = highPage();
    const Addr lo = hi + 0x1000;

    // Submit both before running: the two faults are raised in the
    // same batch window, the case where old-key coalescing merged the
    // parking lists.
    Addr paHi = 0, paLo = 0;
    tlb::TranslationRequest a;
    a.vaPage = hi;
    a.instruction = 1;
    a.ctx = highCtx;
    a.onComplete = [&](Addr pa, bool) { paHi = pa; };
    iommu->translate(std::move(a));
    tlb::TranslationRequest b;
    b.vaPage = lo;
    b.instruction = 2;
    b.ctx = 0;
    b.onComplete = [&](Addr pa, bool) { paLo = pa; };
    iommu->translate(std::move(b));
    eq.run();

    EXPECT_EQ(gmmu->faultsRaised(), 2u);
    EXPECT_EQ(gmmu->faultsCoalesced(), 0u);
    EXPECT_EQ(iommu->faultedWalks(), 0u);
    EXPECT_EQ(paHi, *spaces[1]->pageTable().translate(hi));
    EXPECT_EQ(paLo, *spaces[0]->pageTable().translate(lo));
}

} // namespace
