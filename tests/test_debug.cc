/**
 * @file
 * Tests for the flag-gated debug tracing facility.
 *
 * The flag set is parsed from GPUWALK_DEBUG once per process, so the
 * enabled-path is exercised in a forked child (gtest death test)
 * where the environment can be set before the first parse.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/debug.hh"

namespace {

using namespace gpuwalk::sim;

TEST(DebugTrace, DisabledByDefault)
{
    // The test environment does not set GPUWALK_DEBUG.
    ASSERT_EQ(std::getenv("GPUWALK_DEBUG"), nullptr);
    EXPECT_FALSE(debug::enabled("walks"));
    EXPECT_FALSE(debug::enabled("all"));
}

TEST(DebugTrace, LogIsNoOpWhenDisabled)
{
    // Must not emit or crash; formatting is skipped entirely.
    testing::internal::CaptureStderr();
    debug::log("walks", 123, "should not appear ", 42);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(DebugTraceDeathTest, EnabledFlagEmitsWithTimestamp)
{
    // Run the enabled path in a re-executed child process (threadsafe
    // death-test style) so GPUWALK_DEBUG is set before the lazy parse.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("GPUWALK_DEBUG", "walks,sched", 1);
            if (!debug::enabled("walks"))
                _exit(2);
            if (!debug::enabled("sched"))
                _exit(3);
            if (debug::enabled("dram"))
                _exit(4);
            debug::log("walks", 777, "hello ", 42);
            _exit(0);
        },
        ::testing::ExitedWithCode(0), "777: \\[walks\\] hello 42");
}

TEST(DebugTraceDeathTest, AllEnablesEverything)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("GPUWALK_DEBUG", "all", 1);
            _exit(debug::enabled("anything") ? 0 : 1);
        },
        ::testing::ExitedWithCode(0), "");
}

} // namespace
