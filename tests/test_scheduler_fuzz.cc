/**
 * @file
 * Randomized invariant checks on the scheduling policies: drive each
 * scheduler through thousands of random insert/dispatch cycles and
 * assert its defining property at every selection — plus traced-stream
 * well-formedness checks on full-system runs of every policy.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/fcfs_scheduler.hh"
#include "core/oldest_job_scheduler.hh"
#include "core/simt_aware_scheduler.hh"
#include "core/srpt_scheduler.hh"
#include "core/walk_scheduler.hh"
#include "sim/rng.hh"
#include "system/system.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

/** Random insert/extract driver shared by the per-policy tests. */
template <typename CheckFn>
void
drive(WalkScheduler &sched, CheckFn &&check, std::uint64_t seed,
      bool with_scores = false)
{
    sim::Rng rng(seed);
    WalkBuffer buf(64);
    std::uint64_t next_seq = 0;
    std::map<tlb::InstructionId, std::uint64_t> scores;

    for (int i = 0; i < 20000; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            PendingWalk w;
            w.seq = next_seq++;
            w.request.instruction = rng.below(16);
            w.request.vaPage = rng.below(1024) << 12;
            if (with_scores) {
                // Emulate the IOMMU's accumulation rule.
                auto &s = scores[w.request.instruction];
                s += 1 + rng.below(4);
                w.score = s;
                buf.forEachOfInstruction(
                    w.request.instruction,
                    [&](PendingWalk &e) { e.score = s; });
            }
            buf.insert(std::move(w));
        } else {
            const std::size_t idx = sched.selectNext(buf);
            ASSERT_LT(idx, buf.size());
            check(buf, idx, sched);
            PendingWalk w = buf.extract(idx);
            sched.onDispatch(buf, w);
            if (buf.empty())
                scores.clear();
        }
    }
}

TEST(SchedulerFuzz, FcfsAlwaysPicksGlobalOldest)
{
    FcfsScheduler sched;
    drive(sched,
          [](const WalkBuffer &buf, std::size_t idx, WalkScheduler &) {
              ASSERT_EQ(buf.at(idx).seq,
                        buf.at(buf.oldestIndex()).seq);
          },
          11);
}

TEST(SchedulerFuzz, SimtAwareBatchesOrPicksMinScore)
{
    SimtAwareScheduler sched;
    drive(
        sched,
        [](const WalkBuffer &buf, std::size_t idx, WalkScheduler &s) {
            auto &simt = static_cast<SimtAwareScheduler &>(s);
            const auto &picked = buf.at(idx);
            if (simt.lastInstruction()) {
                // If any sibling of the last instruction is present,
                // the pick must be one of them (and the oldest).
                bool sibling_exists = false;
                std::uint64_t oldest_sibling = ~0ull;
                for (const auto &e : buf.entries()) {
                    if (e.request.instruction
                        == *simt.lastInstruction()) {
                        sibling_exists = true;
                        oldest_sibling =
                            std::min(oldest_sibling, e.seq);
                    }
                }
                if (sibling_exists) {
                    ASSERT_EQ(picked.request.instruction,
                              *simt.lastInstruction());
                    ASSERT_EQ(picked.seq, oldest_sibling);
                    return;
                }
            }
            // Otherwise: minimum score; ties oldest-first.
            for (const auto &e : buf.entries()) {
                ASSERT_FALSE(e.score < picked.score
                             || (e.score == picked.score
                                 && e.seq < picked.seq))
                    << "better candidate existed";
            }
        },
        13, /*with_scores=*/true);
}

TEST(SchedulerFuzz, OldestJobNeverSkipsOlderInstructions)
{
    OldestJobScheduler sched;
    // Track instruction first-arrival externally as the reference.
    std::map<tlb::InstructionId, std::uint64_t> first_seen;
    sim::Rng rng(17);
    WalkBuffer buf(64);
    std::uint64_t next_seq = 0;

    for (int i = 0; i < 20000; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            PendingWalk w;
            w.seq = next_seq++;
            w.request.instruction = rng.below(16);
            first_seen.try_emplace(w.request.instruction, w.seq);
            buf.insert(std::move(w));
        } else {
            const std::size_t idx = sched.selectNext(buf);
            const auto picked_age =
                first_seen.at(buf.at(idx).request.instruction);
            for (const auto &e : buf.entries()) {
                ASSERT_GE(first_seen.at(e.request.instruction),
                          picked_age)
                    << "older instruction was skipped";
            }
            auto w = buf.extract(idx);
            sched.onDispatch(buf, w);
        }
    }
}

TEST(SchedulerFuzz, SrptMatchesBruteForceRemaining)
{
    SrptScheduler sched(/*enable_batching=*/false);
    auto estimate = [](mem::Addr va, tlb::ContextId = 0) -> unsigned {
        return 1 + (va >> 12) % 4;
    };
    sched.setEstimator(estimate);

    drive(sched,
          [&](const WalkBuffer &buf, std::size_t idx, WalkScheduler &) {
              // Brute-force remaining work per instruction.
              std::map<tlb::InstructionId, std::uint64_t> remaining;
              for (const auto &e : buf.entries())
                  remaining[e.request.instruction] +=
                      estimate(e.request.vaPage);
              const auto picked =
                  remaining.at(buf.at(idx).request.instruction);
              for (const auto &[instr, rem] : remaining)
                  ASSERT_GE(rem, picked);
          },
          19);
}

// --- Traced-stream well-formedness ---------------------------------

/**
 * Validates one traced run's event stream: every enqueued walk is
 * scheduled and completes exactly once, lifecycle spans nest in order,
 * and each walker's timeline is monotone and non-interleaved.
 */
void
validateTracedStream(const std::vector<trace::Event> &events,
                     unsigned num_walkers,
                     const gpuwalk::system::RunStats &stats)
{
    using trace::EventKind;
    using WalkKey = std::pair<std::uint64_t, mem::Addr>;

    /** One walker's in-flight walk. */
    struct Active
    {
        WalkKey key;
        std::optional<unsigned> fetchLevel; ///< issued, not completed
        std::optional<unsigned> lastLevel;  ///< last completed level
        sim::Tick issuedAt = 0;
        std::uint64_t completions = 0;
    };

    std::map<WalkKey, sim::Tick> pending;           // enqueued
    std::map<WalkKey, std::uint32_t> inflight;      // on a walker
    std::set<WalkKey> done;
    std::map<std::uint32_t, Active> active;         // per walker
    std::map<std::uint32_t, sim::Tick> walkerTick;
    sim::Tick lastTick = 0;

    for (const auto &ev : events) {
        // The stream is recorded in simulation order.
        ASSERT_GE(ev.tick, lastTick);
        lastTick = ev.tick;
        const WalkKey key{ev.instruction, ev.vaPage};

        switch (ev.kind) {
        case EventKind::Coalesced:
            break; // TLB-level; most never reach the walk path
        case EventKind::Enqueued:
            // (instruction, page) identifies a walk: MSHR merging
            // guarantees it enters the walk path at most once.
            ASSERT_FALSE(pending.count(key));
            ASSERT_FALSE(inflight.count(key));
            ASSERT_FALSE(done.count(key)) << "walk re-enqueued";
            pending[key] = ev.tick;
            break;
        case EventKind::Scored:
            ASSERT_TRUE(pending.count(key))
                << "scored a walk that is not buffered";
            break;
        case EventKind::Scheduled: {
            ASSERT_TRUE(pending.count(key));
            ASSERT_GE(ev.tick, pending.at(key));
            ASSERT_LT(ev.walker, num_walkers);
            ASSERT_FALSE(active.count(ev.walker))
                << "walker " << ev.walker << " double-booked";
            pending.erase(key);
            inflight[key] = ev.walker;
            active[ev.walker] = Active{key, {}, {}, 0, 0};
            walkerTick[ev.walker] = ev.tick;
            break;
        }
        case EventKind::MemIssued: {
            ASSERT_TRUE(inflight.count(key));
            ASSERT_EQ(inflight.at(key), ev.walker);
            auto &a = active.at(ev.walker);
            ASSERT_EQ(a.key, key) << "walker events interleaved";
            ASSERT_FALSE(a.fetchLevel) << "two fetches outstanding";
            ASSERT_GE(ev.tick, walkerTick.at(ev.walker));
            ASSERT_GE(unsigned(ev.level), 1u);
            ASSERT_LE(unsigned(ev.level), vm::numPtLevels);
            if (a.lastLevel) {
                // The walk descends one level per fetch.
                ASSERT_EQ(unsigned(ev.level), *a.lastLevel - 1);
            }
            a.fetchLevel = ev.level;
            a.issuedAt = ev.tick;
            walkerTick[ev.walker] = ev.tick;
            break;
        }
        case EventKind::MemCompleted: {
            ASSERT_TRUE(inflight.count(key));
            auto &a = active.at(ev.walker);
            ASSERT_EQ(a.key, key);
            ASSERT_TRUE(a.fetchLevel);
            ASSERT_EQ(unsigned(ev.level), *a.fetchLevel);
            ASSERT_GE(ev.tick, a.issuedAt);
            ASSERT_EQ(ev.arg0, ev.tick - a.issuedAt); // latency
            a.lastLevel = a.fetchLevel;
            a.fetchLevel.reset();
            ++a.completions;
            walkerTick[ev.walker] = ev.tick;
            break;
        }
        case EventKind::WalkDone: {
            ASSERT_TRUE(inflight.count(key));
            ASSERT_EQ(inflight.at(key), ev.walker);
            auto &a = active.at(ev.walker);
            ASSERT_EQ(a.key, key);
            ASSERT_FALSE(a.fetchLevel) << "done with a fetch in flight";
            ASSERT_GE(ev.tick, walkerTick.at(ev.walker));
            ASSERT_EQ(ev.arg0, a.completions);
            inflight.erase(key);
            active.erase(ev.walker);
            walkerTick[ev.walker] = ev.tick;
            ASSERT_TRUE(done.insert(key).second)
                << "walk completed twice";
            break;
        }
        case EventKind::FaultRaised:
        case EventKind::FaultServiced:
            FAIL() << "fault event in a fully resident run";
            break;
        }
    }

    // Everything enqueued drained: no pending walks, no busy walkers.
    EXPECT_TRUE(pending.empty());
    EXPECT_TRUE(inflight.empty());
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(done.size(), stats.walksCompleted);
}

TEST(SchedulerFuzz, TracedStreamsAreWellFormedForEveryScheduler)
{
    // All five paper policies over the same irregular workload.
    for (const auto kind :
         {SchedulerKind::Fcfs, SchedulerKind::Random,
          SchedulerKind::SjfOnly, SchedulerKind::BatchOnly,
          SchedulerKind::SimtAware}) {
        SCOPED_TRACE(toString(kind));
        auto cfg = gpuwalk::system::SystemConfig::baseline();
        cfg.scheduler = kind;
        cfg.trace.enabled = true;

        workload::WorkloadParams params;
        params.wavefronts = 16;
        params.instructionsPerWavefront = 6;
        params.footprintScale = 0.05;
        params.seed = 11;

        gpuwalk::system::System sys(cfg);
        sys.loadBenchmark("GEV", params);
        const auto stats = sys.run();

        ASSERT_EQ(sys.tracer()->dropped(), 0u);
        validateTracedStream(sys.tracer()->snapshot(),
                             cfg.iommu.numWalkers, stats);
    }
}

TEST(SchedulerFuzz, AgingGuaranteesEventualService)
{
    // With threshold T, no request may be bypassed more than T + the
    // in-flight window times.
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 32;
    SimtAwareScheduler sched(cfg);
    drive(
        sched,
        [&](const WalkBuffer &buf, std::size_t, WalkScheduler &) {
            for (const auto &e : buf.entries())
                ASSERT_LE(e.bypassed, cfg.agingThreshold + 1);
        },
        23, /*with_scores=*/true);
}

} // namespace
