/**
 * @file
 * Randomized invariant checks on the scheduling policies: drive each
 * scheduler through thousands of random insert/dispatch cycles and
 * assert its defining property at every selection.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/fcfs_scheduler.hh"
#include "core/oldest_job_scheduler.hh"
#include "core/simt_aware_scheduler.hh"
#include "core/srpt_scheduler.hh"
#include "core/walk_scheduler.hh"
#include "sim/rng.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

/** Random insert/extract driver shared by the per-policy tests. */
template <typename CheckFn>
void
drive(WalkScheduler &sched, CheckFn &&check, std::uint64_t seed,
      bool with_scores = false)
{
    sim::Rng rng(seed);
    WalkBuffer buf(64);
    std::uint64_t next_seq = 0;
    std::map<tlb::InstructionId, std::uint64_t> scores;

    for (int i = 0; i < 20000; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            PendingWalk w;
            w.seq = next_seq++;
            w.request.instruction = rng.below(16);
            w.request.vaPage = rng.below(1024) << 12;
            if (with_scores) {
                // Emulate the IOMMU's accumulation rule.
                auto &s = scores[w.request.instruction];
                s += 1 + rng.below(4);
                w.score = s;
                buf.forEachOfInstruction(
                    w.request.instruction,
                    [&](PendingWalk &e) { e.score = s; });
            }
            buf.insert(std::move(w));
        } else {
            const std::size_t idx = sched.selectNext(buf);
            ASSERT_LT(idx, buf.size());
            check(buf, idx, sched);
            PendingWalk w = buf.extract(idx);
            sched.onDispatch(buf, w);
            if (buf.empty())
                scores.clear();
        }
    }
}

TEST(SchedulerFuzz, FcfsAlwaysPicksGlobalOldest)
{
    FcfsScheduler sched;
    drive(sched,
          [](const WalkBuffer &buf, std::size_t idx, WalkScheduler &) {
              ASSERT_EQ(buf.at(idx).seq,
                        buf.at(buf.oldestIndex()).seq);
          },
          11);
}

TEST(SchedulerFuzz, SimtAwareBatchesOrPicksMinScore)
{
    SimtAwareScheduler sched;
    drive(
        sched,
        [](const WalkBuffer &buf, std::size_t idx, WalkScheduler &s) {
            auto &simt = static_cast<SimtAwareScheduler &>(s);
            const auto &picked = buf.at(idx);
            if (simt.lastInstruction()) {
                // If any sibling of the last instruction is present,
                // the pick must be one of them (and the oldest).
                bool sibling_exists = false;
                std::uint64_t oldest_sibling = ~0ull;
                for (const auto &e : buf.entries()) {
                    if (e.request.instruction
                        == *simt.lastInstruction()) {
                        sibling_exists = true;
                        oldest_sibling =
                            std::min(oldest_sibling, e.seq);
                    }
                }
                if (sibling_exists) {
                    ASSERT_EQ(picked.request.instruction,
                              *simt.lastInstruction());
                    ASSERT_EQ(picked.seq, oldest_sibling);
                    return;
                }
            }
            // Otherwise: minimum score; ties oldest-first.
            for (const auto &e : buf.entries()) {
                ASSERT_FALSE(e.score < picked.score
                             || (e.score == picked.score
                                 && e.seq < picked.seq))
                    << "better candidate existed";
            }
        },
        13, /*with_scores=*/true);
}

TEST(SchedulerFuzz, OldestJobNeverSkipsOlderInstructions)
{
    OldestJobScheduler sched;
    // Track instruction first-arrival externally as the reference.
    std::map<tlb::InstructionId, std::uint64_t> first_seen;
    sim::Rng rng(17);
    WalkBuffer buf(64);
    std::uint64_t next_seq = 0;

    for (int i = 0; i < 20000; ++i) {
        if (!buf.full() && (buf.empty() || rng.chance(0.55))) {
            PendingWalk w;
            w.seq = next_seq++;
            w.request.instruction = rng.below(16);
            first_seen.try_emplace(w.request.instruction, w.seq);
            buf.insert(std::move(w));
        } else {
            const std::size_t idx = sched.selectNext(buf);
            const auto picked_age =
                first_seen.at(buf.at(idx).request.instruction);
            for (const auto &e : buf.entries()) {
                ASSERT_GE(first_seen.at(e.request.instruction),
                          picked_age)
                    << "older instruction was skipped";
            }
            auto w = buf.extract(idx);
            sched.onDispatch(buf, w);
        }
    }
}

TEST(SchedulerFuzz, SrptMatchesBruteForceRemaining)
{
    SrptScheduler sched(/*enable_batching=*/false);
    auto estimate = [](mem::Addr va) -> unsigned {
        return 1 + (va >> 12) % 4;
    };
    sched.setEstimator(estimate);

    drive(sched,
          [&](const WalkBuffer &buf, std::size_t idx, WalkScheduler &) {
              // Brute-force remaining work per instruction.
              std::map<tlb::InstructionId, std::uint64_t> remaining;
              for (const auto &e : buf.entries())
                  remaining[e.request.instruction] +=
                      estimate(e.request.vaPage);
              const auto picked =
                  remaining.at(buf.at(idx).request.instruction);
              for (const auto &[instr, rem] : remaining)
                  ASSERT_GE(rem, picked);
          },
          19);
}

TEST(SchedulerFuzz, AgingGuaranteesEventualService)
{
    // With threshold T, no request may be bypassed more than T + the
    // in-flight window times.
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 32;
    SimtAwareScheduler sched(cfg);
    drive(
        sched,
        [&](const WalkBuffer &buf, std::size_t, WalkScheduler &) {
            for (const auto &e : buf.entries())
                ASSERT_LE(e.bypassed, cfg.agingThreshold + 1);
        },
        23, /*with_scores=*/true);
}

} // namespace
