/**
 * @file
 * Unit tests for the x86-64 four-level page table.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "vm/frame_allocator.hh"
#include "vm/page_table.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::vm;
using gpuwalk::mem::Addr;

struct PageTableFixture : public ::testing::Test
{
    mem::BackingStore store;
    FrameAllocator frames{Addr(1) << 30};
    PageTable table{store, frames};
};

TEST_F(PageTableFixture, EmptyTableTranslatesNothing)
{
    EXPECT_FALSE(table.translate(0x1000).has_value());
    EXPECT_EQ(table.mappings(), 0u);
    EXPECT_EQ(table.tablePages(), 1u); // just the root
}

TEST_F(PageTableFixture, MapThenTranslate)
{
    table.map(0x40000000, 0x5000);
    auto pa = table.translate(0x40000000);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x5000u);
}

TEST_F(PageTableFixture, OffsetWithinPagePreserved)
{
    table.map(0x40000000, 0x5000);
    auto pa = table.translate(0x40000abc);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x5abcu);
}

TEST_F(PageTableFixture, FourLevelAllocation)
{
    table.map(0x40000000, 0x5000);
    // Root + PDPT + PD + PT.
    EXPECT_EQ(table.tablePages(), 4u);
    EXPECT_EQ(table.mappings(), 1u);
}

TEST_F(PageTableFixture, NeighbouringPagesShareTables)
{
    table.map(0x40000000, 0x5000);
    table.map(0x40001000, 0x6000);
    EXPECT_EQ(table.tablePages(), 4u); // same PT page
    EXPECT_EQ(table.mappings(), 2u);
}

TEST_F(PageTableFixture, DistantPagesAllocateSeparateSubtrees)
{
    table.map(0x40000000, 0x5000);
    const auto before = table.tablePages();
    // 512 GB away: different PML4 entry.
    table.map(Addr(1) << 39 | 0x40000000, 0x7000);
    EXPECT_EQ(table.tablePages(), before + 3);
}

TEST_F(PageTableFixture, IndexExtraction)
{
    // VA = PML4 idx 1, PDPT idx 2, PD idx 3, PT idx 4.
    const Addr va = (Addr(1) << 39) | (Addr(2) << 30) | (Addr(3) << 21)
                    | (Addr(4) << 12);
    EXPECT_EQ(PageTable::indexAt(va, PtLevel::Pml4), 1u);
    EXPECT_EQ(PageTable::indexAt(va, PtLevel::Pdpt), 2u);
    EXPECT_EQ(PageTable::indexAt(va, PtLevel::Pd), 3u);
    EXPECT_EQ(PageTable::indexAt(va, PtLevel::Pt), 4u);
}

TEST_F(PageTableFixture, RegionBaseGranularity)
{
    const Addr va = 0x40352abc;
    EXPECT_EQ(PageTable::regionBase(va, PtLevel::Pt), 0x40352000u);
    EXPECT_EQ(PageTable::regionBase(va, PtLevel::Pd),
              va & ~((Addr(1) << 21) - 1));
    EXPECT_EQ(PageTable::regionBase(va, PtLevel::Pdpt),
              va & ~((Addr(1) << 30) - 1));
}

TEST_F(PageTableFixture, EntryAddressChainsThroughLevels)
{
    const Addr va = 0x40000000;
    table.map(va, 0x5000);

    // The PML4 entry lives in the root frame at the right slot.
    auto pml4e = table.entryAddress(va, PtLevel::Pml4);
    ASSERT_TRUE(pml4e.has_value());
    EXPECT_EQ(*pml4e, table.root()
                          + Addr(PageTable::indexAt(va, PtLevel::Pml4))
                                * 8);

    // Following the chain functionally reaches the leaf PTE, whose
    // stored frame is the mapped physical page.
    auto pte = table.entryAddress(va, PtLevel::Pt);
    ASSERT_TRUE(pte.has_value());
    const std::uint64_t leaf = store.read64(*pte);
    EXPECT_TRUE(leaf & pte::present);
    EXPECT_EQ(leaf & pte::addrMask, 0x5000u);
}

TEST_F(PageTableFixture, EntryAddressOnUnmappedUpperLevel)
{
    EXPECT_FALSE(table.entryAddress(0x40000000, PtLevel::Pt)
                     .has_value());
    // The root always exists, so the PML4 slot is addressable.
    EXPECT_TRUE(table.entryAddress(0x40000000, PtLevel::Pml4)
                    .has_value());
}

TEST_F(PageTableFixture, RemapUpdatesTranslation)
{
    table.map(0x40000000, 0x5000);
    table.map(0x40000000, 0x9000);
    EXPECT_EQ(table.mappings(), 1u); // same VA, not a new mapping
    EXPECT_EQ(*table.translate(0x40000000), 0x9000u);
}

TEST_F(PageTableFixture, ManyMappingsAllTranslate)
{
    for (Addr i = 0; i < 2048; ++i)
        table.map(0x40000000 + i * mem::pageSize, 0x100000 + i * mem::pageSize);
    for (Addr i = 0; i < 2048; ++i) {
        auto pa = table.translate(0x40000000 + i * mem::pageSize + 42);
        ASSERT_TRUE(pa.has_value());
        EXPECT_EQ(*pa, 0x100000 + i * mem::pageSize + 42);
    }
    // 2048 pages span 4 PT pages under one PD.
    EXPECT_EQ(table.tablePages(), 3u + 4u);
}

TEST_F(PageTableFixture, NonWritableMapping)
{
    table.map(0x40000000, 0x5000, /*writable=*/false);
    auto pte_addr = table.entryAddress(0x40000000, PtLevel::Pt);
    ASSERT_TRUE(pte_addr.has_value());
    EXPECT_FALSE(store.read64(*pte_addr) & pte::writable);
}

TEST_F(PageTableFixture, DeathOnUnalignedMap)
{
    EXPECT_DEATH(table.map(0x40000001, 0x5000), "unaligned va");
    EXPECT_DEATH(table.map(0x40000000, 0x5001), "unaligned pa");
}

} // namespace
