/**
 * @file
 * Differential golden-digest tests: the bit-exact behavioural oracle
 * for hot-path refactors of the simulation core.
 *
 * Each of the five paper schedulers runs three workloads (two
 * irregular, one regular) at a small fixed configuration with
 * walk-lifecycle tracing enabled. The FNV-1a trace digest and the
 * headline RunStats of every run are compared against committed
 * golden values in tests/golden/digests.json. Any change that
 * perturbs simulated behaviour — event ordering, walk scheduling,
 * latencies — fails loudly here; changes that only make the
 * simulator faster leave every value untouched.
 *
 * The golden store is shared with the multi-tenant determinism test
 * ("tenant..." keys); regeneration merges this test's keys into the
 * committed file and preserves the rest.
 *
 * Regenerating goldens (only after an *intentional* behaviour
 * change, with the diff reviewed):
 *
 *     GPUWALK_UPDATE_GOLDEN=1 build/tests/gpuwalk_tests \
 *         --gtest_filter='DigestGolden.*'
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "exp/run.hh"
#include "golden_store.hh"
#include "trace/digest.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::testing::GoldenEntry;

/** Grid: the five paper policies x (two irregular + one regular). */
const std::vector<core::SchedulerKind> goldenSchedulers{
    core::SchedulerKind::Fcfs,      core::SchedulerKind::Random,
    core::SchedulerKind::SjfOnly,   core::SchedulerKind::BatchOnly,
    core::SchedulerKind::SimtAware};

const std::vector<std::string> goldenWorkloads{"MVT", "BIC", "KMN"};

/** Small but contended: enough walks to exercise every scheduler
 *  decision path while keeping the full 15-run grid under a few
 *  seconds. Changing any of these invalidates the goldens. */
workload::WorkloadParams
goldenParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 32;
    params.instructionsPerWavefront = 8;
    params.seed = 7;
    params.footprintScale = 0.05;
    params.computeCycles = 20;
    return params;
}

std::string
entryKey(const std::string &workload, core::SchedulerKind sched)
{
    return workload + "/" + core::toString(sched);
}

GoldenEntry
runPoint(const std::string &workload, core::SchedulerKind sched)
{
    system::SystemConfig cfg = system::SystemConfig::baseline();
    cfg.scheduler = sched;
    cfg.trace.enabled = true;
    const exp::RunResult result =
        exp::runOne(cfg, workload, goldenParams());

    GoldenEntry e;
    e.digest = trace::digestHex(result.stats.traceDigest);
    e.runtimeTicks = result.stats.runtimeTicks;
    e.instructions = result.stats.instructions;
    e.translationRequests = result.stats.translationRequests;
    e.walkRequests = result.stats.walkRequests;
    e.walksCompleted = result.stats.walksCompleted;
    e.traceEvents = result.stats.traceEvents;
    EXPECT_EQ(result.stats.traceDropped, 0u)
        << "ring too small for golden runs; digests would depend on "
           "drop behaviour";
    return e;
}

TEST(DigestGolden, AllSchedulersMatchCommittedDigests)
{
    std::map<std::string, GoldenEntry> computed;
    for (const auto &workload : goldenWorkloads) {
        for (const auto sched : goldenSchedulers)
            computed[entryKey(workload, sched)] =
                runPoint(workload, sched);
    }

    if (gpuwalk::testing::updateRequested()) {
        ASSERT_TRUE(gpuwalk::testing::writeGoldensMerged(computed))
            << "cannot write " << gpuwalk::testing::goldenPath();
        GTEST_SKIP() << "goldens rewritten at "
                     << gpuwalk::testing::goldenPath();
    }

    GPUWALK_EXPECT_GOLDENS_MATCH(computed);
}

/** The digest must be a pure function of simulated behaviour: two
 *  identical runs in one process (warm allocator, different object
 *  addresses) digest identically. */
TEST(DigestGolden, DigestIsRunToRunDeterministic)
{
    const auto a = runPoint("MVT", core::SchedulerKind::SimtAware);
    const auto b = runPoint("MVT", core::SchedulerKind::SimtAware);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.traceEvents, b.traceEvents);
}

} // namespace
