/**
 * @file
 * Differential golden-digest tests: the bit-exact behavioural oracle
 * for hot-path refactors of the simulation core.
 *
 * Each of the five paper schedulers runs three workloads (two
 * irregular, one regular) at a small fixed configuration with
 * walk-lifecycle tracing enabled. The FNV-1a trace digest and the
 * headline RunStats of every run are compared against committed
 * golden values in tests/golden/digests.json. Any change that
 * perturbs simulated behaviour — event ordering, walk scheduling,
 * latencies — fails loudly here; changes that only make the
 * simulator faster leave every value untouched.
 *
 * Regenerating goldens (only after an *intentional* behaviour
 * change, with the diff reviewed):
 *
 *     GPUWALK_UPDATE_GOLDEN=1 build/tests/gpuwalk_tests \
 *         --gtest_filter='DigestGolden.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/run.hh"
#include "trace/digest.hh"

namespace {

using namespace gpuwalk;

/** Grid: the five paper policies x (two irregular + one regular). */
const std::vector<core::SchedulerKind> goldenSchedulers{
    core::SchedulerKind::Fcfs,      core::SchedulerKind::Random,
    core::SchedulerKind::SjfOnly,   core::SchedulerKind::BatchOnly,
    core::SchedulerKind::SimtAware};

const std::vector<std::string> goldenWorkloads{"MVT", "BIC", "KMN"};

/** Small but contended: enough walks to exercise every scheduler
 *  decision path while keeping the full 15-run grid under a few
 *  seconds. Changing any of these invalidates the goldens. */
workload::WorkloadParams
goldenParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 32;
    params.instructionsPerWavefront = 8;
    params.seed = 7;
    params.footprintScale = 0.05;
    params.computeCycles = 20;
    return params;
}

/** The values a golden entry pins down. */
struct GoldenEntry
{
    std::string digest; ///< 16-digit hex FNV-1a trace digest
    std::uint64_t runtimeTicks = 0;
    std::uint64_t instructions = 0;
    std::uint64_t translationRequests = 0;
    std::uint64_t walkRequests = 0;
    std::uint64_t walksCompleted = 0;
    std::uint64_t traceEvents = 0;
};

std::string
goldenPath()
{
    return std::string(GPUWALK_TESTS_SOURCE_DIR) + "/golden/digests.json";
}

std::string
entryKey(const std::string &workload, core::SchedulerKind sched)
{
    return workload + "/" + core::toString(sched);
}

GoldenEntry
runPoint(const std::string &workload, core::SchedulerKind sched)
{
    system::SystemConfig cfg = system::SystemConfig::baseline();
    cfg.scheduler = sched;
    cfg.trace.enabled = true;
    const exp::RunResult result =
        exp::runOne(cfg, workload, goldenParams());

    GoldenEntry e;
    e.digest = trace::digestHex(result.stats.traceDigest);
    e.runtimeTicks = result.stats.runtimeTicks;
    e.instructions = result.stats.instructions;
    e.translationRequests = result.stats.translationRequests;
    e.walkRequests = result.stats.walkRequests;
    e.walksCompleted = result.stats.walksCompleted;
    e.traceEvents = result.stats.traceEvents;
    EXPECT_EQ(result.stats.traceDropped, 0u)
        << "ring too small for golden runs; digests would depend on "
           "drop behaviour";
    return e;
}

/**
 * Parses the committed golden file. The format is the machine-written
 * one-entry-per-line JSON produced by writeGoldens(); parsing scans
 * for the known quoted keys rather than pulling in a JSON library.
 */
std::map<std::string, GoldenEntry>
readGoldens()
{
    std::ifstream in(goldenPath());
    if (!in)
        return {};

    auto field = [](const std::string &line, const std::string &key)
        -> std::string {
        const std::string marker = "\"" + key + "\":";
        const auto pos = line.find(marker);
        if (pos == std::string::npos)
            return "";
        std::size_t begin = pos + marker.size();
        while (begin < line.size()
               && (line[begin] == ' ' || line[begin] == '"')) {
            ++begin;
        }
        std::size_t end = begin;
        while (end < line.size() && line[end] != ','
               && line[end] != '"' && line[end] != '}') {
            ++end;
        }
        return line.substr(begin, end - begin);
    };

    std::map<std::string, GoldenEntry> out;
    std::string line;
    while (std::getline(in, line)) {
        const std::string key = field(line, "key");
        if (key.empty())
            continue;
        GoldenEntry e;
        e.digest = field(line, "digest");
        e.runtimeTicks = std::stoull(field(line, "runtime_ticks"));
        e.instructions = std::stoull(field(line, "instructions"));
        e.translationRequests =
            std::stoull(field(line, "translation_requests"));
        e.walkRequests = std::stoull(field(line, "walk_requests"));
        e.walksCompleted = std::stoull(field(line, "walks_completed"));
        e.traceEvents = std::stoull(field(line, "trace_events"));
        out[key] = e;
    }
    return out;
}

void
writeGoldens(const std::map<std::string, GoldenEntry> &entries)
{
    std::ofstream out(goldenPath());
    ASSERT_TRUE(out) << "cannot write " << goldenPath();
    const auto params = goldenParams();
    out << "{\n";
    out << "  \"comment\": \"machine-written by test_digest_golden.cc"
           " (GPUWALK_UPDATE_GOLDEN=1); do not edit by hand\",\n";
    out << "  \"params\": {\"wavefronts\": " << params.wavefronts
        << ", \"instructions_per_wavefront\": "
        << params.instructionsPerWavefront << ", \"seed\": "
        << params.seed << ", \"footprint_scale\": "
        << params.footprintScale << ", \"compute_cycles\": "
        << params.computeCycles << "},\n";
    out << "  \"entries\": [\n";
    bool first = true;
    for (const auto &[key, e] : entries) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"key\": \"" << key << "\", \"digest\": \""
            << e.digest << "\", \"runtime_ticks\": " << e.runtimeTicks
            << ", \"instructions\": " << e.instructions
            << ", \"translation_requests\": " << e.translationRequests
            << ", \"walk_requests\": " << e.walkRequests
            << ", \"walks_completed\": " << e.walksCompleted
            << ", \"trace_events\": " << e.traceEvents << "}";
    }
    out << "\n  ]\n}\n";
}

bool
updateRequested()
{
    const char *env = std::getenv("GPUWALK_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) != "0";
}

TEST(DigestGolden, AllSchedulersMatchCommittedDigests)
{
    std::map<std::string, GoldenEntry> computed;
    for (const auto &workload : goldenWorkloads) {
        for (const auto sched : goldenSchedulers)
            computed[entryKey(workload, sched)] =
                runPoint(workload, sched);
    }

    if (updateRequested()) {
        writeGoldens(computed);
        GTEST_SKIP() << "goldens rewritten at " << goldenPath();
    }

    const auto goldens = readGoldens();
    ASSERT_FALSE(goldens.empty())
        << "no goldens at " << goldenPath()
        << "; run with GPUWALK_UPDATE_GOLDEN=1 to mint them";
    ASSERT_EQ(goldens.size(), computed.size());

    for (const auto &[key, want] : goldens) {
        const auto it = computed.find(key);
        ASSERT_NE(it, computed.end()) << "missing run for " << key;
        const GoldenEntry &got = it->second;
        EXPECT_EQ(got.digest, want.digest)
            << key << ": trace digest diverged — simulated behaviour "
                      "changed";
        EXPECT_EQ(got.runtimeTicks, want.runtimeTicks) << key;
        EXPECT_EQ(got.instructions, want.instructions) << key;
        EXPECT_EQ(got.translationRequests, want.translationRequests)
            << key;
        EXPECT_EQ(got.walkRequests, want.walkRequests) << key;
        EXPECT_EQ(got.walksCompleted, want.walksCompleted) << key;
        EXPECT_EQ(got.traceEvents, want.traceEvents) << key;
    }
}

/** The digest must be a pure function of simulated behaviour: two
 *  identical runs in one process (warm allocator, different object
 *  addresses) digest identically. */
TEST(DigestGolden, DigestIsRunToRunDeterministic)
{
    const auto a = runPoint("MVT", core::SchedulerKind::SimtAware);
    const auto b = runPoint("MVT", core::SchedulerKind::SimtAware);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.traceEvents, b.traceEvents);
}

} // namespace
