/**
 * @file
 * SPP signature-path translation prefetcher tests: unit-level
 * prediction behaviour, the Iommu's in-flight dedup filter, trace
 * accounting identities, and cross-thread determinism with the
 * auditor (channel conservation included) on.
 *
 * The safety claims under test, end to end:
 *
 *  - speculative walks never duplicate a walk already in flight
 *    (buffered, walking, or fault-parked);
 *  - prefetch completions fill the IOMMU TLBs without sending a
 *    synthetic TranslationReply, so the reply channel stays balanced
 *    (system.reply_conservation holds in every audited run below);
 *  - the trace stream, the prefetch counters, and the demand-walk
 *    counters agree exactly;
 *  - --prefetch=spp is bit-identical across --sim-threads {1, 2, 4}.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "iommu/iommu.hh"
#include "iommu/prefetch/spp_prefetcher.hh"
#include "mem/dram_controller.hh"
#include "system/system.hh"
#include "trace/trace.hh"
#include "vm/address_space.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;
using trace::Event;
using trace::EventKind;

// ---------------------------------------------------------------------
// SppPrefetcher unit tests: feed synthetic page streams directly.
// ---------------------------------------------------------------------

std::vector<iommu::PrefetchCandidate>
touch(iommu::SppPrefetcher &spp, std::uint64_t page_no,
      std::uint32_t wavefront = 0, tlb::ContextId ctx = 0)
{
    std::vector<iommu::PrefetchCandidate> out;
    spp.onDemandTouch(ctx, wavefront, page_no << mem::pageShift, out);
    return out;
}

TEST(SppPrefetcherUnit, StridedStreamProposesLookaheadChain)
{
    iommu::SppPrefetcher spp{iommu::PrefetchConfig{}};
    const std::uint64_t base = 0x40000;

    // A pure stride-1 stream converges onto a signature fixed point
    // after a handful of touches; from then on every touch proposes a
    // full lookahead chain.
    std::vector<iommu::PrefetchCandidate> last;
    for (std::uint64_t i = 0; i < 16; ++i)
        last = touch(spp, base + i);

    const iommu::PrefetchConfig cfg;
    ASSERT_EQ(last.size(), cfg.degree);
    double prev_conf = 1.0;
    for (std::size_t d = 0; d < last.size(); ++d) {
        // Chain: next page, next-next page, ... in VA (not page-no).
        EXPECT_EQ(last[d].vaPage,
                  (base + 15 + d + 1) << mem::pageShift);
        // The path confidence is a product of per-step ratios: it
        // never rises along the chain and never crosses the gate.
        EXPECT_LE(last[d].confidence, prev_conf);
        EXPECT_GE(last[d].confidence, cfg.sppConfidenceThreshold);
        prev_conf = last[d].confidence;
    }
    EXPECT_GT(spp.trainedDeltas(), 0u);
    EXPECT_EQ(spp.streamResets(), 0u);
}

TEST(SppPrefetcherUnit, PredictionIsDeterministic)
{
    // Two instances fed the same interleaved stream produce the same
    // candidates at every step (ties break to the lowest slot).
    iommu::SppPrefetcher a{iommu::PrefetchConfig{}};
    iommu::SppPrefetcher b{iommu::PrefetchConfig{}};
    const std::uint64_t base = 0x9000;
    const std::int64_t deltas[] = {1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1, 2};

    std::uint64_t page = base;
    for (const auto d : deltas) {
        page += d;
        const auto ca = touch(a, page);
        const auto cb = touch(b, page);
        ASSERT_EQ(ca.size(), cb.size());
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i].vaPage, cb[i].vaPage);
            EXPECT_DOUBLE_EQ(ca[i].confidence, cb[i].confidence);
        }
    }
}

TEST(SppPrefetcherUnit, WildJumpResetsTheStream)
{
    iommu::PrefetchConfig cfg;
    iommu::SppPrefetcher spp{cfg};
    const std::uint64_t base = 0x40000;

    touch(spp, base);
    touch(spp, base + 1);
    const auto trained = spp.trainedDeltas();

    // A jump past sppMaxDelta is a phase change: the stream restarts
    // instead of folding the wild delta into the pattern table.
    const auto out =
        touch(spp, base + 1 + cfg.sppMaxDelta + 1);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(spp.streamResets(), 1u);
    EXPECT_EQ(spp.trainedDeltas(), trained);

    // The restarted stream trains again from its new anchor.
    touch(spp, base + 2 + cfg.sppMaxDelta + 1);
    EXPECT_EQ(spp.trainedDeltas(), trained + 1);
}

TEST(SppPrefetcherUnit, DegreeAndThresholdBoundTheChain)
{
    iommu::PrefetchConfig one;
    one.degree = 1;
    iommu::SppPrefetcher spp_one{one};
    std::vector<iommu::PrefetchCandidate> last;
    for (std::uint64_t i = 0; i < 16; ++i)
        last = touch(spp_one, 0x40000 + i);
    EXPECT_EQ(last.size(), 1u);

    // An unreachable confidence gate (> 1.0) silences every proposal;
    // training still happens, only the lookahead is cut off.
    iommu::PrefetchConfig strict;
    strict.sppConfidenceThreshold = 1.01;
    iommu::SppPrefetcher spp_strict{strict};
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_TRUE(touch(spp_strict, 0x40000 + i).empty());
    EXPECT_GT(spp_strict.trainedDeltas(), 0u);
}

TEST(SppPrefetcherUnit, StreamsArePerWavefrontAndContext)
{
    iommu::SppPrefetcher spp{iommu::PrefetchConfig{}};
    const std::uint64_t a = 0x40000, b = 0x80000;

    // Wavefront 0 strides by 1, wavefront 1 strides by 2, interleaved.
    // Each stream must learn its own delta, not the interleaving's.
    std::vector<iommu::PrefetchCandidate> w0, w1;
    for (std::uint64_t i = 0; i < 16; ++i) {
        w0 = touch(spp, a + i, /*wavefront=*/0);
        w1 = touch(spp, b + 2 * i, /*wavefront=*/1);
    }
    ASSERT_FALSE(w0.empty());
    ASSERT_FALSE(w1.empty());
    EXPECT_EQ(w0[0].vaPage, (a + 15 + 1) << mem::pageShift);
    EXPECT_EQ(w1[0].vaPage, (b + 30 + 2) << mem::pageShift);

    // Same wavefront id under a different ctx is a different stream:
    // its first touch anchors a fresh entry and proposes nothing.
    EXPECT_TRUE(touch(spp, a, /*wavefront=*/0, /*ctx=*/7).empty());
}

// ---------------------------------------------------------------------
// In-flight dedup: a speculative walk must never duplicate a walk the
// IOMMU already owns (satellite: no-duplicate-walk guarantee).
// ---------------------------------------------------------------------

struct DedupFixture : public ::testing::Test
{
    sim::EventQueue eq;
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(1) << 30};
    std::unique_ptr<vm::AddressSpace> as;
    std::unique_ptr<mem::DramController> dram;
    std::unique_ptr<iommu::Iommu> iommu;
    trace::Tracer tracer;
    vm::VaRegion region;

    void
    build(iommu::PrefetchKind kind, unsigned walkers)
    {
        as = std::make_unique<vm::AddressSpace>(store, frames);
        region = as->allocate("data", 1024 * 1024);
        dram = std::make_unique<mem::DramController>(
            eq, mem::DramConfig{});
        iommu::IommuConfig cfg;
        cfg.prefetch.kind = kind;
        cfg.numWalkers = walkers;
        iommu = std::make_unique<iommu::Iommu>(
            eq, cfg, core::makeScheduler(core::SchedulerKind::Fcfs),
            *dram, store, as->pageTable().root());
        iommu->setTracer(&tracer);
    }

    void
    submit(Addr va_page)
    {
        tlb::TranslationRequest req;
        req.vaPage = va_page;
        req.instruction = 1;
        req.onComplete = [](Addr, bool) {};
        iommu->translate(std::move(req));
    }
};

TEST_F(DedupFixture, PrefetchSkipsPagesAlreadyWalking)
{
    build(iommu::PrefetchKind::NextPage, /*walkers=*/2);
    const Addr base = region.base;

    // Both demand walks are in flight together: base on walker 0,
    // base+1p on walker 1 (the front port admits them back to back).
    // base completes first and its next-page proposal IS base+1p —
    // in flight on walker 1, so the dedup filter must swallow it
    // instead of duplicating the walk into the just-freed walker 0.
    // base+1p's own completion then prefetches base+2p normally.
    submit(base);
    submit(base + mem::pageSize);
    eq.run();

    EXPECT_EQ(iommu->prefetches(), 1u);
    EXPECT_EQ(iommu->walksCompleted(), 3u); // 2 demand + 1 prefetch
    EXPECT_EQ(iommu->inflightWalks(), 0u);

    std::vector<Event> issued;
    for (const auto &ev : tracer.snapshot())
        if (ev.kind == EventKind::PrefetchIssued)
            issued.push_back(ev);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0].vaPage, base + 2 * mem::pageSize);
    EXPECT_NE(issued[0].walker, trace::noWalker);

    // The in-flight ledger drained along with the walks.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(iommu->inflightForPage(0, base + i * mem::pageSize),
                  0u);
}

TEST_F(DedupFixture, DemandAfterPrefetchCompletionHitsTheTlb)
{
    build(iommu::PrefetchKind::NextPage, /*walkers=*/2);
    const Addr base = region.base;

    submit(base);
    eq.run(); // demand walk + its next-page prefetch both complete
    ASSERT_EQ(iommu->prefetches(), 1u);

    // The prefetched translation is a TLB hit — no new walk, and the
    // first touch is counted useful exactly once. The hit itself is a
    // demand touch, so it chains one further prefetch (base+2p),
    // which stays untouched.
    const auto walks = iommu->walkRequests();
    submit(base + mem::pageSize);
    eq.run();
    EXPECT_EQ(iommu->walkRequests(), walks);
    EXPECT_EQ(iommu->prefetches(), 2u);

    const auto summary = iommu->prefetchSummary();
    EXPECT_TRUE(summary.enabled);
    EXPECT_EQ(summary.useful, 1u);
    EXPECT_EQ(summary.unusedAtEnd, 1u);

    std::uint64_t useful_events = 0;
    for (const auto &ev : tracer.snapshot())
        useful_events += ev.kind == EventKind::PrefetchUseful;
    EXPECT_EQ(useful_events, 1u);
}

// ---------------------------------------------------------------------
// Full-system trace accounting with SPP on.
// ---------------------------------------------------------------------

struct TracedRun
{
    std::vector<Event> events;
    system::RunStats stats;
    std::uint64_t dropped = 0;
};

TracedRun
runTraced(iommu::PrefetchKind kind, core::SchedulerKind sched)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = sched;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.iommu.prefetch.kind = kind;

    workload::WorkloadParams params;
    params.wavefronts = 16;
    params.instructionsPerWavefront = 24;
    params.footprintScale = 0.2;
    params.seed = 11;

    system::System sys(cfg);
    // GEV's gather streams carry enough strided sub-sequences for SPP
    // to train under both schedulers, so the accounting identities
    // are exercised with non-zero counters.
    sys.loadBenchmark("GEV", params);

    TracedRun out;
    out.stats = sys.run();
    out.dropped = sys.tracer()->dropped();
    out.events = sys.tracer()->snapshot();
    return out;
}

std::uint64_t
countKind(const std::vector<Event> &events, EventKind kind)
{
    std::uint64_t n = 0;
    for (const auto &ev : events)
        n += ev.kind == kind;
    return n;
}

TEST(SppTraceInvariants, CountersAndTraceAgree)
{
    for (const auto sched :
         {core::SchedulerKind::Fcfs, core::SchedulerKind::SimtAware}) {
        const auto run = runTraced(iommu::PrefetchKind::Spp, sched);
        ASSERT_EQ(run.dropped, 0u);
        EXPECT_EQ(run.stats.auditViolations, 0u);

        const auto &p = run.stats.prefetch;
        ASSERT_TRUE(p.enabled);
        EXPECT_EQ(p.policy, "spp");
        ASSERT_GT(p.issued, 0u) << core::toString(sched);

        // Trace/counter identities. WalkDone is traced for demand
        // walks only; prefetch completions are TLB fills, not
        // completions any instruction observes.
        EXPECT_EQ(countKind(run.events, EventKind::Enqueued),
                  run.stats.walkRequests);
        EXPECT_EQ(countKind(run.events, EventKind::WalkDone),
                  run.stats.walksCompleted - p.completed);
        // Speculative walks bypass the buffer and the scheduler
        // entirely (idle walkers only, no selectNext): with the GMMU
        // off every demand walk is dispatched and completed exactly
        // once, so Scheduled == Enqueued even though PrefetchIssued
        // walks also occupied walkers. A prefetch leaking into the
        // scheduling path would break this identity.
        EXPECT_EQ(countKind(run.events, EventKind::Scheduled),
                  countKind(run.events, EventKind::Enqueued));
        // Prefetch walks never fault (residency-gated and pinned; a
        // faulting one trips GPUWALK_ASSERT in handleFaultedWalk).
        EXPECT_EQ(countKind(run.events, EventKind::FaultRaised), 0u);
        EXPECT_EQ(countKind(run.events, EventKind::PrefetchIssued),
                  p.issued);
        EXPECT_EQ(countKind(run.events, EventKind::PrefetchUseful),
                  p.useful);

        // A walk can only be useful once per issue, and only after
        // completing; pollution and leftovers partition the rest.
        EXPECT_LE(p.completed, p.issued);
        EXPECT_LE(p.useful + p.evictedUnused + p.unusedAtEnd,
                  p.completed);

        // Replay: every PrefetchUseful consumes one earlier issue of
        // the same (ctx, page); confidences are per-mille in (0, 1000].
        std::map<std::pair<std::uint16_t, Addr>, std::uint64_t> open;
        for (const auto &ev : run.events) {
            if (ev.kind == EventKind::PrefetchIssued) {
                EXPECT_NE(ev.walker, trace::noWalker);
                EXPECT_GT(ev.arg0, 0u);
                EXPECT_LE(ev.arg0, 1000u);
                ++open[{ev.ctx, ev.vaPage}];
            } else if (ev.kind == EventKind::PrefetchUseful) {
                auto it = open.find({ev.ctx, ev.vaPage});
                ASSERT_NE(it, open.end())
                    << "useful without an issue for page "
                    << std::hex << ev.vaPage;
                ASSERT_GT(it->second, 0u);
                --it->second;
            }
        }
    }
}

TEST(SppTraceInvariants, PrefetchOffTracesNoPrefetchEvents)
{
    const auto run = runTraced(iommu::PrefetchKind::Off,
                               core::SchedulerKind::SimtAware);
    EXPECT_FALSE(run.stats.prefetch.enabled);
    EXPECT_EQ(countKind(run.events, EventKind::PrefetchIssued), 0u);
    EXPECT_EQ(countKind(run.events, EventKind::PrefetchUseful), 0u);
    // With no speculative walks, every completion is a demand one.
    EXPECT_EQ(countKind(run.events, EventKind::WalkDone),
              run.stats.walksCompleted);
    EXPECT_EQ(run.stats.walkRequests, run.stats.walksCompleted);
}

// ---------------------------------------------------------------------
// Determinism: --prefetch=spp across --sim-threads, audited.
// ---------------------------------------------------------------------

struct SppRun
{
    system::RunStats stats;
    std::string statsJson;
};

SppRun
runSpp(const std::string &workload, core::SchedulerKind sched,
       bool gmmu, unsigned sim_threads)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = sched;
    cfg.simThreads = sim_threads;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;
    cfg.iommu.prefetch.kind = iommu::PrefetchKind::Spp;
    if (gmmu) {
        // Cold-start fault-in (ratio 1.0): prefetch walks meet the
        // residency gate and fault-parked demand walks, the hardest
        // interleaving the dedup filter sees.
        cfg.gmmu.enabled = true;
        cfg.gmmu.oversubscription = 1.0;
        cfg.gmmu.faultLatency = 20'000;
        cfg.gmmu.migrationLatency = 1'000;
        cfg.gmmu.batchSize = 8;
    }

    workload::WorkloadParams params;
    params.wavefronts = 8;
    params.instructionsPerWavefront = 12;
    params.footprintScale = 0.05;
    params.seed = 17;

    system::System sys(cfg);
    sys.loadBenchmark(workload, params);

    SppRun out;
    out.stats = sys.run();
    out.statsJson = exp::statsJsonString(out.stats);
    return out;
}

/** Engine-infrastructure counters that legitimately vary with the
 *  thread count (see test_oversubscription_determinism.cc). */
std::string
scrubEngineCounters(std::string s)
{
    for (const std::string key :
         {"\"events_executed\": ", "\"checks\": "}) {
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            const std::size_t begin = pos + key.size();
            std::size_t end = begin;
            while (end < s.size() && s[end] >= '0' && s[end] <= '9')
                ++end;
            s.replace(begin, end - begin, "_");
            pos = begin;
        }
    }
    return s;
}

TEST(SppDeterminism, BitIdenticalAcrossSimThreads)
{
    struct Point
    {
        std::string workload;
        core::SchedulerKind sched;
        bool gmmu;
    };
    const std::vector<Point> points{
        {"MVT", core::SchedulerKind::SimtAware, false},
        {"GEV", core::SchedulerKind::Fcfs, true},
    };

    for (const auto &point : points) {
        const auto serial =
            runSpp(point.workload, point.sched, point.gmmu, 1);
        ASSERT_TRUE(serial.stats.traced);
        ASSERT_EQ(serial.stats.traceDropped, 0u);
        ASSERT_TRUE(serial.stats.audited);
        // The audit covers system.reply_conservation: prefetch
        // completions did NOT send synthetic TranslationReplies, and
        // iommu.inflight_tracking: the dedup ledger drained to empty.
        EXPECT_EQ(serial.stats.auditViolations, 0u) << point.workload;
        ASSERT_GT(serial.stats.prefetch.issued, 0u)
            << point.workload << ": point never prefetches; "
            << "the differential proves nothing";
        if (point.gmmu) {
            ASSERT_GT(serial.stats.gmmu.faultsRaised, 0u);
        }

        for (const unsigned threads : {2u, 4u}) {
            const auto parallel =
                runSpp(point.workload, point.sched, point.gmmu,
                       threads);
            EXPECT_EQ(parallel.stats.traceDigest,
                      serial.stats.traceDigest)
                << point.workload << " diverged at --sim-threads "
                << threads;
            EXPECT_EQ(parallel.stats.auditViolations, 0u);
            EXPECT_EQ(scrubEngineCounters(parallel.statsJson),
                      scrubEngineCounters(serial.statsJson))
                << point.workload << " at --sim-threads " << threads;
        }
    }
}

} // namespace
