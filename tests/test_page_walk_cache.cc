/**
 * @file
 * Unit tests for the page walk caches and their counter-based pinned
 * replacement (paper §IV design subtleties).
 */

#include <gtest/gtest.h>

#include "iommu/page_walk_cache.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::iommu;
using gpuwalk::mem::Addr;
using gpuwalk::vm::PtLevel;

constexpr Addr root = 0x1000;

TEST(PageWalkCache, ColdLookupStartsAtRoot)
{
    PageWalkCache pwc({}, root);
    const auto start = pwc.lookup(0x40000000);
    EXPECT_EQ(start.level, 4u);
    EXPECT_EQ(start.tableBase, root);
    EXPECT_EQ(start.accesses(), 4u);
    EXPECT_EQ(pwc.misses(), 1u);
}

TEST(PageWalkCache, FillThenLookupSkipsLevels)
{
    PageWalkCache pwc({}, root);
    const Addr va = 0x40000000;
    pwc.fill(va, PtLevel::Pml4, 0x2000);
    auto start = pwc.lookup(va);
    EXPECT_EQ(start.level, 3u);
    EXPECT_EQ(start.tableBase, 0x2000u);

    pwc.fill(va, PtLevel::Pdpt, 0x3000);
    pwc.fill(va, PtLevel::Pd, 0x4000);
    start = pwc.lookup(va);
    EXPECT_EQ(start.level, 1u);
    EXPECT_EQ(start.tableBase, 0x4000u);
    EXPECT_EQ(start.accesses(), 1u);
}

TEST(PageWalkCache, DeepestHitWinsEvenWithoutUpperLevels)
{
    PageWalkCache pwc({}, root);
    const Addr va = 0x40000000;
    // A PD-level entry alone lets the walker jump straight to the
    // leaf table ("skip, don't walk").
    pwc.fill(va, PtLevel::Pd, 0x4000);
    const auto start = pwc.lookup(va);
    EXPECT_EQ(start.level, 1u);
    EXPECT_EQ(start.tableBase, 0x4000u);
}

TEST(PageWalkCache, RegionGranularitySharing)
{
    PageWalkCache pwc({}, root);
    pwc.fill(0x40000000, PtLevel::Pd, 0x4000);
    pwc.fill(0x40000000, PtLevel::Pdpt, 0x3000);
    pwc.fill(0x40000000, PtLevel::Pml4, 0x2000);
    // Another page in the same 2 MB region hits all three levels.
    const auto start = pwc.lookup(0x40000000 + 5 * mem::pageSize);
    EXPECT_EQ(start.level, 1u);
    // A page in a different 2 MB region misses the PD level.
    const auto start2 = pwc.lookup(0x40000000 + (Addr(2) << 21));
    EXPECT_EQ(start2.level, 2u);
}

TEST(PageWalkCache, ProbeEstimateMatchesLookupDepth)
{
    PageWalkCache pwc({}, root);
    const Addr va = 0x40000000;
    EXPECT_EQ(pwc.peekEstimate(va), 4u);
    pwc.fill(va, PtLevel::Pml4, 0x2000);
    EXPECT_EQ(pwc.peekEstimate(va), 3u);
    pwc.fill(va, PtLevel::Pdpt, 0x3000);
    EXPECT_EQ(pwc.peekEstimate(va), 2u);
    pwc.fill(va, PtLevel::Pd, 0x4000);
    EXPECT_EQ(pwc.peekEstimate(va), 1u);
    EXPECT_EQ(pwc.probeEstimate(va), 1u);
}

TEST(PageWalkCache, ProbesPinEntriesAgainstReplacement)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 4;
    cfg.associativity = 4; // one set: easy conflict pressure
    cfg.pinScoredEntries = true;
    PageWalkCache pwc(cfg, root);

    // Fill the PD cache with 4 regions; probe (pin) the first one.
    for (Addr r = 0; r < 4; ++r)
        pwc.fill(r << 21, PtLevel::Pd, 0x4000 + (r << 12));
    ASSERT_EQ(pwc.probeEstimate(0), 1u); // pins region 0

    // Insert a new region: the pinned entry must survive.
    pwc.fill(Addr(9) << 21, PtLevel::Pd, 0x9000);
    EXPECT_EQ(pwc.peekEstimate(0), 1u);
    EXPECT_GE(pwc.pinnedSkips(), 1u);
}

TEST(PageWalkCache, WalkLookupUnpinsEntries)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 4;
    cfg.associativity = 4;
    PageWalkCache pwc(cfg, root);

    for (Addr r = 0; r < 4; ++r)
        pwc.fill(r << 21, PtLevel::Pd, 0x4000);
    pwc.probeEstimate(0);  // pin
    pwc.lookup(0);         // unpin (walk consumed the estimate)

    // Now region 0 is evictable again: inserting a new region with
    // all other entries more recently used evicts region 0.
    for (Addr r = 1; r < 4; ++r)
        pwc.lookup(r << 21); // refresh LRU of others
    pwc.fill(Addr(9) << 21, PtLevel::Pd, 0x9000);
    EXPECT_EQ(pwc.peekEstimate(0), 4u);
}

TEST(PageWalkCache, AllPinnedFallsBackToLru)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 2;
    cfg.associativity = 2;
    PageWalkCache pwc(cfg, root);
    pwc.fill(Addr(0) << 21, PtLevel::Pd, 0x4000);
    pwc.fill(Addr(1) << 21, PtLevel::Pd, 0x5000);
    pwc.probeEstimate(Addr(0) << 21);
    pwc.probeEstimate(Addr(1) << 21);
    // Both pinned; the fill must still succeed (plain LRU victim).
    pwc.fill(Addr(2) << 21, PtLevel::Pd, 0x6000);
    EXPECT_EQ(pwc.peekEstimate(Addr(2) << 21), 1u);
}

TEST(PageWalkCache, PinningDisabledByConfig)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 2;
    cfg.associativity = 2;
    cfg.pinScoredEntries = false;
    PageWalkCache pwc(cfg, root);
    pwc.fill(Addr(0) << 21, PtLevel::Pd, 0x4000);
    pwc.fill(Addr(1) << 21, PtLevel::Pd, 0x5000);
    pwc.probeEstimate(Addr(0) << 21); // would pin region 0
    pwc.fill(Addr(2) << 21, PtLevel::Pd, 0x6000);
    // Without pinning, plain LRU evicts region 0 (probes skip LRU
    // updates, so region 0 is oldest).
    EXPECT_EQ(pwc.peekEstimate(Addr(0) << 21), 4u);
    EXPECT_EQ(pwc.pinnedSkips(), 0u);
}

TEST(PageWalkCache, CountersSaturateAtThree)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 2;
    cfg.associativity = 2;
    PageWalkCache pwc(cfg, root);
    pwc.fill(0, PtLevel::Pd, 0x4000);
    for (int i = 0; i < 10; ++i)
        pwc.probeEstimate(0);
    // Three walk lookups fully unpin (saturated at 3, not 10).
    pwc.lookup(0);
    pwc.lookup(0);
    pwc.lookup(0);
    pwc.fill(Addr(1) << 21, PtLevel::Pd, 0x5000);
    pwc.fill(Addr(2) << 21, PtLevel::Pd, 0x6000);
    // Region 0 was evictable after three unpins.
    EXPECT_EQ(pwc.peekEstimate(0), 4u);
}

TEST(PageWalkCache, PeekCounterObservesProbeSaturation)
{
    PageWalkCache pwc({}, root);
    const Addr va = 0x40000000;

    // No entry yet: nothing to observe.
    EXPECT_FALSE(pwc.peekCounter(va, PtLevel::Pd).has_value());

    pwc.fill(va, PtLevel::Pd, 0x4000);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 0);
    // Upper levels were never filled.
    EXPECT_FALSE(pwc.peekCounter(va, PtLevel::Pml4).has_value());

    // Each probe increments the 2-bit counter...
    for (std::uint8_t expected = 1; expected <= 3; ++expected) {
        pwc.probeEstimate(va);
        EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), expected);
    }
    // ...and it saturates at 3, however many more probes arrive.
    for (int i = 0; i < 10; ++i)
        pwc.probeEstimate(va);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 3);
}

TEST(PageWalkCache, WalkLookupsDecrementCounterToZero)
{
    PageWalkCache pwc({}, root);
    const Addr va = 0x40000000;
    pwc.fill(va, PtLevel::Pd, 0x4000);
    pwc.probeEstimate(va);
    pwc.probeEstimate(va);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 2);

    // Each walk lookup consumes one pin count.
    pwc.lookup(va);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 1);
    pwc.lookup(va);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 0);
    // Further lookups must not wrap below zero.
    pwc.lookup(va);
    EXPECT_EQ(pwc.peekCounter(va, PtLevel::Pd), 0);
}

TEST(PageWalkCache, PinnedSkipsCountsExactlyOncePerShieldedFill)
{
    PwcConfig cfg;
    cfg.entriesPerLevel = 4;
    cfg.associativity = 4; // one set
    PageWalkCache pwc(cfg, root);

    for (Addr r = 0; r < 4; ++r)
        pwc.fill(r << 21, PtLevel::Pd, 0x4000 + (r << 12));
    pwc.probeEstimate(0); // pin region 0
    EXPECT_EQ(pwc.pinnedSkips(), 0u);

    // Every fill that routes around the pinned entry counts once,
    // regardless of how many unpinned candidates it considered.
    pwc.fill(Addr(9) << 21, PtLevel::Pd, 0x9000);
    EXPECT_EQ(pwc.pinnedSkips(), 1u);
    pwc.fill(Addr(10) << 21, PtLevel::Pd, 0xa000);
    EXPECT_EQ(pwc.pinnedSkips(), 2u);
    // The pinned entry itself survived both fills.
    EXPECT_EQ(pwc.peekCounter(0, PtLevel::Pd), 1);

    // Consuming the pin stops the counting.
    pwc.lookup(0);
    EXPECT_EQ(pwc.peekCounter(0, PtLevel::Pd), 0);
    pwc.fill(Addr(11) << 21, PtLevel::Pd, 0xb000);
    EXPECT_EQ(pwc.pinnedSkips(), 2u);
}

TEST(PageWalkCache, InvalidateAllClears)
{
    PageWalkCache pwc({}, root);
    pwc.fill(0x40000000, PtLevel::Pml4, 0x2000);
    pwc.invalidateAll();
    EXPECT_EQ(pwc.peekEstimate(0x40000000), 4u);
}

TEST(PageWalkCacheDeathTest, LeafFillRejected)
{
    PageWalkCache pwc({}, root);
    EXPECT_DEATH(pwc.fill(0x40000000, PtLevel::Pt, 0x2000),
                 "upper levels");
}

} // namespace
