/**
 * @file
 * Unit tests for the Table II workload generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "tlb/coalescer.hh"
#include "workload/registry.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::workload;
using gpuwalk::mem::Addr;

WorkloadParams
testParams()
{
    WorkloadParams p;
    p.wavefronts = 8;
    p.instructionsPerWavefront = 24;
    p.footprintScale = 0.02;
    p.seed = 5;
    return p;
}

struct Harness
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(16) << 30};
    vm::AddressSpace as{store, frames};
};

TEST(WorkloadRegistry, AllTwelveBenchmarksExist)
{
    const auto names = allWorkloadNames();
    ASSERT_EQ(names.size(), 12u);
    for (const auto &n : names) {
        auto gen = makeWorkload(n);
        ASSERT_NE(gen, nullptr);
        EXPECT_EQ(gen->info().abbrev, n);
        EXPECT_GT(gen->info().footprintMB, 0.0);
    }
}

TEST(WorkloadRegistry, IrregularAndRegularPartition)
{
    const auto irregular = irregularWorkloadNames();
    const auto regular = regularWorkloadNames();
    EXPECT_EQ(irregular.size(), 6u);
    EXPECT_EQ(regular.size(), 6u);
    for (const auto &n : irregular)
        EXPECT_TRUE(makeWorkload(n)->info().irregular) << n;
    for (const auto &n : regular)
        EXPECT_FALSE(makeWorkload(n)->info().irregular) << n;
}

TEST(WorkloadRegistry, MotivationSetMatchesPaperFigures)
{
    EXPECT_EQ(motivationWorkloadNames(),
              (std::vector<std::string>{"MVT", "ATX", "BIC", "GEV"}));
}

TEST(WorkloadRegistry, Table2FootprintsMatchPaper)
{
    EXPECT_NEAR(makeWorkload("XSB")->info().footprintMB, 212.25, 0.01);
    EXPECT_NEAR(makeWorkload("MVT")->info().footprintMB, 128.14, 0.01);
    EXPECT_NEAR(makeWorkload("ATX")->info().footprintMB, 64.06, 0.01);
    EXPECT_NEAR(makeWorkload("NW")->info().footprintMB, 531.82, 0.01);
    EXPECT_NEAR(makeWorkload("BIC")->info().footprintMB, 128.11, 0.01);
    EXPECT_NEAR(makeWorkload("GEV")->info().footprintMB, 128.06, 0.01);
    EXPECT_NEAR(makeWorkload("SSP")->info().footprintMB, 104.32, 0.01);
    EXPECT_NEAR(makeWorkload("MIS")->info().footprintMB, 72.38, 0.01);
    EXPECT_NEAR(makeWorkload("CLR")->info().footprintMB, 26.68, 0.01);
    EXPECT_NEAR(makeWorkload("BCK")->info().footprintMB, 108.03, 0.01);
    EXPECT_NEAR(makeWorkload("KMN")->info().footprintMB, 4.33, 0.01);
    EXPECT_NEAR(makeWorkload("HOT")->info().footprintMB, 12.02, 0.01);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("NOPE"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, EveryGeneratorProducesRequestedShape)
{
    for (const auto &name : allWorkloadNames()) {
        Harness h;
        const auto params = testParams();
        auto wl = makeWorkload(name)->generate(h.as, params);
        EXPECT_EQ(wl.wavefronts(), params.wavefronts) << name;
        for (const auto &trace : wl.traces) {
            EXPECT_EQ(trace.size(), params.instructionsPerWavefront)
                << name;
        }
    }
}

TEST(Workloads, EveryLaneAddressIsMapped)
{
    for (const auto &name : allWorkloadNames()) {
        Harness h;
        auto wl = makeWorkload(name)->generate(h.as, testParams());
        for (const auto &trace : wl.traces) {
            for (const auto &instr : trace) {
                for (Addr a : instr.laneAddrs) {
                    ASSERT_TRUE(
                        h.as.pageTable().translate(a).has_value())
                        << name << " unmapped address " << a;
                }
            }
        }
    }
}

TEST(Workloads, GenerationIsDeterministic)
{
    for (const auto &name : {"XSB", "MVT", "SSP"}) {
        Harness h1, h2;
        auto a = makeWorkload(name)->generate(h1.as, testParams());
        auto b = makeWorkload(name)->generate(h2.as, testParams());
        ASSERT_EQ(a.traces.size(), b.traces.size());
        for (std::size_t i = 0; i < a.traces.size(); ++i) {
            ASSERT_EQ(a.traces[i].size(), b.traces[i].size());
            for (std::size_t k = 0; k < a.traces[i].size(); ++k) {
                EXPECT_EQ(a.traces[i][k].laneAddrs,
                          b.traces[i][k].laneAddrs)
                    << name << " wf " << i << " instr " << k;
            }
        }
    }
}

/** Average unique pages per instruction across a workload. */
double
avgDivergence(const gpu::GpuWorkload &wl)
{
    double pages = 0;
    std::size_t instrs = 0;
    for (const auto &trace : wl.traces) {
        for (const auto &instr : trace) {
            pages += static_cast<double>(
                tlb::coalesce(instr.laneAddrs).pages.size());
            ++instrs;
        }
    }
    return instrs ? pages / static_cast<double>(instrs) : 0.0;
}

TEST(Workloads, IrregularAppsDivergeRegularAppsCoalesce)
{
    // Use a larger footprint scale so matrix strides exceed a page.
    auto params = testParams();
    params.footprintScale = 0.25;
    for (const auto &name : irregularWorkloadNames()) {
        Harness h;
        auto wl = makeWorkload(name)->generate(h.as, params);
        EXPECT_GT(avgDivergence(wl), 8.0) << name;
    }
    for (const auto &name : regularWorkloadNames()) {
        Harness h;
        auto wl = makeWorkload(name)->generate(h.as, params);
        EXPECT_LT(avgDivergence(wl), 4.0) << name;
    }
}

TEST(Workloads, ComputeScaleStretchesComputeCycles)
{
    Harness h1, h2;
    auto params = testParams();
    auto base = makeWorkload("MVT")->generate(h1.as, params);
    params.computeScaleOverride = 10.0;
    auto scaled = makeWorkload("MVT")->generate(h2.as, params);

    auto total = [](const gpu::GpuWorkload &wl) {
        std::uint64_t sum = 0;
        for (const auto &t : wl.traces)
            for (const auto &i : t)
                sum += i.computeCycles;
        return sum;
    };
    EXPECT_GT(total(scaled), 5 * total(base));
}

TEST(Workloads, FootprintScaleShrinksAllocation)
{
    Harness h1, h2;
    auto small = testParams();
    auto big = testParams();
    big.footprintScale = 0.2;
    makeWorkload("MVT")->generate(h1.as, small);
    makeWorkload("MVT")->generate(h2.as, big);
    EXPECT_LT(h1.as.footprintBytes(), h2.as.footprintBytes());
}

TEST(Workloads, XsbenchProbesSharpenWithDepth)
{
    // Early binary-search probes are heavily shared across lanes;
    // the final gather is fully divergent.
    Harness h;
    auto params = testParams();
    params.footprintScale = 0.5;
    auto wl = makeWorkload("XSB")->generate(h.as, params);
    const auto &trace = wl.traces.front();
    const auto first = tlb::coalesce(trace[0].laneAddrs);
    EXPECT_LE(first.pages.size(), 3u);
}

} // namespace
