/**
 * @file
 * Property-style tests: invariants that must hold for every scheduler,
 * every workload, and across configuration sweeps (parameterized with
 * TEST_P / INSTANTIATE_TEST_SUITE_P).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/simt_aware_scheduler.hh"
#include "exp/metrics.hh"
#include "system/system.hh"
#include "workload/registry.hh"

namespace {

using namespace gpuwalk;

workload::WorkloadParams
tinyParams(std::uint64_t seed = 3)
{
    workload::WorkloadParams p;
    p.wavefronts = 24;
    p.instructionsPerWavefront = 10;
    p.footprintScale = 0.03;
    p.seed = seed;
    return p;
}

/** (scheduler, workload) product: completion + conservation laws. */
class SchedulerWorkloadProperty
    : public ::testing::TestWithParam<
          std::tuple<core::SchedulerKind, std::string>>
{
};

TEST_P(SchedulerWorkloadProperty, CompletesAndConserves)
{
    const auto [kind, workload] = GetParam();
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    system::System sys(cfg);
    sys.loadBenchmark(workload, tinyParams());
    const auto stats = sys.run();

    // Everything issued retires.
    EXPECT_EQ(stats.instructions, 24u * 10u);
    // Every walk that was requested completed; nothing in flight.
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
    EXPECT_EQ(sys.iommu().inflightWalks(), 0u);
    // Walk accounting in the metrics matches the IOMMU counters.
    EXPECT_EQ(stats.walks.totalWalks, stats.walksCompleted);
    // Memory accesses per walk are within the x86-64 bounds.
    if (stats.walks.totalWalks > 0) {
        EXPECT_GE(stats.walks.totalMemAccesses, stats.walks.totalWalks);
        EXPECT_LE(stats.walks.totalMemAccesses,
                  4 * stats.walks.totalWalks);
    }
    // Stall time cannot exceed CUs x runtime.
    EXPECT_LE(stats.stallTicks,
              stats.runtimeTicks * cfg.gpu.numCus);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersTimesWorkloads, SchedulerWorkloadProperty,
    ::testing::Combine(
        ::testing::Values(core::SchedulerKind::Fcfs,
                          core::SchedulerKind::Random,
                          core::SchedulerKind::SjfOnly,
                          core::SchedulerKind::BatchOnly,
                          core::SchedulerKind::SimtAware),
        ::testing::Values("MVT", "XSB", "SSP", "KMN")),
    [](const auto &info) {
        std::string name = core::toString(std::get<0>(info.param))
                           + "_" + std::get<1>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/** Determinism must hold for every scheduler. */
class DeterminismProperty
    : public ::testing::TestWithParam<core::SchedulerKind>
{
};

TEST_P(DeterminismProperty, IdenticalRunsIdenticalResults)
{
    auto run = [&] {
        auto cfg = system::SystemConfig::baseline();
        cfg.scheduler = GetParam();
        system::System sys(cfg);
        sys.loadBenchmark("ATX", tinyParams());
        return sys.run();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.stallTicks, b.stallTicks);
    EXPECT_EQ(a.walkRequests, b.walkRequests);
    EXPECT_EQ(a.walks.totalMemAccesses, b.walks.totalMemAccesses);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, DeterminismProperty,
    ::testing::Values(core::SchedulerKind::Fcfs,
                      core::SchedulerKind::Random,
                      core::SchedulerKind::SjfOnly,
                      core::SchedulerKind::BatchOnly,
                      core::SchedulerKind::SimtAware),
    [](const auto &info) {
        std::string name = core::toString(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/** Seeds change traces but never break invariants. */
class SeedProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedProperty, InvariantsHoldAcrossSeeds)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    system::System sys(cfg);
    sys.loadBenchmark("BIC", tinyParams(GetParam()));
    const auto stats = sys.run();
    EXPECT_EQ(stats.instructions, 24u * 10u);
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

/** Walker-count sweep: more walkers never lose correctness and
 *  monotonically improve (or equal) FCFS runtime. */
class WalkerSweepProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WalkerSweepProperty, CompletesWithAnyWalkerCount)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.iommu.numWalkers = GetParam();
    system::System sys(cfg);
    sys.loadBenchmark("MVT", tinyParams());
    const auto stats = sys.run();
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

INSTANTIATE_TEST_SUITE_P(WalkerCounts, WalkerSweepProperty,
                         ::testing::Values(1, 2, 8, 16, 32));

/** Buffer-size sweep incl. pathological size 1. */
class BufferSweepProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BufferSweepProperty, CompletesWithAnyBufferSize)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.iommu.bufferEntries = GetParam();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    system::System sys(cfg);
    sys.loadBenchmark("GEV", tinyParams());
    const auto stats = sys.run();
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, BufferSweepProperty,
                         ::testing::Values(1, 16, 128, 256, 512));

/** Aging property: with a tiny threshold, no starvation AND the
 *  override path is actually exercised. */
TEST(AgingProperty, TinyThresholdStillCompletes)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    cfg.simt.agingThreshold = 4;
    system::System sys(cfg);
    sys.loadBenchmark("MVT", tinyParams());
    const auto stats = sys.run();
    EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
    auto *sched = dynamic_cast<core::SimtAwareScheduler *>(
        &sys.iommu().scheduler());
    ASSERT_NE(sched, nullptr);
    EXPECT_GT(sched->agingOverrides(), 0u);
}

/** PWC pinning on/off: pure policy change, correctness unaffected. */
TEST(PwcPinningProperty, OnOffBothComplete)
{
    for (bool pin : {true, false}) {
        auto cfg = system::SystemConfig::baseline();
        cfg.scheduler = core::SchedulerKind::SimtAware;
        cfg.iommu.pwc.pinScoredEntries = pin;
        system::System sys(cfg);
        sys.loadBenchmark("ATX", tinyParams());
        const auto stats = sys.run();
        EXPECT_EQ(stats.walkRequests, stats.walksCompleted);
    }
}

/**
 * Feature-matrix property: every combination of the config-gated
 * extension features must preserve the completion and conservation
 * invariants (features may interact; none may deadlock or leak
 * walks).
 */
class FeatureMatrixProperty
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{
};

TEST_P(FeatureMatrixProperty, ExtensionsComposeSafely)
{
    const auto [large_pages, virtual_l1, prefetch] = GetParam();
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    cfg.gpu.virtualL1Cache = virtual_l1;
    cfg.iommu.prefetch.kind = prefetch ? iommu::PrefetchKind::NextPage
                                       : iommu::PrefetchKind::Off;

    auto params = tinyParams();
    params.useLargePages = large_pages;

    system::System sys(cfg);
    sys.loadBenchmark("MVT", params);
    const auto stats = sys.run();
    EXPECT_EQ(stats.instructions, 24u * 10u);
    // Every demand walk completes; prefetch walks come on top.
    EXPECT_EQ(stats.walks.totalWalks, stats.walkRequests);
    EXPECT_GE(stats.walksCompleted, stats.walkRequests);
    // A final speculative prefetch may legitimately still be in
    // flight when the GPU retires its last instruction.
    if (!prefetch)
        EXPECT_EQ(sys.iommu().inflightWalks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FeatureMatrixProperty,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto &info) {
        std::string name;
        name += std::get<0>(info.param) ? "lp1" : "lp0";
        name += std::get<1>(info.param) ? "_v1" : "_v0";
        name += std::get<2>(info.param) ? "_pf1" : "_pf0";
        return name;
    });

/** Geomean helper sanity. */
TEST(ExperimentMath, GeomeanAndSpeedup)
{
    EXPECT_DOUBLE_EQ(exp::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(exp::geomean({1.0}), 1.0);
    system::RunStats fast, slow;
    fast.runtimeTicks = 100;
    slow.runtimeTicks = 150;
    EXPECT_DOUBLE_EQ(exp::speedup(fast, slow), 1.5);
    EXPECT_DOUBLE_EQ(exp::speedup(slow, fast),
                     100.0 / 150.0);
}

} // namespace
