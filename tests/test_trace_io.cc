/**
 * @file
 * Unit tests for workload trace serialization and summarization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "vm/address_space.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::workload;
using gpuwalk::mem::Addr;

gpu::GpuWorkload
sampleWorkload()
{
    gpu::GpuWorkload wl;
    gpu::WavefrontTrace t0;
    gpu::SimdMemInstruction load;
    load.laneAddrs = {0x1000, 0x2000, 0xdeadbeef000};
    load.isLoad = true;
    load.computeCycles = 17;
    t0.push_back(load);
    gpu::SimdMemInstruction store;
    store.laneAddrs = {0x5000};
    store.isLoad = false;
    store.computeCycles = 3;
    t0.push_back(store);
    wl.traces.push_back(std::move(t0));
    wl.traces.push_back({}); // empty wavefront is legal
    return wl;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const auto original = sampleWorkload();
    std::stringstream ss;
    saveTrace(ss, original);
    const auto loaded = loadTrace(ss);

    ASSERT_EQ(loaded.traces.size(), original.traces.size());
    for (std::size_t wf = 0; wf < original.traces.size(); ++wf) {
        ASSERT_EQ(loaded.traces[wf].size(), original.traces[wf].size());
        for (std::size_t k = 0; k < original.traces[wf].size(); ++k) {
            const auto &a = original.traces[wf][k];
            const auto &b = loaded.traces[wf][k];
            EXPECT_EQ(a.laneAddrs, b.laneAddrs);
            EXPECT_EQ(a.isLoad, b.isLoad);
            EXPECT_EQ(a.computeCycles, b.computeCycles);
        }
    }
}

TEST(TraceIo, GeneratedBenchmarkRoundTrips)
{
    mem::BackingStore store;
    vm::FrameAllocator frames{Addr(16) << 30};
    vm::AddressSpace as(store, frames);
    WorkloadParams params;
    params.wavefronts = 6;
    params.instructionsPerWavefront = 8;
    params.footprintScale = 0.02;
    const auto original = makeWorkload("ATX")->generate(as, params);

    std::stringstream ss;
    saveTrace(ss, original);
    const auto loaded = loadTrace(ss);
    ASSERT_EQ(loaded.traces.size(), original.traces.size());
    for (std::size_t wf = 0; wf < original.traces.size(); ++wf) {
        for (std::size_t k = 0; k < original.traces[wf].size(); ++k) {
            EXPECT_EQ(loaded.traces[wf][k].laneAddrs,
                      original.traces[wf][k].laneAddrs);
        }
    }
}

TEST(TraceIo, FormatIsStable)
{
    std::stringstream ss;
    saveTrace(ss, sampleWorkload());
    const std::string text = ss.str();
    EXPECT_NE(text.find("gpuwalk-trace v1"), std::string::npos);
    EXPECT_NE(text.find("wavefronts 2"), std::string::npos);
    EXPECT_NE(text.find("L 17 3 1000 2000 deadbeef000"),
              std::string::npos);
    EXPECT_NE(text.find("S 3 1 5000"), std::string::npos);
}

TEST(TraceIoDeathTest, RejectsBadMagic)
{
    std::stringstream ss("not-a-trace\n");
    EXPECT_EXIT(loadTrace(ss), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(TraceIoDeathTest, RejectsTruncation)
{
    std::stringstream good;
    saveTrace(good, sampleWorkload());
    const std::string text = good.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_EXIT(loadTrace(truncated), ::testing::ExitedWithCode(1),
                "trace:");
}

TEST(TraceIoDeathTest, RejectsOversizedLaneCount)
{
    std::stringstream ss("gpuwalk-trace v1\n"
                         "wavefronts 1\n"
                         "wavefront 0 instructions 1\n"
                         "L 5 9999 0\n");
    EXPECT_EXIT(loadTrace(ss), ::testing::ExitedWithCode(1),
                "lane count");
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/trace_test.gwt";
    saveTraceFile(path, sampleWorkload());
    const auto loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.traces.size(), 2u);
    EXPECT_EQ(loaded.totalInstructions(), 2u);
}

TEST(TraceSummaryTest, CountsAndAverages)
{
    const auto s = summarizeTrace(sampleWorkload());
    EXPECT_EQ(s.wavefronts, 2u);
    EXPECT_EQ(s.instructions, 2u);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_DOUBLE_EQ(s.avgActiveLanes, 2.0);       // (3 + 1) / 2
    EXPECT_DOUBLE_EQ(s.avgUniquePages, 2.0);       // (3 + 1) / 2
    EXPECT_EQ(s.totalComputeCycles, 20u);
}

TEST(TraceSummaryTest, EmptyWorkload)
{
    const auto s = summarizeTrace({});
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_DOUBLE_EQ(s.avgUniquePages, 0.0);
}

} // namespace
