/**
 * @file
 * QoS walk-scheduler tests: unit tests for the token-bucket and
 * weighted-share policies and the walk buffer's per-context index,
 * plus trace-replay fairness invariants over full multi-tenant runs.
 *
 * The trace-based tests mirror test_trace_invariants.cc: run the real
 * system with tracing on and assert the fairness claims per scheduling
 * decision from the PickReason-annotated Scheduled events — the
 * token-bucket budget is never exceeded by policy picks within one
 * window, and the aging override bounds every walk's queue wait under
 * weighted sharing regardless of weights.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "core/token_bucket_scheduler.hh"
#include "core/walk_scheduler.hh"
#include "core/weighted_share_scheduler.hh"
#include "exp/metrics.hh"
#include "system/system.hh"
#include "workload/tenant_mix.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;
using tlb::ContextId;
using trace::Event;
using trace::EventKind;

PendingWalk
qwalk(std::uint64_t seq, ContextId ctx, tlb::InstructionId instr,
      std::uint64_t score = 1, unsigned est = 1)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.request.vaPage = 0x1000 * (seq + 1);
    w.request.ctx = ctx;
    w.score = score;
    w.estimatedAccesses = est;
    return w;
}

/** selectNext + extract + onDispatch in one step. */
PendingWalk
dispatchOne(WalkScheduler &sched, WalkBuffer &buf)
{
    const auto idx = sched.selectNext(buf);
    PendingWalk walk = buf.extract(idx);
    sched.onDispatch(buf, walk);
    return walk;
}

// --- WalkBuffer per-context index ----------------------------------

TEST(WalkBufferContextIndex, TracksPerTenantListsAndCounts)
{
    WalkBuffer buf(16);
    buf.insert(qwalk(0, 0, 1));
    buf.insert(qwalk(1, 2, 2));
    buf.insert(qwalk(2, 0, 3));
    buf.insert(qwalk(3, 2, 4));
    buf.insert(qwalk(4, 2, 5));

    EXPECT_EQ(buf.contextCount(0), 2u);
    EXPECT_EQ(buf.contextCount(1), 0u);
    EXPECT_EQ(buf.contextCount(2), 3u);
    EXPECT_GE(buf.contextLimit(), 3u);
    EXPECT_EQ(buf.contextHead(1), WalkBuffer::npos);
    EXPECT_EQ(buf.contextCount(9), 0u); // never-seen tenant
    EXPECT_EQ(buf.contextHead(9), WalkBuffer::npos);

    // Per-tenant lists are seq-ordered.
    std::size_t i = buf.contextHead(2);
    std::vector<std::uint64_t> seqs;
    while (i != WalkBuffer::npos) {
        seqs.push_back(buf.at(i).seq);
        i = buf.contextNext(i);
    }
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 3, 4}));
}

TEST(WalkBufferContextIndex, SurvivesSwapWithLastExtraction)
{
    WalkBuffer buf(16);
    buf.insert(qwalk(0, 1, 1));
    buf.insert(qwalk(1, 0, 2));
    buf.insert(qwalk(2, 1, 3));
    buf.insert(qwalk(3, 1, 4));

    // Extract a middle tenant-1 entry: the last entry (also tenant 1)
    // is swapped into its slot, exercising the link rewiring.
    std::size_t victim = buf.contextHead(1);
    victim = buf.contextNext(victim); // seq 2
    ASSERT_EQ(buf.at(victim).seq, 2u);
    buf.extract(victim);

    EXPECT_EQ(buf.contextCount(1), 2u);
    std::size_t i = buf.contextHead(1);
    std::vector<std::uint64_t> seqs;
    while (i != WalkBuffer::npos) {
        seqs.push_back(buf.at(i).seq);
        i = buf.contextNext(i);
    }
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 3}));
}

TEST(WalkBufferContextIndex, SjfBestOfContextMinimizesScoreThenSeq)
{
    WalkBuffer buf(16);
    buf.insert(qwalk(0, 0, 1, /*score=*/9));
    buf.insert(qwalk(1, 1, 2, /*score=*/5));
    buf.insert(qwalk(2, 0, 3, /*score=*/4));
    buf.insert(qwalk(3, 0, 4, /*score=*/4)); // tie: older seq 2 wins
    buf.insert(qwalk(4, 1, 5, /*score=*/7));

    const auto best0 = buf.sjfBestOfContext(0);
    ASSERT_NE(best0, WalkBuffer::npos);
    EXPECT_EQ(buf.at(best0).seq, 2u);

    const auto best1 = buf.sjfBestOfContext(1);
    ASSERT_NE(best1, WalkBuffer::npos);
    EXPECT_EQ(buf.at(best1).seq, 1u);

    EXPECT_EQ(buf.sjfBestOfContext(7), WalkBuffer::npos);
}

// --- Token-bucket scheduler ----------------------------------------

TEST(TokenBucketScheduler, PolicyPicksRespectPerTenantQuota)
{
    QosSchedulerConfig qos;
    qos.tokenWindow = 8;
    qos.tokenQuota = 2;
    TokenBucketScheduler sched({}, qos);
    EXPECT_TRUE(sched.needsScores());
    EXPECT_EQ(sched.name(), "token-bucket");

    WalkBuffer buf(64);
    std::uint64_t seq = 0;
    // Three saturated tenants, unique instructions (no batching).
    for (unsigned t = 0; t < 3; ++t)
        for (unsigned k = 0; k < 8; ++k)
            buf.insert(qwalk(seq++, ContextId(t), 100 * t + k));

    std::map<ContextId, unsigned> policyWins;
    for (unsigned d = 0; d < qos.tokenWindow; ++d) {
        const auto walk = dispatchOne(sched, buf);
        const auto reason = sched.lastPickReason();
        if (reason == PickReason::Batch || reason == PickReason::Sjf)
            ++policyWins[walk.request.ctx];
        else
            EXPECT_EQ(reason, PickReason::Overdraft);
    }
    for (const auto &[ctx, wins] : policyWins)
        EXPECT_LE(wins, qos.tokenQuota) << "tenant " << ctx;

    // 3 tenants x quota 2 = 6 policy picks; the final 2 slots of the
    // window are work-conserving overdrafts.
    EXPECT_EQ(sched.overdrafts(), 2u);
    EXPECT_EQ(sched.windowFill(), 0u) << "window should have rolled";

    // Fresh window: budgets replenished, no overdraft needed.
    dispatchOne(sched, buf);
    EXPECT_NE(sched.lastPickReason(), PickReason::Overdraft);
}

TEST(TokenBucketScheduler, BatchingStopsAtBudgetAndResumesNextWindow)
{
    QosSchedulerConfig qos;
    qos.tokenWindow = 4;
    qos.tokenQuota = 2;
    TokenBucketScheduler sched({}, qos);

    WalkBuffer buf(32);
    // Tenant 0: one instruction with four walks (a batch). Tenant 1:
    // four unrelated single-walk instructions, more expensive.
    for (unsigned k = 0; k < 4; ++k)
        buf.insert(qwalk(k, 0, /*instr=*/7, /*score=*/1));
    for (unsigned k = 0; k < 4; ++k)
        buf.insert(qwalk(4 + k, 1, /*instr=*/50 + k, /*score=*/5));

    struct Pick { PickReason reason; ContextId ctx; };
    std::vector<Pick> picks;
    for (unsigned d = 0; d < 6; ++d) {
        const auto walk = dispatchOne(sched, buf);
        picks.push_back({sched.lastPickReason(), walk.request.ctx});
    }

    // Window 1: SJF starts tenant 0's batch, one batched sibling
    // exhausts its quota, then tenant 1 gets its turn twice (its
    // single-walk instructions leave nothing to batch with). Window 2:
    // budgets replenish, SJF returns to tenant 0's cheap instruction,
    // and its remaining siblings batch behind it again.
    ASSERT_EQ(picks.size(), 6u);
    EXPECT_EQ(picks[0].reason, PickReason::Sjf);
    EXPECT_EQ(picks[0].ctx, 0);
    EXPECT_EQ(picks[1].reason, PickReason::Batch);
    EXPECT_EQ(picks[1].ctx, 0);
    EXPECT_EQ(picks[2].reason, PickReason::Sjf);
    EXPECT_EQ(picks[2].ctx, 1);
    EXPECT_EQ(picks[3].reason, PickReason::Sjf);
    EXPECT_EQ(picks[3].ctx, 1);
    EXPECT_EQ(picks[4].reason, PickReason::Sjf);
    EXPECT_EQ(picks[4].ctx, 0);
    EXPECT_EQ(picks[5].reason, PickReason::Batch);
    EXPECT_EQ(picks[5].ctx, 0);
}

TEST(TokenBucketScheduler, AgingOverrideIsBudgetExempt)
{
    SimtSchedulerConfig simt;
    simt.agingThreshold = 3;
    QosSchedulerConfig qos;
    qos.tokenWindow = 100; // never rolls during this test
    qos.tokenQuota = 1;
    TokenBucketScheduler sched(simt, qos);

    WalkBuffer buf(32);
    buf.insert(qwalk(0, 0, 1, /*score=*/1));    // cheap: exhausts quota
    buf.insert(qwalk(1, 0, 2, /*score=*/1000)); // expensive: will age
    for (unsigned k = 0; k < 6; ++k)
        buf.insert(qwalk(2 + k, 1, 10 + k, /*score=*/5));

    // d1: tenant 0's cheap walk (quota now spent). d2: tenant 1 (the
    // only under-quota tenant; quota now spent too). d3, d4: all over
    // budget -> overdraft picks the global SJF minimum (tenant 1's 5 <
    // 1000), bypassing the expensive walk up to the threshold.
    std::vector<PickReason> reasons;
    std::vector<ContextId> ctxs;
    for (unsigned d = 0; d < 5; ++d) {
        const auto walk = dispatchOne(sched, buf);
        reasons.push_back(sched.lastPickReason());
        ctxs.push_back(walk.request.ctx);
    }

    EXPECT_EQ(reasons[0], PickReason::Sjf);
    EXPECT_EQ(ctxs[0], 0);
    EXPECT_EQ(reasons[1], PickReason::Sjf);
    EXPECT_EQ(ctxs[1], 1);
    EXPECT_EQ(reasons[2], PickReason::Overdraft);
    EXPECT_EQ(reasons[3], PickReason::Overdraft);
    // d5: the starved walk hit the threshold — aging wins although
    // tenant 0 is far over its budget.
    EXPECT_EQ(reasons[4], PickReason::Aging);
    EXPECT_EQ(ctxs[4], 0);
    EXPECT_EQ(sched.agingOverrides(), 1u);
}

// --- Weighted-share scheduler --------------------------------------

TEST(WeightedShareScheduler, ServiceSplitsProportionallyToWeights)
{
    QosSchedulerConfig qos;
    qos.shareWeights = {1, 2}; // tenant 1 owed twice the throughput
    WeightedShareScheduler sched({}, qos);
    EXPECT_TRUE(sched.needsScores());
    EXPECT_EQ(sched.name(), "weighted-share");

    WalkBuffer buf(32);
    std::uint64_t seq = 0;
    std::map<ContextId, unsigned> pendingOf;
    const auto topUp = [&] {
        for (ContextId t = 0; t < 2; ++t) {
            while (pendingOf[t] < 2) {
                buf.insert(
                    qwalk(seq, t, /*instr=*/1000 + seq, /*score=*/1));
                ++seq;
                ++pendingOf[t];
            }
        }
    };

    std::map<ContextId, unsigned> wins;
    const unsigned dispatches = 300;
    for (unsigned d = 0; d < dispatches; ++d) {
        topUp(); // both tenants always pending: saturation
        const auto walk = dispatchOne(sched, buf);
        ++wins[walk.request.ctx];
        --pendingOf[walk.request.ctx];
    }

    // Weight 2 : weight 1 at saturation -> 2/3 : 1/3 of dispatches.
    EXPECT_NEAR(wins[1], 200.0, 8.0);
    EXPECT_NEAR(wins[0], 100.0, 8.0);
    // Charged virtual service converges to near-equal totals.
    const auto s0 = sched.virtualService(0);
    const auto s1 = sched.virtualService(1);
    EXPECT_LT(s0 > s1 ? s0 - s1 : s1 - s0, 2048u);
}

TEST(WeightedShareScheduler, IdleTenantCannotBankPriority)
{
    QosSchedulerConfig qos; // equal weights
    WeightedShareScheduler sched({}, qos);

    WalkBuffer buf(64);
    std::uint64_t seq = 0;
    std::map<ContextId, unsigned> pendingOf;
    const auto add = [&](ContextId t) {
        buf.insert(qwalk(seq, t, 1000 + seq, /*score=*/1));
        ++seq;
        ++pendingOf[t];
    };

    // Phase 1: both busy for a while.
    for (unsigned d = 0; d < 10; ++d) {
        while (pendingOf[0] < 2) add(0);
        while (pendingOf[1] < 2) add(1);
        --pendingOf[dispatchOne(sched, buf).request.ctx];
    }
    // Phase 2: tenant 1 goes idle; tenant 0 keeps the walkers busy and
    // accumulates 40 dispatches of service.
    while (buf.contextCount(1) > 0) {
        const auto idx = buf.contextHead(1);
        buf.extract(idx);
        --pendingOf[1];
    }
    for (unsigned d = 0; d < 40; ++d) {
        while (pendingOf[0] < 2) add(0);
        const auto walk = dispatchOne(sched, buf);
        ASSERT_EQ(walk.request.ctx, 0);
        --pendingOf[0];
    }

    // Phase 3: tenant 1 returns. Without the activation floor its
    // stale-low service total would monopolize the walkers for ~40
    // dispatches; with it, sharing resumes immediately.
    std::map<ContextId, unsigned> wins;
    for (unsigned d = 0; d < 20; ++d) {
        while (pendingOf[0] < 2) add(0);
        while (pendingOf[1] < 2) add(1);
        const auto walk = dispatchOne(sched, buf);
        ++wins[walk.request.ctx];
        --pendingOf[walk.request.ctx];
    }
    EXPECT_GE(wins[0], 8u) << "returning tenant banked idle time";
    EXPECT_GE(wins[1], 8u);
}

// --- Fairness metric ------------------------------------------------

TEST(FairnessMetrics, JainIndexBounds)
{
    EXPECT_DOUBLE_EQ(exp::jainIndex({1.0, 1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(exp::jainIndex({5.0}), 1.0);
    // (1+3)^2 / (2 * (1+9)) = 16/20
    EXPECT_DOUBLE_EQ(exp::jainIndex({1.0, 3.0}), 0.8);
    // Maximally unfair n-tenant split -> 1/n.
    EXPECT_NEAR(exp::jainIndex({1e-9, 1e-9, 1e-9, 1.0}), 0.25, 1e-6);
    EXPECT_TRUE(std::isnan(exp::jainIndex({})));
    EXPECT_TRUE(std::isnan(exp::jainIndex({1.0, 0.0})));
}

// --- Tenant-mix generator ------------------------------------------

TEST(TenantMix, GeneratesHeterogeneousDeterministicSpecs)
{
    workload::TenantMixConfig cfg;
    cfg.numTenants = 8;
    cfg.seed = 42;
    const auto a = workload::generateTenantMix(cfg);
    const auto b = workload::generateTenantMix(cfg);
    ASSERT_EQ(a.size(), 8u);

    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << i;
        EXPECT_EQ(a[i].params.seed, b[i].params.seed) << i;
        EXPECT_DOUBLE_EQ(a[i].params.footprintScale,
                         b[i].params.footprintScale)
            << i;
        EXPECT_EQ(a[i].arrivalTick, 0u) << "no churn requested";
        EXPECT_GE(a[i].params.footprintScale, cfg.footprintScaleMin);
        EXPECT_LE(a[i].params.footprintScale, cfg.footprintScaleMax);
        // Distinct trace streams even for repeated workload names.
        for (std::size_t j = 0; j < i; ++j)
            EXPECT_NE(a[i].params.seed, a[j].params.seed);
    }
    // Neighbouring tenants alternate divergence class.
    EXPECT_NE(a[0].workload, a[1].workload);
}

TEST(TenantMix, ChurnedTenantsArriveWithinTheWindow)
{
    workload::TenantMixConfig cfg;
    cfg.numTenants = 8;
    cfg.churnFraction = 0.5;
    cfg.churnWindowTicks = 1'000'000;
    cfg.alternateWeights = true;
    const auto mix = workload::generateTenantMix(cfg);
    ASSERT_EQ(mix.size(), 8u);

    unsigned late = 0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        if (mix[i].arrivalTick > 0) {
            ++late;
            EXPECT_LE(mix[i].arrivalTick, cfg.churnWindowTicks);
        }
        EXPECT_EQ(mix[i].weight, i % 2 == 1 ? 2u : 1u);
    }
    EXPECT_EQ(late, 4u);
    // Churned tenants are the tail of the mix: the first half stays.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(mix[i].arrivalTick, 0u);
}

// --- Trace-replay fairness invariants ------------------------------

struct TenantRun
{
    std::vector<Event> events;
    system::RunStats stats;
    std::uint64_t overflowed = 0;
    std::uint64_t dropped = 0;
};

/** (ctx, instruction, vaPage): unique per in-flight walk — tenants
 *  share a VA layout, so the context must be part of the key. */
using WalkKey = std::tuple<std::uint16_t, std::uint64_t, mem::Addr>;

WalkKey
keyOf(const Event &ev)
{
    return {ev.ctx, ev.instruction, ev.vaPage};
}

PickReason
reasonOf(const Event &ev)
{
    return static_cast<PickReason>(ev.arg0);
}

/** A contended four-tenant mix, traced, with auditing on. */
TenantRun
runTenantsTraced(SchedulerKind kind,
                 const QosSchedulerConfig &qos = {},
                 std::uint64_t aging_threshold = 0)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    cfg.qos = qos;
    cfg.trace.enabled = true;
    cfg.audit.enabled = true;
    cfg.audit.interval = 100'000;
    // Big enough that nothing lands in the overflow FIFO; the replays
    // below only see buffered walks.
    cfg.iommu.bufferEntries = 1u << 16;
    if (aging_threshold)
        cfg.simt.agingThreshold = aging_threshold;
    system::System sys(cfg);

    workload::TenantMixConfig mix;
    mix.numTenants = 4;
    mix.seed = 11;
    mix.wavefrontsPerTenant = 16;
    mix.instructionsPerWavefront = 6;
    mix.footprintScaleMin = 0.02;
    mix.footprintScaleMax = 0.06;
    const auto specs = workload::generateTenantMix(mix);
    for (unsigned i = 0; i < specs.size(); ++i) {
        const auto ctx =
            i == 0 ? tlb::defaultContext : sys.createContext();
        EXPECT_EQ(ctx, i);
        sys.loadBenchmarkInContext(specs[i].workload, specs[i].params,
                                   /*app_id=*/i, ctx,
                                   specs[i].arrivalTick);
    }

    TenantRun out;
    out.stats = sys.run();
    out.overflowed = sys.iommu().overflowed();
    out.dropped = sys.tracer()->dropped();
    out.events = sys.tracer()->snapshot();
    return out;
}

TEST(QosTraceInvariants, PerTenantAccountingSumsToGlobal)
{
    const auto run = runTenantsTraced(SchedulerKind::TokenBucket);
    ASSERT_EQ(run.dropped, 0u);

    // The conservation auditor ran its tenant-accounting invariant
    // throughout (and at finalization) without a single violation.
    ASSERT_TRUE(run.stats.audited);
    EXPECT_EQ(run.stats.auditViolations, 0u)
        << (run.stats.auditFindings.empty()
                ? ""
                : run.stats.auditFindings.front().message);

    ASSERT_EQ(run.stats.tenants.size(), 4u);
    std::uint64_t requests = 0;
    for (const auto &t : run.stats.tenants) {
        EXPECT_GT(t.walkRequests, 0u) << "tenant " << t.ctx << " idle";
        EXPECT_GT(t.walksCompleted, 0u);
        EXPECT_GT(t.finishTick, 0u);
        EXPECT_LE(t.walksCompleted, t.walkRequests);
        requests += t.walkRequests;
    }
    EXPECT_EQ(requests, run.stats.walkRequests);
}

TEST(QosTraceInvariants, TokenBucketPolicyPicksNeverExceedWindowBudget)
{
    QosSchedulerConfig qos;
    qos.tokenWindow = 16;
    qos.tokenQuota = 3;
    const auto run = runTenantsTraced(SchedulerKind::TokenBucket, qos);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);
    EXPECT_EQ(run.stats.auditViolations, 0u);

    // Scheduler-mediated dispatches in trace order ARE the window
    // stream: chunk them by tokenWindow and bound each tenant's
    // policy-driven picks by the quota. Aging (starvation freedom) and
    // overdraft (work conservation) picks are budget-exempt by design.
    std::map<std::uint16_t, unsigned> windowWins;
    unsigned windowFill = 0;
    std::uint64_t mediated = 0, overdrafts = 0;
    std::map<std::uint16_t, std::uint64_t> winsByTenant;
    for (const auto &ev : run.events) {
        if (ev.kind != EventKind::Scheduled
            || reasonOf(ev) == PickReason::Immediate) {
            continue;
        }
        ++mediated;
        ++winsByTenant[ev.ctx];
        const auto reason = reasonOf(ev);
        overdrafts += reason == PickReason::Overdraft;
        if (reason == PickReason::Batch || reason == PickReason::Sjf
            || reason == PickReason::Policy) {
            ++windowWins[ev.ctx];
            ASSERT_LE(windowWins[ev.ctx], qos.tokenQuota)
                << "tenant " << ev.ctx
                << " exceeded its window budget at tick " << ev.tick;
        }
        if (++windowFill == qos.tokenWindow) {
            windowFill = 0;
            windowWins.clear();
        }
    }

    // Meaningfulness guards: real contention, all tenants dispatched,
    // and the work-conserving branch actually exercised (4 tenants x
    // quota 3 < window 16 guarantees overdraft under saturation).
    EXPECT_GT(mediated, 200u) << "mix was not contended enough";
    EXPECT_EQ(winsByTenant.size(), 4u);
    EXPECT_GT(overdrafts, 0u);
}

TEST(QosTraceInvariants, WeightedShareAgingBoundsQueueWait)
{
    constexpr std::uint64_t threshold = 64;
    QosSchedulerConfig qos;
    qos.shareWeights = {1, 2, 1, 2}; // skewed on purpose
    const auto run = runTenantsTraced(SchedulerKind::WeightedShare, qos,
                                      threshold);
    ASSERT_EQ(run.dropped, 0u);
    ASSERT_EQ(run.overflowed, 0u);
    EXPECT_EQ(run.stats.auditViolations, 0u);

    // Pass 1: the peak number of simultaneously pending walks — the
    // "older entries drain first" term of the starvation bound.
    std::map<WalkKey, std::uint64_t> start;
    std::size_t maxPending = 0;
    for (const auto &ev : run.events) {
        if (ev.kind == EventKind::Enqueued) {
            start[keyOf(ev)] = 0;
            maxPending = std::max(maxPending, start.size());
        } else if (ev.kind == EventKind::Scheduled) {
            start.erase(keyOf(ev));
        }
    }
    ASSERT_TRUE(start.empty()) << "walks enqueued but never scheduled";

    // Pass 2: however skewed the weights, no walk may wait more than
    // threshold bypasses plus the backlog that was already ahead of it
    // (aged entries are served oldest-first).
    const std::uint64_t bound = threshold + maxPending + 16;
    std::uint64_t mediated = 0, agingPicks = 0;
    for (const auto &ev : run.events) {
        if (ev.kind == EventKind::Enqueued) {
            start[keyOf(ev)] = mediated;
        } else if (ev.kind == EventKind::Scheduled) {
            const auto it = start.find(keyOf(ev));
            ASSERT_NE(it, start.end());
            ASSERT_LE(mediated - it->second, bound)
                << "walk of tenant " << ev.ctx
                << " starved past the aging bound at tick " << ev.tick;
            start.erase(it);
            if (reasonOf(ev) != PickReason::Immediate) {
                ++mediated;
                agingPicks += reasonOf(ev) == PickReason::Aging;
            }
        }
    }
    EXPECT_GT(mediated, 200u) << "mix was not contended enough";
    EXPECT_GT(agingPicks, 0u)
        << "threshold " << threshold << " never triggered aging";
}

TEST(QosTraceInvariants, QosSchedulersKeepWalkLifecycleConsistent)
{
    // The generic lifecycle invariant (every enqueue scheduled, every
    // schedule completed) holds under both QoS policies too.
    for (const auto kind : {SchedulerKind::TokenBucket,
                            SchedulerKind::WeightedShare}) {
        const auto run = runTenantsTraced(kind);
        ASSERT_EQ(run.dropped, 0u);
        std::map<WalkKey, unsigned> open;
        for (const auto &ev : run.events) {
            if (ev.kind == EventKind::Enqueued)
                ++open[keyOf(ev)];
            else if (ev.kind == EventKind::WalkDone)
                --open[keyOf(ev)];
        }
        for (const auto &[key, n] : open)
            ASSERT_EQ(n, 0u) << core::toString(kind)
                             << ": unbalanced walk lifecycle";
        EXPECT_EQ(run.stats.walkRequests, run.stats.walksCompleted);
    }
}

} // namespace
