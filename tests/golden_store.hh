/**
 * @file
 * Shared reader/writer for tests/golden/digests.json.
 *
 * Several golden tests pin entries in the same committed file: the
 * scheduler-grid digests (test_digest_golden.cc) and the multi-tenant
 * mix digests (test_tenant_determinism.cc). Each test computes only
 * its own keys, so regeneration must MERGE into the committed file —
 * overwrite the keys the running test owns, preserve everyone else's —
 * rather than rewriting it wholesale.
 */

#ifndef GPUWALK_TESTS_GOLDEN_STORE_HH
#define GPUWALK_TESTS_GOLDEN_STORE_HH

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace gpuwalk::testing {

/** The values a golden entry pins down. */
struct GoldenEntry
{
    std::string digest; ///< 16-digit hex FNV-1a trace digest
    std::uint64_t runtimeTicks = 0;
    std::uint64_t instructions = 0;
    std::uint64_t translationRequests = 0;
    std::uint64_t walkRequests = 0;
    std::uint64_t walksCompleted = 0;
    std::uint64_t traceEvents = 0;
};

inline std::string
goldenPath()
{
    return std::string(GPUWALK_TESTS_SOURCE_DIR) + "/golden/digests.json";
}

/**
 * Parses the committed golden file. The format is the machine-written
 * one-entry-per-line JSON produced by writeGoldensMerged(); parsing
 * scans for the known quoted keys rather than pulling in a JSON
 * library.
 */
inline std::map<std::string, GoldenEntry>
readGoldens()
{
    std::ifstream in(goldenPath());
    if (!in)
        return {};

    auto field = [](const std::string &line, const std::string &key)
        -> std::string {
        const std::string marker = "\"" + key + "\":";
        const auto pos = line.find(marker);
        if (pos == std::string::npos)
            return "";
        std::size_t begin = pos + marker.size();
        while (begin < line.size()
               && (line[begin] == ' ' || line[begin] == '"')) {
            ++begin;
        }
        std::size_t end = begin;
        while (end < line.size() && line[end] != ','
               && line[end] != '"' && line[end] != '}') {
            ++end;
        }
        return line.substr(begin, end - begin);
    };

    std::map<std::string, GoldenEntry> out;
    std::string line;
    while (std::getline(in, line)) {
        const std::string key = field(line, "key");
        if (key.empty())
            continue;
        GoldenEntry e;
        e.digest = field(line, "digest");
        e.runtimeTicks = std::stoull(field(line, "runtime_ticks"));
        e.instructions = std::stoull(field(line, "instructions"));
        e.translationRequests =
            std::stoull(field(line, "translation_requests"));
        e.walkRequests = std::stoull(field(line, "walk_requests"));
        e.walksCompleted = std::stoull(field(line, "walks_completed"));
        e.traceEvents = std::stoull(field(line, "trace_events"));
        out[key] = e;
    }
    return out;
}

/**
 * Merge @p updates into the committed golden file: keys present in
 * @p updates are overwritten, all other committed keys are preserved,
 * and the union is written back sorted. Returns false if the file
 * cannot be opened for writing.
 */
inline bool
writeGoldensMerged(const std::map<std::string, GoldenEntry> &updates)
{
    std::map<std::string, GoldenEntry> merged = readGoldens();
    for (const auto &[key, e] : updates)
        merged[key] = e;

    std::ofstream out(goldenPath());
    if (!out)
        return false;
    out << "{\n";
    out << "  \"comment\": \"machine-written golden store"
           " (GPUWALK_UPDATE_GOLDEN=1); do not edit by hand."
           " Scheduler-grid keys come from test_digest_golden.cc,"
           " tenant keys from test_tenant_determinism.cc\",\n";
    out << "  \"entries\": [\n";
    bool first = true;
    for (const auto &[key, e] : merged) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"key\": \"" << key << "\", \"digest\": \""
            << e.digest << "\", \"runtime_ticks\": " << e.runtimeTicks
            << ", \"instructions\": " << e.instructions
            << ", \"translation_requests\": " << e.translationRequests
            << ", \"walk_requests\": " << e.walkRequests
            << ", \"walks_completed\": " << e.walksCompleted
            << ", \"trace_events\": " << e.traceEvents << "}";
    }
    out << "\n  ]\n}\n";
    return true;
}

inline bool
updateRequested()
{
    const char *env = std::getenv("GPUWALK_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) != "0";
}

/**
 * Compare every computed entry against its committed golden. Each test
 * checks only the keys it computed, so foreign keys in the store never
 * fail a test that did not produce them.
 */
#define GPUWALK_EXPECT_GOLDENS_MATCH(computed)                            \
    do {                                                                  \
        const auto goldens_ = gpuwalk::testing::readGoldens();            \
        ASSERT_FALSE(goldens_.empty())                                    \
            << "no goldens at " << gpuwalk::testing::goldenPath()         \
            << "; run with GPUWALK_UPDATE_GOLDEN=1 to mint them";         \
        for (const auto &[key_, got_] : (computed)) {                     \
            const auto it_ = goldens_.find(key_);                         \
            ASSERT_NE(it_, goldens_.end())                                \
                << "no committed golden for " << key_                     \
                << "; mint with GPUWALK_UPDATE_GOLDEN=1";                 \
            const gpuwalk::testing::GoldenEntry &want_ = it_->second;     \
            EXPECT_EQ(got_.digest, want_.digest)                          \
                << key_ << ": trace digest diverged — simulated "         \
                           "behaviour changed";                           \
            EXPECT_EQ(got_.runtimeTicks, want_.runtimeTicks) << key_;     \
            EXPECT_EQ(got_.instructions, want_.instructions) << key_;     \
            EXPECT_EQ(got_.translationRequests,                           \
                      want_.translationRequests)                          \
                << key_;                                                  \
            EXPECT_EQ(got_.walkRequests, want_.walkRequests) << key_;     \
            EXPECT_EQ(got_.walksCompleted, want_.walksCompleted)          \
                << key_;                                                  \
            EXPECT_EQ(got_.traceEvents, want_.traceEvents) << key_;       \
        }                                                                 \
    } while (0)

} // namespace gpuwalk::testing

#endif // GPUWALK_TESTS_GOLDEN_STORE_HH
