/**
 * @file
 * Unit tests for the walk schedulers — the paper's core mechanism.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/fcfs_scheduler.hh"
#include "core/random_scheduler.hh"
#include "core/simt_aware_scheduler.hh"
#include "core/walk_scheduler.hh"

namespace {

using namespace gpuwalk;
using namespace gpuwalk::core;

PendingWalk
walk(std::uint64_t seq, tlb::InstructionId instr, std::uint64_t score)
{
    PendingWalk w;
    w.seq = seq;
    w.request.instruction = instr;
    w.score = score;
    return w;
}

TEST(FcfsScheduler, PicksOldest)
{
    FcfsScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(5, 1, 0));
    buf.insert(walk(2, 2, 0));
    buf.insert(walk(9, 3, 0));
    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 2u);
}

TEST(FcfsScheduler, IgnoresScores)
{
    FcfsScheduler sched;
    EXPECT_FALSE(sched.needsScores());
    WalkBuffer buf(8);
    buf.insert(walk(5, 1, 1));
    buf.insert(walk(2, 2, 100));
    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 2u);
}

TEST(RandomScheduler, DeterministicPerSeed)
{
    WalkBuffer buf(8);
    for (std::uint64_t i = 0; i < 8; ++i)
        buf.insert(walk(i, i, 0));
    RandomScheduler a(77), b(77), c(99);
    std::vector<std::size_t> pa, pb, pc;
    for (int i = 0; i < 32; ++i) {
        pa.push_back(a.selectNext(buf));
        pb.push_back(b.selectNext(buf));
        pc.push_back(c.selectNext(buf));
    }
    EXPECT_EQ(pa, pb);
    EXPECT_NE(pa, pc);
}

TEST(RandomScheduler, CoversTheWholeBuffer)
{
    WalkBuffer buf(16);
    for (std::uint64_t i = 0; i < 16; ++i)
        buf.insert(walk(i, i, 0));
    RandomScheduler sched(3);
    std::set<std::size_t> picked;
    for (int i = 0; i < 500; ++i)
        picked.insert(sched.selectNext(buf));
    EXPECT_EQ(picked.size(), 16u);
}

TEST(SimtAware, SjfPicksLowestScore)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 50));
    buf.insert(walk(1, 2, 10));
    buf.insert(walk(2, 3, 30));
    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 1u);
}

TEST(SimtAware, ScoreTieBrokenByAge)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(7, 1, 10));
    buf.insert(walk(3, 2, 10));
    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 3u);
}

TEST(SimtAware, BatchesWithLastDispatchedInstruction)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 5));
    buf.insert(walk(1, 2, 1));  // cheapest
    buf.insert(walk(2, 1, 5));
    buf.insert(walk(3, 1, 5));

    // First pick: SJF -> instruction 2.
    auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 2u);
    auto w = buf.extract(idx);
    sched.onDispatch(buf, w);

    // Instruction 2 has no more requests: falls back to SJF among
    // instruction 1's walks, oldest first.
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 1u);
    EXPECT_EQ(buf.at(idx).seq, 0u);
    w = buf.extract(idx);
    sched.onDispatch(buf, w);

    // Now batching keeps picking instruction 1, oldest first, even if
    // a cheaper instruction arrives.
    buf.insert(walk(9, 5, 0));
    idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 1u);
    EXPECT_EQ(buf.at(idx).seq, 2u);
    EXPECT_GE(sched.batchPicks(), 1u);
}

TEST(SimtAware, SjfOnlyVariantDoesNotBatch)
{
    SimtSchedulerConfig cfg;
    cfg.enableBatching = false;
    SimtAwareScheduler sched(cfg);
    EXPECT_EQ(sched.name(), "sjf-only");

    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 5));
    buf.insert(walk(1, 1, 5));
    auto w = buf.extract(sched.selectNext(buf));
    sched.onDispatch(buf, w);
    buf.insert(walk(2, 9, 1)); // cheaper new instruction
    // Without batching, the cheap newcomer wins over the sibling.
    EXPECT_EQ(buf.at(sched.selectNext(buf)).request.instruction, 9u);
}

TEST(SimtAware, BatchOnlyVariantIgnoresScores)
{
    SimtSchedulerConfig cfg;
    cfg.enableSjf = false;
    SimtAwareScheduler sched(cfg);
    EXPECT_EQ(sched.name(), "batch-only");
    EXPECT_FALSE(sched.needsScores());

    WalkBuffer buf(8);
    buf.insert(walk(1, 1, 100));
    buf.insert(walk(2, 2, 1));
    // No last instruction yet: FCFS order, not score order.
    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 1u);
}

TEST(SimtAware, AgingOverridesEverything)
{
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 3;
    SimtAwareScheduler sched(cfg);

    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 100)); // expensive, will starve
    // Dispatch three cheap younger requests; each bypass ages seq 0.
    for (std::uint64_t i = 1; i <= 3; ++i) {
        buf.insert(walk(i, 10 + i, 1));
        auto idx = sched.selectNext(buf);
        EXPECT_EQ(buf.at(idx).seq, i);
        auto w = buf.extract(idx);
        sched.onDispatch(buf, w);
    }
    EXPECT_EQ(buf.at(0).bypassed, 3u);

    // Now the starved request must win despite its score and despite
    // batching possibilities.
    buf.insert(walk(4, 13, 1)); // same instr as last dispatched
    const auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).seq, 0u);
    EXPECT_EQ(sched.agingOverrides(), 1u);
}

TEST(SimtAware, DispatchUpdatesBypassOnlyForOlder)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(5, 1, 1));
    buf.insert(walk(6, 2, 2));
    buf.insert(walk(7, 3, 3));
    // Dispatch seq 6: only seq 5 was bypassed.
    auto w = buf.extract(1);
    sched.onDispatch(buf, w);
    for (const auto &e : buf.entries()) {
        if (e.seq == 5)
            EXPECT_EQ(e.bypassed, 1u);
        else
            EXPECT_EQ(e.bypassed, 0u);
    }
}

TEST(WalkSchedulerBase, BypassCounterSaturatesInsteadOfWrapping)
{
    // A wrapped bypass counter would reset a starving request's aging
    // priority to zero — the exact starvation the counter exists to
    // prevent.
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    auto starving = walk(0, 1, 100);
    starving.bypassed = ~std::uint64_t{0}; // already saturated
    buf.insert(std::move(starving));
    buf.insert(walk(1, 2, 1));

    auto w = buf.extract(1); // dispatch the younger request
    sched.onDispatch(buf, w);
    EXPECT_EQ(buf.at(0).bypassed, ~std::uint64_t{0})
        << "saturated counter wrapped to zero";
}

TEST(SimtAware, SaturatedBypassStillTriggersAging)
{
    SimtSchedulerConfig cfg;
    cfg.agingThreshold = 3;
    SimtAwareScheduler sched(cfg);
    WalkBuffer buf(8);
    auto starving = walk(0, 1, 100);
    starving.bypassed = ~std::uint64_t{0};
    buf.insert(std::move(starving));
    buf.insert(walk(1, 2, 1)); // cheap, would win on SJF

    EXPECT_EQ(buf.at(sched.selectNext(buf)).seq, 0u);
    EXPECT_EQ(sched.agingOverrides(), 1u);
}

TEST(SchedulerAging, TracksAgingMatrix)
{
    // FCFS dispatches in arrival order, so it skips the bypass
    // bookkeeping entirely and advertises that to the auditor; every
    // other policy maintains the counters.
    EXPECT_FALSE(FcfsScheduler{}.tracksAging());
    EXPECT_TRUE(RandomScheduler{1}.tracksAging());
    EXPECT_TRUE(SimtAwareScheduler{}.tracksAging());
}

TEST(FcfsScheduler, DispatchLeavesBypassCountersAtZero)
{
    FcfsScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 0));
    buf.insert(walk(1, 2, 0));
    buf.insert(walk(2, 3, 0));
    // FCFS always extracts the oldest, so nothing is ever bypassed —
    // and its onDispatch must not touch the counters either way.
    auto w = buf.extract(sched.selectNext(buf));
    sched.onDispatch(buf, w);
    for (const auto &e : buf.entries())
        EXPECT_EQ(e.bypassed, 0u);
}

TEST(SimtAware, FailedBatchProbeClearsStaleLastInstruction)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 5));
    auto w = buf.extract(sched.selectNext(buf));
    sched.onDispatch(buf, w);
    ASSERT_TRUE(sched.lastInstruction().has_value());
    EXPECT_EQ(*sched.lastInstruction(), 1u);

    // Instruction 1's walks have drained; the next probe finds no
    // sibling and must drop the stale ID instead of letting it claim
    // future batch picks.
    buf.insert(walk(1, 2, 5));
    (void)sched.selectNext(buf);
    EXPECT_FALSE(sched.lastInstruction().has_value());
}

TEST(SimtAware, SuccessfulBatchProbeKeepsLastInstruction)
{
    SimtAwareScheduler sched;
    WalkBuffer buf(8);
    buf.insert(walk(0, 1, 5));
    buf.insert(walk(1, 1, 5)); // sibling stays buffered
    auto w = buf.extract(sched.selectNext(buf));
    sched.onDispatch(buf, w);

    const auto idx = sched.selectNext(buf);
    EXPECT_EQ(buf.at(idx).request.instruction, 1u);
    ASSERT_TRUE(sched.lastInstruction().has_value());
    EXPECT_EQ(*sched.lastInstruction(), 1u);
    EXPECT_EQ(sched.lastPickReason(), PickReason::Batch);
}

TEST(SchedulerFactory, CreatesAllKinds)
{
    for (auto kind :
         {SchedulerKind::Fcfs, SchedulerKind::Random,
          SchedulerKind::SjfOnly, SchedulerKind::BatchOnly,
          SchedulerKind::SimtAware}) {
        auto sched = makeScheduler(kind, 1);
        ASSERT_NE(sched, nullptr);
        EXPECT_EQ(schedulerKindFromString(toString(kind)), kind);
    }
}

TEST(SchedulerFactory, NameRoundTripAliases)
{
    EXPECT_EQ(schedulerKindFromString("simt"), SchedulerKind::SimtAware);
    EXPECT_EQ(schedulerKindFromString("sjf"), SchedulerKind::SjfOnly);
    EXPECT_EQ(schedulerKindFromString("batch"),
              SchedulerKind::BatchOnly);
}

TEST(SchedulerFactory, NeedsScoresMatrix)
{
    EXPECT_FALSE(makeScheduler(SchedulerKind::Fcfs)->needsScores());
    EXPECT_FALSE(makeScheduler(SchedulerKind::Random)->needsScores());
    EXPECT_TRUE(makeScheduler(SchedulerKind::SjfOnly)->needsScores());
    EXPECT_FALSE(makeScheduler(SchedulerKind::BatchOnly)->needsScores());
    EXPECT_TRUE(makeScheduler(SchedulerKind::SimtAware)->needsScores());
}

} // namespace
