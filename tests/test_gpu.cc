/**
 * @file
 * Unit tests for the GPU compute model: lockstep instruction
 * semantics, wavefront dispatch/refill, and stall accounting.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "tlb/tlb_hierarchy.hh"

namespace {

using namespace gpuwalk;
using gpuwalk::mem::Addr;

/** Instant IOMMU: identity translation after a fixed delay. */
class InstantIommu : public tlb::TranslationService
{
  public:
    InstantIommu(sim::EventQueue &eq, sim::Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    translate(tlb::TranslationRequest req) override
    {
        eq_.scheduleIn(latency_, [r = std::move(req)]() mutable {
            r.complete(r.vaPage);
        });
    }

  private:
    sim::EventQueue &eq_;
    sim::Tick latency_;
};

/** Memory stub for the data path. */
class FixedMemory : public mem::MemoryDevice
{
  public:
    FixedMemory(sim::EventQueue &eq, sim::Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    access(mem::MemoryRequest req) override
    {
        ++accesses;
        eq_.scheduleIn(latency_,
                       [r = std::move(req)]() mutable { r.complete(); });
    }

    unsigned accesses = 0;

  private:
    sim::EventQueue &eq_;
    sim::Tick latency_;
};

struct GpuFixture : public ::testing::Test
{
    sim::EventQueue eq;
    gpu::GpuConfig cfg;
    tlb::TlbHierarchyConfig tlb_cfg;
    InstantIommu iommu{eq, 100 * 500};
    FixedMemory memory{eq, 50 * 500};
    std::unique_ptr<tlb::TlbHierarchy> tlbs;
    std::unique_ptr<gpu::Gpu> gpu;

    void
    build(unsigned num_cus = 2, unsigned wf_per_cu = 2)
    {
        cfg.numCus = num_cus;
        cfg.wavefrontsPerCu = wf_per_cu;
        tlb_cfg.numCus = num_cus;
        tlbs = std::make_unique<tlb::TlbHierarchy>(eq, tlb_cfg, iommu);
        std::vector<mem::MemoryDevice *> l1ds(num_cus, &memory);
        gpu = std::make_unique<gpu::Gpu>(eq, cfg, *tlbs, l1ds);
    }

    static gpu::SimdMemInstruction
    divergentLoad(Addr base, unsigned pages,
                  sim::Cycles compute = 10)
    {
        gpu::SimdMemInstruction instr;
        for (unsigned i = 0; i < pages; ++i)
            instr.laneAddrs.push_back(base + Addr(i) * mem::pageSize);
        instr.computeCycles = compute;
        return instr;
    }

    void
    run()
    {
        gpu->start();
        while (!gpu->done() && eq.runOne()) {
        }
    }
};

TEST_F(GpuFixture, SingleWavefrontRetiresItsTrace)
{
    build();
    gpu::GpuWorkload wl;
    wl.traces.push_back({divergentLoad(0x1000000, 4),
                         divergentLoad(0x2000000, 4)});
    gpu->loadWorkload(std::move(wl));
    run();
    EXPECT_TRUE(gpu->done());
    EXPECT_EQ(gpu->totalInstructions(), 2u);
    EXPECT_GT(gpu->finishTick(), 0u);
}

TEST_F(GpuFixture, LockstepBlocksUntilAllLinesReturn)
{
    build(1, 1);
    gpu::GpuWorkload wl;
    wl.traces.push_back({divergentLoad(0x1000000, 8)});
    gpu->loadWorkload(std::move(wl));
    run();
    // 8 pages -> 8 translations and 8 line fills.
    EXPECT_EQ(memory.accesses, 8u);
    // Completion strictly after translation + data latency.
    EXPECT_GT(gpu->finishTick(), 100u * 500u + 50u * 500u);
}

TEST_F(GpuFixture, EmptyInstructionStillRetires)
{
    build(1, 1);
    gpu::GpuWorkload wl;
    gpu::SimdMemInstruction empty;
    wl.traces.push_back({empty, divergentLoad(0x1000000, 1)});
    gpu->loadWorkload(std::move(wl));
    run();
    EXPECT_EQ(gpu->totalInstructions(), 2u);
}

TEST_F(GpuFixture, WavefrontsSpreadRoundRobinOverCus)
{
    build(2, 2);
    gpu::GpuWorkload wl;
    for (int i = 0; i < 4; ++i)
        wl.traces.push_back({divergentLoad(0x1000000 + i * 0x100000, 1)});
    gpu->loadWorkload(std::move(wl));
    EXPECT_EQ(gpu->cu(0).wavefrontsResident(), 2u);
    EXPECT_EQ(gpu->cu(1).wavefrontsResident(), 2u);
    run();
    EXPECT_TRUE(gpu->done());
}

TEST_F(GpuFixture, OversubscriptionRefillsSlots)
{
    build(2, 1); // 2 resident slots total
    gpu::GpuWorkload wl;
    for (int i = 0; i < 10; ++i)
        wl.traces.push_back({divergentLoad(0x1000000 + i * 0x100000, 2)});
    gpu->loadWorkload(std::move(wl));
    EXPECT_EQ(gpu->cu(0).wavefrontsResident(), 1u);
    run();
    EXPECT_TRUE(gpu->done());
    EXPECT_EQ(gpu->totalInstructions(), 10u);
}

TEST_F(GpuFixture, StallTicksAccumulateWhenAllWavefrontsBlock)
{
    build(1, 1);
    gpu::GpuWorkload wl;
    wl.traces.push_back({divergentLoad(0x1000000, 4, /*compute=*/1)});
    gpu->loadWorkload(std::move(wl));
    run();
    // A single wavefront waiting on memory stalls its whole CU for
    // nearly the entire run.
    EXPECT_GT(gpu->cu(0).stallTicks(), gpu->finishTick() / 2);
}

TEST_F(GpuFixture, ComputeHidesMemoryWhenParallelismIsHigh)
{
    build(1, 4);
    gpu::GpuWorkload wl;
    for (int i = 0; i < 4; ++i) {
        gpu::WavefrontTrace t;
        for (int k = 0; k < 4; ++k)
            t.push_back(divergentLoad(0x1000000 + (i * 4 + k) * 0x10000,
                                      1, /*compute=*/5000));
        wl.traces.push_back(std::move(t));
    }
    gpu->loadWorkload(std::move(wl));
    run();
    // Long compute phases overlap each other's memory: stalls are a
    // small fraction of runtime.
    EXPECT_LT(gpu->cu(0).stallTicks(), gpu->finishTick() / 2);
}

TEST_F(GpuFixture, InstructionIdsAreUniqueAndMonotonic)
{
    build();
    const auto a = gpu->nextInstructionId();
    const auto b = gpu->nextInstructionId();
    EXPECT_LT(a, b);
}

TEST_F(GpuFixture, StoresCountAsInstructions)
{
    build(1, 1);
    gpu::GpuWorkload wl;
    auto st = divergentLoad(0x1000000, 2);
    st.isLoad = false;
    wl.traces.push_back({st});
    gpu->loadWorkload(std::move(wl));
    run();
    EXPECT_EQ(gpu->totalInstructions(), 1u);
}


TEST_F(GpuFixture, OldestFirstArbitrationPrefersOlderWavefront)
{
    cfg.wavefrontSched = gpu::WavefrontSchedPolicy::OldestFirst;
    // Zero stagger so both wavefronts are ready in the same cycle.
    cfg.startStaggerCycles = 1;
    build(1, 2);
    gpu::GpuWorkload wl;
    wl.traces.push_back({divergentLoad(0x1000000, 1)});
    wl.traces.push_back({divergentLoad(0x2000000, 1)});
    gpu->loadWorkload(std::move(wl));
    run();
    EXPECT_TRUE(gpu->done());
    EXPECT_EQ(gpu->totalInstructions(), 2u);
}

TEST_F(GpuFixture, BothArbitrationPoliciesProduceSameWork)
{
    for (auto pol : {gpu::WavefrontSchedPolicy::RoundRobin,
                     gpu::WavefrontSchedPolicy::OldestFirst}) {
        cfg = gpu::GpuConfig{};
        cfg.wavefrontSched = pol;
        build(2, 2);
        gpu::GpuWorkload wl;
        for (int i = 0; i < 8; ++i)
            wl.traces.push_back(
                {divergentLoad(0x1000000 + i * 0x100000, 2),
                 divergentLoad(0x3000000 + i * 0x100000, 2)});
        gpu->loadWorkload(std::move(wl));
        run();
        EXPECT_EQ(gpu->totalInstructions(), 16u);
    }
}

} // namespace
