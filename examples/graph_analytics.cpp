/**
 * @file
 * Building a custom workload with the public API.
 *
 * The paper's motivation is irregular applications like graph
 * analytics: this example constructs a BFS-style frontier-expansion
 * workload by hand (instead of using the Table II registry), with a
 * tunable "community locality" knob, and shows how translation
 * overhead and the scheduler's benefit grow as locality shrinks.
 *
 * Usage: example_graph_analytics [vertices_mb] [edges_per_step]
 */

#include <cstdlib>
#include <iostream>

#include "sim/rng.hh"
#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"
#include "tlb/coalescer.hh"
#include "workload/patterns.hh"

using namespace gpuwalk;

namespace {

/**
 * Generates a BFS-ish workload over a CSR graph laid out in @p as.
 * Each SIMD instruction either streams edge indices (coalesced) or
 * gathers neighbour properties within a locality window (divergent in
 * proportion to @p window_elems).
 */
gpu::GpuWorkload
makeBfsWorkload(vm::AddressSpace &as, mem::Addr vertex_bytes,
                unsigned wavefronts, unsigned instructions,
                std::uint64_t window_elems, std::uint64_t seed)
{
    const auto edges = as.allocate("edges", vertex_bytes * 4);
    const auto props = as.allocate("properties", vertex_bytes);
    const std::uint64_t edge_elems = edges.bytes / 4;

    gpu::GpuWorkload wl;
    for (unsigned wf = 0; wf < wavefronts; ++wf) {
        sim::Rng rng(seed * 7919 + wf);
        gpu::WavefrontTrace trace;
        std::uint64_t pos = (edge_elems / wavefronts) * wf;
        while (trace.size() < instructions) {
            // Stream the frontier's edge list: coalesced.
            trace.push_back(workload::makeInstr(
                workload::sequentialLanes(
                    edges.base
                        + (pos % (edge_elems - gpu::wavefrontSize)) * 4,
                    4),
                true, workload::jitteredCompute(rng, 200)));
            pos += gpu::wavefrontSize;
            if (trace.size() >= instructions)
                break;
            // Gather neighbour properties: one page per lane when the
            // window exceeds the page size, coalesced when it's tiny.
            trace.push_back(workload::makeInstr(
                workload::windowedRandomLanes(
                    rng, props, 8, pos % (props.bytes / 8),
                    window_elems),
                true, workload::jitteredCompute(rng, 200)));
        }
        trace.resize(instructions);
        wl.traces.push_back(std::move(trace));
    }
    return wl;
}

double
runOnce(core::SchedulerKind kind, mem::Addr vertex_bytes,
        std::uint64_t window, sim::Tick *runtime = nullptr)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    system::System sys(cfg);
    auto wl = makeBfsWorkload(sys.addressSpace(), vertex_bytes,
                              /*wavefronts=*/128,
                              /*instructions=*/32, window, /*seed=*/11);
    sys.loadWorkload(std::move(wl));
    const auto stats = sys.run();
    if (runtime)
        *runtime = stats.runtimeTicks;
    return static_cast<double>(stats.walkRequests)
           / static_cast<double>(stats.instructions);
}

} // namespace

int
main(int argc, char **argv)
{
    const mem::Addr vertices_mb = argc > 1 ? std::atoi(argv[1]) : 64;
    const mem::Addr vertex_bytes = vertices_mb << 20;

    std::cout << "Graph analytics (BFS gather) on GPUWalk\n"
              << "----------------------------------------\n"
              << "property array: " << vertices_mb << " MB\n\n"
              << "locality window | walks/instr | FCFS->SIMT speedup\n"
              << "----------------+-------------+-------------------\n";

    for (std::uint64_t window : {512ull, 8192ull, 65536ull}) {
        sim::Tick fcfs_rt = 0, simt_rt = 0;
        const double walks = runOnce(core::SchedulerKind::Fcfs,
                                     vertex_bytes, window, &fcfs_rt);
        runOnce(core::SchedulerKind::SimtAware, vertex_bytes, window,
                &simt_rt);
        std::cout.width(15);
        std::cout << window << " |";
        std::cout.width(12);
        std::cout << exp::TablePrinter::fmt(walks, 2) << " |";
        std::cout.width(18);
        std::cout << exp::TablePrinter::fmt(
                         static_cast<double>(fcfs_rt)
                             / static_cast<double>(simt_rt))
                  << "\n";
    }

    std::cout << "\nAs the gather window grows past a page, each SIMD "
                 "instruction touches more distinct pages,\ntranslation "
                 "pressure rises, and smart walk scheduling starts to "
                 "pay — the paper's §I story.\n";
    return 0;
}
