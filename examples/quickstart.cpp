/**
 * @file
 * Quickstart: simulate one irregular benchmark (MVT) under the
 * baseline FCFS page-walk scheduler and the paper's SIMT-aware
 * scheduler, and report the speedup.
 *
 * Usage: example_quickstart [workload] [scale]
 *   workload  Table II abbreviation (default MVT)
 *   scale     footprint scale, 1.0 = paper size (default 0.25)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"
#include "workload/registry.hh"

using namespace gpuwalk;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "MVT";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    workload::WorkloadParams params = exp::experimentParams();
    params.footprintScale = scale;

    auto cfg = system::SystemConfig::baseline();

    std::cout << "GPUWalk quickstart\n"
              << "------------------\n"
              << "workload: " << workload << " (footprint scale "
              << scale << ")\n\n";

    std::cout << "running with FCFS page-walk scheduling...\n";
    const auto fcfs = exp::runOne(
        exp::withScheduler(cfg, core::SchedulerKind::Fcfs), workload,
        params);

    std::cout << "running with SIMT-aware page-walk scheduling...\n\n";
    const auto simt = exp::runOne(
        exp::withScheduler(cfg, core::SchedulerKind::SimtAware),
        workload, params);

    auto report = [](const char *name, const system::RunStats &s) {
        std::cout << name << ":\n"
                  << "  runtime           "
                  << s.runtimeTicks / 500 << " GPU cycles\n"
                  << "  CU stall          " << s.stallTicks / 500
                  << " GPU cycles (summed)\n"
                  << "  page walks        " << s.walkRequests << "\n"
                  << "  walk interleaving "
                  << s.walks.interleavedFraction * 100.0 << "% of "
                  << "multi-walk instructions\n";
    };
    report("FCFS", fcfs.stats);
    report("SIMT-aware", simt.stats);

    std::cout << "\nspeedup (SIMT-aware over FCFS): "
              << exp::speedup(simt.stats, fcfs.stats) << "x\n"
              << "(the paper reports ~1.3x average across its six "
                 "irregular workloads)\n";
    return 0;
}
