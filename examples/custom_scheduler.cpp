/**
 * @file
 * Plugging a user-defined page-walk scheduler into the system.
 *
 * The paper closes by noting the rich design space of walk scheduling
 * policies (akin to memory-controller scheduling). This example
 * implements one such follow-on idea — a CU-fairness scheduler that
 * round-robins service across compute units (a QoS-flavoured policy,
 * cf. the paper's §VI discussion) — and compares it against FCFS and
 * the paper's SIMT-aware scheduler on an irregular workload.
 */

#include <array>
#include <iostream>

#include "core/walk_scheduler.hh"
#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"

using namespace gpuwalk;

namespace {

/**
 * Round-robin across CUs; FCFS within a CU. Guarantees no compute
 * unit's walks starve behind another's bursts.
 */
class CuFairScheduler : public core::WalkScheduler
{
  public:
    std::string name() const override { return "cu-fair"; }

    std::size_t
    selectNext(const core::WalkBuffer &buffer) override
    {
        const auto &entries = buffer.entries();
        // Find, for the next CUs in round-robin order, the oldest
        // pending request; fall back to global FCFS if a CU is idle.
        for (unsigned probe = 0; probe < maxCus; ++probe) {
            const unsigned cu = (lastCu_ + 1 + probe) % maxCus;
            std::size_t best = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].request.cu != cu)
                    continue;
                if (best == entries.size()
                    || entries[i].seq < entries[best].seq) {
                    best = i;
                }
            }
            if (best != entries.size())
                return best;
        }
        return buffer.oldestIndex();
    }

    void
    onDispatch(core::WalkBuffer &buffer,
               const core::PendingWalk &walk) override
    {
        lastCu_ = walk.request.cu;
        WalkScheduler::onDispatch(buffer, walk);
    }

  private:
    static constexpr unsigned maxCus = 8;
    unsigned lastCu_ = 0;
};

double
timeWith(const std::string &label,
         std::function<std::unique_ptr<core::WalkScheduler>()> factory,
         core::SchedulerKind kind, bool use_factory)
{
    auto cfg = system::SystemConfig::baseline();
    if (use_factory)
        cfg.schedulerFactory = std::move(factory);
    else
        cfg.scheduler = kind;

    system::System sys(cfg);
    auto params = exp::experimentParams();
    params.footprintScale = 0.25; // keep the example snappy
    sys.loadBenchmark("ATX", params);
    const auto stats = sys.run();
    std::cout << "  " << label << ": "
              << stats.runtimeTicks / 500 << " GPU cycles, "
              << stats.walkRequests << " walks\n";
    return static_cast<double>(stats.runtimeTicks);
}

} // namespace

int
main()
{
    std::cout << "Custom walk-scheduler example (workload: ATX)\n"
              << "---------------------------------------------\n";

    const double fcfs =
        timeWith("fcfs      ", nullptr, core::SchedulerKind::Fcfs,
                 false);
    const double fair = timeWith(
        "cu-fair   ", [] { return std::make_unique<CuFairScheduler>(); },
        core::SchedulerKind::Fcfs, true);
    const double simt =
        timeWith("simt-aware", nullptr, core::SchedulerKind::SimtAware,
                 false);

    std::cout << "\nspeedup over FCFS:\n"
              << "  cu-fair:    "
              << exp::TablePrinter::fmt(fcfs / fair) << "\n"
              << "  simt-aware: "
              << exp::TablePrinter::fmt(fcfs / simt) << "\n"
              << "\nWrite your own core::WalkScheduler and set\n"
                 "SystemConfig::schedulerFactory to explore the design "
                 "space the paper opens.\n";
    return 0;
}
