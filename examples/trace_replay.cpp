/**
 * @file
 * Trace workflow: generate a benchmark's memory-instruction trace,
 * save it to disk, inspect it, and replay it through the simulator.
 *
 * The gpuwalk-trace v1 format is line-oriented text, so traces can
 * also be produced by external tools (binary instrumentation, other
 * simulators) and fed to GPUWalk's translation model.
 *
 * Usage: example_trace_replay [workload] [path]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

using namespace gpuwalk;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ATX";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/gpuwalk_example.gwt";

    workload::WorkloadParams params;
    params.wavefronts = 64;
    params.instructionsPerWavefront = 24;
    params.footprintScale = 0.2;

    std::cout << "1. generating " << name << " trace...\n";
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = core::SchedulerKind::SimtAware;
    system::System generator(cfg);
    auto gen = workload::makeWorkload(name);
    auto wl = gen->generate(generator.addressSpace(), params);

    std::cout << "2. saving to " << path << "...\n";
    workload::saveTraceFile(path, wl);

    std::cout << "3. inspecting...\n";
    const auto summary = workload::summarizeTrace(wl);
    std::cout << "   wavefronts        " << summary.wavefronts << "\n"
              << "   instructions      " << summary.instructions << "\n"
              << "   loads/stores      " << summary.loads << "/"
              << summary.stores << "\n"
              << "   avg active lanes  "
              << exp::TablePrinter::fmt(summary.avgActiveLanes, 1)
              << "\n"
              << "   avg unique pages  "
              << exp::TablePrinter::fmt(summary.avgUniquePages, 1)
              << " per instruction (memory divergence)\n";

    std::cout << "4. replaying through the simulator...\n";
    // The generator System already owns the matching address space
    // (the trace's virtual addresses are mapped there), so replay in
    // it. Replaying in a *fresh* System requires regenerating the
    // mappings first — the CLI's --load-trace handles that case.
    generator.loadWorkload(workload::loadTraceFile(path));
    const auto stats = generator.run();

    std::cout << "   runtime      " << stats.runtimeTicks / 500
              << " GPU cycles\n"
              << "   page walks   " << stats.walkRequests << "\n";

    std::remove(path.c_str());
    return 0;
}
