/**
 * @file
 * Multi-tenant GPU sharing: the QoS scenario the paper's conclusion
 * proposes as follow-on work.
 *
 * Co-schedules a translation-heavy irregular application (the
 * "aggressor") with a translation-light regular one (the "victim")
 * on one GPU, and reports each tenant's completion time under FCFS
 * and SIMT-aware walk scheduling, normalized to running alone.
 *
 * Usage: example_multi_tenant [aggressor] [victim]
 */

#include <iostream>
#include <string>

#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"

using namespace gpuwalk;

namespace {

workload::WorkloadParams
tenantParams()
{
    auto params = exp::experimentParams();
    params.wavefronts = 96;
    params.footprintScale = 0.25; // keep the example snappy
    return params;
}

sim::Tick
soloRuntime(core::SchedulerKind kind, const std::string &app)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    system::System sys(cfg);
    sys.loadBenchmark(app, tenantParams());
    return sys.run().runtimeTicks;
}

std::pair<sim::Tick, sim::Tick>
corunFinishTicks(core::SchedulerKind kind, const std::string &aggressor,
                 const std::string &victim)
{
    auto cfg = system::SystemConfig::baseline();
    cfg.scheduler = kind;
    system::System sys(cfg);
    sys.loadBenchmark(aggressor, tenantParams(), /*app_id=*/0);
    sys.loadBenchmark(victim, tenantParams(), /*app_id=*/1);
    const auto stats = sys.run();
    return {stats.appFinishTicks.at(0), stats.appFinishTicks.at(1)};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string aggressor = argc > 1 ? argv[1] : "MVT";
    const std::string victim = argc > 2 ? argv[2] : "HOT";

    std::cout << "Multi-tenant GPU: " << aggressor
              << " (translation-heavy) + " << victim
              << " (translation-light)\n"
              << "---------------------------------------------------"
              << "\n";

    const auto aggr_solo =
        soloRuntime(core::SchedulerKind::Fcfs, aggressor);
    const auto victim_solo =
        soloRuntime(core::SchedulerKind::Fcfs, victim);

    for (auto kind : {core::SchedulerKind::Fcfs,
                      core::SchedulerKind::SimtAware}) {
        const auto [aggr, vict] =
            corunFinishTicks(kind, aggressor, victim);
        std::cout << core::toString(kind) << ":\n"
                  << "  " << victim << " slowdown vs solo: "
                  << exp::TablePrinter::fmt(
                         static_cast<double>(vict)
                             / static_cast<double>(victim_solo),
                         2)
                  << "x\n"
                  << "  " << aggressor << " slowdown vs solo: "
                  << exp::TablePrinter::fmt(
                         static_cast<double>(aggr)
                             / static_cast<double>(aggr_solo),
                         2)
                  << "x\n";
    }

    std::cout << "\nThe victim's few page walks are always the "
                 "shortest jobs, so SIMT-aware scheduling\nshields it "
                 "from the aggressor's walk floods without an explicit "
                 "QoS mechanism —\nthe direction the paper's "
                 "conclusion points follow-on work toward.\n";
    return 0;
}
