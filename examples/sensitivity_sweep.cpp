/**
 * @file
 * Sweeping a hardware parameter with the experiment API.
 *
 * Reproduces the spirit of the paper's §V-B2 sensitivity analysis as
 * a user-driven sweep: how does the SIMT-aware scheduler's benefit
 * change with the number of IOMMU page table walkers?
 *
 * Usage: example_sensitivity_sweep [workload] (default MVT)
 */

#include <iostream>

#include "exp/metrics.hh"
#include "exp/run.hh"
#include "exp/table.hh"

using namespace gpuwalk;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "MVT";

    std::cout << "Walker-count sensitivity sweep (" << workload
              << ")\n"
              << "----------------------------------------\n"
              << "walkers | FCFS cycles | SIMT cycles | speedup\n"
              << "--------+-------------+-------------+--------\n";

    auto params = exp::experimentParams();
    params.footprintScale = 0.25; // keep the example snappy

    for (unsigned walkers : {2u, 4u, 8u, 16u, 32u}) {
        auto cfg = system::SystemConfig::baseline();
        cfg.iommu.numWalkers = walkers;

        const auto fcfs =
            exp::runOne(exp::withScheduler(
                               cfg, core::SchedulerKind::Fcfs),
                           workload, params)
                .stats;
        const auto simt =
            exp::runOne(exp::withScheduler(
                               cfg, core::SchedulerKind::SimtAware),
                           workload, params)
                .stats;

        std::cout.width(7);
        std::cout << walkers << " |";
        std::cout.width(12);
        std::cout << fcfs.runtimeTicks / 500 << " |";
        std::cout.width(12);
        std::cout << simt.runtimeTicks / 500 << " |";
        std::cout.width(8);
        std::cout << exp::TablePrinter::fmt(
                         exp::speedup(simt, fcfs))
                  << "\n";
    }

    std::cout << "\nThe paper's Fig. 13: more walkers shrink the "
                 "scheduling headroom (30% -> 8.4% at 16 walkers)\n"
                 "because the effective translation bandwidth grows; "
                 "the same downward trend should show above.\n";
    return 0;
}
