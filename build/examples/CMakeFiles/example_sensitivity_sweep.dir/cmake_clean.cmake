file(REMOVE_RECURSE
  "CMakeFiles/example_sensitivity_sweep.dir/sensitivity_sweep.cpp.o"
  "CMakeFiles/example_sensitivity_sweep.dir/sensitivity_sweep.cpp.o.d"
  "example_sensitivity_sweep"
  "example_sensitivity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensitivity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
