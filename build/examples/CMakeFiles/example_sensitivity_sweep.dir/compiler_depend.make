# Empty compiler generated dependencies file for example_sensitivity_sweep.
# This may be replaced when dependencies are built.
