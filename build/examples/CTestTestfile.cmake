# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_smoke "/root/repo/build/examples/example_quickstart" "KMN" "0.02")
set_tests_properties(example_quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensitivity_smoke "/root/repo/build/examples/example_sensitivity_sweep" "HOT")
set_tests_properties(example_sensitivity_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay_smoke "/root/repo/build/examples/example_trace_replay" "CLR" "example_trace_test.gwt")
set_tests_properties(example_trace_replay_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
