file(REMOVE_RECURSE
  "libgpuwalk_workload.a"
)
