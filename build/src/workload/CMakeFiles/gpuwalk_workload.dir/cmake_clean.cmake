file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_workload.dir/nw.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/nw.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/pannotia.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/pannotia.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/patterns.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/patterns.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/polybench.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/polybench.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/registry.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/registry.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/rodinia.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/rodinia.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/trace_io.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/gpuwalk_workload.dir/xsbench.cc.o"
  "CMakeFiles/gpuwalk_workload.dir/xsbench.cc.o.d"
  "libgpuwalk_workload.a"
  "libgpuwalk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
