
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/nw.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/nw.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/nw.cc.o.d"
  "/root/repo/src/workload/pannotia.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/pannotia.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/pannotia.cc.o.d"
  "/root/repo/src/workload/patterns.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/patterns.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/patterns.cc.o.d"
  "/root/repo/src/workload/polybench.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/polybench.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/polybench.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/registry.cc.o.d"
  "/root/repo/src/workload/rodinia.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/rodinia.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/rodinia.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/trace_io.cc.o.d"
  "/root/repo/src/workload/xsbench.cc" "src/workload/CMakeFiles/gpuwalk_workload.dir/xsbench.cc.o" "gcc" "src/workload/CMakeFiles/gpuwalk_workload.dir/xsbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/gpuwalk_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gpuwalk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
