# Empty compiler generated dependencies file for gpuwalk_workload.
# This may be replaced when dependencies are built.
