file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_sim.dir/debug.cc.o"
  "CMakeFiles/gpuwalk_sim.dir/debug.cc.o.d"
  "CMakeFiles/gpuwalk_sim.dir/logging.cc.o"
  "CMakeFiles/gpuwalk_sim.dir/logging.cc.o.d"
  "CMakeFiles/gpuwalk_sim.dir/stats.cc.o"
  "CMakeFiles/gpuwalk_sim.dir/stats.cc.o.d"
  "libgpuwalk_sim.a"
  "libgpuwalk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
