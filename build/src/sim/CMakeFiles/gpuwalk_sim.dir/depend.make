# Empty dependencies file for gpuwalk_sim.
# This may be replaced when dependencies are built.
