file(REMOVE_RECURSE
  "libgpuwalk_sim.a"
)
