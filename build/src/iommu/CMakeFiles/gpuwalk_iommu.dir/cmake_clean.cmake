file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_iommu.dir/iommu.cc.o"
  "CMakeFiles/gpuwalk_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/gpuwalk_iommu.dir/page_table_walker.cc.o"
  "CMakeFiles/gpuwalk_iommu.dir/page_table_walker.cc.o.d"
  "CMakeFiles/gpuwalk_iommu.dir/page_walk_cache.cc.o"
  "CMakeFiles/gpuwalk_iommu.dir/page_walk_cache.cc.o.d"
  "CMakeFiles/gpuwalk_iommu.dir/walk_metrics.cc.o"
  "CMakeFiles/gpuwalk_iommu.dir/walk_metrics.cc.o.d"
  "libgpuwalk_iommu.a"
  "libgpuwalk_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
