
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iommu/iommu.cc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/iommu.cc.o" "gcc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/iommu.cc.o.d"
  "/root/repo/src/iommu/page_table_walker.cc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/page_table_walker.cc.o" "gcc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/page_table_walker.cc.o.d"
  "/root/repo/src/iommu/page_walk_cache.cc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/page_walk_cache.cc.o" "gcc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/page_walk_cache.cc.o.d"
  "/root/repo/src/iommu/walk_metrics.cc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/walk_metrics.cc.o" "gcc" "src/iommu/CMakeFiles/gpuwalk_iommu.dir/walk_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpuwalk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gpuwalk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
