# Empty compiler generated dependencies file for gpuwalk_iommu.
# This may be replaced when dependencies are built.
