file(REMOVE_RECURSE
  "libgpuwalk_iommu.a"
)
