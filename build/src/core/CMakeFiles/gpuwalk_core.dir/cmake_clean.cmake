file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_core.dir/scheduler_factory.cc.o"
  "CMakeFiles/gpuwalk_core.dir/scheduler_factory.cc.o.d"
  "CMakeFiles/gpuwalk_core.dir/simt_aware_scheduler.cc.o"
  "CMakeFiles/gpuwalk_core.dir/simt_aware_scheduler.cc.o.d"
  "libgpuwalk_core.a"
  "libgpuwalk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
