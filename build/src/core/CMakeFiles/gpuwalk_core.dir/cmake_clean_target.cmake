file(REMOVE_RECURSE
  "libgpuwalk_core.a"
)
