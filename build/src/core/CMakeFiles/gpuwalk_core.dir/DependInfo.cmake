
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/scheduler_factory.cc" "src/core/CMakeFiles/gpuwalk_core.dir/scheduler_factory.cc.o" "gcc" "src/core/CMakeFiles/gpuwalk_core.dir/scheduler_factory.cc.o.d"
  "/root/repo/src/core/simt_aware_scheduler.cc" "src/core/CMakeFiles/gpuwalk_core.dir/simt_aware_scheduler.cc.o" "gcc" "src/core/CMakeFiles/gpuwalk_core.dir/simt_aware_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
