# Empty compiler generated dependencies file for gpuwalk_core.
# This may be replaced when dependencies are built.
