file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_gpu.dir/compute_unit.cc.o"
  "CMakeFiles/gpuwalk_gpu.dir/compute_unit.cc.o.d"
  "CMakeFiles/gpuwalk_gpu.dir/gpu.cc.o"
  "CMakeFiles/gpuwalk_gpu.dir/gpu.cc.o.d"
  "libgpuwalk_gpu.a"
  "libgpuwalk_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
