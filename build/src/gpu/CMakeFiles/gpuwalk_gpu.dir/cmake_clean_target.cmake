file(REMOVE_RECURSE
  "libgpuwalk_gpu.a"
)
