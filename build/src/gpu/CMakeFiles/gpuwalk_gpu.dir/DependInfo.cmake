
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/compute_unit.cc" "src/gpu/CMakeFiles/gpuwalk_gpu.dir/compute_unit.cc.o" "gcc" "src/gpu/CMakeFiles/gpuwalk_gpu.dir/compute_unit.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/gpu/CMakeFiles/gpuwalk_gpu.dir/gpu.cc.o" "gcc" "src/gpu/CMakeFiles/gpuwalk_gpu.dir/gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
