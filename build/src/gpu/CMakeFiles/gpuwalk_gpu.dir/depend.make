# Empty dependencies file for gpuwalk_gpu.
# This may be replaced when dependencies are built.
