file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_tlb.dir/coalescer.cc.o"
  "CMakeFiles/gpuwalk_tlb.dir/coalescer.cc.o.d"
  "CMakeFiles/gpuwalk_tlb.dir/set_assoc_tlb.cc.o"
  "CMakeFiles/gpuwalk_tlb.dir/set_assoc_tlb.cc.o.d"
  "CMakeFiles/gpuwalk_tlb.dir/tlb_hierarchy.cc.o"
  "CMakeFiles/gpuwalk_tlb.dir/tlb_hierarchy.cc.o.d"
  "libgpuwalk_tlb.a"
  "libgpuwalk_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
