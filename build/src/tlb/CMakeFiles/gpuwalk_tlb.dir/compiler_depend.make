# Empty compiler generated dependencies file for gpuwalk_tlb.
# This may be replaced when dependencies are built.
