file(REMOVE_RECURSE
  "libgpuwalk_tlb.a"
)
