
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/coalescer.cc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/coalescer.cc.o" "gcc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/coalescer.cc.o.d"
  "/root/repo/src/tlb/set_assoc_tlb.cc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/set_assoc_tlb.cc.o" "gcc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/set_assoc_tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/tlb_hierarchy.cc.o" "gcc" "src/tlb/CMakeFiles/gpuwalk_tlb.dir/tlb_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
