file(REMOVE_RECURSE
  "libgpuwalk_system.a"
)
