# Empty dependencies file for gpuwalk_system.
# This may be replaced when dependencies are built.
