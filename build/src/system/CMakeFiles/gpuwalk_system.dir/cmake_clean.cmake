file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_system.dir/experiment.cc.o"
  "CMakeFiles/gpuwalk_system.dir/experiment.cc.o.d"
  "CMakeFiles/gpuwalk_system.dir/system.cc.o"
  "CMakeFiles/gpuwalk_system.dir/system.cc.o.d"
  "CMakeFiles/gpuwalk_system.dir/system_config.cc.o"
  "CMakeFiles/gpuwalk_system.dir/system_config.cc.o.d"
  "libgpuwalk_system.a"
  "libgpuwalk_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
