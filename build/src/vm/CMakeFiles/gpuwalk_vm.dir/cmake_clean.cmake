file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_vm.dir/page_table.cc.o"
  "CMakeFiles/gpuwalk_vm.dir/page_table.cc.o.d"
  "libgpuwalk_vm.a"
  "libgpuwalk_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
