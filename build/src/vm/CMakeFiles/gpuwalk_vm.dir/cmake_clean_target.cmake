file(REMOVE_RECURSE
  "libgpuwalk_vm.a"
)
