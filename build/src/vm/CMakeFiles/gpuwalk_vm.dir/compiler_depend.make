# Empty compiler generated dependencies file for gpuwalk_vm.
# This may be replaced when dependencies are built.
