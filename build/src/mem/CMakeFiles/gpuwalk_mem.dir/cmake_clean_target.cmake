file(REMOVE_RECURSE
  "libgpuwalk_mem.a"
)
