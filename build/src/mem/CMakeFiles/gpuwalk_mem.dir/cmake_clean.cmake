file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk_mem.dir/cache.cc.o"
  "CMakeFiles/gpuwalk_mem.dir/cache.cc.o.d"
  "CMakeFiles/gpuwalk_mem.dir/dram_controller.cc.o"
  "CMakeFiles/gpuwalk_mem.dir/dram_controller.cc.o.d"
  "libgpuwalk_mem.a"
  "libgpuwalk_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
