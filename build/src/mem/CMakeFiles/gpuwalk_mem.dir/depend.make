# Empty dependencies file for gpuwalk_mem.
# This may be replaced when dependencies are built.
