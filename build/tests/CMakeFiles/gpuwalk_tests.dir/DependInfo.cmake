
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_space.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_address_space.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_address_space.cc.o.d"
  "/root/repo/tests/test_backing_store.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_backing_store.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_backing_store.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_debug.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_debug.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_debug.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extra_schedulers.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_extra_schedulers.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_extra_schedulers.cc.o.d"
  "/root/repo/tests/test_fair_share.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_fair_share.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_fair_share.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_gpu.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_gpu.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_gpu.cc.o.d"
  "/root/repo/tests/test_iommu.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_iommu.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_iommu.cc.o.d"
  "/root/repo/tests/test_large_pages.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_large_pages.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_large_pages.cc.o.d"
  "/root/repo/tests/test_multiprogram.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_multiprogram.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_multiprogram.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_page_table_walker.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_table_walker.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_table_walker.cc.o.d"
  "/root/repo/tests/test_page_walk_cache.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_walk_cache.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_page_walk_cache.cc.o.d"
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_patterns.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rate_limiter.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_rate_limiter.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_rate_limiter.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_scheduler_fuzz.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_scheduler_fuzz.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_scheduler_fuzz.cc.o.d"
  "/root/repo/tests/test_schedulers.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_schedulers.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_schedulers.cc.o.d"
  "/root/repo/tests/test_set_assoc_tlb.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_set_assoc_tlb.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_set_assoc_tlb.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stats_json.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_stats_json.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_stats_json.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_ticks.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_ticks.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_ticks.cc.o.d"
  "/root/repo/tests/test_tlb_hierarchy.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_tlb_hierarchy.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_tlb_hierarchy.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_virtual_cache.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_virtual_cache.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_virtual_cache.cc.o.d"
  "/root/repo/tests/test_walk_buffer.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_walk_buffer.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_walk_buffer.cc.o.d"
  "/root/repo/tests/test_walk_metrics.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_walk_metrics.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_walk_metrics.cc.o.d"
  "/root/repo/tests/test_workload_structure.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_workload_structure.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_workload_structure.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/gpuwalk_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/gpuwalk_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/gpuwalk_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpuwalk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpuwalk_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/gpuwalk_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpuwalk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gpuwalk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
