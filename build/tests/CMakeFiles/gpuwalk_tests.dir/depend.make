# Empty dependencies file for gpuwalk_tests.
# This may be replaced when dependencies are built.
