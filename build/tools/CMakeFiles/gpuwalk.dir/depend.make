# Empty dependencies file for gpuwalk.
# This may be replaced when dependencies are built.
