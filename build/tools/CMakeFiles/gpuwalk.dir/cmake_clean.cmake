file(REMOVE_RECURSE
  "CMakeFiles/gpuwalk.dir/gpuwalk_cli.cc.o"
  "CMakeFiles/gpuwalk.dir/gpuwalk_cli.cc.o.d"
  "gpuwalk"
  "gpuwalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
