# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/gpuwalk" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_workloads "/root/repo/build/tools/gpuwalk" "--list-workloads")
set_tests_properties(cli_list_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_small "/root/repo/build/tools/gpuwalk" "--workload=KMN" "--wavefronts=8" "--instructions=4" "--footprint-scale=0.02")
set_tests_properties(cli_run_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare_small "/root/repo/build/tools/gpuwalk" "--workload=MVT" "--compare" "--wavefronts=8" "--instructions=4" "--footprint-scale=0.02" "--quiet")
set_tests_properties(cli_compare_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_large_pages "/root/repo/build/tools/gpuwalk" "--workload=ATX" "--large-pages" "--wavefronts=8" "--instructions=4" "--footprint-scale=0.05")
set_tests_properties(cli_large_pages PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_virtual_l1 "/root/repo/build/tools/gpuwalk" "--workload=BIC" "--virtual-l1" "--wavefronts=8" "--instructions=4" "--footprint-scale=0.05")
set_tests_properties(cli_virtual_l1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_prefetch "/root/repo/build/tools/gpuwalk" "--workload=BCK" "--prefetch" "--wavefronts=8" "--instructions=4" "--footprint-scale=0.05")
set_tests_properties(cli_prefetch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "sh" "-c" "/root/repo/build/tools/gpuwalk --workload=HOT --wavefronts=8               --instructions=4 --footprint-scale=0.02               --save-trace=cli_test.gwt --quiet           && /root/repo/build/tools/gpuwalk --load-trace=cli_test.gwt           && rm cli_test.gwt")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_json_stats "sh" "-c" "/root/repo/build/tools/gpuwalk --workload=CLR --wavefronts=8               --instructions=4 --footprint-scale=0.02               --json=cli_test.json --quiet           && grep -q '\"iommu\"' cli_test.json && rm cli_test.json")
set_tests_properties(cli_json_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/tools/gpuwalk" "--no-such-flag")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
