# Empty dependencies file for bench_ablation_virtual_cache.
# This may be replaced when dependencies are built.
