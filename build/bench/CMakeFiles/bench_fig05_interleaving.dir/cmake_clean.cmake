file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_interleaving.dir/bench_fig05_interleaving.cc.o"
  "CMakeFiles/bench_fig05_interleaving.dir/bench_fig05_interleaving.cc.o.d"
  "bench_fig05_interleaving"
  "bench_fig05_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
