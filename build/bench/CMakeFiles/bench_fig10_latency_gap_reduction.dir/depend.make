# Empty dependencies file for bench_fig10_latency_gap_reduction.
# This may be replaced when dependencies are built.
