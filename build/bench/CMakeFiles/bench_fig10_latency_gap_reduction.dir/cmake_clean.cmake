file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latency_gap_reduction.dir/bench_fig10_latency_gap_reduction.cc.o"
  "CMakeFiles/bench_fig10_latency_gap_reduction.dir/bench_fig10_latency_gap_reduction.cc.o.d"
  "bench_fig10_latency_gap_reduction"
  "bench_fig10_latency_gap_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latency_gap_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
