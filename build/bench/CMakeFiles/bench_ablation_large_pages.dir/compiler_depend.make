# Empty compiler generated dependencies file for bench_ablation_large_pages.
# This may be replaced when dependencies are built.
