file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_stalls.dir/bench_fig09_stalls.cc.o"
  "CMakeFiles/bench_fig09_stalls.dir/bench_fig09_stalls.cc.o.d"
  "bench_fig09_stalls"
  "bench_fig09_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
