# Empty compiler generated dependencies file for bench_fig09_stalls.
# This may be replaced when dependencies are built.
