# Empty dependencies file for bench_fig03_work_distribution.
# This may be replaced when dependencies are built.
