# Empty compiler generated dependencies file for bench_fig02_scheduler_impact.
# This may be replaced when dependencies are built.
