# Empty dependencies file for bench_ablation_multiprogram.
# This may be replaced when dependencies are built.
