file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiprogram.dir/bench_ablation_multiprogram.cc.o"
  "CMakeFiles/bench_ablation_multiprogram.dir/bench_ablation_multiprogram.cc.o.d"
  "bench_ablation_multiprogram"
  "bench_ablation_multiprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
