file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_active_wavefronts.dir/bench_fig12_active_wavefronts.cc.o"
  "CMakeFiles/bench_fig12_active_wavefronts.dir/bench_fig12_active_wavefronts.cc.o.d"
  "bench_fig12_active_wavefronts"
  "bench_fig12_active_wavefronts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_active_wavefronts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
