
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_active_wavefronts.cc" "bench/CMakeFiles/bench_fig12_active_wavefronts.dir/bench_fig12_active_wavefronts.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_active_wavefronts.dir/bench_fig12_active_wavefronts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/gpuwalk_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gpuwalk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpuwalk_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/gpuwalk_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpuwalk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/gpuwalk_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gpuwalk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpuwalk_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuwalk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
