# Empty compiler generated dependencies file for bench_fig12_active_wavefronts.
# This may be replaced when dependencies are built.
