# Empty dependencies file for bench_fig11_walk_reduction.
# This may be replaced when dependencies are built.
