#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then
# smoke one bench through the parallel runner and sanity-check its
# structured JSON output.
# Usage: scripts/check.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$BUILD" --output-on-failure -j \
    "$(nproc 2>/dev/null || echo 4)"

# Smoke sweep: one figure bench on the thread pool with JSON output.
SMOKE_JSON=/tmp/out.json
rm -f "$SMOKE_JSON"
"$BUILD"/bench/bench_fig02_scheduler_impact --jobs 2 \
    --json "$SMOKE_JSON"

# JSON sanity: well-formed, schema v1, runs present, jobs as requested.
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1, doc.get("schema_version")
assert doc["jobs"] == 2, doc["jobs"]
assert doc["runs"], "no runs in JSON"
assert doc["wall_seconds"] > 0
for run in doc["runs"]:
    assert run["workload"] and run["scheduler"]
    assert run["stats"]["runtime_ticks"] > 0
    assert run["wall_seconds"] > 0
assert doc["config_fingerprint"]
print("JSON sanity ok:", len(doc["runs"]), "runs,",
      "fingerprint", doc["config_fingerprint"],
      "git", doc["git_sha"])
EOF

echo "check.sh: all green"
