#!/bin/sh
# Regenerates every artifact: build, tests, all table/figure benches.
# Usage: scripts/run_all.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

for b in "$BUILD"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "##### $(basename "$b") #####"
        "$b"
    fi
done 2>&1 | tee "$ROOT/bench_output.txt"
