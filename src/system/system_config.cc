#include "system/system_config.hh"

#include "gpu/instruction.hh"

namespace gpuwalk::system {

void
SystemConfig::print(std::ostream &os) const
{
    os << "GPU            " << (1'000'000 / gpu.clockPeriod / 1000.0)
       << " GHz, " << gpu.numCus << " CUs, " << gpu.simdPerCu
       << " SIMD per CU\n"
       << "               " << gpu.simdWidth << " SIMD width, "
       << gpuwalk::gpu::wavefrontSize << " threads per wavefront, "
       << gpu.wavefrontsPerCu << " wavefronts per CU\n"
       << "L1 Data Cache  " << l1d.sizeBytes / 1024 << "KB, "
       << l1d.associativity << "-way, " << l1d.lineBytes << "B block\n"
       << "L2 Data Cache  " << l2d.sizeBytes / (1024 * 1024) << "MB, "
       << l2d.associativity << "-way, " << l2d.lineBytes << "B block\n"
       << "L1 TLB         " << gpuTlb.l1Entries
       << " entries, fully-associative (per CU)\n"
       << "L2 TLB         " << gpuTlb.l2Entries << " entries, "
       << gpuTlb.l2Associativity << "-way set associative (shared)\n"
       << "IOMMU          " << iommu.bufferEntries << " buffer entries, "
       << iommu.numWalkers << " page table walkers\n"
       << "               " << iommu.l1TlbEntries << "/"
       << iommu.l2TlbEntries << " entries for IOMMU L1/L2 TLB\n"
       << "               " << core::toString(scheduler)
       << " scheduling of page walks\n";
    // QoS knobs print only when a QoS policy reads them, so the config
    // fingerprints of every pre-existing scheduler stay unchanged.
    if (scheduler == core::SchedulerKind::TokenBucket) {
        os << "QoS            token bucket: " << qos.tokenQuota
           << " tokens per tenant per " << qos.tokenWindow
           << "-dispatch window\n";
    } else if (scheduler == core::SchedulerKind::WeightedShare) {
        os << "QoS            weighted share:";
        if (qos.shareWeights.empty()) {
            os << " equal weights";
        } else {
            for (auto w : qos.shareWeights)
                os << ' ' << w;
        }
        os << "\n";
    }
    // GMMU knobs print only under demand paging, so fully resident
    // configurations keep their pre-GMMU fingerprints.
    if (gmmu.enabled) {
        os << "GMMU           oversubscription " << gmmu.oversubscription
           << ", " << vm::toString(gmmu.order) << " fault servicing, "
           << vm::toString(gmmu.evict) << " eviction\n"
           << "               fault latency " << gmmu.faultLatency
           << " ticks, migration " << gmmu.migrationLatency
           << " ticks, batch " << gmmu.batchSize
           << (gmmu.contiguity ? ", contiguity-aware allocation" : "")
           << "\n";
    }
    // Prefetch knobs print only when a policy is on, so --prefetch=off
    // configurations keep their pre-prefetcher fingerprints.
    if (iommu.prefetch.kind != iommu::PrefetchKind::Off) {
        os << "Prefetch       " << iommu::toString(iommu.prefetch.kind)
           << " translation prefetch, degree "
           << iommu.prefetch.degree;
        if (iommu.prefetch.kind == iommu::PrefetchKind::Spp) {
            os << ", " << iommu.prefetch.sppSignatureBits
               << "-bit signatures, " << iommu.prefetch.sppPatternEntries
               << " pattern entries, confidence "
               << iommu.prefetch.sppConfidenceThreshold;
        }
        os << "\n";
    }
    // Wasp knobs print only under --wavefront-sched=wasp, so rr/gto
    // configurations keep their pre-Wasp fingerprints.
    if (gpu.wavefrontSched == gpu::WavefrontSchedPolicy::Wasp) {
        os << "Wasp           " << gpu.waspLeaders
           << " leader slot(s) per CU, " << gpu.waspDistanceCycles
           << "-cycle issue-distance lead\n";
    }
    // Speculative-admission knobs print only away from the default
    // idle policy, for the same fingerprint-stability reason.
    if (iommu.specAdmission != iommu::SpecAdmission::Idle) {
        os << "SpecAdmit      " << iommu::toString(iommu.specAdmission);
        if (iommu.specAdmission == iommu::SpecAdmission::Reserved) {
            os << ": " << iommu.specReservedWalkers
               << " reserved walker(s)";
        } else {
            os << ": " << iommu.specBudgetTokens << " tokens per "
               << iommu.specBudgetWindow << "-dispatch window";
        }
        os << "\n";
    }
    os << "PWC            " << iommu.pwc.entriesPerLevel
       << " entries/level, " << iommu.pwc.associativity << "-way"
       << (iommu.pwc.pinScoredEntries ? ", counter-pinned replacement"
                                      : "")
       << "\n"
       << "DRAM           DDR3-1600 (" << 1'000'000 / dram.tCK
       << " MHz), " << dram.channels << " channels\n"
       << "               " << dram.banksPerRank << " banks per rank, "
       << dram.ranksPerChannel << " ranks per channel\n";
}

} // namespace gpuwalk::system
