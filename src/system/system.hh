/**
 * @file
 * The full simulated system (Figure 1 of the paper): GPU compute
 * units behind a TLB hierarchy and data caches, the IOMMU with its
 * scheduler/walkers/PWCs, a shared x86-64 page table in functional
 * memory, and the DDR3 memory system that both the data path and the
 * walk path contend for.
 */

#ifndef GPUWALK_SYSTEM_SYSTEM_HH
#define GPUWALK_SYSTEM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "gpu/gpu.hh"
#include "iommu/iommu.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/channel_port.hh"
#include "mem/dram_controller.hh"
#include "sim/audit.hh"
#include "sim/domain.hh"
#include "sim/event_queue.hh"
#include "sim/port.hh"
#include "system/system_config.hh"
#include "tlb/channel_port.hh"
#include "tlb/tlb_hierarchy.hh"
#include "tlb/translating_port.hh"
#include "trace/trace.hh"
#include "vm/address_space.hh"
#include "vm/frame_allocator.hh"
#include "vm/gmmu.hh"
#include "workload/workload.hh"

namespace gpuwalk::system {

/** Everything a run produces, for the experiment harnesses. */
struct RunStats
{
    sim::Tick runtimeTicks = 0;    ///< kernel runtime
    sim::Tick stallTicks = 0;      ///< summed CU stall time (Fig. 9)
    std::uint64_t instructions = 0;
    /** Per-app completion ticks for multi-program runs. */
    std::vector<sim::Tick> appFinishTicks;
    /** Simulation events executed by the run's event queue — with a
     *  wall-clock measurement this yields events/sec, the headline
     *  metric of the calendar-queue core (BENCH_eventcore.json). */
    std::uint64_t eventsExecuted = 0;
    std::uint64_t translationRequests = 0; ///< reaching the IOMMU
    std::uint64_t walkRequests = 0;        ///< page walks (Fig. 11)
    std::uint64_t walksCompleted = 0;
    double avgWavefrontsPerEpoch = 0;      ///< Fig. 12 metric
    iommu::WalkMetricsSummary walks;       ///< Figs. 3/5/6/10

    /** Queue-wait / walker-service / per-level latency breakdown. */
    iommu::LatencyBreakdownSummary latency;

    /** True when walk-lifecycle tracing was enabled for the run. */
    bool traced = false;

    /** FNV-1a digest of the retained trace (0 when not traced). */
    std::uint64_t traceDigest = 0;

    /** Trace events recorded / dropped by the bounded ring. */
    std::uint64_t traceEvents = 0;
    std::uint64_t traceDropped = 0;

    /** True when conservation auditing was enabled for the run. */
    bool audited = false;

    /** Invariant evaluations performed (periodic + final). */
    std::uint64_t auditChecks = 0;

    /** Total invariant violations recorded (0 for a clean run). */
    std::uint64_t auditViolations = 0;

    /** The recorded violations (bounded; see sim::Auditor). */
    std::vector<sim::AuditViolation> auditFindings;

    /** Per-tenant walk-path accounting for multi-tenant runs. */
    struct TenantStats
    {
        std::uint16_t ctx = 0;            ///< tlb::ContextId
        std::uint64_t walkRequests = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t dispatches = 0;     ///< scheduler-mediated picks
        std::uint64_t queueWaitTicks = 0;
        std::uint64_t serviceTicks = 0;   ///< cumulative walker service
        sim::Tick finishTick = 0;         ///< last bound app's finish
    };

    /**
     * One entry per active address space, populated only when the run
     * had more than one context — single-tenant stats stay bit- and
     * byte-identical to the pre-ASID simulator.
     */
    std::vector<TenantStats> tenants;

    /** Demand-paging accounting; gmmu.enabled is false for fully
     *  resident runs (their stats stay byte-identical). */
    vm::GmmuSummary gmmu;

    /** Translation-prefetcher accounting; prefetch.enabled is false
     *  when --prefetch=off (those stats stay byte-identical). */
    iommu::PrefetchSummary prefetch;

    /** Speculative walk-class accounting; all-zero unless Wasp or a
     *  non-idle --spec-admission put walks in the class. */
    iommu::SpecSummary spec;

    /** Memory instructions issued by Wasp leader slots (0 off-Wasp). */
    std::uint64_t leaderIssues = 0;
};

/** Owns and wires every component; one System per simulation run. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Generates @p workload_abbrev's trace and loads it on the GPU.
     * Multi-program runs pass distinct @p app_id values; all apps
     * share the address space (disjoint regions), the TLBs, and the
     * IOMMU — the contention scenario of the paper's QoS discussion.
     */
    void loadBenchmark(const std::string &workload_abbrev,
                       const workload::WorkloadParams &params,
                       unsigned app_id = 0);

    /** Loads a caller-built workload (examples / tests). */
    void loadWorkload(gpu::GpuWorkload workload, unsigned app_id = 0);

    /**
     * Creates a further address space (tenant) with its own page table
     * over the shared backing store and frame allocator, registers its
     * walk root with the IOMMU, and returns its ContextId. Same VA
     * layout as the default space — tenants genuinely collide on
     * virtual addresses, which is what the ASID isolation must absorb.
     * Incompatible with virtually-indexed L1 caches (those translate
     * below the cache, where the owning context is unknown).
     */
    tlb::ContextId createContext();

    /** The address space of @p ctx (0 = the default space). */
    vm::AddressSpace &addressSpaceOf(tlb::ContextId ctx);

    /**
     * Generates @p workload_abbrev in tenant @p ctx's address space,
     * binds @p app_id's translations to that context, and loads it —
     * immediately, or at @p arrival_tick when nonzero (tenant-churn
     * arrivals).
     */
    void loadBenchmarkInContext(const std::string &workload_abbrev,
                                const workload::WorkloadParams &params,
                                unsigned app_id, tlb::ContextId ctx,
                                sim::Tick arrival_tick = 0);

    /**
     * Runs to completion (or @p max_events as a runaway guard).
     * @return the collected statistics.
     */
    RunStats run(std::uint64_t max_events = 2'000'000'000ull);

    /** Dumps every component's stats (gem5-style listing). */
    void dumpStats(std::ostream &os) const;

    const SystemConfig &config() const { return cfg_; }

    /** The GPU domain's queue (the only queue when running serially). */
    sim::EventQueue &eventQueue() { return eq_; }

    /**
     * Worker threads this System will actually use: cfg.simThreads
     * resolved (0 = auto), clamped to the domain count, and forced to
     * 1 when a translation interposer bypasses the channel wiring.
     */
    unsigned simThreads() const { return simThreads_; }
    vm::AddressSpace &addressSpace() { return *addressSpace_; }
    gpu::Gpu &gpu() { return *gpu_; }
    iommu::Iommu &iommu() { return *iommu_; }
    tlb::TlbHierarchy &tlbs() { return *tlbs_; }
    mem::DramController &dram() { return *dram_; }
    mem::BackingStore &backingStore() { return store_; }

    /** The walk-lifecycle tracer, or nullptr when tracing is off. */
    trace::Tracer *tracer() { return tracer_.get(); }
    const trace::Tracer *tracer() const { return tracer_.get(); }

    /** The conservation auditor, or nullptr when auditing is off. */
    sim::Auditor *auditor() { return auditor_.get(); }
    const sim::Auditor *auditor() const { return auditor_.get(); }

    /** The demand-paging GMMU, or nullptr when fully resident. */
    vm::Gmmu *gmmu() { return gmmu_.get(); }
    const vm::Gmmu *gmmu() const { return gmmu_.get(); }

  private:
    /** Intrusive wake-up driving the in-run (periodic) audit checks. */
    struct PeriodicAuditEvent final : sim::Event
    {
        void process() override;
        System *sys = nullptr;
    };

    void registerSystemInvariants();
    void registerChannelInvariants();
    std::vector<sim::ChannelBase *> channels();
    RunStats runSerial(std::uint64_t max_events);
    RunStats runParallel(std::uint64_t max_events);
    RunStats collectStats();

    SystemConfig cfg_;
    unsigned simThreads_ = 1;          ///< resolved worker count
    bool channelTranslation_ = false;  ///< TLB→IOMMU edge via channels

    // Domain queues. eq_ is the GPU domain's queue and the only one in
    // a serial run; eqIommu_/eqDram_ exist only when simThreads_ > 1.
    sim::EventQueue eq_;
    std::unique_ptr<sim::EventQueue> eqIommu_;
    std::unique_ptr<sim::EventQueue> eqDram_;

    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<trace::Tracer> tracerIommu_; ///< parallel runs only
    std::unique_ptr<sim::Auditor> auditor_;
    PeriodicAuditEvent auditEvent_;
    mem::BackingStore store_;
    vm::FrameAllocator frames_;
    /** Demand-paging fault handler; null for fully resident runs.
     *  Lives on the IOMMU domain's queue — faults are raised and
     *  serviced on the walk path, keeping parallel runs deterministic. */
    std::unique_ptr<vm::Gmmu> gmmu_;
    std::unique_ptr<vm::AddressSpace> addressSpace_;
    /** Tenant address spaces beyond the default (ContextId i+1). */
    std::vector<std::unique_ptr<vm::AddressSpace>> tenantSpaces_;

    // Cross-domain channels (the system's channel wiring table) and
    // the adapters presenting them as plain device interfaces.
    std::unique_ptr<sim::Channel<tlb::TranslationRequest>> chTranslate_;
    std::unique_ptr<tlb::TranslationReplyChannel> chTransReply_;
    std::unique_ptr<sim::Channel<mem::MemoryRequest>> chGpuMem_;
    std::unique_ptr<mem::MemoryReplyChannel> chMemReplyGpu_;
    std::unique_ptr<sim::Channel<mem::MemoryRequest>> chWalkMem_;
    std::unique_ptr<mem::MemoryReplyChannel> chMemReplyIommu_;
    std::unique_ptr<tlb::ChannelTranslationPort> transPort_;
    std::unique_ptr<mem::ChannelMemoryPort> gpuMemPort_;
    std::unique_ptr<mem::ChannelMemoryPort> walkMemPort_;

    std::unique_ptr<mem::DramController> dram_;
    std::unique_ptr<mem::Cache> l2d_;
    std::vector<std::unique_ptr<tlb::TranslatingPort>> bridges_;
    std::vector<std::unique_ptr<mem::Cache>> l1ds_;
    std::unique_ptr<iommu::Iommu> iommu_;
    std::unique_ptr<tlb::TlbHierarchy> tlbs_;
    std::unique_ptr<gpu::Gpu> gpu_;
};

} // namespace gpuwalk::system

#endif // GPUWALK_SYSTEM_SYSTEM_HH
