/**
 * @file
 * Experiment harness helpers shared by the bench/ binaries: single-run
 * drivers, speedup/geomean math, and fixed-width table printing that
 * mirrors the paper's figures.
 */

#ifndef GPUWALK_SYSTEM_EXPERIMENT_HH
#define GPUWALK_SYSTEM_EXPERIMENT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "system/system.hh"

namespace gpuwalk::system {

/** One (workload, scheduler, config) simulation outcome. */
struct ExperimentResult
{
    std::string workload;
    core::SchedulerKind scheduler = core::SchedulerKind::Fcfs;
    RunStats stats;
};

/**
 * Builds a fresh System with @p cfg, loads @p workload, runs it.
 * Every run is fully independent (own page table, TLBs, RNG streams).
 */
ExperimentResult runOne(const SystemConfig &cfg,
                        const std::string &workload,
                        const workload::WorkloadParams &params);

/**
 * Convenience: @p cfg with its scheduler swapped to @p kind.
 */
SystemConfig withScheduler(SystemConfig cfg, core::SchedulerKind kind);

/** base runtime / test runtime: > 1 means @p test is faster. */
double speedup(const RunStats &test, const RunStats &base);

/** Geometric mean. @pre values positive, non-empty. */
double geomean(const std::vector<double> &values);

/**
 * The default experiment workload shape. Smaller than the paper's
 * full applications (simulation budget), but big enough to exercise
 * TLB thrashing and walker contention at Table II footprints.
 */
workload::WorkloadParams experimentParams();

/** Fixed-width console table, used by every figure bench. */
class TablePrinter
{
  public:
    /** @param columns Header labels; first column is left-aligned. */
    explicit TablePrinter(std::vector<std::string> columns,
                          unsigned width = 14);

    void printHeader(std::ostream &os) const;
    void printRow(std::ostream &os,
                  const std::vector<std::string> &cells) const;
    void printRule(std::ostream &os) const;

    /** Formats @p v with @p precision decimals. */
    static std::string fmt(double v, int precision = 3);

  private:
    std::vector<std::string> columns_;
    unsigned width_;
};

/** Prints the standard bench banner (figure id + config summary). */
void printBanner(std::ostream &os, const std::string &experiment_id,
                 const std::string &description,
                 const SystemConfig &cfg);

} // namespace gpuwalk::system

#endif // GPUWALK_SYSTEM_EXPERIMENT_HH
