#include "system/system.hh"

#include "trace/digest.hh"
#include "workload/registry.hh"

namespace gpuwalk::system {

System::System(const SystemConfig &cfg)
    : cfg_(cfg), frames_(cfg.physMemBytes, cfg.scrambleFrames)
{
    addressSpace_ = std::make_unique<vm::AddressSpace>(store_, frames_);

    dram_ = std::make_unique<mem::DramController>(eq_, cfg_.dram);

    l2d_ = std::make_unique<mem::Cache>(eq_, cfg_.l2d, *dram_);

    // Page walks fetch PTEs through the CPU-complex walk path — the
    // IOMMU sits in the CPU complex, not behind the GPU's caches.
    auto scheduler = cfg_.schedulerFactory
                         ? cfg_.schedulerFactory()
                         : core::makeScheduler(cfg_.scheduler,
                                               cfg_.schedulerSeed,
                                               cfg_.simt);
    iommu_ = std::make_unique<iommu::Iommu>(
        eq_, cfg_.iommu, std::move(scheduler), *dram_, store_,
        addressSpace_->pageTable().root());

    tlb::TranslationService *translation = iommu_.get();
    if (cfg_.translationInterposer) {
        translation = cfg_.translationInterposer(eq_, *iommu_);
        GPUWALK_ASSERT(translation != nullptr,
                       "translation interposer returned nullptr");
    }
    tlbs_ = std::make_unique<tlb::TlbHierarchy>(eq_, cfg_.gpuTlb,
                                                *translation);

    if (cfg_.trace.enabled) {
        tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
        iommu_->setTracer(tracer_.get());
        tlbs_->setTracer(tracer_.get());
    }

    l1ds_.reserve(cfg_.gpu.numCus);
    std::vector<mem::MemoryDevice *> l1_ptrs;
    for (unsigned cu = 0; cu < cfg_.gpu.numCus; ++cu) {
        mem::CacheConfig l1 = cfg_.l1d;
        l1.name = "l1d" + std::to_string(cu);
        mem::MemoryDevice *below = l2d_.get();
        if (cfg_.gpu.virtualL1Cache) {
            // Virtual L1s translate on the miss path (Yoon et al.).
            bridges_.push_back(std::make_unique<tlb::TranslatingPort>(
                *tlbs_, *l2d_));
            below = bridges_.back().get();
        }
        l1ds_.push_back(std::make_unique<mem::Cache>(eq_, l1, *below));
        l1_ptrs.push_back(l1ds_.back().get());
    }

    gpu_ = std::make_unique<gpu::Gpu>(eq_, cfg_.gpu, *tlbs_,
                                      std::move(l1_ptrs));

    if (cfg_.audit.enabled) {
        auditor_ = std::make_unique<sim::Auditor>();
        tlbs_->registerInvariants(*auditor_);
        iommu_->registerInvariants(*auditor_);
        if (iommu_->walkCache())
            iommu_->walkCache()->registerInvariants(*auditor_);
        l2d_->registerInvariants(*auditor_);
        for (auto &l1 : l1ds_)
            l1->registerInvariants(*auditor_);
        dram_->registerInvariants(*auditor_);
        gpu_->registerInvariants(*auditor_);
        registerSystemInvariants();
        auditEvent_.sys = this;
    }
}

void
System::registerSystemInvariants()
{
    // Cross-component identity: the TLB hierarchy's forward counter
    // and the IOMMU's receive counter move in the same synchronous
    // call, so they must agree at any instant — unless something sits
    // between the two and injects or swallows requests.
    auditor_->registerInvariant(
        "system.translation_conservation",
        [this](sim::AuditContext &ctx) {
            ctx.require(tlbs_->iommuRequests() == iommu_->requests(),
                        "TLB hierarchy forwarded ",
                        tlbs_->iommuRequests(),
                        " requests but the IOMMU received ",
                        iommu_->requests());
        });

    auditor_->registerInvariant(
        "system.events_monotone",
        [this, last = std::uint64_t{0}](sim::AuditContext &ctx) mutable {
            const std::uint64_t executed = eq_.executed();
            ctx.require(executed >= last,
                        "events executed went backwards: ", last,
                        " -> ", executed);
            last = executed;
        });
}

void
System::PeriodicAuditEvent::process()
{
    sys->auditor_->check(sim::AuditPhase::Periodic, sys->eq_.now());
    if (!sys->gpu_->done()) {
        sys->eq_.schedule(sys->eq_.now() + sys->cfg_.audit.interval,
                          *this);
    }
}

void
System::loadBenchmark(const std::string &workload_abbrev,
                      const workload::WorkloadParams &params,
                      unsigned app_id)
{
    auto gen = workload::makeWorkload(workload_abbrev);
    addressSpace_->useLargePages(params.useLargePages);
    loadWorkload(gen->generate(*addressSpace_, params), app_id);
}

void
System::loadWorkload(gpu::GpuWorkload workload, unsigned app_id)
{
    gpu_->loadWorkload(std::move(workload), app_id);
}

RunStats
System::run(std::uint64_t max_events)
{
    gpu_->start();

    if (auditor_ && cfg_.audit.interval > 0)
        eq_.schedule(eq_.now() + cfg_.audit.interval, auditEvent_);

    std::uint64_t events = 0;
    while (!gpu_->done()) {
        if (!eq_.runOne())
            sim::panic("event queue drained before the GPU finished (",
                       "deadlock: some request never completed)");
        if (++events > max_events)
            sim::panic("simulation exceeded ", max_events,
                       " events without completing");
    }

    if (auditor_) {
        // Let the tail work that outlives the kernel (writebacks,
        // prefetch walks) finish, so the final checks see a drained
        // system rather than legitimately in-flight state.
        while (eq_.runOne()) {
            if (++events > max_events)
                sim::panic("simulation exceeded ", max_events,
                           " events while draining for the audit");
        }
        auditor_->check(sim::AuditPhase::Final, eq_.now());
    }

    RunStats stats;
    stats.runtimeTicks = gpu_->finishTick();
    for (std::size_t app = 0; app < gpu_->numApps(); ++app)
        stats.appFinishTicks.push_back(
            gpu_->appFinishTick(static_cast<unsigned>(app)));
    stats.stallTicks = gpu_->totalStallTicks();
    stats.instructions = gpu_->totalInstructions();
    stats.eventsExecuted = eq_.executed();
    stats.translationRequests = tlbs_->iommuRequests();
    stats.walkRequests = iommu_->walkRequests();
    stats.walksCompleted = iommu_->walksCompleted();
    stats.avgWavefrontsPerEpoch = tlbs_->avgWavefrontsPerEpoch();
    stats.walks = iommu_->metrics().summarize();
    stats.latency = iommu_->latencySummary();
    if (tracer_) {
        stats.traced = true;
        stats.traceDigest = trace::digest(*tracer_);
        stats.traceEvents = tracer_->recorded();
        stats.traceDropped = tracer_->dropped();
    }
    if (auditor_) {
        stats.audited = true;
        stats.auditChecks = auditor_->checksRun();
        stats.auditViolations = auditor_->violationCount();
        stats.auditFindings = auditor_->violations();
    }
    return stats;
}

void
System::dumpStats(std::ostream &os) const
{
    gpu_->stats().dump(os);
    tlbs_->stats().dump(os);
    iommu_->stats().dump(os);
    l2d_->stats().dump(os);
    for (const auto &l1 : l1ds_)
        l1->stats().dump(os);
    dram_->stats().dump(os);
}

} // namespace gpuwalk::system
