#include "system/system.hh"

#include <algorithm>
#include <cmath>

#include "sim/domain_runner.hh"
#include "trace/digest.hh"
#include "workload/registry.hh"

namespace gpuwalk::system {

namespace {

/** The fixed domain partition: GPU complex, IOMMU complex, DRAM. */
constexpr unsigned domGpu = 0;
constexpr unsigned domIommu = 1;
constexpr unsigned domDram = 2;
constexpr std::size_t numDomains = 3;

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg), frames_(cfg.physMemBytes, cfg.scrambleFrames)
{
    addressSpace_ = std::make_unique<vm::AddressSpace>(store_, frames_);

    // Resolve the execution engine up front: components are born onto
    // their domain's queue, so the choice cannot change after wiring.
    channelTranslation_ = !cfg_.translationInterposer;
    simThreads_ =
        cfg_.simThreads == 1
            ? 1
            : sim::DomainRunner::resolveThreads(cfg_.simThreads,
                                                numDomains);
    if (!channelTranslation_ && simThreads_ > 1) {
        sim::warn("translation interposer requires the serial engine; "
                  "forcing sim-threads to 1");
        simThreads_ = 1;
    }
    const bool parallel = simThreads_ > 1;
    if (parallel) {
        eq_.enableDomainKeys(domGpu);
        eqIommu_ = std::make_unique<sim::EventQueue>();
        eqIommu_->enableDomainKeys(domIommu);
        eqDram_ = std::make_unique<sim::EventQueue>();
        eqDram_->enableDomainKeys(domDram);
    }
    sim::EventQueue &qGpu = eq_;
    sim::EventQueue &qIommu = parallel ? *eqIommu_ : eq_;
    sim::EventQueue &qDram = parallel ? *eqDram_ : eq_;

    // The channel wiring table: every call crossing a latency boundary
    // becomes a typed channel carrying its fixed link latency. The
    // minimum latency is the edge's conservative lookahead:
    //  - TLB hierarchy -> IOMMU: the off-chip hop (hoisted out of
    //    Iommu::translate onto the link).
    //  - IOMMU -> TLB replies: walk completions return same-tick, so
    //    the edge carries no lookahead.
    //  - requests into DRAM: handed over same-tick (the caller already
    //    paid its own cache latency).
    //  - DRAM replies: nothing completes faster than CAS + burst.
    const sim::Tick hop = cfg_.iommu.hopLatency;
    const sim::Tick dramFloor = cfg_.dram.cl() + cfg_.dram.burst();
    chTranslate_ = std::make_unique<sim::Channel<tlb::TranslationRequest>>(
        "tlb_to_iommu", hop);
    chTransReply_ = std::make_unique<tlb::TranslationReplyChannel>(
        "iommu_to_tlb", 0);
    chGpuMem_ = std::make_unique<sim::Channel<mem::MemoryRequest>>(
        "l2d_to_dram", 0);
    chMemReplyGpu_ = std::make_unique<mem::MemoryReplyChannel>(
        "dram_to_l2d", dramFloor);
    chWalkMem_ = std::make_unique<sim::Channel<mem::MemoryRequest>>(
        "walk_to_dram", 0);
    chMemReplyIommu_ = std::make_unique<mem::MemoryReplyChannel>(
        "dram_to_walk", dramFloor);
    chTranslate_->bind(qGpu, qIommu);
    chTransReply_->bind(qIommu, qGpu);
    chGpuMem_->bind(qGpu, qDram);
    chMemReplyGpu_->bind(qDram, qGpu);
    chWalkMem_->bind(qIommu, qDram);
    chMemReplyIommu_->bind(qDram, qIommu);
    if (parallel) {
        chTranslate_->setParallel(true);
        chTransReply_->setParallel(true);
        chGpuMem_->setParallel(true);
        chMemReplyGpu_->setParallel(true);
        chWalkMem_->setParallel(true);
        chMemReplyIommu_->setParallel(true);
    }

    transPort_ =
        std::make_unique<tlb::ChannelTranslationPort>(*chTranslate_);
    gpuMemPort_ = std::make_unique<mem::ChannelMemoryPort>(
        *chGpuMem_, *chMemReplyGpu_);
    walkMemPort_ = std::make_unique<mem::ChannelMemoryPort>(
        *chWalkMem_, *chMemReplyIommu_);

    dram_ = std::make_unique<mem::DramController>(qDram, cfg_.dram);
    chGpuMem_->onDeliver(
        [this](mem::MemoryRequest &&m) { dram_->access(std::move(m)); });
    chWalkMem_->onDeliver(
        [this](mem::MemoryRequest &&m) { dram_->access(std::move(m)); });
    chMemReplyGpu_->onDeliver([](mem::MemoryRequest &&m) { m.complete(); });
    chMemReplyIommu_->onDeliver(
        [](mem::MemoryRequest &&m) { m.complete(); });
    chTransReply_->onDeliver([](tlb::TranslationReply &&m) {
        m.req.complete(m.paPage, m.largePage);
    });

    l2d_ = std::make_unique<mem::Cache>(qGpu, cfg_.l2d, *gpuMemPort_);

    // Page walks fetch PTEs through the CPU-complex walk path — the
    // IOMMU sits in the CPU complex, not behind the GPU's caches.
    auto scheduler = cfg_.schedulerFactory
                         ? cfg_.schedulerFactory()
                         : core::makeScheduler(cfg_.scheduler,
                                               cfg_.schedulerSeed,
                                               cfg_.simt, cfg_.qos);
    iommu_ = std::make_unique<iommu::Iommu>(
        qIommu, cfg_.iommu, std::move(scheduler), *walkMemPort_, store_,
        addressSpace_->pageTable().root());

    if (cfg_.gmmu.enabled) {
        // Demand paging: the GMMU lives on the IOMMU domain's queue
        // (faults are raised and serviced on the walk path), and the
        // default address space stops eagerly mapping its regions.
        gmmu_ = std::make_unique<vm::Gmmu>(qIommu, cfg_.gmmu, frames_,
                                           store_);
        addressSpace_->setDemandPaging(true);
        gmmu_->registerSpace(0, *addressSpace_);
        iommu_->attachGmmu(gmmu_.get());
    }

    tlb::TranslationService *translation = nullptr;
    if (channelTranslation_) {
        iommu_->setReplyChannel(chTransReply_.get());
        chTranslate_->onDeliver([this](tlb::TranslationRequest &&r) {
            iommu_->deliverTranslate(std::move(r));
        });
        translation = transPort_.get();
    } else {
        // Test-only direct wiring: the interposer sits between the TLB
        // hierarchy and the IOMMU, which pays the hop latency itself.
        translation = cfg_.translationInterposer(eq_, *iommu_);
        GPUWALK_ASSERT(translation != nullptr,
                       "translation interposer returned nullptr");
    }
    tlbs_ = std::make_unique<tlb::TlbHierarchy>(qGpu, cfg_.gpuTlb,
                                                *translation);

    if (cfg_.trace.enabled) {
        tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
        tlbs_->setTracer(tracer_.get());
        if (parallel) {
            // One stamped ring per recording domain; merged into the
            // global order after the run (trace::mergeTracers).
            tracer_->setOrderSource(&eq_);
            tracerIommu_ = std::make_unique<trace::Tracer>(cfg_.trace);
            tracerIommu_->setOrderSource(eqIommu_.get());
            iommu_->setTracer(tracerIommu_.get());
        } else {
            iommu_->setTracer(tracer_.get());
        }
    }

    l1ds_.reserve(cfg_.gpu.numCus);
    std::vector<mem::MemoryDevice *> l1_ptrs;
    for (unsigned cu = 0; cu < cfg_.gpu.numCus; ++cu) {
        mem::CacheConfig l1 = cfg_.l1d;
        l1.name = "l1d" + std::to_string(cu);
        mem::MemoryDevice *below = l2d_.get();
        if (cfg_.gpu.virtualL1Cache) {
            // Virtual L1s translate on the miss path (Yoon et al.).
            bridges_.push_back(std::make_unique<tlb::TranslatingPort>(
                *tlbs_, *l2d_));
            below = bridges_.back().get();
        }
        l1ds_.push_back(std::make_unique<mem::Cache>(qGpu, l1, *below));
        l1_ptrs.push_back(l1ds_.back().get());
    }

    gpu_ = std::make_unique<gpu::Gpu>(qGpu, cfg_.gpu, *tlbs_,
                                      std::move(l1_ptrs));
    if (tracer_) {
        // CUs share the GPU domain's tracer (same queue as the TLBs).
        gpu_->setTracer(tracer_.get());
    }

    if (cfg_.audit.enabled) {
        auditor_ = std::make_unique<sim::Auditor>();
        tlbs_->registerInvariants(*auditor_);
        iommu_->registerInvariants(*auditor_);
        if (gmmu_)
            gmmu_->registerInvariants(*auditor_);
        if (iommu_->walkCache())
            iommu_->walkCache()->registerInvariants(*auditor_);
        l2d_->registerInvariants(*auditor_);
        for (auto &l1 : l1ds_)
            l1->registerInvariants(*auditor_);
        dram_->registerInvariants(*auditor_);
        gpu_->registerInvariants(*auditor_);
        registerSystemInvariants();
        registerChannelInvariants();
        auditEvent_.sys = this;
    }
}

std::vector<sim::ChannelBase *>
System::channels()
{
    return {chTranslate_.get(),  chTransReply_.get(),
            chGpuMem_.get(),     chMemReplyGpu_.get(),
            chWalkMem_.get(),    chMemReplyIommu_.get()};
}

void
System::registerSystemInvariants()
{
    if (channelTranslation_) {
        // Cross-component identity through the channel: the hierarchy's
        // forward counter moves with the channel's send counter in the
        // same synchronous call, and the IOMMU's receive counter moves
        // with the delivery — so both pairs agree at any instant, and
        // the link itself must conserve (nothing injected, nothing
        // swallowed, nothing left in flight at drain).
        auditor_->registerInvariant(
            "system.translation_conservation",
            [this](sim::AuditContext &ctx) {
                ctx.require(tlbs_->iommuRequests() == chTranslate_->sent(),
                            "TLB hierarchy forwarded ",
                            tlbs_->iommuRequests(),
                            " requests but the channel accepted ",
                            chTranslate_->sent());
                ctx.require(iommu_->requests() == chTranslate_->delivered(),
                            "channel delivered ",
                            chTranslate_->delivered(),
                            " requests but the IOMMU received ",
                            iommu_->requests());
                if (ctx.final()) {
                    ctx.require(chTranslate_->sent()
                                    == chTranslate_->delivered(),
                                chTranslate_->sent()
                                    - chTranslate_->delivered(),
                                " translation requests still in flight"
                                " at drain");
                }
            });
        // Reply conservation: every reply answers a received request.
        // Prefetch completions must short-circuit to TLB fills only —
        // a synthetic reply for a request no coalescer made would push
        // sent() past requests() and trip this.
        auditor_->registerInvariant(
            "system.reply_conservation",
            [this](sim::AuditContext &ctx) {
                ctx.require(chTransReply_->sent() <= iommu_->requests(),
                            "IOMMU sent ", chTransReply_->sent(),
                            " replies for only ", iommu_->requests(),
                            " received requests");
                if (ctx.final()) {
                    ctx.require(chTransReply_->sent()
                                    == iommu_->requests(),
                                iommu_->requests()
                                    - chTransReply_->sent(),
                                " requests never answered at drain");
                }
            });
    } else {
        // Direct wiring (interposer): the forward and receive counters
        // move in the same synchronous call, so they must agree at any
        // instant — unless something sits between the two and injects
        // or swallows requests.
        auditor_->registerInvariant(
            "system.translation_conservation",
            [this](sim::AuditContext &ctx) {
                ctx.require(tlbs_->iommuRequests() == iommu_->requests(),
                            "TLB hierarchy forwarded ",
                            tlbs_->iommuRequests(),
                            " requests but the IOMMU received ",
                            iommu_->requests());
            });
    }

    // Events-executed stays monotone, per domain queue.
    const auto monotone = [this](std::string name, sim::EventQueue *q) {
        auditor_->registerInvariant(
            std::move(name),
            [q, last = std::uint64_t{0}](sim::AuditContext &ctx) mutable {
                const std::uint64_t executed = q->executed();
                ctx.require(executed >= last,
                            "events executed went backwards: ", last,
                            " -> ", executed);
                last = executed;
            });
    };
    if (simThreads_ > 1) {
        monotone("system.events_monotone.gpu", &eq_);
        monotone("system.events_monotone.iommu", eqIommu_.get());
        monotone("system.events_monotone.dram", eqDram_.get());
    } else {
        monotone("system.events_monotone", &eq_);
    }
}

void
System::registerChannelInvariants()
{
    for (sim::ChannelBase *ch : channels()) {
        auditor_->registerInvariant(
            "channel." + ch->name() + ".conservation",
            [ch](sim::AuditContext &ctx) {
                const std::uint64_t delivered = ch->delivered();
                const std::uint64_t sent = ch->sent();
                ctx.require(delivered <= sent, "delivered ", delivered,
                            " messages but only ", sent, " were sent");
                if (!ctx.final())
                    return;
                ctx.require(sent == delivered, sent - delivered,
                            " messages lost in flight at drain");
                ctx.require(ch->inboxEmpty(),
                            "inbox still holds messages at drain");
            });
    }
}

void
System::PeriodicAuditEvent::process()
{
    sys->auditor_->check(sim::AuditPhase::Periodic, sys->eq_.now());
    if (!sys->gpu_->done()) {
        sys->eq_.schedule(sys->eq_.now() + sys->cfg_.audit.interval,
                          *this);
    }
}

void
System::loadBenchmark(const std::string &workload_abbrev,
                      const workload::WorkloadParams &params,
                      unsigned app_id)
{
    auto gen = workload::makeWorkload(workload_abbrev);
    GPUWALK_ASSERT(!(gmmu_ && params.useLargePages),
                   "demand paging excludes eager large pages (2 MB "
                   "coverage comes from GMMU promotion)");
    addressSpace_->useLargePages(params.useLargePages);
    loadWorkload(gen->generate(*addressSpace_, params), app_id);
}

void
System::loadWorkload(gpu::GpuWorkload workload, unsigned app_id)
{
    gpu_->loadWorkload(std::move(workload), app_id);
}

tlb::ContextId
System::createContext()
{
    GPUWALK_ASSERT(!cfg_.gpu.virtualL1Cache,
                   "multi-tenant runs need physical L1s: a virtual L1 "
                   "translates below the cache, where the owning "
                   "context is unknown");
    tenantSpaces_.push_back(
        std::make_unique<vm::AddressSpace>(store_, frames_));
    const auto ctx = static_cast<tlb::ContextId>(tenantSpaces_.size());
    iommu_->registerContext(ctx,
                            tenantSpaces_.back()->pageTable().root());
    if (gmmu_) {
        tenantSpaces_.back()->setDemandPaging(true);
        gmmu_->registerSpace(ctx, *tenantSpaces_.back());
    }
    return ctx;
}

vm::AddressSpace &
System::addressSpaceOf(tlb::ContextId ctx)
{
    if (ctx == tlb::defaultContext)
        return *addressSpace_;
    return *tenantSpaces_.at(ctx - 1);
}

void
System::loadBenchmarkInContext(const std::string &workload_abbrev,
                               const workload::WorkloadParams &params,
                               unsigned app_id, tlb::ContextId ctx,
                               sim::Tick arrival_tick)
{
    auto gen = workload::makeWorkload(workload_abbrev);
    vm::AddressSpace &as = addressSpaceOf(ctx);
    GPUWALK_ASSERT(!(gmmu_ && params.useLargePages),
                   "demand paging excludes eager large pages (2 MB "
                   "coverage comes from GMMU promotion)");
    as.useLargePages(params.useLargePages);
    gpu_->setAppContext(app_id, ctx);
    if (arrival_tick == 0) {
        gpu_->loadWorkload(gen->generate(as, params), app_id);
    } else {
        gpu_->loadWorkloadAt(arrival_tick, gen->generate(as, params),
                             app_id);
    }
}

RunStats
System::run(std::uint64_t max_events)
{
    if (gmmu_) {
        // Resolve the oversubscription ratio against the loaded
        // workloads' total footprint: the cap is fixed for the run,
        // like a real device's memory size.
        mem::Addr bytes = addressSpace_->footprintBytes();
        for (const auto &space : tenantSpaces_)
            bytes += space->footprintBytes();
        const auto pages =
            std::uint64_t{(bytes + mem::pageSize - 1) / mem::pageSize};
        const auto cap = static_cast<std::uint64_t>(
            std::ceil(cfg_.gmmu.oversubscription
                      * static_cast<double>(pages)));
        gmmu_->setFrameCap(std::max<std::uint64_t>(1, cap));
    }
    return simThreads_ > 1 ? runParallel(max_events)
                           : runSerial(max_events);
}

RunStats
System::runSerial(std::uint64_t max_events)
{
    gpu_->start();

    if (auditor_ && cfg_.audit.interval > 0)
        eq_.schedule(eq_.now() + cfg_.audit.interval, auditEvent_);

    std::uint64_t events = 0;
    while (!gpu_->done()) {
        if (!eq_.runOne())
            sim::panic("event queue drained before the GPU finished (",
                       "deadlock: some request never completed)");
        if (++events > max_events)
            sim::panic("simulation exceeded ", max_events,
                       " events without completing");
    }

    if (auditor_) {
        // Let the tail work that outlives the kernel (writebacks,
        // prefetch walks) finish, so the final checks see a drained
        // system rather than legitimately in-flight state.
        while (eq_.runOne()) {
            if (++events > max_events)
                sim::panic("simulation exceeded ", max_events,
                           " events while draining for the audit");
        }
        auditor_->check(sim::AuditPhase::Final, eq_.now());
    }

    return collectStats();
}

RunStats
System::runParallel(std::uint64_t max_events)
{
    gpu_->start();

    std::vector<sim::Domain> domains{
        {domGpu, "gpu", &eq_},
        {domIommu, "iommu", eqIommu_.get()},
        {domDram, "dram", eqDram_.get()},
    };
    std::vector<sim::DomainEdge> edges{
        {domGpu, domIommu, chTranslate_.get()},
        {domIommu, domGpu, chTransReply_.get()},
        {domGpu, domDram, chGpuMem_.get()},
        {domDram, domGpu, chMemReplyGpu_.get()},
        {domIommu, domDram, chWalkMem_.get()},
        {domDram, domIommu, chMemReplyIommu_.get()},
    };
    sim::DomainRunner runner(std::move(domains), std::move(edges),
                             simThreads_);
    const sim::DomainRunner::Result result = runner.run(max_events);
    if (result.maxEventsExceeded)
        sim::panic("simulation exceeded ", max_events,
                   " events without completing");
    if (result.deadlocked || !gpu_->done())
        sim::panic("domain graph quiesced before the GPU finished (",
                   "deadlock: some request never completed)");

    // A partitioned run always drains to quiescence (that IS the
    // termination condition), so the final audit sees the same drained
    // system a serial audited run does. Periodic checks don't run:
    // cross-domain invariants are only meaningful at the drained end.
    if (auditor_) {
        const sim::Tick final_tick = std::max(
            {eq_.now(), eqIommu_->now(), eqDram_->now()});
        auditor_->check(sim::AuditPhase::Final, final_tick);
    }

    if (tracer_)
        *tracer_ = trace::mergeTracers(
            {tracer_.get(), tracerIommu_.get()}, cfg_.trace);

    RunStats stats = collectStats();

    // Sum the domain queues, then subtract the same-tick messages:
    // a serial run delivers those as nested synchronous calls (no
    // event), a partitioned run injects one event per message.
    std::uint64_t same_tick = 0;
    for (sim::ChannelBase *ch : channels())
        same_tick += ch->sameTickSent();
    stats.eventsExecuted = eq_.executed() + eqIommu_->executed()
                           + eqDram_->executed() - same_tick;
    return stats;
}

RunStats
System::collectStats()
{
    RunStats stats;
    stats.runtimeTicks = gpu_->finishTick();
    for (std::size_t app = 0; app < gpu_->numApps(); ++app)
        stats.appFinishTicks.push_back(
            gpu_->appFinishTick(static_cast<unsigned>(app)));
    stats.stallTicks = gpu_->totalStallTicks();
    stats.instructions = gpu_->totalInstructions();
    stats.eventsExecuted = eq_.executed();
    stats.translationRequests = tlbs_->iommuRequests();
    stats.walkRequests = iommu_->walkRequests();
    stats.walksCompleted = iommu_->walksCompleted();
    stats.avgWavefrontsPerEpoch = tlbs_->avgWavefrontsPerEpoch();
    stats.walks = iommu_->metrics().summarize();
    stats.latency = iommu_->latencySummary();
    if (tracer_) {
        stats.traced = true;
        stats.traceDigest = trace::digest(*tracer_);
        stats.traceEvents = tracer_->recorded();
        stats.traceDropped = tracer_->dropped();
    }
    if (auditor_) {
        stats.audited = true;
        stats.auditChecks = auditor_->checksRun();
        stats.auditViolations = auditor_->violationCount();
        stats.auditFindings = auditor_->violations();
    }

    // Per-tenant accounting, multi-tenant runs only: single-tenant
    // stats stay byte-identical to the pre-ASID simulator.
    if (!tenantSpaces_.empty()) {
        const std::size_t numCtx = tenantSpaces_.size() + 1;
        for (std::size_t c = 0; c < numCtx; ++c) {
            const auto ctx = static_cast<tlb::ContextId>(c);
            RunStats::TenantStats t;
            t.ctx = ctx;
            const auto &ic = iommu_->tenantCounters(ctx);
            t.walkRequests = ic.walkRequests;
            t.walksCompleted = ic.walksCompleted;
            t.dispatches = ic.dispatches;
            t.queueWaitTicks = ic.queueWaitTicks;
            t.serviceTicks = ic.serviceTicks;
            for (std::size_t app = 0; app < gpu_->numApps(); ++app) {
                const auto a = static_cast<unsigned>(app);
                if (gpu_->contextOf(a) == ctx)
                    t.finishTick =
                        std::max(t.finishTick, gpu_->appFinishTick(a));
            }
            stats.tenants.push_back(t);
        }
    }

    if (gmmu_)
        stats.gmmu = gmmu_->summarize();
    stats.prefetch = iommu_->prefetchSummary();
    stats.spec = iommu_->specSummary();
    stats.leaderIssues = gpu_->totalLeaderIssues();
    return stats;
}

void
System::dumpStats(std::ostream &os) const
{
    gpu_->stats().dump(os);
    tlbs_->stats().dump(os);
    iommu_->stats().dump(os);
    l2d_->stats().dump(os);
    for (const auto &l1 : l1ds_)
        l1->stats().dump(os);
    dram_->stats().dump(os);
}

} // namespace gpuwalk::system
