#include "system/experiment.hh"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace gpuwalk::system {

ExperimentResult
runOne(const SystemConfig &cfg, const std::string &workload,
       const workload::WorkloadParams &params)
{
    System sys(cfg);
    sys.loadBenchmark(workload, params);
    ExperimentResult result;
    result.workload = workload;
    result.scheduler = cfg.scheduler;
    result.stats = sys.run();
    return result;
}

SystemConfig
withScheduler(SystemConfig cfg, core::SchedulerKind kind)
{
    cfg.scheduler = kind;
    return cfg;
}

double
speedup(const RunStats &test, const RunStats &base)
{
    GPUWALK_ASSERT(test.runtimeTicks > 0, "zero test runtime");
    return static_cast<double>(base.runtimeTicks)
           / static_cast<double>(test.runtimeTicks);
}

double
geomean(const std::vector<double> &values)
{
    GPUWALK_ASSERT(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        GPUWALK_ASSERT(v > 0.0, "geomean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

workload::WorkloadParams
experimentParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 256;              // oversubscribed; 2 resident/CU
    params.instructionsPerWavefront = 48;
    params.seed = 42;
    params.footprintScale = 1.0;          // Table II footprints
    params.computeCycles = 200;           // base; scaled per benchmark
    return params;
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned width)
    : columns_(std::move(columns)), width_(width)
{}

void
TablePrinter::printHeader(std::ostream &os) const
{
    printRow(os, columns_);
    printRule(os);
}

void
TablePrinter::printRow(std::ostream &os,
                       const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i == 0)
            os << std::left << std::setw(width_) << cells[i];
        else
            os << std::right << std::setw(width_) << cells[i];
    }
    os << "\n";
}

void
TablePrinter::printRule(std::ostream &os) const
{
    os << std::string(width_ * columns_.size(), '-') << "\n";
}

std::string
TablePrinter::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
printBanner(std::ostream &os, const std::string &experiment_id,
            const std::string &description, const SystemConfig &cfg)
{
    os << "==============================================================\n"
       << experiment_id << ": " << description << "\n"
       << "--------------------------------------------------------------\n";
    cfg.print(os);
    os << "==============================================================\n";
}

} // namespace gpuwalk::system
