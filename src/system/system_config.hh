/**
 * @file
 * Whole-system configuration — the reproduction of Table I.
 */

#ifndef GPUWALK_SYSTEM_SYSTEM_CONFIG_HH
#define GPUWALK_SYSTEM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>

#include "core/walk_scheduler.hh"
#include "gpu/gpu_config.hh"
#include "iommu/iommu.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/audit.hh"
#include "tlb/tlb_hierarchy.hh"
#include "trace/trace.hh"
#include "vm/gmmu.hh"

namespace gpuwalk::system {

/** Every knob of the simulated system, defaulting to Table I. */
struct SystemConfig
{
    gpu::GpuConfig gpu;                ///< 2 GHz, 8 CUs, 64-wide wf
    tlb::TlbHierarchyConfig gpuTlb;    ///< 32-entry L1 / 512-entry L2
    iommu::IommuConfig iommu;          ///< 256 buffer, 8 walkers, ...
    mem::DramConfig dram;              ///< DDR3-1600, 2ch x 2rk x 16bk

    /** Per-CU L1 data cache: 32 KB, 16-way, 64 B (Table I). */
    mem::CacheConfig l1d{"l1d", 32 * 1024, 16, mem::cacheLineSize,
                         1 * 500, 1 * 500, 64};

    /** Shared L2 data cache: 4 MB, 16-way, 64 B (Table I). */
    mem::CacheConfig l2d{"l2d", 4 * 1024 * 1024, 16, mem::cacheLineSize,
                         16 * 500, 4 * 500, 256};

    /** Page-walk service policy (the experiments' variable). */
    core::SchedulerKind scheduler = core::SchedulerKind::Fcfs;
    core::SimtSchedulerConfig simt;

    /** Cross-tenant QoS knobs; only the token-bucket and
     *  weighted-share schedulers read them. */
    core::QosSchedulerConfig qos;

    std::uint64_t schedulerSeed = 1;

    /**
     * When set, overrides @ref scheduler: the System calls this to
     * build its walk scheduler. This is the extension point for
     * user-defined policies (see examples/custom_scheduler.cpp).
     */
    std::function<std::unique_ptr<core::WalkScheduler>()>
        schedulerFactory;

    /**
     * Demand paging / memory oversubscription (the GMMU). Off by
     * default: fully resident runs never construct the GMMU and stay
     * byte-identical to the eager-mapping simulator. When enabled the
     * knobs print (they change simulated behaviour, so they belong in
     * the config fingerprint).
     */
    vm::GmmuConfig gmmu;

    /** Physical memory backing the frame allocator. */
    mem::Addr physMemBytes = mem::Addr(8) << 30;

    /** Scatter VA-contiguous pages over physical frames (OS-like). */
    bool scrambleFrames = true;

    /**
     * Simulation worker threads: 1 (default) runs the classic serial
     * loop; N > 1 runs one latency-decoupled domain (group) per thread
     * under the conservative executor (sim/domain_runner.hh); 0 picks
     * min(domains, hardware threads). Execution-engine knob only — the
     * simulated system and its results are identical at every value —
     * so, like trace/audit, it is excluded from print() and hence from
     * config fingerprints.
     */
    unsigned simThreads = 1;

    /**
     * Walk-lifecycle tracing (off by default). Observation-only: it
     * never perturbs simulated behaviour, so it is excluded from
     * print() and hence from config fingerprints.
     */
    trace::TraceConfig trace;

    /**
     * End-of-run conservation auditing (off by default). Like tracing,
     * observation-only and excluded from print() and hence from config
     * fingerprints.
     */
    sim::AuditConfig audit;

    /**
     * Test-only extension point: when set, the System routes the TLB
     * hierarchy's miss path through the TranslationService this
     * returns instead of the IOMMU directly (which is passed in,
     * along with the system event queue). The fault-injection tests
     * use it to misbehave at the TLB↔IOMMU boundary inside an
     * otherwise-real System. The caller keeps ownership of the
     * returned service, which must outlive the System. Excluded from
     * print().
     */
    std::function<tlb::TranslationService *(sim::EventQueue &,
                                            tlb::TranslationService &)>
        translationInterposer;

    /** The paper's baseline configuration (Table I verbatim). */
    static SystemConfig
    baseline()
    {
        return SystemConfig{};
    }

    /** Prints the configuration as a Table I-style listing. */
    void print(std::ostream &os) const;
};

} // namespace gpuwalk::system

#endif // GPUWALK_SYSTEM_SYSTEM_CONFIG_HH
