/**
 * @file
 * Physical frame allocation.
 *
 * A simple OS-like bump allocator over a configured amount of physical
 * memory. An optional stride-scramble mimics the effect of a real OS
 * free list, where consecutively mapped virtual pages do not land on
 * consecutive physical frames.
 */

#ifndef GPUWALK_VM_FRAME_ALLOCATOR_HH
#define GPUWALK_VM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <optional>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace gpuwalk::vm {

/** Hands out 4 KB physical frames. */
class FrameAllocator
{
  public:
    /**
     * @param phys_bytes Size of physical memory.
     * @param scramble If true, permute frame order with a multiplicative
     *        stride so VA-contiguous pages are PA-scattered.
     */
    explicit FrameAllocator(mem::Addr phys_bytes = mem::Addr(8) << 30,
                            bool scramble = false)
        : totalFrames_(phys_bytes / mem::pageSize), scramble_(scramble)
    {
        GPUWALK_ASSERT(totalFrames_ > 0, "empty physical memory");
    }

    /** Allocates one frame; returns its physical base address. */
    mem::Addr
    allocateFrame()
    {
        GPUWALK_ASSERT(nextFrame_ < totalFrames_,
                       "out of physical memory (", totalFrames_,
                       " frames)");
        std::uint64_t frame = nextFrame_++;
        if (scramble_) {
            // Odd multiplier => bijection mod any power-of-two frame
            // count; for non-power-of-two counts fall back to linear.
            if ((totalFrames_ & (totalFrames_ - 1)) == 0)
                frame = (frame * 2654435761ull) & (totalFrames_ - 1);
        }
        return frame * mem::pageSize;
    }

    /**
     * Allocates a 2 MB-aligned run of 512 frames for a large page.
     * Large frames come from the top of physical memory (real OSes
     * reserve contiguity pools); collision with the 4 KB region is a
     * fatal out-of-memory condition.
     */
    mem::Addr
    allocateLargeFrame()
    {
        const auto pa = tryAllocateLargeFrame();
        GPUWALK_ASSERT(pa.has_value(),
                       "out of physical memory for large pages");
        return *pa;
    }

    /**
     * Non-fatal variant of allocateLargeFrame(): returns nullopt when
     * the contiguity pool has collided with the 4 KB bump region.
     * The GMMU uses this for opportunistic Mosaic-style reservations,
     * falling back to scattered 4 KB frames when contiguity runs out.
     */
    std::optional<mem::Addr>
    tryAllocateLargeFrame()
    {
        constexpr std::uint64_t framesPer2M = 512;
        if (largeTop_ == 0)
            largeTop_ = totalFrames_ & ~(framesPer2M - 1);
        if (largeTop_ < framesPer2M
            || largeTop_ - framesPer2M < nextFrame_)
            return std::nullopt;
        largeTop_ -= framesPer2M;
        return largeTop_ * mem::pageSize;
    }

    std::uint64_t framesAllocated() const { return nextFrame_; }
    std::uint64_t framesTotal() const { return totalFrames_; }

  private:
    std::uint64_t totalFrames_;
    std::uint64_t nextFrame_ = 0;
    std::uint64_t largeTop_ = 0;
    bool scramble_;
};

} // namespace gpuwalk::vm

#endif // GPUWALK_VM_FRAME_ALLOCATOR_HH
