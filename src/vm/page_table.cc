#include "vm/page_table.hh"

namespace gpuwalk::vm {

PageTable::PageTable(mem::BackingStore &store, FrameAllocator &frames)
    : store_(store), frames_(frames)
{
    root_ = frames_.allocateFrame();
    ++tablePages_;
    // Frames from the backing store are zero-filled on first touch, so
    // the fresh root is already all-not-present.
}

mem::Addr
PageTable::ensureTable(mem::Addr slot)
{
    std::uint64_t entry = store_.read64(slot);
    if (entry & pte::present)
        return entry & pte::addrMask;

    mem::Addr table = frames_.allocateFrame();
    ++tablePages_;
    store_.write64(slot, (table & pte::addrMask) | pte::present
                             | pte::writable);
    return table;
}

void
PageTable::map(mem::Addr va, mem::Addr pa, bool writable)
{
    GPUWALK_ASSERT((va & (mem::pageSize - 1)) == 0, "unaligned va ", va);
    GPUWALK_ASSERT((pa & (mem::pageSize - 1)) == 0, "unaligned pa ", pa);

    mem::Addr pdpt = ensureTable(entrySlot(root_, va, PtLevel::Pml4));
    mem::Addr pd = ensureTable(entrySlot(pdpt, va, PtLevel::Pdpt));
    mem::Addr pt = ensureTable(entrySlot(pd, va, PtLevel::Pd));

    std::uint64_t leaf = (pa & pte::addrMask) | pte::present;
    if (writable)
        leaf |= pte::writable;
    const mem::Addr slot = entrySlot(pt, va, PtLevel::Pt);
    if ((store_.read64(slot) & pte::present) == 0)
        ++mappings_;
    store_.write64(slot, leaf);
}

void
PageTable::mapLarge(mem::Addr va, mem::Addr pa, bool writable)
{
    GPUWALK_ASSERT((va & largePageMask) == 0, "unaligned 2MB va ", va);
    GPUWALK_ASSERT((pa & largePageMask) == 0, "unaligned 2MB pa ", pa);

    mem::Addr pdpt = ensureTable(entrySlot(root_, va, PtLevel::Pml4));
    mem::Addr pd = ensureTable(entrySlot(pdpt, va, PtLevel::Pdpt));

    const mem::Addr slot = entrySlot(pd, va, PtLevel::Pd);
    const std::uint64_t old = store_.read64(slot);
    GPUWALK_ASSERT(!(old & pte::present) || (old & pte::pageSize),
                   "2MB mapping over existing 4KB subtree at ", va);

    std::uint64_t leaf =
        (pa & pte::addrMask2M) | pte::present | pte::pageSize;
    if (writable)
        leaf |= pte::writable;
    if (!(old & pte::present))
        ++mappings_;
    store_.write64(slot, leaf);
}

void
PageTable::unmap(mem::Addr va)
{
    GPUWALK_ASSERT((va & (mem::pageSize - 1)) == 0, "unaligned va ", va);
    const auto slot = entryAddress(va, PtLevel::Pt);
    GPUWALK_ASSERT(slot.has_value(),
                   "unmap of va ", va, " without a PT level");
    const std::uint64_t leaf = store_.read64(*slot);
    GPUWALK_ASSERT(leaf & pte::present, "unmap of non-present va ", va);
    store_.write64(*slot, 0);
    --mappings_;
}

std::uint64_t
PageTable::promoteToLarge(mem::Addr va, mem::Addr pa)
{
    GPUWALK_ASSERT((pa & largePageMask) == 0, "unaligned 2MB pa ", pa);
    const mem::Addr base = va & ~largePageMask;
    const auto slot = entryAddress(base, PtLevel::Pd);
    GPUWALK_ASSERT(slot.has_value(),
                   "promotion of va ", va, " without a PD level");
    const std::uint64_t old = store_.read64(*slot);
    GPUWALK_ASSERT((old & pte::present) && !(old & pte::pageSize),
                   "promotion needs a present PT pointer at ", base);
    store_.write64(*slot, (pa & pte::addrMask2M) | pte::present
                              | pte::writable | pte::pageSize);
    return old;
}

void
PageTable::demoteFromLarge(mem::Addr va, std::uint64_t saved_pd_entry)
{
    const mem::Addr base = va & ~largePageMask;
    // entryAddress() stops at a PS-bit leaf, so locate the PD slot by
    // walking the upper two levels directly.
    mem::Addr table = root_;
    for (unsigned l = numPtLevels; l > 2; --l) {
        const std::uint64_t entry =
            store_.read64(entrySlot(table, base, PtLevel{l}));
        GPUWALK_ASSERT(entry & pte::present,
                       "demotion of va ", va, " without upper levels");
        table = entry & pte::addrMask;
    }
    const mem::Addr slot = entrySlot(table, base, PtLevel::Pd);
    const std::uint64_t old = store_.read64(slot);
    GPUWALK_ASSERT((old & pte::present) && (old & pte::pageSize),
                   "demotion of a non-promoted range at ", base);
    GPUWALK_ASSERT((saved_pd_entry & pte::present)
                       && !(saved_pd_entry & pte::pageSize),
                   "demotion needs the saved PT pointer for ", base);
    store_.write64(slot, saved_pd_entry);
}

std::optional<mem::Addr>
translateFrom(const mem::BackingStore &store, mem::Addr root,
              mem::Addr va)
{
    mem::Addr table = root;
    for (unsigned level = numPtLevels; level >= 1; --level) {
        const mem::Addr slot =
            table + std::uint64_t(PageTable::indexAt(va,
                                                     PtLevel{level}))
                        * 8;
        const std::uint64_t entry = store.read64(slot);
        if (!(entry & pte::present))
            return std::nullopt;
        if (level == 2 && (entry & pte::pageSize)) {
            // 2 MB leaf at the PD level.
            return (entry & pte::addrMask2M) | (va & largePageMask);
        }
        table = entry & pte::addrMask;
    }
    return table | (va & (mem::pageSize - 1));
}

std::optional<mem::Addr>
PageTable::translate(mem::Addr va) const
{
    return translateFrom(store_, root_, va);
}

std::optional<mem::Addr>
PageTable::entryAddress(mem::Addr va, PtLevel level) const
{
    mem::Addr table = root_;
    for (unsigned l = numPtLevels; l > static_cast<unsigned>(level); --l) {
        const std::uint64_t entry =
            store_.read64(entrySlot(table, va, PtLevel{l}));
        if (!(entry & pte::present))
            return std::nullopt;
        if (l == 2 && (entry & pte::pageSize))
            return std::nullopt; // 2MB leaf: no deeper level exists
        table = entry & pte::addrMask;
    }
    return entrySlot(table, va, level);
}

} // namespace gpuwalk::vm
