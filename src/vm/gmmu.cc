#include "vm/gmmu.hh"

#include <algorithm>

#include "sim/debug.hh"

namespace gpuwalk::vm {

namespace {

/** 64-bit words per 4 KB page (save/restore granularity). */
constexpr std::size_t wordsPerPage = mem::pageSize / 8;

/** 4 KB pages per 2 MB contiguity block. */
constexpr std::uint64_t pagesPer2M = largePageSize / mem::pageSize;

} // namespace

const char *
toString(FaultOrder order)
{
    switch (order) {
    case FaultOrder::Fcfs: return "fcfs";
    case FaultOrder::Sjf: return "sjf";
    }
    return "?";
}

const char *
toString(EvictPolicy policy)
{
    switch (policy) {
    case EvictPolicy::Lru: return "lru";
    case EvictPolicy::Random: return "random";
    }
    return "?";
}

const std::vector<std::uint64_t> &
faultLatencyBucketBounds()
{
    // Power-of-two buckets from 256K ticks: a single-fault service is
    // faultLatency + migrationLatency (~2.4M at defaults); queueing
    // behind batches pushes the tail out by multiples of that.
    static const std::vector<std::uint64_t> bounds{
        1ull << 18, 1ull << 19, 1ull << 20, 1ull << 21,
        1ull << 22, 1ull << 23, 1ull << 24, 1ull << 25,
    };
    return bounds;
}

Gmmu::Gmmu(sim::EventQueue &eq, const GmmuConfig &cfg,
           FrameAllocator &frames, mem::BackingStore &store)
    : eq_(eq), cfg_(cfg), frames_(frames), store_(store),
      rng_(cfg.evictSeed),
      latencyHist_("gmmu_fault_latency",
                   "far fault raise-to-service latency",
                   faultLatencyBucketBounds()),
      latencyAvg_("gmmu_fault_latency_avg",
                  "mean far fault latency (ticks)")
{
    GPUWALK_ASSERT(cfg_.batchSize > 0, "gmmu batch size must be > 0");
    GPUWALK_ASSERT(cfg_.oversubscription > 0.0,
                   "oversubscription ratio must be positive");
}

void
Gmmu::registerSpace(ContextId ctx, AddressSpace &space)
{
    if (spaces_.size() <= ctx)
        spaces_.resize(ctx + 1, nullptr);
    spaces_[ctx] = &space;
}

void
Gmmu::setFrameCap(std::uint64_t cap)
{
    GPUWALK_ASSERT(cap > 0, "frame cap must be positive");
    frameCap_ = cap;
}

void
Gmmu::setServiceCallback(ServiceCallback cb)
{
    serviceCallback_ = std::move(cb);
}

void
Gmmu::setEvictCallback(EvictCallback cb)
{
    evictCallback_ = std::move(cb);
}

PageTable &
Gmmu::pageTableOf(ContextId ctx)
{
    GPUWALK_ASSERT(ctx < spaces_.size() && spaces_[ctx],
                   "no address space registered for ctx ", ctx);
    return spaces_[ctx]->pageTable();
}

void
Gmmu::raiseFault(ContextId ctx, mem::Addr va_page)
{
    const std::uint64_t key = keyOf(ctx, va_page);
    GPUWALK_ASSERT(residentMap_.count(key) == 0,
                   "fault raised for resident page ", va_page);
    for (const auto &f : pending_)
        GPUWALK_ASSERT(f.key != key, "duplicate fault raise for page ",
                       va_page, " (walks must coalesce)");

    PendingFault fault;
    fault.key = key;
    fault.raised = eq_.now();
    fault.seq = nextFaultSeq_++;
    pending_.push_back(fault);
    ++faultsRaised_;
    sim::debug::log("gmmu", eq_.now(), "fault raised ctx=", ctx,
                    " va=", std::hex, va_page, std::dec, " pending=",
                    pending_.size());
    maybeStartBatch();
}

void
Gmmu::noteWaiter(ContextId ctx, mem::Addr va_page)
{
    const std::uint64_t key = keyOf(ctx, va_page);
    ++faultsCoalesced_;
    for (auto &f : pending_) {
        if (f.key == key) {
            ++f.waiters;
            return;
        }
    }
    // No pending fault (possible only after an injected drop): the
    // coalesced count still records the joined walk.
}

void
Gmmu::pin(ContextId ctx, mem::Addr va_page)
{
    ++pins_[keyOf(ctx, va_page)];
}

void
Gmmu::unpin(ContextId ctx, mem::Addr va_page)
{
    const auto it = pins_.find(keyOf(ctx, va_page));
    GPUWALK_ASSERT(it != pins_.end() && it->second > 0,
                   "unpin of unpinned page ", va_page);
    if (--it->second == 0)
        pins_.erase(it);
}

void
Gmmu::touch(ContextId ctx, mem::Addr va_page)
{
    const auto it = residentMap_.find(keyOf(ctx, va_page));
    if (it == residentMap_.end())
        return;
    lru_.splice(lru_.end(), lru_, it->second.lruIt);
}

bool
Gmmu::isResident(ContextId ctx, mem::Addr va_page) const
{
    return residentMap_.count(keyOf(ctx, va_page)) != 0;
}

void
Gmmu::maybeStartBatch()
{
    if (busy_ || pending_.empty())
        return;
    busy_ = true;
    ++batches_;
    // The host interrupt + runtime cost is paid up front, once per
    // batch; the batch membership is decided when the host actually
    // looks (beginBatch), so faults raised during the interrupt
    // latency still catch this round trip.
    eq_.scheduleIn(cfg_.faultLatency, [this] { beginBatch(); });
}

void
Gmmu::beginBatch()
{
    GPUWALK_ASSERT(busy_ && !pending_.empty(),
                   "batch began with no pending faults");
    std::vector<std::size_t> order(pending_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (cfg_.order == FaultOrder::Sjf) {
        std::stable_sort(order.begin(), order.end(),
                         [this](std::size_t a, std::size_t b) {
                             const auto &fa = pending_[a];
                             const auto &fb = pending_[b];
                             if (fa.waiters != fb.waiters)
                                 return fa.waiters > fb.waiters;
                             return fa.seq < fb.seq;
                         });
    }
    // Fcfs needs no sort: pending_ is already in raise order.

    batch_.clear();
    batchPos_ = 0;
    for (std::size_t i = 0;
         i < order.size() && batch_.size() < cfg_.batchSize; ++i) {
        auto &fault = pending_[order[i]];
        fault.inService = true;
        batch_.push_back(fault.key);
    }
    serviceNext();
}

void
Gmmu::serviceNext()
{
    if (batchPos_ >= batch_.size()) {
        busy_ = false;
        batch_.clear();
        batchPos_ = 0;
        maybeStartBatch();
        return;
    }
    eq_.scheduleIn(cfg_.migrationLatency, [this] { completeFront(); });
}

void
Gmmu::completeFront()
{
    const std::uint64_t key = batch_[batchPos_];
    if (!ensureCapacity()) {
        // Every resident page is pinned by an in-flight walk: those
        // walks complete independently of the fault path, so retry
        // after their pins have had a chance to drain.
        ++serviceRetries_;
        eq_.scheduleIn(cfg_.migrationLatency,
                       [this] { completeFront(); });
        return;
    }

    placePage(key);

    const auto it = std::find_if(
        pending_.begin(), pending_.end(),
        [key](const PendingFault &f) { return f.key == key; });
    GPUWALK_ASSERT(it != pending_.end(), "serviced fault not pending");
    const sim::Tick raised = it->raised;
    pending_.erase(it);
    ++batchPos_;

    if (testFaults_.dropFirstService && !droppedOne_) {
        // The completion notification is lost: the page is mapped but
        // the fault is forgotten — neither counted as serviced nor
        // reported to the IOMMU, whose parked walks never release.
        droppedOne_ = true;
    } else {
        ++faultsServiced_;
        const sim::Tick latency = eq_.now() - raised;
        latencyHist_.sample(latency);
        latencyAvg_.sample(static_cast<double>(latency));
        if (serviceCallback_)
            serviceCallback_(ctxOf(key), pageOf(key));
    }
    serviceNext();
}

bool
Gmmu::ensureCapacity()
{
    while (residentMap_.size() >= frameCap_) {
        const auto victim = pickVictim();
        if (!victim)
            return false;
        evict(*victim);
    }
    return true;
}

std::optional<std::uint64_t>
Gmmu::pickVictim()
{
    if (testFaults_.evictPinned) {
        for (const std::uint64_t key : lru_) {
            if (pinned(key))
                return key;
        }
    }
    if (cfg_.evict == EvictPolicy::Random) {
        if (denseKeys_.empty())
            return std::nullopt;
        const std::size_t n = denseKeys_.size();
        const std::size_t start =
            static_cast<std::size_t>(rng_.below(n));
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t key = denseKeys_[(start + i) % n];
            if (!pinned(key))
                return key;
        }
        return std::nullopt;
    }
    for (const std::uint64_t key : lru_) {
        if (!pinned(key))
            return key;
    }
    return std::nullopt;
}

void
Gmmu::evict(std::uint64_t key)
{
    const auto it = residentMap_.find(key);
    GPUWALK_ASSERT(it != residentMap_.end(),
                   "eviction of non-resident page");
    const ResidentInfo info = it->second;
    const ContextId ctx = ctxOf(key);
    const mem::Addr page = pageOf(key);

    if (pinned(key))
        ++pinnedEvictions_; // only reachable via TestFaults

    // A promoted 2 MB range must fall back to its 4 KB leaves before
    // one of them can go non-present.
    const std::uint64_t rk = regionKeyOf(ctx, page);
    const auto rit = regions_.find(rk);
    if (rit != regions_.end() && rit->second.promoted) {
        pageTableOf(ctx).demoteFromLarge(page,
                                         rit->second.savedPdEntry);
        rit->second.promoted = false;
        ++demotions_;
    }

    // Save the device frame's functional content to the host side and
    // scrub the frame (it will back a different page next). Frames the
    // workload never wrote are implicitly zero and need no copy.
    if (store_.contains(info.pa)) {
        auto &words = hostCopy_[key];
        words.resize(wordsPerPage);
        for (std::size_t i = 0; i < wordsPerPage; ++i) {
            words[i] = store_.read64(info.pa + 8 * i);
            store_.write64(info.pa + 8 * i, 0);
        }
    }

    pageTableOf(ctx).unmap(page);
    if (evictCallback_)
        evictCallback_(ctx, page);

    lru_.erase(info.lruIt);
    const std::size_t last = denseKeys_.size() - 1;
    if (info.denseIdx != last) {
        denseKeys_[info.denseIdx] = denseKeys_[last];
        residentMap_[denseKeys_[last]].denseIdx = info.denseIdx;
    }
    denseKeys_.pop_back();
    residentMap_.erase(it);
    ++pagesEvicted_;
    sim::debug::log("gmmu", eq_.now(), "evicted ctx=", ctx, " va=",
                    std::hex, page, " pa=", info.pa, std::dec);

    if (testFaults_.leakFrameOnEvict)
        return; // frame bookkeeping forgotten

    --residentPages_;
    if (info.fromBlock) {
        GPUWALK_ASSERT(rit != regions_.end() && rit->second.resident > 0,
                       "block eviction without region accounting");
        --rit->second.resident;
    } else {
        --resident4k_;
        freeFrames_.push_back(info.pa);
    }
}

void
Gmmu::placePage(std::uint64_t key)
{
    const ContextId ctx = ctxOf(key);
    const mem::Addr page = pageOf(key);

    mem::Addr pa = 0;
    bool fromBlock = false;
    RegionInfo *region = nullptr;
    if (cfg_.contiguity) {
        region = &regions_[regionKeyOf(ctx, page)];
        if (!region->tried) {
            region->tried = true;
            region->base2M =
                frames_.tryAllocateLargeFrame().value_or(0);
        }
        if (region->base2M != 0) {
            // Natural offset inside the block: the VA->PA function of
            // the range is stable across evict/re-fault round trips.
            pa = region->base2M + (page & largePageMask);
            fromBlock = true;
        }
    }
    if (!fromBlock) {
        if (!freeFrames_.empty()) {
            pa = freeFrames_.back();
            freeFrames_.pop_back();
        } else {
            pa = frames_.allocateFrame();
            ++frames4kTaken_;
        }
        ++resident4k_;
    }

    // Restore content saved at eviction time.
    const auto hit = hostCopy_.find(key);
    if (hit != hostCopy_.end()) {
        for (std::size_t i = 0; i < wordsPerPage; ++i)
            store_.write64(pa + 8 * i, hit->second[i]);
        hostCopy_.erase(hit);
    }

    pageTableOf(ctx).map(page, pa);

    lru_.push_back(key);
    ResidentInfo info;
    info.pa = pa;
    info.lruIt = std::prev(lru_.end());
    info.denseIdx = denseKeys_.size();
    info.fromBlock = fromBlock;
    denseKeys_.push_back(key);
    residentMap_.emplace(key, info);
    ++residentPages_;
    residentPeak_ = std::max(residentPeak_, residentPages_);
    ++pagesMigrated_;

    if (fromBlock) {
        ++region->resident;
        if (region->resident == pagesPer2M && !region->promoted) {
            region->savedPdEntry =
                pageTableOf(ctx).promoteToLarge(page, region->base2M);
            region->promoted = true;
            ++promotions_;
        }
    }
}

void
Gmmu::registerInvariants(sim::Auditor &auditor)
{
    auditor.registerInvariant(
        "gmmu.fault_conservation", [this](sim::AuditContext &ctx) {
            const std::uint64_t pending = pending_.size();
            ctx.require(faultsRaised_ == faultsServiced_ + pending,
                        faultsRaised_, " faults raised but ",
                        faultsServiced_, " serviced + ", pending,
                        " pending");
            if (ctx.final()) {
                ctx.require(pending == 0, pending,
                            " faults still pending at teardown");
            }
        });

    auditor.registerInvariant(
        "gmmu.residency_cap", [this](sim::AuditContext &ctx) {
            ctx.require(residentMap_.size() <= frameCap_,
                        residentMap_.size(),
                        " resident pages exceed the frame cap of ",
                        frameCap_);
        });

    auditor.registerInvariant(
        "gmmu.no_pinned_eviction", [this](sim::AuditContext &ctx) {
            ctx.require(pinnedEvictions_ == 0, pinnedEvictions_,
                        " pages evicted while an in-flight walk "
                        "pinned them");
            if (ctx.final()) {
                ctx.require(pins_.empty(), pins_.size(),
                            " pages still pinned after the drain");
            }
        });

    auditor.registerInvariant(
        "gmmu.frame_accounting", [this](sim::AuditContext &ctx) {
            ctx.require(residentPages_ == residentMap_.size(),
                        "resident counter ", residentPages_,
                        " disagrees with the resident set of ",
                        residentMap_.size());
            ctx.require(lru_.size() == residentMap_.size()
                            && denseKeys_.size() == residentMap_.size(),
                        "LRU list or victim index out of step with "
                        "the resident set");
            std::uint64_t fromBlocks = 0;
            for (const auto &[rk, region] : regions_)
                fromBlocks += region.resident;
            ctx.require(fromBlocks + resident4k_ == residentPages_,
                        "block-resident ", fromBlocks, " + 4K-resident ",
                        resident4k_, " != resident ", residentPages_);
            ctx.require(frames4kTaken_
                            == resident4k_ + freeFrames_.size(),
                        frames4kTaken_, " 4K frames taken but ",
                        resident4k_, " resident + ",
                        freeFrames_.size(), " free");
        });
}

GmmuSummary
Gmmu::summarize() const
{
    GmmuSummary s;
    s.enabled = true;
    s.frameCap = frameCap_;
    s.residentPeak = residentPeak_;
    s.residentFinal = residentMap_.size();
    s.faultsRaised = faultsRaised_;
    s.faultsServiced = faultsServiced_;
    s.faultsCoalesced = faultsCoalesced_;
    s.batches = batches_;
    s.pagesMigrated = pagesMigrated_;
    s.pagesEvicted = pagesEvicted_;
    s.promotions = promotions_;
    s.demotions = demotions_;
    s.serviceRetries = serviceRetries_;
    s.pinnedEvictions = pinnedEvictions_;
    s.latencyBucketCounts.resize(latencyHist_.buckets());
    for (std::size_t i = 0; i < latencyHist_.buckets(); ++i)
        s.latencyBucketCounts[i] = latencyHist_.bucketCount(i);
    s.latencySamples = latencyHist_.total();
    s.latencyAvg = latencyAvg_.mean();
    return s;
}

} // namespace gpuwalk::vm
