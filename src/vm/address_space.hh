/**
 * @file
 * A process-like virtual address space for GPU workloads.
 *
 * Workload generators allocate named buffers; the address space lays
 * them out in virtual memory and eagerly maps every page through the
 * shared x86-64 page table. Under the GMMU's demand-paging mode
 * (vm/gmmu.hh) the eager mapping is skipped: regions are laid out but
 * left non-present, and pages fault in on first touch by a walker.
 */

#ifndef GPUWALK_VM_ADDRESS_SPACE_HH
#define GPUWALK_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/page_table.hh"

namespace gpuwalk::vm {

/** A named, contiguous virtual buffer. */
struct VaRegion
{
    std::string name;
    mem::Addr base = 0;
    mem::Addr bytes = 0;

    mem::Addr end() const { return base + bytes; }
};

/** Virtual address space with eager page-table population. */
class AddressSpace
{
  public:
    /**
     * @param store Functional memory holding the page tables.
     * @param frames Physical allocator shared with the page table.
     * @param base First virtual address handed out.
     */
    AddressSpace(mem::BackingStore &store, FrameAllocator &frames,
                 mem::Addr base = mem::Addr(1) << 32)
        : pageTable_(store, frames), frames_(frames), nextVa_(base)
    {}

    /**
     * Selects the page size used for subsequent allocations. With
     * large pages, regions are 2 MB-aligned and mapped with PS-bit
     * PD-level leaves (the paper's §VI discussion point).
     */
    void useLargePages(bool enable) { largePages_ = enable; }
    bool largePagesEnabled() const { return largePages_; }

    /**
     * Demand-paging mode: allocate() lays out regions without mapping
     * any page; the GMMU maps pages on far faults instead. Large pages
     * are incompatible (2 MB coverage comes from GMMU promotion).
     */
    void
    setDemandPaging(bool enable)
    {
        GPUWALK_ASSERT(!enable || !largePages_,
                       "demand paging excludes eager large pages");
        demandPaging_ = enable;
    }
    bool demandPaged() const { return demandPaging_; }

    /**
     * Allocates @p bytes of virtual memory (rounded up to whole
     * pages — 4 KB or 2 MB depending on the page-size policy) and
     * maps every page to fresh physical frames.
     * @return the region descriptor.
     */
    VaRegion
    allocate(const std::string &name, mem::Addr bytes)
    {
        const mem::Addr granule = largePages_ ? largePageSize
                                              : mem::pageSize;
        nextVa_ = (nextVa_ + granule - 1) & ~(granule - 1);
        const mem::Addr size = (bytes + granule - 1) & ~(granule - 1);
        VaRegion region{name, nextVa_, size};
        // Leave an unmapped guard page between regions so workload bugs
        // surface as translation failures rather than silent overlap.
        nextVa_ += size + granule;

        if (!demandPaging_) {
            for (mem::Addr va = region.base; va < region.end();
                 va += granule) {
                if (largePages_) {
                    pageTable_.mapLarge(va,
                                        frames_.allocateLargeFrame());
                } else {
                    pageTable_.map(va, frames_.allocateFrame());
                }
            }
        }
        regions_.push_back(region);
        return region;
    }

    /**
     * Maps the page containing @p va if it is not mapped yet
     * (honouring the page-size policy). Used when replaying external
     * traces whose regions were never allocated through allocate().
     */
    void
    ensureMapped(mem::Addr va)
    {
        if (pageTable_.translate(va).has_value())
            return;
        if (largePages_) {
            pageTable_.mapLarge(va & ~largePageMask,
                                frames_.allocateLargeFrame());
        } else {
            pageTable_.map(mem::pageAlign(va),
                           frames_.allocateFrame());
        }
    }

    /** The backing page table (shared CPU/GPU table in the paper). */
    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }

    /** All regions allocated so far. */
    const std::vector<VaRegion> &regions() const { return regions_; }

    /** Total mapped bytes (the workload's memory footprint). */
    mem::Addr
    footprintBytes() const
    {
        mem::Addr total = 0;
        for (const auto &r : regions_)
            total += r.bytes;
        return total;
    }

  private:
    PageTable pageTable_;
    FrameAllocator &frames_;
    mem::Addr nextVa_;
    bool largePages_ = false;
    bool demandPaging_ = false;
    std::vector<VaRegion> regions_;
};

} // namespace gpuwalk::vm

#endif // GPUWALK_VM_ADDRESS_SPACE_HH
