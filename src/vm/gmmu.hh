/**
 * @file
 * GPU memory management unit: far faults, migration, oversubscription.
 *
 * Under demand paging, workload pages start non-present and a page
 * table walk that reaches a non-present entry raises a far fault (the
 * terminology of the CPU-side IOMMU literature: the faulting agent is
 * far from the OS that can repair the mapping). The Gmmu models the
 * repair path: a host-interrupt + runtime cost paid once per batch of
 * faults, a per-page migration cost over the CPU-GPU link, and — once
 * an oversubscription ratio caps the resident frame count — LRU or
 * random eviction of victim pages back to the host.
 *
 * Allocation is Mosaic-style contiguity-aware: the first fault in a
 * 2 MB virtual range opportunistically reserves a 2 MB-aligned block
 * of physical frames, later faults in the range land at their natural
 * offsets, and a fully-resident range is promoted to a single PS-bit
 * PD-level mapping (demoted again before any of its pages is evicted).
 * Because the promoted translation equals the per-page translations,
 * promotion changes walk timing (one fewer level) without changing
 * the translation function.
 *
 * The Gmmu never touches IOMMU types: the IOMMU attaches callbacks
 * for fault-service completion and eviction notification, and refers
 * to address spaces by the same numeric context id it uses for ASIDs.
 */

#ifndef GPUWALK_VM_GMMU_HH
#define GPUWALK_VM_GMMU_HH

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/audit.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"

namespace gpuwalk::vm {

/** Order in which a service batch drains pending faults. */
enum class FaultOrder : std::uint8_t
{
    Fcfs, ///< raise order
    /** Shortest-effective-job first: all migrations cost the same, so
     *  the shortest job per walk released is the fault with the most
     *  parked walks behind it — the GMMU analogue of the walk
     *  scheduler's SJF rule (raise order breaks ties). */
    Sjf,
};

/** Victim selection once the resident-frame cap is hit. */
enum class EvictPolicy : std::uint8_t
{
    Lru,
    Random, ///< seeded; deterministic across runs and sim-threads
};

const char *toString(FaultOrder order);
const char *toString(EvictPolicy policy);

/** Gmmu configuration (surfaced as --oversubscription etc.). */
struct GmmuConfig
{
    bool enabled = false;

    /** Resident-frame cap as a fraction of the workload footprint;
     *  1.0 = everything fits (but still demand-faults in). */
    double oversubscription = 1.0;

    /** Host interrupt + runtime handling cost, paid once per service
     *  batch (ticks). */
    sim::Tick faultLatency = 2'000'000;

    /** Per-page transfer cost over the CPU-GPU link (ticks). */
    sim::Tick migrationLatency = 400'000;

    /** Max faults serviced per host round trip. */
    unsigned batchSize = 8;

    FaultOrder order = FaultOrder::Fcfs;
    EvictPolicy evict = EvictPolicy::Lru;

    /** Seed for EvictPolicy::Random victim selection. */
    std::uint64_t evictSeed = 12345;

    /** Mosaic-style 2 MB reservation + promotion. */
    bool contiguity = true;
};

/** Bucket bounds (ticks) of the fault service latency histogram. */
const std::vector<std::uint64_t> &faultLatencyBucketBounds();

/** Snapshot of Gmmu counters for RunStats / report JSON. */
struct GmmuSummary
{
    bool enabled = false;
    std::uint64_t frameCap = 0;
    std::uint64_t residentPeak = 0;
    std::uint64_t residentFinal = 0;
    std::uint64_t faultsRaised = 0;
    std::uint64_t faultsServiced = 0;
    std::uint64_t faultsCoalesced = 0;
    std::uint64_t batches = 0;
    std::uint64_t pagesMigrated = 0;
    std::uint64_t pagesEvicted = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t serviceRetries = 0;
    std::uint64_t pinnedEvictions = 0;

    /** Raise-to-service latency distribution
     *  (bounds from faultLatencyBucketBounds()). */
    std::vector<std::uint64_t> latencyBucketCounts;
    std::uint64_t latencySamples = 0;
    double latencyAvg = 0.0;
};

/** Far-fault servicing, migration and eviction engine. */
class Gmmu
{
  public:
    /** Numeric ASID; mirrors tlb::ContextId without the dependency. */
    using ContextId = std::uint16_t;

    /** Notifies the IOMMU that the fault for (ctx, page) is repaired. */
    using ServiceCallback = std::function<void(ContextId, mem::Addr)>;

    /** Notifies the IOMMU that (ctx, page) was evicted (TLB shootdown). */
    using EvictCallback = std::function<void(ContextId, mem::Addr)>;

    /** Targeted faults for audit-coverage tests (tests/test_audit.cc):
     *  each breaks exactly one registered invariant. */
    struct TestFaults
    {
        /** Lose the first fault-service completion: the page is mapped
         *  but the fault is forgotten (breaks gmmu.fault_conservation,
         *  and the IOMMU's parked walks never release). */
        bool dropFirstService = false;
        /** Forget frame bookkeeping on eviction
         *  (breaks gmmu.frame_accounting). */
        bool leakFrameOnEvict = false;
        /** Prefer pinned pages as eviction victims
         *  (breaks gmmu.no_pinned_eviction). */
        bool evictPinned = false;
    };

    /**
     * @param eq Event queue the Gmmu schedules on. For determinism
     *        under the parallel executor this must be the IOMMU
     *        domain's queue: every fault is raised from that domain.
     * @param cfg Knobs (latencies, policies, contiguity).
     * @param frames Physical allocator shared with the page tables.
     * @param store Functional memory (evicted frames are saved to a
     *        host-side copy and scrubbed, so content round-trips).
     */
    Gmmu(sim::EventQueue &eq, const GmmuConfig &cfg,
         FrameAllocator &frames, mem::BackingStore &store);

    /** Registers the address space faults for @p ctx repair into. */
    void registerSpace(ContextId ctx, AddressSpace &space);

    /** Caps resident frames (pages); defaults to unlimited. */
    void setFrameCap(std::uint64_t cap);
    std::uint64_t frameCap() const { return frameCap_; }

    void setServiceCallback(ServiceCallback cb);
    void setEvictCallback(EvictCallback cb);
    void setTestFaults(TestFaults faults) { testFaults_ = faults; }

    /**
     * Raises a far fault for non-resident page @p va_page of @p ctx.
     * The caller coalesces: at most one raise per (ctx, page) may be
     * outstanding; further walks join via noteWaiter().
     */
    void raiseFault(ContextId ctx, mem::Addr va_page);

    /** Another walk parked behind an already-raised fault. */
    void noteWaiter(ContextId ctx, mem::Addr va_page);

    /** Pins @p va_page against eviction while a walk is in flight.
     *  Pins nest and apply to non-resident pages too (the page stays
     *  pinned through its fault service). */
    void pin(ContextId ctx, mem::Addr va_page);
    void unpin(ContextId ctx, mem::Addr va_page);

    /** LRU touch at walk completion. */
    void touch(ContextId ctx, mem::Addr va_page);

    bool isResident(ContextId ctx, mem::Addr va_page) const;

    std::uint64_t residentPages() const { return residentMap_.size(); }
    std::uint64_t residentPeak() const { return residentPeak_; }
    std::uint64_t pendingFaults() const { return pending_.size(); }
    std::uint64_t faultsRaised() const { return faultsRaised_; }
    std::uint64_t faultsServiced() const { return faultsServiced_; }
    std::uint64_t faultsCoalesced() const { return faultsCoalesced_; }
    std::uint64_t pagesEvicted() const { return pagesEvicted_; }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t demotions() const { return demotions_; }
    std::uint64_t pinnedPages() const { return pins_.size(); }

    /**
     * Registers the Gmmu's conservation invariants:
     *  - gmmu.fault_conservation: raised == serviced + pending
     *    (final: pending == 0)
     *  - gmmu.residency_cap: resident pages <= frame cap
     *  - gmmu.no_pinned_eviction: no page with an in-flight walk was
     *    ever evicted (final: no pins survive the drain)
     *  - gmmu.frame_accounting: resident counters, LRU list, victim
     *    index and free list agree
     */
    void registerInvariants(sim::Auditor &auditor);

    GmmuSummary summarize() const;

  private:
    /** (ctx, page) key: mem::pageCtxKey — page number in the high
     *  bits, the full 16-bit ctx in the low 16. The previous
     *  va_page | ctx packing aliased ASIDs >= 4096 into VA bit 12+,
     *  silently sharing residency/pin/fault state across tenants. */
    static std::uint64_t
    keyOf(ContextId ctx, mem::Addr va_page)
    {
        GPUWALK_ASSERT((va_page & (mem::pageSize - 1)) == 0,
                       "unaligned fault page ", va_page);
        return mem::pageCtxKey(ctx, va_page);
    }
    static ContextId
    ctxOf(std::uint64_t key)
    {
        return mem::ctxOfKey(key);
    }
    static mem::Addr
    pageOf(std::uint64_t key)
    {
        return mem::pageOfKey(key);
    }
    /** (ctx, 2 MB range) key, same encoding at 2 MB granularity. */
    static std::uint64_t
    regionKeyOf(ContextId ctx, mem::Addr va_page)
    {
        return mem::pageCtxKey(ctx, va_page & ~largePageMask);
    }

    struct PendingFault
    {
        std::uint64_t key = 0;
        sim::Tick raised = 0;
        std::uint64_t seq = 0;   ///< raise order
        std::uint64_t waiters = 1;
        bool inService = false;
    };

    struct ResidentInfo
    {
        mem::Addr pa = 0;
        std::list<std::uint64_t>::iterator lruIt;
        std::size_t denseIdx = 0;
        bool fromBlock = false; ///< placed in a 2 MB contiguity block
    };

    /** One 2 MB virtual range's contiguity reservation. */
    struct RegionInfo
    {
        bool tried = false;     ///< reservation attempted
        mem::Addr base2M = 0;   ///< 0 = no block (fallback to 4 KB)
        std::uint64_t resident = 0;
        bool promoted = false;
        std::uint64_t savedPdEntry = 0;
    };

    PageTable &pageTableOf(ContextId ctx);

    bool pinned(std::uint64_t key) const { return pins_.count(key) != 0; }

    void maybeStartBatch();
    void beginBatch();
    void serviceNext();
    void completeFront();

    /** Evicts until a frame is available; false if every resident
     *  page is pinned (caller retries after pins drain). */
    bool ensureCapacity();
    std::optional<std::uint64_t> pickVictim();
    void evict(std::uint64_t key);

    /** Maps the faulted page, restoring saved content. */
    void placePage(std::uint64_t key);

    sim::EventQueue &eq_;
    GmmuConfig cfg_;
    FrameAllocator &frames_;
    mem::BackingStore &store_;
    std::vector<AddressSpace *> spaces_;

    ServiceCallback serviceCallback_;
    EvictCallback evictCallback_;
    TestFaults testFaults_;
    bool droppedOne_ = false;

    std::uint64_t frameCap_ = ~std::uint64_t(0);

    std::vector<PendingFault> pending_; ///< raise order
    std::uint64_t nextFaultSeq_ = 0;
    bool busy_ = false;                ///< a batch is in service
    std::vector<std::uint64_t> batch_; ///< keys of the current batch
    std::size_t batchPos_ = 0;

    std::map<std::uint64_t, ResidentInfo> residentMap_;
    std::list<std::uint64_t> lru_;          ///< front = coldest
    std::vector<std::uint64_t> denseKeys_;  ///< random-victim index
    std::map<std::uint64_t, std::uint32_t> pins_;
    std::map<std::uint64_t, RegionInfo> regions_;
    std::map<std::uint64_t, std::vector<std::uint64_t>> hostCopy_;
    std::vector<mem::Addr> freeFrames_; ///< recycled 4 KB frames
    sim::Rng rng_;

    std::uint64_t residentPages_ = 0; ///< mirrors residentMap_.size()
    std::uint64_t resident4k_ = 0;    ///< resident via 4 KB frames
    std::uint64_t frames4kTaken_ = 0; ///< 4 KB frames from the bump pool
    std::uint64_t residentPeak_ = 0;
    std::uint64_t faultsRaised_ = 0;
    std::uint64_t faultsServiced_ = 0;
    std::uint64_t faultsCoalesced_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t pagesMigrated_ = 0;
    std::uint64_t pagesEvicted_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t serviceRetries_ = 0;
    std::uint64_t pinnedEvictions_ = 0;

    sim::Histogram latencyHist_;
    sim::Average latencyAvg_;
};

} // namespace gpuwalk::vm

#endif // GPUWALK_VM_GMMU_HH
