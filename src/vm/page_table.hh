/**
 * @file
 * A real 4-level x86-64 page table.
 *
 * Entries are 8-byte words written into the simulator's functional
 * BackingStore, so the IOMMU's page table walkers decode genuine PTE
 * bytes from genuine physical addresses — the walk path is functional
 * as well as timed, and each level's entry address is exactly what a
 * hardware walker would fetch.
 */

#ifndef GPUWALK_VM_PAGE_TABLE_HH
#define GPUWALK_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "mem/backing_store.hh"
#include "mem/types.hh"
#include "vm/frame_allocator.hh"

namespace gpuwalk::vm {

/**
 * Page table levels, numbered as in the paper's four-level radix tree.
 * Level 4 is the root (PML4); level 1 holds leaf PTEs.
 */
enum class PtLevel : unsigned
{
    Pml4 = 4,
    Pdpt = 3,
    Pd = 2,
    Pt = 1,
};

/** Number of radix levels in an x86-64 walk. */
constexpr unsigned numPtLevels = 4;

/** x86-64 PTE bits used by this model. */
namespace pte {
constexpr std::uint64_t present = 1ull << 0;
constexpr std::uint64_t writable = 1ull << 1;
/** PS bit: a PD-level entry maps a 2 MB page directly. */
constexpr std::uint64_t pageSize = 1ull << 7;
constexpr std::uint64_t addrMask = 0x000ffffffffff000ull;
/** Frame mask for a 2 MB leaf. */
constexpr std::uint64_t addrMask2M = 0x000fffffffe00000ull;
} // namespace pte

/** Size and mask of a 2 MB large page. */
constexpr mem::Addr largePageSize = mem::Addr(1) << 21;
constexpr mem::Addr largePageMask = largePageSize - 1;

/**
 * Functionally translates @p va by walking the table rooted at
 * @p root in @p store. Standalone so components that only know a
 * root physical address (e.g., the IOMMU's prefetcher) can probe
 * mappings without owning a PageTable object.
 */
std::optional<mem::Addr> translateFrom(const mem::BackingStore &store,
                                       mem::Addr root, mem::Addr va);

/** An OS-maintained x86-64 four-level page table. */
class PageTable
{
  public:
    /**
     * Creates an empty table: allocates and zeroes the root frame.
     */
    PageTable(mem::BackingStore &store, FrameAllocator &frames);

    /** Physical address of the root (PML4) table. */
    mem::Addr root() const { return root_; }

    /**
     * Maps virtual page @p va -> physical frame @p pa, creating any
     * missing intermediate tables. Both must be page aligned.
     */
    void map(mem::Addr va, mem::Addr pa, bool writable = true);

    /**
     * Maps a 2 MB large page: the PD-level entry becomes a leaf with
     * the PS bit set (paper §VI discussion). Both addresses must be
     * 2 MB aligned, and the region must not already hold 4 KB
     * mappings.
     */
    void mapLarge(mem::Addr va, mem::Addr pa, bool writable = true);

    /**
     * Removes the 4 KB leaf mapping for page @p va (demand-paging
     * eviction). Intermediate tables are kept: real OSes do not tear
     * down the radix tree per eviction either. @pre the page is mapped
     * with a 4 KB leaf (not a 2 MB PS-bit entry).
     */
    void unmap(mem::Addr va);

    /**
     * Mosaic-style promotion: replaces the PD-level pointer entry for
     * the fully-resident 2 MB range containing @p va with a PS-bit
     * leaf mapping @p pa. The underlying PT page (still holding the
     * 512 4 KB leaves) is kept alive so the promotion can be undone.
     * @return the replaced PD pointer entry, to hand back to
     *         demoteFromLarge().
     */
    std::uint64_t promoteToLarge(mem::Addr va, mem::Addr pa);

    /**
     * Undoes promoteToLarge(): restores @p saved_pd_entry (the PT
     * pointer) at the PD slot for @p va, making the 4 KB leaves
     * authoritative again ahead of an eviction from the range.
     */
    void demoteFromLarge(mem::Addr va, std::uint64_t saved_pd_entry);

    /**
     * Functional translation: returns the physical address for @p va,
     * or nullopt if unmapped. Accepts unaligned addresses.
     */
    std::optional<mem::Addr> translate(mem::Addr va) const;

    /**
     * Physical address of the page-table entry consulted at @p level
     * for @p va, following present entries from the root. Returns
     * nullopt if an upper level is not present yet. Used by the timing
     * walker to know which physical words its memory accesses touch.
     */
    std::optional<mem::Addr> entryAddress(mem::Addr va,
                                          PtLevel level) const;

    /** 9-bit table index of @p va at @p level. */
    static unsigned
    indexAt(mem::Addr va, PtLevel level)
    {
        const unsigned shift =
            12 + 9 * (static_cast<unsigned>(level) - 1);
        return static_cast<unsigned>((va >> shift) & 0x1ff);
    }

    /**
     * Base virtual address of the region covered by the entry used for
     * @p va at @p level (e.g., 2 MB granularity at the PD level).
     * This is the tag granularity of a page walk cache for that level.
     */
    static mem::Addr
    regionBase(mem::Addr va, PtLevel level)
    {
        const unsigned shift =
            12 + 9 * (static_cast<unsigned>(level) - 1);
        return va >> shift << shift;
    }

    /** Number of page-table pages allocated (all levels, incl. root). */
    std::uint64_t tablePages() const { return tablePages_; }

    /** Number of leaf mappings installed. */
    std::uint64_t mappings() const { return mappings_; }

  private:
    /** Reads the entry for @p va at @p level in table page @p table. */
    mem::Addr
    entrySlot(mem::Addr table, mem::Addr va, PtLevel level) const
    {
        return table + std::uint64_t(indexAt(va, level)) * 8;
    }

    /** Ensures the table at @p level below @p slot exists. */
    mem::Addr ensureTable(mem::Addr slot);

    mem::BackingStore &store_;
    FrameAllocator &frames_;
    mem::Addr root_ = 0;
    std::uint64_t tablePages_ = 0;
    std::uint64_t mappings_ = 0;
};

} // namespace gpuwalk::vm

#endif // GPUWALK_VM_PAGE_TABLE_HH
