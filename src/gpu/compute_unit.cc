#include "gpu/compute_unit.hh"

#include <algorithm>

#include "gpu/gpu.hh"
#include "sim/debug.hh"
#include "trace/trace.hh"

namespace gpuwalk::gpu {

ComputeUnit::ComputeUnit(sim::EventQueue &eq, const GpuConfig &cfg,
                         std::uint32_t cu_id, tlb::TlbHierarchy &tlbs,
                         mem::MemoryDevice &l1d, Gpu &gpu)
    : eq_(eq), cfg_(cfg), id_(cu_id), tlbs_(tlbs), l1d_(l1d), gpu_(gpu),
      issuePort_(eq, cfg.issuePortCycles * cfg.clockPeriod),
      arbiter_(cfg.wavefrontSched,
               cfg.wavefrontSched == WavefrontSchedPolicy::Wasp
                   ? std::min(cfg.waspLeaders, cfg.wavefrontsPerCu)
                   : 0),
      statGroup_("cu" + std::to_string(cu_id))
{
    statGroup_.add(instructions_);
    statGroup_.add(translationReqs_);
    statGroup_.add(lineAccesses_);
    if (cfg_.wavefrontSched == WavefrontSchedPolicy::Wasp)
        statGroup_.add(leaderIssues_);
}

void
ComputeUnit::addWavefront(std::uint32_t wavefront_global_id,
                          unsigned app_id, WavefrontTrace trace)
{
    GPUWALK_ASSERT(wavefronts_.size() < cfg_.wavefrontsPerCu,
                   "CU ", id_, " is full");
    Wavefront wf;
    wf.globalId = wavefront_global_id;
    wf.appId = app_id;
    wf.trace = std::move(trace);
    wavefronts_.push_back(std::move(wf));
    arbiter_.addSlot(wavefront_global_id);

    IssueEvent &ev = issueEvents_.emplace_back();
    ev.cu = this;
    ev.wfIndex = wavefronts_.size() - 1;
}

void
ComputeUnit::IssueEvent::process()
{
    cu->requestIssue(wfIndex);
}

void
ComputeUnit::start()
{
    for (std::size_t i = 0; i < wavefronts_.size(); ++i) {
        // Spread initial issues pseudo-randomly over the stagger
        // window: wavefronts are dispatched by the front-end over
        // time, not all in the same cycle.
        sim::Cycles offset =
            1 + (wavefronts_[i].globalId * 2654435761ull)
                    % std::max<sim::Cycles>(1, cfg_.startStaggerCycles);
        // Wasp de-staggering: followers' first issues are pushed out
        // past the leaders' whole stagger window, giving the leader
        // group an issue-distance head start of waspDistanceCycles.
        if (cfg_.wavefrontSched == WavefrontSchedPolicy::Wasp
            && !arbiter_.isLeader(i)) {
            offset += cfg_.waspDistanceCycles;
        }
        eq_.scheduleIn(cfg_.clockPeriod * offset, issueEvents_[i]);
    }
}

void
ComputeUnit::notifyWorkAvailable()
{
    for (std::size_t i = 0; i < wavefronts_.size(); ++i) {
        if (!wavefronts_[i].finished)
            continue;
        auto next = gpu_.dispatchNextWavefront();
        if (!next)
            return;
        Wavefront &wf = wavefronts_[i];
        wf.globalId = next->globalId;
        wf.appId = next->appId;
        wf.trace = std::move(next->trace);
        wf.pc = 0;
        wf.finished = false;
        arbiter_.onRefill(i, wf.globalId);
        --wavefrontsDone_;
        updateStallState();
        eq_.scheduleIn(cfg_.clockPeriod * cfg_.issueCycles,
                       issueEvents_[i]);
    }
}

void
ComputeUnit::requestIssue(std::size_t wf_index)
{
    // The CU front end issues at most one memory instruction per
    // issue-port period; simultaneously-ready wavefronts serialize,
    // and the configured policy picks which ready wavefront takes
    // each slot.
    arbiter_.markReady(wf_index);
    issuePort_.submit([this] { arbitrateIssue(); });
}

void
ComputeUnit::arbitrateIssue()
{
    issueNext(arbiter_.pick());
}

void
ComputeUnit::issueNext(std::size_t wf_index)
{
    Wavefront &wf = wavefronts_[wf_index];
    if (wf.pc >= wf.trace.size()) {
        wf.finished = true;
        ++wavefrontsDone_;
        updateStallState();
        gpu_.onWavefrontDone(wf.appId);

        // The slot is free: dispatch the next queued wavefront into
        // it, as the hardware workgroup dispatcher would.
        if (auto next = gpu_.dispatchNextWavefront()) {
            wf.globalId = next->globalId;
            wf.appId = next->appId;
            wf.trace = std::move(next->trace);
            wf.pc = 0;
            wf.finished = false;
            arbiter_.onRefill(wf_index, wf.globalId);
            --wavefrontsDone_;
            updateStallState();
            eq_.scheduleIn(cfg_.clockPeriod * cfg_.issueCycles,
                           issueEvents_[wf_index]);
        }
        return;
    }

    const SimdMemInstruction &instr = wf.trace[wf.pc];
    ++wf.pc;

    const tlb::InstructionId key = gpu_.nextInstructionId();
    InflightInstruction inst;
    inst.wfIndex = wf_index;
    inst.access = tlb::coalesce(instr.laneAddrs);

    const bool leader = isLeaderSlot(wf_index);
    if (leader) {
        ++leaderIssues_;
        if (tracer_) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::LeaderIssued;
            ev.ctx = gpu_.contextOf(wf.appId);
            ev.wavefront = wf.globalId;
            ev.instruction = key;
            ev.arg0 = id_;
            ev.arg1 = inst.access.pages.size();
            tracer_->record(ev);
        }
    }

    setBlocked(wf_index, true);

    if (inst.access.pages.empty()) {
        // Degenerate empty instruction: retires after the issue cost.
        inflight_.emplace(key, std::move(inst));
        eq_.scheduleIn(cfg_.clockPeriod * cfg_.issueCycles,
                       [this, key] { instructionDone(key); });
        return;
    }

    inst.translationsPending =
        static_cast<unsigned>(inst.access.pages.size());
    inst.linesPending = static_cast<unsigned>(inst.access.lines.size());
    inst.isLoad = instr.isLoad;
    inst.computeCycles = instr.computeCycles;

    if (cfg_.virtualL1Cache) {
        // Virtual L1: no up-front translation; data accesses go out
        // at virtual addresses and only L1 misses translate (via the
        // TranslatingPort below the cache).
        auto [vit, vinserted] = inflight_.emplace(key, std::move(inst));
        GPUWALK_ASSERT(vinserted, "duplicate instruction key");
        vit->second.translationsPending = 0;
        issueDataAccesses(key, /*virtual_addresses=*/true);
        return;
    }

    translationReqs_ += inst.access.pages.size();

    auto [it, inserted] = inflight_.emplace(key, std::move(inst));
    GPUWALK_ASSERT(inserted, "duplicate instruction key");
    const auto &pages = it->second.access.pages;

    for (mem::Addr page : pages) {
        tlb::TranslationRequest req;
        req.vaPage = page;
        req.instruction = key;
        req.wavefront = wavefronts_[wf_index].globalId;
        req.cu = id_;
        req.app = wavefronts_[wf_index].appId;
        req.ctx = gpu_.contextOf(wavefronts_[wf_index].appId);
        req.leader = leader;
        req.onComplete = [this, key, page](mem::Addr pa_page,
                                           bool /*large_page*/) {
            auto iit = inflight_.find(key);
            GPUWALK_ASSERT(iit != inflight_.end(),
                           "translation for retired instruction");
            iit->second.pageMap[page] = pa_page;
            GPUWALK_ASSERT(iit->second.translationsPending > 0,
                           "translation underflow");
            if (--iit->second.translationsPending == 0)
                translationsDone(key);
        };
        tlbs_.translate(std::move(req));
    }
}

void
ComputeUnit::translationsDone(std::uint64_t instr_key)
{
    issueDataAccesses(instr_key, /*virtual_addresses=*/false);
}

void
ComputeUnit::issueDataAccesses(std::uint64_t instr_key,
                               bool virtual_addresses)
{
    InflightInstruction &inst = inflight_.at(instr_key);
    lineAccesses_ += inst.access.lines.size();

    // Physical caches: data could not be touched before translation
    // (paper §I). Virtual L1s issue at the VA and translate on miss.
    for (mem::Addr line : inst.access.lines) {
        mem::MemoryRequest req;
        if (virtual_addresses) {
            req.addr = line;
        } else {
            const mem::Addr va_page = mem::pageAlign(line);
            auto pit = inst.pageMap.find(va_page);
            GPUWALK_ASSERT(pit != inst.pageMap.end(),
                           "line without translated page");
            req.addr = pit->second | (line & (mem::pageSize - 1));
        }
        req.size = static_cast<unsigned>(mem::cacheLineSize);
        req.write = !inst.isLoad;
        req.requester = mem::Requester::GpuData;
        req.instruction = instr_key;
        req.wavefront = wavefronts_[inst.wfIndex].globalId;
        req.cu = id_;
        req.onComplete = [this, instr_key] {
            auto iit = inflight_.find(instr_key);
            GPUWALK_ASSERT(iit != inflight_.end(),
                           "data return for retired instruction");
            GPUWALK_ASSERT(iit->second.linesPending > 0,
                           "line underflow");
            if (--iit->second.linesPending == 0)
                instructionDone(instr_key);
        };
        l1d_.access(std::move(req));
    }
}

void
ComputeUnit::instructionDone(std::uint64_t instr_key)
{
    auto it = inflight_.find(instr_key);
    GPUWALK_ASSERT(it != inflight_.end(), "retiring unknown instruction");
    const std::size_t wf_index = it->second.wfIndex;
    const sim::Cycles compute = it->second.computeCycles;
    inflight_.erase(it);

    ++instructions_;
    sim::debug::log("gpu", eq_.now(), "cu", id_, " retired instr ",
                    instr_key, " (wf ",
                    wavefronts_[wf_index].globalId, ")");
    setBlocked(wf_index, false);

    eq_.scheduleIn(cfg_.clockPeriod * (compute + cfg_.issueCycles),
                   issueEvents_[wf_index]);
}

void
ComputeUnit::setBlocked(std::size_t wf_index, bool blocked)
{
    Wavefront &wf = wavefronts_[wf_index];
    if (wf.blocked == blocked)
        return;
    wf.blocked = blocked;
    if (blocked) {
        ++blockedCount_;
    } else {
        GPUWALK_ASSERT(blockedCount_ > 0, "blocked count underflow");
        --blockedCount_;
    }
    updateStallState();
}

void
ComputeUnit::updateStallState()
{
    const unsigned live =
        static_cast<unsigned>(wavefronts_.size()) - wavefrontsDone_;
    const bool now_stalled = live > 0 && blockedCount_ >= live;
    if (now_stalled && !stalled_) {
        stalled_ = true;
        stallStart_ = eq_.now();
    } else if (!now_stalled && stalled_) {
        stalled_ = false;
        stallAccum_ += eq_.now() - stallStart_;
    }
}

} // namespace gpuwalk::gpu
