/**
 * @file
 * GPU organization parameters (Table I defaults).
 */

#ifndef GPUWALK_GPU_GPU_CONFIG_HH
#define GPUWALK_GPU_GPU_CONFIG_HH

#include "sim/ticks.hh"

namespace gpuwalk::gpu {

/**
 * Which ready wavefront a CU's front end issues first when several
 * are ready in the same cycle (paper §VI: interactions between the
 * wavefront scheduler and the page-walk scheduler are follow-on
 * work; both policies are provided to study exactly that).
 */
enum class WavefrontSchedPolicy
{
    RoundRobin,  ///< ready-order (FIFO) issue
    OldestFirst, ///< GTO-style: oldest resident wavefront wins

    /**
     * WaSP-style de-staggering (PAPERS.md): each CU's resident slots
     * split into a small leader group and followers. Leaders start
     * first (followers' first issues are pushed out by
     * waspDistanceCycles, generalizing the first-issue stagger) and
     * win issue arbitration, so their coalesced translation requests
     * reach the IOMMU ahead of the followers that will touch the same
     * pages. The walk side cooperates: leader-originated walks are
     * classed speculative (low priority) so the lookahead they create
     * never delays follower demand walks.
     */
    Wasp,
};

/** Shape and timing of the GPU compute side. */
struct GpuConfig
{
    unsigned numCus = 8;        ///< compute units
    unsigned simdPerCu = 4;     ///< SIMD units per CU (informational)
    unsigned simdWidth = 16;    ///< lanes per SIMD unit (informational)

    /**
     * Resident wavefronts per CU. Each wavefront has at most one
     * memory instruction outstanding (SIMT lockstep), so this is also
     * the CU's maximum memory-level parallelism in instructions.
     * Finished wavefronts' slots are refilled from the dispatch
     * queue. The default is calibrated so the irregular workloads'
     * translation demand sits at the walker-capacity knee, where the
     * paper's first/last walk-latency ratios (Fig. 6) are reproduced.
     */
    unsigned wavefrontsPerCu = 2;

    /** GPU clock period in ticks (2 GHz). */
    sim::Tick clockPeriod = 500;

    /** Fixed issue cost of a memory instruction, cycles. */
    sim::Cycles issueCycles = 4;

    /**
     * CU front-end issue bandwidth: one memory instruction may enter
     * execution per this many cycles (a single-ported front end).
     * Wavefronts ready in the same cycle serialize here.
     */
    sim::Cycles issuePortCycles = 1;

    /** Arbitration among simultaneously ready wavefronts. */
    WavefrontSchedPolicy wavefrontSched =
        WavefrontSchedPolicy::RoundRobin;

    /**
     * Virtually-addressed L1 data caches (Yoon et al. [43]): the data
     * path issues VA accesses to the L1, and translation happens only
     * on L1 misses, through a TranslatingPort the System wires in
     * below each L1. The SIMT translation phase before data access is
     * skipped entirely.
     */
    bool virtualL1Cache = false;

    /**
     * Window (in cycles) over which resident wavefronts' first issues
     * are spread, mimicking front-end dispatch serialization. Each
     * wavefront gets a deterministic pseudo-random offset.
     */
    sim::Cycles startStaggerCycles = 512;

    /**
     * Wasp only: leader slots per CU. The first waspLeaders resident
     * slots are leaders for the whole run (slot-based, so a refilled
     * wavefront inherits its slot's role). Clamped to the resident
     * slot count.
     */
    unsigned waspLeaders = 1;

    /**
     * Wasp only: the issue-distance lead, in cycles. Leaders' first
     * issues spread over the normal stagger window; followers' first
     * issues are delayed by this many further cycles, so the leader
     * group runs ahead from the first instruction on.
     */
    sim::Cycles waspDistanceCycles = 2048;
};

} // namespace gpuwalk::gpu

#endif // GPUWALK_GPU_GPU_CONFIG_HH
