#include "gpu/issue_arbiter.hh"

namespace gpuwalk::gpu {

std::size_t
referenceArbitrate(WavefrontSchedPolicy policy,
                   const std::deque<std::size_t> &ready,
                   const std::vector<std::uint32_t> &global_ids,
                   unsigned leader_slots)
{
    GPUWALK_ASSERT(!ready.empty(), "reference pick with nothing ready");
    if (policy == WavefrontSchedPolicy::RoundRobin)
        return 0;

    // Wasp narrows the scan to leaders when any leader is ready;
    // OldestFirst treats every slot alike (leader_slots unused).
    auto scan_oldest = [&](bool leaders_only) -> std::size_t {
        std::size_t best = ready.size();
        for (std::size_t i = 0; i < ready.size(); ++i) {
            if (leaders_only && ready[i] >= leader_slots)
                continue;
            if (best == ready.size()
                || global_ids[ready[i]] < global_ids[ready[best]])
                best = i;
        }
        return best;
    };

    if (policy == WavefrontSchedPolicy::Wasp) {
        const std::size_t leader = scan_oldest(/*leaders_only=*/true);
        if (leader != ready.size())
            return leader;
    }
    return scan_oldest(/*leaders_only=*/false);
}

} // namespace gpuwalk::gpu
