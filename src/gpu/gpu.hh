/**
 * @file
 * The GPU top level: a collection of compute units executing one
 * workload, plus kernel-level completion tracking.
 */

#ifndef GPUWALK_GPU_GPU_HH
#define GPUWALK_GPU_GPU_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "gpu/compute_unit.hh"
#include "gpu/gpu_config.hh"
#include "gpu/instruction.hh"

namespace gpuwalk::sim {
class Auditor;
} // namespace gpuwalk::sim

namespace gpuwalk::gpu {

/** The GPU device model (compute side). */
class Gpu
{
  public:
    /**
     * @param eq Event queue.
     * @param cfg GPU shape.
     * @param tlbs Translation path shared by all CUs.
     * @param l1ds One L1 data cache per CU, indexed by CU id.
     */
    Gpu(sim::EventQueue &eq, const GpuConfig &cfg,
        tlb::TlbHierarchy &tlbs,
        std::vector<mem::MemoryDevice *> l1ds);

    /**
     * Queues the workload's wavefronts for dispatch. Up to
     * cfg.wavefrontsPerCu run concurrently per CU; as resident
     * wavefronts finish, queued ones are dispatched into the freed
     * slots (the hardware workgroup dispatcher's behaviour). The
     * workload may therefore contain many more wavefronts than fit
     * at once.
     *
     * May be called multiple times with distinct @p app_id values to
     * co-schedule several applications (multi-program contention
     * studies, cf. MASK [13] and the paper's QoS discussion): their
     * wavefronts share the dispatch queue and all translation
     * hardware, and completion is tracked per app.
     */
    void loadWorkload(GpuWorkload workload, unsigned app_id = 0);

    /**
     * Schedules @p workload to join the machine at @p tick (tenant
     * arrival churn). The wavefronts enter the dispatch queue then and
     * fill any finished resident slots immediately; departures need no
     * counterpart — a tenant leaves by draining its trace.
     */
    void loadWorkloadAt(sim::Tick tick, GpuWorkload workload,
                        unsigned app_id);

    /**
     * Maps @p app_id's translation requests to address space @p ctx.
     * Unmapped apps translate in the default context 0, which keeps
     * single-tenant runs on the exact pre-ASID path.
     */
    void setAppContext(unsigned app_id, tlb::ContextId ctx);

    /** The address space @p app_id translates in. */
    tlb::ContextId
    contextOf(unsigned app_id) const
    {
        return app_id < appCtx_.size() ? appCtx_[app_id]
                                       : tlb::defaultContext;
    }

    /** Kicks off execution (schedules first issues). */
    void start();

    /** True once every wavefront has retired its whole trace. */
    bool done() const { return wavefrontsDone_ == totalWavefronts_; }

    /** Tick at which the last wavefront finished. */
    sim::Tick finishTick() const { return finishTick_; }

    /** Number of co-scheduled applications. */
    std::size_t numApps() const { return apps_.size(); }

    /** Tick at which @p app_id's last wavefront finished. */
    sim::Tick
    appFinishTick(unsigned app_id) const
    {
        return apps_.at(app_id).finishTick;
    }

    /** Wavefronts of @p app_id that have retired. */
    unsigned
    appWavefrontsDone(unsigned app_id) const
    {
        return apps_.at(app_id).done;
    }

    /** Wavefronts @p app_id loaded in total. */
    unsigned
    appWavefrontsTotal(unsigned app_id) const
    {
        return apps_.at(app_id).total;
    }

    /** Registers wavefront-completion invariants (total and per app). */
    void registerInvariants(sim::Auditor &auditor);

    /** Attaches @p tracer to every CU (LeaderIssued events). */
    void
    setTracer(trace::Tracer *tracer)
    {
        for (auto &cu : cus_)
            cu->setTracer(tracer);
    }

    /** Sum of per-CU leader memory-instruction issues (Wasp only). */
    std::uint64_t
    totalLeaderIssues() const
    {
        std::uint64_t n = 0;
        for (const auto &cu : cus_)
            n += cu->leaderInstructionsIssued();
        return n;
    }

    ComputeUnit &cu(std::size_t i) { return *cus_.at(i); }
    std::size_t numCus() const { return cus_.size(); }

    /** Sum of per-CU stall ticks (Fig. 9 numerator). */
    sim::Tick totalStallTicks() const;

    /** Total SIMD memory instructions retired. */
    std::uint64_t totalInstructions() const;

    /** @name Internal interface for ComputeUnit. */
    ///@{
    tlb::InstructionId nextInstructionId() { return nextInstrId_++; }
    void onWavefrontDone(unsigned app_id);

    /** A wavefront assignment: global id, owning app, trace. */
    struct WavefrontAssignment
    {
        std::uint32_t globalId = 0;
        unsigned appId = 0;
        WavefrontTrace trace;
    };

    /**
     * Hands out the next queued wavefront, or nullopt when the
     * dispatch queue is empty.
     */
    std::optional<WavefrontAssignment> dispatchNextWavefront();
    ///@}

    sim::StatGroup &stats() { return statGroup_; }

  private:
    sim::EventQueue &eq_;
    GpuConfig cfg_;
    struct AppState
    {
        unsigned total = 0;
        unsigned done = 0;
        sim::Tick finishTick = 0;
    };

    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    std::deque<std::pair<unsigned, WavefrontTrace>> dispatchQueue_;
    std::vector<AppState> apps_;
    std::vector<tlb::ContextId> appCtx_;
    bool started_ = false;
    tlb::InstructionId nextInstrId_ = 1;
    std::uint32_t nextWavefrontId_ = 0;
    std::size_t residentAssigned_ = 0;
    unsigned totalWavefronts_ = 0;
    unsigned wavefrontsDone_ = 0;
    sim::Tick finishTick_ = 0;

    sim::StatGroup statGroup_;
};

} // namespace gpuwalk::gpu

#endif // GPUWALK_GPU_GPU_HH
