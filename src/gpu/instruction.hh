/**
 * @file
 * The GPU workload representation: per-wavefront streams of SIMD
 * memory instructions.
 *
 * The simulator is trace-driven at the memory-instruction level: a
 * workload supplies, for every wavefront, the sequence of SIMD
 * loads/stores it executes and the virtual address touched by each
 * active lane. Non-memory instructions are abstracted as a compute
 * delay between memory instructions. This is exactly the granularity
 * the paper's mechanism observes — the IOMMU never sees anything
 * finer than "instruction X needs translations for pages P1..Pn".
 */

#ifndef GPUWALK_GPU_INSTRUCTION_HH
#define GPUWALK_GPU_INSTRUCTION_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"
#include "sim/ticks.hh"

namespace gpuwalk::gpu {

/** Lanes per wavefront (Table I: 64 threads per wavefront). */
constexpr unsigned wavefrontSize = 64;

/** One SIMD memory instruction executed by a wavefront. */
struct SimdMemInstruction
{
    /** Per-active-lane virtual addresses (1..wavefrontSize entries). */
    std::vector<mem::Addr> laneAddrs;

    /** False for stores. Timing-wise both block the wavefront. */
    bool isLoad = true;

    /**
     * GPU cycles of non-memory work after this instruction completes
     * and before the wavefront issues its next memory instruction.
     */
    sim::Cycles computeCycles = 20;
};

/** The full memory-instruction trace of one wavefront. */
using WavefrontTrace = std::vector<SimdMemInstruction>;

/** A workload: one trace per wavefront, in wavefront-ID order. */
struct GpuWorkload
{
    std::vector<WavefrontTrace> traces;

    std::size_t wavefronts() const { return traces.size(); }

    std::size_t
    totalInstructions() const
    {
        std::size_t n = 0;
        for (const auto &t : traces)
            n += t.size();
        return n;
    }
};

} // namespace gpuwalk::gpu

#endif // GPUWALK_GPU_INSTRUCTION_HH
