/**
 * @file
 * O(1) issue arbitration among a CU's ready wavefront slots.
 *
 * The CU front end used to linear-scan its ready queue per issue to
 * find the oldest wavefront. This class applies the walk buffer's
 * index discipline (PR 5) to the GPU front end: priorities are
 * maintained at *arrival* — when a slot is registered or refilled —
 * so the per-issue pick is a bitmap first-set-bit.
 *
 * The key structural fact making O(1) possible: within one CU, slot
 * (re)fills receive strictly increasing global wavefront IDs (the GPU
 * hands them out from one monotone counter), so a slot's age rank
 * only changes on refill, and a refilled slot is always the youngest.
 * Ranks therefore form a permutation maintained by an O(slots) shift
 * per *refill* (rare: once per completed trace) while the per-issue
 * pick over the ready set is a word scan of a rank-indexed bitmap
 * (one word up to 64 resident slots).
 *
 * Policies:
 *  - RoundRobin: ready-order FIFO, exactly the old deque behaviour.
 *  - OldestFirst: lowest age rank among ready slots (GTO).
 *  - Wasp: leader slots first (oldest ready leader), then followers —
 *    the de-staggering policy's arbitration half.
 *
 * referenceArbitrate() preserves the retired scan as an executable
 * spec; the differential test drives both against random schedules.
 */

#ifndef GPUWALK_GPU_ISSUE_ARBITER_HH
#define GPUWALK_GPU_ISSUE_ARBITER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "gpu/gpu_config.hh"
#include "sim/logging.hh"

namespace gpuwalk::gpu {

/** Picks which ready wavefront slot takes each issue-port slot. */
class IssueArbiter
{
  public:
    /** @param policy Arbitration policy.
     *  @param leader_slots Slots [0, leader_slots) are Wasp leaders. */
    explicit IssueArbiter(WavefrontSchedPolicy policy,
                          unsigned leader_slots = 0)
        : policy_(policy), leaderSlots_(leader_slots)
    {
    }

    /**
     * Registers the next slot. Must be called in slot order with the
     * slots' initial global IDs assigned in increasing order (the
     * GPU's round-robin fill guarantees this per CU).
     */
    void
    addSlot(std::uint32_t global_id)
    {
        GPUWALK_ASSERT(slotRank_.empty()
                           || global_id > lastGlobalId_,
                       "slot global IDs must arrive increasing");
        lastGlobalId_ = global_id;
        const std::size_t slot = slotRank_.size();
        slotRank_.push_back(slot);
        rankSlot_.push_back(slot);
        readyBits_.resize((slotRank_.size() + 63) / 64, 0);
    }

    /**
     * Slot @p slot was refilled with a fresh (strictly larger) global
     * ID: it becomes the youngest slot. @pre the slot is not ready.
     */
    void
    onRefill(std::size_t slot, std::uint32_t new_global_id)
    {
        GPUWALK_ASSERT(slot < slotRank_.size(), "bad slot");
        GPUWALK_ASSERT(new_global_id > lastGlobalId_,
                       "refill must carry a fresh (larger) global ID");
        GPUWALK_ASSERT(!testReady(slotRank_[slot]),
                       "refilling a ready slot");
        lastGlobalId_ = new_global_id;
        const std::size_t old_rank = slotRank_[slot];
        const std::size_t last = slotRank_.size() - 1;
        // Compact the permutation: everyone younger moves up one
        // rank, the refilled slot takes the youngest rank. Ready bits
        // move with their slots.
        for (std::size_t r = old_rank; r < last; ++r) {
            const std::size_t s = rankSlot_[r + 1];
            rankSlot_[r] = s;
            slotRank_[s] = r;
            if (testReady(r + 1)) {
                clearReady(r + 1);
                setReady(r);
            }
        }
        rankSlot_[last] = slot;
        slotRank_[slot] = last;
    }

    /** Slot @p slot has an instruction ready to issue. */
    void
    markReady(std::size_t slot)
    {
        GPUWALK_ASSERT(slot < slotRank_.size(), "bad slot");
        if (policy_ == WavefrontSchedPolicy::RoundRobin) {
            fifo_.push_back(slot);
            return;
        }
        const std::size_t rank = slotRank_[slot];
        GPUWALK_ASSERT(!testReady(rank), "slot already ready");
        setReady(rank);
        ++readyCount_;
    }

    /** Ready slots waiting for an issue-port slot. */
    std::size_t
    readyCount() const
    {
        return policy_ == WavefrontSchedPolicy::RoundRobin
                   ? fifo_.size()
                   : readyCount_;
    }

    bool empty() const { return readyCount() == 0; }

    /** True when @p slot is a Wasp leader slot. */
    bool isLeader(std::size_t slot) const { return slot < leaderSlots_; }

    /**
     * Removes and returns the winning slot: FIFO order (RoundRobin),
     * oldest ready (OldestFirst), or oldest ready leader then oldest
     * ready follower (Wasp). @pre !empty()
     */
    std::size_t
    pick()
    {
        GPUWALK_ASSERT(!empty(), "issue slot with nothing ready");
        if (policy_ == WavefrontSchedPolicy::RoundRobin) {
            const std::size_t slot = fifo_.front();
            fifo_.pop_front();
            return slot;
        }
        std::size_t rank;
        if (policy_ == WavefrontSchedPolicy::Wasp) {
            rank = lowestReadyRank(
                [this](std::size_t slot) { return isLeader(slot); });
            if (rank == npos)
                rank = lowestReadyRank(
                    [](std::size_t) { return true; });
        } else {
            rank = lowestReadyRank([](std::size_t) { return true; });
        }
        GPUWALK_ASSERT(rank != npos, "ready count out of sync");
        clearReady(rank);
        --readyCount_;
        return rankSlot_[rank];
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    bool
    testReady(std::size_t rank) const
    {
        return policy_ != WavefrontSchedPolicy::RoundRobin
               && (readyBits_[rank >> 6]
                   >> (rank & 63) & 1) != 0;
    }

    void
    setReady(std::size_t rank)
    {
        readyBits_[rank >> 6] |= std::uint64_t{1} << (rank & 63);
    }

    void
    clearReady(std::size_t rank)
    {
        readyBits_[rank >> 6] &= ~(std::uint64_t{1} << (rank & 63));
    }

    /**
     * Lowest set rank whose slot satisfies @p accept. The word scan is
     * O(slots/64) — one word for any realistic residency — and the
     * Wasp leader filter inspects at most leaderSlots_ set bits before
     * giving up on a word... but leaders can sit at any rank, so the
     * filtered scan walks set bits; the leader group is small by
     * definition, and the unfiltered fallback is pure first-set-bit.
     */
    template <typename Accept>
    std::size_t
    lowestReadyRank(Accept &&accept) const
    {
        for (std::size_t w = 0; w < readyBits_.size(); ++w) {
            std::uint64_t bits = readyBits_[w];
            while (bits != 0) {
                const auto bit = static_cast<std::size_t>(
                    __builtin_ctzll(bits));
                const std::size_t rank = w * 64 + bit;
                if (accept(rankSlot_[rank]))
                    return rank;
                bits &= bits - 1;
            }
        }
        return npos;
    }

    WavefrontSchedPolicy policy_;
    unsigned leaderSlots_ = 0;

    std::deque<std::size_t> fifo_; ///< RoundRobin ready order

    // Age permutation: rank 0 = oldest current global ID.
    std::vector<std::size_t> slotRank_; ///< slot -> rank
    std::vector<std::size_t> rankSlot_; ///< rank -> slot
    std::vector<std::uint64_t> readyBits_; ///< bit per *rank*
    std::size_t readyCount_ = 0;
    std::uint32_t lastGlobalId_ = 0;
};

/**
 * Executable reference spec of the pick rule: the retired
 * ComputeUnit::arbitrateIssue() scan, generalized to the Wasp leader
 * rule. @p ready holds ready slots in ready order; @p global_ids maps
 * slot -> current global ID; @p leader_slots is the Wasp leader-group
 * size. Returns the index *into @p ready* of the winner.
 */
std::size_t
referenceArbitrate(WavefrontSchedPolicy policy,
                   const std::deque<std::size_t> &ready,
                   const std::vector<std::uint32_t> &global_ids,
                   unsigned leader_slots);

} // namespace gpuwalk::gpu

#endif // GPUWALK_GPU_ISSUE_ARBITER_HH
