/**
 * @file
 * A GPU compute unit executing wavefront memory-instruction traces.
 *
 * Each resident wavefront runs its trace in SIMT lockstep: a SIMD
 * memory instruction is coalesced into unique-page translation
 * requests and unique-line cache accesses; the instruction — and
 * hence the wavefront — cannot retire until *all* translations and
 * all data accesses complete (the property the paper's batching idea
 * exploits). The CU tracks its stall time: ticks during which it has
 * live wavefronts but none able to execute (all blocked on memory),
 * the Fig. 9 metric.
 */

#ifndef GPUWALK_GPU_COMPUTE_UNIT_HH
#define GPUWALK_GPU_COMPUTE_UNIT_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/instruction.hh"
#include "gpu/issue_arbiter.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/rate_limiter.hh"
#include "sim/stats.hh"
#include "tlb/coalescer.hh"
#include "tlb/tlb_hierarchy.hh"

namespace gpuwalk::trace {
class Tracer;
} // namespace gpuwalk::trace

namespace gpuwalk::gpu {

class Gpu;

/** One compute unit plus its resident wavefronts. */
class ComputeUnit
{
  public:
    /**
     * @param eq Event queue.
     * @param cfg GPU shape/timing.
     * @param cu_id This CU's index.
     * @param tlbs The GPU TLB hierarchy (translation path).
     * @param l1d This CU's L1 data cache (data path).
     * @param gpu Parent, notified when all wavefronts finish.
     */
    ComputeUnit(sim::EventQueue &eq, const GpuConfig &cfg,
                std::uint32_t cu_id, tlb::TlbHierarchy &tlbs,
                mem::MemoryDevice &l1d, Gpu &gpu);

    /**
     * Assigns @p trace to a new resident wavefront.
     * @param wavefront_global_id Unique across the whole GPU.
     * @param app_id Owning application (multi-program runs).
     * @pre called before start(); capacity cfg.wavefrontsPerCu.
     */
    void addWavefront(std::uint32_t wavefront_global_id,
                      unsigned app_id, WavefrontTrace trace);

    /** Begins execution of all resident wavefronts at the next tick. */
    void start();

    /** Attaches a lifecycle tracer (LeaderIssued events under Wasp).
     *  nullptr detaches. */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** True when @p slot is a Wasp leader slot (always false under the
     *  other policies). */
    bool
    isLeaderSlot(std::size_t slot) const
    {
        return cfg_.wavefrontSched == WavefrontSchedPolicy::Wasp
               && arbiter_.isLeader(slot);
    }

    /** Memory instructions issued from leader slots (Wasp only). */
    std::uint64_t
    leaderInstructionsIssued() const
    {
        return leaderIssues_.value();
    }

    /**
     * New work entered the GPU dispatch queue mid-run (tenant
     * arrival): refills this CU's finished wavefront slots, which
     * would otherwise only be re-checked when a resident wavefront
     * retires.
     */
    void notifyWorkAvailable();

    std::uint32_t id() const { return id_; }

    /** Wavefronts that have finished their traces. */
    unsigned wavefrontsDone() const { return wavefrontsDone_; }

    unsigned
    wavefrontsResident() const
    {
        return static_cast<unsigned>(wavefronts_.size());
    }

    bool done() const { return wavefrontsDone_ == wavefronts_.size(); }

    /** Accumulated execution-stall time in ticks (Fig. 9 metric). */
    sim::Tick stallTicks() const { return stallAccum_; }

    /** Instructions retired by this CU. */
    std::uint64_t
    instructionsRetired() const
    {
        return instructions_.value();
    }

    sim::StatGroup &stats() { return statGroup_; }

  private:
    /** Execution state of one resident wavefront. */
    struct Wavefront
    {
        std::uint32_t globalId = 0;
        unsigned appId = 0;
        WavefrontTrace trace;
        std::size_t pc = 0;
        bool blocked = false; ///< waiting on an outstanding instruction
        bool finished = false;
    };

    /** Book-keeping for one in-flight SIMD memory instruction. */
    struct InflightInstruction
    {
        std::size_t wfIndex = 0;
        tlb::CoalescedAccess access;
        unsigned translationsPending = 0;
        unsigned linesPending = 0;
        bool isLoad = true;
        sim::Cycles computeCycles = 0;
        /** vaPage -> paPage for translated pages of this instruction. */
        sim::FlatMap<mem::Addr, mem::Addr> pageMap;
    };

    /**
     * Intrusive issue wake-up, one per wavefront slot. A slot has at
     * most one issue request in flight at a time (it waits in the
     * ready queue, then blocks on its instruction), so a single
     * embedded node per slot replaces the per-issue capturing lambda.
     */
    struct IssueEvent final : sim::Event
    {
        void process() override;

        ComputeUnit *cu = nullptr;
        std::size_t wfIndex = 0;
    };

    void requestIssue(std::size_t wf_index);
    void arbitrateIssue();
    void issueNext(std::size_t wf_index);
    void translationsDone(std::uint64_t instr_key);
    void issueDataAccesses(std::uint64_t instr_key,
                           bool virtual_addresses);
    void instructionDone(std::uint64_t instr_key);
    void setBlocked(std::size_t wf_index, bool blocked);
    void updateStallState();

    sim::EventQueue &eq_;
    GpuConfig cfg_;
    std::uint32_t id_;
    tlb::TlbHierarchy &tlbs_;
    mem::MemoryDevice &l1d_;
    Gpu &gpu_;
    sim::RateLimiter issuePort_;

    std::vector<Wavefront> wavefronts_;
    /** deque: intrusive events need stable addresses while scheduled. */
    std::deque<IssueEvent> issueEvents_;
    /** O(1) ready-slot pick index (replaces the per-issue scan over a
     *  ready deque; the scan survives as referenceArbitrate()). */
    IssueArbiter arbiter_;
    sim::FlatMap<std::uint64_t, InflightInstruction> inflight_;
    trace::Tracer *tracer_ = nullptr;
    unsigned wavefrontsDone_ = 0;
    unsigned blockedCount_ = 0;

    bool stalled_ = false;
    sim::Tick stallStart_ = 0;
    sim::Tick stallAccum_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter instructions_{"instructions",
                               "SIMD memory instructions retired"};
    sim::Counter translationReqs_{"translation_requests",
                                  "coalesced translation requests"};
    sim::Counter lineAccesses_{"line_accesses",
                               "coalesced data cache accesses"};
    sim::Counter leaderIssues_{"leader_issues",
                               "memory instructions issued by Wasp "
                               "leader slots"};
};

} // namespace gpuwalk::gpu

#endif // GPUWALK_GPU_COMPUTE_UNIT_HH
