#include "gpu/gpu.hh"

#include "sim/audit.hh"

namespace gpuwalk::gpu {

Gpu::Gpu(sim::EventQueue &eq, const GpuConfig &cfg,
         tlb::TlbHierarchy &tlbs, std::vector<mem::MemoryDevice *> l1ds)
    : eq_(eq), cfg_(cfg), statGroup_("gpu")
{
    GPUWALK_ASSERT(l1ds.size() == cfg_.numCus,
                   "need one L1D per CU (got ", l1ds.size(), " for ",
                   cfg_.numCus, " CUs)");
    cus_.reserve(cfg_.numCus);
    for (unsigned i = 0; i < cfg_.numCus; ++i) {
        GPUWALK_ASSERT(l1ds[i] != nullptr, "null L1D for CU ", i);
        cus_.push_back(std::make_unique<ComputeUnit>(
            eq_, cfg_, i, tlbs, *l1ds[i], *this));
        statGroup_.addChild(cus_.back()->stats());
    }
}

void
Gpu::loadWorkload(GpuWorkload workload, unsigned app_id)
{
    if (apps_.size() <= app_id)
        apps_.resize(app_id + 1);
    apps_[app_id].total +=
        static_cast<unsigned>(workload.wavefronts());
    totalWavefronts_ += static_cast<unsigned>(workload.wavefronts());

    if (started_) {
        // Late arrival (tenant churn): everything goes through the
        // dispatch queue, then finished resident slots pick it up —
        // pre-start slot filling would bypass the running CUs' issue
        // machinery.
        for (auto &trace : workload.traces)
            dispatchQueue_.emplace_back(app_id, std::move(trace));
        for (auto &cu : cus_)
            cu->notifyWorkAvailable();
        return;
    }

    // Fill free resident slots round-robin; queue the rest for
    // dispatch as slots free up.
    const std::size_t resident_capacity =
        std::size_t(cfg_.numCus) * cfg_.wavefrontsPerCu;
    for (auto &trace : workload.traces) {
        if (residentAssigned_ < resident_capacity) {
            cus_[residentAssigned_ % cfg_.numCus]->addWavefront(
                nextWavefrontId_++, app_id, std::move(trace));
            ++residentAssigned_;
        } else {
            dispatchQueue_.emplace_back(app_id, std::move(trace));
        }
    }
}

void
Gpu::loadWorkloadAt(sim::Tick tick, GpuWorkload workload,
                    unsigned app_id)
{
    GPUWALK_ASSERT(tick >= eq_.now(), "arrival tick in the past");
    eq_.scheduleIn(tick - eq_.now(),
                   [this, w = std::move(workload), app_id]() mutable {
                       loadWorkload(std::move(w), app_id);
                   });
}

void
Gpu::setAppContext(unsigned app_id, tlb::ContextId ctx)
{
    if (appCtx_.size() <= app_id)
        appCtx_.resize(app_id + 1, tlb::defaultContext);
    appCtx_[app_id] = ctx;
}

std::optional<Gpu::WavefrontAssignment>
Gpu::dispatchNextWavefront()
{
    if (dispatchQueue_.empty())
        return std::nullopt;
    WavefrontAssignment out;
    out.globalId = nextWavefrontId_++;
    out.appId = dispatchQueue_.front().first;
    out.trace = std::move(dispatchQueue_.front().second);
    dispatchQueue_.pop_front();
    return out;
}

void
Gpu::start()
{
    started_ = true;
    for (auto &cu : cus_)
        cu->start();
}

void
Gpu::onWavefrontDone(unsigned app_id)
{
    ++wavefrontsDone_;
    AppState &app = apps_.at(app_id);
    ++app.done;
    if (app.done == app.total)
        app.finishTick = eq_.now();
    if (done())
        finishTick_ = eq_.now();
}

void
Gpu::registerInvariants(sim::Auditor &auditor)
{
    auditor.registerInvariant(
        "gpu.wavefront_completion", [this](sim::AuditContext &ctx) {
            ctx.require(wavefrontsDone_ <= totalWavefronts_,
                        wavefrontsDone_, " wavefronts retired but only ",
                        totalWavefronts_, " loaded");
            for (std::size_t app = 0; app < apps_.size(); ++app) {
                ctx.require(apps_[app].done <= apps_[app].total, "app ",
                            app, ": ", apps_[app].done,
                            " wavefronts retired but only ",
                            apps_[app].total, " loaded");
            }
            if (!ctx.final())
                return;
            ctx.require(wavefrontsDone_ == totalWavefronts_,
                        wavefrontsDone_, " of ", totalWavefronts_,
                        " wavefronts retired");
            for (std::size_t app = 0; app < apps_.size(); ++app) {
                ctx.require(apps_[app].done == apps_[app].total, "app ",
                            app, ": ", apps_[app].done, " of ",
                            apps_[app].total, " wavefronts retired");
            }
        });
}

sim::Tick
Gpu::totalStallTicks() const
{
    sim::Tick total = 0;
    for (const auto &cu : cus_)
        total += cu->stallTicks();
    return total;
}

std::uint64_t
Gpu::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &cu : cus_)
        total += cu->instructionsRetired();
    return total;
}

} // namespace gpuwalk::gpu
