/**
 * @file
 * The IOMMU's page-walk request buffer (the "IOMMU buffer").
 *
 * Translation requests that miss the whole TLB hierarchy wait here
 * until a page table walker frees up and the active WalkScheduler
 * selects them (paper §II-B step 6-7). The buffer is the scheduler's
 * lookahead window: its capacity (256 in the baseline, swept in
 * Fig. 14) bounds how far the scheduler can reorder.
 *
 * Storage is a dense vector with swap-with-last extraction, as before,
 * but the buffer now also maintains three incremental pick indexes so
 * schedulers answer their selection queries without scanning — the
 * hardware proposal updates priorities at *arrival*, not by a sweep at
 * *dispatch* (paper §IV):
 *
 *  - an arrival list threaded in seq order (oldestIndex() and the
 *    aging candidate are list-front questions);
 *  - per-InstructionId intrusive bucket lists, reached through one
 *    sim::FlatMap probe (the Batch rule is bucket-head);
 *  - per-score entry lists under a hierarchical occupancy bitmap
 *    (the SJF rule is first-set-bit, then bucket-head for the
 *    (score, seq) tie-break).
 *
 * All links are dense indices into the entry vector and are rewired in
 * O(1) when an extraction swaps the last entry into the freed slot, so
 * the external contract (indices into a dense array, invalidated by
 * extract) is unchanged. Entry fields that the indexes key on (seq,
 * instruction, score) must only change through buffer APIs:
 * forEachOfInstruction() re-indexes a callback's score updates, and
 * recordBypass() maintains the aging watermark — which is why the
 * non-const entries()/at() accessors are gone.
 */

#ifndef GPUWALK_CORE_PENDING_WALK_HH
#define GPUWALK_CORE_PENDING_WALK_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "tlb/translation.hh"

namespace gpuwalk::core {

/** A page-walk request waiting in the IOMMU buffer. */
struct PendingWalk
{
    /** The translation request (carries the instruction ID tag). */
    tlb::TranslationRequest request;

    /** Arrival time at the buffer. */
    sim::Tick arrival = 0;

    /** Global arrival sequence number — the FCFS ordering key. */
    std::uint64_t seq = 0;

    /**
     * PWC-probe estimate of memory accesses this walk alone needs
     * (1-4), computed at arrival (paper action 1-a).
     */
    unsigned estimatedAccesses = 0;

    /**
     * Estimated total memory accesses to finish *all* pending walks of
     * the issuing instruction — the SJF "job length" (action 1-b).
     * Identical across all buffered requests of one instruction.
     */
    std::uint64_t score = 0;

    /**
     * How many younger requests have been scheduled ahead of this one;
     * drives the anti-starvation aging override.
     */
    std::uint64_t bypassed = 0;

    /**
     * True for IOMMU-generated next-page prefetch walks: they fill
     * the IOMMU TLBs but have no GPU consumer and never enter the
     * demand metrics.
     */
    bool isPrefetch = false;

    /**
     * Prefetch metadata carried by speculative-class entries so the
     * PrefetchIssued event can be emitted at dispatch: the SPP path
     * confidence in per-mille and the demand page that triggered the
     * prediction. Zero for demand and leader walks.
     */
    std::uint32_t specConfidencePermille = 0;
    mem::Addr specTriggerPage = 0;
};

/** Fixed-capacity buffer of pending page-walk requests. */
class WalkBuffer
{
  public:
    /** "No entry" sentinel for the index queries. */
    static constexpr std::size_t npos = ~std::size_t{0};

    explicit WalkBuffer(std::size_t capacity);

    WalkBuffer(WalkBuffer &&) = default;
    WalkBuffer &operator=(WalkBuffer &&) = default;

    std::size_t capacity() const { return capacity_; }

    /** Demand-class entries (every pick index covers exactly these). */
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= capacity_; }

    /** Inserts @p w. @pre !full() @return its current index. */
    std::size_t insert(PendingWalk w);

    /**
     * @name Speculative class
     *
     * Low-priority walks — Wasp leader lookahead and (under the
     * reserved/budget admission policies) prefetcher predictions —
     * wait in a FIFO sidecar of the buffer, invisible to every
     * scheduler query above: selectNext() and the scan schedulers
     * only ever see demand entries, so "scheduled only when no demand
     * walk is eligible" holds by construction. The class has its own
     * capacity_ worth of slots, so speculation can never crowd demand
     * out of the buffer. Both dispatch and promotion (demotion back
     * to demand priority for a leader walk an instruction is blocked
     * on) consume the FIFO head, the class's oldest entry.
     */
    ///@{
    std::size_t specCount() const { return spec_.size(); }
    bool specEmpty() const { return spec_.empty(); }
    bool specFull() const { return spec_.size() >= capacity_; }

    /** Appends @p w to the speculative class. @pre !specFull() */
    void
    specPush(PendingWalk w)
    {
        GPUWALK_ASSERT(!specFull(), "speculative class overflow");
        spec_.push_back(std::move(w));
    }

    /** The class's oldest entry. @pre !specEmpty() */
    const PendingWalk &
    specFront() const
    {
        GPUWALK_ASSERT(!spec_.empty(), "specFront on empty class");
        return spec_.front();
    }

    /** Removes and returns the class's oldest entry. @pre !specEmpty() */
    PendingWalk
    specPop()
    {
        GPUWALK_ASSERT(!spec_.empty(), "specPop on empty class");
        PendingWalk out = std::move(spec_.front());
        spec_.pop_front();
        return out;
    }
    ///@}

    /** Removes and returns entry @p idx (swap-with-last erase). */
    PendingWalk extract(std::size_t idx);

    const PendingWalk &at(std::size_t idx) const
    {
        syncBypass();
        return entries_.at(idx);
    }

    /** Index of the oldest (lowest seq) entry. @pre !empty() */
    std::size_t
    oldestIndex() const
    {
        GPUWALK_ASSERT(!empty(), "oldestIndex on empty buffer");
        return arrivalHead_;
    }

    /**
     * Index of the oldest entry issued by @p instruction, or npos —
     * the Batch rule in one hash probe.
     */
    std::size_t
    instructionHead(tlb::InstructionId instruction) const
    {
        const auto it = instrIndex_.find(instruction);
        return it == instrIndex_.end() ? npos : buckets_[it->second].head;
    }

    /**
     * Index of the oldest buffered entry of tenant @p ctx, or npos.
     * The per-context lists back the QoS schedulers and the per-tenant
     * occupancy accounting.
     */
    std::size_t
    contextHead(tlb::ContextId ctx) const
    {
        return ctx < ctxLists_.size() ? ctxLists_[ctx].head : npos;
    }

    /** Buffered entries of tenant @p ctx (its walk-buffer share). */
    std::size_t
    contextCount(tlb::ContextId ctx) const
    {
        return ctx < ctxCounts_.size() ? ctxCounts_[ctx] : 0;
    }

    /** One past the highest ContextId ever buffered (iteration
     *  bound for per-tenant queries; tenant IDs are small and dense). */
    std::size_t contextLimit() const { return ctxLists_.size(); }

    /** Successor of @p idx in its tenant's seq-ordered list. */
    std::size_t
    contextNext(std::size_t idx) const
    {
        GPUWALK_ASSERT(idx < links_.size(), "bad buffer index");
        return links_[idx].ctxNext;
    }

    /**
     * Index of tenant @p ctx's entry minimizing (score, seq), or npos
     * — the SJF rule restricted to one address space. O(tenant
     * occupancy): the QoS policies that need it trade the global
     * bitmap's O(1) for per-tenant selection.
     */
    std::size_t sjfBestOfContext(tlb::ContextId ctx) const;

    /**
     * Index of the entry minimizing (score, seq) — the SJF rule.
     * @pre !empty()
     */
    std::size_t sjfBestIndex() const;

    /**
     * Index of the oldest entry with bypassed >= @p threshold, or
     * npos — the Aging rule. O(1) when no entry qualifies (a tracked
     * watermark bounds the buffer's maximum bypass count) and when
     * counters are monotone in arrival order, which every dispatch
     * through recordBypass() preserves.
     */
    std::size_t agingCandidate(std::uint64_t threshold) const;

    /**
     * Records that the walk holding sequence number @p dispatched_seq
     * was scheduled: every remaining older entry was just bypassed.
     * The increment saturates — a wrapped counter would reset a
     * starving request's aging priority back to zero. Replaces the
     * schedulers' direct sweep over entries() so the buffer can keep
     * its aging watermark exact.
     *
     * Increments are O(1) here and settled in batches: every API that
     * can observe a counter — at(), entries(), extract(),
     * forEachOfInstruction(), a plausibly-qualifying agingCandidate()
     * — settles the pending set first, so observed values are exactly
     * what a per-dispatch sweep would have produced.
     */
    void recordBypass(std::uint64_t dispatched_seq);

    /**
     * The current SJF score of @p instruction's buffered walks (they
     * share one), or 0 if none are buffered — the paper's action-1-b
     * read side.
     */
    std::uint64_t
    instructionScore(tlb::InstructionId instruction) const
    {
        const auto it = instrIndex_.find(instruction);
        return it == instrIndex_.end()
                   ? 0
                   : entries_[buckets_[it->second].tail].score;
    }

    /**
     * Sets the score of every buffered walk of @p instruction to
     * @p score, keeping the SJF index exact — the action-1-b write
     * side. No-op when none are buffered.
     */
    void rescoreInstruction(tlb::InstructionId instruction,
                            std::uint64_t score);

    /**
     * Applies @p fn to every entry issued by @p instruction, in
     * arrival order, then re-indexes any score change the callback
     * made. The callback must not change an entry's seq or
     * instruction (asserted).
     */
    template <typename Fn>
    void
    forEachOfInstruction(tlb::InstructionId instruction, Fn &&fn)
    {
        syncBypass();
        const auto it = instrIndex_.find(instruction);
        if (it == instrIndex_.end())
            return;
        std::size_t i = buckets_[it->second].head;
        while (i != npos) {
            const std::size_t next = links_[i].instrNext;
            const std::uint64_t seq = entries_[i].seq;
            fn(entries_[i]);
            GPUWALK_ASSERT(entries_[i].seq == seq
                               && entries_[i].request.instruction
                                      == instruction,
                           "forEachOfInstruction callback changed an "
                           "index key");
            resyncScore(i);
            if (entries_[i].bypassed > maxBypassed_)
                maxBypassed_ = entries_[i].bypassed;
            i = next;
        }
    }

    /** Direct read access for schedulers' scan loops. */
    const std::vector<PendingWalk> &
    entries() const
    {
        syncBypass();
        return entries_;
    }

  private:
    /** Intrusive list links of one entry (dense indices). */
    struct Links
    {
        std::size_t arrivalPrev = npos;
        std::size_t arrivalNext = npos;
        std::size_t instrPrev = npos;
        std::size_t instrNext = npos;
        std::size_t scorePrev = npos;
        std::size_t scoreNext = npos;
        std::size_t ctxPrev = npos;
        std::size_t ctxNext = npos;
        std::size_t bucket = npos;       ///< owning instruction bucket
        std::uint64_t scoreKey = 0;      ///< score the entry is filed under
    };

    /** One seq-ordered doubly-linked list (head = lowest seq). */
    struct ListHead
    {
        std::size_t head = npos;
        std::size_t tail = npos;
    };

    /** Scores at least this large fall back to an overflow list; the
     *  direct-indexed buckets cover every score the PWC estimates can
     *  accumulate in practice. */
    static constexpr std::uint64_t maxDirectScore = std::uint64_t{1}
                                                    << 18;

    /** How many recorded dispatches accumulate before recordBypass()
     *  settles them unprompted. */
    static constexpr std::size_t bypassBatch = 32;

    /** Applies every deferred bypass increment and clears the batch. */
    void flushBypass();

    /**
     * Settles deferred bypass increments before a counter is read.
     * Const because the observers are const; no WalkBuffer object is
     * ever const-qualified, so the cast is the usual lazy-evaluation
     * idiom.
     */
    void
    syncBypass() const
    {
        if (!deferredBypass_.empty())
            const_cast<WalkBuffer *>(this)->flushBypass();
    }

    void linkArrival(std::size_t idx);
    void unlinkArrival(std::size_t idx);
    void linkInstruction(std::size_t idx);
    void unlinkInstruction(std::size_t idx);
    void linkScore(std::size_t idx);
    void unlinkScore(std::size_t idx);
    void linkContext(std::size_t idx);
    void unlinkContext(std::size_t idx);
    void resyncScore(std::size_t idx);
    void repointNeighbors(std::size_t from, std::size_t to);
    void growScoreBuckets(std::uint64_t score);
    void setScoreBit(std::uint64_t score);
    void clearScoreBit(std::uint64_t score);
    std::uint64_t minDirectScore() const;

    std::size_t capacity_;
    std::vector<PendingWalk> entries_;
    std::vector<Links> links_;

    /** Speculative-class FIFO (see the class-comment block above). */
    std::deque<PendingWalk> spec_;

    // Arrival (seq) order.
    std::size_t arrivalHead_ = npos;
    std::size_t arrivalTail_ = npos;

    // Per-context (tenant) seq-ordered lists, indexed directly by the
    // small dense ContextId, with per-tenant occupancy counts.
    std::vector<ListHead> ctxLists_;
    std::vector<std::size_t> ctxCounts_;

    // Per-instruction buckets.
    std::vector<ListHead> buckets_;
    std::vector<std::size_t> freeBuckets_;
    sim::FlatMap<tlb::InstructionId, std::size_t> instrIndex_;

    // Score index: direct-indexed seq-ordered buckets under a two-level
    // occupancy bitmap, plus an overflow list for absurd scores.
    std::vector<ListHead> scoreBuckets_;
    std::vector<std::uint64_t> scoreBitsL0_; ///< bit per score bucket
    std::vector<std::uint64_t> scoreBitsL1_; ///< bit per L0 word
    std::size_t directCount_ = 0;
    ListHead overflow_;
    std::size_t overflowCount_ = 0;

    /** Upper bound on bypassed over buffered entries (exact right
     *  after the responsible insert/recordBypass; extraction can leave
     *  it stale high). agingCandidate() tightens it on a confirmed
     *  miss, hence mutable. */
    mutable std::uint64_t maxBypassed_ = 0;

    /** Dispatch seqs recordBypass() has noted but not yet applied to
     *  the older entries' counters. */
    std::vector<std::uint64_t> deferredBypass_;
    std::uint64_t maxDeferredSeq_ = 0;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_PENDING_WALK_HH
