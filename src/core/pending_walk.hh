/**
 * @file
 * The IOMMU's page-walk request buffer (the "IOMMU buffer").
 *
 * Translation requests that miss the whole TLB hierarchy wait here
 * until a page table walker frees up and the active WalkScheduler
 * selects them (paper §II-B step 6-7). The buffer is the scheduler's
 * lookahead window: its capacity (256 in the baseline, swept in
 * Fig. 14) bounds how far the scheduler can reorder.
 */

#ifndef GPUWALK_CORE_PENDING_WALK_HH
#define GPUWALK_CORE_PENDING_WALK_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "tlb/translation.hh"

namespace gpuwalk::core {

/** A page-walk request waiting in the IOMMU buffer. */
struct PendingWalk
{
    /** The translation request (carries the instruction ID tag). */
    tlb::TranslationRequest request;

    /** Arrival time at the buffer. */
    sim::Tick arrival = 0;

    /** Global arrival sequence number — the FCFS ordering key. */
    std::uint64_t seq = 0;

    /**
     * PWC-probe estimate of memory accesses this walk alone needs
     * (1-4), computed at arrival (paper action 1-a).
     */
    unsigned estimatedAccesses = 0;

    /**
     * Estimated total memory accesses to finish *all* pending walks of
     * the issuing instruction — the SJF "job length" (action 1-b).
     * Identical across all buffered requests of one instruction.
     */
    std::uint64_t score = 0;

    /**
     * How many younger requests have been scheduled ahead of this one;
     * drives the anti-starvation aging override.
     */
    std::uint64_t bypassed = 0;

    /**
     * True for IOMMU-generated next-page prefetch walks: they fill
     * the IOMMU TLBs but have no GPU consumer and never enter the
     * demand metrics.
     */
    bool isPrefetch = false;
};

/** Fixed-capacity buffer of pending page-walk requests. */
class WalkBuffer
{
  public:
    explicit WalkBuffer(std::size_t capacity) : capacity_(capacity)
    {
        GPUWALK_ASSERT(capacity_ > 0, "walk buffer needs capacity");
        entries_.reserve(capacity_);
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= capacity_; }

    /** Inserts @p w. @pre !full() @return its current index. */
    std::size_t
    insert(PendingWalk w)
    {
        GPUWALK_ASSERT(!full(), "walk buffer overflow");
        entries_.push_back(std::move(w));
        return entries_.size() - 1;
    }

    /** Removes and returns entry @p idx (swap-with-last erase). */
    PendingWalk
    extract(std::size_t idx)
    {
        GPUWALK_ASSERT(idx < entries_.size(), "bad buffer index ", idx);
        PendingWalk out = std::move(entries_[idx]);
        entries_[idx] = std::move(entries_.back());
        entries_.pop_back();
        return out;
    }

    PendingWalk &at(std::size_t idx) { return entries_.at(idx); }
    const PendingWalk &at(std::size_t idx) const
    {
        return entries_.at(idx);
    }

    /** Index of the oldest (lowest seq) entry. @pre !empty() */
    std::size_t
    oldestIndex() const
    {
        GPUWALK_ASSERT(!empty(), "oldestIndex on empty buffer");
        std::size_t best = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].seq < entries_[best].seq)
                best = i;
        }
        return best;
    }

    /**
     * Applies @p fn to every entry issued by @p instruction.
     * Used by arrival-time re-scoring (paper action 1-b).
     */
    template <typename Fn>
    void
    forEachOfInstruction(tlb::InstructionId instruction, Fn &&fn)
    {
        for (auto &e : entries_) {
            if (e.request.instruction == instruction)
                fn(e);
        }
    }

    /** Direct access for schedulers' scan loops. */
    const std::vector<PendingWalk> &entries() const { return entries_; }
    std::vector<PendingWalk> &entries() { return entries_; }

  private:
    std::size_t capacity_;
    std::vector<PendingWalk> entries_;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_PENDING_WALK_HH
