#include "core/simt_aware_scheduler.hh"

namespace gpuwalk::core {

std::size_t
SimtAwareScheduler::selectNext(const WalkBuffer &buffer)
{
    GPUWALK_ASSERT(!buffer.empty(), "selectNext on empty buffer");

    // 0. Anti-starvation: oldest request past the aging threshold.
    // O(1) until the buffer's bypass watermark crosses the threshold,
    // which the default two-million threshold makes a rare event.
    {
        const std::size_t aged =
            buffer.agingCandidate(cfg_.agingThreshold);
        if (aged != WalkBuffer::npos) {
            ++agingOverrides_;
            lastPick_ = PickReason::Aging;
            return aged;
        }
    }

    // 1. Batch with the most recently dispatched instruction: one
    // bucket-index probe yields its oldest pending sibling.
    if (cfg_.enableBatching && lastInstruction_) {
        const std::size_t sibling =
            buffer.instructionHead(*lastInstruction_);
        if (sibling != WalkBuffer::npos) {
            ++batchPicks_;
            lastPick_ = PickReason::Batch;
            return sibling;
        }
        // The buffer holds no entry for that instruction: its walks
        // have drained, so the ID is stale. Clear it rather than let
        // it linger and claim future Batch labels for an instruction
        // that stopped being "the one being serviced" long ago.
        lastInstruction_.reset();
    }

    // 2. Shortest job first by score — the buffer's score index hands
    // over the exact (score, seq) minimum; FCFS without scoring.
    if (cfg_.enableSjf) {
        lastPick_ = PickReason::Sjf;
        return buffer.sjfBestIndex();
    }
    lastPick_ = PickReason::Policy;
    return buffer.oldestIndex();
}

void
SimtAwareScheduler::onDispatch(WalkBuffer &buffer, const PendingWalk &walk)
{
    lastInstruction_ = walk.request.instruction;
    WalkScheduler::onDispatch(buffer, walk); // aging bookkeeping
}

} // namespace gpuwalk::core
