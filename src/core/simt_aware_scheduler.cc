#include "core/simt_aware_scheduler.hh"

namespace gpuwalk::core {

std::size_t
SimtAwareScheduler::selectNext(const WalkBuffer &buffer)
{
    const auto &entries = buffer.entries();
    GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");

    // 0. Anti-starvation: oldest request past the aging threshold.
    {
        std::size_t best = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].bypassed < cfg_.agingThreshold)
                continue;
            if (best == entries.size()
                || entries[i].seq < entries[best].seq) {
                best = i;
            }
        }
        if (best != entries.size()) {
            ++agingOverrides_;
            lastPick_ = PickReason::Aging;
            return best;
        }
    }

    // 1. Batch with the most recently dispatched instruction.
    if (cfg_.enableBatching && lastInstruction_) {
        std::size_t best = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].request.instruction != *lastInstruction_)
                continue;
            if (best == entries.size()
                || entries[i].seq < entries[best].seq) {
                best = i;
            }
        }
        if (best != entries.size()) {
            ++batchPicks_;
            lastPick_ = PickReason::Batch;
            return best;
        }
        // The buffer holds no entry for that instruction: its walks
        // have drained, so the ID is stale. Clear it rather than let
        // it linger and claim future Batch labels for an instruction
        // that stopped being "the one being serviced" long ago.
        lastInstruction_.reset();
    }

    // 2. Shortest job first by score; FCFS without scoring enabled.
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        if (cfg_.enableSjf) {
            if (entries[i].score != entries[best].score) {
                if (entries[i].score < entries[best].score)
                    best = i;
                continue;
            }
        }
        if (entries[i].seq < entries[best].seq)
            best = i;
    }
    lastPick_ = cfg_.enableSjf ? PickReason::Sjf : PickReason::Policy;
    return best;
}

void
SimtAwareScheduler::onDispatch(WalkBuffer &buffer, const PendingWalk &walk)
{
    lastInstruction_ = walk.request.instruction;
    WalkScheduler::onDispatch(buffer, walk); // aging bookkeeping
}

} // namespace gpuwalk::core
