#include "core/walk_scheduler.hh"

#include "core/fair_share_scheduler.hh"
#include "core/fcfs_scheduler.hh"
#include "core/random_scheduler.hh"
#include "core/oldest_job_scheduler.hh"
#include "core/simt_aware_scheduler.hh"
#include "core/srpt_scheduler.hh"
#include "core/token_bucket_scheduler.hh"
#include "core/weighted_share_scheduler.hh"
#include "sim/logging.hh"

namespace gpuwalk::core {

std::string
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return "fcfs";
      case SchedulerKind::Random:
        return "random";
      case SchedulerKind::SjfOnly:
        return "sjf-only";
      case SchedulerKind::BatchOnly:
        return "batch-only";
      case SchedulerKind::SimtAware:
        return "simt-aware";
      case SchedulerKind::OldestJob:
        return "oldest-job";
      case SchedulerKind::Srpt:
        return "srpt";
      case SchedulerKind::FairShare:
        return "fair-share";
      case SchedulerKind::TokenBucket:
        return "token-bucket";
      case SchedulerKind::WeightedShare:
        return "weighted-share";
    }
    sim::panic("unknown SchedulerKind");
}

const char *
toString(PickReason reason)
{
    switch (reason) {
      case PickReason::Immediate:
        return "immediate";
      case PickReason::Policy:
        return "policy";
      case PickReason::Batch:
        return "batch";
      case PickReason::Sjf:
        return "sjf";
      case PickReason::Aging:
        return "aging";
      case PickReason::Overdraft:
        return "overdraft";
      case PickReason::Speculative:
        return "speculative";
    }
    sim::panic("unknown PickReason");
}

SchedulerKind
schedulerKindFromString(const std::string &name)
{
    if (name == "fcfs")
        return SchedulerKind::Fcfs;
    if (name == "random")
        return SchedulerKind::Random;
    if (name == "sjf-only" || name == "sjf")
        return SchedulerKind::SjfOnly;
    if (name == "batch-only" || name == "batch")
        return SchedulerKind::BatchOnly;
    if (name == "simt-aware" || name == "simt")
        return SchedulerKind::SimtAware;
    if (name == "oldest-job" || name == "ojf")
        return SchedulerKind::OldestJob;
    if (name == "srpt")
        return SchedulerKind::Srpt;
    if (name == "fair-share" || name == "fair")
        return SchedulerKind::FairShare;
    if (name == "token-bucket" || name == "token")
        return SchedulerKind::TokenBucket;
    if (name == "weighted-share" || name == "wfq")
        return SchedulerKind::WeightedShare;
    sim::fatal("unknown scheduler '", name,
               "' (expected fcfs|random|sjf-only|batch-only|"
               "simt-aware|oldest-job|srpt|fair-share|"
               "token-bucket|weighted-share)");
}

std::unique_ptr<WalkScheduler>
makeScheduler(SchedulerKind kind, std::uint64_t seed,
              const SimtSchedulerConfig &cfg,
              const QosSchedulerConfig &qos)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::Random:
        return std::make_unique<RandomScheduler>(seed);
      case SchedulerKind::SjfOnly: {
        SimtSchedulerConfig c = cfg;
        c.enableSjf = true;
        c.enableBatching = false;
        return std::make_unique<SimtAwareScheduler>(c);
      }
      case SchedulerKind::BatchOnly: {
        SimtSchedulerConfig c = cfg;
        c.enableSjf = false;
        c.enableBatching = true;
        return std::make_unique<SimtAwareScheduler>(c);
      }
      case SchedulerKind::SimtAware: {
        SimtSchedulerConfig c = cfg;
        c.enableSjf = true;
        c.enableBatching = true;
        return std::make_unique<SimtAwareScheduler>(c);
      }
      case SchedulerKind::OldestJob:
        return std::make_unique<OldestJobScheduler>();
      case SchedulerKind::Srpt:
        // The owner (the IOMMU) wires the PWC estimator in.
        return std::make_unique<SrptScheduler>();
      case SchedulerKind::FairShare:
        return std::make_unique<FairShareScheduler>();
      case SchedulerKind::TokenBucket:
        return std::make_unique<TokenBucketScheduler>(cfg, qos);
      case SchedulerKind::WeightedShare:
        return std::make_unique<WeightedShareScheduler>(cfg, qos);
    }
    sim::panic("unknown SchedulerKind");
}

} // namespace gpuwalk::core
