#include "core/weighted_share_scheduler.hh"

#include <algorithm>
#include <limits>

namespace gpuwalk::core {

WeightedShareScheduler::WeightedShareScheduler(
    const SimtSchedulerConfig &cfg, const QosSchedulerConfig &qos)
    : cfg_(cfg), qos_(qos)
{
}

std::size_t
WeightedShareScheduler::selectNext(const WalkBuffer &buffer)
{
    GPUWALK_ASSERT(!buffer.empty(), "selectNext on empty buffer");

    // 0. Anti-starvation first: the weights shape throughput, the
    // aging threshold bounds latency.
    {
        const std::size_t aged =
            buffer.agingCandidate(cfg_.agingThreshold);
        if (aged != WalkBuffer::npos) {
            ++agingOverrides_;
            lastPick_ = PickReason::Aging;
            return aged;
        }
    }

    const std::size_t limit = buffer.contextLimit();
    if (service_.size() < limit) {
        service_.resize(limit, 0);
        wasPending_.resize(limit, 0);
    }

    // Floor-on-activation: a tenant re-entering the pending set after
    // an idle spell catches up to the least-served tenant that stayed
    // busy, instead of draining its banked deficit first. Two passes —
    // the floor must be the continuing tenants' minimum, not skewed by
    // other returners.
    std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t ctx = 0; ctx < limit; ++ctx) {
        const auto id = static_cast<tlb::ContextId>(ctx);
        if (buffer.contextCount(id) > 0 && wasPending_[ctx])
            floor = std::min(floor, service_[ctx]);
    }
    std::size_t best = WalkBuffer::npos;
    tlb::ContextId bestCtx = 0;
    for (std::size_t ctx = 0; ctx < limit; ++ctx) {
        const auto id = static_cast<tlb::ContextId>(ctx);
        const bool pending = buffer.contextCount(id) > 0;
        if (pending && !wasPending_[ctx]
            && floor != std::numeric_limits<std::uint64_t>::max())
            service_[ctx] = std::max(service_[ctx], floor);
        wasPending_[ctx] = pending;
        if (!pending)
            continue;
        // 1. Least charged virtual service wins; ties to the lowest
        // ContextId for determinism.
        if (best == WalkBuffer::npos || service_[ctx] < service_[bestCtx])
        {
            best = ctx;
            bestCtx = id;
        }
    }
    GPUWALK_ASSERT(best != WalkBuffer::npos,
                   "non-empty buffer with no pending tenant");

    // 2. Within the chosen tenant: batching, then the tenant-local
    // (score, seq) minimum.
    if (lastInstruction_) {
        const std::size_t sibling =
            buffer.instructionHead(*lastInstruction_);
        if (sibling == WalkBuffer::npos) {
            lastInstruction_.reset(); // drained; the ID is stale
        } else if (buffer.at(sibling).request.ctx == bestCtx) {
            lastPick_ = PickReason::Batch;
            return sibling;
        }
    }
    lastPick_ = PickReason::Sjf;
    return buffer.sjfBestOfContext(bestCtx);
}

void
WeightedShareScheduler::onDispatch(WalkBuffer &buffer,
                                   const PendingWalk &walk)
{
    const tlb::ContextId ctx = walk.request.ctx;
    if (service_.size() <= ctx) {
        service_.resize(ctx + 1, 0);
        wasPending_.resize(ctx + 1, 0);
    }
    // Charge the walk's estimated memory accesses (1-4), deflated by
    // the tenant's weight. A zero estimate (cold scoring path) still
    // charges one access so service strictly increases.
    const std::uint64_t accesses =
        walk.estimatedAccesses ? walk.estimatedAccesses : 1;
    service_[ctx] += accesses * scale / qos_.weightOf(ctx);
    lastInstruction_ = walk.request.instruction;
    WalkScheduler::onDispatch(buffer, walk); // aging bookkeeping
}

} // namespace gpuwalk::core
