/**
 * @file
 * Token-bucket QoS walk scheduler — cross-tenant rate limiting
 * composed with the paper's SJF + batching + aging machinery.
 *
 * Walker dispatches are grouped into tumbling windows of
 * QosSchedulerConfig::tokenWindow scheduler-mediated dispatches; within
 * one window each tenant may win at most tokenQuota of them through
 * the regular policy rules. Selection order when a walker frees up:
 *   0. Aging override (global, quota-exempt): starvation freedom must
 *      not depend on a tenant's budget.
 *   1. Batching with the in-service instruction, but only while its
 *      tenant is under quota.
 *   2. SJF across the per-tenant (score, seq) minima of every
 *      under-quota tenant with pending work.
 *   3. Overdraft: every pending tenant is over budget, so rather than
 *      idle a walker the global SJF minimum is dispatched anyway
 *      (work-conserving; tagged PickReason::Overdraft in traces so the
 *      fairness tests can exempt it from the budget invariant).
 *
 * Immediate dispatches (idle walker, scheduler never consulted) and
 * prefetches do not pass through selectNext/onDispatch and therefore
 * neither consume tokens nor advance the window.
 */

#ifndef GPUWALK_CORE_TOKEN_BUCKET_SCHEDULER_HH
#define GPUWALK_CORE_TOKEN_BUCKET_SCHEDULER_HH

#include <optional>
#include <vector>

#include "core/walk_scheduler.hh"

namespace gpuwalk::core {

/** Per-tenant token-bucket rate limiter over SJF + batching. */
class TokenBucketScheduler : public WalkScheduler
{
  public:
    explicit TokenBucketScheduler(const SimtSchedulerConfig &cfg = {},
                                  const QosSchedulerConfig &qos = {});

    std::string name() const override { return "token-bucket"; }

    /** SJF within and across tenants needs arrival-time scores. */
    bool needsScores() const override { return true; }

    std::size_t selectNext(const WalkBuffer &buffer) override;

    void onDispatch(WalkBuffer &buffer, const PendingWalk &walk) override;

    PickReason lastPickReason() const override { return lastPick_; }

    /** Tokens tenant @p ctx spent in the current window. */
    unsigned
    spentTokens(tlb::ContextId ctx) const
    {
        return ctx < spent_.size() ? spent_[ctx] : 0;
    }

    /** Scheduler-mediated dispatches into the current window so far. */
    unsigned windowFill() const { return windowFill_; }

    /** Times every pending tenant was over budget (rule 3 fired). */
    std::uint64_t overdrafts() const { return overdrafts_; }

    /** Times the aging override fired. */
    std::uint64_t agingOverrides() const { return agingOverrides_; }

  private:
    bool underQuota(tlb::ContextId ctx) const
    {
        return spentTokens(ctx) < qos_.tokenQuota;
    }

    SimtSchedulerConfig cfg_;
    QosSchedulerConfig qos_;

    /** Tokens spent per tenant within the current tumbling window. */
    std::vector<unsigned> spent_;
    unsigned windowFill_ = 0;

    std::optional<tlb::InstructionId> lastInstruction_;
    PickReason lastPick_ = PickReason::Policy;
    std::uint64_t overdrafts_ = 0;
    std::uint64_t agingOverrides_ = 0;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_TOKEN_BUCKET_SCHEDULER_HH
