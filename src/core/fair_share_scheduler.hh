/**
 * @file
 * App-fair walk scheduling for multi-program GPUs.
 *
 * The QoS design the paper's conclusion invites (cf. its §VII-B
 * citations: STFM, PAR-BS, DASH — fairness policies for shared DRAM):
 * round-robin the walker grant across co-scheduled applications so a
 * translation-light tenant can never be starved by a flood from a
 * translation-heavy one, and apply the paper's SIMT-aware ordering
 * (batching, then shortest job by score) *within* each application's
 * queue.
 */

#ifndef GPUWALK_CORE_FAIR_SHARE_SCHEDULER_HH
#define GPUWALK_CORE_FAIR_SHARE_SCHEDULER_HH

#include <optional>

#include "core/walk_scheduler.hh"

namespace gpuwalk::core {

/** Round-robin across apps; SIMT-aware ordering within an app. */
class FairShareScheduler : public WalkScheduler
{
  public:
    std::string name() const override { return "fair-share"; }

    /** Per-app SJF uses the same arrival-time scores as SIMT-aware. */
    bool needsScores() const override { return true; }

    std::size_t
    selectNext(const WalkBuffer &buffer) override
    {
        const auto &entries = buffer.entries();
        GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");

        // Batch with the in-service instruction (paper rule 1) — this
        // never crosses apps, because instructions belong to one app.
        // One bucket-index probe yields its oldest pending sibling.
        if (lastInstruction_) {
            const std::size_t sibling =
                buffer.instructionHead(*lastInstruction_);
            if (sibling != WalkBuffer::npos)
                return sibling;
        }

        // Round-robin grant: the first app after the last-served one
        // (in app-ID order) that has pending work wins the walker.
        std::uint32_t max_app = 0;
        for (const auto &e : entries)
            max_app = std::max(max_app, e.request.app);

        std::optional<std::uint32_t> grant;
        for (std::uint32_t probe = 1; probe <= max_app + 1; ++probe) {
            const std::uint32_t app =
                (lastApp_ + probe) % (max_app + 1);
            for (const auto &e : entries) {
                if (e.request.app == app) {
                    grant = app;
                    break;
                }
            }
            if (grant)
                break;
        }
        GPUWALK_ASSERT(grant.has_value(), "no app with pending walks");

        // SIMT-aware rule 2 within the granted app: lowest score,
        // oldest first.
        std::size_t best = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].request.app != *grant)
                continue;
            if (best == entries.size()
                || entries[i].score < entries[best].score
                || (entries[i].score == entries[best].score
                    && entries[i].seq < entries[best].seq)) {
                best = i;
            }
        }
        return best;
    }

    void
    onDispatch(WalkBuffer &buffer, const PendingWalk &walk) override
    {
        lastInstruction_ = walk.request.instruction;
        lastApp_ = walk.request.app;
        WalkScheduler::onDispatch(buffer, walk);
    }

  private:
    std::optional<tlb::InstructionId> lastInstruction_;
    std::uint32_t lastApp_ = 0;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_FAIR_SHARE_SCHEDULER_HH
