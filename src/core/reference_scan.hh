/**
 * @file
 * Reference linear-scan implementations of the scheduler pick rules.
 *
 * These are the scan-at-dispatch loops the production schedulers used
 * before WalkBuffer grew incremental pick indexes — kept verbatim (up
 * to naming) as executable specifications. The differential fuzz test
 * (test_scheduler_diff.cc) runs them side by side with the indexed
 * schedulers over randomized request streams and asserts identical
 * picks and PickReasons at every decision, which is what lets the O(1)
 * index paths claim bit-identical behavior rather than merely similar
 * policy. Not compiled into the simulator targets.
 */

#ifndef GPUWALK_CORE_REFERENCE_SCAN_HH
#define GPUWALK_CORE_REFERENCE_SCAN_HH

#include <optional>

#include "core/walk_scheduler.hh"

namespace gpuwalk::core::reference {

/** FCFS: oldest entry by seq, by full scan. */
inline std::size_t
fcfsSelect(const WalkBuffer &buffer)
{
    const auto &entries = buffer.entries();
    GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].seq < entries[best].seq)
            best = i;
    }
    return best;
}

/**
 * The SIMT-aware selection rules (aging, batching, SJF) as full scans.
 * Covers the SjfOnly/BatchOnly ablations through the same config flags
 * the production scheduler takes. Mirrors SimtAwareScheduler's state:
 * lastInstruction must be updated via onDispatch exactly as the
 * production scheduler's is.
 */
class SimtScan
{
  public:
    explicit SimtScan(const SimtSchedulerConfig &cfg = {}) : cfg_(cfg) {}

    std::size_t
    selectNext(const WalkBuffer &buffer)
    {
        const auto &entries = buffer.entries();
        GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");

        // 0. Anti-starvation: oldest request past the aging threshold.
        {
            std::size_t best = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].bypassed < cfg_.agingThreshold)
                    continue;
                if (best == entries.size()
                    || entries[i].seq < entries[best].seq) {
                    best = i;
                }
            }
            if (best != entries.size()) {
                lastPick_ = PickReason::Aging;
                return best;
            }
        }

        // 1. Batch with the most recently dispatched instruction.
        if (cfg_.enableBatching && lastInstruction_) {
            std::size_t best = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].request.instruction != *lastInstruction_)
                    continue;
                if (best == entries.size()
                    || entries[i].seq < entries[best].seq) {
                    best = i;
                }
            }
            if (best != entries.size()) {
                lastPick_ = PickReason::Batch;
                return best;
            }
            lastInstruction_.reset();
        }

        // 2. Shortest job first by score; FCFS without scoring enabled.
        std::size_t best = 0;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (cfg_.enableSjf) {
                if (entries[i].score != entries[best].score) {
                    if (entries[i].score < entries[best].score)
                        best = i;
                    continue;
                }
            }
            if (entries[i].seq < entries[best].seq)
                best = i;
        }
        lastPick_ = cfg_.enableSjf ? PickReason::Sjf : PickReason::Policy;
        return best;
    }

    void
    onDispatch(const PendingWalk &walk)
    {
        lastInstruction_ = walk.request.instruction;
    }

    PickReason lastPickReason() const { return lastPick_; }

  private:
    SimtSchedulerConfig cfg_;
    std::optional<tlb::InstructionId> lastInstruction_;
    PickReason lastPick_ = PickReason::Policy;
};

/**
 * The fair-share selection rules (batch, round-robin app grant,
 * per-app SJF) as full scans. Note the batch rule deliberately leaves
 * a stale lastInstruction in place on a failed probe, matching the
 * production scheduler.
 */
class FairShareScan
{
  public:
    std::size_t
    selectNext(const WalkBuffer &buffer)
    {
        const auto &entries = buffer.entries();
        GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");

        if (lastInstruction_) {
            std::size_t best = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].request.instruction != *lastInstruction_)
                    continue;
                if (best == entries.size()
                    || entries[i].seq < entries[best].seq) {
                    best = i;
                }
            }
            if (best != entries.size())
                return best;
        }

        std::uint32_t max_app = 0;
        for (const auto &e : entries)
            max_app = std::max(max_app, e.request.app);

        std::optional<std::uint32_t> grant;
        for (std::uint32_t probe = 1; probe <= max_app + 1; ++probe) {
            const std::uint32_t app =
                (lastApp_ + probe) % (max_app + 1);
            for (const auto &e : entries) {
                if (e.request.app == app) {
                    grant = app;
                    break;
                }
            }
            if (grant)
                break;
        }
        GPUWALK_ASSERT(grant.has_value(), "no app with pending walks");

        std::size_t best = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].request.app != *grant)
                continue;
            if (best == entries.size()
                || entries[i].score < entries[best].score
                || (entries[i].score == entries[best].score
                    && entries[i].seq < entries[best].seq)) {
                best = i;
            }
        }
        return best;
    }

    void
    onDispatch(const PendingWalk &walk)
    {
        lastInstruction_ = walk.request.instruction;
        lastApp_ = walk.request.app;
    }

  private:
    std::optional<tlb::InstructionId> lastInstruction_;
    std::uint32_t lastApp_ = 0;
};

} // namespace gpuwalk::core::reference

#endif // GPUWALK_CORE_REFERENCE_SCAN_HH
