/**
 * @file
 * Oldest-job-first (OJF) walk scheduling.
 *
 * A PAR-BS-flavoured alternative (the paper's §VII cites batch
 * scheduling at memory controllers [40]): requests are serviced
 * instruction by instruction in the order the *instructions* first
 * appeared, i.e., all walks of the oldest instruction before any walk
 * of a younger one — even when the oldest instruction's earliest
 * walks were already dispatched. This isolates the batching idea with
 * an age priority instead of a length priority: the natural
 * fairness-first counterpart to the paper's SJF-first design.
 */

#ifndef GPUWALK_CORE_OLDEST_JOB_SCHEDULER_HH
#define GPUWALK_CORE_OLDEST_JOB_SCHEDULER_HH

#include "core/walk_scheduler.hh"
#include "sim/flat_map.hh"

namespace gpuwalk::core {

/** Completes whole instructions in instruction-age order. */
class OldestJobScheduler : public WalkScheduler
{
  public:
    std::string name() const override { return "oldest-job"; }

    std::size_t
    selectNext(const WalkBuffer &buffer) override
    {
        const auto &entries = buffer.entries();
        GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");

        // An instruction's age is the seq of its first-ever request,
        // remembered across dispatches (the buffer alone forgets once
        // early siblings are serviced).
        for (const auto &e : entries) {
            auto [it, inserted] = firstSeen_.try_emplace(
                e.request.instruction, e.seq);
            if (!inserted && e.seq < it->second)
                it->second = e.seq;
        }

        std::size_t best = 0;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            const auto age_i =
                firstSeen_.at(entries[i].request.instruction);
            const auto age_b =
                firstSeen_.at(entries[best].request.instruction);
            if (age_i != age_b) {
                if (age_i < age_b)
                    best = i;
                continue;
            }
            if (entries[i].seq < entries[best].seq)
                best = i;
        }
        return best;
    }

    void onDispatch(WalkBuffer &, const PendingWalk &) override {}

  private:
    /**
     * First-arrival seq per instruction. Grows with the number of
     * distinct instructions that ever queued — bounded by the run's
     * instruction count, acceptable for an analysis policy.
     */
    sim::FlatMap<tlb::InstructionId, std::uint64_t> firstSeen_;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_OLDEST_JOB_SCHEDULER_HH
