/**
 * @file
 * Shortest-remaining-processing-time (SRPT) walk scheduling — the
 * "oracle" variant of the paper's key idea 1.
 *
 * The paper scores requests once, at arrival, because "it is
 * infeasible for the scheduler to re-calculate scores of every
 * pending request at the time of request selection" (§IV). This
 * scheduler does exactly that infeasible thing: at every selection it
 * re-probes the PWCs for each buffered request and ranks instructions
 * by their *current remaining* work (dispatched walks no longer
 * count, and PWC contents are fresh). Comparing it against the
 * SIMT-aware scheduler quantifies how much accuracy the paper's cheap
 * arrival-time estimate and counter-pinning actually give up.
 *
 * Not a hardware proposal — an analysis instrument.
 */

#ifndef GPUWALK_CORE_SRPT_SCHEDULER_HH
#define GPUWALK_CORE_SRPT_SCHEDULER_HH

#include <functional>
#include <optional>

#include "core/walk_scheduler.hh"
#include "sim/flat_map.hh"

namespace gpuwalk::core {

/** Re-scores every pending request at selection time. */
class SrptScheduler : public WalkScheduler
{
  public:
    /** Estimates the memory accesses one walk would need (1-4). */
    using Estimator =
        std::function<unsigned(mem::Addr va_page, tlb::ContextId ctx)>;

    explicit SrptScheduler(bool enable_batching = true)
        : batching_(enable_batching)
    {}

    /** The IOMMU wires its PWC probe in here after construction. */
    void setEstimator(Estimator estimator)
    {
        estimator_ = std::move(estimator);
    }

    std::string name() const override { return "srpt"; }

    /** Scores are recomputed here; arrival-time scoring is unused. */
    bool needsScores() const override { return false; }

    std::size_t
    selectNext(const WalkBuffer &buffer) override
    {
        const auto &entries = buffer.entries();
        GPUWALK_ASSERT(!entries.empty(), "selectNext on empty buffer");
        GPUWALK_ASSERT(estimator_, "SRPT needs an estimator");

        // Batch with the in-service instruction first, like the
        // SIMT-aware scheduler's rule 1 (one bucket-index probe).
        if (batching_ && lastInstruction_) {
            const std::size_t sibling =
                buffer.instructionHead(*lastInstruction_);
            if (sibling != WalkBuffer::npos)
                return sibling;
        }

        // Remaining work per instruction, from fresh PWC estimates of
        // the requests still in the buffer.
        remaining_.clear();
        for (const auto &e : entries) {
            remaining_[e.request.instruction] +=
                estimator_(e.request.vaPage, e.request.ctx);
        }

        std::size_t best = 0;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            const auto ri = remaining_.at(entries[i].request.instruction);
            const auto rb =
                remaining_.at(entries[best].request.instruction);
            if (ri != rb) {
                if (ri < rb)
                    best = i;
                continue;
            }
            if (entries[i].seq < entries[best].seq)
                best = i;
        }
        return best;
    }

    void
    onDispatch(WalkBuffer &buffer, const PendingWalk &walk) override
    {
        lastInstruction_ = walk.request.instruction;
        WalkScheduler::onDispatch(buffer, walk);
    }

  private:
    bool batching_;
    Estimator estimator_;
    std::optional<tlb::InstructionId> lastInstruction_;
    /** Scratch map reused across selections to avoid reallocation. */
    sim::FlatMap<tlb::InstructionId, std::uint64_t> remaining_;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_SRPT_SCHEDULER_HH
