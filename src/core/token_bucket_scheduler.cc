#include "core/token_bucket_scheduler.hh"

#include <algorithm>

namespace gpuwalk::core {

TokenBucketScheduler::TokenBucketScheduler(const SimtSchedulerConfig &cfg,
                                           const QosSchedulerConfig &qos)
    : cfg_(cfg), qos_(qos)
{
    GPUWALK_ASSERT(qos_.tokenWindow > 0, "token window must be positive");
    GPUWALK_ASSERT(qos_.tokenQuota > 0, "token quota must be positive");
}

std::size_t
TokenBucketScheduler::selectNext(const WalkBuffer &buffer)
{
    GPUWALK_ASSERT(!buffer.empty(), "selectNext on empty buffer");

    // 0. Anti-starvation, budget-exempt: a tenant must not be able to
    // starve another into its aging threshold merely by holding quota.
    {
        const std::size_t aged =
            buffer.agingCandidate(cfg_.agingThreshold);
        if (aged != WalkBuffer::npos) {
            ++agingOverrides_;
            lastPick_ = PickReason::Aging;
            return aged;
        }
    }

    // 1. Batch with the in-service instruction while its tenant still
    // holds tokens. An over-budget tenant loses its batch, but the
    // instruction ID is kept: the budget resets next window and its
    // siblings may still be pending then.
    if (lastInstruction_) {
        const std::size_t sibling =
            buffer.instructionHead(*lastInstruction_);
        if (sibling == WalkBuffer::npos) {
            lastInstruction_.reset(); // drained; the ID is stale
        } else if (underQuota(buffer.at(sibling).request.ctx)) {
            lastPick_ = PickReason::Batch;
            return sibling;
        }
    }

    // 2. SJF restricted to under-quota tenants: compare the per-tenant
    // (score, seq) minima. Tenant IDs are small and dense, so the scan
    // over contextLimit() is a handful of iterations.
    std::size_t best = WalkBuffer::npos;
    for (std::size_t ctx = 0; ctx < buffer.contextLimit(); ++ctx) {
        const auto id = static_cast<tlb::ContextId>(ctx);
        if (buffer.contextCount(id) == 0 || !underQuota(id))
            continue;
        const std::size_t cand = buffer.sjfBestOfContext(id);
        if (best == WalkBuffer::npos)
            best = cand;
        else if (buffer.at(cand).score < buffer.at(best).score
                 || (buffer.at(cand).score == buffer.at(best).score
                     && buffer.at(cand).seq < buffer.at(best).seq))
            best = cand;
    }
    if (best != WalkBuffer::npos) {
        lastPick_ = PickReason::Sjf;
        return best;
    }

    // 3. Work-conserving overdraft: every pending tenant is over
    // budget; dispatch the global SJF minimum rather than idle.
    ++overdrafts_;
    lastPick_ = PickReason::Overdraft;
    return buffer.sjfBestIndex();
}

void
TokenBucketScheduler::onDispatch(WalkBuffer &buffer,
                                 const PendingWalk &walk)
{
    const tlb::ContextId ctx = walk.request.ctx;
    if (spent_.size() <= ctx)
        spent_.resize(ctx + 1, 0);
    ++spent_[ctx];
    if (++windowFill_ >= qos_.tokenWindow) {
        // Tumbling window boundary: everyone's budget refills.
        windowFill_ = 0;
        std::fill(spent_.begin(), spent_.end(), 0u);
    }
    lastInstruction_ = walk.request.instruction;
    WalkScheduler::onDispatch(buffer, walk); // aging bookkeeping
}

} // namespace gpuwalk::core
