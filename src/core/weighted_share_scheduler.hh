/**
 * @file
 * Weighted-share QoS walk scheduler — start-time-fair-queueing-style
 * virtual service per tenant, composed with the paper's SJF + batching
 * within a tenant and the global aging override across tenants.
 *
 * Each tenant accumulates virtual service: every scheduler-mediated
 * dispatch charges estimatedAccesses * scale / weight, so a weight-2
 * tenant pays half price and receives twice the walker throughput at
 * saturation. Selection order when a walker frees up:
 *   0. Aging override (global): the provable starvation bound — no
 *      request waits more than threshold + capacity scheduler-mediated
 *      dispatches, whatever the weights say.
 *   1. Pick the pending tenant with the least charged virtual service
 *      (ties to the lowest ContextId).
 *   2. Within that tenant: batch with the in-service instruction if it
 *      belongs to the tenant, else the tenant's (score, seq) minimum.
 *
 * A tenant going idle stops accumulating service; when it returns its
 * stale-low total is floored to the minimum among tenants that stayed
 * busy, so sleeping does not bank priority (the classic virtual-time
 * catch-up rule).
 */

#ifndef GPUWALK_CORE_WEIGHTED_SHARE_SCHEDULER_HH
#define GPUWALK_CORE_WEIGHTED_SHARE_SCHEDULER_HH

#include <optional>
#include <vector>

#include "core/walk_scheduler.hh"

namespace gpuwalk::core {

/** Starvation-free weighted sharing of walker service. */
class WeightedShareScheduler : public WalkScheduler
{
  public:
    explicit WeightedShareScheduler(const SimtSchedulerConfig &cfg = {},
                                    const QosSchedulerConfig &qos = {});

    std::string name() const override { return "weighted-share"; }

    /** Charges estimatedAccesses, ranks by score: both need scoring. */
    bool needsScores() const override { return true; }

    std::size_t selectNext(const WalkBuffer &buffer) override;

    void onDispatch(WalkBuffer &buffer, const PendingWalk &walk) override;

    PickReason lastPickReason() const override { return lastPick_; }

    /** Charged virtual service of tenant @p ctx (scaled integer). */
    std::uint64_t
    virtualService(tlb::ContextId ctx) const
    {
        return ctx < service_.size() ? service_[ctx] : 0;
    }

    /** Times the aging override fired. */
    std::uint64_t agingOverrides() const { return agingOverrides_; }

  private:
    /** Fixed-point scale of the service charge: a unit access at
     *  weight w costs scale / w, exactly representable for the small
     *  integer weights the config takes. */
    static constexpr std::uint64_t scale = 1 << 10;

    SimtSchedulerConfig cfg_;
    QosSchedulerConfig qos_;

    /** Charged virtual service per tenant (index = ContextId). */
    std::vector<std::uint64_t> service_;

    /** Whether the tenant was pending at the last selection — drives
     *  the idle-return service floor. */
    std::vector<std::uint8_t> wasPending_;

    std::optional<tlb::InstructionId> lastInstruction_;
    PickReason lastPick_ = PickReason::Policy;
    std::uint64_t agingOverrides_ = 0;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_WEIGHTED_SHARE_SCHEDULER_HH
