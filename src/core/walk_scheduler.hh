/**
 * @file
 * The page-table-walk scheduler interface — the paper's contribution
 * point. When a hardware walker becomes free, the IOMMU asks the
 * active scheduler which pending request to service next.
 */

#ifndef GPUWALK_CORE_WALK_SCHEDULER_HH
#define GPUWALK_CORE_WALK_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/pending_walk.hh"

namespace gpuwalk::core {

/** The scheduling policies studied by the paper + our ablations. */
enum class SchedulerKind
{
    Fcfs,      ///< baseline: first come, first served
    Random,    ///< naive random pick (paper Fig. 2 strawman)
    SjfOnly,   ///< ablation: key idea 1 only (score-based SJF)
    BatchOnly, ///< ablation: key idea 2 only (same-instruction batching)
    SimtAware, ///< the paper's full scheduler: SJF + batching + aging
    OldestJob, ///< extension: complete instructions in age order
    Srpt,      ///< extension: selection-time re-scoring "oracle"
    FairShare, ///< extension: per-app round-robin + SIMT-aware within

    // QoS policies composing SJF+batching with cross-tenant fairness.
    // Appended at the end: the numeric values above appear in golden
    // trace digests and must not shift.
    TokenBucket,   ///< per-tenant token-bucket rate limiter
    WeightedShare, ///< starvation-free weighted sharing by service
};

/** Printable name of @p kind (matches factory spelling). */
std::string toString(SchedulerKind kind);

/** Parses a scheduler name; fatal() on unknown names. */
SchedulerKind schedulerKindFromString(const std::string &name);

/**
 * Why a dispatch picked the request it did — recorded into Scheduled
 * trace events so ordering claims (batching, SJF, aging) are testable
 * per decision rather than inferred from aggregates.
 */
enum class PickReason : std::uint8_t
{
    Immediate = 0, ///< idle walker, scheduler never consulted
    Policy,        ///< a policy pick with no finer classification
    Batch,         ///< same-instruction batching (paper key idea 2)
    Sjf,           ///< lowest job-length score (paper key idea 1)
    Aging,         ///< anti-starvation override

    /**
     * Work-conserving token-bucket overdraft: every tenant with
     * pending work had exhausted its window budget, so a walker was
     * granted anyway rather than idled. Appended at the end — the
     * values above appear in golden trace digests as Scheduled arg0.
     */
    Overdraft,

    /**
     * A speculative-class walk (Wasp leader lookahead or a buffered
     * prefetch prediction) was dispatched: no demand walk was
     * eligible for the walker, so the scheduler was never consulted.
     * Appended under the same digest-stability discipline.
     */
    Speculative,
};

/** Short name of @p reason (e.g. "batch"). */
const char *toString(PickReason reason);

/**
 * Policy deciding the service order of pending page walks.
 *
 * The IOMMU owns the buffer and the walkers; the scheduler only picks
 * indices and observes dispatches. Implementations must be
 * deterministic given their seed.
 */
class WalkScheduler
{
  public:
    virtual ~WalkScheduler() = default;

    /** Human-readable policy name. */
    virtual std::string name() const = 0;

    /**
     * True if the IOMMU should compute arrival-time PWC score
     * estimates for this policy (actions 1-a/1-b of the paper).
     * Skipping them for FCFS/Random keeps the baseline honest: it
     * does no scoring work.
     */
    virtual bool needsScores() const { return false; }

    /**
     * Picks the buffer index to service next. @pre !buffer.empty()
     * Must not modify the buffer.
     */
    virtual std::size_t selectNext(const WalkBuffer &buffer) = 0;

    /**
     * Classifies the most recent selectNext() decision. Policies with
     * a single rule report Policy; the SIMT-aware scheduler
     * distinguishes its aging/batching/SJF branches.
     */
    virtual PickReason lastPickReason() const
    {
        return PickReason::Policy;
    }

    /**
     * True if this policy maintains the per-entry bypass counters via
     * onDispatch(). Policies that dispatch strictly in arrival order
     * (FCFS) skip the bookkeeping and return false, which lets the
     * conservation auditor demand their buffered entries all show
     * bypassed == 0 — a stale counter there would mean two schedulers
     * disagreed about a shared buffer.
     */
    virtual bool tracksAging() const { return true; }

    /**
     * Observes that @p walk was dispatched to a walker, after it was
     * extracted from @p buffer. Default updates the aging counters:
     * every remaining entry older than the dispatched one was just
     * bypassed. The increment saturates — a wrapped counter would
     * reset a starving request's aging priority back to zero.
     */
    virtual void
    onDispatch(WalkBuffer &buffer, const PendingWalk &walk)
    {
        buffer.recordBypass(walk.seq);
    }
};

/** Anti-starvation and policy knobs for the SIMT-aware scheduler. */
struct SimtSchedulerConfig
{
    /**
     * Aging threshold: a request bypassed this many times is promoted
     * over all others. The paper used two million; sized relative to
     * its much longer simulations, so ours defaults lower but is still
     * rarely hit.
     */
    std::uint64_t agingThreshold = 2'000'000;

    /** Enables key idea 1 (SJF scoring). */
    bool enableSjf = true;

    /** Enables key idea 2 (same-instruction batching). */
    bool enableBatching = true;
};

/** Cross-tenant fairness knobs for the QoS walk schedulers. */
struct QosSchedulerConfig
{
    /**
     * Token bucket: scheduler-mediated dispatches per tumbling window.
     * Each window every tenant's spent tokens reset.
     */
    unsigned tokenWindow = 64;

    /** Token bucket: per-tenant dispatch budget within one window. */
    unsigned tokenQuota = 8;

    /**
     * Weighted share: per-ContextId weights (index = ContextId). A
     * missing or zero entry means weight 1. A tenant's walker service
     * is charged at estimatedAccesses/weight, and the tenant with the
     * least charged service is picked next.
     */
    std::vector<std::uint32_t> shareWeights;

    /** Weight of @p ctx under the missing-entry = 1 convention. */
    std::uint32_t
    weightOf(std::size_t ctx) const
    {
        return ctx < shareWeights.size() && shareWeights[ctx]
                   ? shareWeights[ctx]
                   : 1;
    }
};

/** Creates a scheduler. @p seed only matters for Random; @p qos only
 *  for the TokenBucket/WeightedShare policies. */
std::unique_ptr<WalkScheduler>
makeScheduler(SchedulerKind kind, std::uint64_t seed = 1,
              const SimtSchedulerConfig &cfg = {},
              const QosSchedulerConfig &qos = {});

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_WALK_SCHEDULER_HH
