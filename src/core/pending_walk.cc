/**
 * @file
 * WalkBuffer pick-index maintenance.
 *
 * All three indexes are intrusive doubly-linked lists over the dense
 * entry vector, kept sorted by seq within each list, so every "pick"
 * question a scheduler asks is a list-head read and every insert or
 * extract rewires a constant number of links (inserts append in O(1)
 * because simulator seqs arrive monotonically; the backward walk only
 * runs for the out-of-order sequences unit tests construct).
 */

#include "core/pending_walk.hh"

#include <algorithm>
#include <bit>

namespace gpuwalk::core {

namespace {

constexpr std::uint64_t saturated = ~std::uint64_t{0};

/** @p k saturating increments at once — identical to applying them
 *  one by one, because increments stop exactly at the sentinel. */
void
addSaturating(std::uint64_t &counter, std::uint64_t k)
{
    counter = counter > saturated - k ? saturated : counter + k;
}

} // namespace

WalkBuffer::WalkBuffer(std::size_t capacity) : capacity_(capacity)
{
    GPUWALK_ASSERT(capacity > 0, "walk buffer needs capacity");
    entries_.reserve(capacity);
    links_.reserve(capacity);
    instrIndex_.reserve(capacity);
    deferredBypass_.reserve(bypassBatch);
}

std::size_t
WalkBuffer::insert(PendingWalk w)
{
    GPUWALK_ASSERT(!full(), "walk buffer overflow");
    // A deferred increment must not leak onto an entry that was not
    // yet buffered when its dispatch happened. Simulator seqs arrive
    // monotonically, so only unit tests' out-of-order streams settle
    // here.
    if (!deferredBypass_.empty() && w.seq < maxDeferredSeq_)
        flushBypass();
    const std::size_t idx = entries_.size();
    if (w.bypassed > maxBypassed_)
        maxBypassed_ = w.bypassed;
    entries_.push_back(std::move(w));
    links_.emplace_back();
    linkArrival(idx);
    linkInstruction(idx);
    linkScore(idx);
    linkContext(idx);
    return idx;
}

PendingWalk
WalkBuffer::extract(std::size_t idx)
{
    GPUWALK_ASSERT(idx < entries_.size(), "bad buffer index");
    if (!deferredBypass_.empty()) {
        // Settle this entry's share of the pending increments; the
        // batch stays deferred for the survivors.
        const std::uint64_t seq = entries_[idx].seq;
        std::uint64_t k = 0;
        for (const std::uint64_t s : deferredBypass_)
            k += s > seq ? 1 : 0;
        addSaturating(entries_[idx].bypassed, k);
    }
    unlinkArrival(idx);
    unlinkInstruction(idx);
    unlinkScore(idx);
    unlinkContext(idx);
    PendingWalk out = std::move(entries_[idx]);
    const std::size_t last = entries_.size() - 1;
    if (idx != last) {
        entries_[idx] = std::move(entries_[last]);
        links_[idx] = links_[last];
        repointNeighbors(last, idx);
    }
    entries_.pop_back();
    links_.pop_back();
    if (entries_.empty() && !deferredBypass_.empty()) {
        deferredBypass_.clear();
        maxDeferredSeq_ = 0;
    }
    return out;
}

std::size_t
WalkBuffer::sjfBestIndex() const
{
    GPUWALK_ASSERT(!empty(), "sjfBestIndex on empty buffer");
    if (directCount_ > 0)
        return scoreBuckets_[minDirectScore()].head;
    // Every overflow score exceeds every direct score, so this scan
    // only runs when *all* entries carry out-of-range scores. The
    // list is seq-sorted, so the first strict improvement wins the
    // (score, seq) tie-break.
    std::size_t best = overflow_.head;
    for (std::size_t i = links_[best].scoreNext; i != npos;
         i = links_[i].scoreNext) {
        if (entries_[i].score < entries_[best].score)
            best = i;
    }
    return best;
}

std::size_t
WalkBuffer::sjfBestOfContext(tlb::ContextId ctx) const
{
    std::size_t best = contextHead(ctx);
    if (best == npos)
        return npos;
    // The list is seq-sorted, so only a strict score improvement moves
    // the pick — the same (score, seq) tie-break the global SJF bitmap
    // implements.
    for (std::size_t i = links_[best].ctxNext; i != npos;
         i = links_[i].ctxNext) {
        if (entries_[i].score < entries_[best].score)
            best = i;
    }
    return best;
}

std::size_t
WalkBuffer::agingCandidate(std::uint64_t threshold) const
{
    if (empty())
        return npos;
    // Each pending dispatch raises a counter by at most one, so the
    // settled watermark plus the batch size bounds the true maximum;
    // the settle itself only runs when an override is plausible.
    std::uint64_t bound = maxBypassed_;
    addSaturating(bound, deferredBypass_.size());
    if (bound < threshold)
        return npos;
    syncBypass();
    if (maxBypassed_ < threshold)
        return npos;
    // The watermark says some entry *may* qualify; confirm by walking
    // the arrival list so the hit is the oldest qualifier, exactly as
    // the retired scan picked it. A miss means the watermark was a
    // stale upper bound (the max holder was extracted) — tighten it so
    // the fast path resumes.
    std::uint64_t observed = 0;
    for (std::size_t i = arrivalHead_; i != npos;
         i = links_[i].arrivalNext) {
        if (entries_[i].bypassed >= threshold)
            return i;
        if (entries_[i].bypassed > observed)
            observed = entries_[i].bypassed;
    }
    maxBypassed_ = observed;
    return npos;
}

void
WalkBuffer::recordBypass(std::uint64_t dispatched_seq)
{
    // The arrival head holds the minimum seq, so this is an exact
    // nothing-was-bypassed test (FCFS dispatches always land here).
    if (arrivalHead_ == npos
        || entries_[arrivalHead_].seq >= dispatched_seq)
        return;
    deferredBypass_.push_back(dispatched_seq);
    if (dispatched_seq > maxDeferredSeq_)
        maxDeferredSeq_ = dispatched_seq;
    if (deferredBypass_.size() >= bypassBatch)
        flushBypass();
}

void
WalkBuffer::flushBypass()
{
    // An entry's share of the batch is the number of recorded
    // dispatch seqs strictly above its own.
    std::sort(deferredBypass_.begin(), deferredBypass_.end());
    const auto first = deferredBypass_.begin();
    const auto last = deferredBypass_.end();
    for (PendingWalk &e : entries_) {
        const std::uint64_t k = static_cast<std::uint64_t>(
            last - std::upper_bound(first, last, e.seq));
        if (k == 0)
            continue;
        addSaturating(e.bypassed, k);
        if (e.bypassed > maxBypassed_)
            maxBypassed_ = e.bypassed;
    }
    deferredBypass_.clear();
    maxDeferredSeq_ = 0;
}

void
WalkBuffer::rescoreInstruction(tlb::InstructionId instruction,
                               std::uint64_t score)
{
    const auto it = instrIndex_.find(instruction);
    if (it == instrIndex_.end())
        return;
    for (std::size_t i = buckets_[it->second].head; i != npos;
         i = links_[i].instrNext) {
        entries_[i].score = score;
        resyncScore(i);
    }
}

void
WalkBuffer::linkArrival(std::size_t idx)
{
    const std::uint64_t seq = entries_[idx].seq;
    std::size_t after = arrivalTail_;
    while (after != npos && entries_[after].seq > seq)
        after = links_[after].arrivalPrev;
    links_[idx].arrivalPrev = after;
    if (after == npos) {
        links_[idx].arrivalNext = arrivalHead_;
        arrivalHead_ = idx;
    } else {
        links_[idx].arrivalNext = links_[after].arrivalNext;
        links_[after].arrivalNext = idx;
    }
    if (links_[idx].arrivalNext == npos)
        arrivalTail_ = idx;
    else
        links_[links_[idx].arrivalNext].arrivalPrev = idx;
}

void
WalkBuffer::unlinkArrival(std::size_t idx)
{
    const Links &l = links_[idx];
    if (l.arrivalPrev == npos)
        arrivalHead_ = l.arrivalNext;
    else
        links_[l.arrivalPrev].arrivalNext = l.arrivalNext;
    if (l.arrivalNext == npos)
        arrivalTail_ = l.arrivalPrev;
    else
        links_[l.arrivalNext].arrivalPrev = l.arrivalPrev;
}

void
WalkBuffer::linkInstruction(std::size_t idx)
{
    const auto [it, inserted] =
        instrIndex_.try_emplace(entries_[idx].request.instruction,
                                std::size_t{0});
    if (inserted) {
        if (freeBuckets_.empty()) {
            it->second = buckets_.size();
            buckets_.emplace_back();
        } else {
            it->second = freeBuckets_.back();
            freeBuckets_.pop_back();
            buckets_[it->second] = ListHead{};
        }
    }
    const std::size_t b = it->second;
    links_[idx].bucket = b;
    const std::uint64_t seq = entries_[idx].seq;
    std::size_t after = buckets_[b].tail;
    while (after != npos && entries_[after].seq > seq)
        after = links_[after].instrPrev;
    links_[idx].instrPrev = after;
    if (after == npos) {
        links_[idx].instrNext = buckets_[b].head;
        buckets_[b].head = idx;
    } else {
        links_[idx].instrNext = links_[after].instrNext;
        links_[after].instrNext = idx;
    }
    if (links_[idx].instrNext == npos)
        buckets_[b].tail = idx;
    else
        links_[links_[idx].instrNext].instrPrev = idx;
}

void
WalkBuffer::unlinkInstruction(std::size_t idx)
{
    const Links &l = links_[idx];
    const std::size_t b = l.bucket;
    if (l.instrPrev == npos)
        buckets_[b].head = l.instrNext;
    else
        links_[l.instrPrev].instrNext = l.instrNext;
    if (l.instrNext == npos)
        buckets_[b].tail = l.instrPrev;
    else
        links_[l.instrNext].instrPrev = l.instrPrev;
    if (buckets_[b].head == npos) {
        freeBuckets_.push_back(b);
        instrIndex_.erase(entries_[idx].request.instruction);
    }
}

void
WalkBuffer::linkScore(std::size_t idx)
{
    const std::uint64_t key = entries_[idx].score;
    links_[idx].scoreKey = key;
    const std::uint64_t seq = entries_[idx].seq;
    ListHead *list;
    if (key < maxDirectScore) {
        growScoreBuckets(key);
        list = &scoreBuckets_[key];
        if (list->head == npos)
            setScoreBit(key);
        ++directCount_;
    } else {
        list = &overflow_;
        ++overflowCount_;
    }
    std::size_t after = list->tail;
    while (after != npos && entries_[after].seq > seq)
        after = links_[after].scorePrev;
    links_[idx].scorePrev = after;
    if (after == npos) {
        links_[idx].scoreNext = list->head;
        list->head = idx;
    } else {
        links_[idx].scoreNext = links_[after].scoreNext;
        links_[after].scoreNext = idx;
    }
    if (links_[idx].scoreNext == npos)
        list->tail = idx;
    else
        links_[links_[idx].scoreNext].scorePrev = idx;
}

void
WalkBuffer::unlinkScore(std::size_t idx)
{
    const Links &l = links_[idx];
    const std::uint64_t key = l.scoreKey;
    ListHead *list;
    if (key < maxDirectScore) {
        list = &scoreBuckets_[key];
        --directCount_;
    } else {
        list = &overflow_;
        --overflowCount_;
    }
    if (l.scorePrev == npos)
        list->head = l.scoreNext;
    else
        links_[l.scorePrev].scoreNext = l.scoreNext;
    if (l.scoreNext == npos)
        list->tail = l.scorePrev;
    else
        links_[l.scoreNext].scorePrev = l.scorePrev;
    if (key < maxDirectScore && list->head == npos)
        clearScoreBit(key);
}

void
WalkBuffer::linkContext(std::size_t idx)
{
    const tlb::ContextId ctx = entries_[idx].request.ctx;
    if (ctx >= ctxLists_.size()) {
        ctxLists_.resize(ctx + 1);
        ctxCounts_.resize(ctx + 1, 0);
    }
    ListHead &list = ctxLists_[ctx];
    ++ctxCounts_[ctx];
    const std::uint64_t seq = entries_[idx].seq;
    std::size_t after = list.tail;
    while (after != npos && entries_[after].seq > seq)
        after = links_[after].ctxPrev;
    links_[idx].ctxPrev = after;
    if (after == npos) {
        links_[idx].ctxNext = list.head;
        list.head = idx;
    } else {
        links_[idx].ctxNext = links_[after].ctxNext;
        links_[after].ctxNext = idx;
    }
    if (links_[idx].ctxNext == npos)
        list.tail = idx;
    else
        links_[links_[idx].ctxNext].ctxPrev = idx;
}

void
WalkBuffer::unlinkContext(std::size_t idx)
{
    const Links &l = links_[idx];
    ListHead &list = ctxLists_[entries_[idx].request.ctx];
    --ctxCounts_[entries_[idx].request.ctx];
    if (l.ctxPrev == npos)
        list.head = l.ctxNext;
    else
        links_[l.ctxPrev].ctxNext = l.ctxNext;
    if (l.ctxNext == npos)
        list.tail = l.ctxPrev;
    else
        links_[l.ctxNext].ctxPrev = l.ctxPrev;
}

void
WalkBuffer::resyncScore(std::size_t idx)
{
    if (links_[idx].scoreKey != entries_[idx].score) {
        unlinkScore(idx);
        linkScore(idx);
    }
}

void
WalkBuffer::repointNeighbors(std::size_t from, std::size_t to)
{
    const Links &l = links_[to]; // already holds `from`'s links
    if (l.arrivalPrev == npos)
        arrivalHead_ = to;
    else
        links_[l.arrivalPrev].arrivalNext = to;
    if (l.arrivalNext == npos)
        arrivalTail_ = to;
    else
        links_[l.arrivalNext].arrivalPrev = to;

    ListHead &bucket = buckets_[l.bucket];
    if (l.instrPrev == npos)
        bucket.head = to;
    else
        links_[l.instrPrev].instrNext = to;
    if (l.instrNext == npos)
        bucket.tail = to;
    else
        links_[l.instrNext].instrPrev = to;

    ListHead &score = l.scoreKey < maxDirectScore
                          ? scoreBuckets_[l.scoreKey]
                          : overflow_;
    if (l.scorePrev == npos)
        score.head = to;
    else
        links_[l.scorePrev].scoreNext = to;
    if (l.scoreNext == npos)
        score.tail = to;
    else
        links_[l.scoreNext].scorePrev = to;

    ListHead &ctxList = ctxLists_[entries_[to].request.ctx];
    if (l.ctxPrev == npos)
        ctxList.head = to;
    else
        links_[l.ctxPrev].ctxNext = to;
    if (l.ctxNext == npos)
        ctxList.tail = to;
    else
        links_[l.ctxNext].ctxPrev = to;
    (void)from;
}

void
WalkBuffer::growScoreBuckets(std::uint64_t score)
{
    if (score < scoreBuckets_.size())
        return;
    std::size_t n = scoreBuckets_.empty() ? 64 : scoreBuckets_.size();
    while (n <= score)
        n *= 2;
    scoreBuckets_.resize(n);
    scoreBitsL0_.resize((n + 63) / 64, 0);
    scoreBitsL1_.resize((scoreBitsL0_.size() + 63) / 64, 0);
}

void
WalkBuffer::setScoreBit(std::uint64_t score)
{
    scoreBitsL0_[score >> 6] |= std::uint64_t{1} << (score & 63);
    scoreBitsL1_[score >> 12] |= std::uint64_t{1} << ((score >> 6) & 63);
}

void
WalkBuffer::clearScoreBit(std::uint64_t score)
{
    scoreBitsL0_[score >> 6] &= ~(std::uint64_t{1} << (score & 63));
    if (scoreBitsL0_[score >> 6] == 0)
        scoreBitsL1_[score >> 12] &=
            ~(std::uint64_t{1} << ((score >> 6) & 63));
}

std::uint64_t
WalkBuffer::minDirectScore() const
{
    for (std::size_t w = 0; w < scoreBitsL1_.size(); ++w) {
        if (scoreBitsL1_[w] == 0)
            continue;
        const std::size_t l0 =
            w * 64
            + static_cast<std::size_t>(std::countr_zero(scoreBitsL1_[w]));
        return l0 * 64
               + static_cast<std::uint64_t>(
                   std::countr_zero(scoreBitsL0_[l0]));
    }
    GPUWALK_ASSERT(false, "minDirectScore with empty score index");
    return 0;
}

} // namespace gpuwalk::core
