/**
 * @file
 * Naive random walk scheduling — the paper's Figure 2 strawman,
 * demonstrating how much a *bad* order costs (~26% slowdown vs FCFS).
 */

#ifndef GPUWALK_CORE_RANDOM_SCHEDULER_HH
#define GPUWALK_CORE_RANDOM_SCHEDULER_HH

#include "core/walk_scheduler.hh"
#include "sim/rng.hh"

namespace gpuwalk::core {

/** Picks a uniformly random pending request. Deterministic per seed. */
class RandomScheduler : public WalkScheduler
{
  public:
    explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "random"; }

    std::size_t
    selectNext(const WalkBuffer &buffer) override
    {
        return static_cast<std::size_t>(rng_.below(buffer.size()));
    }

    void onDispatch(WalkBuffer &, const PendingWalk &) override {}

  private:
    sim::Rng rng_;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_RANDOM_SCHEDULER_HH
