/**
 * @file
 * The paper's SIMT-aware page table walk scheduler (§IV).
 *
 * Selection order when a walker frees up:
 *   0. Aging override: any request bypassed more than the threshold is
 *      serviced first (oldest such), preventing starvation.
 *   1. Batching (key idea 2): a pending request from the same SIMD
 *      instruction as the most recently dispatched walk — oldest first.
 *   2. SJF (key idea 1): the request whose instruction has the lowest
 *      estimated total walk cost (score); ties broken oldest-first.
 *
 * The ablation variants SjfScheduler / BatchScheduler disable one of
 * the two ideas via SimtSchedulerConfig.
 */

#ifndef GPUWALK_CORE_SIMT_AWARE_SCHEDULER_HH
#define GPUWALK_CORE_SIMT_AWARE_SCHEDULER_HH

#include <optional>

#include "core/walk_scheduler.hh"

namespace gpuwalk::core {

/** SJF + batching + aging walk scheduler. */
class SimtAwareScheduler : public WalkScheduler
{
  public:
    explicit SimtAwareScheduler(const SimtSchedulerConfig &cfg = {})
        : cfg_(cfg)
    {}

    std::string
    name() const override
    {
        if (cfg_.enableSjf && cfg_.enableBatching)
            return "simt-aware";
        if (cfg_.enableSjf)
            return "sjf-only";
        if (cfg_.enableBatching)
            return "batch-only";
        return "fcfs-degenerate";
    }

    bool needsScores() const override { return cfg_.enableSjf; }

    std::size_t selectNext(const WalkBuffer &buffer) override;

    void onDispatch(WalkBuffer &buffer, const PendingWalk &walk) override;

    PickReason lastPickReason() const override { return lastPick_; }

    /** Instruction ID of the most recently dispatched walk, if any. */
    std::optional<tlb::InstructionId>
    lastInstruction() const
    {
        return lastInstruction_;
    }

    /** Times the aging override fired (visible for tests/stats). */
    std::uint64_t agingOverrides() const { return agingOverrides_; }

    /** Times the batching rule (not SJF) made the pick. */
    std::uint64_t batchPicks() const { return batchPicks_; }

  private:
    SimtSchedulerConfig cfg_;
    std::optional<tlb::InstructionId> lastInstruction_;
    PickReason lastPick_ = PickReason::Policy;
    std::uint64_t agingOverrides_ = 0;
    std::uint64_t batchPicks_ = 0;
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_SIMT_AWARE_SCHEDULER_HH
