/**
 * @file
 * First-come-first-serve walk scheduling — the paper's baseline.
 */

#ifndef GPUWALK_CORE_FCFS_SCHEDULER_HH
#define GPUWALK_CORE_FCFS_SCHEDULER_HH

#include "core/walk_scheduler.hh"

namespace gpuwalk::core {

/** Services pending walks strictly in arrival order. */
class FcfsScheduler : public WalkScheduler
{
  public:
    std::string name() const override { return "fcfs"; }

    std::size_t
    selectNext(const WalkBuffer &buffer) override
    {
        return buffer.oldestIndex();
    }

    /** FCFS never bypasses anything; skip aging bookkeeping. */
    void onDispatch(WalkBuffer &, const PendingWalk &) override {}

    /** Tells the auditor all buffered entries must show bypassed == 0. */
    bool tracksAging() const override { return false; }
};

} // namespace gpuwalk::core

#endif // GPUWALK_CORE_FCFS_SCHEDULER_HH
