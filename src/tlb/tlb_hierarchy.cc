#include "tlb/tlb_hierarchy.hh"

#include "sim/audit.hh"

namespace gpuwalk::tlb {

TlbHierarchy::TlbHierarchy(sim::EventQueue &eq,
                           const TlbHierarchyConfig &cfg,
                           TranslationService &iommu)
    : eq_(eq), cfg_(cfg), iommu_(iommu),
      l2_(TlbConfig{"l2tlb", cfg.l2Entries, cfg.l2Associativity}),
      l2Port_(eq, cfg.l2PortPeriod), statGroup_("gpu_tlb")
{
    l1s_.reserve(cfg_.numCus);
    for (unsigned cu = 0; cu < cfg_.numCus; ++cu) {
        l1s_.push_back(std::make_unique<SetAssocTlb>(TlbConfig{
            "l1tlb" + std::to_string(cu), cfg.l1Entries,
            cfg.l1Entries}));
        l1Ports_.push_back(std::make_unique<sim::RateLimiter>(
            eq, cfg.l1PortPeriod));
        statGroup_.addChild(l1s_.back()->stats());
    }
    statGroup_.addChild(l2_.stats());
    statGroup_.add(requests_);
    statGroup_.add(l1Merged_);
    statGroup_.add(l2Merged_);
    statGroup_.add(iommuRequests_);
    statGroup_.add(epochWavefronts_);
}

void
TlbHierarchy::translate(TranslationRequest req)
{
    GPUWALK_ASSERT(req.cu < cfg_.numCus, "bad CU id ", req.cu);
    ++requests_;

    if (auditTracking_) {
        if (wavefrontIo_.size() <= req.wavefront)
            wavefrontIo_.resize(req.wavefront + 1);
        ++wavefrontIo_[req.wavefront].in;
        auto inner = std::move(req.onComplete);
        req.onComplete = [this, wf = req.wavefront,
                          cb = std::move(inner)](mem::Addr pa_page,
                                                 bool large) mutable {
            ++wavefrontIo_[wf].out;
            if (cb)
                cb(pa_page, large);
        };
    }

    if (tracer_) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::Coalesced;
        ev.wavefront = req.wavefront;
        ev.instruction = req.instruction;
        ev.vaPage = req.vaPage;
        ev.ctx = req.ctx;
        tracer_->record(ev);
    }

    // Claim the CU's single L1 TLB lookup port, then pay the lookup
    // latency. Bursts from one SIMD instruction serialize here.
    l1Ports_[req.cu]->submit([this, r = std::move(req)]() mutable {
        eq_.scheduleIn(cfg_.l1Latency,
                       [this, r = std::move(r)]() mutable {
                           lookupL1(std::move(r));
                       });
    });
}

void
TlbHierarchy::lookupL1(TranslationRequest r)
{
    SetAssocTlb &l1 = *l1s_[r.cu];
    if (auto hit = l1.lookupEntry(r.vaPage, r.ctx)) {
        r.complete(hit->paPage, hit->largePage);
        return;
    }

    // Merge with an in-flight miss from this CU to the same page of
    // the same address space.
    const std::uint64_t key = l1Key(r.ctx, r.cu, r.vaPage);
    auto it = l1Inflight_.find(key);
    if (it != l1Inflight_.end()) {
        ++l1Merged_;
        it->second->waiters.push_back(std::move(r));
        return;
    }
    MergeEntry *entry = mergePool_.acquire();
    entry->waiters.push_back(std::move(r));
    l1Inflight_.emplace(key, entry);
    const TranslationRequest &leader = entry->waiters.front();

    TranslationRequest down;
    down.vaPage = leader.vaPage;
    down.instruction = leader.instruction;
    down.wavefront = leader.wavefront;
    down.cu = leader.cu;
    down.app = leader.app;
    down.ctx = leader.ctx;
    down.leader = leader.leader;
    down.onComplete = [this, cu = leader.cu, va = leader.vaPage,
                       ctx = leader.ctx](mem::Addr pa_page, bool large) {
        auto node = l1Inflight_.find(l1Key(ctx, cu, va));
        GPUWALK_ASSERT(node != l1Inflight_.end(), "orphan L1 fill");
        MergeEntry *filled = node->second;
        l1Inflight_.erase(node);
        l1s_[cu]->insert(va, pa_page, large, ctx);
        for (auto &w : filled->waiters)
            w.complete(pa_page, large);
        filled->waiters.clear();
        mergePool_.release(filled);
    };

    // The shared L2 TLB is also single-ported: the eight CUs' miss
    // streams multiplex here, which is where walk requests from
    // different instructions start interleaving (paper §III-B).
    l2Port_.submit([this, d = std::move(down)]() mutable {
        eq_.scheduleIn(cfg_.l2Latency,
                       [this, d = std::move(d)]() mutable {
                           accessL2(std::move(d));
                       });
    });
}

void
TlbHierarchy::accessL2(TranslationRequest req)
{
    noteL2Access(req.wavefront);

    if (auto hit = l2_.lookupEntry(req.vaPage, req.ctx)) {
        req.complete(hit->paPage, hit->largePage);
        return;
    }

    const std::uint64_t key = l2Key(req.ctx, req.vaPage);
    auto it = l2Inflight_.find(key);
    if (it != l2Inflight_.end()) {
        ++l2Merged_;
        it->second->waiters.push_back(std::move(req));
        return;
    }

    MergeEntry *entry = mergePool_.acquire();
    entry->waiters.push_back(std::move(req));
    l2Inflight_.emplace(key, entry);
    const TranslationRequest &leader = entry->waiters.front();

    ++iommuRequests_;
    TranslationRequest down;
    down.vaPage = leader.vaPage;
    down.instruction = leader.instruction;
    down.wavefront = leader.wavefront;
    down.cu = leader.cu;
    down.app = leader.app;
    down.ctx = leader.ctx;
    down.leader = leader.leader;
    down.onComplete = [this, key, va_page = leader.vaPage,
                       ctx = leader.ctx](mem::Addr pa_page, bool large) {
        auto node = l2Inflight_.find(key);
        GPUWALK_ASSERT(node != l2Inflight_.end(), "orphan L2 fill");
        MergeEntry *filled = node->second;
        l2Inflight_.erase(node);
        l2_.insert(va_page, pa_page, large, ctx);
        for (auto &w : filled->waiters)
            w.complete(pa_page, large);
        filled->waiters.clear();
        mergePool_.release(filled);
    };
    iommu_.translate(std::move(down));
}

void
TlbHierarchy::noteL2Access(std::uint32_t wavefront)
{
    epochSet_.insert(wavefront);
    if (++epochAccesses_ >= cfg_.epochLength) {
        epochWavefronts_.sample(static_cast<double>(epochSet_.size()));
        epochSet_.clear();
        epochAccesses_ = 0;
    }
}

void
TlbHierarchy::registerInvariants(sim::Auditor &auditor)
{
    auditTracking_ = true;

    auditor.registerInvariant(
        "tlb.merge_pool", [this](sim::AuditContext &ctx) {
            const std::size_t tables =
                l1Inflight_.size() + l2Inflight_.size();
            ctx.require(mergePool_.inUse() == tables,
                        "merge-pool live count ", mergePool_.inUse(),
                        " != in-flight table entries ", tables);
            if (!ctx.final())
                return;
            ctx.require(l1Inflight_.empty(), l1Inflight_.size(),
                        " L1 miss merges never filled");
            ctx.require(l2Inflight_.empty(), l2Inflight_.size(),
                        " L2 miss merges never filled");
            ctx.require(mergePool_.inUse() == 0, "merge pool leaks ",
                        mergePool_.inUse(), " entries at drain");
        });

    auditor.registerInvariant(
        "tlb.wavefront_conservation", [this](sim::AuditContext &ctx) {
            for (std::size_t wf = 0; wf < wavefrontIo_.size(); ++wf) {
                const WavefrontIo &io = wavefrontIo_[wf];
                const bool ok =
                    ctx.final() ? io.out == io.in : io.out <= io.in;
                // One message is enough; thousands of wavefronts leak
                // together when a response goes missing.
                if (!ctx.require(ok, "wavefront ", wf, ": ", io.in,
                                 " requests coalesced in vs ", io.out,
                                 " responses out"))
                    return;
            }
        });
}

void
TlbHierarchy::invalidateAll()
{
    for (auto &l1 : l1s_)
        l1->invalidateAll();
    l2_.invalidateAll();
}

} // namespace gpuwalk::tlb
