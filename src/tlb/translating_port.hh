/**
 * @file
 * A translate-then-forward memory port: the substrate for virtual L1
 * caches (Yoon et al. [43], cited by the paper's related work).
 *
 * With virtually-indexed, virtually-tagged L1 data caches, address
 * translation is deferred until an L1 miss: hits never touch the TLB
 * hierarchy, which "filters" translation bandwidth. This port sits
 * between a virtually-addressed cache and the physically-addressed
 * rest of the memory system: every request that reaches it is
 * translated through the normal GPU TLB -> IOMMU path (carrying its
 * originating instruction's ID, so walk scheduling still sees
 * SIMT-correlated requests) and then forwarded at the physical
 * address.
 *
 * Functional caveat (documented, deliberate): synonym/homonym
 * handling of real virtual caches is out of scope — the model is
 * timing-only and workloads use a single address space.
 */

#ifndef GPUWALK_TLB_TRANSLATING_PORT_HH
#define GPUWALK_TLB_TRANSLATING_PORT_HH

#include "mem/request.hh"
#include "sim/stats.hh"
#include "tlb/tlb_hierarchy.hh"

namespace gpuwalk::tlb {

/** Translates request addresses before forwarding downstream. */
class TranslatingPort : public mem::MemoryDevice
{
  public:
    /**
     * @param tlbs The GPU TLB hierarchy (translation path).
     * @param below The physically-addressed next level.
     */
    TranslatingPort(TlbHierarchy &tlbs, mem::MemoryDevice &below)
        : tlbs_(tlbs), below_(below), statGroup_("xlate_port")
    {
        statGroup_.add(requests_);
    }

    void
    access(mem::MemoryRequest req) override
    {
        ++requests_;
        TranslationRequest xlate;
        xlate.vaPage = mem::pageAlign(req.addr);
        xlate.instruction = req.instruction;
        xlate.wavefront = req.wavefront;
        xlate.cu = req.cu;
        const mem::Addr offset = req.addr & (mem::pageSize - 1);
        xlate.onComplete = [this, offset,
                            r = std::move(req)](mem::Addr pa_page,
                                                bool) mutable {
            r.addr = pa_page | offset;
            below_.access(std::move(r));
        };
        tlbs_.translate(std::move(xlate));
    }

    std::uint64_t requests() const { return requests_.value(); }

    sim::StatGroup &stats() { return statGroup_; }

  private:
    TlbHierarchy &tlbs_;
    mem::MemoryDevice &below_;
    sim::StatGroup statGroup_;
    sim::Counter requests_{"requests", "L1-miss translations"};
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_TRANSLATING_PORT_HH
