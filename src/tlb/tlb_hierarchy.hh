/**
 * @file
 * The GPU's two-level TLB hierarchy (paper §II-B).
 *
 * Per-CU private L1 TLBs back into a GPU-wide shared L2 TLB; L2 misses
 * are forwarded to the IOMMU (a TranslationService). In-flight misses
 * to the same page merge at both levels, like cache MSHRs. The shared
 * L2 also tracks the number of distinct wavefronts touching it per
 * fixed-size epoch — the paper's Figure 12 contention metric.
 */

#ifndef GPUWALK_TLB_TLB_HIERARCHY_HH
#define GPUWALK_TLB_TLB_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/object_pool.hh"
#include "sim/rate_limiter.hh"
#include "sim/stats.hh"
#include "tlb/set_assoc_tlb.hh"
#include "tlb/translation.hh"
#include "trace/trace.hh"

namespace gpuwalk::sim {
class Auditor;
} // namespace gpuwalk::sim

namespace gpuwalk::tlb {

/** Configuration of the GPU-side TLBs (Table I defaults). */
struct TlbHierarchyConfig
{
    unsigned numCus = 8;

    unsigned l1Entries = 32;         ///< fully associative per CU
    unsigned l2Entries = 512;
    unsigned l2Associativity = 16;

    sim::Tick l1Latency = 1 * 500;   ///< 1 GPU cycle
    sim::Tick l2Latency = 16 * 500;  ///< incl. on-chip interconnect

    /**
     * Lookup issue rate of each single-ported TLB (one per period).
     * These structural limits serialize each CU's request bursts and
     * multiplex the independent per-CU streams at the shared L2 — the
     * mechanism that interleaves walk requests from different
     * instructions (paper §III-B).
     */
    sim::Tick l1PortPeriod = 1 * 500;
    sim::Tick l2PortPeriod = 1 * 500;

    /** L2 accesses per epoch for the distinct-wavefront metric. */
    unsigned epochLength = 1024;
};

/** Per-CU L1 TLBs + shared L2 TLB + miss path to the IOMMU. */
class TlbHierarchy
{
  public:
    TlbHierarchy(sim::EventQueue &eq, const TlbHierarchyConfig &cfg,
                 TranslationService &iommu);

    /** Entry point from a CU's coalescer. @pre req.cu < numCus. */
    void translate(TranslationRequest req);

    /** Attaches a lifecycle tracer (nullptr = tracing off). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Registers this hierarchy's conservation invariants (merge-table
     * vs. pool accounting; per-wavefront coalesced-in == responses-out)
     * and enables the request/response accounting they check. Call
     * before the run starts.
     */
    void registerInvariants(sim::Auditor &auditor);

    SetAssocTlb &l1(unsigned cu) { return *l1s_.at(cu); }
    SetAssocTlb &l2() { return l2_; }

    /** Requests forwarded to the IOMMU (unmerged L2 misses). */
    std::uint64_t iommuRequests() const { return iommuRequests_.value(); }

    /** Average distinct wavefronts per L2 epoch (Fig. 12 metric). */
    double avgWavefrontsPerEpoch() const { return epochWavefronts_.mean(); }

    /** Completed epochs observed. */
    std::uint64_t epochs() const { return epochWavefronts_.count(); }

    /** Drops all cached translations (L1s and L2). */
    void invalidateAll();

    sim::StatGroup &stats() { return statGroup_; }

  private:
    /** Pooled miss-merge record (cache-MSHR analogue). Recycled with
     *  its vector capacity intact, so steady-state merging does not
     *  allocate. */
    struct MergeEntry
    {
        std::vector<TranslationRequest> waiters;
    };

    /** Packs (ctx, cu, vaPage) into one hash key: vaPage is
     *  page-aligned so the CU id fits in the low bits, and simulated
     *  virtual addresses stay below 2^48, leaving the top 16 bits for
     *  the context tag. */
    static std::uint64_t
    l1Key(ContextId ctx, std::uint32_t cu, mem::Addr va_page)
    {
        GPUWALK_ASSERT((va_page & (mem::pageSize - 1)) == 0
                           && cu < mem::pageSize
                           && va_page < (mem::Addr(1) << 48),
                       "cannot pack (ctx, cu, vaPage) key");
        return va_page | cu | (std::uint64_t(ctx) << 48);
    }

    /** Packs (ctx, vaPage) into the L2 miss-table key. */
    static std::uint64_t
    l2Key(ContextId ctx, mem::Addr va_page)
    {
        GPUWALK_ASSERT(va_page < (mem::Addr(1) << 48),
                       "cannot pack (ctx, vaPage) key");
        return va_page | (std::uint64_t(ctx) << 48);
    }

    void lookupL1(TranslationRequest req);
    void accessL2(TranslationRequest req);
    void noteL2Access(std::uint32_t wavefront);

    sim::EventQueue &eq_;
    TlbHierarchyConfig cfg_;
    TranslationService &iommu_;
    trace::Tracer *tracer_ = nullptr;

    std::vector<std::unique_ptr<SetAssocTlb>> l1s_;
    SetAssocTlb l2_;
    std::vector<std::unique_ptr<sim::RateLimiter>> l1Ports_;
    sim::RateLimiter l2Port_;

    // In-flight miss tables are looked up and erased, never iterated,
    // so hashing them is determinism-safe.

    /** In-flight L1 misses: l1Key(ctx, cu, vaPage) -> merge record. */
    sim::FlatMap<std::uint64_t, MergeEntry *> l1Inflight_;

    /** In-flight L2 misses: l2Key(ctx, vaPage) -> merge record. */
    sim::FlatMap<std::uint64_t, MergeEntry *> l2Inflight_;

    /** Shared pool behind both miss tables. */
    sim::ObjectPool<MergeEntry> mergePool_{64};

    // Fig. 12 epoch tracking.
    std::set<std::uint32_t> epochSet_;
    unsigned epochAccesses_ = 0;

    /** Per-wavefront request/response tally for the conservation
     *  auditor. Only maintained (and the completion callbacks only
     *  wrapped) once registerInvariants() has been called, so plain
     *  runs pay nothing. */
    struct WavefrontIo
    {
        std::uint64_t in = 0;  ///< requests coalesced in
        std::uint64_t out = 0; ///< responses delivered back
    };
    bool auditTracking_ = false;
    std::vector<WavefrontIo> wavefrontIo_;

    sim::StatGroup statGroup_;
    sim::Counter requests_{"requests", "translation requests received"};
    sim::Counter l1Merged_{"l1_merged", "requests merged at L1 miss"};
    sim::Counter l2Merged_{"l2_merged", "requests merged at L2 miss"};
    sim::Counter iommuRequests_{"iommu_requests",
                                "L2 misses forwarded to the IOMMU"};
    sim::Average epochWavefronts_{
        "epoch_wavefronts", "distinct wavefronts per L2 TLB epoch"};
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_TLB_HIERARCHY_HH
