/**
 * @file
 * The hardware coalescer.
 *
 * Given the per-lane addresses of one SIMD memory instruction, the
 * coalescer merges accesses falling on the same cache line (one cache
 * access each) and on the same page (one translation each). For
 * regular workloads this collapses a 64-lane instruction to one or two
 * requests; for irregular workloads it barely helps — the effect the
 * paper builds on.
 */

#ifndef GPUWALK_TLB_COALESCER_HH
#define GPUWALK_TLB_COALESCER_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"

namespace gpuwalk::tlb {

/** Result of coalescing one SIMD instruction's lane addresses. */
struct CoalescedAccess
{
    /** Unique page-aligned virtual addresses (translation requests). */
    std::vector<mem::Addr> pages;

    /** Unique line-aligned virtual addresses (cache accesses). */
    std::vector<mem::Addr> lines;

    /** Active lanes that produced the above. */
    unsigned activeLanes = 0;

    /** Divergence: unique pages per active lane (0..1]. */
    double
    pageDivergence() const
    {
        return activeLanes
                   ? static_cast<double>(pages.size()) / activeLanes
                   : 0.0;
    }
};

/**
 * Coalesces @p lane_addrs. First occurrence order is preserved, which
 * keeps request streams deterministic.
 */
CoalescedAccess coalesce(const std::vector<mem::Addr> &lane_addrs);

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_COALESCER_HH
