/**
 * @file
 * Fault-injecting interposer for the TLB↔IOMMU port boundary.
 *
 * Wraps any TranslationService and misbehaves on the crossings a
 * FaultInjector selects. Used only by tests (directly, or through
 * SystemConfig::translationInterposer) to prove the conservation
 * auditor's invariants fire; see sim/fault_injector.hh.
 */

#ifndef GPUWALK_TLB_FAULT_INJECTION_HH
#define GPUWALK_TLB_FAULT_INJECTION_HH

#include <utility>

#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "tlb/translation.hh"

namespace gpuwalk::tlb {

/**
 * TranslationService decorator applying drop/delay/duplicate faults.
 *
 * - Drop: the request is forwarded with its completion callback
 *   swallowed — the IOMMU finishes the walk, the TLB never hears
 *   back. Merge entries and per-wavefront response accounting leak.
 * - Delay: the completion is re-delivered delayTicks later. A
 *   negative control: conservation is timing-independent, so a full
 *   run must still audit clean.
 * - Duplicate: a phantom copy of the request (no callback) is
 *   forwarded after the real one, desynchronising the TLB-side and
 *   IOMMU-side request counters.
 */
class FaultyTranslationService : public TranslationService
{
  public:
    FaultyTranslationService(sim::EventQueue &eq, TranslationService &below,
                             sim::FaultInjector::Spec spec)
        : eq_(eq), below_(below), injector_(spec)
    {}

    void
    translate(TranslationRequest req) override
    {
        switch (injector_.decide()) {
          case sim::FaultKind::Drop:
            req.onComplete = {};
            break;
          case sim::FaultKind::Delay: {
            auto inner = std::move(req.onComplete);
            req.onComplete = [this, cb = std::move(inner)](
                                 mem::Addr pa, bool large) mutable {
                eq_.scheduleIn(injector_.spec().delayTicks,
                               [cb = std::move(cb), pa, large]() mutable {
                                   cb(pa, large);
                               });
            };
            break;
          }
          case sim::FaultKind::Duplicate: {
            TranslationRequest phantom;
            phantom.vaPage = req.vaPage;
            phantom.instruction = req.instruction;
            phantom.wavefront = req.wavefront;
            phantom.cu = req.cu;
            phantom.app = req.app;
            below_.translate(std::move(req));
            below_.translate(std::move(phantom));
            return;
          }
          case sim::FaultKind::None:
            break;
        }
        below_.translate(std::move(req));
    }

    const sim::FaultInjector &injector() const { return injector_; }

  private:
    sim::EventQueue &eq_;
    TranslationService &below_;
    sim::FaultInjector injector_;
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_FAULT_INJECTION_HH
