/**
 * @file
 * Generic set-associative TLB with true-LRU replacement.
 *
 * Instantiated as: per-CU L1 TLB (32-entry fully associative), the
 * GPU-wide shared L2 TLB (512-entry 16-way), and the IOMMU's own two
 * TLB levels (Table I).
 *
 * Entry state is stored structure-of-arrays: the tag/valid/large
 * columns a lookup compares against are contiguous per set instead of
 * strided across fat AoS entries, and the ppn/lastUse columns are only
 * touched on a hit. The set count must be a power of two so indexing
 * is a mask, not a division — every Table I geometry qualifies.
 */

#ifndef GPUWALK_TLB_SET_ASSOC_TLB_HH
#define GPUWALK_TLB_SET_ASSOC_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "tlb/translation.hh"

namespace gpuwalk::tlb {

/** Geometry of one TLB. */
struct TlbConfig
{
    std::string name = "tlb";
    unsigned entries = 32;
    /** Ways; equal to entries for fully associative. */
    unsigned associativity = 32;

    unsigned sets() const { return entries / associativity; }
};

/** A successful TLB lookup: the 4 KB-granular PA + entry size. */
struct TlbHit
{
    mem::Addr paPage = 0;  ///< page-aligned physical address
    bool largePage = false;
};

/**
 * A set-associative translation cache: VPN -> PPN.
 *
 * Supports mixed 4 KB and 2 MB entries in one structure (a MIX-TLB-
 * style design, which the paper cites): large entries are tagged and
 * indexed at 2 MB granularity, so one entry covers 512 base pages —
 * the "reach" benefit the paper's §VI discussion weighs.
 */
class SetAssocTlb
{
  public:
    explicit SetAssocTlb(const TlbConfig &cfg);

    /**
     * Looks up the page-aligned VA @p va_page under context @p ctx,
     * updating LRU on hit. An entry only hits in its own context.
     * @return the page-aligned PA, or nullopt on miss.
     */
    std::optional<mem::Addr> lookup(mem::Addr va_page,
                                    ContextId ctx = defaultContext);

    /** Like lookup, but also reports the hitting entry's page size. */
    std::optional<TlbHit> lookupEntry(mem::Addr va_page,
                                      ContextId ctx = defaultContext);

    /** Lookup without LRU update or stats (for tests/inspection). */
    std::optional<mem::Addr> probe(mem::Addr va_page,
                                   ContextId ctx = defaultContext) const;

    /**
     * Installs a translation for @p ctx, evicting LRU within the set
     * if full. With @p large_page, the entry covers the whole 2 MB
     * region of @p va_page (addresses may be given at 4 KB
     * granularity).
     */
    void insert(mem::Addr va_page, mem::Addr pa_page,
                bool large_page = false,
                ContextId ctx = defaultContext);

    /** Drops every entry. */
    void invalidateAll();

    /** Drops one translation if present. @return true if it existed. */
    bool invalidate(mem::Addr va_page, ContextId ctx = defaultContext);

    const TlbConfig &config() const { return cfg_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRate() const
    {
        const std::uint64_t t = hits_.value() + misses_.value();
        return t ? static_cast<double>(hits_.value()) / t : 0.0;
    }

    /** Number of valid entries currently resident. */
    unsigned population() const;

    sim::StatGroup &stats() { return statGroup_; }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    std::size_t
    setIndex(mem::Addr vpn, ContextId ctx) const
    {
        // XOR-folded index: power-of-two strided VPN sequences (page
        // strides of matrix rows) would otherwise collide into a few
        // sets; hardware TLBs hash the index for the same reason. The
        // context term spreads tenants sharing a VA layout across
        // sets; it vanishes at ctx 0, keeping single-tenant indexing
        // bit-identical to the pre-ASID implementation.
        const mem::Addr h = vpn ^ (vpn >> 5) ^ (vpn >> 10)
                            ^ (mem::Addr(ctx) * 0x9e3779b9u);
        return static_cast<std::size_t>(h) & (numSets_ - 1);
    }

    /** Slot of the entry matching (@p va_page, @p ctx, @p large), or
     *  npos. */
    std::size_t findSlot(mem::Addr va_page, bool large,
                         ContextId ctx) const;

    /** Small-before-large match of (@p va_page, @p ctx): slot or
     *  npos. */
    std::size_t findAny(mem::Addr va_page, ContextId ctx) const;

    /** The 4 KB-granular PA of @p va_page through slot @p i's entry. */
    TlbHit hitAt(std::size_t i, mem::Addr va_page) const;

    TlbConfig cfg_;
    std::size_t numSets_;

    // Entry columns, slot = set * associativity + way.
    std::vector<mem::Addr> vpn_;
    std::vector<mem::Addr> ppn_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> large_;
    std::vector<ContextId> ctx_;

    std::uint64_t useClock_ = 0;

    /** Valid 2 MB entries resident; when zero, the large-tag probe of
     *  every lookup and fill short-circuits (most runs never install
     *  one). */
    std::size_t largeResident_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter hits_{"hits", "TLB hits"};
    sim::Counter misses_{"misses", "TLB misses"};
    sim::Counter insertions_{"insertions", "fills"};
    sim::Counter evictions_{"evictions", "valid entries evicted"};
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_SET_ASSOC_TLB_HH
