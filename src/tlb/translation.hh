/**
 * @file
 * The address-translation request flowing from the GPU's coalescer
 * through the TLB hierarchy to the IOMMU.
 */

#ifndef GPUWALK_TLB_TRANSLATION_HH
#define GPUWALK_TLB_TRANSLATION_HH

#include <cstdint>

#include "mem/types.hh"
#include "sim/inline_function.hh"
#include "sim/ticks.hh"

namespace gpuwalk::tlb {

/** Identifies the SIMD instruction that generated a request. */
using InstructionId = std::uint64_t;

/**
 * Address-space identifier (ASID). Every translation structure tags
 * its entries with the originating context; an entry never hits
 * across contexts. Context 0 is the default address space every
 * single-tenant run uses — all ContextId plumbing is behaviour-neutral
 * when only context 0 exists.
 *
 * Defined at the tlb layer (the lowest layer that sees requests) and
 * aliased as core::ContextId / iommu::ContextId upstream.
 */
using ContextId = std::uint16_t;

/** The default address space of single-tenant runs. */
inline constexpr ContextId defaultContext = 0;

/**
 * One page-granular translation request.
 *
 * The paper's scheduler keys on the instruction ID each request
 * carries (a 20-bit tag in hardware; modelled as a unique 64-bit ID
 * here). All requests of one SIMD instruction share that ID.
 */
struct TranslationRequest
{
    /** Page-aligned virtual address to translate. */
    mem::Addr vaPage = 0;

    /** ID of the issuing SIMD instruction (shared by its siblings). */
    InstructionId instruction = 0;

    /** Issuing wavefront (global ID) — used by the L2 epoch metric. */
    std::uint32_t wavefront = 0;

    /** Issuing compute unit. */
    std::uint32_t cu = 0;

    /** Owning application (multi-program runs; 0 otherwise). */
    std::uint32_t app = 0;

    /** Owning address space (ASID); 0 for single-tenant runs. */
    ContextId ctx = defaultContext;

    /**
     * Issued by a Wasp leader wavefront: if it reaches the IOMMU walk
     * path it is classed a speculative (low-priority) walk — the
     * lookahead a leader creates must never delay follower demand
     * walks. False outside --wavefront-sched=wasp.
     */
    bool leader = false;

    /**
     * Completion callback delivering the page-aligned (4 KB-granular)
     * physical address and whether the backing mapping is a 2 MB
     * large page. Invoked exactly once. Inline-stored for the hot
     * captures; oversized ones (the virtual-cache bridge) heap-box.
     */
    sim::InlineFunction<void(mem::Addr pa_page, bool large_page)>
        onComplete;

    void
    complete(mem::Addr pa_page, bool large_page = false)
    {
        if (onComplete) {
            auto cb = std::move(onComplete);
            cb(pa_page, large_page);
        }
    }
};

/** Downstream consumer of TLB misses (the IOMMU). */
class TranslationService
{
  public:
    virtual ~TranslationService() = default;

    /** Accepts a request that missed the GPU TLB hierarchy. */
    virtual void translate(TranslationRequest req) = 0;
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_TRANSLATION_HH
