#include "tlb/coalescer.hh"

#include <algorithm>

namespace gpuwalk::tlb {

CoalescedAccess
coalesce(const std::vector<mem::Addr> &lane_addrs)
{
    CoalescedAccess out;
    out.activeLanes = static_cast<unsigned>(lane_addrs.size());
    out.pages.reserve(lane_addrs.size());
    out.lines.reserve(lane_addrs.size());

    for (mem::Addr a : lane_addrs) {
        const mem::Addr page = mem::pageAlign(a);
        if (std::find(out.pages.begin(), out.pages.end(), page)
            == out.pages.end()) {
            out.pages.push_back(page);
        }
        const mem::Addr line = mem::lineAlign(a);
        if (std::find(out.lines.begin(), out.lines.end(), line)
            == out.lines.end()) {
            out.lines.push_back(line);
        }
    }
    return out;
}

} // namespace gpuwalk::tlb
