/**
 * @file
 * Channel-backed TranslationService adapter plus the typed reply
 * message for the return edge.
 *
 * The GPU TLB hierarchy keeps talking to a plain TranslationService;
 * the adapter forwards each L2-miss request through the translate
 * channel, which carries the GPU→IOMMU hop latency that used to be
 * buried inside Iommu::translate(). Replies (TLB hits and finished
 * walks) travel back on a Channel<TranslationReply> wired by
 * system::System.
 */

#ifndef GPUWALK_TLB_CHANNEL_PORT_HH
#define GPUWALK_TLB_CHANNEL_PORT_HH

#include "sim/port.hh"
#include "tlb/translation.hh"

namespace gpuwalk::tlb {

/** A finished translation returning to the GPU domain. */
struct TranslationReply
{
    TranslationRequest req;
    mem::Addr paPage = 0;
    bool largePage = false;
};

/** Channel carrying completed translations back to the GPU domain. */
using TranslationReplyChannel = sim::Channel<TranslationReply>;

/** Forwards translate() into the GPU→IOMMU request channel. */
class ChannelTranslationPort final : public TranslationService
{
  public:
    explicit ChannelTranslationPort(sim::Channel<TranslationRequest> &ch)
        : ch_(ch)
    {}

    void
    translate(TranslationRequest req) override
    {
        ch_.send(std::move(req));
    }

  private:
    sim::Channel<TranslationRequest> &ch_;
};

} // namespace gpuwalk::tlb

#endif // GPUWALK_TLB_CHANNEL_PORT_HH
