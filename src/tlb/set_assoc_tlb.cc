#include "tlb/set_assoc_tlb.hh"

#include <algorithm>
#include <bit>

namespace gpuwalk::tlb {

namespace {

/** 2 MB-granular virtual page number. */
constexpr mem::Addr
largeVpn(mem::Addr va)
{
    return va >> 21;
}

constexpr mem::Addr largeOffsetPages = (1 << 21) >> mem::pageShift;

} // namespace

SetAssocTlb::SetAssocTlb(const TlbConfig &cfg)
    : cfg_(cfg), statGroup_(cfg.name)
{
    GPUWALK_ASSERT(cfg_.entries > 0, "TLB must have entries");
    GPUWALK_ASSERT(cfg_.entries % cfg_.associativity == 0,
                   "entries not divisible by associativity in ",
                   cfg_.name);
    numSets_ = cfg_.sets();
    GPUWALK_ASSERT(std::has_single_bit(numSets_),
                   "TLB set count must be a power of two in ",
                   cfg_.name);
    const std::size_t slots = numSets_ * cfg_.associativity;
    vpn_.assign(slots, 0);
    ppn_.assign(slots, 0);
    lastUse_.assign(slots, 0);
    valid_.assign(slots, 0);
    large_.assign(slots, 0);
    ctx_.assign(slots, defaultContext);

    statGroup_.add(hits_);
    statGroup_.add(misses_);
    statGroup_.add(insertions_);
    statGroup_.add(evictions_);
}

std::size_t
SetAssocTlb::findSlot(mem::Addr va_page, bool large, ContextId ctx) const
{
    if (large && largeResident_ == 0)
        return npos;
    const mem::Addr vpn =
        large ? largeVpn(va_page) : mem::pageNumber(va_page);
    const std::size_t base = setIndex(vpn, ctx) * cfg_.associativity;
    const std::uint8_t want = large ? 1 : 0;
    // Tag compare first: it almost always differs, making the common
    // way one 64-bit compare instead of three dependent byte tests.
    // The context tag is part of the match: a VPN never hits across
    // address spaces.
    for (std::size_t i = base; i < base + cfg_.associativity; ++i) {
        if (vpn_[i] == vpn && valid_[i] && large_[i] == want
            && ctx_[i] == ctx) {
            return i;
        }
    }
    return npos;
}

std::size_t
SetAssocTlb::findAny(mem::Addr va_page, ContextId ctx) const
{
    // Small entries first (exact match), then the covering 2 MB entry.
    const std::size_t small = findSlot(va_page, /*large=*/false, ctx);
    return small != npos ? small : findSlot(va_page, /*large=*/true,
                                            ctx);
}

TlbHit
SetAssocTlb::hitAt(std::size_t i, mem::Addr va_page) const
{
    if (!large_[i])
        return TlbHit{ppn_[i] << mem::pageShift, false};
    const mem::Addr base = ppn_[i] << 21;
    const mem::Addr offset =
        (mem::pageNumber(va_page) % largeOffsetPages) << mem::pageShift;
    return TlbHit{base | offset, true};
}

std::optional<TlbHit>
SetAssocTlb::lookupEntry(mem::Addr va_page, ContextId ctx)
{
    const std::size_t i = findAny(va_page, ctx);
    if (i == npos) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lastUse_[i] = ++useClock_;
    return hitAt(i, va_page);
}

std::optional<mem::Addr>
SetAssocTlb::lookup(mem::Addr va_page, ContextId ctx)
{
    const auto hit = lookupEntry(va_page, ctx);
    if (!hit)
        return std::nullopt;
    return hit->paPage;
}

std::optional<mem::Addr>
SetAssocTlb::probe(mem::Addr va_page, ContextId ctx) const
{
    const std::size_t i = findAny(va_page, ctx);
    if (i == npos)
        return std::nullopt;
    return hitAt(i, va_page).paPage;
}

void
SetAssocTlb::insert(mem::Addr va_page, mem::Addr pa_page,
                    bool large_page, ContextId ctx)
{
    const mem::Addr vpn = large_page ? largeVpn(va_page)
                                     : mem::pageNumber(va_page);
    const mem::Addr ppn = large_page ? (pa_page >> 21)
                                     : mem::pageNumber(pa_page);

    // Refresh a duplicate fill in place.
    const std::size_t hit = findSlot(va_page, large_page, ctx);
    if (hit != npos) {
        ppn_[hit] = ppn;
        lastUse_[hit] = ++useClock_;
        return;
    }

    // Victim: the first invalid way, or failing that the true-LRU
    // valid way (first-encountered on lastUse ties).
    const std::size_t base = setIndex(vpn, ctx) * cfg_.associativity;
    std::size_t victim = npos;
    for (std::size_t i = base; i < base + cfg_.associativity; ++i) {
        if (!valid_[i]) {
            victim = i;
            break;
        }
    }
    if (victim == npos) {
        victim = base;
        for (std::size_t i = base + 1; i < base + cfg_.associativity;
             ++i) {
            if (lastUse_[i] < lastUse_[victim])
                victim = i;
        }
        ++evictions_;
        if (large_[victim])
            --largeResident_;
    }

    ++insertions_;
    vpn_[victim] = vpn;
    ppn_[victim] = ppn;
    valid_[victim] = 1;
    large_[victim] = large_page ? 1 : 0;
    ctx_[victim] = ctx;
    lastUse_[victim] = ++useClock_;
    if (large_page)
        ++largeResident_;
}

void
SetAssocTlb::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
    largeResident_ = 0;
}

bool
SetAssocTlb::invalidate(mem::Addr va_page, ContextId ctx)
{
    const std::size_t i = findAny(va_page, ctx);
    if (i == npos)
        return false;
    valid_[i] = 0;
    if (large_[i])
        --largeResident_;
    return true;
}

unsigned
SetAssocTlb::population() const
{
    unsigned n = 0;
    for (const std::uint8_t v : valid_)
        n += v;
    return n;
}

} // namespace gpuwalk::tlb
