#include "tlb/set_assoc_tlb.hh"

namespace gpuwalk::tlb {

namespace {

/** 2 MB-granular virtual page number. */
constexpr mem::Addr
largeVpn(mem::Addr va)
{
    return va >> 21;
}

constexpr mem::Addr largeOffsetPages = (1 << 21) >> mem::pageShift;

} // namespace

SetAssocTlb::SetAssocTlb(const TlbConfig &cfg)
    : cfg_(cfg), statGroup_(cfg.name)
{
    GPUWALK_ASSERT(cfg_.entries > 0, "TLB must have entries");
    GPUWALK_ASSERT(cfg_.entries % cfg_.associativity == 0,
                   "entries not divisible by associativity in ",
                   cfg_.name);
    numSets_ = cfg_.sets();
    sets_.assign(numSets_, std::vector<Entry>(cfg_.associativity));

    statGroup_.add(hits_);
    statGroup_.add(misses_);
    statGroup_.add(insertions_);
    statGroup_.add(evictions_);
}

SetAssocTlb::Entry *
SetAssocTlb::find(mem::Addr va_page, bool large)
{
    const mem::Addr vpn =
        large ? largeVpn(va_page) : mem::pageNumber(va_page);
    for (auto &e : sets_[setIndex(vpn)]) {
        if (e.valid && e.large == large && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const SetAssocTlb::Entry *
SetAssocTlb::find(mem::Addr va_page, bool large) const
{
    const mem::Addr vpn =
        large ? largeVpn(va_page) : mem::pageNumber(va_page);
    for (const auto &e : sets_[setIndex(vpn)]) {
        if (e.valid && e.large == large && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

std::optional<TlbHit>
SetAssocTlb::lookupEntry(mem::Addr va_page)
{
    // Small entries first (exact match), then the covering 2 MB entry.
    if (Entry *e = find(va_page, /*large=*/false)) {
        ++hits_;
        e->lastUse = ++useClock_;
        return TlbHit{e->ppn << mem::pageShift, false};
    }
    if (Entry *e = find(va_page, /*large=*/true)) {
        ++hits_;
        e->lastUse = ++useClock_;
        const mem::Addr base = e->ppn << 21;
        const mem::Addr offset =
            (mem::pageNumber(va_page) % largeOffsetPages)
            << mem::pageShift;
        return TlbHit{base | offset, true};
    }
    ++misses_;
    return std::nullopt;
}

std::optional<mem::Addr>
SetAssocTlb::lookup(mem::Addr va_page)
{
    auto hit = lookupEntry(va_page);
    if (!hit)
        return std::nullopt;
    return hit->paPage;
}

std::optional<mem::Addr>
SetAssocTlb::probe(mem::Addr va_page) const
{
    if (const Entry *e = find(va_page, /*large=*/false))
        return e->ppn << mem::pageShift;
    if (const Entry *e = find(va_page, /*large=*/true)) {
        const mem::Addr base = e->ppn << 21;
        const mem::Addr offset =
            (mem::pageNumber(va_page) % largeOffsetPages)
            << mem::pageShift;
        return base | offset;
    }
    return std::nullopt;
}

void
SetAssocTlb::insert(mem::Addr va_page, mem::Addr pa_page,
                    bool large_page)
{
    const mem::Addr vpn = large_page ? largeVpn(va_page)
                                     : mem::pageNumber(va_page);
    const mem::Addr ppn = large_page ? (pa_page >> 21)
                                     : mem::pageNumber(pa_page);
    auto &set = sets_[setIndex(vpn)];

    Entry *victim = nullptr;
    for (auto &e : set) {
        if (e.valid && e.large == large_page && e.vpn == vpn) {
            // Refresh an existing entry (duplicate fill).
            e.ppn = ppn;
            e.lastUse = ++useClock_;
            return;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim || (victim->valid
                               && e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }

    if (victim->valid)
        ++evictions_;
    ++insertions_;
    victim->vpn = vpn;
    victim->ppn = ppn;
    victim->valid = true;
    victim->large = large_page;
    victim->lastUse = ++useClock_;
}

void
SetAssocTlb::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &e : set)
            e.valid = false;
}

bool
SetAssocTlb::invalidate(mem::Addr va_page)
{
    if (Entry *e = find(va_page, /*large=*/false)) {
        e->valid = false;
        return true;
    }
    if (Entry *e = find(va_page, /*large=*/true)) {
        e->valid = false;
        return true;
    }
    return false;
}

unsigned
SetAssocTlb::population() const
{
    unsigned n = 0;
    for (const auto &set : sets_)
        for (const auto &e : set)
            n += e.valid ? 1 : 0;
    return n;
}

} // namespace gpuwalk::tlb
